package core

import (
	"math/rand"

	"repro/internal/db"
	"repro/internal/fo"
	"repro/internal/mc"
	"repro/internal/poly"
	"repro/internal/realfmla"
	"repro/internal/value"
)

// sampleCount picks the number of Monte-Carlo samples for additive error
// eps at confidence 1-delta. With Options.PaperSampleCount it reproduces
// the paper's m = ⌈ε⁻²⌉ (analyzed at confidence 3/4); otherwise it uses
// the Hoeffding bound for the requested confidence.
func (e *Engine) sampleCount(eps, delta float64) (int, error) {
	if err := checkEpsDelta(eps, delta); err != nil {
		return 0, err
	}
	if e.opts.PaperSampleCount {
		return mc.PaperSamples(eps)
	}
	return mc.HoeffdingSamples(eps, delta)
}

// AdditiveApprox is the AFPRAS of Section 8 applied to a translated
// formula: sample directions a uniformly at random and average the
// indicator of lim_k f_{φ,a}(k). Only the variables that actually occur in
// φ are sampled (the paper's Section 9 optimization); since asymptotic
// truth is invariant under positive scaling of the direction, unnormalized
// Gaussian vectors sample the directional measure exactly.
func (e *Engine) AdditiveApprox(phi realfmla.Formula, eps, delta float64) (Result, error) {
	return e.additiveApprox(e.compiledFor(phi), eps, delta)
}

// additiveApprox is AdditiveApprox on an already-resolved compiled entry,
// so MeasureFormula does not resolve (or, with caching disabled, compile)
// the same formula twice per call.
func (e *Engine) additiveApprox(ent *compiledEntry, eps, delta float64) (Result, error) {
	m, err := e.sampleCount(eps, delta)
	if err != nil {
		return Result{}, err
	}
	n := len(ent.vars)
	if n == 0 {
		if !e.opts.ForceSampling {
			return trivialResult(realfmla.Eval(ent.reduced, nil), ent.ambient), nil
		}
		// Faithful to the reference implementation: evaluate the (constant)
		// formula once per sample anyway.
		ev := ent.sampler().ev
		hits := 0
		for i := 0; i < m; i++ {
			if ev.Eval(nil) {
				hits++
			}
		}
		return Result{
			Value:   float64(hits) / float64(m),
			Method:  MethodAFPRAS,
			Samples: m,
			K:       ent.ambient,
		}, nil
	}
	// One base-seed draw per invocation keeps repeated calls on the same
	// engine statistically independent while making the sample loop itself
	// a pure function of (base, chunk index) — the property the parallel
	// scheduler needs for worker-count-independent results.
	base := e.drawBase()
	hits := e.sampleAsym(ent, m, base)
	return Result{
		Value:     float64(hits) / float64(m),
		Method:    MethodAFPRAS,
		Samples:   m,
		K:         ent.ambient,
		RelevantK: n,
	}, nil
}

// asymChunkSize is the fixed number of samples per scheduling chunk of the
// parallel AFPRAS loop. Each chunk draws its directions from an RNG seeded
// by mc.DeriveSeed(base, chunk), so the total hit count — and therefore
// Result.Value — is bit-identical for a given base seed no matter how many
// workers run or how chunks interleave. Small enough to load-balance a few
// thousand samples across many cores, large enough that per-chunk
// reseeding cost vanishes.
const asymChunkSize = 256

// asymSampler bundles the per-goroutine scratch of the AFPRAS inner loop:
// a formula evaluator, a direction buffer, and an O(1)-reseed RNG. Once
// constructed, sampling runs allocation-free.
type asymSampler struct {
	ev  *realfmla.Evaluator
	dir []float64
	src *mc.SplitMix64
	rng *rand.Rand
}

func newAsymSampler(c *realfmla.Compiled, n int) *asymSampler {
	src := mc.NewSplitMix64(0)
	return &asymSampler{
		ev:  c.NewEvaluator(),
		dir: make([]float64, n),
		src: src,
		rng: rand.New(src),
	}
}

// chunk reseeds the sampler's RNG and counts asymptotic hits over count
// Gaussian directions.
func (s *asymSampler) chunk(seed int64, count int, tol float64) int {
	s.src.Seed(seed)
	hits := 0
	for i := 0; i < count; i++ {
		mc.FillNormal(s.rng, s.dir)
		if s.ev.AsymEval(s.dir, tol) {
			hits++
		}
	}
	return hits
}

// chunkLen is the number of samples in chunk ch of an m-sample run.
func chunkLen(m, ch int) int {
	c := m - ch*asymChunkSize
	if c > asymChunkSize {
		c = asymChunkSize
	}
	return c
}

// sampleAsym counts, over m sampled Gaussian directions, how often the
// entry's compiled formula holds asymptotically, fanning fixed-size
// chunks of samples out over Options.Workers participants (the calling
// goroutine plus the engine's persistent helper pool — see samplePool).
// Every participant owns a private asymSampler and chunks are claimed
// atomically, so the steady-state loop does not allocate at any worker
// count; the single-worker path reuses the entry's cached sampler across
// calls.
func (e *Engine) sampleAsym(ent *compiledEntry, m int, base int64) int {
	return e.sampleAsymRange(ent, m, base, 0, (m+asymChunkSize-1)/asymChunkSize)
}

// sampleAsymRange is the resumable form of sampleAsym: it draws only
// chunks [from, to) of the m-sample budget. Chunk seeds depend on (base,
// chunk index) alone, so drawing a budget in installments — the adaptive
// race grows each candidate's prefix round by round — produces exactly
// the samples a single full-budget run would have drawn: the hit counts
// of disjoint ranges sum to the full-budget hit count bit-for-bit.
func (e *Engine) sampleAsymRange(ent *compiledEntry, m int, base int64, from, to int) int {
	workers := e.workers()
	if workers > to-from {
		workers = to - from
	}
	if workers <= 1 {
		s := ent.sampler()
		tol := e.opts.Tol
		hits := 0
		for ch := from; ch < to; ch++ {
			hits += s.chunk(mc.DeriveSeed(base, int64(ch)), chunkLen(m, ch), tol)
		}
		return hits
	}
	return e.runParallel(ent, workers, m, from, to, base)
}

// AdditiveApproxDirect is the same additive-error scheme evaluated without
// materializing φ: each sampled direction interprets the numerical nulls
// as asymptotic reals k·a_i and the query is evaluated under that numeric
// domain (package fo), which decides lim_k f_{φ,a}(k) directly. This keeps
// the per-sample cost at plain query-evaluation cost and avoids the
// active-domain expansion of the translation, at the price of not being
// able to reduce to the relevant nulls up front.
func (e *Engine) AdditiveApproxDirect(q *fo.Query, d *db.Database, args []value.Value, eps, delta float64) (Result, error) {
	if err := fo.Typecheck(q, d.Schema()); err != nil {
		return Result{}, err
	}
	m, err := e.sampleCount(eps, delta)
	if err != nil {
		return Result{}, err
	}
	tmpl, err := fo.NewDirTemplate(d, e.opts.Tol)
	if err != nil {
		return Result{}, err
	}
	ids := tmpl.NullIDs()
	if len(ids) == 0 {
		// No numerical nulls: μ ∈ {0,1}, decided by one evaluation.
		if err := tmpl.SetDirection(fo.Direction{}); err != nil {
			return Result{}, err
		}
		cargs, err := argCells(args, fo.Direction{})
		if err != nil {
			return Result{}, err
		}
		truth, err := fo.Eval(q, tmpl.Instance(), cargs)
		if err != nil {
			return Result{}, err
		}
		return trivialResult(truth, 0), nil
	}

	dir := make(fo.Direction, len(ids))
	hits := 0
	for i := 0; i < m; i++ {
		for _, id := range ids {
			dir[id] = e.rand().NormFloat64()
		}
		if err := tmpl.SetDirection(dir); err != nil {
			return Result{}, err
		}
		cargs, err := argCells(args, dir)
		if err != nil {
			return Result{}, err
		}
		ok, err := fo.Eval(q, tmpl.Instance(), cargs)
		if err != nil {
			return Result{}, err
		}
		if ok {
			hits++
		}
	}
	return Result{
		Value:     float64(hits) / float64(m),
		Method:    MethodAFPRASDirect,
		Samples:   m,
		K:         len(ids),
		RelevantK: len(ids),
	}, nil
}

// argCells converts answer-tuple values into asymptotic cells under the
// sampled direction.
func argCells(args []value.Value, dir fo.Direction) ([]fo.Cell[poly.Uni], error) {
	out := make([]fo.Cell[poly.Uni], len(args))
	for i, a := range args {
		c, err := fo.CellForAnswerValue(a, dir)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}
