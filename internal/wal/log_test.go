package wal

// Log-level tests: record framing round-trips, torn tails truncate at the
// first bad record and never past a good one, corruption is rejected by
// checksum, and injected write/sync faults surface as errors.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/value"
)

func mustOpenLog(t *testing.T, fs FS, dir string) (*Log, []Record) {
	t.Helper()
	l, recs, err := OpenLog(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func appendAll(t *testing.T, l *Log, payloads ...[]byte) {
	t.Helper()
	for i, p := range payloads {
		if err := l.Append(uint64(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), make([]byte, 4096)}
	var buf []byte
	for i, p := range payloads {
		buf = appendRecord(buf, uint64(i+100), p)
	}
	off := 0
	for i, want := range payloads {
		seq, payload, n, ok := parseRecord(buf[off:])
		if !ok {
			t.Fatalf("record %d did not parse", i)
		}
		if seq != uint64(i+100) || len(payload) != len(want) {
			t.Fatalf("record %d: seq=%d len=%d, want seq=%d len=%d", i, seq, len(payload), i+100, len(want))
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("parsed %d of %d bytes", off, len(buf))
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	batches := []Batch{
		{Relation: "R", Tuples: []value.Tuple{
			{value.Base("a"), value.Num(1.5), value.NullBase(3)},
			{value.Base(""), value.Num(math.NaN()), value.NullBase(0)},
			{value.Base("comma, \" and _B7"), value.Num(math.Inf(-1)), value.Base("z")},
		}},
		{Relation: "S", Tuples: []value.Tuple{
			{value.NullNum(12), value.Base("q")},
			{value.Num(math.Copysign(0, -1)), value.Base("_escaped")},
		}},
		{Relation: "Empty", Tuples: nil},
	}
	for i, b := range batches {
		enc := encodeBatch(nil, b.Relation, b.Tuples)
		got, err := decodeBatch(enc)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if got.Relation != b.Relation || len(got.Tuples) != len(b.Tuples) {
			t.Fatalf("batch %d: got %q/%d tuples", i, got.Relation, len(got.Tuples))
		}
		for j := range b.Tuples {
			for k := range b.Tuples[j] {
				w, g := b.Tuples[j][k], got.Tuples[j][k]
				if w.Kind() != g.Kind() {
					t.Fatalf("batch %d tuple %d col %d: kind %v vs %v", i, j, k, g.Kind(), w.Kind())
				}
				switch w.Kind() {
				case value.NumConst:
					if math.Float64bits(w.Float()) != math.Float64bits(g.Float()) {
						t.Fatalf("batch %d tuple %d col %d: float bits diverged", i, j, k)
					}
				default:
					if w.String() != g.String() {
						t.Fatalf("batch %d tuple %d col %d: %v vs %v", i, j, k, g, w)
					}
				}
			}
		}
	}
}

func TestDecodeBatchRejectsCorruption(t *testing.T) {
	enc := encodeBatch(nil, "R", []value.Tuple{{value.Base("abc"), value.Num(1)}})
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeBatch(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	if _, err := decodeBatch(append(enc[:len(enc):len(enc)], 0)); err == nil {
		t.Fatal("trailing byte decoded cleanly")
	}
}

func TestLogReopenRecoversRecords(t *testing.T) {
	dir := t.TempDir()
	l, recs := mustOpenLog(t, OSFS{}, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	appendAll(t, l, []byte("one"), []byte("two"), []byte("three"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs = mustOpenLog(t, OSFS{}, dir)
	var got []string
	for _, r := range recs {
		got = append(got, fmt.Sprintf("%d:%s", r.Seq, r.Payload))
	}
	if want := []string{"1:one", "2:two", "3:three"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

// TestLogTornTailTruncation cuts the log at every byte offset: recovery
// must return exactly the records wholly contained in the prefix and
// truncate the file to their end — never dropping a good record, never
// keeping a torn one.
func TestLogTornTailTruncation(t *testing.T) {
	full := t.TempDir()
	l, _ := mustOpenLog(t, OSFS{}, full)
	payloads := [][]byte{[]byte("alpha"), []byte("bb"), []byte("cccccccc")}
	appendAll(t, l, payloads...)
	l.Close()
	data, err := os.ReadFile(filepath.Join(full, logName))
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries for the expected-survivor count.
	bounds := []int{0}
	for off := 0; off < len(data); {
		_, _, n, ok := parseRecord(data[off:])
		if !ok {
			t.Fatalf("full log torn at %d", off)
		}
		off += n
		bounds = append(bounds, off)
	}
	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, recs := mustOpenLog(t, OSFS{}, dir)
		want := 0
		for _, b := range bounds {
			if b <= cut && b > 0 {
				want++
			}
		}
		if len(recs) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), want)
		}
		st, err := os.Stat(filepath.Join(dir, logName))
		if err != nil {
			t.Fatal(err)
		}
		if want > 0 && st.Size() != int64(bounds[want]) {
			t.Fatalf("cut %d: file is %d bytes after truncation, want %d", cut, st.Size(), bounds[want])
		}
		// The log stays appendable on the clean boundary.
		if err := l2.Append(99, []byte("after")); err != nil {
			t.Fatal(err)
		}
		if err := l2.Sync(); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		_, recs2 := mustOpenLog(t, OSFS{}, dir)
		if len(recs2) != want+1 || recs2[len(recs2)-1].Seq != 99 {
			t.Fatalf("cut %d: after re-append recovered %d records", cut, len(recs2))
		}
	}
}

// TestLogCorruptionTruncates flips one byte in the middle record: the
// records before it survive, it and everything after are dropped.
func TestLogCorruptionTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpenLog(t, OSFS{}, dir)
	appendAll(t, l, []byte("first"), []byte("second"), []byte("third"))
	l.Close()
	path := filepath.Join(dir, logName)
	data, _ := os.ReadFile(path)
	_, _, n0, _ := parseRecord(data)
	data[n0+recHeaderSize] ^= 0xff // first payload byte of record 2
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs := mustOpenLog(t, OSFS{}, dir)
	if len(recs) != 1 || string(recs[0].Payload) != "first" {
		t.Fatalf("recovered %d records after corruption, want the 1 good prefix", len(recs))
	}
}

func TestLogTruncatePrefix(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpenLog(t, OSFS{}, dir)
	appendAll(t, l, []byte("covered-1"), []byte("covered-2"))
	cut := l.Size()
	appendAll(t, l, []byte("live-3"))
	// appendAll restarts seqs at 1; re-tag the live record for clarity.
	if err := l.TruncatePrefix(cut); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(4, []byte("live-4")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs := mustOpenLog(t, OSFS{}, dir)
	var got []string
	for _, r := range recs {
		got = append(got, string(r.Payload))
	}
	if want := []string{"live-3", "live-4"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after prefix truncation: %v, want %v", got, want)
	}
}

func TestFaultFSInjection(t *testing.T) {
	t.Run("fail-write", func(t *testing.T) {
		dir := t.TempDir()
		ffs := &FaultFS{Inner: OSFS{}, FailWriteAt: 2}
		l, _ := mustOpenLog(t, ffs, dir)
		if err := l.Append(1, []byte("ok")); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(2, []byte("boom")); err == nil {
			t.Fatal("injected write fault did not surface")
		}
	})
	t.Run("fail-sync", func(t *testing.T) {
		dir := t.TempDir()
		ffs := &FaultFS{Inner: OSFS{}, FailSyncAt: 1}
		l, _ := mustOpenLog(t, ffs, dir)
		if err := l.Append(1, []byte("ok")); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err == nil {
			t.Fatal("injected sync fault did not surface")
		}
	})
	t.Run("short-write-leaves-torn-tail", func(t *testing.T) {
		dir := t.TempDir()
		ffs := &FaultFS{Inner: OSFS{}, ShortWriteAt: 2, ShortWriteBytes: 5}
		l, _ := mustOpenLog(t, ffs, dir)
		appendAll(t, l, []byte("good"))
		if err := l.Append(2, []byte("torn-away")); err == nil {
			t.Fatal("short write did not surface")
		}
		l.Close()
		_, recs := mustOpenLog(t, OSFS{}, dir)
		if len(recs) != 1 || string(recs[0].Payload) != "good" {
			t.Fatalf("recovered %d records after short write", len(recs))
		}
	})
	t.Run("crash-after-bytes", func(t *testing.T) {
		dir := t.TempDir()
		ffs := &FaultFS{Inner: OSFS{}, CrashAfterBytes: 40}
		l, _ := mustOpenLog(t, ffs, dir)
		var alive int
		for i := 1; i <= 10; i++ {
			if err := l.Append(uint64(i), []byte("0123456789")); err != nil {
				break
			}
			if err := l.Sync(); err != nil {
				break
			}
			alive++
		}
		if alive == 0 || alive == 10 {
			t.Fatalf("crash budget acknowledged %d of 10 appends", alive)
		}
		_, recs := mustOpenLog(t, OSFS{}, dir)
		if len(recs) < alive {
			t.Fatalf("recovered %d records, lost an acknowledged one of %d", len(recs), alive)
		}
	})
}
