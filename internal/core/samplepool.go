package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/mc"
)

// samplePool is the engine's persistent crew of sampling helpers: the
// parallel AFPRAS loop used to spawn Options.Workers goroutines (plus
// their closures and coordination state) on every MeasureFormula call,
// which made allocs/op grow linearly with the worker count — 21 → 97 →
// 127 for 1 → 2 → 4 workers on the Figure 1a workload. The pool starts
// the helper goroutines once per engine and reuses one parJob, so the
// steady-state parallel path allocates exactly as much as the sequential
// one: nothing.
//
// Helpers block on a buffered token channel. A run publishes its
// parameters in the shared parJob, enqueues one token per recruited
// helper, and works the job itself; helpers and submitter atomically
// claim fixed-size chunks, so participation order cannot change the
// result (chunks are seeded by index — see sampleAsym). The token send
// happens-before the helper's reads of the job fields, and wg.Wait
// happens-after its last write, so the unguarded job fields are
// race-free. Every run consumes exactly the tokens it enqueued before
// returning, so runs never observe each other.
//
// The pool holds no reference to the Engine, and a cleanup registered on
// the engine closes stop when the engine becomes unreachable, so pooled
// helpers never outlive their engine.
type samplePool struct {
	tokens chan struct{}
	stop   chan struct{}
	job    parJob
}

// parJob is the shared state of one parallel sampling run. first/chunks
// bound the claimed chunk range [first, chunks): a full-budget run covers
// [0, ⌈m/asymChunkSize⌉), while the adaptive race resumes a candidate
// from its last drawn chunk (see sampleAsymRange).
type parJob struct {
	samplers  []*asymSampler
	m, chunks int
	first     int
	base      int64
	tol       float64
	slot      atomic.Int64 // sampler slot assignment; the submitter owns slot 0
	next      atomic.Int64 // chunk claim counter
	total     atomic.Int64 // accumulated hits
	wg        sync.WaitGroup
}

// run claims chunks until none remain, accumulating hits into the job.
func (j *parJob) run(s *asymSampler) {
	hits := 0
	for {
		ch := j.first + int(j.next.Add(1)) - 1
		if ch >= j.chunks {
			break
		}
		hits += s.chunk(mc.DeriveSeed(j.base, int64(ch)), chunkLen(j.m, ch), j.tol)
	}
	j.total.Add(int64(hits))
}

func newSamplePool(helpers int) *samplePool {
	p := &samplePool{
		tokens: make(chan struct{}, helpers),
		stop:   make(chan struct{}),
	}
	for i := 0; i < helpers; i++ {
		go p.helper()
	}
	return p
}

func (p *samplePool) helper() {
	for {
		select {
		case <-p.stop:
			return
		case <-p.tokens:
			j := &p.job
			j.run(j.samplers[int(j.slot.Add(1))])
			j.wg.Done()
		}
	}
}

// samplePoolFor returns the engine's helper pool with at least `helpers`
// helper goroutines, starting it on first use.
func (e *Engine) samplePoolFor(helpers int) *samplePool {
	if e.pool == nil {
		e.pool = newSamplePool(helpers)
		// Stop the helpers when the engine is collected; the cleanup must
		// not reference e itself, only the stop channel.
		runtime.AddCleanup(e, func(stop chan struct{}) { close(stop) }, e.pool.stop)
	}
	return e.pool
}

// runParallel samples the Gaussian-direction chunks [from, to) of an
// m-sample budget over the entry's compiled formula with `workers`
// participants (the calling goroutine plus workers-1 pooled helpers),
// returning the total hit count. Allocation-free in steady state.
func (e *Engine) runParallel(ent *compiledEntry, workers, m, from, to int, base int64) int {
	p := e.samplePoolFor(e.workers() - 1)
	j := &p.job
	j.samplers = ent.samplerPool(workers)
	j.m, j.first, j.chunks, j.base, j.tol = m, from, to, base, e.opts.Tol
	j.slot.Store(0)
	j.next.Store(0)
	j.total.Store(0)
	recruits := workers - 1
	j.wg.Add(recruits)
	for i := 0; i < recruits; i++ {
		p.tokens <- struct{}{}
	}
	j.run(j.samplers[0])
	j.wg.Wait()
	// The engine must stay reachable until every helper is done: its
	// cleanup closes the pool's stop channel, and a helper stopping with
	// an unconsumed token would strand wg.Wait.
	runtime.KeepAlive(e)
	return int(j.total.Load())
}
