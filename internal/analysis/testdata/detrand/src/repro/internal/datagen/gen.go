// Package datagen is the detrand gating negative: it is not a
// deterministic package, so wall-clock and global randomness are fine
// here and nothing in this file is flagged.
package datagen

import (
	"math/rand"
	"time"
)

func Timestamped() (int64, int) {
	return time.Now().UnixNano(), rand.Int()
}
