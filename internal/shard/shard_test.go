package shard_test

// Unit tests of the sharded store: routing stability, scatter/gather
// parity with a single store, routing-log order preservation, and the
// per-version gather cache. The shard-count invariance fuzz — the PR's
// acceptance criterion — lives in parity_test.go.

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/schema"
	"repro/internal/shard"
	"repro/internal/value"
)

func twoColSchema(t *testing.T) *schema.Schema {
	t.Helper()
	r, err := schema.NewRelation("R",
		schema.Column{Name: "a", Type: schema.Base},
		schema.Column{Name: "x", Type: schema.Num},
	)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schema.New(r)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHashContentStability(t *testing.T) {
	a := value.Tuple{value.Base("seg1"), value.Num(2.5)}
	b := value.Tuple{value.Base("seg1"), value.Num(2.5)}
	if shard.Hash(a) != shard.Hash(b) {
		t.Fatal("equal tuples hashed differently")
	}
	c := value.Tuple{value.Base("seg2"), value.Num(2.5)}
	if shard.Hash(a) == shard.Hash(c) {
		t.Fatal("distinct tuples collided (possible, but not on this fixture)")
	}

	// All NaN payloads are one candidate, so they must co-locate.
	nan1 := value.Tuple{value.Base("s"), value.Num(math.NaN())}
	nan2 := value.Tuple{value.Base("s"), value.Num(math.Float64frombits(0x7ff8000000000042))}
	if shard.Hash(nan1) != shard.Hash(nan2) {
		t.Fatal("NaN payloads hashed differently")
	}
	// -0 and +0 are distinct candidates and may land apart.
	negz := value.Tuple{value.Base("s"), value.Num(math.Copysign(0, -1))}
	posz := value.Tuple{value.Base("s"), value.Num(0)}
	if shard.Hash(negz) == shard.Hash(posz) {
		t.Fatal("-0 and +0 hashed alike; they are distinct candidates")
	}
}

func TestShardOfBounds(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for i := 0; i < 200; i++ {
			tu := value.Tuple{value.Base(fmt.Sprint("k", i)), value.Num(float64(i))}
			if s := shard.ShardOf(tu, n); s < 0 || s >= n {
				t.Fatalf("ShardOf(_, %d) = %d out of range", n, s)
			}
		}
	}
}

func TestNewRejectsBadCounts(t *testing.T) {
	s := twoColSchema(t)
	for _, n := range []int{0, -1, 257} {
		if _, err := shard.New(s, n); err == nil {
			t.Fatalf("New(s, %d) succeeded", n)
		}
	}
}

// dump renders every observable the gather path must preserve.
func dump(d *db.Database) map[string][]string {
	out := map[string][]string{}
	for _, rel := range d.Schema().Relations() {
		var rows []string
		for _, tu := range d.Tuples(rel.Name) {
			rows = append(rows, tu.String())
		}
		out[rel.Name] = rows
	}
	out["__nulls"] = []string{fmt.Sprint(d.BaseNulls()), fmt.Sprint(d.NumNulls())}
	return out
}

// TestGatherParity: interleaved batches into a sharded store and a plain
// database; Gather must reproduce the plain database exactly — same rows
// in the same global order, same null inventories.
func TestGatherParity(t *testing.T) {
	s := twoColSchema(t)
	for _, n := range []int{1, 2, 4} {
		st, err := shard.New(s, n)
		if err != nil {
			t.Fatal(err)
		}
		ref := db.New(s)
		for batch := 0; batch < 10; batch++ {
			tuples := make([]value.Tuple, 1+batch%3)
			for j := range tuples {
				// Mix constants, duplicates, and nulls across batches.
				switch (batch + j) % 4 {
				case 0:
					tuples[j] = value.Tuple{value.Base("dup"), value.Num(1)}
				case 1:
					tuples[j] = value.Tuple{value.Base(fmt.Sprint("k", batch)), value.Num(float64(batch) / 3)}
				case 2:
					tuples[j] = value.Tuple{value.NullBase(batch), value.Num(float64(j))}
				default:
					tuples[j] = value.Tuple{value.Base("n"), value.NullNum(100 + batch)}
				}
			}
			if err := st.InsertBatch("R", tuples); err != nil {
				t.Fatal(err)
			}
			if err := ref.InsertBatch("R", tuples); err != nil {
				t.Fatal(err)
			}
		}
		g, err := st.Gather()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := dump(g), dump(ref); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: gather diverged\n got %v\nwant %v", n, got, want)
		}
		if st.Size() != ref.Size() || st.Len("R") != ref.Len("R") {
			t.Fatalf("n=%d: size %d/%d, want %d", n, st.Size(), st.Len("R"), ref.Size())
		}
		total := 0
		for _, sz := range st.ShardSizes() {
			total += sz
		}
		if total != ref.Size() {
			t.Fatalf("n=%d: shard sizes sum to %d, want %d", n, total, ref.Size())
		}
	}
}

// TestGatherCachePerVersion: repeated gathers of an unchanged store
// return the same snapshot; a write invalidates it.
func TestGatherCachePerVersion(t *testing.T) {
	st, err := shard.New(twoColSchema(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("R", value.Tuple{value.Base("a"), value.Num(1)}); err != nil {
		t.Fatal(err)
	}
	g1, err := st.Gather()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := st.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("unchanged store re-materialized its gather")
	}
	if err := st.Insert("R", value.Tuple{value.Base("b"), value.Num(2)}); err != nil {
		t.Fatal(err)
	}
	g3, err := st.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if g3 == g1 || g3.Size() != 2 {
		t.Fatal("gather did not refresh after a write")
	}
}

// TestEqualTuplesColocate: duplicates of one tuple all land on one shard,
// so duplicate aggregation stays shard-local.
func TestEqualTuplesColocate(t *testing.T) {
	st, err := shard.New(twoColSchema(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	tu := value.Tuple{value.Base("dup"), value.Num(3.25)}
	for i := 0; i < 12; i++ {
		if err := st.Insert("R", tu); err != nil {
			t.Fatal(err)
		}
	}
	nonEmpty := 0
	for _, sz := range st.ShardSizes() {
		if sz > 0 {
			nonEmpty++
			if sz != 12 {
				t.Fatalf("duplicates split across shards: sizes %v", st.ShardSizes())
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("duplicates landed on %d shards, want 1", nonEmpty)
	}
}

// TestFromDatabase: scattering an existing database preserves it.
func TestFromDatabase(t *testing.T) {
	ref, err := datagen.Generate(datagen.Config{
		Seed: 11, Products: 50, Orders: 40, Market: 16, Segments: 6,
		NullRate: 0.3, MarketNullRate: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := shard.FromDatabase(ref, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := st.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dump(g), dump(ref); !reflect.DeepEqual(got, want) {
		t.Fatalf("FromDatabase round trip diverged\n got %v\nwant %v", got, want)
	}
	if st.NumShards() != 4 {
		t.Fatalf("NumShards = %d", st.NumShards())
	}
}

// TestBadBatchIsAtomic: a batch with one invalid tuple commits nothing
// anywhere and leaves the version unchanged.
func TestBadBatchIsAtomic(t *testing.T) {
	st, err := shard.New(twoColSchema(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	v := st.Version()
	batch := []value.Tuple{
		{value.Base("ok"), value.Num(1)},
		{value.Base("bad")}, // arity mismatch
	}
	if err := st.InsertBatch("R", batch); err == nil {
		t.Fatal("invalid batch committed")
	}
	if st.Size() != 0 || st.Version() != v {
		t.Fatalf("partial commit: size %d, version %d->%d", st.Size(), v, st.Version())
	}
}
