// Package schema defines relation and database schemas for the two-sorted
// data model of the paper: a relation type R(base^k num^m) declares k
// base-type columns followed by m numerical columns. (The paper assumes,
// purely notationally, that base columns come first; we allow arbitrary
// interleavings and record the sort of each column.)
package schema

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// ColType is the sort of a column: base or numerical.
type ColType uint8

const (
	// Base marks a column of the uninterpreted base type.
	Base ColType = iota
	// Num marks a column of the numerical type.
	Num
)

// String returns "base" or "num".
func (c ColType) String() string {
	if c == Num {
		return "num"
	}
	return "base"
}

// Column is a named, typed relation column.
type Column struct {
	Name string
	Type ColType
}

// Relation describes one relation: its name and typed columns.
type Relation struct {
	Name    string
	Columns []Column
}

// NewRelation builds a relation schema. Column names must be unique and
// non-empty.
func NewRelation(name string, cols ...Column) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: relation name must be non-empty")
	}
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("schema: relation %s has an unnamed column", name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("schema: relation %s has duplicate column %s", name, c.Name)
		}
		seen[c.Name] = true
	}
	return &Relation{Name: name, Columns: cols}, nil
}

// MustRelation is like NewRelation but panics on error. Intended for
// statically known schemas in tests and examples.
func MustRelation(name string, cols ...Column) *Relation {
	r, err := NewRelation(name, cols...)
	if err != nil {
		panic(err)
	}
	return r
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.Columns) }

// ColumnIndex returns the index of the named column, or -1.
func (r *Relation) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// CheckTuple verifies that a tuple matches the relation's arity and column
// sorts: base columns must hold base constants or base nulls, numerical
// columns numerical constants or numerical nulls.
func (r *Relation) CheckTuple(t value.Tuple) error {
	if len(t) != len(r.Columns) {
		return fmt.Errorf("schema: relation %s expects %d columns, tuple has %d",
			r.Name, len(r.Columns), len(t))
	}
	for i, v := range t {
		switch r.Columns[i].Type {
		case Base:
			if !v.IsBase() {
				return fmt.Errorf("schema: relation %s column %s is base-typed, got %v",
					r.Name, r.Columns[i].Name, v.Kind())
			}
		case Num:
			if !v.IsNumeric() {
				return fmt.Errorf("schema: relation %s column %s is num-typed, got %v",
					r.Name, r.Columns[i].Name, v.Kind())
			}
		}
	}
	return nil
}

// String renders the relation in the paper's notation, e.g.
// "Products(id:base, seg:base, rrp:num, dis:num)".
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.Name)
	b.WriteByte('(')
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Schema is a database schema: a set of relation schemas indexed by name.
type Schema struct {
	rels map[string]*Relation
}

// New builds a schema from the given relations. Relation names must be
// unique.
func New(rels ...*Relation) (*Schema, error) {
	s := &Schema{rels: make(map[string]*Relation, len(rels))}
	for _, r := range rels {
		if _, dup := s.rels[r.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate relation %s", r.Name)
		}
		s.rels[r.Name] = r
	}
	return s, nil
}

// MustNew is like New but panics on error.
func MustNew(rels ...*Relation) *Schema {
	s, err := New(rels...)
	if err != nil {
		panic(err)
	}
	return s
}

// Relation returns the named relation schema, or nil.
func (s *Schema) Relation(name string) *Relation { return s.rels[name] }

// Relations returns all relation schemas sorted by name.
func (s *Schema) Relations() []*Relation {
	out := make([]*Relation, 0, len(s.rels))
	for _, r := range s.rels {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String lists the relations, one per line, sorted by name.
func (s *Schema) String() string {
	var b strings.Builder
	for i, r := range s.Relations() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.String())
	}
	return b.String()
}
