package realfmla

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/poly"
)

// randPolyFormula builds a random Boolean combination over atoms whose
// polynomials span every compiled kernel: constants, dense and sparse
// linear forms, and nonlinear terms up to degree 3.
func randPolyFormula(r *rand.Rand, n, depth int) Formula {
	if depth == 0 || r.Intn(3) == 0 {
		p := poly.Const(n, float64(r.Intn(5)-2))
		terms := r.Intn(3) + 1
		for t := 0; t < terms; t++ {
			q := poly.Const(n, float64(r.Intn(7)-3))
			for f := r.Intn(3); f > 0; f-- {
				q = q.Mul(poly.Var(n, r.Intn(n)))
			}
			p = p.Add(q)
		}
		return FAtom{Atom{P: p, Rel: Rel(r.Intn(6))}}
	}
	switch r.Intn(3) {
	case 0:
		return FNot{randPolyFormula(r, n, depth-1)}
	case 1:
		return And(randPolyFormula(r, n, depth-1), randPolyFormula(r, n, depth-1))
	default:
		return Or(randPolyFormula(r, n, depth-1), randPolyFormula(r, n, depth-1))
	}
}

// TestCompiledKernelMatchesNaiveAsymEval cross-validates the compiled
// kernel (dot-product rows, term cascades, epoch-cached truths) against
// the direct per-atom SubstituteRay evaluation on random formulas and
// directions, including degenerate integer directions that force the
// tolerance fallbacks to lower cascade levels.
func TestCompiledKernelMatchesNaiveAsymEval(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const tol = 1e-12
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(5)
		f := randPolyFormula(r, n, 3)
		c := Compile(f)
		ev := c.NewEvaluator()
		for s := 0; s < 20; s++ {
			dir := make([]float64, n)
			for i := range dir {
				if s%2 == 0 {
					dir[i] = r.NormFloat64()
				} else {
					dir[i] = float64(r.Intn(5) - 2) // integer: exercises cancellation
				}
			}
			want := AsymEval(f, dir, tol)
			if got := c.AsymEval(dir, tol); got != want {
				t.Fatalf("trial %d: Compiled.AsymEval = %v, naive = %v\nφ = %s\ndir = %v",
					trial, got, want, f, dir)
			}
			if got := ev.AsymEval(dir, tol); got != want {
				t.Fatalf("trial %d: Evaluator.AsymEval = %v, naive = %v\nφ = %s\ndir = %v",
					trial, got, want, f, dir)
			}
		}
	}
}

// TestCompiledKernelMatchesNaivePointEval checks the point-evaluation mode
// of the evaluator against the direct formula evaluation.
func TestCompiledKernelMatchesNaivePointEval(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(4)
		f := randPolyFormula(r, n, 3)
		ev := Compile(f).NewEvaluator()
		for s := 0; s < 10; s++ {
			x := randPt(r, n)
			if got, want := ev.Eval(x), Eval(f, x); got != want {
				t.Fatalf("trial %d: Eval = %v, naive = %v\nφ = %s\nx = %v", trial, got, want, f, x)
			}
		}
	}
}

// TestConcurrentEvaluators: one Compiled shared by many goroutines, each
// with its own Evaluator, agrees with a sequential reference — the sharing
// contract the parallel AFPRAS sampler relies on.
func TestConcurrentEvaluators(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 4
	f := randPolyFormula(r, n, 4)
	c := Compile(f)
	dirs := make([][]float64, 500)
	want := make([]bool, len(dirs))
	for i := range dirs {
		d := make([]float64, n)
		for j := range d {
			d[j] = r.NormFloat64()
		}
		dirs[i] = d
		want[i] = AsymEval(f, d, 1e-12)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := c.NewEvaluator()
			for i, d := range dirs {
				if got := ev.AsymEval(d, 1e-12); got != want[i] {
					t.Errorf("dir %d: concurrent %v, want %v", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestEvaluatorMixedMatchesAtomEval checks mixed-mode evaluation against
// the per-atom MixedAsymEval path.
func TestEvaluatorMixedMatchesAtomEval(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(4)
		f := randPolyFormula(r, n, 3)
		c := Compile(f)
		ev := c.NewEvaluator()
		ref := c.NewEvaluator()
		vals := make([]float64, n)
		ray := make([]bool, n)
		for i := range vals {
			vals[i] = r.NormFloat64()
			ray[i] = r.Intn(2) == 0
		}
		want := ref.EvalWith(func(a Atom) bool { return a.MixedAsymEval(vals, ray, 1e-12) })
		if got := ev.MixedAsymEval(vals, ray, 1e-12); got != want {
			t.Fatalf("trial %d: mixed %v, want %v\nφ = %s", trial, got, want, f)
		}
	}
}

// TestFingerprintDistinguishes: fingerprints agree on syntactically equal
// formulas and differ across a corpus of random distinct formulas.
func TestFingerprintDistinguishes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	seen := make(map[FormulaID]string)
	for trial := 0; trial < 500; trial++ {
		f := randPolyFormula(r, 1+r.Intn(4), 3)
		id := Fingerprint(f)
		if id != Fingerprint(f) {
			t.Fatal("fingerprint not deterministic")
		}
		s := f.String()
		if prev, ok := seen[id]; ok && prev != s {
			t.Fatalf("fingerprint collision:\n%s\n%s", prev, s)
		}
		seen[id] = s
	}
}
