package sqlfront

import (
	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/plan"
)

// Candidate is one answer tuple of the conditional evaluation together
// with its constraint; see exec.Candidate.
type Candidate = exec.Candidate

// Result is the output of Evaluate; see exec.Result.
type Result = exec.Result

// Evaluate runs the query under conditional (c-table style) semantics:
// base-typed conditions are decided outright (marked nulls join only with
// themselves — the bijective-valuation regime of Prop 5.2), numeric
// conditions involving nulls are collected as polynomial constraints, and
// each distinct projected tuple is returned with the disjunction of its
// derivations' constraints. LIMIT keeps the first n distinct tuples in
// derivation order, after the full join (all derivations of a kept tuple
// contribute to its constraint).
//
// This reproduces what the paper's implementation obtains from Postgres:
// the candidate answers of the naive evaluation plus the compact
// representation of φ_{q,D,a} per candidate (Section 9). Since the
// planner/executor refactor it is a thin wrapper: the query is lowered to
// a logical plan (selection pushdown, index access paths, join
// reordering; package plan) and executed by the streaming executor
// (package exec), with results byte-identical to the original one-shot
// nested-loop evaluation — same candidates, same Phi DNFs in derivation
// order, same Derivations count.
func Evaluate(q *Query, d *db.Database) (*Result, error) {
	p, err := plan.Build(q, d, plan.Options{Reorder: true})
	if err != nil {
		return nil, err
	}
	return exec.Collect(p, d, exec.Options{})
}
