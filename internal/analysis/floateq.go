package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between float operands, and switch statements
// over a float tag, in the deterministic packages. Raw float equality is
// where the bit-level determinism contract silently leaks: NaN != NaN
// collapses every NaN payload into "unequal", and -0.0 == +0.0 merges
// two distinct bit patterns — precisely the two rules the sharding hash
// in internal/shard/shard.go has to re-state by hand. Comparison must go
// through math.Float64bits (bit identity), an eps helper (tolerance), or
// one of the allowlisted comparison helpers that exist to centralize
// those rules.
//
// Comparisons where at least one operand is a compile-time constant are
// permitted: exact-value guards like `if b == 0` (division guards,
// sentinel checks) are deliberate exact arithmetic, not a drifting
// tolerance bug, and flagging them would bury the real findings.
// Variable-to-variable equality is always flagged.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag raw ==/!=/switch on float operands outside comparison helpers",
	Run:  runFloatEq,
}

// floatEqHelpers are function names allowed to compare floats raw: the
// comparison helpers themselves. Naming a function into this set is a
// statement that it centralizes the NaN / signed-zero rules for its
// package.
var floatEqHelpers = map[string]bool{
	"feq":         true,
	"floatEq":     true,
	"float64Eq":   true,
	"epsEqual":    true,
	"almostEqual": true,
	"canonFloat":  true,
}

func runFloatEq(pass *Pass) error {
	if !pathHasAny(pass.Pkg.Path(), deterministicPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		var fnStack []string
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fnStack = append(fnStack, n.Name.Name)
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				fnStack = fnStack[:len(fnStack)-1]
				return false
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if len(fnStack) > 0 && floatEqHelpers[fnStack[len(fnStack)-1]] {
					return true
				}
				pass.checkFloatCmp(n)
			case *ast.SwitchStmt:
				if len(fnStack) > 0 && floatEqHelpers[fnStack[len(fnStack)-1]] {
					return true
				}
				if n.Tag != nil && pass.isFloat(n.Tag) && !pass.isConst(n.Tag) {
					pass.Reportf(n.Pos(), "switch on a float tag compares with raw ==: NaN never matches and -0/+0 collapse; switch on math.Float64bits or restructure")
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

func (p *Pass) checkFloatCmp(b *ast.BinaryExpr) {
	if !p.isFloat(b.X) && !p.isFloat(b.Y) {
		return
	}
	if p.isConst(b.X) || p.isConst(b.Y) {
		return // exact-value guard against a literal
	}
	p.Reportf(b.Pos(), "raw float %s: NaN payloads and -0/+0 break bit-determinism; compare math.Float64bits, use an eps helper, or centralize the rule in a *Eq helper", b.Op)
}

func (p *Pass) isFloat(e ast.Expr) bool {
	t := p.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func (p *Pass) isConst(e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
