// Command datagen generates the synthetic sales database of the paper's
// experiments (Section 9) and writes it as a directory of CSV files.
//
// Usage:
//
//	datagen -out data/ -products 100000 -orders 80000 -market 20000 -nullrate 0.05 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	arithdb "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	out := flag.String("out", "data", "output directory")
	products := flag.Int("products", 1000, "number of Products tuples")
	orders := flag.Int("orders", 800, "number of Orders tuples")
	market := flag.Int("market", 200, "number of Market tuples")
	nullRate := flag.Float64("nullrate", 0.05, "probability of a numerical null per numeric attribute")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "datagen: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}

	d, err := arithdb.GenerateSales(arithdb.SalesConfig{
		Seed:     *seed,
		Products: *products,
		Orders:   *orders,
		Market:   *market,
		NullRate: *nullRate,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := arithdb.SaveDatabase(d, *out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d tuples to %s\n", d.Size(), *out)
}
