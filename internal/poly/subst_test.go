package poly

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSubstituteRayIntoMatchesAlloc: the buffer-reusing variants agree
// with the allocating originals, including when one scratch buffer is
// threaded through polynomials of different degrees (the evaluator's
// usage pattern).
func TestSubstituteRayIntoMatchesAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var buf Uni
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(4)
		p := randPoly(r, n)
		a := make([]float64, n)
		vals := make([]float64, n)
		ray := make([]bool, n)
		for i := range a {
			a[i] = r.NormFloat64()
			vals[i] = r.NormFloat64()
			ray[i] = r.Intn(2) == 0
		}
		want := p.SubstituteRay(a)
		buf = p.SubstituteRayInto(buf, a)
		if !reflect.DeepEqual([]float64(want), []float64(buf)) && (len(want) > 0 || len(buf) > 0) {
			t.Fatalf("trial %d: into %v, want %v (p = %s)", trial, buf, want, p)
		}
		wantMixed := p.SubstituteMixed(vals, ray)
		buf = p.SubstituteMixedInto(buf, vals, ray)
		if !reflect.DeepEqual([]float64(wantMixed), []float64(buf)) && (len(wantMixed) > 0 || len(buf) > 0) {
			t.Fatalf("trial %d: mixed into %v, want %v (p = %s)", trial, buf, wantMixed, p)
		}
	}
}

// TestSubstituteRayIntoNoAlloc: steady-state reuse does not allocate.
func TestSubstituteRayIntoNoAlloc(t *testing.T) {
	p := Var(3, 0).Mul(Var(3, 1)).Add(Var(3, 2)).Add(Const(3, 2))
	a := []float64{0.3, -1.2, 0.7}
	buf := p.SubstituteRayInto(nil, a)
	allocs := testing.AllocsPerRun(100, func() {
		buf = p.SubstituteRayInto(buf, a)
	})
	if allocs != 0 {
		t.Errorf("SubstituteRayInto allocates %.1f per run with a warm buffer", allocs)
	}
}
