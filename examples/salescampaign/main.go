// Salescampaign reproduces the worked example of the paper's introduction
// and Section 5: a sales database with three relations, two numerical
// nulls (a competitor's unknown price α and an unknown recommended retail
// price α'), and one base null (an unknown excluded product). The segment
// "s" is not a certain answer to the competitive-advantage query, but it is
// an answer under the arithmetic constraint (1), whose measure of
// certainty has the closed form (π/2 − arctan(10/7)) / 2π ≈ 0.097 —
// about 0.388 of the positive quadrant.
package main

import (
	"fmt"
	"log"
	"math"

	arithdb "repro"
)

func main() {
	s := arithdb.MustSchema(
		arithdb.MustRelation("Products",
			arithdb.Col("id", arithdb.BaseCol),
			arithdb.Col("seg", arithdb.BaseCol),
			arithdb.Col("rrp", arithdb.NumCol),
			arithdb.Col("dis", arithdb.NumCol)),
		arithdb.MustRelation("Competition",
			arithdb.Col("id", arithdb.BaseCol),
			arithdb.Col("seg", arithdb.BaseCol),
			arithdb.Col("p", arithdb.NumCol)),
		arithdb.MustRelation("Excluded",
			arithdb.Col("id", arithdb.BaseCol),
			arithdb.Col("seg", arithdb.BaseCol)),
	)

	d := arithdb.NewDatabase(s)
	// ⊤0 = α: the competing product's price, scraped from the web, missing.
	d.MustInsert("Competition", arithdb.Base("c"), arithdb.Base("s"), arithdb.NullNum(0))
	d.MustInsert("Products", arithdb.Base("id1"), arithdb.Base("s"), arithdb.Num(10), arithdb.Num(0.8))
	// ⊤1 = α': id2's recommended retail price is still being negotiated.
	d.MustInsert("Products", arithdb.Base("id2"), arithdb.Base("s"), arithdb.NullNum(1), arithdb.Num(0.7))
	// ⊥0: some product of the segment is excluded — we don't know which.
	d.MustInsert("Excluded", arithdb.NullBase(0), arithdb.Base("s"))

	fmt.Println("Database:")
	fmt.Print(d)

	// The analyst's query: segments where every (non-excluded) product
	// undercuts every competing offer.
	q := arithdb.MustParseQuery(`
	q(s:base) := forall i:base, r:num, dd:num, i2:base, p:num .
	    (Products(i, s, r, dd) and not Excluded(i, s) and Competition(i2, s, p))
	    -> (r * dd <= p and r >= 0 and dd >= 0 and p >= 0)
	`)
	if err := arithdb.Typecheck(q, s); err != nil {
		log.Fatal(err)
	}

	engine := arithdb.NewEngine(arithdb.EngineOptions{Seed: 42})
	res, err := engine.Measure(q, d, []arithdb.Value{arithdb.Base("s")}, 0.01, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nμ(segment \"s\" has competitive advantage) ≈ %.4f  (%s, %d samples)\n",
		res.Value, res.Method, res.Samples)
	fmt.Printf("analytic value arctan(10/7)/2π           = %.4f\n",
		math.Atan(10.0/7)/(2*math.Pi))

	// The paper's constraint (1) — the complementary reading of the price
	// comparison — has the closed form (π/2 − arctan(10/7))/2π ≈ 0.097,
	// i.e. ≈ 0.388 of the positive quadrant (see EXPERIMENTS.md for the
	// sign discrepancy in the paper's example).
	paper := (math.Pi/2 - math.Atan(10.0/7)) / (2 * math.Pi)
	fmt.Printf("\npaper's constraint (1):       ν ≈ %.4f (= %.4f of the positive quadrant)\n",
		paper, paper*4)

	// Raising the discount (0.7 → 0.5) makes the constraint easier to
	// satisfy: the paper reports about half of the positive quadrant.
	d2 := arithdb.NewDatabase(s)
	d2.MustInsert("Competition", arithdb.Base("c"), arithdb.Base("s"), arithdb.NullNum(0))
	d2.MustInsert("Products", arithdb.Base("id1"), arithdb.Base("s"), arithdb.Num(10), arithdb.Num(0.8))
	d2.MustInsert("Products", arithdb.Base("id2"), arithdb.Base("s"), arithdb.NullNum(1), arithdb.Num(0.5))
	d2.MustInsert("Excluded", arithdb.NullBase(0), arithdb.Base("s"))
	res2, err := engine.Measure(q, d2, []arithdb.Value{arithdb.Base("s")}, 0.01, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	paper2 := (math.Pi/2 - math.Atan(10.0/5)) / (2 * math.Pi)
	fmt.Printf("with discount 0.5: μ ≈ %.4f; paper's reading ν ≈ %.4f (%.3f of the quadrant;\n"+
		"  the paper calls this \"approximately half\" — see EXPERIMENTS.md)\n",
		res2.Value, paper2, paper2*4)
}
