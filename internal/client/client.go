// Package client is the Go client of the arithdb server wire protocol
// (internal/server). It is what `arithdb sql -connect` and the end-to-end
// tests speak; responses are lossless, so a client-side result is
// bit-identical to the Session call the server ran.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/value"
	"repro/internal/wire"
)

// Client talks to one arithdbd server.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy // zero: no retries (see WithRetry)
}

// New returns a client for the server at base (e.g. "http://localhost:8080").
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// NewWith returns a client using the given http.Client (tests inject the
// in-process listener's client).
func NewWith(base string, hc *http.Client) *Client {
	c := New(base)
	if hc != nil {
		c.hc = hc
	}
	return c
}

// ServerError is a structured non-2xx response.
type ServerError struct {
	Status int
	Code   string
	Msg    string
	// RetryAfter is the server's Retry-After hint, when present.
	RetryAfter time.Duration
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d, %s)", e.Msg, e.Status, e.Code)
}

// IsBusy reports whether the server shed this request under admission
// control (queue timeout or shutdown drain) — the retryable overload
// responses.
func IsBusy(err error) bool {
	var se *ServerError
	if !errors.As(err, &se) {
		return false
	}
	return se.Status == http.StatusTooManyRequests || se.Status == http.StatusServiceUnavailable
}

// roundTrip runs one request under the retry policy. idempotent marks
// requests safe to re-run when a transport error hides the first
// attempt's fate; structured pre-commit rejections (429, non-degraded
// 503) are retried regardless — see retry.go.
func (c *Client) roundTrip(ctx context.Context, method, path string, idempotent bool, in, out any) error {
	return c.withRetries(ctx, idempotent, func() error {
		return c.do(ctx, method, path, in, out)
	})
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	se := &ServerError{Status: resp.StatusCode, Code: wire.CodeInternal}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	var er wire.ErrorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er); err == nil && er.Error != "" {
		se.Msg = er.Error
		if er.Code != "" {
			se.Code = er.Code
		}
	} else {
		se.Msg = resp.Status
	}
	return se
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.roundTrip(ctx, http.MethodGet, "/healthz", true, nil, nil)
}

// Info fetches the served database's schema and null inventory.
func (c *Client) Info(ctx context.Context) (*wire.InfoResponse, error) {
	var out wire.InfoResponse
	if err := c.roundTrip(ctx, http.MethodGet, "/v1/info", true, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Insert commits a batch of tuples into one relation on the server. The
// batch is atomic: the server validates every tuple before appending the
// first, so either all commit (as one database version step) or none do.
// Queries admitted after a successful Insert observe the new tuples; a
// query already running keeps its pinned snapshot.
func (c *Client) Insert(ctx context.Context, relation string, tuples []value.Tuple) (*wire.InsertResponse, error) {
	req := wire.InsertRequest{Relation: relation, Tuples: make([][]wire.Value, len(tuples))}
	for i, t := range tuples {
		req.Tuples[i] = wire.FromTuple(t)
	}
	var out wire.InsertResponse
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/insert", false, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MeasureSQL runs the fused measure pipeline on the server and returns
// the buffered result. Zero eps/delta take the server defaults.
func (c *Client) MeasureSQL(ctx context.Context, sql string, eps, delta float64) (*wire.MeasureResponse, error) {
	var out wire.MeasureResponse
	req := wire.MeasureRequest{SQL: sql, Eps: eps, Delta: delta}
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/sql/measure", true, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MeasureSQLStream runs the fused pipeline with incremental delivery:
// yield receives each candidate event in candidate order as the server
// finalizes it. The terminal "done" event is returned; a terminal
// "error" event (or a yield error) aborts with that error.
func (c *Client) MeasureSQLStream(ctx context.Context, sql string, eps, delta float64, yield func(ev wire.Event) error) (*wire.Event, error) {
	blob, err := json.Marshal(wire.MeasureRequest{SQL: sql, Eps: eps, Delta: delta, Stream: true})
	if err != nil {
		return nil, err
	}
	// Only the connection phase retries: once the stream has begun, a
	// failure mid-stream surfaces to the caller (re-running could replay
	// candidates the caller already consumed).
	var resp *http.Response
	err = c.withRetries(ctx, true, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sql/measure", bytes.NewReader(blob))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", "application/x-ndjson")
		r, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		if r.StatusCode != http.StatusOK {
			err := decodeError(r)
			r.Body.Close()
			return err
		}
		resp = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev wire.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("client: bad stream event: %w", err)
		}
		switch ev.Event {
		case wire.EventCandidate:
			if ev.Candidate == nil {
				return nil, fmt.Errorf("client: candidate event %d without a candidate payload", ev.Idx)
			}
			if err := yield(ev); err != nil {
				return nil, err
			}
		case wire.EventDone:
			return &ev, nil
		case wire.EventError:
			return nil, &ServerError{Status: http.StatusOK, Code: wire.CodeInternal, Msg: ev.Error}
		default:
			return nil, fmt.Errorf("client: unknown stream event %q", ev.Event)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("client: stream ended without a done event")
}

// Experiments lists the server's Figure 1 workloads.
func (c *Client) Experiments(ctx context.Context) (*wire.ExperimentsResponse, error) {
	var out wire.ExperimentsResponse
	if err := c.roundTrip(ctx, http.MethodGet, "/v1/experiments", true, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RunExperiment runs one Figure 1 workload on the server.
func (c *Client) RunExperiment(ctx context.Context, id string, eps, delta float64) (*wire.ExperimentRunResponse, error) {
	var out wire.ExperimentRunResponse
	req := wire.ExperimentRunRequest{ID: id, Eps: eps, Delta: delta}
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/experiments/run", true, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
