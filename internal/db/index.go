package db

import (
	"repro/internal/schema"
	"repro/internal/value"
)

// EqIndex is a per-column equality index: for each distinct column value,
// the ordinals (insertion positions) of the tuples carrying it, ascending.
// Entries are keyed by the columnar equality codes, so a build is one
// sequential scan over the column's flat arrays and a probe is one integer
// map lookup. A marked null indexes — and therefore equi-joins — only with
// itself, the bijective-valuation regime of Prop 5.2. The index is owned
// by the database and must not be modified.
type EqIndex struct {
	// base groups base-column rows by packed code (dictID<<1 for
	// constants, nullID<<1|1 for nulls); nil for numerical columns.
	base map[int32][]int32
	// num and nulls group numerical-column rows by canonical constant bit
	// pattern and by null ID respectively; nil for base columns.
	num   map[uint64][]int32
	nulls map[int32][]int32
}

// Base returns the row ordinals carrying the given packed base code.
func (ix *EqIndex) Base(code int32) []int32 { return ix.base[code] }

// Lookup returns the row ordinals whose column value equals v — the
// boundary-type probe used by tests and tools (the executor probes Base
// directly).
func (ix *EqIndex) Lookup(d *Database, v value.Value) []int32 {
	switch v.Kind() {
	case value.BaseConst:
		code, ok := d.LookupBaseCode(v.Str())
		if !ok {
			return nil
		}
		return ix.base[code]
	case value.BaseNull:
		return ix.base[int32(v.NullID())<<1|1]
	case value.NumConst:
		return ix.num[canonFloatBits(v.Float())]
	default:
		return ix.nulls[int32(v.NullID())]
	}
}

// Distinct returns the number of distinct keys in the index — the
// per-column cardinality statistic the planner's cost-based join ordering
// uses to estimate join fanout.
func (ix *EqIndex) Distinct() int { return len(ix.base) + len(ix.num) + len(ix.nulls) }

type indexKey struct {
	rel string
	col int
}

// BuildIndex builds an equality index of the given relation column with
// one sequential scan, without touching the database's cache (the
// transient-index mode of the executor). Use Index for the cached variant.
func (d *Database) BuildIndex(rel string, col int) *EqIndex {
	ix := &EqIndex{}
	tb := d.table(rel)
	if tb == nil {
		return ix
	}
	c := &tb.cols[col]
	if tb.rel.Columns[col].Type == schema.Base {
		ix.base = make(map[int32][]int32)
		for i, code := range c.codes {
			ix.base[code] = append(ix.base[code], int32(i))
		}
		return ix
	}
	ix.num = make(map[uint64][]int32)
	ix.nulls = make(map[int32][]int32)
	for i, k := range c.kinds {
		if k == value.NumConst {
			bits := canonFloatBits(c.nums[i])
			ix.num[bits] = append(ix.num[bits], int32(i))
		} else {
			ix.nulls[c.codes[i]] = append(ix.nulls[c.codes[i]], int32(i))
		}
	}
	return ix
}

// Index returns the equality index of the given relation column, building
// it on first use and caching it until the relation is next modified.
// Concurrent callers are safe; each (relation, column) pair is built at
// most once per version of the relation.
func (d *Database) Index(rel string, col int) *EqIndex {
	k := indexKey{rel, col}
	d.mu.Lock()
	defer d.mu.Unlock()
	if ix, ok := d.indexes[k]; ok {
		return ix
	}
	ix := d.BuildIndex(rel, col)
	if d.indexes == nil {
		d.indexes = make(map[indexKey]*EqIndex)
	}
	d.indexes[k] = ix
	return ix
}
