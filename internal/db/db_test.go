package db

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

func testSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("R",
			schema.Column{Name: "a", Type: schema.Base},
			schema.Column{Name: "x", Type: schema.Num}),
		schema.MustRelation("S",
			schema.Column{Name: "x", Type: schema.Num},
			schema.Column{Name: "y", Type: schema.Num}),
	)
}

func TestInsertValidates(t *testing.T) {
	d := New(testSchema())
	if err := d.Insert("Nope", value.Tuple{value.Base("a")}); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := d.Insert("R", value.Tuple{value.Base("a")}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := d.Insert("R", value.Tuple{value.Num(1), value.Num(2)}); err == nil {
		t.Error("sort violation accepted")
	}
	if err := d.Insert("R", value.Tuple{value.Base("a"), value.Num(2)}); err != nil {
		t.Errorf("valid insert rejected: %v", err)
	}
	if d.Size() != 1 {
		t.Errorf("size = %d", d.Size())
	}
}

func TestInsertIsolatesCallerTuple(t *testing.T) {
	d := New(testSchema())
	tup := value.Tuple{value.Base("a"), value.Num(1)}
	if err := d.Insert("R", tup); err != nil {
		t.Fatal(err)
	}
	tup[0] = value.Base("mutated")
	if d.Tuples("R")[0][0].Str() != "a" {
		t.Error("Insert aliases caller's tuple")
	}
}

func TestNullAndConstantInventories(t *testing.T) {
	d := New(testSchema())
	d.MustInsert("R", value.NullBase(3), value.NullNum(1))
	d.MustInsert("R", value.Base("a"), value.Num(10))
	d.MustInsert("S", value.NullNum(1), value.NullNum(4))
	d.MustInsert("S", value.Num(10), value.Num(-2))

	if got := d.BaseNulls(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("BaseNulls = %v", got)
	}
	if got := d.NumNulls(); !reflect.DeepEqual(got, []int{1, 4}) {
		t.Errorf("NumNulls = %v", got)
	}
	if got := d.BaseConstants(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("BaseConstants = %v", got)
	}
	if got := d.NumConstants(); !reflect.DeepEqual(got, []float64{-2, 10}) {
		t.Errorf("NumConstants = %v", got)
	}
	if d.IsComplete() {
		t.Error("database with nulls reported complete")
	}
}

func TestFreshNullsAvoidExisting(t *testing.T) {
	d := New(testSchema())
	d.MustInsert("R", value.NullBase(5), value.NullNum(7))
	if b := d.FreshBaseNull(); b.NullID() <= 5 {
		t.Errorf("fresh base null %v collides", b)
	}
	if n := d.FreshNumNull(); n.NullID() <= 7 {
		t.Errorf("fresh num null %v collides", n)
	}
	n1, n2 := d.FreshNumNull(), d.FreshNumNull()
	if n1 == n2 {
		t.Error("fresh nulls not distinct")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := New(testSchema())
	d.MustInsert("R", value.Base("a"), value.NullNum(0))
	c := d.Clone()
	c.MustInsert("R", value.Base("b"), value.Num(1))
	if d.Size() != 1 || c.Size() != 2 {
		t.Errorf("sizes after clone-insert: d=%d c=%d", d.Size(), c.Size())
	}
	c.Tuples("R")[0][0] = value.Base("z")
	if d.Tuples("R")[0][0].Str() != "a" {
		t.Error("Clone shares tuple storage")
	}
}

func TestNumNullOccurrences(t *testing.T) {
	d := New(testSchema())
	d.MustInsert("R", value.Base("a"), value.NullNum(0))
	d.MustInsert("R", value.Base("b"), value.NullNum(0)) // same null, same column: one entry
	d.MustInsert("S", value.NullNum(0), value.NullNum(1))
	d.MustInsert("S", value.Num(1), value.Num(2))

	occ := d.NumNullOccurrences()
	if len(occ) != 2 {
		t.Fatalf("occurrences for %d nulls, want 2: %v", len(occ), occ)
	}
	has := func(id int, col string) bool {
		for _, c := range occ[id] {
			if c == col {
				return true
			}
		}
		return false
	}
	if !has(0, "R.x") || !has(0, "S.x") {
		t.Errorf("⊤0 occurrences = %v", occ[0])
	}
	if len(occ[0]) != 2 {
		t.Errorf("⊤0 should have 2 distinct column occurrences, got %v", occ[0])
	}
	if !has(1, "S.y") || len(occ[1]) != 1 {
		t.Errorf("⊤1 occurrences = %v", occ[1])
	}
}

func TestValuationApply(t *testing.T) {
	d := New(testSchema())
	d.MustInsert("R", value.NullBase(0), value.NullNum(0))
	d.MustInsert("S", value.NullNum(0), value.Num(3))

	v := NewValuation()
	v.Base[0] = "c"
	v.Num[0] = 2.5
	cd, err := v.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if !cd.IsComplete() {
		t.Error("applied database still has nulls")
	}
	r := cd.Tuples("R")[0]
	if r[0].Str() != "c" || r[1].Float() != 2.5 {
		t.Errorf("R tuple after valuation: %v", r)
	}
	s := cd.Tuples("S")[0]
	if s[0].Float() != 2.5 || s[1].Float() != 3 {
		t.Errorf("S tuple after valuation: %v", s)
	}
}

func TestValuationUndefined(t *testing.T) {
	d := New(testSchema())
	d.MustInsert("R", value.NullBase(0), value.Num(1))
	v := NewValuation()
	if _, err := v.Apply(d); err == nil {
		t.Error("valuation undefined on ⊥0 accepted")
	}
	if !strings.Contains(err2(v, d), "⊥0") {
		t.Errorf("error should mention the null: %q", err2(v, d))
	}
}

func err2(v *Valuation, d *Database) string {
	_, err := v.Apply(d)
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestBijectiveBaseValuation(t *testing.T) {
	d := New(testSchema())
	d.MustInsert("R", value.NullBase(0), value.Num(1))
	d.MustInsert("R", value.NullBase(1), value.Num(2))
	d.MustInsert("R", value.Base("a"), value.NullNum(0))

	v := BijectiveBaseValuation(d)
	if len(v.Base) != 2 {
		t.Fatalf("valuation covers %d nulls", len(v.Base))
	}
	if v.Base[0] == v.Base[1] {
		t.Error("valuation not injective")
	}
	for _, img := range v.Base {
		if img == "a" {
			t.Error("valuation range intersects Cbase(D)")
		}
	}

	nd, _ := ApplyBijectiveBase(d)
	if len(nd.BaseNulls()) != 0 {
		t.Error("base nulls remain after ApplyBijectiveBase")
	}
	if got := nd.NumNulls(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("numerical nulls changed: %v", got)
	}
	if nd.Tuples("R")[0][0] == nd.Tuples("R")[1][0] {
		t.Error("distinct base nulls mapped to the same constant")
	}
}
