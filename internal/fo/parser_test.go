package fo

import (
	"strings"
	"testing"
)

func TestParseIntroQuery(t *testing.T) {
	// The introduction's competitive-advantage query.
	src := `
	q(s:base) := forall i:base, r:num, d:num, i2:base, p:num .
	    (P(i, s, r, d) and not E(i, s) and C(i2, s, p))
	    -> (r * d <= p and r >= 0 and d >= 0 and p >= 0)
	`
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "q" || len(q.Free) != 1 || q.Free[0] != (FreeVar{"s", SortBase}) {
		t.Errorf("head parsed wrong: %v %v", q.Name, q.Free)
	}
	// Five nested universal quantifiers.
	f := q.Body
	for i := 0; i < 5; i++ {
		fa, ok := f.(Forall)
		if !ok {
			t.Fatalf("expected 5 nested foralls, got %T at depth %d", f, i)
		}
		f = fa.Body
	}
	if _, ok := f.(Implies); !ok {
		t.Fatalf("expected implication under quantifiers, got %T", f)
	}
}

func TestParseRoundTrip(t *testing.T) {
	// Parsing the String rendering yields the same rendering (fixpoint).
	srcs := []string{
		`q() := exists x:num, y:num . (R(x, y) and x > y)`,
		`sel(a:base) := exists v:num . (R(a, v) and v * 0.5 + 1 <= 10)`,
		`b() := forall x:num . (S(x) -> x >= 0) or exists y:num . S(y)`,
		`c() := exists x:base . (x == "seg1" and not T(x))`,
		`d() := exists x:num . (x != 3 and -x < 2 and x - 1 > 0)`,
	}
	for _, src := range srcs {
		q1, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		q2, err := ParseQuery(q1.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("not a fixpoint:\n  %s\n  %s", q1, q2)
		}
	}
}

func TestParseDivision(t *testing.T) {
	q, err := ParseQuery(`q() := exists x:num . x / 4 > 1`)
	if err != nil {
		t.Fatal(err)
	}
	// x/4 becomes x * 0.25
	ex := q.Body.(Exists)
	cmp := ex.Body.(Cmp)
	mul, ok := cmp.L.(Mul)
	if !ok {
		t.Fatalf("division not rewritten: %T", cmp.L)
	}
	if c, ok := mul.R.(NumConst); !ok || c.Value != 0.25 {
		t.Errorf("1/4 = %v", mul.R)
	}
	if _, err := ParseQuery(`q() := exists x:num, y:num . x / y > 1`); err == nil {
		t.Error("division by variable accepted")
	}
	if _, err := ParseQuery(`q() := exists x:num . x / 0 > 1`); err == nil {
		t.Error("division by zero accepted")
	}
}

func TestParsePrecedence(t *testing.T) {
	q := MustParseQuery(`q() := exists x:num . x * 2 + 1 < 7`)
	cmp := q.Body.(Exists).Body.(Cmp)
	// (x*2) + 1, not x*(2+1)
	add, ok := cmp.L.(Add)
	if !ok {
		t.Fatalf("top of LHS should be Add, got %T", cmp.L)
	}
	if _, ok := add.L.(Mul); !ok {
		t.Errorf("Mul should bind tighter than Add: %v", add)
	}

	// and binds tighter than or; -> is weakest and right-associative.
	q2 := MustParseQuery(`q() := true and false or true -> false -> true`)
	imp, ok := q2.Body.(Implies)
	if !ok {
		t.Fatalf("top should be Implies, got %T", q2.Body)
	}
	if _, ok := imp.L.(Or); !ok {
		t.Errorf("LHS of -> should be Or, got %T", imp.L)
	}
	if _, ok := imp.R.(Implies); !ok {
		t.Errorf("-> should be right-associative, got %T", imp.R)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`q( := true`,
		`q() := `,
		`q(x:int) := true`,
		`q() := R(x`,
		`q() := exists x . true`,   // missing sort
		`q() := exists x:num true`, // missing dot
		`q() := x <`,
		`q() := "unterminated`,
		`q() := true extra`,
		`q() := exists and:num . true`, // keyword as variable
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	q, err := ParseQuery("q() := true # trailing comment\n# whole line\n and false")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Body.(And); !ok {
		t.Errorf("comment swallowed formula: %v", q.Body)
	}
}

func TestFreeVarsAndFragments(t *testing.T) {
	q := MustParseQuery(`q(s:base) := exists p:num . (R(s, p) and p > 0)`)
	fv := FreeVars(q.Body)
	if len(fv) != 1 || fv[0] != "s" {
		t.Errorf("FreeVars = %v", fv)
	}
	if !IsConjunctive(q.Body) {
		t.Error("CQ misclassified")
	}
	q2 := MustParseQuery(`q() := forall x:num . R(x, x)`)
	if IsConjunctive(q2.Body) {
		t.Error("∀ classified conjunctive")
	}

	a := Arithmetic(MustParseQuery(`q() := exists x:num, y:num . x * y < 1`).Body)
	if !a.UsesMul || !a.UsesOrder {
		t.Errorf("arithmetic = %+v", a)
	}
	a2 := Arithmetic(MustParseQuery(`q() := exists x:num . x * 2 + 1 = 3`).Body)
	if a2.UsesMul {
		t.Error("constant multiplication counted as Mul")
	}
	if !a2.UsesAdd {
		t.Error("addition missed")
	}
	a3 := Arithmetic(MustParseQuery(`q() := exists x:num, y:num . x < y`).Body)
	if a3.UsesAdd || a3.UsesMul || !a3.UsesOrder {
		t.Errorf("order-only query misclassified: %+v", a3)
	}
}

func TestCountQuantifiers(t *testing.T) {
	cases := map[string][2]int{
		`q() := true`:                                               {0, 0},
		`q() := exists a:base, x:num . R(a, x)`:                     {1, 1},
		`q() := forall x:num . (S(x) -> exists y:num . S(y))`:       {0, 2},
		`q() := not exists a:base . (T(a) or exists b:base . T(b))`: {2, 0},
		`q() := (exists x:num . S(x)) and (forall y:num . S(y))`:    {0, 2},
	}
	for src, want := range cases {
		q := MustParseQuery(src)
		b, n := CountQuantifiers(q.Body)
		if b != want[0] || n != want[1] {
			t.Errorf("%s: (%d, %d), want (%d, %d)", src, b, n, want[0], want[1])
		}
	}
}

func TestParseNumberWithQuantifierDot(t *testing.T) {
	// "2." must not eat the quantifier dot.
	if _, err := ParseQuery(`q() := exists x:num . x > 2`); err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`q() := exists x:num . x > 2.5`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "2.5") {
		t.Errorf("decimal lost: %s", q)
	}
}
