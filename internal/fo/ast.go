// Package fo implements the paper's query language: two-sorted first-order
// logic with arithmetic, FO(+,·,<), over schemas with base-typed and
// numerical columns. It provides the AST, a two-sorted typechecker, a text
// parser, and an evaluator that is generic over the numeric carrier — the
// same evaluation code runs over complete databases (carrier float64) and
// over "asymptotic reals" (univariate polynomials in the ray parameter k),
// which is how the AFPRAS of Section 8 decides lim_k f_{φ,a}(k) without
// materializing the translated formula.
package fo

import (
	"fmt"
	"sort"
	"strings"
)

// Sort is the sort of a variable or term: base or numerical.
type Sort uint8

const (
	// SortBase is the uninterpreted base sort.
	SortBase Sort = iota
	// SortNum is the numerical sort (a subset of ℝ).
	SortNum
)

// String returns "base" or "num".
func (s Sort) String() string {
	if s == SortNum {
		return "num"
	}
	return "base"
}

// Term is a term of the language. Base-type terms are variables and
// constants; numerical terms are additionally closed under + and ·
// (with - and constant division as definable shortcuts, kept in the AST
// for faithful printing).
type Term interface {
	fmt.Stringer
	isTerm()
}

// Var is a variable occurrence. Its sort is determined by its binder
// (quantifier or query head) during typechecking.
type Var struct{ Name string }

// BaseConst is a constant of the base sort.
type BaseConst struct{ Value string }

// NumConst is a constant of the numerical sort.
type NumConst struct{ Value float64 }

// Add is the numerical term L + R.
type Add struct{ L, R Term }

// Sub is the numerical term L - R (shortcut: L - R < t is L < R + t).
type Sub struct{ L, R Term }

// Mul is the numerical term L · R.
type Mul struct{ L, R Term }

// Neg is the numerical term -X.
type Neg struct{ X Term }

func (Var) isTerm()       {}
func (BaseConst) isTerm() {}
func (NumConst) isTerm()  {}
func (Add) isTerm()       {}
func (Sub) isTerm()       {}
func (Mul) isTerm()       {}
func (Neg) isTerm()       {}

// String renders the term in the parser's input syntax.
func (t Var) String() string       { return t.Name }
func (t BaseConst) String() string { return fmt.Sprintf("%q", t.Value) }
func (t NumConst) String() string  { return fmt.Sprintf("%g", t.Value) }
func (t Add) String() string       { return fmt.Sprintf("(%s + %s)", t.L, t.R) }
func (t Sub) String() string       { return fmt.Sprintf("(%s - %s)", t.L, t.R) }
func (t Mul) String() string       { return fmt.Sprintf("(%s * %s)", t.L, t.R) }
func (t Neg) String() string       { return fmt.Sprintf("(-%s)", t.X) }

// CmpOp is a comparison operator between numerical terms.
type CmpOp uint8

// Comparison operators. Only < and = are primitive in the paper; the rest
// are the standard shortcuts.
const (
	Lt CmpOp = iota
	Le
	EqNum
	NeNum
	Ge
	Gt
)

// String renders the operator symbol.
func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case EqNum:
		return "="
	case NeNum:
		return "!="
	case Ge:
		return ">="
	case Gt:
		return ">"
	}
	return "?"
}

// Formula is a formula of FO(+,·,<).
type Formula interface {
	fmt.Stringer
	isFormula()
}

// Atom is a relational atom R(t1, ..., tn).
type Atom struct {
	Rel  string
	Args []Term
}

// BaseEq is equality between base-sort terms.
type BaseEq struct{ L, R Term }

// Cmp is an arithmetic comparison between numerical terms.
type Cmp struct {
	Op   CmpOp
	L, R Term
}

// Not is negation.
type Not struct{ F Formula }

// And is conjunction.
type And struct{ L, R Formula }

// Or is disjunction.
type Or struct{ L, R Formula }

// Implies is implication (shortcut for ¬L ∨ R).
type Implies struct{ L, R Formula }

// Exists is an existential quantifier binding one typed variable.
type Exists struct {
	Var  string
	Sort Sort
	Body Formula
}

// Forall is a universal quantifier binding one typed variable.
type Forall struct {
	Var  string
	Sort Sort
	Body Formula
}

// True is the always-true formula (useful for building queries
// programmatically).
type True struct{}

// False is the always-false formula.
type False struct{}

func (Atom) isFormula()    {}
func (BaseEq) isFormula()  {}
func (Cmp) isFormula()     {}
func (Not) isFormula()     {}
func (And) isFormula()     {}
func (Or) isFormula()      {}
func (Implies) isFormula() {}
func (Exists) isFormula()  {}
func (Forall) isFormula()  {}
func (True) isFormula()    {}
func (False) isFormula()   {}

// String renders the formula in the parser's input syntax.
func (f Atom) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Rel, strings.Join(args, ", "))
}

func (f BaseEq) String() string  { return fmt.Sprintf("%s == %s", f.L, f.R) }
func (f Cmp) String() string     { return fmt.Sprintf("%s %s %s", f.L, f.Op, f.R) }
func (f Not) String() string     { return fmt.Sprintf("not (%s)", f.F) }
func (f And) String() string     { return fmt.Sprintf("(%s and %s)", f.L, f.R) }
func (f Or) String() string      { return fmt.Sprintf("(%s or %s)", f.L, f.R) }
func (f Implies) String() string { return fmt.Sprintf("(%s -> %s)", f.L, f.R) }
func (f Exists) String() string {
	return fmt.Sprintf("exists %s:%s . (%s)", f.Var, f.Sort, f.Body)
}
func (f Forall) String() string {
	return fmt.Sprintf("forall %s:%s . (%s)", f.Var, f.Sort, f.Body)
}
func (True) String() string  { return "true" }
func (False) String() string { return "false" }

// AndAll folds a list of formulas with conjunction; the empty conjunction
// is True.
func AndAll(fs ...Formula) Formula {
	var out Formula = True{}
	for i, f := range fs {
		if i == 0 {
			out = f
		} else {
			out = And{out, f}
		}
	}
	return out
}

// OrAll folds a list of formulas with disjunction; the empty disjunction is
// False.
func OrAll(fs ...Formula) Formula {
	var out Formula = False{}
	for i, f := range fs {
		if i == 0 {
			out = f
		} else {
			out = Or{out, f}
		}
	}
	return out
}

// FreeVar is a free variable of a query together with its declared sort.
type FreeVar struct {
	Name string
	Sort Sort
}

// Query is a query q(x̄, ȳ): a formula with an ordered list of typed free
// variables. Boolean queries have no free variables.
type Query struct {
	Name string
	Free []FreeVar
	Body Formula
}

// String renders "q(x:base, y:num) := body".
func (q *Query) String() string {
	frees := make([]string, len(q.Free))
	for i, fv := range q.Free {
		frees[i] = fmt.Sprintf("%s:%s", fv.Name, fv.Sort)
	}
	name := q.Name
	if name == "" {
		name = "q"
	}
	return fmt.Sprintf("%s(%s) := %s", name, strings.Join(frees, ", "), q.Body)
}

// freeVarsTerm accumulates variable names of a term.
func freeVarsTerm(t Term, out map[string]bool) {
	switch x := t.(type) {
	case Var:
		out[x.Name] = true
	case Add:
		freeVarsTerm(x.L, out)
		freeVarsTerm(x.R, out)
	case Sub:
		freeVarsTerm(x.L, out)
		freeVarsTerm(x.R, out)
	case Mul:
		freeVarsTerm(x.L, out)
		freeVarsTerm(x.R, out)
	case Neg:
		freeVarsTerm(x.X, out)
	}
}

// FreeVars returns the free variable names of the formula, sorted.
func FreeVars(f Formula) []string {
	set := make(map[string]bool)
	collectFree(f, set, make(map[string]int))
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectFree(f Formula, out map[string]bool, bound map[string]int) {
	addTerm := func(t Term) {
		vars := make(map[string]bool)
		freeVarsTerm(t, vars)
		for v := range vars {
			if bound[v] == 0 {
				out[v] = true
			}
		}
	}
	switch x := f.(type) {
	case Atom:
		for _, a := range x.Args {
			addTerm(a)
		}
	case BaseEq:
		addTerm(x.L)
		addTerm(x.R)
	case Cmp:
		addTerm(x.L)
		addTerm(x.R)
	case Not:
		collectFree(x.F, out, bound)
	case And:
		collectFree(x.L, out, bound)
		collectFree(x.R, out, bound)
	case Or:
		collectFree(x.L, out, bound)
		collectFree(x.R, out, bound)
	case Implies:
		collectFree(x.L, out, bound)
		collectFree(x.R, out, bound)
	case Exists:
		bound[x.Var]++
		collectFree(x.Body, out, bound)
		bound[x.Var]--
	case Forall:
		bound[x.Var]++
		collectFree(x.Body, out, bound)
		bound[x.Var]--
	}
}

// IsConjunctive reports whether the query body lies in the ∃,∧-fragment
// (conjunctive queries, possibly with comparison atoms). Implication,
// disjunction, negation and universal quantification disqualify it.
func IsConjunctive(f Formula) bool {
	switch x := f.(type) {
	case Atom, BaseEq, Cmp, True:
		return true
	case And:
		return IsConjunctive(x.L) && IsConjunctive(x.R)
	case Exists:
		return IsConjunctive(x.Body)
	default:
		return false
	}
}

// CountQuantifiers returns the number of base-sort and numerical-sort
// quantifiers in the formula. Active-domain evaluation and translation
// cost |domain|^quantifiers, so callers use the counts for cost guards.
func CountQuantifiers(f Formula) (base, num int) {
	switch x := f.(type) {
	case Not:
		return CountQuantifiers(x.F)
	case And:
		b1, n1 := CountQuantifiers(x.L)
		b2, n2 := CountQuantifiers(x.R)
		return b1 + b2, n1 + n2
	case Or:
		b1, n1 := CountQuantifiers(x.L)
		b2, n2 := CountQuantifiers(x.R)
		return b1 + b2, n1 + n2
	case Implies:
		b1, n1 := CountQuantifiers(x.L)
		b2, n2 := CountQuantifiers(x.R)
		return b1 + b2, n1 + n2
	case Exists:
		b, n := CountQuantifiers(x.Body)
		if x.Sort == SortBase {
			return b + 1, n
		}
		return b, n + 1
	case Forall:
		b, n := CountQuantifiers(x.Body)
		if x.Sort == SortBase {
			return b + 1, n
		}
		return b, n + 1
	}
	return 0, 0
}

// MaxArithmetic describes which arithmetic a formula uses.
type MaxArithmetic struct {
	UsesOrder bool // any of <, <=, >, >=, != between numerical terms
	UsesAdd   bool // + or - anywhere in a term
	UsesMul   bool // · between two non-constant terms
}

// Arithmetic inspects the formula and reports which operations it uses;
// multiplication by a constant counts as linear (UsesAdd), matching the
// classes CQ(<), CQ(+,<), FO(+,·,<) of the paper.
func Arithmetic(f Formula) MaxArithmetic {
	var m MaxArithmetic
	scanArith(f, &m)
	return m
}

func scanArith(f Formula, m *MaxArithmetic) {
	var scanTerm func(t Term)
	isConstTerm := func(t Term) bool {
		vars := make(map[string]bool)
		freeVarsTerm(t, vars)
		return len(vars) == 0
	}
	scanTerm = func(t Term) {
		switch x := t.(type) {
		case Add:
			m.UsesAdd = true
			scanTerm(x.L)
			scanTerm(x.R)
		case Sub:
			m.UsesAdd = true
			scanTerm(x.L)
			scanTerm(x.R)
		case Neg:
			m.UsesAdd = true
			scanTerm(x.X)
		case Mul:
			if !isConstTerm(x.L) && !isConstTerm(x.R) {
				m.UsesMul = true
			}
			scanTerm(x.L)
			scanTerm(x.R)
		}
	}
	switch x := f.(type) {
	case Cmp:
		if x.Op != EqNum {
			m.UsesOrder = true
		}
		scanTerm(x.L)
		scanTerm(x.R)
	case Atom:
		for _, a := range x.Args {
			scanTerm(a)
		}
	case Not:
		scanArith(x.F, m)
	case And:
		scanArith(x.L, m)
		scanArith(x.R, m)
	case Or:
		scanArith(x.L, m)
		scanArith(x.R, m)
	case Implies:
		scanArith(x.L, m)
		scanArith(x.R, m)
	case Exists:
		scanArith(x.Body, m)
	case Forall:
		scanArith(x.Body, m)
	}
}
