package geometry

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mc"
)

// VolumeOptions tunes the multiphase volume estimator.
type VolumeOptions struct {
	// SamplesPerPhase is the number of hit-and-run samples used to estimate
	// each telescoping ratio. Default 2000.
	SamplesPerPhase int
	// Burnin is the number of chain steps between samples. Default 6n.
	Burnin int
}

func (o VolumeOptions) withDefaults(n int) VolumeOptions {
	if o.SamplesPerPhase <= 0 {
		o.SamplesPerPhase = 2000
	}
	if o.Burnin <= 0 {
		o.Burnin = 6 * n
	}
	return o
}

// Volume estimates the volume of a convex body by the Dyer–Frieze–Kannan
// multiphase Monte-Carlo scheme. Writing x₀ for an interior point with
// inscribed radius ρ (found by LP) and R_out for a radius with
// body ⊆ B(x₀, R_out), the telescoping product over K_i = body ∩ B(x₀, ρ·2^{i/n})
//
//	Vol(body) = Vol(B(x₀,ρ)) · Π_i Vol(K_{i+1})/Vol(K_i)
//
// is estimated ratio by ratio, sampling K_{i+1} with hit-and-run and
// counting the fraction of samples landing in K_i. Convexity guarantees
// each ratio lies in [1, 2], which keeps the per-phase variance bounded.
// It returns 0 for bodies with empty interior.
func Volume(b *Body, rng *rand.Rand, opts VolumeOptions) (float64, error) {
	n := b.N
	if n == 0 {
		return 1, nil
	}
	opts = opts.withDefaults(n)

	x0, rho, ok, err := b.InteriorPoint()
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil // empty interior → volume 0 (lower-dimensional or empty)
	}

	// Outer radius: the body is contained in each of its ball constraints;
	// bound the distance from x0 to any point of the body by center
	// distance + R. Without ball constraints the cone is unbounded and the
	// caller must have added one.
	rOut := math.Inf(1)
	for _, bl := range b.Balls {
		d := 0.0
		for i := range x0 {
			dd := x0[i] - bl.Center[i]
			d += dd * dd
		}
		rOut = math.Min(rOut, math.Sqrt(d)+bl.R)
	}
	if math.IsInf(rOut, 1) {
		return 0, fmt.Errorf("geometry: Volume requires a bounded body (add a ball constraint)")
	}

	// Phase radii ρ·2^{i/n} from ρ up to rOut.
	phases := int(math.Ceil(float64(n) * math.Log2(rOut/rho)))
	if phases < 0 {
		phases = 0
	}
	vol := BallVolume(n, rho)
	r := rho
	for i := 0; i < phases; i++ {
		rNext := math.Min(r*math.Pow(2, 1/float64(n)), rOut)
		inner := b.WithBall(x0, r)
		outer := b.WithBall(x0, rNext)
		s, err := NewSampler(outer, x0, rng, opts.Burnin)
		if err != nil {
			return 0, err
		}
		hits := 0
		for j := 0; j < opts.SamplesPerPhase; j++ {
			if inner.Contains(s.Next(), 1e-12) {
				hits++
			}
		}
		if hits == 0 {
			return 0, fmt.Errorf("geometry: phase %d ratio estimate degenerate (0 hits)", i)
		}
		// Vol(K_{i+1})/Vol(K_i) = samples/hits.
		vol *= float64(opts.SamplesPerPhase) / float64(hits)
		r = rNext
	}
	return vol, nil
}

// UnionVolumeOptions tunes the union estimator.
type UnionVolumeOptions struct {
	// Samples is the number of Karp–Luby rounds. Default 20000.
	Samples int
	// Volume options for the per-body estimates.
	Volume VolumeOptions
	// Burnin between union-phase samples. Default 6n.
	Burnin int
}

// UnionVolume estimates Vol(X₁ ∪ ... ∪ X_m) for convex bodies X_i by the
// Karp–Luby importance-sampling scheme that the Bringmann–Friedrich FPRAS
// [9] builds on: estimate each Vol(X_i), then repeatedly pick a body with
// probability proportional to its volume, draw a uniform point from it, and
// average 1/|{j : x ∈ X_j}|; the union volume is ΣVol(X_i) times that
// average. Bodies with empty interior contribute nothing.
func UnionVolume(bodies []*Body, rng *rand.Rand, opts UnionVolumeOptions) (float64, error) {
	if len(bodies) == 0 {
		return 0, nil
	}
	n := bodies[0].N
	if opts.Samples <= 0 {
		opts.Samples = 20000
	}
	if opts.Burnin <= 0 {
		opts.Burnin = 6 * n
	}

	type prepared struct {
		body *Body
		vol  float64
		x0   []float64
	}
	var ps []prepared
	total := 0.0
	for _, b := range bodies {
		if b.N != n {
			return 0, fmt.Errorf("geometry: UnionVolume with mixed dimensions %d and %d", n, b.N)
		}
		x0, _, ok, err := b.InteriorPoint()
		if err != nil {
			return 0, err
		}
		if !ok {
			continue
		}
		v, err := Volume(b, rng, opts.Volume)
		if err != nil {
			return 0, err
		}
		if v <= 0 {
			continue
		}
		ps = append(ps, prepared{body: b, vol: v, x0: x0})
		total += v
	}
	if len(ps) == 0 || total == 0 {
		return 0, nil
	}

	samplers := make([]*Sampler, len(ps))
	for i, p := range ps {
		s, err := NewSampler(p.body, p.x0, rng, opts.Burnin)
		if err != nil {
			return 0, err
		}
		samplers[i] = s
	}

	var mean mc.Mean
	for t := 0; t < opts.Samples; t++ {
		// Pick a body ∝ volume.
		u := rng.Float64() * total
		idx := 0
		for acc := ps[0].vol; idx < len(ps)-1 && u > acc; {
			idx++
			acc += ps[idx].vol
		}
		x := samplers[idx].Next()
		count := 0
		for _, p := range ps {
			if p.body.Contains(x, 1e-12) {
				count++
			}
		}
		if count == 0 {
			count = 1 // the sampled body itself, up to numerical tolerance
		}
		mean.Add(1 / float64(count))
	}
	return total * mean.Value(), nil
}
