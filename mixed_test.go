package arithdb_test

// Mixed insert/query workload tests: incrementally maintained indexes
// and inventories must be invisible in query results — byte-identical to
// a from-scratch rebuild after every insert — and snapshot-pinned
// readers must see stable results while a writer commits (run the suite
// with -race to check the latter).

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	arithdb "repro"
)

// salesFixture builds a small sales database for mutation tests (the
// shared figureWorkload database must stay immutable).
func salesFixture(t testing.TB) *arithdb.Database {
	t.Helper()
	d, err := arithdb.GenerateSales(arithdb.SalesConfig{
		Seed: 11, Products: 60, Orders: 45, Market: 20, Segments: 6,
		NullRate: 0.3, MarketNullRate: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// randMarketTuple draws a Market(seg, rrp, dis) tuple; a third of the
// rows carry fresh numerical nulls so the inventories and the formula
// variable indexing keep shifting.
func randMarketTuple(rng *rand.Rand, d *arithdb.Database) arithdb.Tuple {
	rrp := arithdb.Value(arithdb.Num(float64(rng.Intn(200)) / 2))
	if rng.Intn(3) == 0 {
		rrp = d.FreshNumNull()
	}
	return arithdb.Tuple{
		arithdb.Base(fmt.Sprintf("seg%d", rng.Intn(6))),
		rrp,
		arithdb.Num(float64(rng.Intn(10)) / 10),
	}
}

// evalFingerprint renders a conditional evaluation byte-comparably.
func evalFingerprint(t testing.TB, eng *arithdb.Engine, q *arithdb.SQLQuery, d *arithdb.Database) string {
	t.Helper()
	res, err := eng.EvaluateSQL(q, d)
	if err != nil {
		t.Fatal(err)
	}
	out := fmt.Sprintf("derivations=%d nulls=%v\n", res.Derivations, res.NullIDs)
	for _, c := range res.Candidates {
		out += fmt.Sprintf("%s | %v\n", c.Tuple.Key(), c.Phi)
	}
	return out
}

// TestIncrementalQueryParity grows a database by incremental inserts
// with hot caches and verifies, after every insert, that conditional
// evaluation is byte-identical to a from-scratch rebuild (Clone starts
// with cold caches), and that measured confidences agree bit-for-bit.
func TestIncrementalQueryParity(t *testing.T) {
	d := salesFixture(t)
	rng := rand.New(rand.NewSource(3))
	query, err := arithdb.ParseSQL(arithdb.QueryCompetitiveAdvantage)
	if err != nil {
		t.Fatal(err)
	}
	eng := arithdb.NewEngine(arithdb.EngineOptions{Seed: 7})
	sess := arithdb.NewSession(d, arithdb.EngineOptions{Seed: 7})

	// Warm every cache the query touches, so inserts maintain them.
	evalFingerprint(t, eng, query, d)

	for i := 0; i < 25; i++ {
		if err := sess.Insert("Market", randMarketTuple(rng, d)...); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			d.Snapshot() // exercise the copy-on-write paths too
		}
		got := evalFingerprint(t, eng, query, d)
		want := evalFingerprint(t, eng, query, d.Clone())
		if got != want {
			t.Fatalf("insert %d: incremental evaluation diverged from rebuild:\n--- incremental\n%s--- rebuild\n%s", i, got, want)
		}
	}

	// Measured confidences over the final state: incremental vs rebuilt,
	// bit-identical.
	res, err := sess.MeasureSQLQuery(query, 0.1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := arithdb.NewSession(d.Clone(), arithdb.EngineOptions{Seed: 7})
	want, err := rebuilt.MeasureSQLQuery(query, 0.1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != len(want.Candidates) {
		t.Fatalf("candidates %d vs %d", len(res.Candidates), len(want.Candidates))
	}
	for i := range res.Candidates {
		g, w := res.Candidates[i], want.Candidates[i]
		if !g.Tuple.Equal(w.Tuple) ||
			math.Float64bits(g.Measure.Value) != math.Float64bits(w.Measure.Value) {
			t.Fatalf("candidate %d: (%v, %v) vs (%v, %v)", i, g.Tuple, g.Measure.Value, w.Tuple, w.Measure.Value)
		}
	}
}

// TestSnapshotQueriesUnderConcurrentInserts pins snapshots in reader
// goroutines and measures on them repeatedly while the writer keeps
// inserting — results on one snapshot must be bit-identical no matter
// how many commits land meanwhile. Run with -race.
func TestSnapshotQueriesUnderConcurrentInserts(t *testing.T) {
	d := salesFixture(t)
	query, err := arithdb.ParseSQL(arithdb.QueryCompetitiveAdvantage)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the caches so writers exercise incremental maintenance + COW.
	arithdb.NewEngine(arithdb.EngineOptions{Seed: 7}).EvaluateSQL(query, d)

	const readers = 3
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			eng := arithdb.NewEngine(arithdb.EngineOptions{Seed: 7, PoolWorkers: 1})
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := d.Snapshot()
				a, err := eng.MeasureSQL(query, snap, 0.1, 0.25)
				if err != nil {
					errs <- err
					return
				}
				b, err := eng.MeasureSQL(query, snap, 0.1, 0.25)
				if err != nil {
					errs <- err
					return
				}
				if len(a.Candidates) != len(b.Candidates) {
					errs <- fmt.Errorf("reader %d: snapshot result moved: %d vs %d candidates",
						r, len(a.Candidates), len(b.Candidates))
					return
				}
				for j := range a.Candidates {
					if math.Float64bits(a.Candidates[j].Measure.Value) != math.Float64bits(b.Candidates[j].Measure.Value) {
						errs <- fmt.Errorf("reader %d: candidate %d measure moved", r, j)
						return
					}
				}
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(9))
	sess := arithdb.NewSession(d, arithdb.EngineOptions{Seed: 7})
	for i := 0; i < 40; i++ {
		if err := sess.Insert("Market", randMarketTuple(rng, d)...); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
