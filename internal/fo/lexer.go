package fo

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // quoted base constant
	tokSymbol // operators and punctuation
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int // byte offset in input, for error messages
}

// symbols, longest first so that the lexer is greedy.
var symbols = []string{
	":=", "->", "==", "!=", "<=", ">=",
	"<", ">", "=", "+", "-", "*", "/", "(", ")", ",", ".", ":",
}

// lex splits the input into tokens. It returns a descriptive error with a
// byte offset on any malformed input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
outer:
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
			continue
		case c == '#': // comment to end of line
			for i < n && input[i] != '\n' {
				i++
			}
			continue
		case c == '"':
			j := i + 1
			for j < n && input[j] != '"' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("fo: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tokString, text: input[i+1 : j], pos: i})
			i = j + 1
			continue
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			j := i
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.' ||
				input[j] == 'e' || input[j] == 'E' ||
				(j > i && (input[j] == '+' || input[j] == '-') && (input[j-1] == 'e' || input[j-1] == 'E'))) {
				j++
			}
			text := input[i:j]
			// A trailing '.' belongs to the formula syntax (quantifier dot),
			// not the number, unless followed by a digit.
			if strings.HasSuffix(text, ".") {
				text = text[:len(text)-1]
				j--
			}
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("fo: bad number %q at offset %d", text, i)
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: f, pos: i})
			i = j
			continue
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: input[i:j], pos: i})
			i = j
			continue
		default:
			for _, s := range symbols {
				if strings.HasPrefix(input[i:], s) {
					toks = append(toks, token{kind: tokSymbol, text: s, pos: i})
					i += len(s)
					continue outer
				}
			}
			return nil, fmt.Errorf("fo: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}
