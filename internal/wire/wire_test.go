package wire

import (
	"encoding/json"
	"math"
	"math/big"
	"testing"

	"repro/internal/core"
	"repro/internal/value"
)

// TestValueRoundTrip: every value kind survives the wire bit-for-bit,
// including the floats JSON numbers cannot carry.
func TestValueRoundTrip(t *testing.T) {
	vals := value.Tuple{
		value.Base(""),
		value.Base("ACME Ltd. — ünïcode\n\"quotes\""),
		value.Num(0),
		value.Num(math.Copysign(0, -1)), // -0 stays distinct from +0
		value.Num(3.5),
		value.Num(1e-300),
		value.Num(math.MaxFloat64),
		value.Num(math.Inf(1)),
		value.Num(math.Inf(-1)),
		value.Num(math.NaN()),
		value.Num(0.1 + 0.2), // not representable exactly in short decimal... except shortest-round-trip handles it
		value.NullBase(0),
		value.NullBase(12345),
		value.NullNum(7),
	}
	blob, err := json.Marshal(FromTuple(vals))
	if err != nil {
		t.Fatal(err)
	}
	var ws []Value
	if err := json.Unmarshal(blob, &ws); err != nil {
		t.Fatal(err)
	}
	got, err := ToTuple(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("length %d, want %d", len(got), len(vals))
	}
	for i := range vals {
		if vals[i].Kind() != got[i].Kind() {
			t.Fatalf("value %d: kind %v, want %v", i, got[i].Kind(), vals[i].Kind())
		}
		// Tuple.Key canonicalizes exactly the way candidate identity does
		// (bit equality except NaN payloads, -0 ≠ +0).
		if (value.Tuple{vals[i]}).Key() != (value.Tuple{got[i]}).Key() {
			t.Fatalf("value %d: %v did not round-trip (got %v)", i, vals[i], got[i])
		}
	}
	// Explicit -0 sign check: Key keeps the sign bit.
	neg, _ := ws[3].Value()
	if math.Signbit(neg.Float()) != true {
		t.Fatal("-0 lost its sign on the wire")
	}
}

// TestMeasureRoundTrip: core.Result survives, including exact rationals.
func TestMeasureRoundTrip(t *testing.T) {
	results := []core.Result{
		{Value: 0.5, Rat: big.NewRat(1, 2), Exact: true, Method: core.MethodExactCells, K: 3, RelevantK: 2},
		{Value: 1, Rat: big.NewRat(1, 1), Exact: true, Method: core.MethodTrivial, K: 0},
		{Value: 0.123456789012345678, Method: core.MethodAFPRAS, Samples: 4711, K: 9, RelevantK: 4},
		{Value: 0.7853981633974483, Exact: true, Method: core.MethodExactSector, K: 2, RelevantK: 2},
	}
	for i, r := range results {
		blob, err := json.Marshal(FromResult(r))
		if err != nil {
			t.Fatal(err)
		}
		var m Measure
		if err := json.Unmarshal(blob, &m); err != nil {
			t.Fatal(err)
		}
		got, err := m.Result()
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Value) != math.Float64bits(r.Value) {
			t.Fatalf("result %d: value %v, want %v (bits differ)", i, got.Value, r.Value)
		}
		if got.Exact != r.Exact || got.Method != r.Method || got.Samples != r.Samples ||
			got.K != r.K || got.RelevantK != r.RelevantK {
			t.Fatalf("result %d: %+v, want %+v", i, got, r)
		}
		if (got.Rat == nil) != (r.Rat == nil) {
			t.Fatalf("result %d: rat presence mismatch", i)
		}
		if got.Rat != nil && got.Rat.Cmp(r.Rat) != 0 {
			t.Fatalf("result %d: rat %v, want %v", i, got.Rat, r.Rat)
		}
	}
}

// TestValueDecodeErrors: malformed wire values produce errors, not panics.
func TestValueDecodeErrors(t *testing.T) {
	bad := []Value{
		{Kind: "banana"},
		{Kind: KindNum, Num: "not-a-number"},
		{Kind: KindNum, Num: ""},
		{},
	}
	for i, w := range bad {
		if _, err := w.Value(); err == nil {
			t.Errorf("bad value %d decoded without error", i)
		}
	}
	if _, err := (Measure{Rat: "1/0/oops"}).Result(); err == nil {
		t.Error("bad rational decoded without error")
	}
}

// FuzzValueRoundTrip: arbitrary JSON either fails to decode as a wire
// value or round-trips losslessly; no input panics.
func FuzzValueRoundTrip(f *testing.F) {
	f.Add([]byte(`{"kind":"base","str":"x"}`))
	f.Add([]byte(`{"kind":"num","num":"-0"}`))
	f.Add([]byte(`{"kind":"num","num":"NaN"}`))
	f.Add([]byte(`{"kind":"num-null","id":3}`))
	f.Add([]byte(`{"kind":"banana","id":-1}`))
	f.Add([]byte(`[{"kind":"base-null","id":9}]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var w Value
		if err := json.Unmarshal(data, &w); err != nil {
			return
		}
		v, err := w.Value()
		if err != nil {
			return
		}
		back, err := FromValue(v).Value()
		if err != nil {
			t.Fatalf("re-encoded value failed to decode: %v", err)
		}
		if (value.Tuple{v}).Key() != (value.Tuple{back}).Key() {
			t.Fatalf("round trip changed %v to %v", v, back)
		}
	})
}
