// Package exec is the vectorized executor of the SQL pipeline: it runs a
// logical plan (package plan) over the columnar storage engine (package
// db) with an iterator model and emits (tuple, constraint-disjunct) pairs
// — one per surviving join combination — incrementally, instead of
// materializing the naive join.
//
// All predicate evaluation happens over the flat columnar arrays without
// boxing values:
//
//   - base-typed (in)equalities compare packed dictionary/null codes —
//     one int32 comparison per condition (marked base nulls join only
//     with themselves, per Prop 5.2);
//   - hash joins probe the database's equality indexes by code;
//   - numeric conditions run as small postorder programs: when every
//     referenced cell is a constant they fold with scalar arithmetic that
//     mirrors the polynomial algebra exactly, otherwise they evaluate in
//     a reusable poly.Scratch arena. A constraint atom is materialized
//     into an immutable polynomial only when a consumer actually keeps
//     the derivation, which is what makes LIMIT'ed queries run with
//     near-zero allocation.
//
// Each derivation's conjunction is laid out in the plan's canonical
// order, so the constraint formulas are byte-identical to those of the
// pre-planner evaluator regardless of the join order executed; when the
// planner reordered joins, Run restores the original derivation order
// before emitting.
//
// The executor is snapshot-ready: a cursor resolves its column views,
// equality indexes and row counts once at construction, so running it
// over db.Snapshot() — an immutable view — is safe concurrently with a
// writer committing new versions. Running over the live writer database
// is only safe while no insert is in flight (the single-goroutine
// Session regime).
package exec

import (
	"fmt"
	"sort"

	"repro/internal/db"
	"repro/internal/plan"
	"repro/internal/poly"
	"repro/internal/realfmla"
	"repro/internal/sqlast"
	"repro/internal/value"
)

// Options configures execution.
type Options struct {
	// NoDBIndexes makes the executor build transient per-query hash
	// tables instead of using (and lazily building) the database's
	// persistent equality indexes.
	NoDBIndexes bool
	// NoHashJoin disables index/hash access paths entirely: every step
	// becomes a full scan with residual condition checks — the naive
	// nested-loop baseline.
	NoHashJoin bool
	// Interrupt, when set, is polled every few thousand derivations
	// during aggregation; a non-nil return aborts the run with that
	// error. Servers wire a request context's Err here so an abandoned
	// query stops enumerating (the join space can be enormous) instead
	// of running to completion for nobody.
	Interrupt func() error
	// TrackRows makes emitted derivations carry their bound row ordinals
	// (Deriv.Rows) even on streaming (Identity) plans, where Run itself
	// does not need them. The sharded scatter-gather coordinator uses
	// the ordinals to merge per-shard derivation streams back into the
	// global derivation order.
	TrackRows bool
}

// Deriv is one derivation: a surviving join combination. Tuple is the
// projected answer tuple, Conj the constraint atoms it is conditioned on
// (in the plan's canonical order; empty means unconditional), and Rows
// the bound row ordinals per original FROM position (the derivation's
// rank in the naive nested-loop enumeration). Rows is populated only for
// reordered (non-Identity) plans, where Run needs it to restore
// derivation order; on streaming plans the emission order already is the
// derivation order.
type Deriv struct {
	Tuple value.Tuple
	Conj  []realfmla.Formula
	Rows  []int
}

// numeric-program opcodes, the postorder lowering of plan.NumExpr.
const (
	opConst uint8 = iota
	opCell
	opNeg
	opAdd
	opSub
	opMul
)

// instr is one instruction of a condition's numeric program. opCell
// instructions carry the resolved columnar view of the referenced cell's
// column and the pipeline step binding its row.
type instr struct {
	op   uint8
	c    float64 // opConst
	step int     // opCell
	col  db.ColView
}

// stepState is the runtime state of one pipeline step.
type stepState struct {
	relation string
	n        int

	access     plan.AccessKind
	outer      db.ColView // IndexEq: probe column of the outer step
	outerStep  int
	localCol   int
	litCode    int32 // IndexConst: packed code of the literal
	litOK      bool
	accessCond int
	conds      []int

	ix    *db.EqIndex
	cand  []int32
	ncand int
	pos   int
	probe bool
}

// condState is the runtime state of one planned condition. For numeric
// conditions it holds the postorder program, the scratch arena the
// condition evaluates in, and the pending constraint atom of the current
// binding (materialized lazily, at most once per binding).
type condState struct {
	kind plan.CondKind

	// CondBaseEq / CondBaseEqConst: packed-code columns of both sides.
	l, r         db.ColView
	lStep, rStep int
	litCode      int32
	litOK        bool

	// CondNumCmp.
	rel     realfmla.Rel
	prog    []instr
	scratch poly.Scratch
	hasAtom bool
	sp      poly.SPoly
	fm      realfmla.Formula // memoized materialized atom of the current binding
}

// projCell is one projected output cell.
type projCell struct {
	step int
	col  db.ColView
}

// Cursor is a pull-based iterator over the derivations of a plan, in
// executor order (the plan's join order). Use Run to consume derivations
// in the original derivation order regardless of reordering.
type Cursor struct {
	p    *plan.Plan
	d    *db.Database
	opts Options
	err  error

	steps  []stepState
	conds  []condState
	proj   []projCell
	ords   []int32
	fstack []float64
	pstack []poly.SPoly

	depth   int
	started bool
	done    bool
}

// relOf maps sqlast comparison operators to sign relations, matching the
// pre-planner evaluator's table.
var relOf = [...]realfmla.Rel{realfmla.LT, realfmla.LE, realfmla.EQ, realfmla.NE, realfmla.GE, realfmla.GT}

// NewCursor opens a cursor over the plan.
func NewCursor(p *plan.Plan, d *db.Database, opts Options) *Cursor {
	ns := len(p.Steps)
	c := &Cursor{
		p: p, d: d, opts: opts,
		steps: make([]stepState, ns),
		conds: make([]condState, len(p.Conds)),
		ords:  make([]int32, ns),
	}
	for s := range p.Steps {
		ps := &p.Steps[s]
		st := &c.steps[s]
		st.relation = ps.Relation
		st.n = d.Len(ps.Relation)
		st.access = ps.Access
		st.accessCond = ps.AccessCond
		st.conds = ps.Conds
		st.localCol = ps.LocalCol
		switch ps.Access {
		case plan.IndexEq:
			st.outerStep = ps.Outer.Step
			st.outer = d.Col(p.Steps[ps.Outer.Step].Relation, ps.Outer.Col)
		case plan.IndexConst:
			st.litCode, st.litOK = d.LookupBaseCode(ps.Lit.Str())
		}
	}
	for ci := range p.Conds {
		pc := &p.Conds[ci]
		cs := &c.conds[ci]
		cs.kind = pc.Kind
		switch pc.Kind {
		case plan.CondBaseEq:
			cs.lStep, cs.rStep = pc.L.Step, pc.R.Step
			cs.l = d.Col(p.Steps[pc.L.Step].Relation, pc.L.Col)
			cs.r = d.Col(p.Steps[pc.R.Step].Relation, pc.R.Col)
		case plan.CondBaseEqConst:
			cs.lStep = pc.L.Step
			cs.l = d.Col(p.Steps[pc.L.Step].Relation, pc.L.Col)
			cs.litCode, cs.litOK = d.LookupBaseCode(pc.Lit.Str())
		case plan.CondNumCmp:
			cs.rel = relOf[pc.Op]
			cs.prog = c.lowerExpr(cs.prog, pc.LExp)
			cs.prog = c.lowerExpr(cs.prog, pc.RExp)
			cs.prog = append(cs.prog, instr{op: opSub})
		}
	}
	c.proj = make([]projCell, len(p.Project))
	for i, cell := range p.Project {
		c.proj[i] = projCell{step: cell.Step, col: d.Col(p.Steps[cell.Step].Relation, cell.Col)}
	}
	return c
}

// lowerExpr appends the postorder program of e — the evaluation order of
// the recursive polynomial construction it replaces.
func (c *Cursor) lowerExpr(prog []instr, e *plan.NumExpr) []instr {
	switch e.Kind {
	case sqlast.ExprConst:
		return append(prog, instr{op: opConst, c: e.Const})
	case sqlast.ExprCol:
		cv := c.d.Col(c.p.Steps[e.Cell.Step].Relation, e.Cell.Col)
		if len(cv.Kinds) > 0 && cv.Nums == nil {
			// A base column in arithmetic cannot come out of plan.Build
			// (the resolver rejects it); guard hand-built plans.
			c.err = fmt.Errorf("exec: base column in arithmetic at step %d", e.Cell.Step)
		}
		return append(prog, instr{op: opCell, step: e.Cell.Step, col: cv})
	case sqlast.ExprNeg:
		prog = c.lowerExpr(prog, e.L)
		return append(prog, instr{op: opNeg})
	case sqlast.ExprAdd, sqlast.ExprSub, sqlast.ExprMul:
		prog = c.lowerExpr(prog, e.L)
		prog = c.lowerExpr(prog, e.R)
		op := opAdd
		if e.Kind == sqlast.ExprSub {
			op = opSub
		} else if e.Kind == sqlast.ExprMul {
			op = opMul
		}
		return append(prog, instr{op: op})
	}
	c.err = fmt.Errorf("exec: unknown expression kind")
	return prog
}

// advance moves the cursor to the next surviving full binding, reporting
// false at exhaustion.
func (c *Cursor) advance() bool {
	if c.done || c.err != nil {
		return false
	}
	s := c.depth
	if !c.started {
		c.started = true
		s = 0
		c.enter(0)
	}
	last := len(c.steps) - 1
	for s >= 0 {
		st := &c.steps[s]
		if st.pos >= st.ncand {
			s--
			continue
		}
		i := st.pos
		st.pos++
		ord := int32(i)
		if st.cand != nil {
			ord = st.cand[i]
		}
		c.ords[s] = ord
		if !c.applyConds(s) {
			continue
		}
		if s == last {
			c.depth = s
			return true
		}
		s++
		c.enter(s)
	}
	c.done = true
	return false
}

// enter prepares step s's candidate rows for the current outer binding:
// an index probe when the plan chose one (and hashing is enabled), a full
// scan otherwise.
func (c *Cursor) enter(s int) {
	st := &c.steps[s]
	st.pos = 0
	st.probe = false
	if !c.opts.NoHashJoin && st.access != plan.FullScan {
		ok := true
		var code int32
		if st.access == plan.IndexEq {
			code = st.outer.Codes[c.ords[st.outerStep]]
		} else {
			code, ok = st.litCode, st.litOK
		}
		if ok {
			st.cand = c.index(s).Base(code)
		} else {
			st.cand = nil
		}
		st.ncand = len(st.cand)
		st.probe = true
		return
	}
	st.cand = nil
	st.ncand = st.n
}

// index returns the equality index serving step s's access path, caching
// the handle on the cursor (and building a transient one in NoDBIndexes
// mode).
func (c *Cursor) index(s int) *db.EqIndex {
	st := &c.steps[s]
	if st.ix != nil {
		return st.ix
	}
	if c.opts.NoDBIndexes {
		st.ix = c.d.BuildIndex(st.relation, st.localCol)
	} else {
		st.ix = c.d.Index(st.relation, st.localCol)
	}
	return st.ix
}

// applyConds evaluates every condition placed at step s for the current
// binding: base conditions decide with one packed-code comparison,
// numeric conditions either decide (constant program) or record a pending
// constraint atom in the condition's scratch arena. The access condition
// is skipped when the index probe already guarantees it.
func (c *Cursor) applyConds(s int) bool {
	st := &c.steps[s]
	for _, ci := range st.conds {
		if st.probe && ci == st.accessCond {
			continue
		}
		cs := &c.conds[ci]
		switch cs.kind {
		case plan.CondBaseEq:
			if cs.l.Codes[c.ords[cs.lStep]] != cs.r.Codes[c.ords[cs.rStep]] {
				return false
			}
		case plan.CondBaseEqConst:
			if !cs.litOK || cs.l.Codes[c.ords[cs.lStep]] != cs.litCode {
				return false
			}
		case plan.CondNumCmp:
			if !c.applyNumCond(cs) {
				return false
			}
		}
	}
	return true
}

// applyNumCond evaluates a numeric condition for the current binding.
func (c *Cursor) applyNumCond(cs *condState) bool {
	cs.hasAtom = false
	cs.fm = nil
	allConst := true
	for i := range cs.prog {
		in := &cs.prog[i]
		if in.op == opCell && in.col.Kinds[c.ords[in.step]] != value.NumConst {
			allConst = false
			break
		}
	}
	if allConst {
		return cs.rel.Holds(c.evalScalar(cs))
	}
	cs.scratch.Reset()
	sp := c.evalScratch(cs)
	if v, ok := cs.scratch.IsConst(sp); ok {
		return cs.rel.Holds(v)
	}
	cs.hasAtom = true
	cs.sp = sp
	return true
}

// evalScalar runs the program over constants only, with the scalar mirror
// of the polynomial algebra (poly.Fold*), so the decision agrees exactly
// with the polynomial path.
func (c *Cursor) evalScalar(cs *condState) float64 {
	stk := c.fstack[:0]
	for i := range cs.prog {
		in := &cs.prog[i]
		switch in.op {
		case opConst:
			stk = append(stk, poly.FoldConst(in.c))
		case opCell:
			stk = append(stk, poly.FoldConst(in.col.Nums[c.ords[in.step]]))
		case opNeg:
			stk[len(stk)-1] = poly.FoldNeg(stk[len(stk)-1])
		case opAdd:
			stk[len(stk)-2] = poly.FoldAdd(stk[len(stk)-2], stk[len(stk)-1])
			stk = stk[:len(stk)-1]
		case opSub:
			stk[len(stk)-2] = poly.FoldSub(stk[len(stk)-2], stk[len(stk)-1])
			stk = stk[:len(stk)-1]
		case opMul:
			stk[len(stk)-2] = poly.FoldMul(stk[len(stk)-2], stk[len(stk)-1])
			stk = stk[:len(stk)-1]
		}
	}
	c.fstack = stk
	return stk[0]
}

// evalScratch runs the program in the condition's scratch arena,
// mirroring the recursive polynomial construction operation for
// operation.
func (c *Cursor) evalScratch(cs *condState) poly.SPoly {
	s := &cs.scratch
	stk := c.pstack[:0]
	for i := range cs.prog {
		in := &cs.prog[i]
		switch in.op {
		case opConst:
			stk = append(stk, s.Const(in.c))
		case opCell:
			ord := c.ords[in.step]
			if in.col.Kinds[ord] == value.NumConst {
				stk = append(stk, s.Const(in.col.Nums[ord]))
			} else {
				stk = append(stk, s.Var(c.p.Index[int(in.col.Codes[ord])]))
			}
		case opNeg:
			stk[len(stk)-1] = s.Neg(stk[len(stk)-1])
		case opAdd:
			stk[len(stk)-2] = s.Add(stk[len(stk)-2], stk[len(stk)-1])
			stk = stk[:len(stk)-1]
		case opSub:
			stk[len(stk)-2] = s.Sub(stk[len(stk)-2], stk[len(stk)-1])
			stk = stk[:len(stk)-1]
		case opMul:
			stk[len(stk)-2] = s.Mul(stk[len(stk)-2], stk[len(stk)-1])
			stk = stk[:len(stk)-1]
		}
	}
	c.pstack = stk
	return stk[0]
}

// atom materializes (once per binding) the pending constraint atom of a
// numeric condition as an immutable formula.
func (c *Cursor) atom(ci int) realfmla.Formula {
	cs := &c.conds[ci]
	if cs.fm == nil {
		cs.fm = realfmla.FAtom{A: realfmla.Atom{P: cs.scratch.Materialize(cs.sp, c.p.K), Rel: cs.rel}}
	}
	return cs.fm
}

// pendingAtoms counts the constraint atoms of the current binding.
func (c *Cursor) pendingAtoms() int {
	n := 0
	for ci := range c.conds {
		if c.conds[ci].hasAtom {
			n++
		}
	}
	return n
}

// conj materializes the current binding's constraint conjunction exactly
// as realfmla.And over the pending atoms would: nil for none, the single
// atom, or an FAnd in canonical condition order.
func (c *Cursor) conj() realfmla.Formula {
	switch c.pendingAtoms() {
	case 0:
		return nil
	case 1:
		for ci := range c.conds {
			if c.conds[ci].hasAtom {
				return c.atom(ci)
			}
		}
	}
	fs := make([]realfmla.Formula, 0, c.pendingAtoms())
	for ci := range c.conds {
		if c.conds[ci].hasAtom {
			fs = append(fs, c.atom(ci))
		}
	}
	return realfmla.FAnd{Fs: fs}
}

// cellValue materializes the boundary value of a columnar cell.
func (c *Cursor) cellValue(cv db.ColView, ord int32) value.Value {
	switch cv.Kinds[ord] {
	case value.BaseConst:
		return value.Base(c.d.DictString(cv.Codes[ord] >> 1))
	case value.BaseNull:
		return value.NullBase(int(cv.Codes[ord] >> 1))
	case value.NumConst:
		return value.Num(cv.Nums[ord])
	default:
		return value.NullNum(int(cv.Codes[ord]))
	}
}

// tuple materializes the projected tuple of the current binding.
func (c *Cursor) tuple() value.Tuple {
	tup := make(value.Tuple, len(c.proj))
	for i, pc := range c.proj {
		tup[i] = c.cellValue(pc.col, c.ords[pc.step])
	}
	return tup
}

// emit snapshots the current full binding as a derivation.
func (c *Cursor) emit() *Deriv {
	var conj []realfmla.Formula
	if n := c.pendingAtoms(); n > 0 {
		conj = make([]realfmla.Formula, 0, n)
		for ci := range c.conds {
			if c.conds[ci].hasAtom {
				conj = append(conj, c.atom(ci))
			}
		}
	}
	var rows []int
	if !c.p.Identity || c.opts.TrackRows { // Run's reorder sort (or a tracking consumer) reads Rows
		rows = make([]int, len(c.steps))
		for s, o := range c.p.Order {
			rows[o] = int(c.ords[s])
		}
	}
	return &Deriv{Tuple: c.tuple(), Conj: conj, Rows: rows}
}

// Next returns the next derivation, or nil when the cursor is exhausted.
// The returned Deriv is freshly allocated and owned by the caller.
func (c *Cursor) Next() (*Deriv, error) {
	if !c.advance() {
		return nil, c.err
	}
	return c.emit(), nil
}

// Run streams every derivation of the plan to emit in the original
// derivation order — the FROM-clause nested-loop enumeration order. When
// the plan's join order is the FROM order this is fully streaming; when
// the planner reordered joins, the (already filtered) derivations are
// buffered and sorted back into derivation order first, so reordering
// never changes observable results.
func Run(p *plan.Plan, d *db.Database, opts Options, emit func(*Deriv) error) error {
	cur := NewCursor(p, d, opts)
	if p.Identity {
		for {
			dv, err := cur.Next()
			if err != nil {
				return err
			}
			if dv == nil {
				return nil
			}
			if err := emit(dv); err != nil {
				return err
			}
		}
	}
	var buf []*Deriv
	for {
		dv, err := cur.Next()
		if err != nil {
			return err
		}
		if dv == nil {
			break
		}
		buf = append(buf, dv)
		// The reorder buffer consumes the whole stream before emitting
		// anything, so it must poll for cancellation itself — emit only
		// runs after enumeration finishes.
		if opts.Interrupt != nil && len(buf)%interruptEvery == 0 {
			if err := opts.Interrupt(); err != nil {
				return err
			}
		}
	}
	sort.Slice(buf, func(i, j int) bool {
		a, b := buf[i].Rows, buf[j].Rows
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	for _, dv := range buf {
		if err := emit(dv); err != nil {
			return err
		}
	}
	return nil
}
