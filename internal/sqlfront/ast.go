// Package sqlfront implements the experiment pipeline of Section 9: a
// small SQL-like front-end (SELECT–FROM–WHERE–LIMIT over joins with
// arithmetic conditions) and a *conditional* evaluator that plays the role
// Postgres plays in the paper — producing, for each candidate answer
// tuple, a compact quantifier-free constraint formula φ over the
// database's numerical nulls. Feeding each candidate's φ to the core
// engine's AFPRAS yields the per-tuple confidence levels of Figure 1
// without the active-domain blowup of the general translation.
//
// Since the planner/executor refactor the package is a thin façade: the
// syntax lives in package sqlast (re-exported here), queries are lowered
// to logical plans by package plan, and executed by the streaming
// executor of package exec. Evaluate glues the three together and is
// byte-for-byte compatible with the original one-shot nested-loop
// evaluator (same candidates, same Phi DNFs in derivation order, same
// derivation counts).
package sqlfront

import "repro/internal/sqlast"

// Re-exported syntax types; see package sqlast for documentation.
type (
	// ColRef is a qualified column reference "Alias.col".
	ColRef = sqlast.ColRef
	// TableRef is one FROM entry: a relation name with an alias.
	TableRef = sqlast.TableRef
	// ExprKind discriminates numeric expression nodes.
	ExprKind = sqlast.ExprKind
	// Expr is a numeric expression over column references and literals.
	Expr = sqlast.Expr
	// CondKind discriminates WHERE conditions.
	CondKind = sqlast.CondKind
	// CmpOp is a comparison operator of a numeric condition.
	CmpOp = sqlast.CmpOp
	// Condition is one WHERE conjunct.
	Condition = sqlast.Condition
	// Query is a parsed SELECT statement.
	Query = sqlast.Query
)

// Expression node kinds.
const (
	ExprCol   = sqlast.ExprCol
	ExprConst = sqlast.ExprConst
	ExprAdd   = sqlast.ExprAdd
	ExprSub   = sqlast.ExprSub
	ExprMul   = sqlast.ExprMul
	ExprNeg   = sqlast.ExprNeg
)

// Condition kinds.
const (
	// CondBaseEq equates two base-typed columns (a join condition).
	CondBaseEq = sqlast.CondBaseEq
	// CondBaseEqConst equates a base-typed column with a string literal.
	CondBaseEqConst = sqlast.CondBaseEqConst
	// CondNumCmp compares two numeric expressions.
	CondNumCmp = sqlast.CondNumCmp
)

// Comparison operators.
const (
	Lt = sqlast.Lt
	Le = sqlast.Le
	Eq = sqlast.Eq
	Ne = sqlast.Ne
	Ge = sqlast.Ge
	Gt = sqlast.Gt
)
