package db

// Randomized parity suite of the columnar storage engine: whatever is
// inserted through the value.Value boundary must come back identically
// through every materialization path (Tuples, All, Row, Clone), equality
// indexes built by sequential scans over the columnar arrays must agree
// with a naive reference built from materialized tuples, and dictionary
// interning / null-id packing must be lossless.

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/value"
)

func randSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("R",
			schema.Column{Name: "a", Type: schema.Base},
			schema.Column{Name: "x", Type: schema.Num},
			schema.Column{Name: "b", Type: schema.Base}),
		schema.MustRelation("S",
			schema.Column{Name: "y", Type: schema.Num},
			schema.Column{Name: "c", Type: schema.Base}),
	)
}

// randValue draws a value of the given sort, reusing a small pool of
// strings and null IDs so that duplicates (the interesting case for
// interning and indexing) are common.
func randValue(rng *rand.Rand, t schema.ColType) value.Value {
	if t == schema.Base {
		switch rng.Intn(4) {
		case 0:
			return value.NullBase(rng.Intn(6))
		default:
			return value.Base(fmt.Sprintf("s%d", rng.Intn(8)))
		}
	}
	switch rng.Intn(4) {
	case 0:
		return value.NullNum(rng.Intn(6))
	default:
		return value.Num(math.Round(rng.NormFloat64()*4) / 2)
	}
}

func randDB(rng *rand.Rand) (*Database, map[string][]value.Tuple) {
	s := randSchema()
	d := New(s)
	want := make(map[string][]value.Tuple)
	for _, rel := range s.Relations() {
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			tup := make(value.Tuple, len(rel.Columns))
			for j, c := range rel.Columns {
				tup[j] = randValue(rng, c.Type)
			}
			if err := d.Insert(rel.Name, tup); err != nil {
				panic(err)
			}
			want[rel.Name] = append(want[rel.Name], tup)
		}
	}
	return d, want
}

func TestColumnarRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d, want := randDB(rng)
		for rel, rows := range want {
			got := d.Tuples(rel)
			if len(got) != len(rows) {
				t.Fatalf("seed %d: %s has %d rows, want %d", seed, rel, len(got), len(rows))
			}
			i := 0
			for tup := range d.All(rel) {
				if !tup.Equal(rows[i]) {
					t.Fatalf("seed %d: %s All row %d = %v, want %v", seed, rel, i, tup, rows[i])
				}
				if !got[i].Equal(rows[i]) {
					t.Fatalf("seed %d: %s Tuples row %d = %v, want %v", seed, rel, i, got[i], rows[i])
				}
				if !d.Row(rel, i).Equal(rows[i]) {
					t.Fatalf("seed %d: %s Row %d mismatch", seed, rel, i)
				}
				i++
			}
		}
		// Clone preserves everything, independently.
		c := d.Clone()
		for rel, rows := range want {
			got := c.Tuples(rel)
			for i := range rows {
				if !got[i].Equal(rows[i]) {
					t.Fatalf("seed %d: clone %s row %d mismatch", seed, rel, i)
				}
			}
		}
	}
}

func TestColumnarIndexMatchesNaiveReference(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d, want := randDB(rng)
		for rel, rows := range want {
			if len(rows) == 0 {
				continue
			}
			for col := range rows[0] {
				ix := d.Index(rel, col)
				// Naive reference: group ordinals by boundary value.
				ref := make(map[value.Value][]int)
				for i, tup := range rows {
					ref[tup[col]] = append(ref[tup[col]], i)
				}
				if ix.Distinct() != len(ref) {
					t.Fatalf("seed %d: %s.%d Distinct = %d, want %d", seed, rel, col, ix.Distinct(), len(ref))
				}
				for v, wantOrds := range ref {
					if got := ords(ix.Lookup(d, v)); !reflect.DeepEqual(got, wantOrds) {
						t.Fatalf("seed %d: %s.%d Lookup(%v) = %v, want %v", seed, rel, col, v, got, wantOrds)
					}
				}
			}
		}
	}
}

func TestColumnarInventoriesMatchNaive(t *testing.T) {
	for seed := int64(200); seed < 215; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d, want := randDB(rng)
		baseNulls := map[int]bool{}
		numNulls := map[int]bool{}
		baseConsts := map[string]bool{}
		numConsts := map[float64]bool{}
		for _, rows := range want {
			for _, tup := range rows {
				for _, v := range tup {
					switch v.Kind() {
					case value.BaseNull:
						baseNulls[v.NullID()] = true
					case value.NumNull:
						numNulls[v.NullID()] = true
					case value.BaseConst:
						baseConsts[v.Str()] = true
					case value.NumConst:
						numConsts[v.Float()] = true
					}
				}
			}
		}
		if got := d.BaseNulls(); len(got) != len(baseNulls) {
			t.Fatalf("seed %d: BaseNulls = %v", seed, got)
		}
		if got := d.NumNulls(); len(got) != len(numNulls) {
			t.Fatalf("seed %d: NumNulls = %v", seed, got)
		}
		if got := d.BaseConstants(); len(got) != len(baseConsts) {
			t.Fatalf("seed %d: BaseConstants = %v", seed, got)
		}
		if got := d.NumConstants(); len(got) != len(numConsts) {
			t.Fatalf("seed %d: NumConstants = %v", seed, got)
		}
		ids, index := d.NumNullIndex()
		for i, id := range ids {
			if index[id] != i {
				t.Fatalf("seed %d: NumNullIndex inverse broken at %d", seed, id)
			}
		}
	}
}

// TestDictInterningQuick is the testing/quick fuzz of dictionary
// interning: arbitrary strings (including the dbio escape-sensitive "_"
// prefixes and non-ASCII) survive an insert/materialize round trip, and
// repeated inserts reuse one code.
func TestDictInterningQuick(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R",
		schema.Column{Name: "a", Type: schema.Base}))
	d := New(s)
	f := func(raw string) bool {
		d.MustInsert("R", value.Base(raw))
		n := d.Len("R")
		got := d.Row("R", n-1)[0]
		if got.Kind() != value.BaseConst || got.Str() != raw {
			return false
		}
		code1, ok1 := d.LookupBaseCode(raw)
		d.MustInsert("R", value.Base(raw))
		code2, ok2 := d.LookupBaseCode(raw)
		return ok1 && ok2 && code1 == code2 && code1&1 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestNullIDPreservationQuick fuzzes null-id packing: any in-range null id
// round-trips through the packed code arrays, and fresh nulls never
// collide with inserted ones.
func TestNullIDPreservationQuick(t *testing.T) {
	f := func(rawBase, rawNum uint32) bool {
		baseID := int(rawBase % maxID)
		numID := int(rawNum % maxID)
		s := schema.MustNew(schema.MustRelation("R",
			schema.Column{Name: "a", Type: schema.Base},
			schema.Column{Name: "x", Type: schema.Num}))
		d := New(s)
		d.MustInsert("R", value.NullBase(baseID), value.NullNum(numID))
		row := d.Row("R", 0)
		if row[0] != value.NullBase(baseID) || row[1] != value.NullNum(numID) {
			return false
		}
		return d.FreshBaseNull().NullID() > baseID && d.FreshNumNull().NullID() > numID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInsertRejectsOutOfRangeNullIDs(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R",
		schema.Column{Name: "x", Type: schema.Num}))
	d := New(s)
	if err := d.Insert("R", value.Tuple{value.NullNum(maxID)}); err == nil {
		t.Error("null id beyond packing range accepted")
	}
}
