package realfmla

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/poly"
)

// atomLT builds the atom c·z + c0 < 0 over n variables.
func atomLT(n int, c []float64, c0 float64) Atom {
	p := poly.Const(n, c0)
	for i, ci := range c {
		p = p.Add(poly.Var(n, i).Scale(ci))
	}
	return Atom{P: p, Rel: LT}
}

func randFormula(r *rand.Rand, n, depth int) Formula {
	if depth == 0 || r.Intn(3) == 0 {
		c := make([]float64, n)
		for i := range c {
			c[i] = float64(r.Intn(5) - 2)
		}
		rel := Rel(r.Intn(6))
		a := atomLT(n, c, float64(r.Intn(5)-2))
		a.Rel = rel
		return FAtom{a}
	}
	switch r.Intn(3) {
	case 0:
		return FNot{randFormula(r, n, depth-1)}
	case 1:
		return And(randFormula(r, n, depth-1), randFormula(r, n, depth-1))
	default:
		return Or(randFormula(r, n, depth-1), randFormula(r, n, depth-1))
	}
}

func randPt(r *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(r.Intn(9) - 4)
	}
	return x
}

func TestRelNegateInvolution(t *testing.T) {
	for rel := LT; rel <= GT; rel++ {
		if rel.Negate().Negate() != rel {
			t.Errorf("Negate not involutive on %v", rel)
		}
		for _, s := range []int{-1, 0, 1} {
			if rel.holds(s) == rel.Negate().holds(s) {
				t.Errorf("%v and its negation agree on sign %d", rel, s)
			}
		}
	}
}

func TestAtomEval(t *testing.T) {
	// z0 - z1 < 0
	a := atomLT(2, []float64{1, -1}, 0)
	if !a.Eval([]float64{1, 2}) || a.Eval([]float64{2, 1}) || a.Eval([]float64{1, 1}) {
		t.Error("atom z0 - z1 < 0 misbehaves")
	}
	eq := Atom{P: a.P, Rel: EQ}
	if !eq.Eval([]float64{1, 1}) || eq.Eval([]float64{1, 2}) {
		t.Error("atom z0 - z1 = 0 misbehaves")
	}
}

func TestConnectiveSmartConstructors(t *testing.T) {
	a := FAtom{atomLT(1, []float64{1}, 0)}
	if _, ok := And().(FTrue); !ok {
		t.Error("empty And is not true")
	}
	if _, ok := Or().(FFalse); !ok {
		t.Error("empty Or is not false")
	}
	if f := And(a, FTrue{}); f.String() != a.String() {
		t.Errorf("And(a, true) = %s", f)
	}
	if _, ok := And(a, FFalse{}).(FFalse); !ok {
		t.Error("And(a, false) not false")
	}
	if _, ok := Or(a, FTrue{}).(FTrue); !ok {
		t.Error("Or(a, true) not true")
	}
	// Flattening.
	g := And(And(a, a), a)
	if len(g.(FAnd).Fs) != 3 {
		t.Errorf("nested And not flattened: %s", g)
	}
}

func TestNNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(3)
		f := randFormula(r, n, 3)
		g := NNF(f)
		if hasNot(g) {
			t.Fatalf("NNF left a negation: %s", g)
		}
		for i := 0; i < 20; i++ {
			x := randPt(r, n)
			if Eval(f, x) != Eval(g, x) {
				t.Fatalf("NNF changed semantics at %v:\n f=%s\n g=%s", x, f, g)
			}
		}
	}
}

func hasNot(f Formula) bool {
	switch g := f.(type) {
	case FNot:
		return true
	case FAnd:
		for _, h := range g.Fs {
			if hasNot(h) {
				return true
			}
		}
	case FOr:
		for _, h := range g.Fs {
			if hasNot(h) {
				return true
			}
		}
	}
	return false
}

func TestDNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(3)
		f := randFormula(r, n, 3)
		ds, err := ToDNF(f, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			x := randPt(r, n)
			want := Eval(f, x)
			got := false
			for _, c := range ds {
				if c.Eval(x) {
					got = true
					break
				}
			}
			if got != want {
				t.Fatalf("DNF changed semantics at %v:\n f=%s", x, f)
			}
		}
	}
}

func TestDNFSizeLimit(t *testing.T) {
	// (a ∨ b) ∧ (a ∨ b) ∧ ... blows up to 2^m disjuncts.
	a := FAtom{atomLT(1, []float64{1}, 0)}
	b := FAtom{atomLT(1, []float64{-1}, 1)}
	f := Formula(FTrue{})
	for i := 0; i < 10; i++ {
		f = And(f, Or(a, b))
	}
	if _, err := ToDNF(f, 16); err != ErrDNFTooLarge {
		t.Errorf("expected ErrDNFTooLarge, got %v", err)
	}
	if ds, err := ToDNF(f, 0); err != nil || len(ds) != 1024 {
		t.Errorf("unlimited DNF: %d disjuncts, err %v", len(ds), err)
	}
}

func TestAsymEvalAgainstLargeK(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const bigK = 1e8
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(3)
		f := randFormula(r, n, 3)
		dir := make([]float64, n)
		for i := range dir {
			dir[i] = r.NormFloat64()
		}
		asym := AsymEval(f, dir, 1e-12)
		x := make([]float64, n)
		for i := range x {
			x[i] = bigK * dir[i]
		}
		if got := Eval(f, x); got != asym {
			t.Fatalf("asym=%v eval@K=%v: f=%s dir=%v", asym, got, f, dir)
		}
	}
}

func TestHomogenizeLinear(t *testing.T) {
	// z0 + 5 < 0  →  z0 < 0
	f := FAtom{atomLT(1, []float64{1}, 5)}
	h, err := HomogenizeLinear(f)
	if err != nil {
		t.Fatal(err)
	}
	if !Eval(h, []float64{-1}) || Eval(h, []float64{1}) {
		t.Errorf("homogenized formula wrong: %s", h)
	}
	// Constant atom 3 < 0 collapses to false; -3 < 0 to true.
	if g, _ := HomogenizeLinear(FAtom{atomLT(1, []float64{0}, 3)}); !isFalse(g) {
		t.Errorf("3 < 0 homogenized to %s", g)
	}
	if g, _ := HomogenizeLinear(FAtom{atomLT(1, []float64{0}, -3)}); !isTrue(g) {
		t.Errorf("-3 < 0 homogenized to %s", g)
	}
	// Nonlinear atoms are rejected.
	q := poly.Var(1, 0).Mul(poly.Var(1, 0))
	if _, err := HomogenizeLinear(FAtom{Atom{P: q, Rel: LT}}); err == nil {
		t.Error("nonlinear atom accepted")
	}
}

func isTrue(f Formula) bool  { _, ok := f.(FTrue); return ok }
func isFalse(f Formula) bool { _, ok := f.(FFalse); return ok }

// TestHomogenizeMatchesAsym checks the §7 fact: for linear formulas the
// homogenized formula at a point a agrees with the asymptotic truth of the
// original along direction a (away from boundaries).
func TestHomogenizeMatchesAsym(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(3)
		f := randFormula(r, n, 3)
		h, err := HomogenizeLinear(f)
		if err != nil {
			t.Fatal(err)
		}
		dir := make([]float64, n)
		for i := range dir {
			dir[i] = r.NormFloat64()
		}
		// Skip directions that lie on some homogenized atom boundary.
		onBoundary := false
		for _, a := range Atoms(h) {
			if math.Abs(a.P.Eval(dir)) < 1e-9 {
				onBoundary = true
				break
			}
		}
		if onBoundary {
			continue
		}
		if Eval(h, dir) != AsymEval(f, dir, 1e-12) {
			t.Fatalf("homogenized disagrees with asym: f=%s dir=%v", f, dir)
		}
	}
}

func TestAtomsAndNumVars(t *testing.T) {
	a := FAtom{atomLT(2, []float64{1, 0}, 0)}
	f := And(a, FNot{Or(a, a)})
	if got := len(Atoms(f)); got != 3 {
		t.Errorf("Atoms = %d", got)
	}
	if NumVars(f) != 2 {
		t.Errorf("NumVars = %d", NumVars(f))
	}
	if NumVars(FTrue{}) != 0 {
		t.Error("NumVars of true should be 0")
	}
	if !IsLinear(f) {
		t.Error("linear formula misclassified")
	}
}
