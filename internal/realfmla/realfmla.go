// Package realfmla implements quantifier-free formulas over the real field
// ⟨ℝ, +, ·, <⟩: Boolean combinations of polynomial sign conditions. The
// translation of Prop 5.3 turns a query, database and candidate answer into
// such a formula φ(z₁..z_k) over the numerical nulls, and the measure
// μ(q,D,(a,s)) equals ν(φ), the asymptotic volume fraction of φ's
// satisfying set (Theorem 5.4). The package supports point evaluation,
// asymptotic evaluation along a ray (Lemma 8.4), NNF/DNF normalization and
// homogenization of linear formulas (Section 7).
package realfmla

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/poly"
)

// Rel is the relation of an atomic sign condition p(z) Rel 0.
type Rel uint8

// Sign relations.
const (
	LT Rel = iota
	LE
	EQ
	NE
	GE
	GT
)

// String renders the relation symbol.
func (r Rel) String() string {
	switch r {
	case LT:
		return "<"
	case LE:
		return "<="
	case EQ:
		return "="
	case NE:
		return "!="
	case GE:
		return ">="
	case GT:
		return ">"
	}
	return "?"
}

// Negate returns the complementary relation (¬(p<0) is p≥0, etc.).
func (r Rel) Negate() Rel {
	switch r {
	case LT:
		return GE
	case LE:
		return GT
	case EQ:
		return NE
	case NE:
		return EQ
	case GE:
		return LT
	case GT:
		return LE
	}
	return r
}

// Holds reports whether "v Rel 0", the decision Atom.Eval makes on a
// constant polynomial with value v (NaN has sign 0, like the dropped
// zero-coefficient term it mirrors).
func (r Rel) Holds(v float64) bool {
	switch {
	case v < 0:
		return r.holds(-1)
	case v > 0:
		return r.holds(1)
	default:
		return r.holds(0)
	}
}

// holds reports whether "sign Rel 0" for a sign in {-1,0,1}.
func (r Rel) holds(sign int) bool {
	switch r {
	case LT:
		return sign < 0
	case LE:
		return sign <= 0
	case EQ:
		return sign == 0
	case NE:
		return sign != 0
	case GE:
		return sign >= 0
	case GT:
		return sign > 0
	}
	return false
}

// Atom is the sign condition P Rel 0.
type Atom struct {
	P   poly.Poly
	Rel Rel
}

// String renders "P < 0" style.
func (a Atom) String() string { return fmt.Sprintf("%s %s 0", a.P, a.Rel) }

// Eval evaluates the atom at a point.
func (a Atom) Eval(x []float64) bool {
	v := a.P.Eval(x)
	switch {
	case v < 0:
		return a.Rel.holds(-1)
	case v > 0:
		return a.Rel.holds(1)
	default:
		return a.Rel.holds(0)
	}
}

// AsymEval reports whether the atom holds at k·a for all sufficiently
// large k (Lemma 8.4): substitute the ray, take the sign of the leading
// coefficient.
func (a Atom) AsymEval(dir []float64, tol float64) bool {
	return a.Rel.holds(a.P.SubstituteRay(dir).AsymptoticSign(tol))
}

// MixedAsymEval reports whether the atom eventually holds when variables
// with ray[i] true go to infinity along vals[i] while the others are fixed
// at vals[i] — the evaluation mode of range-constrained measures
// (Section 10 of the paper).
func (a Atom) MixedAsymEval(vals []float64, ray []bool, tol float64) bool {
	return a.Rel.holds(a.P.SubstituteMixed(vals, ray).AsymptoticSign(tol))
}

// Formula is a quantifier-free formula over the reals.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// FAtom wraps an atom as a formula.
type FAtom struct{ A Atom }

// FTrue is the true formula.
type FTrue struct{}

// FFalse is the false formula.
type FFalse struct{}

// FNot is negation.
type FNot struct{ F Formula }

// FAnd is n-ary conjunction (empty = true).
type FAnd struct{ Fs []Formula }

// FOr is n-ary disjunction (empty = false).
type FOr struct{ Fs []Formula }

func (FAtom) isFormula()  {}
func (FTrue) isFormula()  {}
func (FFalse) isFormula() {}
func (FNot) isFormula()   {}
func (FAnd) isFormula()   {}
func (FOr) isFormula()    {}

// String renders the formula.
func (f FAtom) String() string { return f.A.String() }
func (FTrue) String() string   { return "true" }
func (FFalse) String() string  { return "false" }
func (f FNot) String() string  { return "¬(" + f.F.String() + ")" }
func (f FAnd) String() string  { return nary("∧", f.Fs, "true") }
func (f FOr) String() string   { return nary("∨", f.Fs, "false") }

func nary(op string, fs []Formula, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, g := range fs {
		parts[i] = g.String()
	}
	return "(" + strings.Join(parts, " "+op+" ") + ")"
}

// And builds a conjunction, flattening nested FAnds and dropping FTrue.
func And(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch x := f.(type) {
		case FTrue:
		case FFalse:
			return FFalse{}
		case FAnd:
			out = append(out, x.Fs...)
		default:
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		return FTrue{}
	}
	if len(out) == 1 {
		return out[0]
	}
	return FAnd{out}
}

// Or builds a disjunction, flattening nested FOrs and dropping FFalse.
func Or(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch x := f.(type) {
		case FFalse:
		case FTrue:
			return FTrue{}
		case FOr:
			out = append(out, x.Fs...)
		default:
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		return FFalse{}
	}
	if len(out) == 1 {
		return out[0]
	}
	return FOr{out}
}

// Eval evaluates the formula at a point x ∈ ℝⁿ.
func Eval(f Formula, x []float64) bool {
	switch g := f.(type) {
	case FTrue:
		return true
	case FFalse:
		return false
	case FAtom:
		return g.A.Eval(x)
	case FNot:
		return !Eval(g.F, x)
	case FAnd:
		for _, h := range g.Fs {
			if !Eval(h, x) {
				return false
			}
		}
		return true
	case FOr:
		for _, h := range g.Fs {
			if Eval(h, x) {
				return true
			}
		}
		return false
	}
	panic(fmt.Sprintf("realfmla: unknown node %T", f))
}

// AsymEval reports lim_{k→∞} f_{φ,dir}(k): whether φ holds at k·dir for
// all sufficiently large k. Every atom is eventually constant along a ray
// (its substituted univariate polynomial has finitely many zeros, Lemma
// 8.2), so the limit of the Boolean combination exists and is computed by
// combining the per-atom limits.
func AsymEval(f Formula, dir []float64, tol float64) bool {
	switch g := f.(type) {
	case FTrue:
		return true
	case FFalse:
		return false
	case FAtom:
		return g.A.AsymEval(dir, tol)
	case FNot:
		return !AsymEval(g.F, dir, tol)
	case FAnd:
		for _, h := range g.Fs {
			if !AsymEval(h, dir, tol) {
				return false
			}
		}
		return true
	case FOr:
		for _, h := range g.Fs {
			if AsymEval(h, dir, tol) {
				return true
			}
		}
		return false
	}
	panic(fmt.Sprintf("realfmla: unknown node %T", f))
}

// Atoms returns all atoms of the formula (with multiplicity).
func Atoms(f Formula) []Atom {
	var out []Atom
	var walk func(Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case FAtom:
			out = append(out, g.A)
		case FNot:
			walk(g.F)
		case FAnd:
			for _, h := range g.Fs {
				walk(h)
			}
		case FOr:
			for _, h := range g.Fs {
				walk(h)
			}
		}
	}
	walk(f)
	return out
}

// FormulaID is a 128-bit structural fingerprint of a formula's syntax
// tree. Syntactically equal formulas always have equal IDs; distinct
// formulas are overwhelmingly unlikely to collide, but the hash is not
// cryptographic, so callers using it as a cache key should confirm a hit
// with Equal (a collision then costs a recompute, never a wrong result).
type FormulaID [2]uint64

// Equal reports syntactic equality of two formulas.
func Equal(a, b Formula) bool {
	switch x := a.(type) {
	case FTrue:
		_, ok := b.(FTrue)
		return ok
	case FFalse:
		_, ok := b.(FFalse)
		return ok
	case FAtom:
		y, ok := b.(FAtom)
		return ok && x.A.Rel == y.A.Rel && x.A.P.Equal(y.A.P)
	case FNot:
		y, ok := b.(FNot)
		return ok && Equal(x.F, y.F)
	case FAnd:
		y, ok := b.(FAnd)
		if !ok || len(x.Fs) != len(y.Fs) {
			return false
		}
		for i := range x.Fs {
			if !Equal(x.Fs[i], y.Fs[i]) {
				return false
			}
		}
		return true
	case FOr:
		y, ok := b.(FOr)
		if !ok || len(x.Fs) != len(y.Fs) {
			return false
		}
		for i := range x.Fs {
			if !Equal(x.Fs[i], y.Fs[i]) {
				return false
			}
		}
		return true
	}
	panic(fmt.Sprintf("realfmla: unknown node %T", a))
}

// Fingerprint computes the FormulaID of f without allocating — unlike a
// canonical string key, it can run once per measure call on hot paths.
func Fingerprint(f Formula) FormulaID {
	h := fpHash{a: 1469598103934665603, b: 0x9ae16a3b2f90404f}
	h.formula(f)
	return FormulaID{h.a, h.b}
}

// fpHash runs two independent word-wise FNV-style streams.
type fpHash struct{ a, b uint64 }

func (h *fpHash) word(w uint64) {
	h.a = (h.a ^ w) * 1099511628211
	h.b = (h.b ^ (w<<31 | w>>33)) * 0x9e3779b97f4a7c15
}

func (h *fpHash) formula(f Formula) {
	switch g := f.(type) {
	case FTrue:
		h.word(1)
	case FFalse:
		h.word(2)
	case FAtom:
		h.word(3)
		h.word(uint64(g.A.Rel))
		h.word(uint64(g.A.P.N))
		h.word(uint64(len(g.A.P.Terms)))
		for _, t := range g.A.P.Terms {
			h.word(math.Float64bits(t.Coef))
			h.word(uint64(len(t.Vars)))
			for _, v := range t.Vars {
				h.word(uint64(v.Var))
				h.word(uint64(v.Pow))
			}
		}
	case FNot:
		h.word(4)
		h.formula(g.F)
	case FAnd:
		h.word(5)
		h.word(uint64(len(g.Fs)))
		for _, k := range g.Fs {
			h.formula(k)
		}
	case FOr:
		h.word(6)
		h.word(uint64(len(g.Fs)))
		for _, k := range g.Fs {
			h.formula(k)
		}
	default:
		panic(fmt.Sprintf("realfmla: unknown node %T", f))
	}
}

// NumVars returns the number of variables of the ambient polynomial ring
// (0 if the formula has no atoms).
func NumVars(f Formula) int {
	as := Atoms(f)
	if len(as) == 0 {
		return 0
	}
	return as[0].P.N
}

// IsLinear reports whether every atom's polynomial is linear.
func IsLinear(f Formula) bool {
	for _, a := range Atoms(f) {
		if !a.P.IsLinear() {
			return false
		}
	}
	return true
}

// NNF pushes negations to the atoms (which absorb them by flipping the
// relation), eliminating FNot nodes.
func NNF(f Formula) Formula {
	return nnf(f, false)
}

func nnf(f Formula, neg bool) Formula {
	switch g := f.(type) {
	case FTrue:
		if neg {
			return FFalse{}
		}
		return FTrue{}
	case FFalse:
		if neg {
			return FTrue{}
		}
		return FFalse{}
	case FAtom:
		if neg {
			return FAtom{Atom{P: g.A.P, Rel: g.A.Rel.Negate()}}
		}
		return g
	case FNot:
		return nnf(g.F, !neg)
	case FAnd:
		out := make([]Formula, len(g.Fs))
		for i, h := range g.Fs {
			out[i] = nnf(h, neg)
		}
		if neg {
			return Or(out...)
		}
		return And(out...)
	case FOr:
		out := make([]Formula, len(g.Fs))
		for i, h := range g.Fs {
			out[i] = nnf(h, neg)
		}
		if neg {
			return And(out...)
		}
		return Or(out...)
	}
	panic(fmt.Sprintf("realfmla: unknown node %T", f))
}

// Conj is one disjunct of a DNF: a conjunction of atoms.
type Conj []Atom

// Eval evaluates the conjunction at a point.
func (c Conj) Eval(x []float64) bool {
	for _, a := range c {
		if !a.Eval(x) {
			return false
		}
	}
	return true
}

// ErrDNFTooLarge is returned by ToDNF when the normal form would exceed the
// requested size limit.
var ErrDNFTooLarge = fmt.Errorf("realfmla: DNF exceeds size limit")

// ToDNF converts the formula to disjunctive normal form, returning the list
// of disjuncts. maxDisjuncts bounds the blowup; 0 means no limit. The input
// is first put into NNF.
func ToDNF(f Formula, maxDisjuncts int) ([]Conj, error) {
	return dnf(NNF(f), maxDisjuncts)
}

func dnf(f Formula, limit int) ([]Conj, error) {
	switch g := f.(type) {
	case FTrue:
		return []Conj{{}}, nil
	case FFalse:
		return nil, nil
	case FAtom:
		return []Conj{{g.A}}, nil
	case FOr:
		var out []Conj
		for _, h := range g.Fs {
			ds, err := dnf(h, limit)
			if err != nil {
				return nil, err
			}
			out = append(out, ds...)
			if limit > 0 && len(out) > limit {
				return nil, ErrDNFTooLarge
			}
		}
		return out, nil
	case FAnd:
		out := []Conj{{}}
		for _, h := range g.Fs {
			ds, err := dnf(h, limit)
			if err != nil {
				return nil, err
			}
			var next []Conj
			for _, c := range out {
				for _, d := range ds {
					merged := make(Conj, 0, len(c)+len(d))
					merged = append(merged, c...)
					merged = append(merged, d...)
					next = append(next, merged)
					if limit > 0 && len(next) > limit {
						return nil, ErrDNFTooLarge
					}
				}
			}
			out = next
		}
		return out, nil
	case FNot:
		return nil, fmt.Errorf("realfmla: dnf on non-NNF input")
	}
	panic(fmt.Sprintf("realfmla: unknown node %T", f))
}

// HomogenizeLinear replaces every linear atom c·z + c0 Rel 0 by its
// homogenized version c·z Rel 0 (constant atoms collapse to true/false by
// their asymptotic truth: the constant keeps its sign). This is the ~φ of
// Section 7: for linear formulas, ν(φ) equals the volume fraction of the
// homogenized formula inside the unit ball. It returns an error if some
// atom is not linear.
func HomogenizeLinear(f Formula) (Formula, error) {
	switch g := f.(type) {
	case FTrue, FFalse:
		return g, nil
	case FAtom:
		if !g.A.P.IsLinear() {
			return nil, fmt.Errorf("realfmla: HomogenizeLinear on nonlinear atom %s", g.A)
		}
		h := g.A.P.DropConstant()
		if h.IsZero() {
			// Constant atom: its truth is decided by the constant's sign.
			c, _ := g.A.P.IsConst()
			sign := 0
			if c > 0 {
				sign = 1
			} else if c < 0 {
				sign = -1
			}
			if g.A.Rel.holds(sign) {
				return FTrue{}, nil
			}
			return FFalse{}, nil
		}
		return FAtom{Atom{P: h, Rel: g.A.Rel}}, nil
	case FNot:
		h, err := HomogenizeLinear(g.F)
		if err != nil {
			return nil, err
		}
		return FNot{h}, nil
	case FAnd:
		out := make([]Formula, len(g.Fs))
		for i, h := range g.Fs {
			hh, err := HomogenizeLinear(h)
			if err != nil {
				return nil, err
			}
			out[i] = hh
		}
		return And(out...), nil
	case FOr:
		out := make([]Formula, len(g.Fs))
		for i, h := range g.Fs {
			hh, err := HomogenizeLinear(h)
			if err != nil {
				return nil, err
			}
			out[i] = hh
		}
		return Or(out...), nil
	}
	panic(fmt.Sprintf("realfmla: unknown node %T", f))
}
