package core

import (
	"context"
	"sync"

	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/realfmla"
	"repro/internal/sqlast"
)

// SQLStreamInfo summarizes a completed MeasureSQLStream run: the shape
// metadata of SQLMeasured without the candidate slice (the candidates
// were delivered through yield).
type SQLStreamInfo struct {
	// Count is the number of candidates delivered (after LIMIT).
	Count int
	// NullIDs / Index / Derivations as in exec.Result.
	NullIDs     []int
	Index       map[int]int
	Derivations int
	// SamplesDrawn and Rounds report the adaptive top-k race's total
	// sampling spend (all candidates, frozen-out losers included) and
	// round count. Zero when the query did not route through the race
	// (no LIMIT, Options.NoAdaptive, or PreferFPRAS).
	SamplesDrawn int
	Rounds       int
}

// MeasureSQLStream is the streaming form of MeasureSQL: instead of
// buffering the full result, every measured candidate is handed to yield
// as soon as it is final, in candidate order (the first-derivation order
// of the slice API). A server can therefore deliver top-k answers
// incrementally while enumeration and measurement are still running:
// candidates whose constraint saturates to true mid-join are measured and
// — once every earlier candidate has also finalized — delivered before
// the join completes.
//
// yield is never called concurrently with itself. Indices are strictly
// consecutive from 0; the sequence of (idx, candidate) pairs is exactly
// MeasureSQL's Candidates slice, bit-identical measures included — every
// candidate is measured by a per-candidate-seeded pool engine
// (itemOptions; the engines themselves are pooled and reseeded, which
// cannot change values) sharing this engine's compiled-kernel cache, so
// streaming delivery cannot change results. If yield returns an error,
// delivery stops and MeasureSQLStream returns that error once the
// pipeline unwinds.
//
// Cancelling ctx stops the work promptly: enumeration aborts at the
// next poll (every few thousand derivations — see exec.Options.Interrupt),
// the measurement of not-yet-measured candidates is skipped, delivery
// stops, and MeasureSQLStream returns ctx.Err(). A server hands
// the request context here so an abandoned connection frees its
// admission slot instead of computing results nobody reads.
//
// With Options.PoolWorkers == 1 (or on a single-CPU host) the whole
// pipeline runs inline on the calling goroutine — no worker goroutines,
// channels, or per-candidate engine construction — so the fused pipeline
// carries no concurrency overhead where concurrency cannot pay. Wider
// pools fan candidates out over reusable worker engines; a slow yield
// then exerts backpressure end to end: the measurement pool and
// ultimately enumeration block rather than buffering unboundedly.
func (e *Engine) MeasureSQLStream(ctx context.Context, q *sqlast.Query, d *db.Database, eps, delta float64, yield func(idx int, c MeasuredCandidate) error) (*SQLStreamInfo, error) {
	if err := checkEpsDelta(eps, delta); err != nil {
		return nil, err
	}
	p, err := plan.Build(q, d, e.planOptions())
	if err != nil {
		return nil, err
	}
	if e.raceApplies(p) {
		return e.measureStreamAdaptive(ctx, p, d, eps, delta, yield)
	}
	if e.opts.poolWorkers() <= 1 {
		return e.measureStreamSeqInline(ctx, p, d, eps, delta, yield)
	}
	return e.measureStreamPool(ctx, p, d, eps, delta, yield)
}

// raceApplies reports whether a plan routes through the adaptive top-k
// race: a LIMIT-k query on the default sampling configuration. Non-LIMIT
// queries, Options.NoAdaptive (the escape hatch restoring the fixed-
// budget first-k-distinct semantics) and PreferFPRAS (whose
// multiplicative-guarantee estimates have no racing theory here) keep
// the legacy paths byte-identical.
func (e *Engine) raceApplies(p *plan.Plan) bool {
	return p.Limit > 0 && !e.opts.NoAdaptive && !e.opts.PreferFPRAS
}

// measureStreamAdaptive is the LIMIT-k streaming pipeline behind the
// adaptive race: the plan is enumerated without its LIMIT so every
// distinct candidate enters the race (LIMIT-k means "the k most certain
// answers", so the ranking must see the whole field), then the race
// delivers the top-k winners in candidate order, each as soon as it is
// provably in the top k with its estimate final. Derivation counting is
// identical to the legacy path — the executor counts derivations
// regardless of LIMIT — and yield sees consecutive indices from 0
// exactly like the fixed path's first-k delivery.
func (e *Engine) measureStreamAdaptive(ctx context.Context, p *plan.Plan, d *db.Database, eps, delta float64, yield func(int, MeasuredCandidate) error) (*SQLStreamInfo, error) {
	pAll := *p
	pAll.Limit = 0
	eo := e.execOptions()
	eo.Interrupt = ctx.Err
	res, _, runErr := exec.Aggregate(&pAll, d, eo, nil)
	if runErr != nil {
		return nil, runErr
	}
	phis := make([]realfmla.Formula, len(res.Candidates))
	for i, c := range res.Candidates {
		phis[i] = c.Phi
	}
	oc, err := e.race(ctx, phis, p.Limit, eps, delta, func(pos, idx int, r Result) error {
		c := res.Candidates[idx]
		return yield(pos, MeasuredCandidate{Tuple: c.Tuple, Phi: c.Phi, Measure: r})
	})
	if err != nil {
		return nil, err
	}
	return &SQLStreamInfo{
		Count:        oc.delivered,
		NullIDs:      p.NullIDs,
		Index:        p.Index,
		Derivations:  res.Derivations,
		SamplesDrawn: oc.samplesDrawn,
		Rounds:       oc.rounds,
	}, nil
}

// measureStreamSeqInline is the single-worker streaming pipeline:
// candidates whose constraint saturates mid-join are measured inline (on
// one reusable, per-candidate-reseeded engine) and delivered through the
// reorder buffer while enumeration is still running — the incremental
// top-k contract — without any goroutines or channels. A sticky error
// (measurement, yield, or ctx) stops delivery immediately and aborts
// enumeration at its next interrupt poll.
func (e *Engine) measureStreamSeqInline(ctx context.Context, p *plan.Plan, d *db.Database, eps, delta float64, yield func(int, MeasuredCandidate) error) (*SQLStreamInfo, error) {
	o := e.opts
	kernels := e.poolKernels()
	eng := e.itemEngine(0)
	oy := orderedYield{yield: yield}
	var sick error
	measure := func(idx int, c exec.Candidate) {
		if sick != nil {
			return
		}
		if err := ctx.Err(); err != nil {
			sick = err
			return
		}
		eng.resetItem(itemOptions(o, idx), kernels)
		r, err := eng.MeasureFormula(c.Phi, eps, delta)
		if err != nil {
			sick = err
			return
		}
		sick = oy.deliver(idx, MeasuredCandidate{Tuple: c.Tuple, Phi: c.Phi, Measure: r})
	}
	eo := e.execOptions()
	eo.Interrupt = func() error {
		if sick != nil {
			return sick
		}
		return ctx.Err()
	}
	res, sat, runErr := exec.Aggregate(p, d, eo, measure)
	if runErr != nil {
		if sick != nil {
			return nil, sick
		}
		return nil, runErr
	}
	for i, c := range res.Candidates {
		if sick != nil {
			return nil, sick
		}
		if !sat[i] { // saturated candidates were measured mid-enumeration
			measure(i, c)
		}
	}
	if sick != nil {
		return nil, sick
	}
	return &SQLStreamInfo{
		Count:       len(res.Candidates),
		NullIDs:     p.NullIDs,
		Index:       p.Index,
		Derivations: res.Derivations,
	}, nil
}

// measureSQLBuffered is the collector behind MeasureSQLContext: same
// deliveries as MeasureSQLStream, but the single-worker path hands the
// candidate count ahead of delivery so the result slice is allocated
// exactly once.
func (e *Engine) measureSQLBuffered(ctx context.Context, q *sqlast.Query, d *db.Database, eps, delta float64) (*SQLMeasured, error) {
	if err := checkEpsDelta(eps, delta); err != nil {
		return nil, err
	}
	p, err := plan.Build(q, d, e.planOptions())
	if err != nil {
		return nil, err
	}
	out := &SQLMeasured{}
	collect := func(idx int, c MeasuredCandidate) error {
		out.Candidates = append(out.Candidates, c)
		return nil
	}
	var info *SQLStreamInfo
	switch {
	case e.raceApplies(p):
		info, err = e.measureStreamAdaptive(ctx, p, d, eps, delta, collect)
	case e.opts.poolWorkers() <= 1:
		info, err = e.measureStreamSeq(ctx, p, d, eps, delta, func(n int) {
			out.Candidates = make([]MeasuredCandidate, 0, n)
		}, collect)
	default:
		info, err = e.measureStreamPool(ctx, p, d, eps, delta, collect)
	}
	if err != nil {
		return nil, err
	}
	out.NullIDs, out.Index, out.Derivations = info.NullIDs, info.Index, info.Derivations
	out.SamplesDrawn, out.Rounds = info.SamplesDrawn, info.Rounds
	return out, nil
}

// orderedYield restores candidate order on an out-of-order stream of
// measured candidates: saturated candidates finalize mid-enumeration in
// arbitrary index order, so results are parked until every earlier index
// has been delivered.
type orderedYield struct {
	yield   func(int, MeasuredCandidate) error
	pending map[int]MeasuredCandidate
	next    int
}

func (oy *orderedYield) deliver(idx int, m MeasuredCandidate) error {
	if idx != oy.next {
		if oy.pending == nil {
			oy.pending = make(map[int]MeasuredCandidate)
		}
		oy.pending[idx] = m
		return nil
	}
	for {
		if err := oy.yield(oy.next, m); err != nil {
			return err
		}
		oy.next++
		var ok bool
		m, ok = oy.pending[oy.next]
		if !ok {
			return nil
		}
		delete(oy.pending, oy.next)
	}
}

// measureStreamSeq is the single-worker buffered pipeline (the seq path
// of MeasureSQL, where nobody reads mid-run deliveries): interleaving
// measurement into the join would only evict the enumeration's working
// set, so the join runs to completion uninterrupted and the candidates
// are then measured in index order on one reusable, per-candidate-
// reseeded engine — no goroutines, channels, or reorder buffer. The
// start hook receives the candidate count before the first delivery
// (the collector sizes its slice exactly with it). Streaming consumers
// go through measureStreamSeqInline instead, which preserves mid-join
// top-k delivery; measured values are bit-identical either way.
func (e *Engine) measureStreamSeq(ctx context.Context, p *plan.Plan, d *db.Database, eps, delta float64, start func(n int), yield func(int, MeasuredCandidate) error) (*SQLStreamInfo, error) {
	o := e.opts
	kernels := e.poolKernels()
	eng := e.itemEngine(0)
	eo := e.execOptions()
	eo.Interrupt = ctx.Err
	res, _, runErr := exec.Aggregate(p, d, eo, nil)
	if runErr != nil {
		return nil, runErr
	}
	if start != nil {
		start(len(res.Candidates))
	}
	for i, c := range res.Candidates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		eng.resetItem(itemOptions(o, i), kernels)
		r, err := eng.MeasureFormula(c.Phi, eps, delta)
		if err != nil {
			return nil, err
		}
		if err := yield(i, MeasuredCandidate{Tuple: c.Tuple, Phi: c.Phi, Measure: r}); err != nil {
			return nil, err
		}
	}
	return &SQLStreamInfo{
		Count:       len(res.Candidates),
		NullIDs:     p.NullIDs,
		Index:       p.Index,
		Derivations: res.Derivations,
	}, nil
}

// measureStreamPool is the concurrent fused pipeline: candidates fan out
// over PoolWorkers reusable worker engines while an emitter goroutine
// restores candidate order.
func (e *Engine) measureStreamPool(ctx context.Context, p *plan.Plan, d *db.Database, eps, delta float64, yield func(int, MeasuredCandidate) error) (*SQLStreamInfo, error) {
	type job struct {
		idx  int
		cand exec.Candidate
	}
	type measured struct {
		idx  int
		cand exec.Candidate
		res  Result
		err  error
	}
	workers := e.opts.poolWorkers()
	jobs := make(chan job, workers)
	results := make(chan measured, workers)
	var wg sync.WaitGroup
	o := e.opts // seeds/toggles snapshot; per-candidate engines derive from it
	kernels := e.poolKernels()
	engines := make([]*Engine, workers)
	for w := range engines {
		engines[w] = e.itemEngine(w)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(eng *Engine) {
			defer wg.Done()
			for j := range jobs {
				if err := ctx.Err(); err != nil {
					results <- measured{idx: j.idx, cand: j.cand, err: err}
					continue
				}
				eng.resetItem(itemOptions(o, j.idx), kernels)
				r, err := eng.MeasureFormula(j.cand.Phi, eps, delta)
				results <- measured{idx: j.idx, cand: j.cand, res: r, err: err}
			}
		}(engines[w])
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// The emitter restores candidate order: measurements finish out of
	// order (saturated candidates mid-enumeration, the rest as the pool
	// drains). Error fields are written only here and read only after
	// emitDone, so Wait orders the accesses.
	var (
		emitDone   = make(chan struct{})
		yieldErr   error
		measureErr error
	)
	go func() {
		defer close(emitDone)
		oy := orderedYield{yield: func(idx int, m MeasuredCandidate) error {
			if yieldErr == nil && measureErr == nil {
				if err := yield(idx, m); err != nil {
					yieldErr = err
				}
			}
			return nil // keep draining; the sticky error wins at the end
		}}
		for m := range results {
			if m.err != nil {
				if measureErr == nil {
					measureErr = m.err
				}
				continue
			}
			_ = oy.deliver(m.idx, MeasuredCandidate{Tuple: m.cand.Tuple, Phi: m.cand.Phi, Measure: m.res})
		}
	}()

	info := &SQLStreamInfo{NullIDs: p.NullIDs, Index: p.Index}
	eo := e.execOptions()
	eo.Interrupt = ctx.Err // abort enumeration too, not just measurement
	res, sat, runErr := exec.Aggregate(p, d, eo, func(idx int, c exec.Candidate) {
		jobs <- job{idx: idx, cand: c}
	})
	if runErr == nil {
		info.Derivations = res.Derivations
		info.Count = len(res.Candidates)
		for i, c := range res.Candidates {
			if !sat[i] { // saturated candidates were dispatched mid-enumeration
				jobs <- job{idx: i, cand: c}
			}
		}
	}
	close(jobs)
	<-emitDone
	if runErr != nil {
		return nil, runErr
	}
	if measureErr != nil {
		return nil, measureErr
	}
	if yieldErr != nil {
		return nil, yieldErr
	}
	return info, nil
}
