package server

// Degraded-mode end-to-end test: a server whose durability layer trips
// (injected WAL fault) must turn read-only — inserts get structured 503s
// with code "degraded", health and info report the reason — while
// measuring requests keep working off the in-memory snapshots.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/value"
	"repro/internal/wal"
	"repro/internal/wire"
)

func TestServerDegradesOnWALFault(t *testing.T) {
	ffs := &wal.FaultFS{Inner: wal.OSFS{}}
	store, err := wal.Open(t.TempDir(), wal.Options{
		FS:   ffs,
		Seed: func() (*db.Database, error) { return testDB().Clone(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	_, c, hs := newTestServer(t, Config{
		DB:      store.DB(),
		Durable: store,
		Engine:  core.Options{Seed: 1},
	})
	ctx := context.Background()

	tuple := []value.Tuple{{value.Base("segX"), value.Num(9.5), value.Num(0.1)}}
	if _, err := c.Insert(ctx, "Market", tuple); err != nil {
		t.Fatalf("healthy insert: %v", err)
	}

	// Trip the WAL on the next append.
	ffs.FailWriteAt = ffs.Writes() + 1
	_, err = c.Insert(ctx, "Market", tuple)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable || se.Code != wire.CodeDegraded {
		t.Fatalf("faulted insert: %v, want 503 %s", err, wire.CodeDegraded)
	}
	// Sticky: the next insert is rejected up front, same shape.
	if _, err = c.Insert(ctx, "Market", tuple); !errors.As(err, &se) || se.Code != wire.CodeDegraded {
		t.Fatalf("insert while degraded: %v, want code %s", err, wire.CodeDegraded)
	}

	// Health stays alive but reports the degradation; info turns read-only
	// with the reason.
	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz while degraded: %v", err)
	}
	resp, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "degraded" || health["reason"] == "" {
		t.Fatalf("healthz body %v, want degraded with a reason", health)
	}
	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !info.ReadOnly || info.Degraded == "" {
		t.Fatalf("info %+v, want readOnly with a degraded reason", info)
	}

	// Reads keep flowing: the safe restricted mode serves queries.
	res, err := c.MeasureSQL(ctx, testWorkloads[0], 0.2, 0.3)
	if err != nil {
		t.Fatalf("measure while degraded: %v", err)
	}
	if res.Count == 0 {
		t.Fatal("measure while degraded returned no candidates")
	}
}

// TestServerDurableInsertRecovers commits inserts through the durable
// path over HTTP, restarts the store, and checks the recovered database
// matches what the server acknowledged.
func TestServerDurableInsertRecovers(t *testing.T) {
	dir := t.TempDir()
	store, err := wal.Open(dir, wal.Options{
		Seed: func() (*db.Database, error) { return testDB().Clone(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, c, _ := newTestServer(t, Config{
		DB:      store.DB(),
		Durable: store,
		Engine:  core.Options{Seed: 1},
	})
	ctx := context.Background()
	var lastVersion int64
	for i := 0; i < 5; i++ {
		res, err := c.Insert(ctx, "Market", []value.Tuple{
			{value.Base("segY"), value.Num(float64(i)), value.Num(0.2)},
		})
		if err != nil {
			t.Fatal(err)
		}
		lastVersion = res.Version
	}
	wantLen := store.DB().Len("Market")
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := recovered.Seq(); got != 5 {
		t.Fatalf("recovered %d batches, want 5", got)
	}
	if got := recovered.DB().Len("Market"); got != wantLen {
		t.Fatalf("recovered Market has %d rows, want %d", got, wantLen)
	}
	if lastVersion == 0 {
		t.Fatal("insert responses carried no version")
	}
}
