// Package faultnet is the network sibling of wal.FaultFS: an injectable
// fault layer between HTTP peers that adds latency, drops connections,
// cuts streams mid-body at arbitrary byte offsets (tearing NDJSON frames
// mid-line), and refuses new connections — the hostile network the
// replication chaos harness runs the primary/replica pair through.
//
// Two injection seams cover both directions of the wire:
//
//   - Listen wraps a net.Listener (the server side): each accepted
//     connection samples a fault plan — extra first-byte latency, an
//     immediate drop, or a cut after a random number of response bytes —
//     from a seeded RNG, so a run is reproducible from its seed.
//   - Transport wraps an http.RoundTripper (the client side): requests
//     see added latency, synthetic connection-refused errors, and
//     response bodies truncated after a sampled byte budget.
//
// Faults are sampled per connection/request, under one lock, from one
// rand.Rand: concurrency-safe and deterministic for a fixed seed and
// arrival order. SetDisabled gates injection at runtime so a harness can
// alternate hostile and calm phases and assert convergence in both.
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"
)

// ErrInjected is the error surfaced by injected connection drops and
// cuts, wrapped with context about which fault fired.
var ErrInjected = errors.New("faultnet: injected fault")

// Faults is the shared fault plan sampler. The zero value injects
// nothing; configure with the Set methods (safe at runtime, also from
// other goroutines than the connections').
type Faults struct {
	mu  sync.Mutex
	rng *rand.Rand

	disabled bool
	latency  time.Duration // fixed pre-first-byte delay
	jitter   time.Duration // + uniform extra in [0, jitter)
	dropProb float64       // P(connection refused / reset before any byte)
	cutProb  float64       // P(stream cut mid-body)
	cutMin   int64         // cut offset sampled uniformly in [cutMin, cutMax]
	cutMax   int64

	conns, drops, cuts int64
}

// New returns a sampler seeded for reproducibility.
func New(seed int64) *Faults { return &Faults{rng: rand.New(rand.NewSource(seed))} }

// SetLatency adds a fixed + uniformly-jittered delay before the first
// byte of each connection or round trip.
func (f *Faults) SetLatency(d, jitter time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency, f.jitter = d, jitter
}

// SetDropProb makes new connections fail outright with that probability.
func (f *Faults) SetDropProb(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropProb = p
}

// SetCut makes streams die mid-body with probability p, after a byte
// offset sampled uniformly from [minBytes, maxBytes] — landing inside
// NDJSON lines as often as between them, which is exactly the torn-frame
// case the replication protocol must survive.
func (f *Faults) SetCut(p float64, minBytes, maxBytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if maxBytes < minBytes {
		maxBytes = minBytes
	}
	f.cutProb, f.cutMin, f.cutMax = p, minBytes, maxBytes
}

// SetDisabled turns all injection off (true) or back on (false).
func (f *Faults) SetDisabled(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.disabled = v
}

// Stats reports how many connections were planned, dropped, and cut.
func (f *Faults) Stats() (conns, drops, cuts int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.conns, f.drops, f.cuts
}

// plan is one sampled fault assignment.
type plan struct {
	latency time.Duration
	drop    bool
	cutAt   int64 // -1: never
}

func (f *Faults) sample() plan {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.conns++
	p := plan{cutAt: -1}
	if f.disabled || f.rng == nil {
		return p
	}
	p.latency = f.latency
	if f.jitter > 0 {
		p.latency += time.Duration(f.rng.Int63n(int64(f.jitter)))
	}
	if f.dropProb > 0 && f.rng.Float64() < f.dropProb {
		p.drop = true
		f.drops++
		return p
	}
	if f.cutProb > 0 && f.rng.Float64() < f.cutProb {
		p.cutAt = f.cutMin
		if f.cutMax > f.cutMin {
			p.cutAt += f.rng.Int63n(f.cutMax - f.cutMin + 1)
		}
		f.cuts++
	}
	return p
}

// Listen wraps a listener so accepted connections carry injected faults
// on their write side (the server's responses — where the replication
// stream flows).
func Listen(inner net.Listener, f *Faults) net.Listener {
	return &listener{Listener: inner, faults: f}
}

type listener struct {
	net.Listener
	faults *Faults
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &conn{Conn: c, plan: l.faults.sample()}, nil
}

// conn injects the sampled plan into one accepted connection. Reads pass
// through; writes see the first-byte latency, the drop, and the cut —
// a cut write sends the prefix up to the budget (the torn frame actually
// reaches the peer) and then severs the connection.
type conn struct {
	net.Conn
	plan    plan
	mu      sync.Mutex
	written int64
	slept   bool
	dead    bool
}

func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: connection cut", ErrInjected)
	}
	if !c.slept {
		c.slept = true
		if d := c.plan.latency; d > 0 {
			c.mu.Unlock()
			time.Sleep(d)
			c.mu.Lock()
		}
	}
	if c.plan.drop {
		c.dead = true
		c.mu.Unlock()
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection dropped", ErrInjected)
	}
	n := len(p)
	torn := false
	if c.plan.cutAt >= 0 && c.written+int64(n) > c.plan.cutAt {
		n = int(c.plan.cutAt - c.written)
		torn = true
		c.dead = true
	}
	c.written += int64(n)
	c.mu.Unlock()
	if !torn {
		return c.Conn.Write(p)
	}
	if n > 0 {
		if m, err := c.Conn.Write(p[:n]); err != nil {
			return m, err
		}
	}
	// Sever hard: the peer sees a reset mid-stream, not a clean EOF it
	// could mistake for completion.
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	c.Conn.Close()
	return n, fmt.Errorf("%w: connection cut after %d bytes", ErrInjected, c.written)
}

func (c *conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return 0, fmt.Errorf("%w: connection cut", ErrInjected)
	}
	return c.Conn.Read(p)
}

// Transport wraps a RoundTripper so requests through it see injected
// latency, refused connections, and truncated response bodies.
func Transport(inner http.RoundTripper, f *Faults) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &transport{inner: inner, faults: f}
}

type transport struct {
	inner  http.RoundTripper
	faults *Faults
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.faults.sample()
	if p.latency > 0 {
		select {
		case <-time.After(p.latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if p.drop {
		return nil, fmt.Errorf("%w: connection refused", ErrInjected)
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil || p.cutAt < 0 {
		return resp, err
	}
	resp.Body = &cutBody{inner: resp.Body, left: p.cutAt}
	return resp, nil
}

// cutBody delivers the response prefix up to the sampled budget, then
// fails mid-read — from the caller's side, a connection that died
// between (or inside) frames.
type cutBody struct {
	inner io.ReadCloser
	left  int64
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		b.inner.Close()
		return 0, fmt.Errorf("%w: response cut", ErrInjected)
	}
	if int64(len(p)) > b.left {
		p = p[:b.left]
	}
	n, err := b.inner.Read(p)
	b.left -= int64(n)
	if err == nil && b.left <= 0 {
		b.inner.Close()
		return n, fmt.Errorf("%w: response cut", ErrInjected)
	}
	return n, err
}

func (b *cutBody) Close() error { return b.inner.Close() }
