// Package db implements incomplete databases over the two-sorted data model:
// finite relations whose entries are base/numerical constants or marked
// nulls, together with valuations (interpretations of nulls by constants)
// and the active-domain bookkeeping the algorithms of the paper need.
//
// Storage is column-major: each relation column holds a per-row kind array
// (the column's kind bitmap) plus flat typed payload arrays — packed
// dictionary codes for base columns, raw float64 values and null IDs for
// numerical columns. Base constants are interned in a per-database string
// dictionary, so base equality (the decidable joins of Prop 5.2) is a
// single integer comparison and equality-index builds are sequential scans
// over flat arrays. value.Value remains the boundary type: Insert accepts
// tuples of values and Tuples/All/Row materialize them back on demand.
//
// The store is versioned: every column, the dictionary, each equality-index
// group and each inventory slice is append-only, so Insert maintains the
// cached indexes and inventories incrementally (no wholesale invalidation)
// and Snapshot publishes immutable copy-on-write views that concurrent
// readers keep using while later writes land (see snapshot.go).
package db

import (
	"cmp"
	"fmt"
	"iter"
	"maps"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/schema"
	"repro/internal/value"
)

// column is the columnar storage of one relation column.
//
//   - kinds is the per-row kind array (the kind bitmap of the column);
//   - codes holds, for base columns, the packed equality code of every row
//     (dictID<<1 for constants, nullID<<1|1 for nulls) and, for numerical
//     columns, the null ID on NumNull rows (0 elsewhere);
//   - nums holds the constant payload on NumConst rows of numerical
//     columns; it stays nil for base columns.
type column struct {
	kinds []value.Kind
	codes []int32
	nums  []float64
}

// table is the columnar storage of one relation: n rows across per-column
// typed arrays.
type table struct {
	rel  *schema.Relation
	n    int
	cols []column
}

// view returns a frozen copy of the table header: the same backing arrays
// behind fresh slice headers. The arrays are append-only, so a writer
// appending row n never touches memory a view of length n can reach.
func (tb *table) view() *table {
	cp := &table{rel: tb.rel, n: tb.n, cols: make([]column, len(tb.cols))}
	copy(cp.cols, tb.cols)
	return cp
}

// ColView is a read-only view of one relation column's columnar arrays,
// the zero-copy scan interface of the executor. The slices are owned by
// the database and must not be modified. Field meanings match column.
type ColView struct {
	Kinds []value.Kind
	Codes []int32
	Nums  []float64
}

// maxID bounds dictionary codes and null IDs so that the packed base code
// (id<<1 | nullbit) always fits an int32.
const maxID = 1 << 30

// Database is an incomplete database instance: for each relation of the
// schema, a finite set (stored column-major) of tuples over constants and
// marked nulls.
//
// A Database is either the live writer or a frozen snapshot of one
// (Snapshot). Writers need external serialization among themselves — one
// Insert at a time — but writing is safe concurrently with any number of
// readers that hold snapshots. Reading the live writer directly is only
// safe when no Insert runs concurrently (the single-goroutine Session
// regime).
type Database struct {
	schema *schema.Schema
	tables map[string]*table
	dict   dict

	nextBaseNull int
	nextNumNull  int

	// frozen marks an immutable snapshot view: Insert is rejected, and the
	// caches below, once built, are never mutated in place. origin points
	// a snapshot back at the writer it was taken from, so indexes the
	// snapshot builds lazily can be adopted by the writer (adoptIndex)
	// and stay incrementally maintained for later snapshots.
	frozen bool
	origin *Database

	// version counts committed mutations. Snapshot's fast path compares it
	// (atomically, without taking mu) against the published snapshot's
	// version; equality means the snapshot is current.
	version atomic.Int64
	// snap is the published snapshot of this writer — the RCU handle:
	// readers load the pointer, the writer swaps in a fresh frozen view
	// when Snapshot finds the published one stale.
	snap atomic.Pointer[Database]

	// mu guards the caches below and, on a writer, every mutation: Insert
	// holds it across the column appends and the incremental cache
	// maintenance, so Snapshot and the cache accessors always observe a
	// committed state.
	mu      sync.Mutex
	indexes map[indexKey]*EqIndex
	// sharedIx marks indexes referenced by a published snapshot: the
	// writer clones them (copy-on-write) before its next in-place append.
	sharedIx map[indexKey]bool

	// Active-domain inventories. The membership sets are writer-local and
	// maintained incrementally by Insert; the sorted slices below them are
	// the published form, possibly shared with snapshots, so they are only
	// ever replaced by fresh allocations or extended append-only (which a
	// snapshot, bounded by its own slice lengths, never observes).
	invValid    bool // published slices match the membership sets
	invShared   bool // numNullIndex is shared with a snapshot: COW first
	baseNullSet map[int]bool
	numNullSet  map[int]bool
	numConstSet map[float64]bool
	pendBase    []int     // new base-null IDs awaiting a sorted merge
	pendNum     []int     // new numerical-null IDs awaiting a sorted merge
	pendConst   []float64 // new numerical constants awaiting a sorted merge

	baseNulls    []int
	numNulls     []int
	numNullIndex map[int]int
	numConsts    []float64

	baseConstsLen int // dict length covered by baseConsts
	baseConsts    []string
}

// New returns an empty database over the given schema.
func New(s *schema.Schema) *Database {
	return &Database{schema: s, tables: make(map[string]*table)}
}

// Schema returns the database schema.
func (d *Database) Schema() *schema.Schema { return d.schema }

// Version reports the number of committed mutations. Two reads returning
// the same version bracket an unchanged database; a snapshot carries the
// version it was taken at.
func (d *Database) Version() int64 { return d.version.Load() }

// ReadOnly reports whether the database is a frozen snapshot view.
func (d *Database) ReadOnly() bool { return d.frozen }

func (d *Database) table(rel string) *table { return d.tables[rel] }

func (d *Database) ensureTable(rel string, r *schema.Relation) *table {
	tb := d.tables[rel]
	if tb == nil {
		tb = &table{rel: r, cols: make([]column, len(r.Columns))}
		d.tables[rel] = tb
	}
	return tb
}

// checkInsert validates a tuple without mutating anything: schema arity
// and sorts, null-ID ranges, and writability. Insert's atomicity hangs on
// this running to completion before the first append.
func (d *Database) checkInsert(rel string, t value.Tuple) (*schema.Relation, error) {
	if d.frozen {
		return nil, fmt.Errorf("db: relation %s: database is a read-only snapshot", rel)
	}
	r := d.schema.Relation(rel)
	if r == nil {
		return nil, fmt.Errorf("db: unknown relation %s", rel)
	}
	if err := r.CheckTuple(t); err != nil {
		return nil, err
	}
	for _, v := range t {
		switch v.Kind() {
		case value.BaseNull:
			if v.NullID() >= maxID {
				return nil, fmt.Errorf("db: base null id %d out of range", v.NullID())
			}
		case value.NumNull:
			if v.NullID() >= maxID {
				return nil, fmt.Errorf("db: numerical null id %d out of range", v.NullID())
			}
		}
	}
	return r, nil
}

// Insert adds a tuple to the named relation after validating it against
// the schema. Nulls mentioned in the tuple are registered so that
// FreshBaseNull and FreshNumNull never collide with them.
//
// Insert is atomic: a tuple that fails validation leaves the database
// bit-identical — no partially appended columns, no touched caches or
// inventories, no consumed null identifiers. On success the relation's
// cached equality indexes (and their distinct-key statistics) and the
// active-domain inventories are maintained incrementally, in place —
// never dropped — and the database version advances. Published snapshots
// are unaffected: structures they share are cloned copy-on-write before
// the first in-place mutation.
func (d *Database) Insert(rel string, t value.Tuple) error {
	r, err := d.checkInsert(rel, t)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.insertLocked(r, t)
	d.version.Add(1)
	return nil
}

// CheckBatch validates a batch against the schema without mutating
// anything: the exact validation InsertBatch runs before its first
// append. Write-ahead logging uses it to reject invalid batches before
// they reach the log — a logged record must always replay cleanly.
func (d *Database) CheckBatch(rel string, tuples []value.Tuple) error {
	for _, t := range tuples {
		if _, err := d.checkInsert(rel, t); err != nil {
			return err
		}
	}
	return nil
}

// InsertBatch inserts tuples into the named relation atomically: every
// tuple is validated before the first one is appended, so an invalid
// tuple anywhere in the batch leaves the database bit-identical. The
// batch commits as one version step.
func (d *Database) InsertBatch(rel string, tuples []value.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	var r *schema.Relation
	for _, t := range tuples {
		var err error
		if r, err = d.checkInsert(rel, t); err != nil {
			return err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, t := range tuples {
		d.insertLocked(r, t)
	}
	d.version.Add(1)
	return nil
}

// insertLocked appends one fully validated tuple and maintains the
// caches in place. Callers hold d.mu.
func (d *Database) insertLocked(r *schema.Relation, t value.Tuple) {
	for _, v := range t {
		switch v.Kind() {
		case value.BaseNull:
			if v.NullID() >= d.nextBaseNull {
				d.nextBaseNull = v.NullID() + 1
			}
		case value.NumNull:
			if v.NullID() >= d.nextNumNull {
				d.nextNumNull = v.NullID() + 1
			}
		}
	}
	tb := d.ensureTable(r.Name, r)
	row := int32(tb.n)
	for j, v := range t {
		c := &tb.cols[j]
		c.kinds = append(c.kinds, v.Kind())
		var code int32
		switch v.Kind() {
		case value.BaseConst:
			code = d.dict.intern(v.Str()) << 1
			c.codes = append(c.codes, code)
		case value.BaseNull:
			code = int32(v.NullID())<<1 | 1
			c.codes = append(c.codes, code)
		case value.NumConst:
			c.codes = append(c.codes, 0)
			c.nums = append(c.nums, v.Float())
		case value.NumNull:
			code = int32(v.NullID())
			c.codes = append(c.codes, code)
			c.nums = append(c.nums, 0)
		}
		if ix := d.writableIndex(r.Name, j); ix != nil {
			ix.addRow(v, code, row)
		}
		d.addInventory(v)
	}
	tb.n++
}

// MustInsert is Insert that panics on error, for tests and examples.
func (d *Database) MustInsert(rel string, vals ...value.Value) {
	if err := d.Insert(rel, value.Tuple(vals)); err != nil {
		panic(err)
	}
}

// FreshBaseNull allocates a base null unused anywhere in the database.
// Like Insert it is a writer-side operation: safe concurrently with
// snapshot readers, serialized against other writers by d.mu, and
// rejected (panic, like any write to a read-only view) on snapshots —
// a snapshot's counter is frozen, so an ID it handed out could collide
// with one the live writer allocates.
func (d *Database) FreshBaseNull() value.Value {
	if d.frozen {
		panic("db: FreshBaseNull on a read-only snapshot")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	v := value.NullBase(d.nextBaseNull)
	d.nextBaseNull++
	return v
}

// FreshNumNull allocates a numerical null unused anywhere in the database.
// Writer-side; see FreshBaseNull.
func (d *Database) FreshNumNull() value.Value {
	if d.frozen {
		panic("db: FreshNumNull on a read-only snapshot")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	v := value.NullNum(d.nextNumNull)
	d.nextNumNull++
	return v
}

// cellValue materializes the boundary value of one cell.
func (d *Database) cellValue(tb *table, col, row int) value.Value {
	c := &tb.cols[col]
	switch c.kinds[row] {
	case value.BaseConst:
		return value.Base(d.dict.str(c.codes[row] >> 1))
	case value.BaseNull:
		return value.NullBase(int(c.codes[row] >> 1))
	case value.NumConst:
		return value.Num(c.nums[row])
	default:
		return value.NullNum(int(c.codes[row]))
	}
}

// rowTuple materializes row i of a table as a fresh tuple.
func (d *Database) rowTuple(tb *table, i int) value.Tuple {
	t := make(value.Tuple, len(tb.cols))
	for j := range tb.cols {
		t[j] = d.cellValue(tb, j, i)
	}
	return t
}

// Tuples returns the tuples of the named relation, materialized from the
// columnar storage: the caller owns the result and may modify it freely
// without corrupting the database. Read-only consumers that only iterate
// should use All, Len and Row; scans should use Col.
func (d *Database) Tuples(rel string) []value.Tuple {
	tb := d.table(rel)
	if tb == nil {
		return nil
	}
	out := make([]value.Tuple, tb.n)
	for i := range out {
		out[i] = d.rowTuple(tb, i)
	}
	return out
}

// All returns an iterator over the tuples of the named relation in
// insertion order. Each yielded tuple is freshly materialized from the
// columnar storage and owned by the caller.
func (d *Database) All(rel string) iter.Seq[value.Tuple] {
	return func(yield func(value.Tuple) bool) {
		tb := d.table(rel)
		if tb == nil {
			return
		}
		for i := 0; i < tb.n; i++ {
			if !yield(d.rowTuple(tb, i)) {
				return
			}
		}
	}
}

// Len returns the number of tuples in the named relation.
func (d *Database) Len(rel string) int {
	tb := d.table(rel)
	if tb == nil {
		return 0
	}
	return tb.n
}

// Rows returns the tuples of the named relation for read-only random
// access, materialized from the columnar storage (one fresh tuple per
// row). Hot paths should scan the columnar arrays via Col instead.
func (d *Database) Rows(rel string) []value.Tuple { return d.Tuples(rel) }

// Row returns the i-th tuple (in insertion order) of the named relation,
// materialized as a fresh tuple owned by the caller.
func (d *Database) Row(rel string, i int) value.Tuple { return d.rowTuple(d.table(rel), i) }

// Col returns the columnar view of one relation column for zero-copy
// read-only scans. The returned slices are owned by the database and must
// not be modified; an unknown relation yields empty views.
func (d *Database) Col(rel string, col int) ColView {
	tb := d.table(rel)
	if tb == nil {
		return ColView{}
	}
	c := &tb.cols[col]
	return ColView{Kinds: c.kinds, Codes: c.codes, Nums: c.nums}
}

// DictString returns the base constant interned under the given dictionary
// id (a packed base code shifted right by one).
func (d *Database) DictString(id int32) string { return d.dict.str(id) }

// LookupBaseCode returns the packed equality code of a base constant, with
// ok=false when the constant occurs nowhere in the database (so no row can
// compare equal to it).
func (d *Database) LookupBaseCode(s string) (int32, bool) {
	id, ok := d.dict.code(s)
	return id << 1, ok
}

// Size returns the total number of tuples across all relations.
func (d *Database) Size() int {
	n := 0
	for _, tb := range d.tables {
		n += tb.n
	}
	return n
}

// DropCaches discards every cached equality index and inventory, forcing
// full sequential-scan rebuilds on next access. This is the wholesale
// invalidation Insert performed before incremental maintenance; it is
// kept as the drop-and-rebuild baseline of BenchmarkMixedInsertQuery and
// as an escape hatch. No-op on snapshots.
func (d *Database) DropCaches() {
	if d.frozen {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.indexes = nil
	d.sharedIx = nil
	d.invValid = false
	d.invShared = false
	d.baseNullSet, d.numNullSet, d.numConstSet = nil, nil, nil
	d.pendBase, d.pendNum, d.pendConst = nil, nil, nil
	d.baseNulls, d.numNulls, d.numNullIndex, d.numConsts = nil, nil, nil, nil
	d.baseConsts, d.baseConstsLen = nil, 0
	d.version.Add(1)
}

// addInventory folds one inserted value into the live inventory state:
// the membership sets update in place and genuinely new elements queue
// for the next sorted merge (buildInventories). While the inventories
// have never been built the sets are nil and the value is ignored — the
// first accessor still performs its single full scan.
func (d *Database) addInventory(v value.Value) {
	switch v.Kind() {
	case value.BaseNull:
		if d.baseNullSet != nil && !d.baseNullSet[v.NullID()] {
			d.baseNullSet[v.NullID()] = true
			d.pendBase = append(d.pendBase, v.NullID())
			d.invValid = false
		}
	case value.NumNull:
		if d.numNullSet != nil && !d.numNullSet[v.NullID()] {
			d.numNullSet[v.NullID()] = true
			d.pendNum = append(d.pendNum, v.NullID())
			d.invValid = false
		}
	case value.NumConst:
		if d.numConstSet != nil && !d.numConstSet[v.Float()] {
			d.numConstSet[v.Float()] = true
			d.pendConst = append(d.pendConst, v.Float())
			d.invValid = false
		}
	}
}

// scanInventories seeds the membership sets with one sequential scan per
// column, queueing every element for the first sorted merge. It runs at
// most once per database (and once more after DropCaches); all later
// maintenance is incremental. Callers hold d.mu.
func (d *Database) scanInventories() {
	d.baseNullSet = make(map[int]bool)
	d.numNullSet = make(map[int]bool)
	d.numConstSet = make(map[float64]bool)
	for _, tb := range d.tables {
		for j := range tb.cols {
			c := &tb.cols[j]
			if tb.rel.Columns[j].Type == schema.Base {
				for i, k := range c.kinds {
					if k == value.BaseNull {
						if id := int(c.codes[i] >> 1); !d.baseNullSet[id] {
							d.baseNullSet[id] = true
							d.pendBase = append(d.pendBase, id)
						}
					}
				}
				continue
			}
			for i, k := range c.kinds {
				if k == value.NumNull {
					if id := int(c.codes[i]); !d.numNullSet[id] {
						d.numNullSet[id] = true
						d.pendNum = append(d.pendNum, id)
					}
				} else if x := c.nums[i]; !d.numConstSet[x] {
					d.numConstSet[x] = true
					d.pendConst = append(d.pendConst, x)
				}
			}
		}
	}
}

// buildInventories brings the published inventory slices up to date with
// the membership sets. After the one-time seeding scan this only merges
// the queued new elements: sorted slices either grow append-only (new
// elements above the current maximum — snapshot readers, bounded by their
// own slice lengths, never observe the appended tail) or are replaced by
// freshly allocated merges; the numNullIndex inverse map is cloned first
// when a snapshot shares it. It never rescans the relations and never
// mutates storage a snapshot can reach. Callers hold d.mu.
func (d *Database) buildInventories() {
	if d.invValid {
		return
	}
	if d.baseNullSet == nil {
		d.scanInventories()
	}
	if len(d.pendBase) > 0 {
		d.baseNulls = mergeSorted(d.baseNulls, d.pendBase)
		d.pendBase = nil
	}
	if len(d.pendConst) > 0 {
		d.numConsts = mergeSorted(d.numConsts, d.pendConst)
		d.pendConst = nil
	}
	if len(d.pendNum) > 0 {
		sort.Ints(d.pendNum)
		if n := len(d.numNulls); n == 0 || d.pendNum[0] > d.numNulls[n-1] {
			// Fresh nulls above the current maximum — the common case
			// (FreshNumNull allocates ascending IDs): extend the sorted
			// slice and its inverse map in place.
			if d.invShared {
				d.numNullIndex = maps.Clone(d.numNullIndex)
				d.invShared = false
			}
			if d.numNullIndex == nil {
				d.numNullIndex = make(map[int]int, len(d.pendNum))
			}
			for _, id := range d.pendNum {
				d.numNulls = append(d.numNulls, id)
				d.numNullIndex[id] = len(d.numNulls) - 1
			}
		} else {
			// Out-of-order IDs shift positions: rebuild slice and map fresh.
			d.numNulls = mergeSorted(d.numNulls, d.pendNum)
			d.numNullIndex = make(map[int]int, len(d.numNulls))
			for i, id := range d.numNulls {
				d.numNullIndex[id] = i
			}
			d.invShared = false
		}
		d.pendNum = nil
	}
	d.invValid = true
}

// mergeSorted merges unsorted new elements into a sorted slice. The
// append fast path may extend dst's backing array past every published
// length; the interleaving path allocates fresh, so published slices are
// never changed within their bounds. cmp.Less orders float NaNs first,
// exactly like the full sort a rebuild runs, so incremental maintenance
// and rebuilds produce byte-identical slices.
func mergeSorted[T cmp.Ordered](dst, add []T) []T {
	slices.Sort(add)
	if len(dst) == 0 {
		return add
	}
	if cmp.Less(dst[len(dst)-1], add[0]) {
		return append(dst, add...)
	}
	out := make([]T, 0, len(dst)+len(add))
	i, j := 0, 0
	for i < len(dst) && j < len(add) {
		if cmp.Less(add[j], dst[i]) {
			out = append(out, add[j])
			j++
		} else {
			out = append(out, dst[i])
			i++
		}
	}
	out = append(out, dst[i:]...)
	return append(out, add[j:]...)
}

// BaseNulls returns the identifiers of all base nulls occurring in the
// database, sorted ascending. This is the set Nbase(D) of the paper. The
// result is valid until the next mutation and must not be modified.
func (d *Database) BaseNulls() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buildInventories()
	return d.baseNulls
}

// NumNulls returns the identifiers of all numerical nulls occurring in the
// database, sorted ascending. This is the set Nnum(D) of the paper. The
// result is valid until the next mutation and must not be modified.
func (d *Database) NumNulls() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buildInventories()
	return d.numNulls
}

// NumNullIndex returns NumNulls together with its inverse (null ID →
// position), the formula-variable indexing of the SQL pipeline. Both are
// valid until the next mutation and must not be modified.
func (d *Database) NumNullIndex() ([]int, map[int]int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buildInventories()
	return d.numNulls, d.numNullIndex
}

// BaseConstants returns the set Cbase(D): all base-type constants occurring
// in the database, sorted. Because the dictionary is append-only and fed
// exclusively by Insert, this is a sorted copy of the dictionary. The
// result is cached until the dictionary next grows and must not be
// modified.
func (d *Database) BaseConstants() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.dict.strs) != d.baseConstsLen || d.baseConsts == nil {
		d.baseConsts = append([]string(nil), d.dict.strs...)
		sort.Strings(d.baseConsts)
		d.baseConstsLen = len(d.dict.strs)
	}
	return d.baseConsts
}

// NumConstants returns the set Cnum(D): all numerical constants occurring
// in the database, sorted ascending. The result is valid until the next
// mutation and must not be modified.
func (d *Database) NumConstants() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buildInventories()
	return d.numConsts
}

// NumNullOccurrences returns, for each numerical null ID, the
// "Relation.column" positions where it occurs. Range constraints declared
// per column (the Section 10 extension) are attached to nulls through
// this map.
func (d *Database) NumNullOccurrences() map[int][]string {
	out := make(map[int][]string)
	seen := make(map[[2]interface{}]bool)
	for _, rel := range d.schema.Relations() {
		tb := d.table(rel.Name)
		if tb == nil {
			continue
		}
		for i := 0; i < tb.n; i++ {
			for j := range tb.cols {
				c := &tb.cols[j]
				if c.kinds[i] != value.NumNull {
					continue
				}
				id := int(c.codes[i])
				key := [2]interface{}{id, rel.Name + "." + rel.Columns[j].Name}
				if seen[key] {
					continue
				}
				seen[key] = true
				out[id] = append(out[id], rel.Name+"."+rel.Columns[j].Name)
			}
		}
	}
	return out
}

// IsComplete reports whether the database contains no nulls.
func (d *Database) IsComplete() bool {
	return len(d.BaseNulls()) == 0 && len(d.NumNulls()) == 0
}

// Clone returns a deep copy of the database: a fresh writable database
// with independent storage and no caches, regardless of whether d is a
// writer or a snapshot.
func (d *Database) Clone() *Database {
	c := New(d.schema)
	c.nextBaseNull = d.nextBaseNull
	c.nextNumNull = d.nextNumNull
	c.dict = d.dict.clone()
	for rel, tb := range d.tables {
		cp := &table{rel: tb.rel, n: tb.n, cols: make([]column, len(tb.cols))}
		for j := range tb.cols {
			cp.cols[j] = column{
				kinds: append([]value.Kind(nil), tb.cols[j].kinds...),
				codes: append([]int32(nil), tb.cols[j].codes...),
			}
			if tb.cols[j].nums != nil {
				cp.cols[j].nums = append([]float64(nil), tb.cols[j].nums...)
			}
		}
		c.tables[rel] = cp
	}
	return c
}

// String renders every relation with its tuples, sorted by relation name.
func (d *Database) String() string {
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += n + ":\n"
		for t := range d.All(n) {
			s += "  " + t.String() + "\n"
		}
	}
	return s
}

// canonFloatBits returns the equality-key bit pattern of a numerical
// constant: -0 is identified with +0 (they compare equal) and every NaN
// payload is collapsed to one canonical pattern.
func canonFloatBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	if f != f {
		return 0x7ff8000000000001
	}
	return math.Float64bits(f)
}
