package core

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/realfmla"
	"repro/internal/sqlfront"
)

// TestMeasureSQLMatchesBatch: the fused pipeline is bit-identical to
// evaluate-then-MeasureBatch — same candidates, same measures — for every
// planner toggle combination, despite overlapping measurement with
// enumeration.
func TestMeasureSQLMatchesBatch(t *testing.T) {
	d, err := datagen.Generate(datagen.Config{
		Seed: 5, Products: 120, Orders: 90, Market: 30, Segments: 10,
		NullRate: 0.3, MarketNullRate: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := sqlfront.MustParse(`SELECT P.seg FROM Products P, Market M
		WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 8`)

	// NoAdaptive: this test pins the fixed-budget contract — first-k
	// distinct tuples, every candidate measured like MeasureBatch. The
	// adaptive LIMIT-k race has its own parity suite (adaptive_test.go).
	for _, opts := range []Options{
		{Seed: 9, NoAdaptive: true},
		{Seed: 9, NoAdaptive: true, DisableJoinReorder: true, DisableDBIndexes: true, DisableHashJoin: true},
		{Seed: 9, NoAdaptive: true, DisableExact: true, ForceSampling: true, PaperSampleCount: true},
	} {
		ev, err := New(opts).EvaluateSQL(q, d)
		if err != nil {
			t.Fatal(err)
		}
		ref, refErr := sqlfront.Evaluate(q, d)
		if refErr != nil {
			t.Fatal(refErr)
		}
		if len(ev.Candidates) != len(ref.Candidates) || ev.Derivations != ref.Derivations {
			t.Fatalf("EvaluateSQL diverged from sqlfront.Evaluate: %d/%d vs %d/%d",
				len(ev.Candidates), ev.Derivations, len(ref.Candidates), ref.Derivations)
		}

		phis := make([]realfmla.Formula, len(ev.Candidates))
		for i, c := range ev.Candidates {
			phis[i] = c.Phi
		}
		want, errs := MeasureBatch(opts, phis, 0.05, 0.25)
		for _, e := range errs {
			if e != nil {
				t.Fatal(e)
			}
		}

		got, err := New(opts).MeasureSQL(q, d, 0.05, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if got.Derivations != ev.Derivations || len(got.Candidates) != len(ev.Candidates) {
			t.Fatalf("MeasureSQL shape: %d/%d, want %d/%d",
				len(got.Candidates), got.Derivations, len(ev.Candidates), ev.Derivations)
		}
		for i, mc := range got.Candidates {
			if !mc.Tuple.Equal(ev.Candidates[i].Tuple) || !realfmla.Equal(mc.Phi, ev.Candidates[i].Phi) {
				t.Fatalf("candidate %d diverged", i)
			}
			if mc.Measure.Value != want[i].Value || mc.Measure.Method != want[i].Method ||
				mc.Measure.Samples != want[i].Samples {
				t.Fatalf("candidate %d: measure %+v, want %+v (opts %+v)", i, mc.Measure, want[i], opts)
			}
		}
	}
}

// TestMeasureSQLDeterministic: repeated fused runs agree bitwise.
func TestMeasureSQLDeterministic(t *testing.T) {
	d, err := datagen.Generate(datagen.Config{
		Seed: 8, Products: 60, Orders: 40, Market: 20, Segments: 6, NullRate: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srcs := []string{
		`SELECT P.id FROM Products P WHERE P.rrp * P.dis > 50 LIMIT 5`,
		`SELECT P.seg FROM Products P, Market M WHERE P.seg = M.seg AND P.rrp <= M.rrp`,
	}
	for _, src := range srcs {
		q := sqlfront.MustParse(src)
		a, err := New(Options{Seed: 3, DisableExact: true}).MeasureSQL(q, d, 0.05, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(Options{Seed: 3, DisableExact: true}).MeasureSQL(q, d, 0.05, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Candidates) != len(b.Candidates) {
			t.Fatalf("candidate counts differ: %d vs %d", len(a.Candidates), len(b.Candidates))
		}
		for i := range a.Candidates {
			if a.Candidates[i].Measure.Value != b.Candidates[i].Measure.Value {
				t.Fatalf("run-to-run divergence at candidate %d", i)
			}
		}
	}
}

// TestMeasureSQLBadParams: parameter validation mirrors MeasureFormula.
func TestMeasureSQLBadParams(t *testing.T) {
	d, err := datagen.Generate(datagen.Config{Seed: 1, Products: 5, Orders: 5, Market: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := sqlfront.MustParse(`SELECT P.id FROM Products P`)
	if _, err := New(Options{}).MeasureSQL(q, d, 0, 0.5); err == nil {
		t.Error("accepted eps=0")
	}
	if _, err := New(Options{}).MeasureSQL(q, d, 0.1, 1); err == nil {
		t.Error("accepted delta=1")
	}
	bad := sqlfront.MustParse(`SELECT P.id FROM Products P`)
	bad.From[0].Relation = "Nope"
	if _, err := New(Options{}).MeasureSQL(bad, d, 0.1, 0.1); err == nil {
		t.Error("accepted unknown relation")
	}
}
