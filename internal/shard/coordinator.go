package shard

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlast"
)

// MeasureSQLStream runs a query against the sharded store through the
// scatter-gather coordinator and streams measured candidates to yield
// in candidate order — the same contract as core.Engine.MeasureSQLStream,
// with bit-identical results: the sequence of (idx, candidate) pairs,
// measures included, is exactly what the engine would deliver over an
// unsharded database holding the same rows in the same insert order.
//
// Single-relation plans scatter: every shard enumerates its own rows in
// parallel on its own executor, emitting derivation streams that the
// coordinator merges back into the global derivation order with a
// frontier walk over the routing log. Per-shard constraint formulas are
// built directly in the global formula-variable indexing (the plans are
// rebased onto the union null inventory), so the merged candidates are
// bit-identical to single-store enumeration. Multi-relation (join)
// plans enumerate over the gathered snapshot instead — join derivations
// combine rows across shards, so their enumeration is inherently
// global — and measurement still fans out per candidate either way,
// through the engine's race / pool paths with global candidate indices
// (the MeasureBatch seeding contract: that is what makes the scattered
// measures bit-stable).
//
// The engine carries the caller's toggles and compiled-kernel cache and
// must not be used concurrently, exactly as with its own methods.
func (st *Store) MeasureSQLStream(ctx context.Context, eng *core.Engine, q *sqlast.Query, eps, delta float64, yield func(idx int, c core.MeasuredCandidate) error) (*core.SQLStreamInfo, error) {
	if err := core.ValidateEpsDelta(eps, delta); err != nil {
		return nil, err
	}
	v := st.snapshotView()
	plans := make([]*plan.Plan, len(v.shards))
	for s, d := range v.shards {
		p, err := plan.Build(q, d, eng.PlanOptions())
		if err != nil {
			return nil, err
		}
		plans[s] = p
	}
	if len(plans[0].Steps) != 1 {
		// Join plans combine rows across shards; enumerate them over the
		// gathered snapshot (measurement still fans out per candidate).
		g, err := st.gatherView(v)
		if err != nil {
			return nil, err
		}
		return eng.MeasureSQLStream(ctx, q, g, eps, delta, yield)
	}
	res, err := st.scatterEnumerate(ctx, eng, v, plans)
	if err != nil {
		return nil, err
	}
	return eng.MeasureCandidatesStream(ctx, res, plans[0].Limit, eps, delta, yield)
}

// MeasureSQL is the buffered form of MeasureSQLStream, mirroring
// core.Engine.MeasureSQL.
func (st *Store) MeasureSQL(ctx context.Context, eng *core.Engine, q *sqlast.Query, eps, delta float64) (*core.SQLMeasured, error) {
	out := &core.SQLMeasured{}
	info, err := st.MeasureSQLStream(ctx, eng, q, eps, delta, func(idx int, c core.MeasuredCandidate) error {
		out.Candidates = append(out.Candidates, c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.NullIDs, out.Index, out.Derivations = info.NullIDs, info.Index, info.Derivations
	out.SamplesDrawn, out.Rounds = info.SamplesDrawn, info.Rounds
	return out, nil
}

// gatherView is Gather over an already-captured view (so the join path
// and the caller's plan building agree on one consistent cut); it
// shares the store's per-version cache.
func (st *Store) gatherView(v view) (*db.Database, error) {
	st.mu.RLock()
	if st.gathered != nil && st.gatheredAt == v.version {
		g := st.gathered
		st.mu.RUnlock()
		return g, nil
	}
	st.mu.RUnlock()
	return st.Gather()
}

// unionNullIndex merges the shards' numerical-null inventories into the
// global formula-variable indexing: ascending null IDs, position =
// variable index — exactly db.NumNullIndex of the merged database.
func unionNullIndex(shards []*db.Database) ([]int, map[int]int) {
	heads := make([][]int, len(shards))
	for s, d := range shards {
		heads[s] = d.NumNulls()
	}
	var ids []int
	for {
		best, ok := 0, false
		for _, h := range heads {
			if len(h) == 0 {
				continue
			}
			if !ok || h[0] < best {
				best, ok = h[0], true
			}
		}
		if !ok {
			break
		}
		ids = append(ids, best)
		for s, h := range heads {
			if len(h) > 0 && h[0] == best {
				heads[s] = h[1:]
			}
		}
	}
	index := make(map[int]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	return ids, index
}

// scatterEnumerate fans a single-relation plan out to per-shard
// executors and merges their derivation streams back into the global
// derivation order, aggregating them into the exact candidate set the
// single-store pipeline would produce.
//
// The merge is a frontier walk over the routing log: global derivation
// order on a scan is global row order, each shard's stream arrives in
// its local row order (a subsequence of the global order), and the log
// says which shard owns each global position — so the walk advances one
// global row at a time, consuming a shard's next derivation exactly
// when the log hands that shard the current position.
func (st *Store) scatterEnumerate(ctx context.Context, eng *core.Engine, v view, plans []*plan.Plan) (*exec.Result, error) {
	nullIDs, index := unionNullIndex(v.shards)
	rel := plans[0].Steps[0].Relation
	limit := plans[0].Limit
	n := len(v.shards)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	eo := eng.ExecOptions()
	eo.TrackRows = true // the merge needs each derivation's row ordinal

	chans := make([]chan *exec.Deriv, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		// Rebase the shard's plan onto the global formula-variable
		// indexing: constraint atoms then materialize with the merged
		// ambient dimension and variable positions, bit-identical to
		// single-store enumeration. The shard enumerates without the
		// LIMIT — first-k-distinct and top-k are global notions, applied
		// by the coordinator's aggregation and the race respectively.
		p := *plans[s]
		p.NullIDs, p.Index, p.K = nullIDs, index, len(nullIDs)
		p.Limit = 0
		ch := make(chan *exec.Deriv, 128)
		chans[s] = ch
		wg.Add(1)
		go func(s int, p plan.Plan) {
			defer wg.Done()
			defer close(ch)
			errs[s] = exec.Run(&p, v.shards[s], eo, func(dv *exec.Deriv) error {
				select {
				case ch <- dv:
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			})
		}(s, p)
	}

	// The race path aggregates the whole field (the ranking must see
	// every candidate); the fixed paths apply the LIMIT during
	// aggregation, exactly like the single-store pipelines.
	aggLimit := limit
	if eng.RaceApplies(limit) {
		aggLimit = 0
	}
	agg := exec.NewAggregator(aggLimit, nil)
	res := &exec.Result{NullIDs: nullIDs, Index: index}

	order := v.order[rel]
	heads := make([]*exec.Deriv, n)
	done := make([]bool, n)
	next := make([]int, n)
	var walkErr error
walk:
	for _, s := range order {
		local := next[s]
		next[s]++
		for heads[s] == nil && !done[s] {
			dv, ok := <-chans[s]
			if !ok {
				done[s] = true
				break
			}
			heads[s] = dv
		}
		if heads[s] != nil && heads[s].Rows[0] == local {
			res.Derivations++
			agg.Add(heads[s])
			heads[s] = nil
		}
		if res.Derivations%4096 == 0 {
			if err := ctx.Err(); err != nil {
				walkErr = err
				break walk
			}
		}
	}
	cancel() // unblock any shard still pushing (only on early exit)
	wg.Wait()
	if walkErr != nil {
		return nil, walkErr
	}
	for s, err := range errs {
		if err != nil {
			if ctx.Err() != nil && err == context.Canceled {
				err = ctx.Err()
			}
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	res.Candidates = agg.Finish()
	return res, nil
}
