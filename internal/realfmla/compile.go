package realfmla

import (
	"fmt"
	"strings"

	"repro/internal/poly"
)

// Compiled is a formula preprocessed for repeated evaluation: syntactically
// identical atoms are deduplicated and evaluated once per point or
// direction, and the Boolean structure is evaluated over the cached truth
// values. Translated formulas share massive numbers of repeated atoms
// (quantifier expansion reuses the same comparisons), so this is the
// difference between the AFPRAS being practical or not.
//
// Compile additionally classifies every atom into an evaluation kernel:
//
//   - constant atoms carry their precomputed constant;
//   - linear atoms (the overwhelming majority of translated formulas) have
//     their degree-1 coefficients packed into one flat row-major matrix, so
//     asymptotic sign along a direction is a dot product with a tolerance
//     fallback to the constant term — no polynomial substitution at all;
//   - the remaining (nonlinear) atoms have their terms packed into a flat
//     homogeneous-degree cascade evaluated leading degree first, which
//     almost always stops after the top homogeneous component.
//
// The compiled structure is immutable after Compile and may be shared by
// any number of goroutines, each evaluating through its own Evaluator.
// The AsymEval/Eval/EvalWith methods on Compiled itself use one internal
// Evaluator and are therefore NOT safe for concurrent use.
type Compiled struct {
	atoms []Atom
	root  cnode
	n     int // ambient variable count (0 if the formula has no atoms)

	// meta is the per-atom kernel metadata, indexed like atoms.
	meta []atomMeta
	// linCoef packs the degree-1 coefficient rows of all linear atoms into
	// one flat row-major matrix (numLinear × n).
	linCoef []float64

	// Nonlinear atoms are compiled into a flat homogeneous-degree cascade:
	// terms grouped by total degree, highest first, so the asymptotic sign
	// evaluates the leading homogeneous component and falls through to
	// lower degrees only when it vanishes (within tolerance). Atom i owns
	// degree levels [meta[i].lvlStart, meta[i].lvlEnd); level L owns terms
	// [termOff[L], termOff[L+1]); term t has coefficient termCoef[t] and
	// variable factors [facOff[t], facOff[t+1]) into facVar/facPow.
	termOff        []int32
	termCoef       []float64
	facOff         []int32
	facVar, facPow []int32

	// maxDeg is the maximum total degree over akGeneral atoms; Evaluator
	// scratch buffers (used by mixed-mode evaluation) are sized to it.
	maxDeg int

	// def backs the legacy evaluation methods on Compiled.
	def *Evaluator
}

type atomKind uint8

const (
	akConst atomKind = iota
	akLinear
	akGeneral
)

// atomMeta packs the hot per-atom kernel metadata (classification,
// relation, kernel offsets, constant term) into 24 bytes, so deciding an
// atom's asymptotic truth starts from a single array load.
type atomMeta struct {
	kind atomKind
	rel  Rel
	// row is the row index into linCoef for akLinear atoms, -1 otherwise.
	row int32
	// lvlStart/lvlEnd delimit the cascade levels of akGeneral atoms.
	lvlStart, lvlEnd int32
	// cval is the constant term: the whole polynomial for akConst atoms,
	// the degree-0 coefficient for akLinear atoms, 0 for akGeneral.
	cval float64
}

type cnodeKind uint8

const (
	cTrue cnodeKind = iota
	cFalse
	cAtom
	cNot
	cAnd
	cOr
)

type cnode struct {
	kind cnodeKind
	atom int
	kids []cnode
}

// Compile preprocesses a formula.
func Compile(f Formula) *Compiled {
	c := &Compiled{}
	index := make(map[string]int)
	c.root = c.build(f, index)
	if len(c.atoms) > 0 {
		c.n = c.atoms[0].P.N
	}
	c.meta = make([]atomMeta, len(c.atoms))
	for i, a := range c.atoms {
		m := &c.meta[i]
		m.rel = a.Rel
		m.row = -1
		switch deg := a.P.Degree(); {
		case deg <= 0:
			m.kind = akConst
			m.cval, _ = a.P.IsConst()
		case deg == 1 && 2*len(a.P.Terms) >= c.n:
			// Dense-enough linear atom: flat coefficient row, sign by dot
			// product. Sparse rows (and everything nonlinear) go through
			// the term cascade instead, which skips the zero columns.
			m.kind = akLinear
			coef, c0, _ := a.P.LinearForm()
			m.cval = c0
			m.row = int32(len(c.linCoef) / max(c.n, 1))
			c.linCoef = append(c.linCoef, coef...)
		default:
			m.kind = akGeneral
			if deg > c.maxDeg {
				c.maxDeg = deg
			}
			c.packCascade(m, a.P, deg)
		}
	}
	c.termOff = append(c.termOff, int32(len(c.termCoef)))
	c.facOff = append(c.facOff, int32(len(c.facVar)))
	c.def = c.NewEvaluator()
	return c
}

// packCascade appends atom i's terms to the flat cascade arrays, grouped
// by total degree in descending order (empty degrees are skipped). Levels
// and terms are packed contiguously, so a level's term range ends where
// the next level's begins; Compile appends the final sentinel offsets.
func (c *Compiled) packCascade(m *atomMeta, p poly.Poly, deg int) {
	m.lvlStart = int32(len(c.termOff))
	for d := deg; d >= 0; d-- {
		any := false
		for _, t := range p.Terms {
			td := 0
			for _, v := range t.Vars {
				td += v.Pow
			}
			if td != d {
				continue
			}
			if !any {
				any = true
				c.termOff = append(c.termOff, int32(len(c.termCoef)))
			}
			c.termCoef = append(c.termCoef, t.Coef)
			c.facOff = append(c.facOff, int32(len(c.facVar)))
			for _, v := range t.Vars {
				c.facVar = append(c.facVar, int32(v.Var))
				c.facPow = append(c.facPow, int32(v.Pow))
			}
		}
	}
	m.lvlEnd = int32(len(c.termOff))
}

func atomKey(a Atom) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", a.Rel)
	b.WriteString(a.P.Key())
	return b.String()
}

func (c *Compiled) build(f Formula, index map[string]int) cnode {
	switch g := f.(type) {
	case FTrue:
		return cnode{kind: cTrue}
	case FFalse:
		return cnode{kind: cFalse}
	case FAtom:
		key := atomKey(g.A)
		i, ok := index[key]
		if !ok {
			i = len(c.atoms)
			c.atoms = append(c.atoms, g.A)
			index[key] = i
		}
		return cnode{kind: cAtom, atom: i}
	case FNot:
		return cnode{kind: cNot, kids: []cnode{c.build(g.F, index)}}
	case FAnd:
		kids := make([]cnode, len(g.Fs))
		for i, h := range g.Fs {
			kids[i] = c.build(h, index)
		}
		return cnode{kind: cAnd, kids: kids}
	case FOr:
		kids := make([]cnode, len(g.Fs))
		for i, h := range g.Fs {
			kids[i] = c.build(h, index)
		}
		return cnode{kind: cOr, kids: kids}
	}
	panic(fmt.Sprintf("realfmla: unknown node %T", f))
}

// NumAtoms returns the number of distinct atoms after deduplication.
func (c *Compiled) NumAtoms() int { return len(c.atoms) }

// Atoms returns the deduplicated atoms.
func (c *Compiled) Atoms() []Atom { return c.atoms }

// AsymEval reports the asymptotic truth of the formula along dir,
// evaluating each distinct atom lazily at most once. Not safe for
// concurrent use; concurrent callers should evaluate through their own
// NewEvaluator.
func (c *Compiled) AsymEval(dir []float64, tol float64) bool {
	return c.def.AsymEval(dir, tol)
}

// Eval reports the truth of the formula at the point x, evaluating each
// distinct atom lazily at most once. Not safe for concurrent use.
func (c *Compiled) Eval(x []float64) bool {
	return c.def.Eval(x)
}

// EvalWith evaluates the formula with a caller-supplied atom decision
// procedure (still cached per distinct atom): used by the mixed
// finite/asymptotic evaluation of range-constrained measures. Not safe
// for concurrent use.
func (c *Compiled) EvalWith(decide func(Atom) bool) bool {
	return c.def.EvalWith(decide)
}

// NewEvaluator returns a fresh evaluation context over the compiled
// formula. Evaluators hold all mutable per-evaluation scratch (truth
// cache, generation counters, substitution buffer), so any number of them
// can evaluate the same Compiled concurrently, each from its own
// goroutine. Evaluations themselves are allocation-free.
func (c *Compiled) NewEvaluator() *Evaluator {
	return &Evaluator{
		c:   c,
		tg:  make([]uint64, len(c.atoms)),
		uni: make(poly.Uni, c.maxDeg+1),
	}
}

// evalMode selects how an Evaluator decides atoms during one evaluation.
type evalMode uint8

const (
	modeAsym evalMode = iota
	modePoint
	modeMixed
	modeCustom
)

// Evaluator is a per-goroutine evaluation context for a Compiled formula.
// Atom truths are cached lazily per evaluation; instead of clearing an
// O(atoms) done-slice before every evaluation, an epoch counter marks
// which cached truths belong to the current evaluation: tg[i] holds
// epoch<<1 | truth, so the freshness check and the cached value are one
// load (a 63-bit epoch never wraps in practice).
type Evaluator struct {
	c   *Compiled
	tg  []uint64
	cur uint64
	uni poly.Uni // scratch for mixed-mode substitution

	// Per-evaluation parameters (set by the public entry points; kept in
	// fields so the recursive walk needs no closures and stays
	// allocation-free).
	mode   evalMode
	dir    []float64
	x      []float64
	ray    []bool
	tol    float64
	decide func(Atom) bool
}

// begin opens a new evaluation epoch, invalidating all cached atom truths.
func (ev *Evaluator) begin() { ev.cur++ }

// AsymEval reports the asymptotic truth of the formula along dir: whether
// the formula holds at k·dir for all sufficiently large k (Lemma 8.4).
func (ev *Evaluator) AsymEval(dir []float64, tol float64) bool {
	ev.begin()
	ev.mode, ev.dir, ev.tol = modeAsym, dir, tol
	return ev.node(&ev.c.root)
}

// Eval reports the truth of the formula at the point x.
func (ev *Evaluator) Eval(x []float64) bool {
	ev.begin()
	ev.mode, ev.x = modePoint, x
	return ev.node(&ev.c.root)
}

// MixedAsymEval reports whether the formula eventually holds when
// variables with ray[i] true go to infinity along vals[i] while the others
// stay fixed at vals[i] — the evaluation mode of range-constrained
// measures (Section 10 of the paper).
func (ev *Evaluator) MixedAsymEval(vals []float64, ray []bool, tol float64) bool {
	ev.begin()
	ev.mode, ev.x, ev.ray, ev.tol = modeMixed, vals, ray, tol
	return ev.node(&ev.c.root)
}

// EvalWith evaluates the formula with a caller-supplied atom decision
// procedure (still cached per distinct atom).
func (ev *Evaluator) EvalWith(decide func(Atom) bool) bool {
	ev.begin()
	ev.mode, ev.decide = modeCustom, decide
	return ev.node(&ev.c.root)
}

func (ev *Evaluator) node(n *cnode) bool {
	switch n.kind {
	case cTrue:
		return true
	case cFalse:
		return false
	case cAtom:
		return ev.atom(n.atom)
	case cNot:
		return !ev.node(&n.kids[0])
	case cAnd:
		// Atom children (the dominant shape of translated formulas) are
		// decided inline, skipping a recursion level.
		for i := range n.kids {
			k := &n.kids[i]
			if k.kind == cAtom {
				if !ev.atom(k.atom) {
					return false
				}
			} else if !ev.node(k) {
				return false
			}
		}
		return true
	case cOr:
		for i := range n.kids {
			k := &n.kids[i]
			if k.kind == cAtom {
				if ev.atom(k.atom) {
					return true
				}
			} else if ev.node(k) {
				return true
			}
		}
		return false
	}
	panic("realfmla: bad compiled node")
}

// atom returns the cached truth of atom i, computing it on first use in
// the current evaluation epoch.
func (ev *Evaluator) atom(i int) bool {
	if tg := ev.tg[i]; tg>>1 == ev.cur {
		return tg&1 == 1
	}
	c := ev.c
	var t bool
	switch ev.mode {
	case modeAsym:
		t = c.meta[i].rel.holds(ev.asymSign(&c.meta[i]))
	case modePoint:
		t = c.atoms[i].Eval(ev.x)
	case modeMixed:
		ev.uni = c.atoms[i].P.SubstituteMixedInto(ev.uni, ev.x, ev.ray)
		t = c.meta[i].rel.holds(ev.uni.AsymptoticSign(ev.tol))
	default:
		t = ev.decide(c.atoms[i])
	}
	tg := ev.cur << 1
	if t {
		tg |= 1
	}
	ev.tg[i] = tg
	return t
}

// asymSign computes the asymptotic sign of an atom's polynomial along
// ev.dir through the compiled kernel: leading homogeneous degree first,
// tolerance fallback to the lower degrees.
func (ev *Evaluator) asymSign(m *atomMeta) int {
	c := ev.c
	switch m.kind {
	case akConst:
		return signTol(m.cval, ev.tol)
	case akLinear:
		off := int(m.row) * c.n
		row := c.linCoef[off : off+c.n]
		dir := ev.dir[:len(row)]
		d := 0.0
		for j, v := range row {
			d += v * dir[j]
		}
		if s := signTol(d, ev.tol); s != 0 {
			return s
		}
		return signTol(m.cval, ev.tol)
	default:
		// Walk the precompiled homogeneous-degree cascade: the sign is
		// decided by the highest degree whose coefficient survives the
		// tolerance, so lower levels are usually never touched.
		dir := ev.dir
		for L := m.lvlStart; L < m.lvlEnd; L++ {
			s := 0.0
			for t := c.termOff[L]; t < c.termOff[L+1]; t++ {
				mul := c.termCoef[t]
				for f := c.facOff[t]; f < c.facOff[t+1]; f++ {
					v := dir[c.facVar[f]]
					mul *= v
					for p := c.facPow[f]; p > 1; p-- {
						mul *= v
					}
				}
				s += mul
			}
			if sg := signTol(s, ev.tol); sg != 0 {
				return sg
			}
		}
		return 0
	}
}

// signTol is the tolerance-guarded sign used by asymptotic evaluation:
// magnitudes at most tol count as zero (matching Uni.AsymptoticSign).
func signTol(v, tol float64) int {
	if v > tol {
		return 1
	}
	if v < -tol {
		return -1
	}
	return 0
}
