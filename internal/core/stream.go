package core

import (
	"context"
	"sync"

	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlast"
)

// SQLStreamInfo summarizes a completed MeasureSQLStream run: the shape
// metadata of SQLMeasured without the candidate slice (the candidates
// were delivered through yield).
type SQLStreamInfo struct {
	// Count is the number of candidates delivered (after LIMIT).
	Count int
	// NullIDs / Index / Derivations as in exec.Result.
	NullIDs     []int
	Index       map[int]int
	Derivations int
}

// MeasureSQLStream is the streaming form of MeasureSQL: instead of
// buffering the full result, every measured candidate is handed to yield
// as soon as it is final, in candidate order (the first-derivation order
// of the slice API). A server can therefore deliver top-k answers
// incrementally while enumeration and measurement are still running:
// candidates whose constraint saturates to true mid-join are measured and
// — once every earlier candidate has also finalized — delivered before
// the join completes.
//
// yield is called sequentially from a single internal goroutine (never
// concurrently with itself), not from the caller's goroutine, which is
// busy driving enumeration. Indices are strictly consecutive from 0; the
// sequence of (idx, candidate) pairs is exactly MeasureSQL's Candidates
// slice, bit-identical measures included — the same per-candidate engine
// seeding (itemOptions) and shared kernel cache are used, so streaming
// delivery cannot change results. If yield returns an error, delivery
// stops and MeasureSQLStream returns that error after the in-flight
// pipeline drains (measurement of remaining candidates still completes;
// it is bounded by the query's candidate set).
//
// Cancelling ctx stops the work promptly: enumeration aborts at the
// next poll (every few thousand derivations — see exec.Options.Interrupt),
// workers skip the sampling of every not-yet-measured candidate,
// delivery stops, and MeasureSQLStream returns ctx.Err(). A server hands
// the request context here so an abandoned connection frees its
// admission slot instead of computing results nobody reads.
//
// A slow yield exerts backpressure end to end: the measurement pool and
// ultimately enumeration block rather than buffering unboundedly.
func (e *Engine) MeasureSQLStream(ctx context.Context, q *sqlast.Query, d *db.Database, eps, delta float64, yield func(idx int, c MeasuredCandidate) error) (*SQLStreamInfo, error) {
	if err := checkEpsDelta(eps, delta); err != nil {
		return nil, err
	}
	p, err := plan.Build(q, d, e.planOptions())
	if err != nil {
		return nil, err
	}

	type job struct {
		idx  int
		cand exec.Candidate
	}
	type measured struct {
		idx  int
		cand exec.Candidate
		res  Result
		err  error
	}
	workers := e.opts.poolWorkers()
	jobs := make(chan job, workers)
	results := make(chan measured, workers)
	var wg sync.WaitGroup
	o := e.opts // seeds/toggles snapshot; per-candidate engines derive from it
	kernels := e.poolKernels()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := ctx.Err(); err != nil {
					results <- measured{idx: j.idx, cand: j.cand, err: err}
					continue
				}
				eng := New(itemOptions(o, j.idx))
				eng.shared = kernels
				r, err := eng.MeasureFormula(j.cand.Phi, eps, delta)
				results <- measured{idx: j.idx, cand: j.cand, res: r, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// The emitter restores candidate order: measurements finish out of
	// order (saturated candidates mid-enumeration, the rest as the pool
	// drains), so results are parked until every earlier index has been
	// delivered. Error fields are written only here and read only after
	// emitDone, so Wait orders the accesses.
	var (
		emitDone   = make(chan struct{})
		yieldErr   error
		measureErr error
	)
	go func() {
		defer close(emitDone)
		pending := make(map[int]measured)
		next := 0
		for m := range results {
			if m.err != nil {
				if measureErr == nil {
					measureErr = m.err
				}
				continue
			}
			pending[m.idx] = m
			for {
				mm, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if yieldErr == nil && measureErr == nil {
					if err := yield(next, MeasuredCandidate{Tuple: mm.cand.Tuple, Phi: mm.cand.Phi, Measure: mm.res}); err != nil {
						yieldErr = err
					}
				}
				next++
			}
		}
	}()

	info := &SQLStreamInfo{NullIDs: p.NullIDs, Index: p.Index}
	eo := e.execOptions()
	eo.Interrupt = ctx.Err // abort enumeration too, not just measurement
	res, sat, runErr := exec.Aggregate(p, d, eo, func(idx int, c exec.Candidate) {
		jobs <- job{idx: idx, cand: c}
	})
	if runErr == nil {
		info.Derivations = res.Derivations
		info.Count = len(res.Candidates)
		for i, c := range res.Candidates {
			if !sat[i] { // saturated candidates were dispatched mid-enumeration
				jobs <- job{idx: i, cand: c}
			}
		}
	}
	close(jobs)
	<-emitDone
	if runErr != nil {
		return nil, runErr
	}
	if measureErr != nil {
		return nil, measureErr
	}
	if yieldErr != nil {
		return nil, yieldErr
	}
	return info, nil
}
