package server

// Primary-side replication endpoints: checkpoint bootstrap and the
// long-poll WAL tail.
//
//	GET /v1/replication/checkpoint      NDJSON: header line (seq, file
//	                                    count), one line per checkpoint
//	                                    file (base64 + CRC), terminator
//	GET /v1/replication/log?from=<seq>  NDJSON long-poll tail of framed
//	                                    WAL records from seq on; each
//	                                    line carries the on-disk CRC32C
//	                                    and the primary's durable seq;
//	                                    heartbeats flow while idle
//
// Both endpoints bypass the measuring gate: they are I/O-bound reads of
// state the durability layer already holds, and replicas must be able to
// catch up even while the measurement pool is saturated — or the store
// degraded (a primary that can no longer write can still ship everything
// it acknowledged, so replicas converge on the durable prefix and can
// take over serving).
//
// The log tail is level-triggered: the handler reads everything
// committed past the cursor, ships it, then blocks on the store's commit
// watch (taken before the read, so a commit between read and wait wakes
// it). A replica that asks for records a checkpoint already truncated
// gets a structured 410 "log-truncated" and re-bootstraps from the
// checkpoint endpoint.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/wal"
	"repro/internal/wire"
)

// Replication is what the replication endpoints need from the durability
// layer. *wal.Store implements it; the interface keeps tests free to
// fake a primary.
type Replication interface {
	// Seq is the durable frontier: the last WAL-appended and fsync'd batch.
	Seq() uint64
	// CheckpointSeq is the sequence the newest durable checkpoint covers.
	CheckpointSeq() uint64
	// CheckpointFiles reads the newest checkpoint's covered seq and files.
	CheckpointFiles() (uint64, []wal.CheckpointFile, error)
	// ReadFrom returns committed records with sequence >= from, or
	// wal.ErrTruncated when a checkpoint folded them away.
	ReadFrom(from uint64) ([]wal.Record, error)
	// CommitWatch returns a channel closed on the next commit.
	CommitWatch() <-chan struct{}
}

// ReplicaStatus is what a replica-mode server surfaces about its own
// catchup loop (implemented by *replica.Replicator): the staleness
// numbers of /v1/info and /healthz.
type ReplicaStatus interface {
	// LastAppliedSeq is the replay frontier: batches applied and locally
	// durable.
	LastAppliedSeq() uint64
	// PrimarySeq is the primary's durable seq as last observed (0 before
	// first contact).
	PrimarySeq() uint64
	// Primary is the primary's base URL.
	Primary() string
}

// replicaLag is the observed apply backlog in batches, clamped at zero
// (the replica may briefly observe its own apply before the next
// heartbeat refreshes PrimarySeq).
func replicaLag(rs ReplicaStatus) uint64 {
	p, a := rs.PrimarySeq(), rs.LastAppliedSeq()
	if p <= a {
		return 0
	}
	return p - a
}

// handleReplCheckpoint streams the newest durable checkpoint.
func (s *Server) handleReplCheckpoint(w http.ResponseWriter, r *http.Request) {
	seq, files, err := s.cfg.Replication.CheckpointFiles()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, wire.CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	if err := enc.Encode(wire.ReplCheckpointHeader{Seq: seq, Files: len(files)}); err != nil {
		return
	}
	for _, f := range files {
		line := wire.ReplFile{Name: f.Name, Data: f.Data, CRC: wal.Checksum(seq, f.Data)}
		if err := enc.Encode(line); err != nil {
			return
		}
	}
	// The terminator proves the stream arrived whole: a replica that never
	// sees it treats the fetch as torn and retries.
	_ = enc.Encode(wire.ReplFile{Done: true})
}

// handleReplLog serves the long-poll WAL tail from ?from=<seq>.
func (s *Server) handleReplLog(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			"from must be the next sequence number to ship (a positive integer)")
		return
	}
	repl := s.cfg.Replication
	ew := &replStreamWriter{w: w, rc: http.NewResponseController(w), timeout: s.cfg.StreamWriteTimeout}
	defer ew.close()
	heartbeat := s.cfg.ReplHeartbeat
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	next := from
	for {
		// Take the watch before reading: a batch committed between the read
		// and the wait closes this channel and wakes us.
		watch := repl.CommitWatch()
		recs, err := repl.ReadFrom(next)
		if err != nil {
			if !ew.started {
				switch {
				case errors.Is(err, wal.ErrTruncated):
					// 410: the records are gone for good (folded into a
					// checkpoint); the structured code tells the replica to
					// re-bootstrap rather than re-poll.
					s.writeError(w, http.StatusGone, wire.CodeLogTruncated, fmt.Sprintf(
						"records from %d truncated into checkpoint %d: bootstrap from /v1/replication/checkpoint",
						next, repl.CheckpointSeq()))
				default:
					s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
				}
				return
			}
			// Mid-stream (a checkpoint raced past the cursor, or the store
			// closed): cut the stream; the replica reconnects and gets the
			// structured answer above.
			return
		}
		primarySeq := repl.Seq()
		for _, rec := range recs {
			line := wire.ReplRecord{
				Seq:        rec.Seq,
				Payload:    rec.Payload,
				CRC:        wal.Checksum(rec.Seq, rec.Payload),
				PrimarySeq: primarySeq,
			}
			if err := ew.write(line); err != nil {
				return
			}
			next = rec.Seq + 1
		}
		if len(recs) > 0 {
			continue // drain everything committed before blocking
		}
		// Caught up: announce the frontier, then block for the next commit,
		// a heartbeat tick, shutdown, or the client going away.
		if err := ew.write(wire.ReplRecord{Heartbeat: true, PrimarySeq: primarySeq}); err != nil {
			return
		}
		select {
		case <-watch:
		case <-ticker.C:
		case <-s.stopCh:
			return // draining: the replica reconnects to the restarted primary
		case <-r.Context().Done():
			return
		}
	}
}

// replStreamWriter frames replication NDJSON lines with the same
// stall-cutoff discipline as the measure stream: every write renews a
// deadline so a hung replica cannot pin the handler (and with it,
// graceful shutdown) forever.
type replStreamWriter struct {
	w       http.ResponseWriter
	rc      *http.ResponseController
	timeout time.Duration
	started bool
}

func (ew *replStreamWriter) write(v any) error {
	if ew.timeout > 0 {
		_ = ew.rc.SetWriteDeadline(time.Now().Add(ew.timeout))
	}
	if !ew.started {
		ew.w.Header().Set("Content-Type", "application/x-ndjson")
		ew.w.WriteHeader(http.StatusOK)
		ew.started = true
	}
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := ew.w.Write(append(blob, '\n')); err != nil {
		return err
	}
	return ew.rc.Flush()
}

func (ew *replStreamWriter) close() {
	if ew.started && ew.timeout > 0 {
		_ = ew.rc.SetWriteDeadline(time.Time{})
	}
}
