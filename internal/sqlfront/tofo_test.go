package sqlfront

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/fo"
	"repro/internal/realfmla"
	"repro/internal/translate"
	"repro/internal/value"
)

func TestToFOCompilesAndTypechecks(t *testing.T) {
	s := salesSchema()
	srcs := []string{
		`SELECT P.seg FROM Products P, Market M WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis`,
		`SELECT P.id FROM Products P WHERE P.rrp / 2 > 10 AND P.seg = 'seg1'`,
		`SELECT P.id, P.rrp FROM Products P WHERE P.rrp - P.dis <> 0`,
	}
	for _, src := range srcs {
		q := MustParse(src)
		foq, err := ToFO(q, s)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if err := fo.Typecheck(foq, s); err != nil {
			t.Fatalf("%s: compiled query ill-typed: %v\n%s", src, err, foq)
		}
	}
	// Selecting the same column twice is rejected (would duplicate the
	// free variable).
	if _, err := ToFO(MustParse(`SELECT P.id, P.id FROM Products P`), s); err == nil {
		t.Error("duplicate selection accepted")
	}
}

// TestToFORandomCrossValidation is the strongest end-to-end check in the
// suite: random small databases, random conjunctive SQL queries; for every
// candidate tuple the conditional-evaluation constraint and the Prop 5.3
// translation of the compiled FO query must agree on random valuations of
// the nulls — two completely independent pipelines from SQL text to real
// formula.
func TestToFORandomCrossValidation(t *testing.T) {
	s := salesSchema()
	rng := rand.New(rand.NewSource(2024))
	ops := []string{"<", "<=", ">", ">=", "=", "<>"}

	for trial := 0; trial < 12; trial++ {
		// Random database: small (the FO translation expands quantifiers
		// over the active domain, so size is exponential in arity) and
		// null-heavy, with few distinct constants to keep the domain tight.
		d := db.New(s)
		nextNull := 0
		randNum := func() value.Value {
			if rng.Intn(3) == 0 {
				v := value.NullNum(nextNull)
				nextNull++
				return v
			}
			return value.Num(float64(rng.Intn(4) - 2))
		}
		segs := []string{"s1", "s2"}
		for i := 0; i < 3; i++ {
			d.MustInsert("Products",
				value.Base(fmt.Sprintf("p%d", i)),
				value.Base(segs[rng.Intn(2)]),
				randNum(), randNum())
		}
		for i := 0; i < 2; i++ {
			d.MustInsert("Market", value.Base(segs[rng.Intn(2)]), randNum(), randNum())
		}

		// Random conjunctive condition over the joined tables.
		numCols := []string{"P.rrp", "P.dis", "M.rrp", "M.dis"}
		conds := []string{"P.seg = M.seg"}
		for i := 0; i < 1+rng.Intn(2); i++ {
			l := numCols[rng.Intn(len(numCols))]
			r := numCols[rng.Intn(len(numCols))]
			op := ops[rng.Intn(len(ops))]
			switch rng.Intn(3) {
			case 0:
				conds = append(conds, fmt.Sprintf("%s %s %d", l, op, rng.Intn(5)))
			case 1:
				conds = append(conds, fmt.Sprintf("%s %s %s", l, op, r))
			default:
				conds = append(conds, fmt.Sprintf("%s * %s %s %d", l, r, op, rng.Intn(9)-4))
			}
		}
		src := "SELECT P.id FROM Products P, Market M WHERE " + conds[0]
		for _, c := range conds[1:] {
			src += " AND " + c
		}
		sqlQ, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, src, err)
		}
		res, err := Evaluate(sqlQ, d)
		if err != nil {
			t.Fatalf("trial %d: evaluate: %v", trial, err)
		}
		foQ, err := ToFO(sqlQ, s)
		if err != nil {
			t.Fatalf("trial %d: ToFO: %v", trial, err)
		}
		for _, cand := range res.Candidates {
			tr, err := translate.Query(foQ, d, []value.Value{cand.Tuple[0]})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				z := make([]float64, len(res.NullIDs))
				for j := range z {
					z[j] = float64(rng.Intn(11) - 5)
				}
				a := realfmla.Eval(cand.Phi, z)
				b := realfmla.Eval(tr.Phi, z)
				if a != b {
					t.Fatalf("trial %d, query %s, tuple %v, z=%v:\n conditional=%v translation=%v\n φ_sql=%s\n φ_fo=%s",
						trial, src, cand.Tuple, z, a, b, cand.Phi, tr.Phi)
				}
			}
		}
	}
}
