#!/usr/bin/env bash
# Sampling-budget guard for the adaptive top-k race: runs
# BenchmarkAdaptiveTopK and fails when any benchmark listed in
# scripts/sample_budget.txt exceeds its checked-in samples/op budget, or
# when the skewed workload stops saving at least 3x over the fixed
# per-candidate budget (the acceptance bar of the adaptive-sampling PR).
# The race is deterministic for a fixed seed, so samples/op is exact —
# any change here is a real behavior change in the racing confidence
# bounds, not noise.
#
# Usage: scripts/sample_check.sh [benchtime]   (default 2x)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-2x}"
budget_file="scripts/sample_budget.txt"

raw="$(go test -run '^$' -bench 'BenchmarkAdaptiveTopK' -benchtime "$benchtime" .)"
printf '%s\n' "$raw"

# metric NAME: the samples/op value of one benchmark from the raw output.
metric() {
    printf '%s\n' "$raw" | awk -v n="$1" '
        $1 ~ "^"n"(-[0-9]+)?$" {
            for (i = 4; i <= NF; i++) if ($i == "samples/op") print $(i-1)
        }'
}

fail=0
while read -r name budget; do
    case "$name" in ''|\#*) continue ;; esac
    got="$(metric "$name")"
    if [ -z "$got" ]; then
        echo "sample-check: $name not found in benchmark output" >&2
        fail=1
        continue
    fi
    if awk -v g="$got" -v b="$budget" 'BEGIN { exit !(g > b) }'; then
        echo "sample-check: $name drew $got samples/op, budget $budget" >&2
        fail=1
    else
        echo "sample-check: $name $got samples/op within budget $budget"
    fi
done < "$budget_file"

# The headline claim: on the skewed field the race must spend at most a
# third of the fixed budget.
adaptive="$(metric 'BenchmarkAdaptiveTopK/skewed/adaptive')"
fixed="$(metric 'BenchmarkAdaptiveTopK/skewed/fixed')"
if [ -z "$adaptive" ] || [ -z "$fixed" ]; then
    echo "sample-check: skewed adaptive/fixed pair not found in benchmark output" >&2
    fail=1
elif awk -v a="$adaptive" -v f="$fixed" 'BEGIN { exit !(3 * a > f) }'; then
    echo "sample-check: skewed savings below 3x (adaptive $adaptive vs fixed $fixed samples/op)" >&2
    fail=1
else
    echo "sample-check: skewed savings $(awk -v a="$adaptive" -v f="$fixed" 'BEGIN { printf "%.1f", f / a }')x (adaptive $adaptive vs fixed $fixed samples/op)"
fi

exit "$fail"
