// Decisionsupport runs the paper's Section 9 pipeline end to end on a
// synthetic sales database: generate data with nulls, evaluate the three
// decision-support SQL queries under conditional semantics, and attach a
// confidence level (the measure of certainty) to every candidate answer
// tuple — the additional information an analyst gets over plain naive
// evaluation.
package main

import (
	"fmt"
	"log"

	arithdb "repro"
)

func main() {
	d, err := arithdb.GenerateSales(arithdb.SalesConfig{
		Seed:     2020,
		Products: 2000,
		Orders:   1500,
		Market:   400,
		Segments: 200, // two competing offers per segment
		NullRate: 0.08,
		// Market is web-extracted in the paper's story: much more
		// incomplete, which is what makes confidence levels interesting.
		MarketNullRate: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated sales database: %d tuples\n\n", d.Size())

	engine := arithdb.NewEngine(arithdb.EngineOptions{Seed: 9})
	queries := []struct {
		name string
		sql  string
	}{
		{"Competitive Advantage", arithdb.QueryCompetitiveAdvantage},
		{"Never Knowingly Undersold", arithdb.QueryNeverKnowinglyUndersold},
		{"Unfair Discount", arithdb.QueryUnfairDiscount},
	}
	const (
		eps   = 0.01
		delta = 0.05
	)
	for _, qc := range queries {
		q, err := arithdb.ParseSQL(qc.sql)
		if err != nil {
			log.Fatal(err)
		}
		res, err := arithdb.EvaluateSQL(q, d)
		if err != nil {
			log.Fatal(err)
		}
		// The SQL-three-valued-logic baseline silently drops answers that
		// depend on missing values; count what the measure recovers.
		sqlRes, err := arithdb.EvaluateSQL3VL(q, d)
		if err != nil {
			log.Fatal(err)
		}
		recovered := arithdb.MissingFromSQL(res, sqlRes)

		fmt.Printf("== %s ==\n%s\n", qc.name, q)
		fmt.Printf("%d candidate tuples (%d derivations); plain SQL would return %d, losing %d\n",
			len(res.Candidates), res.Derivations, len(sqlRes.Candidates), len(recovered))

		// Confidence levels for all candidates, computed concurrently.
		phis := make([]arithdb.Constraint, len(res.Candidates))
		for i, c := range res.Candidates {
			phis[i] = c.Phi
		}
		measures, errs := arithdb.MeasureBatch(arithdb.EngineOptions{Seed: 9}, phis, eps, delta)
		for i, c := range res.Candidates {
			if errs[i] != nil {
				log.Fatal(errs[i])
			}
			m := measures[i]
			tag := ""
			switch {
			case m.Exact && m.Value == 1:
				tag = " (certain under naive evaluation)"
			case m.Exact:
				tag = fmt.Sprintf(" (exact, %s)", m.Method)
			default:
				tag = fmt.Sprintf(" (±%g with prob %g)", eps, 1-delta)
			}
			fmt.Printf("  %-14s confidence %.3f%s\n", c.Tuple, m.Value, tag)
		}
		fmt.Println()
	}
	_ = engine
}
