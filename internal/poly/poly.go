// Package poly implements the small polynomial algebra the paper's
// algorithms need: sparse multivariate polynomials over the reals (the
// left-hand sides of arithmetic atoms after the translation of Prop 5.3),
// and dense univariate polynomials in the ray parameter k (used to decide
// the asymptotic truth of atoms along a direction, Lemma 8.4).
//
// Monomials store only the variables they mention (sparse exponents), so
// the ambient dimension N — the number of numerical nulls of the whole
// database, possibly thousands — costs nothing per term.
package poly

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// VarPow is one variable of a monomial with its positive exponent.
type VarPow struct {
	Var int
	Pow int
}

// Term is one monomial of a multivariate polynomial: a coefficient times a
// product of variables raised to positive exponents. Vars is sorted by
// variable index and mentions only variables with nonzero exponent.
type Term struct {
	Coef float64
	Vars []VarPow
}

// totalDegree is the sum of the exponents.
func (t Term) totalDegree() int {
	d := 0
	for _, v := range t.Vars {
		d += v.Pow
	}
	return d
}

// Poly is a sparse multivariate polynomial in N variables z_0..z_{N-1}.
// Terms are kept normalized: sorted by exponent key, distinct monomials,
// no zero coefficients. The zero polynomial has no terms.
type Poly struct {
	N     int
	Terms []Term
}

// Zero returns the zero polynomial in n variables.
func Zero(n int) Poly { return Poly{N: n} }

// Const returns the constant polynomial c in n variables.
func Const(n int, c float64) Poly {
	if c == 0 {
		return Zero(n)
	}
	return Poly{N: n, Terms: []Term{{Coef: c}}}
}

// Var returns the polynomial z_i in n variables.
func Var(n, i int) Poly {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("poly: variable %d out of range [0,%d)", i, n))
	}
	return Poly{N: n, Terms: []Term{{Coef: 1, Vars: []VarPow{{Var: i, Pow: 1}}}}}
}

// varsLess orders monomials lexicographically by (Var, Pow) sequences.
func varsLess(a, b []VarPow) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].Var != b[i].Var {
			return a[i].Var < b[i].Var
		}
		if a[i].Pow != b[i].Pow {
			return a[i].Pow < b[i].Pow
		}
	}
	return len(a) < len(b)
}

func varsEqual(a, b []VarPow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mulVars merges two sorted exponent lists, summing powers.
func mulVars(a, b []VarPow) []VarPow {
	out := make([]VarPow, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Var < b[j].Var:
			out = append(out, a[i])
			i++
		case a[i].Var > b[j].Var:
			out = append(out, b[j])
			j++
		default:
			out = append(out, VarPow{Var: a[i].Var, Pow: a[i].Pow + b[j].Pow})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// sortTerms orders ts by monomial with an in-place insertion sort: the
// term lists of this package are short (a handful of monomials), and
// unlike sort.Slice this allocates nothing — it runs in the executor's
// per-derivation hot path — and is stable, so the merge order of equal
// monomials is a deterministic function of the construction order.
func sortTerms(ts []Term) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && varsLess(ts[j].Vars, ts[j-1].Vars); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// normalizeTerms sorts ts, merges equal monomials and drops zero
// coefficients in place, returning the normalized prefix of ts. It is the
// single normalization algorithm shared by the allocating operations below
// and by the Scratch arena (scratch.go), which is what keeps their results
// bit-identical.
func normalizeTerms(ts []Term) []Term {
	sortTerms(ts)
	out := ts[:0]
	for _, t := range ts {
		if len(out) > 0 && varsEqual(out[len(out)-1].Vars, t.Vars) {
			out[len(out)-1].Coef += t.Coef
			continue
		}
		out = append(out, t)
	}
	kept := out[:0]
	for _, t := range out {
		if t.Coef != 0 {
			kept = append(kept, t)
		}
	}
	return kept
}

// normalize sorts terms, merges equal monomials, and drops zero
// coefficients. It takes ownership of ts.
func normalize(n int, ts []Term) Poly {
	kept := normalizeTerms(ts)
	return Poly{N: n, Terms: append([]Term(nil), kept...)}
}

func (p Poly) checkArity(q Poly) {
	if p.N != q.N {
		panic(fmt.Sprintf("poly: arity mismatch %d vs %d", p.N, q.N))
	}
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	p.checkArity(q)
	ts := make([]Term, 0, len(p.Terms)+len(q.Terms))
	ts = append(ts, p.Terms...)
	ts = append(ts, q.Terms...)
	return normalize(p.N, ts)
}

// Neg returns -p.
func (p Poly) Neg() Poly { return p.Scale(-1) }

// Sub returns p - q.
func (p Poly) Sub(q Poly) Poly { return p.Add(q.Neg()) }

// Scale returns c·p.
func (p Poly) Scale(c float64) Poly {
	if c == 0 {
		return Zero(p.N)
	}
	ts := make([]Term, len(p.Terms))
	for i, t := range p.Terms {
		ts[i] = Term{Coef: c * t.Coef, Vars: t.Vars}
	}
	return Poly{N: p.N, Terms: ts}
}

// Mul returns p · q.
func (p Poly) Mul(q Poly) Poly {
	p.checkArity(q)
	ts := make([]Term, 0, len(p.Terms)*len(q.Terms))
	for _, a := range p.Terms {
		for _, b := range q.Terms {
			ts = append(ts, Term{Coef: a.Coef * b.Coef, Vars: mulVars(a.Vars, b.Vars)})
		}
	}
	return normalize(p.N, ts)
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.Terms) == 0 }

// IsConst reports whether p is a constant polynomial and returns its value.
func (p Poly) IsConst() (float64, bool) {
	if p.IsZero() {
		return 0, true
	}
	if len(p.Terms) == 1 && len(p.Terms[0].Vars) == 0 {
		return p.Terms[0].Coef, true
	}
	return 0, false
}

// Degree returns the total degree of p, with Degree(0) = -1.
func (p Poly) Degree() int {
	d := -1
	for _, t := range p.Terms {
		if td := t.totalDegree(); td > d {
			d = td
		}
	}
	return d
}

// Eval evaluates p at the point x (len(x) must equal p.N).
func (p Poly) Eval(x []float64) float64 {
	if len(x) != p.N {
		panic(fmt.Sprintf("poly: Eval with %d values on %d variables", len(x), p.N))
	}
	s := 0.0
	for _, t := range p.Terms {
		m := t.Coef
		for _, v := range t.Vars {
			for j := 0; j < v.Pow; j++ {
				m *= x[v.Var]
			}
		}
		s += m
	}
	return s
}

// IsLinear reports whether every term of p has total degree at most 1.
func (p Poly) IsLinear() bool {
	for _, t := range p.Terms {
		if t.totalDegree() > 1 {
			return false
		}
	}
	return true
}

// LinearForm decomposes a linear polynomial as c·z + c0, returning the
// coefficient vector c (length p.N) and the constant c0. It returns
// ok=false if p is not linear.
func (p Poly) LinearForm() (c []float64, c0 float64, ok bool) {
	if !p.IsLinear() {
		return nil, 0, false
	}
	c = make([]float64, p.N)
	for _, t := range p.Terms {
		if len(t.Vars) == 0 {
			c0 = t.Coef
			continue
		}
		c[t.Vars[0].Var] = t.Coef
	}
	return c, c0, true
}

// SubstituteRay substitutes z_i := k·a_i and returns the resulting dense
// univariate polynomial in k. Each monomial c·∏ z_i^{e_i} contributes
// c·∏ a_i^{e_i} to the coefficient of k^{total degree}. This is the
// computation behind Lemma 8.4 of the paper.
func (p Poly) SubstituteRay(a []float64) Uni {
	return p.SubstituteRayInto(nil, a)
}

// SubstituteRayInto is SubstituteRay writing into dst, growing it only when
// its capacity is insufficient. It returns the (trimmed) result, which
// aliases dst's backing array whenever possible: callers that keep the
// returned slice as their next dst evaluate rays allocation-free. This is
// the inner loop of the AFPRAS sampling kernel.
func (p Poly) SubstituteRayInto(dst Uni, a []float64) Uni {
	if len(a) != p.N {
		panic(fmt.Sprintf("poly: SubstituteRayInto with %d values on %d variables", len(a), p.N))
	}
	deg := p.Degree()
	if deg < 0 {
		return dst[:0]
	}
	if cap(dst) < deg+1 {
		dst = make(Uni, deg+1)
	} else {
		dst = dst[:deg+1]
		for i := range dst {
			dst[i] = 0
		}
	}
	for _, t := range p.Terms {
		m := t.Coef
		d := 0
		for _, v := range t.Vars {
			for j := 0; j < v.Pow; j++ {
				m *= a[v.Var]
			}
			d += v.Pow
		}
		dst[d] += m
	}
	return dst.trim()
}

// SubstituteMixed substitutes z_i := vals[i] for variables with ray[i] ==
// false and z_i := k·vals[i] for variables with ray[i] == true, returning
// the resulting univariate polynomial in k. This generalizes SubstituteRay
// to the range-constrained measures of the paper's Section 10: nulls with
// bounded ranges take finite values while unconstrained nulls still go to
// infinity along a direction.
func (p Poly) SubstituteMixed(vals []float64, ray []bool) Uni {
	return p.SubstituteMixedInto(nil, vals, ray)
}

// SubstituteMixedInto is SubstituteMixed writing into dst, growing it only
// when its capacity is insufficient (see SubstituteRayInto for the reuse
// contract).
func (p Poly) SubstituteMixedInto(dst Uni, vals []float64, ray []bool) Uni {
	if len(vals) != p.N || len(ray) != p.N {
		panic(fmt.Sprintf("poly: SubstituteMixedInto with %d/%d values on %d variables",
			len(vals), len(ray), p.N))
	}
	deg := p.Degree()
	if deg < 0 {
		return dst[:0]
	}
	if cap(dst) < deg+1 {
		dst = make(Uni, deg+1)
	} else {
		dst = dst[:deg+1]
		for i := range dst {
			dst[i] = 0
		}
	}
	for _, t := range p.Terms {
		m := t.Coef
		kdeg := 0
		for _, v := range t.Vars {
			for j := 0; j < v.Pow; j++ {
				m *= vals[v.Var]
			}
			if ray[v.Var] {
				kdeg += v.Pow
			}
		}
		dst[kdeg] += m
	}
	return dst.trim()
}

// Homogenize drops all terms of total degree strictly below the top degree
// of p. For a linear polynomial c·z + c0 this yields c·z, the homogenized
// atom of Section 7.
func (p Poly) Homogenize() Poly {
	d := p.Degree()
	if d <= 0 {
		return p
	}
	ts := make([]Term, 0, len(p.Terms))
	for _, t := range p.Terms {
		if t.totalDegree() == d {
			ts = append(ts, t)
		}
	}
	return Poly{N: p.N, Terms: ts}
}

// DropConstant removes only the degree-0 term of p. For linear atoms this is
// the homogenization used by the FPRAS of Section 7 (c·z < c' becomes
// c·z < 0).
func (p Poly) DropConstant() Poly {
	ts := make([]Term, 0, len(p.Terms))
	for _, t := range p.Terms {
		if t.totalDegree() > 0 {
			ts = append(ts, t)
		}
	}
	return Poly{N: p.N, Terms: ts}
}

// VarsUsed reports which variables occur with nonzero exponent in p.
func (p Poly) VarsUsed() []bool {
	used := make([]bool, p.N)
	for _, t := range p.Terms {
		for _, v := range t.Vars {
			used[v.Var] = true
		}
	}
	return used
}

// RenameVars re-embeds p into a ring with newN variables, sending variable
// i to mapping[i]. A mapping entry of -1 asserts the variable is unused in
// p; the method panics otherwise.
func (p Poly) RenameVars(mapping []int, newN int) Poly {
	ts := make([]Term, len(p.Terms))
	for ti, t := range p.Terms {
		vs := make([]VarPow, len(t.Vars))
		for i, v := range t.Vars {
			if mapping[v.Var] < 0 {
				panic(fmt.Sprintf("poly: RenameVars drops used variable z%d", v.Var))
			}
			vs[i] = VarPow{Var: mapping[v.Var], Pow: v.Pow}
		}
		sort.Slice(vs, func(a, b int) bool { return vs[a].Var < vs[b].Var })
		ts[ti] = Term{Coef: t.Coef, Vars: vs}
	}
	return normalize(newN, ts)
}

// Equal reports syntactic equality of normalized polynomials.
// Coefficients compare at the bit level (Float64bits): Equal guards the
// compiled-kernel cache's fingerprint-collision check, so it must only
// unify polynomials whose evaluation is bit-identical — value equality
// would merge -0/+0 coefficients whose kernels can round differently.
func (p Poly) Equal(q Poly) bool {
	if p.N != q.N || len(p.Terms) != len(q.Terms) {
		return false
	}
	for i := range p.Terms {
		if math.Float64bits(p.Terms[i].Coef) != math.Float64bits(q.Terms[i].Coef) || !varsEqual(p.Terms[i].Vars, q.Terms[i].Vars) {
			return false
		}
	}
	return true
}

// Key returns a canonical string identifying the polynomial, usable for
// deduplication.
func (p Poly) Key() string {
	var b strings.Builder
	for _, t := range p.Terms {
		fmt.Fprintf(&b, "%x", math.Float64bits(t.Coef))
		for _, v := range t.Vars {
			fmt.Fprintf(&b, ",%d^%d", v.Var, v.Pow)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// String renders the polynomial with variables named z0..z{N-1}.
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var b strings.Builder
	for i, t := range p.Terms {
		if i > 0 {
			b.WriteString(" + ")
		}
		wrote := false
		if t.Coef != 1 || len(t.Vars) == 0 {
			fmt.Fprintf(&b, "%g", t.Coef)
			wrote = true
		}
		for _, v := range t.Vars {
			if wrote {
				b.WriteString("·")
			}
			fmt.Fprintf(&b, "z%d", v.Var)
			if v.Pow > 1 {
				fmt.Fprintf(&b, "^%d", v.Pow)
			}
			wrote = true
		}
	}
	return b.String()
}

// Uni is a dense univariate polynomial in the ray parameter k:
// Uni{c0, c1, c2} is c0 + c1·k + c2·k². The empty slice is the zero
// polynomial. Coefficients at the high end are kept trimmed of exact zeros.
type Uni []float64

func (u Uni) trim() Uni {
	n := len(u)
	for n > 0 && u[n-1] == 0 {
		n--
	}
	return u[:n]
}

// Add returns u + v.
func (u Uni) Add(v Uni) Uni {
	if len(v) > len(u) {
		u, v = v, u
	}
	out := make(Uni, len(u))
	copy(out, u)
	for i, c := range v {
		out[i] += c
	}
	return out.trim()
}

// Mul returns u · v.
func (u Uni) Mul(v Uni) Uni {
	if len(u) == 0 || len(v) == 0 {
		return Uni{}
	}
	out := make(Uni, len(u)+len(v)-1)
	for i, a := range u {
		if a == 0 {
			continue
		}
		for j, b := range v {
			out[i+j] += a * b
		}
	}
	return out.trim()
}

// Neg returns -u.
func (u Uni) Neg() Uni {
	out := make(Uni, len(u))
	for i, c := range u {
		out[i] = -c
	}
	return out
}

// Sub returns u - v.
func (u Uni) Sub(v Uni) Uni { return u.Add(v.Neg()) }

// Eval evaluates u at k by Horner's rule.
func (u Uni) Eval(k float64) float64 {
	s := 0.0
	for i := len(u) - 1; i >= 0; i-- {
		s = s*k + u[i]
	}
	return s
}

// AsymptoticSign returns the sign of u(k) for all sufficiently large k > 0:
// the sign of the leading coefficient, treating coefficients with absolute
// value below tol as zero (guarding against floating-point noise from the
// substitution). The zero polynomial has sign 0.
func (u Uni) AsymptoticSign(tol float64) int {
	for i := len(u) - 1; i >= 0; i-- {
		c := u[i]
		if math.Abs(c) <= tol {
			continue
		}
		if c > 0 {
			return 1
		}
		return -1
	}
	return 0
}

// Degree returns the degree of u, with Degree(0) = -1.
func (u Uni) Degree() int { return len(u.trim()) - 1 }
