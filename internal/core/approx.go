package core

import (
	"repro/internal/db"
	"repro/internal/fo"
	"repro/internal/mc"
	"repro/internal/poly"
	"repro/internal/realfmla"
	"repro/internal/value"
)

// sampleCount picks the number of Monte-Carlo samples for additive error
// eps at confidence 1-delta. With Options.PaperSampleCount it reproduces
// the paper's m = ⌈ε⁻²⌉ (analyzed at confidence 3/4); otherwise it uses
// the Hoeffding bound for the requested confidence.
func (e *Engine) sampleCount(eps, delta float64) (int, error) {
	if err := checkEpsDelta(eps, delta); err != nil {
		return 0, err
	}
	if e.opts.PaperSampleCount {
		return mc.PaperSamples(eps)
	}
	return mc.HoeffdingSamples(eps, delta)
}

// AdditiveApprox is the AFPRAS of Section 8 applied to a translated
// formula: sample directions a uniformly at random and average the
// indicator of lim_k f_{φ,a}(k). Only the variables that actually occur in
// φ are sampled (the paper's Section 9 optimization); since asymptotic
// truth is invariant under positive scaling of the direction, unnormalized
// Gaussian vectors sample the directional measure exactly.
func (e *Engine) AdditiveApprox(phi realfmla.Formula, eps, delta float64) (Result, error) {
	m, err := e.sampleCount(eps, delta)
	if err != nil {
		return Result{}, err
	}
	reduced, vars := realfmla.Reduce(phi)
	n := len(vars)
	if n == 0 {
		if !e.opts.ForceSampling {
			return trivialResult(realfmla.Eval(reduced, nil), realfmla.NumVars(phi)), nil
		}
		// Faithful to the reference implementation: evaluate the (constant)
		// formula once per sample anyway.
		compiled := realfmla.Compile(reduced)
		hits := 0
		for i := 0; i < m; i++ {
			if compiled.Eval(nil) {
				hits++
			}
		}
		return Result{
			Value:   float64(hits) / float64(m),
			Method:  MethodAFPRAS,
			Samples: m,
			K:       realfmla.NumVars(phi),
		}, nil
	}
	compiled := realfmla.Compile(reduced)
	hits := 0
	dir := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := range dir {
			dir[j] = e.rng.NormFloat64()
		}
		if compiled.AsymEval(dir, e.opts.Tol) {
			hits++
		}
	}
	return Result{
		Value:     float64(hits) / float64(m),
		Method:    MethodAFPRAS,
		Samples:   m,
		K:         realfmla.NumVars(phi),
		RelevantK: n,
	}, nil
}

// AdditiveApproxDirect is the same additive-error scheme evaluated without
// materializing φ: each sampled direction interprets the numerical nulls
// as asymptotic reals k·a_i and the query is evaluated under that numeric
// domain (package fo), which decides lim_k f_{φ,a}(k) directly. This keeps
// the per-sample cost at plain query-evaluation cost and avoids the
// active-domain expansion of the translation, at the price of not being
// able to reduce to the relevant nulls up front.
func (e *Engine) AdditiveApproxDirect(q *fo.Query, d *db.Database, args []value.Value, eps, delta float64) (Result, error) {
	if err := fo.Typecheck(q, d.Schema()); err != nil {
		return Result{}, err
	}
	m, err := e.sampleCount(eps, delta)
	if err != nil {
		return Result{}, err
	}
	tmpl, err := fo.NewDirTemplate(d, e.opts.Tol)
	if err != nil {
		return Result{}, err
	}
	ids := tmpl.NullIDs()
	if len(ids) == 0 {
		// No numerical nulls: μ ∈ {0,1}, decided by one evaluation.
		if err := tmpl.SetDirection(fo.Direction{}); err != nil {
			return Result{}, err
		}
		cargs, err := argCells(args, fo.Direction{})
		if err != nil {
			return Result{}, err
		}
		truth, err := fo.Eval(q, tmpl.Instance(), cargs)
		if err != nil {
			return Result{}, err
		}
		return trivialResult(truth, 0), nil
	}

	dir := make(fo.Direction, len(ids))
	hits := 0
	for i := 0; i < m; i++ {
		for _, id := range ids {
			dir[id] = e.rng.NormFloat64()
		}
		if err := tmpl.SetDirection(dir); err != nil {
			return Result{}, err
		}
		cargs, err := argCells(args, dir)
		if err != nil {
			return Result{}, err
		}
		ok, err := fo.Eval(q, tmpl.Instance(), cargs)
		if err != nil {
			return Result{}, err
		}
		if ok {
			hits++
		}
	}
	return Result{
		Value:     float64(hits) / float64(m),
		Method:    MethodAFPRASDirect,
		Samples:   m,
		K:         len(ids),
		RelevantK: len(ids),
	}, nil
}

// argCells converts answer-tuple values into asymptotic cells under the
// sampled direction.
func argCells(args []value.Value, dir fo.Direction) ([]fo.Cell[poly.Uni], error) {
	out := make([]fo.Cell[poly.Uni], len(args))
	for i, a := range args {
		c, err := fo.CellForAnswerValue(a, dir)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}
