package db

import (
	"fmt"
	"sync"
)

// dict is the per-database string dictionary: every base constant occurring
// anywhere in the database is interned once and referred to by a dense
// int32 id. The dictionary is append-only (the data model has no deletes),
// which makes it double as the Cbase(D) inventory and keeps codes stable
// for the lifetime of the database. Interning happens only on Insert.
//
// The string→id map is a sync.Map shared by the writer and every
// snapshot: it is append-only and read-mostly, exactly sync.Map's sweet
// spot, so snapshot readers probe it lock-free while the writer keeps
// interning — no copy-on-write clone of a potentially huge map per
// snapshot cycle. A view's identity is its strs length: ids interned
// after a view froze are ≥ its length and filtered out on lookup, so a
// snapshot's dictionary is exactly the prefix it was taken at.
type dict struct {
	codes *sync.Map // string → int32, append-only
	strs  []string  // id → string; cut per view
}

// intern returns the id of s, assigning the next free id on first sight.
// Only the live writer interns; snapshots never reach here.
func (d *dict) intern(s string) int32 {
	if d.codes == nil {
		d.codes = &sync.Map{}
	}
	if v, ok := d.codes.Load(s); ok {
		return v.(int32)
	}
	if len(d.strs) >= maxID {
		panic(fmt.Sprintf("db: dictionary overflow at %d distinct base constants", len(d.strs)))
	}
	id := int32(len(d.strs))
	d.strs = append(d.strs, s)
	d.codes.Store(s, id)
	return id
}

// code returns the id of s without interning, ok=false when s was never
// inserted — or was interned only after this view froze.
func (d *dict) code(s string) (int32, bool) {
	if d.codes == nil {
		return 0, false
	}
	v, ok := d.codes.Load(s)
	if !ok {
		return 0, false
	}
	id := v.(int32)
	if int(id) >= len(d.strs) {
		return 0, false
	}
	return id, true
}

// str returns the string interned under id.
func (d *dict) str(id int32) string { return d.strs[id] }

// share returns the snapshot view of the dictionary: the same shared
// code map and the string slice cut (and capacity-capped) at its current
// length.
func (d *dict) share() dict {
	return dict{codes: d.codes, strs: d.strs[:len(d.strs):len(d.strs)]}
}

// clone returns an independent copy.
func (d *dict) clone() dict {
	c := dict{strs: append([]string(nil), d.strs...)}
	if len(c.strs) > 0 {
		c.codes = &sync.Map{}
		for i, s := range c.strs {
			c.codes.Store(s, int32(i))
		}
	}
	return c
}
