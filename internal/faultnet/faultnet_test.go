package faultnet

// Injector tests: seeded determinism of the fault plans, client-side
// drops and mid-body cuts through Transport, and server-side cuts
// through Listen that tear a response at an exact byte offset.

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestPlansAreSeedDeterministic(t *testing.T) {
	mk := func() *Faults {
		f := New(42)
		f.SetLatency(time.Millisecond, 3*time.Millisecond)
		f.SetDropProb(0.3)
		f.SetCut(0.4, 10, 1000)
		return f
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		pa, pb := a.sample(), b.sample()
		if pa != pb {
			t.Fatalf("sample %d diverged: %+v vs %+v", i, pa, pb)
		}
	}
	ac, ad, acut := a.Stats()
	bc, bd, bcut := b.Stats()
	if ac != bc || ad != bd || acut != bcut {
		t.Fatalf("stats diverged: %d/%d/%d vs %d/%d/%d", ac, ad, acut, bc, bd, bcut)
	}
	if ad == 0 || acut == 0 {
		t.Fatalf("200 samples at p=0.3/0.4 produced %d drops, %d cuts — injector inert", ad, acut)
	}
}

func TestDisabledInjectsNothing(t *testing.T) {
	f := New(1)
	f.SetDropProb(1)
	f.SetCut(1, 0, 0)
	f.SetDisabled(true)
	for i := 0; i < 50; i++ {
		if p := f.sample(); p.drop || p.cutAt >= 0 || p.latency != 0 {
			t.Fatalf("disabled sampler produced %+v", p)
		}
	}
}

func TestTransportDrop(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer hs.Close()
	f := New(1)
	f.SetDropProb(1)
	hc := &http.Client{Transport: Transport(hs.Client().Transport, f)}
	_, err := hc.Get(hs.URL)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("dropped round trip returned %v, want ErrInjected", err)
	}
}

func TestTransportCutTruncatesBody(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, payload)
	}))
	defer hs.Close()
	f := New(1)
	f.SetCut(1, 100, 100)
	hc := &http.Client{Transport: Transport(hs.Client().Transport, f)}
	resp, err := hc.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("cut body read ended with %v, want ErrInjected", err)
	}
	if len(got) != 100 {
		t.Fatalf("cut body delivered %d bytes, want exactly the 100-byte budget", len(got))
	}
}

func TestListenerCutTearsResponse(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := New(1)
	f.SetCut(1, 50, 50)
	ln := Listen(inner, f)
	payload := strings.Repeat("y", 1<<16)
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, payload)
	})}
	go hs.Serve(ln)
	defer hs.Close()

	resp, err := http.Get("http://" + ln.Addr().String())
	if err == nil {
		// The cut lands after 50 bytes — inside the response headers or just
		// into the body; either the request fails outright or the body read
		// does.
		got, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(got) == len(payload) {
			t.Fatal("cut connection delivered the whole response")
		}
	}
	if _, _, cuts := f.Stats(); cuts == 0 {
		t.Fatal("no cut was recorded")
	}
}

func TestListenerDropSeversConnection(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := New(3)
	f.SetDropProb(1)
	ln := Listen(inner, f)
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	})}
	go hs.Serve(ln)
	defer hs.Close()

	resp, err := http.Get("http://" + ln.Addr().String())
	if err == nil {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && string(body) == "ok" {
			t.Fatal("dropped connection served a full response")
		}
	}
}
