package server

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
)

// TestGate: the admission semaphore in isolation — queue timeout, client
// abandonment, and drain.
func TestGate(t *testing.T) {
	g := newGate(1)
	ctx := context.Background()
	if err := g.acquire(ctx, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := g.acquire(ctx, 5*time.Millisecond); !errors.Is(err, ErrBusy) {
		t.Fatalf("full gate: %v, want ErrBusy", err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if err := g.acquire(canceled, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled client: %v, want context.Canceled", err)
	}
	g.release()
	if err := g.acquire(ctx, time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Drain: shutdown blocks until the held slot is released, then
	// further acquires fail fast.
	released := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(released)
		g.release()
	}()
	if err := g.shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-released:
	default:
		t.Fatal("shutdown returned before the in-flight slot was released")
	}
	if err := g.acquire(ctx, time.Minute); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("drained gate: %v, want ErrShuttingDown", err)
	}

	// A drain deadline is honored: shutdown of a gate whose slot is never
	// released gives up with the context's error.
	g2 := newGate(1)
	if err := g2.acquire(ctx, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	expired, cancelExpired := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancelExpired()
	if err := g2.shutdown(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired drain: %v, want DeadlineExceeded", err)
	}
}

// TestServerAdmissionControl: with the pool saturated, queued requests
// come back as prompt structured 429s — not OOM, not hangs — and the
// server keeps answering once the slot frees.
func TestServerAdmissionControl(t *testing.T) {
	s, c, _ := newTestServer(t, Config{
		Engine:       core.Options{Seed: 7},
		MaxInflight:  1,
		QueueTimeout: 20 * time.Millisecond,
	})
	hold := make(chan struct{})
	admitted := make(chan struct{}, 4)
	s.testHookAdmitted = func() {
		admitted <- struct{}{}
		<-hold
	}

	ctx := context.Background()
	src := testWorkloads[4]
	slowDone := make(chan error, 1)
	go func() {
		_, err := c.MeasureSQL(ctx, src, 0.05, 0.25)
		slowDone <- err
	}()
	<-admitted // the one slot is now held

	start := time.Now()
	_, err := c.MeasureSQL(ctx, src, 0.05, 0.25)
	if !client.IsBusy(err) {
		t.Fatalf("saturated pool: %v, want busy", err)
	}
	var se *client.ServerError
	if !asServerError(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("saturated pool: %v, want HTTP 429", err)
	}
	if wait := time.Since(start); wait > 5*time.Second {
		t.Fatalf("shed took %v, want prompt rejection", wait)
	}

	close(hold)
	s.testHookAdmitted = nil
	if err := <-slowDone; err != nil {
		t.Fatalf("held request failed: %v", err)
	}
	if _, err := c.MeasureSQL(ctx, src, 0.05, 0.25); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestServerShutdownDrain: Shutdown waits for in-flight work, then new
// measure requests and health checks answer 503.
func TestServerShutdownDrain(t *testing.T) {
	s, c, _ := newTestServer(t, Config{
		Engine:       core.Options{Seed: 7},
		MaxInflight:  2,
		QueueTimeout: 20 * time.Millisecond,
	})
	hold := make(chan struct{})
	admitted := make(chan struct{}, 4)
	s.testHookAdmitted = func() {
		admitted <- struct{}{}
		<-hold
	}
	ctx := context.Background()
	src := testWorkloads[4]
	inflight := make(chan error, 1)
	go func() {
		_, err := c.MeasureSQL(ctx, src, 0.05, 0.25)
		inflight <- err
	}()
	<-admitted

	// Shutdown must block on the in-flight request...
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(ctx) }()
	select {
	case <-shutdownDone:
		t.Fatal("shutdown returned with a request in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(hold)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}

	// Drained: new work is shed with 503s.
	_, err := c.MeasureSQL(ctx, src, 0.05, 0.25)
	var se *client.ServerError
	if !asServerError(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("after shutdown: %v, want HTTP 503", err)
	}
	if err := c.Health(ctx); err == nil {
		t.Fatal("health reported ok while draining")
	}
}

// BenchmarkServerThroughput: end-to-end requests/second through the HTTP
// stack, all clients hammering one shared database.
func BenchmarkServerThroughput(b *testing.B) {
	_, _, hts := newTestServer(b, Config{
		Engine:      core.Options{Seed: 1},
		MaxInflight: runtime.GOMAXPROCS(0),
	})
	src := `SELECT P.seg FROM Products P, Market M
		WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 6`
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := client.NewWith(hts.URL, hts.Client())
		for pb.Next() {
			if _, err := c.MeasureSQL(ctx, src, 0.05, 0.25); err != nil {
				b.Fatal(err)
			}
		}
	})
}
