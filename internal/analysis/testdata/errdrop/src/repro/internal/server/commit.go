// Package server is the errdrop positive fixture: callers of the WAL
// and store insert surfaces, dropping errors every way errdrop catches.
package server

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/wal"
)

func droppedStatements(l *wal.Log, st *wal.Store, d *db.Database) {
	l.Append(1, nil)         // want `error return of wal.Append is discarded`
	l.Sync()                 // want `error return of wal.Sync is discarded`
	st.Checkpoint()          // want `error return of wal.Checkpoint is discarded`
	st.InsertBatch("r", nil) // want `error return of wal.InsertBatch is discarded`
	l.TruncatePrefix(0)      // want `error return of wal.TruncatePrefix is discarded`
	d.Insert("r", 1)         // want `error return of db.Insert is discarded`
	d.InsertBatch("r", nil)  // want `error return of db.InsertBatch is discarded`
}

func droppedBlank(l *wal.Log, d *db.Database) {
	_ = l.Sync()         // want `error return of wal.Sync is assigned to _`
	_ = d.Insert("r", 1) // want `error return of db.Insert is assigned to _`
}

func droppedGoDefer(l *wal.Log, st *wal.Store) {
	go st.Checkpoint() // want `error return of wal.Checkpoint is discarded by go`
	defer l.Sync()     // want `error return of wal.Sync is discarded by defer`
}

func checked(l *wal.Log, st *wal.Store, d *db.Database) error {
	if err := l.Append(1, nil); err != nil {
		return err
	}
	if err := d.InsertBatch("r", nil); err != nil {
		return err
	}
	err := st.Checkpoint()
	return err
}

// unguarded calls may drop errors freely — not this analyzer's business.
func unguarded(d *db.Database) {
	fmt.Println(d.Size())
	d.DropCaches()
}

// allowedDrop uses the escape hatch — clean.
func allowedDrop(l *wal.Log) {
	_ = l.Sync() //lint:allow errdrop fault test tears the log on purpose
}

// missingReason keeps both diagnostics.
func missingReason(l *wal.Log) {
	_ = l.Sync() //lint:allow errdrop // want `//lint:allow errdrop is missing a reason` `error return of wal.Sync is assigned to _`
}
