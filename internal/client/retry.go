package client

// Transport-level retries. The rules are conservative because /v1/insert
// is not idempotent: a lost response may mean a committed batch, so only
// responses that PROVE the server rejected the request before commit
// (429 busy, 503 shutting-down — both written before the write lock does
// any work) are retried for inserts. Read-only requests (health, info,
// measure, experiments) additionally retry on transport errors such as
// connection resets, where the request may or may not have been
// processed — re-running a read is always safe. A 503 with code
// "degraded" is never retried: the durability layer tripped and stays
// tripped until an operator intervenes.

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/wire"
)

// RetryPolicy configures capped exponential backoff with full jitter.
// The zero value disables retries; DefaultRetry is a sane interactive
// policy.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Values below 2 disable retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt k sleeps a uniform
	// random duration in (0, min(MaxDelay, BaseDelay·2^k)]. A server
	// Retry-After overrides the computed cap when it is longer.
	BaseDelay time.Duration
	// MaxDelay caps one backoff sleep.
	MaxDelay time.Duration
}

// DefaultRetry is the policy the CLI uses: 4 attempts, 100ms base, 2s cap.
var DefaultRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second}

// WithRetry returns the client with the retry policy installed. The
// default client performs no retries, so admission-control pushback
// (429s) stays visible to callers that want to see it.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = p
	return c
}

// enabled reports whether the policy retries at all.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts >= 2 }

// backoff computes the sleep before attempt (attempt is 1-based: the
// sleep after the attempt-th try), honoring a server-provided
// Retry-After hint.
func (p RetryPolicy) backoff(attempt int, hint time.Duration) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Full jitter: uncoordinated clients spread out instead of
	// re-stampeding the server in lockstep.
	d = time.Duration(1 + rand.Int63n(int64(d)))
	if hint > d {
		d = hint
	}
	return d
}

// retryable classifies an attempt's error. idempotent marks requests
// that are safe to re-run even when the first attempt's fate is unknown.
// ctx is the caller's context: a deadline error with ctx still live is a
// per-attempt timeout (WithAttemptTimeout) — a hung endpoint, retried
// and failed over like any transport error — not the caller giving up.
func (c *Client) retryable(ctx context.Context, err error, idempotent bool) bool {
	var se *ServerError
	if errors.As(err, &se) {
		// A structured response proves the server saw and rejected the
		// request — nothing committed, safe to retry even for inserts —
		// but only transient rejections are worth it.
		switch {
		case se.Code == wire.CodeDegraded:
			// Sticky on that server until operator action: waiting it out is
			// pointless, but with fallback endpoints the retry goes elsewhere
			// (noteFailure already advanced the read index).
			return idempotent && len(c.endpoints) > 1
		case se.Status == http.StatusTooManyRequests:
			return true
		case se.Status == http.StatusServiceUnavailable:
			return true
		}
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if ctx.Err() != nil {
			return false // the caller's own context ended it
		}
		return idempotent // per-attempt deadline: the endpoint hung
	}
	// Transport error (connection refused/reset, broken pipe): the
	// request may have been processed, so only idempotent requests retry.
	return idempotent
}

// retryAfter extracts the server's Retry-After hint, if the error
// carries one.
func retryAfter(err error) time.Duration {
	var se *ServerError
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// withRetries runs attempt under the policy. attempt must be
// re-runnable: it builds its own request from retained inputs.
func (c *Client) withRetries(ctx context.Context, idempotent bool, attempt func() error) error {
	if !c.retry.enabled() {
		return attempt()
	}
	var err error
	for try := 1; ; try++ {
		if err = attempt(); err == nil || try >= c.retry.MaxAttempts || !c.retryable(ctx, err, idempotent) {
			return err
		}
		t := time.NewTimer(c.retry.backoff(try, retryAfter(err)))
		select {
		case <-ctx.Done():
			t.Stop()
			return err // the attempt error is more informative than ctx.Err()
		case <-t.C:
		}
	}
}
