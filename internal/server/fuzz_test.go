package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/wire"
)

// fuzzServer serves a deliberately tiny database with tight admission
// bounds, so no fuzzer-crafted request can demand more than trivial
// work: the eps floor bounds sampling, MaxRelations bounds the join
// space (6^4 derivations worst case), and MaxSQLLen/MaxBodyBytes bound
// parsing.
var fuzzServer = sync.OnceValue(func() *Server {
	d, err := datagen.Generate(datagen.Config{
		Seed: 2, Products: 6, Orders: 5, Market: 4, Segments: 2, NullRate: 0.5,
	})
	if err != nil {
		panic(err)
	}
	s, err := New(Config{
		DB:           d,
		Engine:       core.Options{Seed: 1},
		MinEps:       0.05,
		MinDelta:     1e-3,
		MaxSQLLen:    2048,
		MaxBodyBytes: 8 << 10,
		MaxRelations: 4,
		QueueTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	return s
})

// fuzzStatuses are the only statuses the measure endpoint may produce:
// anything else (a 500, or a panic unwound by net/http) fails the fuzz.
var fuzzStatuses = map[int]bool{
	http.StatusOK:                    true,
	http.StatusBadRequest:            true,
	http.StatusRequestEntityTooLarge: true,
	http.StatusTooManyRequests:       true,
	http.StatusServiceUnavailable:    true,
}

// postMeasure drives the handler directly (no TCP) and checks the
// response invariants: an allowed status and a structured body — JSON
// for unary responses, one JSON event per line (ending in done/error)
// for streams.
func postMeasure(t *testing.T, body []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/sql/measure", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	fuzzServer().ServeHTTP(rec, req)

	if !fuzzStatuses[rec.Code] {
		t.Fatalf("status %d for body %q", rec.Code, body)
	}
	raw := rec.Body.Bytes()
	if len(bytes.TrimSpace(raw)) == 0 {
		t.Fatalf("empty body, status %d, for %q", rec.Code, body)
	}
	if rec.Code != http.StatusOK {
		var er wire.ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
			t.Fatalf("unstructured error (status %d): %q", rec.Code, raw)
		}
		return
	}
	if strings.HasPrefix(rec.Header().Get("Content-Type"), "application/x-ndjson") ||
		strings.HasPrefix(rec.Header().Get("Content-Type"), "text/event-stream") {
		sc := bufio.NewScanner(bytes.NewReader(raw))
		sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 || bytes.HasPrefix(line, []byte("event: ")) {
				continue
			}
			line = bytes.TrimPrefix(line, []byte("data: "))
			var ev wire.Event
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatalf("bad stream line %q: %v", line, err)
			}
		}
		return
	}
	var res wire.MeasureResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("bad 200 body %q: %v", raw, err)
	}
	if res.Count != len(res.Candidates) {
		t.Fatalf("count %d but %d candidates", res.Count, len(res.Candidates))
	}
}

// FuzzMeasureRequest: arbitrary request bodies against the JSON decoder
// and the full measure path — malformed input must come back as
// structured errors, never panics, hangs, or unbounded work.
func FuzzMeasureRequest(f *testing.F) {
	f.Add([]byte(`{"sql":"SELECT P.id FROM Products P","eps":0.5,"delta":0.5}`))
	f.Add([]byte(`{"sql":"SELECT P.id FROM Products P","stream":true,"includePhi":true}`))
	f.Add([]byte(`{"sql":"SELECT P.seg FROM Products P, Market M WHERE P.seg = M.seg LIMIT 2","eps":0.5,"delta":0.5}`))
	f.Add([]byte(`{"sql":""}`))
	f.Add([]byte(`{"sql":"SELECT`))
	f.Add([]byte(`{"sql":"SELECT P.id FROM Products P","eps":1e-308}`))
	f.Add([]byte(`{"sql":"SELECT P.id FROM Products P","eps":-1,"delta":2}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"sql":"SELECT A.id FROM Products A, Products B, Products C, Products D, Products E"}`))
	f.Add([]byte("{\"sql\":\"SELECT P.id FROM Products P WHERE P.rrp * P.rrp * P.rrp > 0\",\"eps\":0.5,\"delta\":0.5}"))
	f.Fuzz(func(t *testing.T, body []byte) {
		postMeasure(t, body)
	})
}

// FuzzMeasureSQLString: arbitrary SQL strings through a well-formed
// request — the parser, planner, and executor must reject or answer, not
// panic.
func FuzzMeasureSQLString(f *testing.F) {
	f.Add("SELECT P.id FROM Products P")
	f.Add("SELECT P.id, O.pid FROM Products P, Orders O WHERE P.id = O.pid LIMIT 3")
	f.Add("SELECT M.seg FROM Market M WHERE M.rrp * M.dis <= 10")
	f.Add("select p.ID from products p")
	f.Add("SELECT * FROM Products")
	f.Add("SELECT P.nope FROM Products P")
	f.Add("SELECT P.id FROM Products P WHERE P.id = P.id AND NOT (P.rrp < 0)")
	f.Add("SELECT P.id FROM Products P WHERE ((((((((P.rrp)))))))) > 1")
	f.Add("SELECT 'a; DROP TABLE Products; --")
	f.Add("ШЕLECT ⊥ FROM ⊤")
	f.Add(strings.Repeat("(", 500))
	f.Fuzz(func(t *testing.T, sql string) {
		body, err := json.Marshal(wire.MeasureRequest{SQL: sql, Eps: 0.5, Delta: 0.5})
		if err != nil {
			t.Skip()
		}
		postMeasure(t, body)
	})
}
