package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/realfmla"
)

// randOrderFormula builds a random Boolean combination of order atoms
// (z_i < z_j, z_i < c, z_i = z_j, ...) in n variables.
func randOrderFormula(rng *rand.Rand, n, depth int) realfmla.Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		rel := []realfmla.Rel{realfmla.LT, realfmla.LE, realfmla.EQ,
			realfmla.NE, realfmla.GE, realfmla.GT}[rng.Intn(6)]
		i := rng.Intn(n)
		var c []float64
		c0 := float64(rng.Intn(7) - 3)
		if rng.Intn(2) == 0 {
			// single variable: ±z_i + c0
			c = make([]float64, n)
			c[i] = float64(1 - 2*rng.Intn(2))
		} else {
			// difference: z_i - z_j (+ c0)
			j := rng.Intn(n)
			for j == i {
				j = rng.Intn(n)
			}
			c = make([]float64, n)
			c[i], c[j] = 1, -1
		}
		return linAtom(n, c, c0, rel)
	}
	switch rng.Intn(3) {
	case 0:
		return realfmla.FNot{F: randOrderFormula(rng, n, depth-1)}
	case 1:
		return realfmla.And(randOrderFormula(rng, n, depth-1), randOrderFormula(rng, n, depth-1))
	default:
		return realfmla.Or(randOrderFormula(rng, n, depth-1), randOrderFormula(rng, n, depth-1))
	}
}

// TestCrossValidateExactVsSampling pits the three independent
// implementations of ν against each other on random order formulas: exact
// cell enumeration (rational), the AFPRAS (additive sampling), and the
// finite-radius Monte-Carlo estimate at a large radius. All three must
// agree within statistical error — a strong end-to-end consistency check,
// since they share no code path beyond the formula representation.
func TestCrossValidateExactVsSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := New(Options{Seed: 7})
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(3)
		phi := randOrderFormula(rng, n, 3)
		exact, ok, err := e.exactOrder(newCompiledEntry(phi))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: order formula rejected by exact algorithm: %s", trial, phi)
		}
		approx, err := e.AdditiveApprox(phi, 0.02, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact.Value-approx.Value) > 0.04 {
			t.Errorf("trial %d: exact %.4f vs AFPRAS %.4f\nφ = %s",
				trial, exact.Value, approx.Value, phi)
		}
		mu, err := e.MuAtRadius(phi, 1e6, 40000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact.Value-mu) > 0.03 {
			t.Errorf("trial %d: exact %.4f vs μ_r %.4f\nφ = %s", trial, exact.Value, mu, phi)
		}
	}
}

// TestCrossValidateSectorVsCells: where both exact algorithms apply
// (2-variable order formulas) they must agree to float precision.
func TestCrossValidateSectorVsCells(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	e := New(Options{Seed: 7})
	for trial := 0; trial < 60; trial++ {
		phi := phiReduce(randOrderFormula(rng, 2, 3))
		if realfmla.NumVars(phi) != 2 {
			continue // reduced away a variable; sector n=2 path not exercised
		}
		cells, ok, err := e.exactOrder(newCompiledEntry(phi))
		if err != nil || !ok {
			t.Fatal(err)
		}
		sector, ok := e.exactSector(phi)
		if !ok {
			t.Fatalf("trial %d: sector rejected 2-var linear formula", trial)
		}
		if math.Abs(cells.Value-sector.Value) > 1e-9 {
			t.Errorf("trial %d: cells %.6f vs sector %.6f\nφ = %s",
				trial, cells.Value, sector.Value, phi)
		}
	}
}

// TestCrossValidateBackgroundVsPlain: half-line constraints are sign
// conditions on directions, so the conditioned measures have analytic
// sector values: unconditioned μ(z0<z1) = 1/2; within the positive
// quadrant the sector (π/4, π/2) is half the quadrant; conditioning only
// z0 ≥ 0 leaves the sector (π/4, π/2] of the right half-circle = 1/4.
func TestCrossValidateBackgroundVsPlain(t *testing.T) {
	e := New(Options{Seed: 7})
	phi := linAtom(2, []float64{1, -1}, 0, realfmla.LT)
	cases := []struct {
		bg   Background
		want float64
	}{
		{nil, 0.5},
		{Background{0: AtLeast(0), 1: AtLeast(0)}, 0.5},
		{Background{0: AtLeast(0)}, 0.25},
		{Background{0: AtMost(0)}, 0.75},
	}
	for _, c := range cases {
		res, err := e.MeasureWithBackground(phi, c.bg, 0.02, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Value-c.want) > 0.03 {
			t.Errorf("bg %v: μ = %.4f, want %.2f", c.bg, res.Value, c.want)
		}
	}
}
