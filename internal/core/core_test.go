package core

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/db"
	"repro/internal/fo"
	"repro/internal/poly"
	"repro/internal/realfmla"
	"repro/internal/schema"
	"repro/internal/translate"
	"repro/internal/value"
)

// linAtom builds c·z + c0 Rel 0 over n variables.
func linAtom(n int, c []float64, c0 float64, rel realfmla.Rel) realfmla.Formula {
	p := poly.Const(n, c0)
	for i, ci := range c {
		if ci != 0 {
			p = p.Add(poly.Var(n, i).Scale(ci))
		}
	}
	return realfmla.FAtom{A: realfmla.Atom{P: p, Rel: rel}}
}

func pairSchema() *schema.Schema {
	return schema.MustNew(schema.MustRelation("R",
		schema.Column{Name: "x", Type: schema.Num},
		schema.Column{Name: "y", Type: schema.Num}))
}

// TestSelectGreaterHalf: the paper's first motivating example — the query
// σ_{A>B}(R) on a single tuple (⊤0, ⊤1) has measure exactly 1/2.
func TestSelectGreaterHalf(t *testing.T) {
	d := db.New(pairSchema())
	d.MustInsert("R", value.NullNum(0), value.NullNum(1))
	q := fo.MustParseQuery(`q() := exists x:num, y:num . (R(x, y) and x > y)`)

	e := New(Options{})
	res, err := e.Measure(q, d, nil, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Errorf("expected an exact method, got %s", res.Method)
	}
	if res.Rat == nil || res.Rat.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("μ = %v (%g), want exactly 1/2", res.Rat, res.Value)
	}
	if res.K != 2 || res.RelevantK != 2 {
		t.Errorf("K=%d RelevantK=%d", res.K, res.RelevantK)
	}
}

// TestIntroExampleConstraint reproduces the introduction's constraint (1):
// (z1 ≥ 0) ∧ (z0 ≥ 8) ∧ (0.7·z1 ≥ z0) has
// ν = (π/2 − arctan(10/7)) / 2π ≈ 0.097, which is ≈ 0.388 of the positive
// quadrant.
func TestIntroExampleConstraint(t *testing.T) {
	n := 2 // z0 = α (competition price), z1 = α' (rrp of id2)
	phi := realfmla.And(
		linAtom(n, []float64{0, -1}, 0, realfmla.LE),   // -z1 ≤ 0
		linAtom(n, []float64{-1, 0}, 8, realfmla.LE),   // 8 - z0 ≤ 0
		linAtom(n, []float64{1, -0.7}, 0, realfmla.LE), // z0 - 0.7z1 ≤ 0
	)
	e := New(Options{})
	res, err := e.MeasureFormula(phi, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := (math.Pi/2 - math.Atan(10.0/7)) / (2 * math.Pi)
	if !res.Exact || res.Method != MethodExactSector {
		t.Errorf("method = %s, want exact sector", res.Method)
	}
	if math.Abs(res.Value-want) > 1e-9 {
		t.Errorf("ν = %.6f, want %.6f", res.Value, want)
	}
	if q := res.Value * 4; math.Abs(q-0.38855) > 1e-3 {
		t.Errorf("fraction of positive quadrant = %.5f, want ≈0.388", q)
	}
}

// TestIntroExampleEndToEnd runs the introduction's full query over the
// introduction's database. Note: the paper's query text uses r·d ≤ p while
// its constraint (1) and numeric values use 0.7·α' ≥ α; the two disagree
// (see EXPERIMENTS.md). With the query as printed, the derived constraint
// is α ≥ 8 ∧ 0.7·α' ≤ α ∧ α' ≥ 0, whose measure is arctan(10/7)/2π —
// exactly the complementary sector of the positive quadrant: both measures
// sum to 1/4.
func TestIntroExampleEndToEnd(t *testing.T) {
	s := schema.MustNew(
		schema.MustRelation("P",
			schema.Column{Name: "id", Type: schema.Base},
			schema.Column{Name: "seg", Type: schema.Base},
			schema.Column{Name: "rrp", Type: schema.Num},
			schema.Column{Name: "dis", Type: schema.Num}),
		schema.MustRelation("C",
			schema.Column{Name: "id", Type: schema.Base},
			schema.Column{Name: "seg", Type: schema.Base},
			schema.Column{Name: "p", Type: schema.Num}),
		schema.MustRelation("E",
			schema.Column{Name: "id", Type: schema.Base},
			schema.Column{Name: "seg", Type: schema.Base}),
	)
	d := db.New(s)
	d.MustInsert("C", value.Base("c"), value.Base("s"), value.NullNum(0)) // ⊤0 = α
	d.MustInsert("P", value.Base("id1"), value.Base("s"), value.Num(10), value.Num(0.8))
	d.MustInsert("P", value.Base("id2"), value.Base("s"), value.NullNum(1), value.Num(0.7)) // ⊤1 = α'
	d.MustInsert("E", value.NullBase(0), value.Base("s"))

	q := fo.MustParseQuery(`
	q(s:base) := forall i:base, r:num, dd:num, i2:base, p:num .
	    (P(i, s, r, dd) and not E(i, s) and C(i2, s, p))
	    -> (r * dd <= p and r >= 0 and dd >= 0 and p >= 0)
	`)
	// The fully expanded φ contains vacuous nonlinear branches (quantified
	// variables substituted into r·dd), so the engine falls back to the
	// AFPRAS; check the sampled value against the analytic sector.
	e := New(Options{Seed: 4})
	res, err := e.Measure(q, d, []value.Value{value.Base("s")}, 0.03, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Atan(10.0/7) / (2 * math.Pi) // ≈ 0.1528
	if math.Abs(res.Value-want) > 0.035 {
		t.Errorf("μ = %.4f, want ≈ %.4f", res.Value, want)
	}
	// The derived constraint, built directly as in the paper's Section 5
	// walk-through, is exactly the complementary sector: a ≥ 8 ∧
	// 0.7·a' ≤ a ∧ a' ≥ 0.
	phi := realfmla.And(
		linAtom(2, []float64{-1, 0}, 8, realfmla.LE),   // 8 - α ≤ 0
		linAtom(2, []float64{-1, 0.7}, 0, realfmla.LE), // 0.7α' - α ≤ 0
		linAtom(2, []float64{0, -1}, 0, realfmla.LE),   // -α' ≤ 0
	)
	exact, err := e.MeasureFormula(phi, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exact || math.Abs(exact.Value-want) > 1e-9 {
		t.Errorf("derived constraint: %.6f via %s, want %.6f exact", exact.Value, exact.Method, want)
	}
	// Together with the paper's (1) the two sectors tile the positive
	// quadrant: 0.0972 + 0.1528 = 1/4.
	one := (math.Pi/2 - math.Atan(10.0/7)) / (2 * math.Pi)
	if math.Abs(one+want-0.25) > 1e-12 {
		t.Errorf("sectors do not tile the quadrant: %g + %g", one, want)
	}
}

func mustPhi(t *testing.T, q *fo.Query, d *db.Database, args []value.Value) realfmla.Formula {
	t.Helper()
	res, err := translate.Query(q, d, args)
	if err != nil {
		t.Fatal(err)
	}
	return res.Phi
}

// TestArctanFamily reproduces Prop 6.1: for q = ∃x,y R(x,y) ∧ x ≥ 0 ∧
// y ≤ α·x on R = {(⊤,⊤')}, μ = arctan(α)/2π + 1/4. (The paper prints
// +1/2; the region {x ≥ 0, y ≤ αx} subtends [−π/2, arctan α], giving +1/4
// — at α = 0 it is a quadrant. The rationality claim — μ ∈ ℚ iff
// α ∈ {0, ±1} — is unaffected; see EXPERIMENTS.md.)
func TestArctanFamily(t *testing.T) {
	e := New(Options{})
	for _, alpha := range []float64{0, 1, -1, 2, 0.5, -3} {
		d := db.New(pairSchema())
		d.MustInsert("R", value.NullNum(0), value.NullNum(1))
		q := &fo.Query{
			Name: "q",
			Body: fo.Exists{Var: "x", Sort: fo.SortNum, Body: fo.Exists{Var: "y", Sort: fo.SortNum,
				Body: fo.AndAll(
					fo.Atom{Rel: "R", Args: []fo.Term{fo.Var{Name: "x"}, fo.Var{Name: "y"}}},
					fo.Cmp{Op: fo.Ge, L: fo.Var{Name: "x"}, R: fo.NumConst{Value: 0}},
					fo.Cmp{Op: fo.Le, L: fo.Var{Name: "y"}, R: fo.Mul{L: fo.NumConst{Value: alpha}, R: fo.Var{Name: "x"}}},
				)}},
		}
		res, err := e.Measure(q, d, nil, 0.05, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Atan(alpha)/(2*math.Pi) + 0.25
		if !res.Exact {
			t.Errorf("α=%g: method %s not exact", alpha, res.Method)
		}
		if math.Abs(res.Value-want) > 1e-9 {
			t.Errorf("α=%g: μ = %.6f, want %.6f", alpha, res.Value, want)
		}
	}
}

// TestExactOrderAgainstSampling cross-validates the two independent
// algorithms on order formulas in 3–4 variables.
func TestExactOrderAgainstSampling(t *testing.T) {
	formulas := []realfmla.Formula{
		// z0 < z1 < z2: 1/6.
		realfmla.And(
			linAtom(3, []float64{1, -1, 0}, 0, realfmla.LT),
			linAtom(3, []float64{0, 1, -1}, 0, realfmla.LT)),
		// z0 > 0 ∨ z1 > 0: 3/4.
		realfmla.Or(
			linAtom(2, []float64{-1, 0}, 0, realfmla.LT),
			linAtom(2, []float64{0, -1}, 0, realfmla.LT)),
		// (z0 < z1) xor-ish mix with negation.
		realfmla.FNot{F: realfmla.And(
			linAtom(4, []float64{1, -1, 0, 0}, 0, realfmla.LT),
			linAtom(4, []float64{0, 0, 1, -1}, 3, realfmla.LT))},
	}
	exactEngine := New(Options{Seed: 5})
	for i, phi := range formulas {
		ex, ok, err := exactEngine.exactOrder(newCompiledEntry(phi))
		if err != nil || !ok {
			t.Fatalf("formula %d: exact order failed: ok=%v err=%v", i, ok, err)
		}
		ap, err := exactEngine.AdditiveApprox(phi, 0.02, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ex.Value-ap.Value) > 0.03 {
			t.Errorf("formula %d: exact %.4f vs sampled %.4f", i, ex.Value, ap.Value)
		}
	}
}

func phiReduce(f realfmla.Formula) realfmla.Formula {
	g, _ := realfmla.Reduce(f)
	return g
}

func TestExactOrderKnownValues(t *testing.T) {
	e := New(Options{})
	cases := []struct {
		phi  realfmla.Formula
		want *big.Rat
	}{
		// z0 < z1: 1/2.
		{linAtom(2, []float64{1, -1}, 0, realfmla.LT), big.NewRat(1, 2)},
		// z0 < z1 < z2: 1/6.
		{realfmla.And(
			linAtom(3, []float64{1, -1, 0}, 0, realfmla.LT),
			linAtom(3, []float64{0, 1, -1}, 0, realfmla.LT)), big.NewRat(1, 6)},
		// z0 > 5 (asymptotically z0 > 0): 1/2.
		{linAtom(1, []float64{-1}, 5, realfmla.LT), big.NewRat(1, 2)},
		// z0 > 0 ∧ z1 < 0: 1/4.
		{realfmla.And(
			linAtom(2, []float64{-1, 0}, 0, realfmla.LT),
			linAtom(2, []float64{0, 1}, 0, realfmla.LT)), big.NewRat(1, 4)},
		// z0 = z1: measure zero.
		{linAtom(2, []float64{1, -1}, 0, realfmla.EQ), big.NewRat(0, 1)},
		// z0 ≠ z1: full measure.
		{linAtom(2, []float64{1, -1}, 0, realfmla.NE), big.NewRat(1, 1)},
	}
	for i, c := range cases {
		res, ok, err := e.exactOrder(newCompiledEntry(c.phi))
		if err != nil || !ok {
			t.Fatalf("case %d: ok=%v err=%v", i, ok, err)
		}
		if res.Rat.Cmp(c.want) != 0 {
			t.Errorf("case %d: ν = %v, want %v", i, res.Rat, c.want)
		}
	}
}

func TestExactOrderRejectsNonOrder(t *testing.T) {
	e := New(Options{})
	// z0 + z1 < 0 is linear but not an order atom.
	if _, ok, _ := e.exactOrder(newCompiledEntry(linAtom(2, []float64{1, 1}, 0, realfmla.LT))); ok {
		t.Error("sum atom accepted by order algorithm")
	}
	// Quadratic atom.
	q := realfmla.FAtom{A: realfmla.Atom{P: poly.Var(1, 0).Mul(poly.Var(1, 0)), Rel: realfmla.LT}}
	if _, ok, _ := e.exactOrder(newCompiledEntry(q)); ok {
		t.Error("quadratic atom accepted")
	}
	// Cell budget: a genuine 3-variable order formula has 48 cells.
	tiny := New(Options{MaxExactCells: 10})
	chain := realfmla.And(
		linAtom(3, []float64{1, -1, 0}, 0, realfmla.LT),
		linAtom(3, []float64{0, 1, -1}, 0, realfmla.LT))
	if _, ok, _ := tiny.exactOrder(newCompiledEntry(chain)); ok {
		t.Error("cell budget ignored")
	}
}

// TestFPRASAgainstExact cross-validates the Section 7 union-of-cones FPRAS
// against the exact sector values on 2D linear formulas with overlapping
// disjuncts.
func TestFPRASAgainstExact(t *testing.T) {
	e := New(Options{Seed: 17})
	// (z0 > 0) ∨ (z1 > 2·z0): two overlapping halfplanes.
	phi := realfmla.Or(
		linAtom(2, []float64{-1, 0}, 0, realfmla.LT),
		linAtom(2, []float64{2, -1}, 0, realfmla.LT),
	)
	exact, ok := e.exactSector(phiReduce(phi))
	if !ok {
		t.Fatal("sector method refused a 2D linear formula")
	}
	res, err := e.FPRAS(phi, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodFPRAS {
		t.Errorf("method = %s", res.Method)
	}
	if math.Abs(res.Value-exact.Value) > 0.08*exact.Value+0.02 {
		t.Errorf("FPRAS %.4f vs exact %.4f", res.Value, exact.Value)
	}
}

func TestFPRAS3DConeAgainstSampling(t *testing.T) {
	e := New(Options{Seed: 23})
	// Octant z0>0 ∧ z1>0 ∧ z2>0 (measure 1/8) ∪ opposite octant: 1/4.
	oct := func(sign float64) realfmla.Formula {
		return realfmla.And(
			linAtom(3, []float64{-sign, 0, 0}, 0, realfmla.LT),
			linAtom(3, []float64{0, -sign, 0}, 0, realfmla.LT),
			linAtom(3, []float64{0, 0, -sign}, 0, realfmla.LT))
	}
	phi := realfmla.Or(oct(1), oct(-1))
	res, err := e.FPRAS(phi, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-0.25) > 0.04 {
		t.Errorf("FPRAS = %.4f, want 0.25", res.Value)
	}
}

func TestFPRASRejectsNonlinear(t *testing.T) {
	e := New(Options{})
	q := realfmla.FAtom{A: realfmla.Atom{P: poly.Var(1, 0).Mul(poly.Var(1, 0)).Sub(poly.Const(1, 1)), Rel: realfmla.LT}}
	if _, err := e.FPRAS(q, 0.1); err == nil {
		t.Error("nonlinear formula accepted by FPRAS")
	}
	if _, err := e.FPRAS(realfmla.FTrue{}, 0); err == nil {
		t.Error("eps = 0 accepted")
	}
}

// TestAdditiveApproxNonlinear exercises the AFPRAS on a genuinely
// nonlinear FO(+,·,<) constraint: z0·z1 > 0 holds on half the directions.
func TestAdditiveApproxNonlinear(t *testing.T) {
	e := New(Options{Seed: 3})
	phi := realfmla.FAtom{A: realfmla.Atom{P: poly.Var(2, 0).Mul(poly.Var(2, 1)), Rel: realfmla.GT}}
	res, err := e.AdditiveApprox(phi, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-0.5) > 0.03 {
		t.Errorf("ν(z0·z1 > 0) = %.4f, want 0.5", res.Value)
	}
	// z0² + z1² > 0 holds almost everywhere.
	sq := func(i int) poly.Poly { return poly.Var(2, i).Mul(poly.Var(2, i)) }
	phi2 := realfmla.FAtom{A: realfmla.Atom{P: sq(0).Add(sq(1)), Rel: realfmla.GT}}
	res2, err := e.AdditiveApprox(phi2, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Value != 1 {
		t.Errorf("ν(z0²+z1² > 0) = %.4f, want 1", res2.Value)
	}
}

// TestDirectMatchesFormulaPath: the two AFPRAS implementations (translated
// formula vs direct asymptotic evaluation) agree within statistical error.
func TestDirectMatchesFormulaPath(t *testing.T) {
	d := db.New(pairSchema())
	d.MustInsert("R", value.NullNum(0), value.NullNum(1))
	d.MustInsert("R", value.Num(1), value.NullNum(2))
	queries := []string{
		`q() := exists x:num, y:num . (R(x, y) and x > y)`,
		`q() := forall x:num, y:num . (R(x, y) -> x + y > 0)`,
		`q() := exists x:num, y:num . (R(x, y) and x * y > 1)`,
	}
	for _, src := range queries {
		q := fo.MustParseQuery(src)
		phi := mustPhi(t, q, d, nil)
		e1 := New(Options{Seed: 101})
		e2 := New(Options{Seed: 202})
		r1, err := e1.AdditiveApprox(phi, 0.02, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := e2.AdditiveApproxDirect(q, d, nil, 0.02, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r1.Value-r2.Value) > 0.05 {
			t.Errorf("%s: formula path %.4f vs direct path %.4f", src, r1.Value, r2.Value)
		}
	}
}

// TestNoNumericNullsIsZeroOne: with no numerical nulls the measure is 0 or
// 1, matching the zero-one law of [27] that the framework generalizes.
func TestNoNumericNullsIsZeroOne(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("T",
		schema.Column{Name: "a", Type: schema.Base},
		schema.Column{Name: "x", Type: schema.Num}))
	d := db.New(s)
	d.MustInsert("T", value.NullBase(0), value.Num(3))
	d.MustInsert("T", value.Base("a"), value.Num(5))

	e := New(Options{})
	// ∃v. T(v, 3) ∧ v ≠ "a": true under every bijective valuation (⊥0).
	q := fo.MustParseQuery(`q() := exists v:base . (T(v, 3) and not (v == "a"))`)
	res, err := e.Measure(q, d, nil, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodTrivial || res.Value != 1 {
		t.Errorf("μ = %g via %s, want 1 via trivial", res.Value, res.Method)
	}
	// ∃v. T(v, 3) ∧ v = "a": almost surely false.
	q2 := fo.MustParseQuery(`q() := exists v:base . (T(v, 3) and v == "a")`)
	res2, err := e.Measure(q2, d, nil, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Value != 0 {
		t.Errorf("μ = %g, want 0", res2.Value)
	}
}

// TestMuRadiusConvergence demonstrates the well-definedness of the limit
// (Section 5): μ_r approaches ν(φ) as r grows for the introduction
// constraint.
func TestMuRadiusConvergence(t *testing.T) {
	phi := realfmla.And(
		linAtom(2, []float64{0, -1}, 0, realfmla.LE),
		linAtom(2, []float64{-1, 0}, 8, realfmla.LE),
		linAtom(2, []float64{1, -0.7}, 0, realfmla.LE),
	)
	e := New(Options{Seed: 7})
	limit := (math.Pi/2 - math.Atan(10.0/7)) / (2 * math.Pi)
	var prevErr float64 = math.Inf(1)
	improving := 0
	for _, r := range []float64{10, 40, 160, 640} {
		mu, err := e.MuAtRadius(phi, r, 200000)
		if err != nil {
			t.Fatal(err)
		}
		gap := math.Abs(mu - limit)
		if gap < prevErr+0.01 {
			improving++
		}
		prevErr = gap
	}
	if improving < 3 {
		t.Error("μ_r does not approach the limit as r grows")
	}
	final, _ := e.MuAtRadius(phi, 640, 200000)
	if math.Abs(final-limit) > 0.01 {
		t.Errorf("μ_640 = %.4f, want ≈ %.4f", final, limit)
	}
}

func TestParameterValidation(t *testing.T) {
	e := New(Options{})
	phi := linAtom(1, []float64{1}, 0, realfmla.LT)
	if _, err := e.AdditiveApprox(phi, 0, 0.1); err == nil {
		t.Error("eps = 0 accepted")
	}
	if _, err := e.AdditiveApprox(phi, 0.1, 0); err == nil {
		t.Error("delta = 0 accepted")
	}
	if _, err := e.MuAtRadius(phi, -1, 100); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := e.MuAtRadius(phi, 1, 0); err == nil {
		t.Error("zero samples accepted")
	}
}

// TestExactRaySingleVariableNonlinear: with one relevant variable the
// engine is exact for arbitrary polynomial constraints — the common
// one-null-per-candidate case never needs sampling.
func TestExactRaySingleVariableNonlinear(t *testing.T) {
	e := New(Options{})
	z := poly.Var(1, 0)
	cases := []struct {
		phi  realfmla.Formula
		want float64
	}{
		// z² > 1: true along both rays → 1.
		{realfmla.FAtom{A: realfmla.Atom{P: poly.Const(1, 1).Sub(z.Mul(z)), Rel: realfmla.LT}}, 1},
		// z³ > 5: positive ray only → 1/2.
		{realfmla.FAtom{A: realfmla.Atom{P: poly.Const(1, 5).Sub(z.Mul(z).Mul(z)), Rel: realfmla.LT}}, 0.5},
		// z² < -1: never → 0.
		{realfmla.FAtom{A: realfmla.Atom{P: z.Mul(z).Add(poly.Const(1, 1)), Rel: realfmla.LT}}, 0},
	}
	for i, c := range cases {
		res, err := e.MeasureFormula(c.phi, 0.1, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact || res.Method != MethodExactSector {
			t.Errorf("case %d: method %s exact=%v, want exact sector", i, res.Method, res.Exact)
		}
		if res.Value != c.want {
			t.Errorf("case %d: ν = %g, want %g", i, res.Value, c.want)
		}
	}
}

func TestPreferFPRASOption(t *testing.T) {
	// Force the FPRAS on a 3D linear formula where no exact method applies.
	oct := realfmla.And(
		linAtom(3, []float64{-1, -1, 0}, 0, realfmla.LT), // z0 + z1 > 0: not an order atom
		linAtom(3, []float64{0, -1, -1}, 0, realfmla.LT),
	)
	e := New(Options{Seed: 5, PreferFPRAS: true})
	res, err := e.MeasureFormula(oct, 0.1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodFPRAS {
		t.Errorf("method = %s, want fpras", res.Method)
	}
	// Cross-check against the AFPRAS.
	e2 := New(Options{Seed: 6})
	ref, err := e2.AdditiveApprox(oct, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-ref.Value) > 0.1*ref.Value+0.04 {
		t.Errorf("FPRAS %.4f vs AFPRAS %.4f", res.Value, ref.Value)
	}
	// Nonlinear input still works via the AFPRAS fallback.
	q := realfmla.FAtom{A: realfmla.Atom{P: poly.Var(2, 0).Mul(poly.Var(2, 1)), Rel: realfmla.GT}}
	res2, err := e.MeasureFormula(q, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Method != MethodAFPRAS {
		t.Errorf("nonlinear method = %s, want afpras", res2.Method)
	}
}

func TestPaperSampleCountOption(t *testing.T) {
	e := New(Options{PaperSampleCount: true})
	phi := linAtom(1, []float64{1}, 0, realfmla.LT)
	res, err := e.AdditiveApprox(phi, 0.1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 100 {
		t.Errorf("paper sample count = %d, want 100 = ⌈ε⁻²⌉", res.Samples)
	}
}
