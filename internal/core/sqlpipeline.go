package core

import (
	"context"

	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/realfmla"
	"repro/internal/sqlast"
	"repro/internal/value"
)

// planOptions and execOptions derive the SQL pipeline configuration from
// the engine options.
func (e *Engine) planOptions() plan.Options {
	return plan.Options{
		Reorder:             !e.opts.DisableJoinReorder,
		NoPersistentIndexes: e.opts.DisableDBIndexes,
	}
}

func (e *Engine) execOptions() exec.Options {
	return exec.Options{NoDBIndexes: e.opts.DisableDBIndexes, NoHashJoin: e.opts.DisableHashJoin}
}

// EvaluateSQL runs a SQL query under conditional semantics through the
// engine's planner/executor configuration, returning candidate tuples
// with their constraints. Results are identical to sqlfront.Evaluate for
// every toggle combination.
func (e *Engine) EvaluateSQL(q *sqlast.Query, d *db.Database) (*exec.Result, error) {
	p, err := plan.Build(q, d, e.planOptions())
	if err != nil {
		return nil, err
	}
	return exec.Collect(p, d, e.execOptions())
}

// MeasuredCandidate is one candidate answer of MeasureSQL: the tuple, its
// constraint, and the measure of certainty μ = ν(Phi).
type MeasuredCandidate struct {
	Tuple   value.Tuple
	Phi     realfmla.Formula
	Measure Result
}

// SQLMeasured is the output of MeasureSQL: the conditional evaluation's
// candidates in derivation order, each with its confidence level.
type SQLMeasured struct {
	Candidates []MeasuredCandidate
	// NullIDs / Index / Derivations as in exec.Result.
	NullIDs     []int
	Index       map[int]int
	Derivations int
	// SamplesDrawn and Rounds report the adaptive top-k race's total
	// sampling spend and round count (see SQLStreamInfo); zero when the
	// query did not route through the race.
	SamplesDrawn int
	Rounds       int
}

// MeasureSQL is the fused pipeline of the paper's experiments: the query
// is lowered to a plan, the streaming executor's derivations feed
// per-candidate constraint aggregation, and candidates are measured
// concurrently as soon as their constraint is final — candidates whose
// constraint collapses to true (an unconditional derivation) are
// dispatched while enumeration is still running, the rest when the join
// completes, so measurement overlaps enumeration and consumption. With a
// LIMIT, the query routes through the adaptive top-k race by default
// (see MeasureTopK): every distinct candidate is enumerated, candidates
// race on confidence intervals, and the k most certain answers are
// returned in candidate order — typically at a small fraction of the
// fixed k·m sampling budget when the measures are skewed. SamplesDrawn
// and Rounds on the result report the spend. Options.NoAdaptive restores
// the fixed-budget first-k-distinct-tuples semantics, where only the
// first k distinct tuples hold constraint state and the full candidate
// list is never materialized.
//
// Measurement matches MeasureBatch exactly: each candidate is measured by
// its own engine seeded deterministically from this engine's options and
// the candidate index, so results are bit-identical to a sequential
// MeasureBatch run regardless of scheduling or the planner toggles. The
// per-candidate engines share this engine's compiled-kernel cache (see
// kernelCache), so repeated MeasureSQL calls and ε-sweeps on one engine
// compile each candidate constraint once instead of once per call;
// kernels are immutable, so sharing cannot change the measured values.
//
// MeasureSQL is the buffering collector over MeasureSQLStream — the
// streaming form that delivers candidates incrementally in this exact
// order — so the two are bit-identical by construction.
func (e *Engine) MeasureSQL(q *sqlast.Query, d *db.Database, eps, delta float64) (*SQLMeasured, error) {
	return e.MeasureSQLContext(context.Background(), q, d, eps, delta)
}

// MeasureSQLContext is MeasureSQL with cancellation: when ctx is
// cancelled, remaining candidate measurements are skipped and the call
// returns ctx.Err() (see MeasureSQLStream).
func (e *Engine) MeasureSQLContext(ctx context.Context, q *sqlast.Query, d *db.Database, eps, delta float64) (*SQLMeasured, error) {
	return e.measureSQLBuffered(ctx, q, d, eps, delta)
}
