package db

import "repro/internal/value"

// EqIndex is a per-column equality index: for each distinct column value,
// the ordinals (insertion positions) of the tuples carrying it, ascending.
// Because value.Value is compared structurally, a marked null indexes —
// and therefore equi-joins — only with itself, the bijective-valuation
// regime of Prop 5.2. The index is owned by the database and must not be
// modified.
type EqIndex map[value.Value][]int

type indexKey struct {
	rel string
	col int
}

// Index returns the equality index of the given relation column, building
// it on first use and caching it until the relation is next modified.
// Concurrent callers are safe; each (relation, column) pair is built at
// most once per version of the relation.
func (d *Database) Index(rel string, col int) EqIndex {
	k := indexKey{rel, col}
	d.mu.Lock()
	defer d.mu.Unlock()
	if ix, ok := d.indexes[k]; ok {
		return ix
	}
	ix := make(EqIndex)
	for i, t := range d.tables[rel] {
		ix[t[col]] = append(ix[t[col]], i)
	}
	if d.indexes == nil {
		d.indexes = make(map[indexKey]EqIndex)
	}
	d.indexes[k] = ix
	return ix
}

// invalidateIndexes drops the cached indexes of a relation after a
// mutation.
func (d *Database) invalidateIndexes(rel string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for k := range d.indexes {
		if k.rel == rel {
			delete(d.indexes, k)
		}
	}
}
