// Package reductions implements the hardness gadgets of Section 6 as
// executable constructions:
//
//   - Prop 6.2: counting satisfying assignments of a 3DNF formula reduces
//     to computing μ for a fixed CQ(<) query — each clause becomes a
//     database tuple and each propositional variable a numerical null whose
//     sign encodes its truth value, so μ(q, D_ψ) = #ψ / 2ⁿ.
//   - Thm 6.3: the analogous reduction from #3CNF to a fixed FO(<) query,
//     which shows satisfiability reduces to μ > 0 and hence rules out an
//     FPRAS for FO(<) unless NP ⊆ BPP.
//
// The gadgets double as end-to-end tests: on small inputs the engine's
// exact order-cell algorithm must return exactly #ψ/2ⁿ.
package reductions

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/fo"
	"repro/internal/schema"
	"repro/internal/value"
)

// Literal is a propositional literal: variable index Var (0-based),
// negated when Neg is true.
type Literal struct {
	Var int
	Neg bool
}

// Clause is a 3-literal clause.
type Clause [3]Literal

// Formula3 is a propositional formula in 3DNF or 3CNF shape: a list of
// 3-literal clauses over NumVars variables. The same structure serves both
// readings — as a disjunction of conjunctive clauses (DNF) or a
// conjunction of disjunctive clauses (CNF).
type Formula3 struct {
	NumVars int
	Clauses []Clause
}

// Validate checks variable indices.
func (f Formula3) Validate() error {
	if f.NumVars <= 0 {
		return fmt.Errorf("reductions: formula needs at least one variable")
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if l.Var < 0 || l.Var >= f.NumVars {
				return fmt.Errorf("reductions: literal variable %d out of range [0,%d)", l.Var, f.NumVars)
			}
		}
	}
	return nil
}

// evalClauseConj reports whether all three literals hold.
func (c Clause) evalConj(assign uint) bool {
	for _, l := range c {
		bit := assign>>(uint(l.Var))&1 == 1
		if bit == l.Neg {
			return false
		}
	}
	return true
}

// evalClauseDisj reports whether at least one literal holds.
func (c Clause) evalDisj(assign uint) bool {
	for _, l := range c {
		bit := assign>>(uint(l.Var))&1 == 1
		if bit != l.Neg {
			return true
		}
	}
	return false
}

// CountDNF counts assignments satisfying the formula read as a 3DNF
// (∨ of ∧-clauses) by brute force. Feasible for NumVars ≤ 24.
func (f Formula3) CountDNF() int {
	count := 0
	for a := uint(0); a < 1<<uint(f.NumVars); a++ {
		for _, c := range f.Clauses {
			if c.evalConj(a) {
				count++
				break
			}
		}
	}
	return count
}

// CountCNF counts assignments satisfying the formula read as a 3CNF
// (∧ of ∨-clauses) by brute force.
func (f Formula3) CountCNF() int {
	count := 0
	for a := uint(0); a < 1<<uint(f.NumVars); a++ {
		ok := true
		for _, c := range f.Clauses {
			if !c.evalDisj(a) {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

// gadgetSchema is the clause relation C(p1,n1,p2,n2,p3,n3), all numerical:
// literal j of a clause is encoded in columns (pj, nj) so that the literal
// holds iff pj > nj. A positive literal x_i stores (⊤i, 0); a negative one
// stores (0, ⊤i).
func gadgetSchema() *schema.Schema {
	cols := make([]schema.Column, 0, 6)
	for j := 1; j <= 3; j++ {
		cols = append(cols,
			schema.Column{Name: fmt.Sprintf("p%d", j), Type: schema.Num},
			schema.Column{Name: fmt.Sprintf("n%d", j), Type: schema.Num},
		)
	}
	return schema.MustNew(schema.MustRelation("C", cols...))
}

// gadgetDB encodes the clauses as tuples of the clause relation.
func gadgetDB(f Formula3) (*db.Database, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	d := db.New(gadgetSchema())
	for _, c := range f.Clauses {
		tup := make(value.Tuple, 0, 6)
		for _, l := range c {
			if l.Neg {
				tup = append(tup, value.Num(0), value.NullNum(l.Var))
			} else {
				tup = append(tup, value.NullNum(l.Var), value.Num(0))
			}
		}
		if err := d.Insert("C", tup); err != nil {
			return nil, err
		}
	}
	// Every variable must occur as a null so that μ's denominator is 2ⁿ
	// over all n variables; pad unused variables with a vacuous tuple? Not
	// needed: variables absent from every clause do not affect μ (the
	// satisfying set is a cylinder over them), and #ψ/2ⁿ is likewise
	// invariant — both sides ignore them consistently.
	return d, nil
}

// DNFGadget builds the fixed CQ(<) query and clause database of Prop 6.2:
//
//	q = ∃p̄,n̄ . C(p1,n1,p2,n2,p3,n3) ∧ p1 > n1 ∧ p2 > n2 ∧ p3 > n3
//
// Then μ(q, D_ψ) = #ψ/2ⁿ where #ψ counts the satisfying assignments of ψ
// read as a 3DNF.
func DNFGadget(f Formula3) (*fo.Query, *db.Database, error) {
	d, err := gadgetDB(f)
	if err != nil {
		return nil, nil, err
	}
	q := fo.MustParseQuery(`
	q() := exists p1:num, n1:num, p2:num, n2:num, p3:num, n3:num .
	    (C(p1, n1, p2, n2, p3, n3) and p1 > n1 and p2 > n2 and p3 > n3)
	`)
	return q, d, nil
}

// CNFGadget builds the fixed FO(<) query and clause database of Thm 6.3:
//
//	q = ∀p̄,n̄ . C(p1,n1,p2,n2,p3,n3) → (p1 > n1 ∨ p2 > n2 ∨ p3 > n3)
//
// Then μ(q, D_ψ) = #ψ/2ⁿ for ψ read as a 3CNF; in particular ψ is
// satisfiable iff μ > 0, which is the NP-hardness behind the
// no-FPRAS-for-FO(<) result.
func CNFGadget(f Formula3) (*fo.Query, *db.Database, error) {
	d, err := gadgetDB(f)
	if err != nil {
		return nil, nil, err
	}
	q := fo.MustParseQuery(`
	q() := forall p1:num, n1:num, p2:num, n2:num, p3:num, n3:num .
	    C(p1, n1, p2, n2, p3, n3) -> (p1 > n1 or p2 > n2 or p3 > n3)
	`)
	return q, d, nil
}
