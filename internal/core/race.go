package core

import (
	"cmp"
	"math"
	"sort"
)

// This file holds the statistical machinery of the adaptive top-k race
// (see adaptive.go for the controller): empirical-Bernstein confidence
// intervals over the AFPRAS hit counts, and the per-round ranking
// decisions — which candidates are provably in or out of the top k given
// the current intervals.

// ebHalfwidth is the confidence halfwidth of a Bernoulli mean estimated
// from t samples with `hits` successes, at per-statement failure
// probability δ' where logTerm = ln(2/δ'): the minimum of the
// empirical-Bernstein bound (Maurer–Pontil; sharp when the empirical
// variance p̂(1-p̂) is small, i.e. for near-certain or near-impossible
// candidates) and the Hoeffding bound (sharp near p̂ = 1/2). Both hold
// with probability ≥ 1-δ', so taking the minimum does too up to a union
// bound the race's δ' budget absorbs.
func ebHalfwidth(hits, t int, logTerm float64) float64 {
	ft := float64(t)
	hw := math.Sqrt(logTerm / (2 * ft)) // Hoeffding
	if t > 1 {
		p := float64(hits) / ft
		v := p * (1 - p)
		eb := math.Sqrt(2*v*logTerm/ft) + 7*logTerm/(3*(ft-1))
		if eb < hw {
			hw = eb
		}
	}
	return hw
}

// aheadOf reports the race's "j is provably ahead of i" relation on
// confidence intervals: j's interval lies entirely above i's, or touches
// it exactly and j precedes i in candidate order. The tie clause makes
// the relation agree with the final ranking by (value desc, index asc) on
// exact point intervals — a query whose candidates are all certain
// (μ = 1) therefore resolves to the first k candidates in derivation
// order at round zero, exactly the legacy LIMIT semantics, with zero
// samples drawn. The relation is acyclic: along any chain lo only
// decreases, and on equality the index strictly decreases.
//
// The equality clause goes through cmp.Compare: identical to == for
// every value the race produces (cmp orders -0 and +0 equal, like ==),
// but total — a NaN endpoint cannot make the relation silently
// intransitive.
func aheadOf(loJ, hiI float64, j, i int) bool {
	c := cmp.Compare(loJ, hiI)
	return c > 0 || (c == 0 && j < i)
}

// boundPair is one interval endpoint tagged with its candidate index,
// sorted by (value, index) so rankCounts can batch the aheadOf counting.
type boundPair struct {
	v   float64
	idx int
}

// rankCounts computes, for every candidate i over the current intervals
// [lo[i], hi[i]]:
//
//	ahead[i]  = #{j ≠ i : aheadOf(j, i)}   — candidates provably ahead
//	behind[i] = #{j ≠ i : aheadOf(i, j)}   — candidates i is provably ahead of
//
// A candidate with ahead[i] ≥ k cannot be in the top k; one with
// behind[i] ≥ n-k must be. Sorting both endpoint sets once makes each
// count two binary searches, O(n log n) per round instead of the naive
// O(n²) pairwise sweep.
func rankCounts(lo, hi []float64, ahead, behind []int) {
	n := len(lo)
	los := make([]boundPair, 0, n)
	his := make([]boundPair, 0, n)
	for i := 0; i < n; i++ {
		los = append(los, boundPair{lo[i], i})
		his = append(his, boundPair{hi[i], i})
	}
	less := func(s []boundPair) func(a, b int) bool {
		return func(a, b int) bool {
			// cmp.Compare keeps the comparator a strict weak ordering even
			// for NaN endpoints (see aheadOf).
			if c := cmp.Compare(s[a].v, s[b].v); c != 0 {
				return c < 0
			}
			return s[a].idx < s[b].idx
		}
	}
	sort.Slice(los, less(los))
	sort.Slice(his, less(his))

	for i := 0; i < n; i++ {
		// ahead[i]: js with lo_j > hi_i, plus js with lo_j == hi_i and j < i.
		v := hi[i]
		gt := len(los) - sort.Search(len(los), func(x int) bool { return los[x].v > v })
		eqFrom := sort.Search(len(los), func(x int) bool { return los[x].v >= v })
		eqTo := len(los) - gt
		// Within the equal-value run, pairs are sorted by index.
		ties := sort.Search(eqTo-eqFrom, func(x int) bool { return los[eqFrom+x].idx >= i })
		ahead[i] = gt + ties

		// behind[i]: js with hi_j < lo_i, plus js with hi_j == lo_i and j > i.
		v = lo[i]
		lt := sort.Search(len(his), func(x int) bool { return his[x].v >= v })
		eqTo2 := sort.Search(len(his), func(x int) bool { return his[x].v > v })
		ties2 := (eqTo2 - lt) - sort.Search(eqTo2-lt, func(x int) bool { return his[lt+x].idx > i })
		behind[i] = lt + ties2
	}
}
