package db

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

func indexTestDB(t *testing.T) *Database {
	t.Helper()
	s := schema.MustNew(schema.MustRelation("R",
		schema.Column{Name: "k", Type: schema.Base},
		schema.Column{Name: "x", Type: schema.Num}))
	d := New(s)
	d.MustInsert("R", value.Base("a"), value.Num(1))
	d.MustInsert("R", value.Base("b"), value.Num(2))
	d.MustInsert("R", value.Base("a"), value.Num(3))
	d.MustInsert("R", value.NullBase(0), value.Num(4))
	return d
}

func TestIndexGroupsAndNullIdentity(t *testing.T) {
	d := indexTestDB(t)
	ix := d.Index("R", 0)
	if got := ix[value.Base("a")]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("a → %v, want [0 2] in insertion order", got)
	}
	if got := ix[value.Base("b")]; len(got) != 1 || got[0] != 1 {
		t.Errorf("b → %v", got)
	}
	// A marked null indexes only with itself (Prop 5.2's regime).
	if got := ix[value.NullBase(0)]; len(got) != 1 || got[0] != 3 {
		t.Errorf("⊥0 → %v", got)
	}
	if got := ix[value.NullBase(1)]; got != nil {
		t.Errorf("⊥1 → %v, want no entry", got)
	}
	// Cached on second call.
	if &d.Index("R", 0)[value.Base("a")][0] != &ix[value.Base("a")][0] {
		t.Error("index rebuilt on second call")
	}
}

func TestIndexInvalidatedOnInsert(t *testing.T) {
	d := indexTestDB(t)
	_ = d.Index("R", 0)
	d.MustInsert("R", value.Base("a"), value.Num(5))
	ix := d.Index("R", 0)
	if got := ix[value.Base("a")]; len(got) != 3 || got[2] != 4 {
		t.Errorf("after insert: a → %v, want [0 2 4]", got)
	}
}

func TestTuplesDefensiveCopy(t *testing.T) {
	d := indexTestDB(t)
	ts := d.Tuples("R")
	ts[0][0] = value.Base("corrupted")
	ts[1] = nil
	if d.Row("R", 0)[0] != value.Base("a") {
		t.Error("mutating Tuples result corrupted the database")
	}
	if d.Len("R") != 4 {
		t.Errorf("Len = %d", d.Len("R"))
	}
	n := 0
	for tup := range d.All("R") {
		if len(tup) != 2 {
			t.Errorf("row %d = %v", n, tup)
		}
		n++
	}
	if n != 4 {
		t.Errorf("All yielded %d rows", n)
	}
	if d.Tuples("Nope") != nil {
		t.Error("unknown relation should yield nil")
	}
}
