package core

import (
	"runtime"
	"sync"

	"repro/internal/realfmla"
)

// MeasureBatch computes measures for many formulas concurrently — the
// shape of the experiment pipeline, where every candidate tuple of a SQL
// result needs its own confidence level. Engines are not safe for
// concurrent use, so each formula gets its own engine, seeded
// deterministically from the parent options and the formula's index:
// results are identical to a sequential run regardless of scheduling.
// A nil error slice entry means the corresponding result is valid.
func MeasureBatch(opts Options, phis []realfmla.Formula, eps, delta float64) ([]Result, []error) {
	n := len(phis)
	results := make([]Result, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	o := opts.withDefaults()
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				iopts := o
				iopts.Seed = o.Seed + int64(i)*1_000_003
				if iopts.Workers == 0 {
					// The batch pool is already GOMAXPROCS wide; don't nest
					// a full sampling fan-out inside every engine. Values
					// are Workers-independent, so this only affects
					// scheduling. An explicit Workers setting is honored.
					iopts.Workers = 1
				}
				results[i], errs[i] = New(iopts).MeasureFormula(phis[i], eps, delta)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return results, errs
}
