// Package wire defines the HTTP/JSON wire protocol spoken between the
// arithdb server (internal/server, cmd/arithdbd) and its clients
// (internal/client, arithdb -connect).
//
// The protocol is designed so a round trip is lossless: a client that
// decodes a response reconstructs the exact value.Tuple and core.Result
// a direct Session call would have produced, bit for bit. Numerical
// constants therefore travel as shortest-round-trip decimal strings
// (which also carry NaN, ±Inf and -0, none of which survive a bare JSON
// number), and exact rational measures carry their numerator/denominator
// text alongside the float.
package wire

import (
	"fmt"
	"math/big"
	"strconv"

	"repro/internal/core"
	"repro/internal/value"
)

// Value kinds on the wire.
const (
	KindBase     = "base"      // base-sort constant (Str)
	KindNum      = "num"       // numerical constant (Num)
	KindBaseNull = "base-null" // marked base null ⊥id (ID)
	KindNumNull  = "num-null"  // marked numerical null ⊤id (ID)
)

// Value is one database value on the wire.
type Value struct {
	Kind string `json:"kind"`
	// Str is the payload of a base constant.
	Str string `json:"str,omitempty"`
	// Num is the payload of a numerical constant, formatted with
	// strconv.FormatFloat(v, 'g', -1, 64): decodes to the identical bits,
	// including -0, and renders NaN and ±Inf where JSON numbers cannot.
	Num string `json:"num,omitempty"`
	// ID is the identifier of a marked null.
	ID int `json:"id,omitempty"`
}

// FromValue encodes a database value.
func FromValue(v value.Value) Value {
	switch v.Kind() {
	case value.BaseConst:
		return Value{Kind: KindBase, Str: v.Str()}
	case value.NumConst:
		return Value{Kind: KindNum, Num: strconv.FormatFloat(v.Float(), 'g', -1, 64)}
	case value.BaseNull:
		return Value{Kind: KindBaseNull, ID: v.NullID()}
	default:
		return Value{Kind: KindNumNull, ID: v.NullID()}
	}
}

// Value decodes the wire value.
func (w Value) Value() (value.Value, error) {
	switch w.Kind {
	case KindBase:
		return value.Base(w.Str), nil
	case KindNum:
		f, err := strconv.ParseFloat(w.Num, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("wire: bad numerical constant %q", w.Num)
		}
		return value.Num(f), nil
	case KindBaseNull:
		return value.NullBase(w.ID), nil
	case KindNumNull:
		return value.NullNum(w.ID), nil
	}
	return value.Value{}, fmt.Errorf("wire: unknown value kind %q", w.Kind)
}

// FromTuple encodes a tuple.
func FromTuple(t value.Tuple) []Value {
	out := make([]Value, len(t))
	for i, v := range t {
		out[i] = FromValue(v)
	}
	return out
}

// ToTuple decodes a tuple.
func ToTuple(ws []Value) (value.Tuple, error) {
	out := make(value.Tuple, len(ws))
	for i, w := range ws {
		v, err := w.Value()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Measure is a core.Result on the wire.
type Measure struct {
	// Value round-trips exactly: encoding/json emits the shortest decimal
	// that parses back to the identical float64 (μ is always finite).
	Value float64 `json:"value"`
	// Rat is the exact rational value as "p/q" when the method is exact
	// over the rationals.
	Rat       string `json:"rat,omitempty"`
	Exact     bool   `json:"exact"`
	Method    string `json:"method"`
	Samples   int    `json:"samples"`
	K         int    `json:"k"`
	RelevantK int    `json:"relevantK"`
	// SamplesDrawn and Rounds carry the adaptive race's per-candidate
	// spend (core.Result); zero — and omitted — on non-adaptive paths.
	SamplesDrawn int `json:"samplesDrawn,omitempty"`
	Rounds       int `json:"rounds,omitempty"`
}

// FromResult encodes a measure.
func FromResult(r core.Result) Measure {
	m := Measure{
		Value:        r.Value,
		Exact:        r.Exact,
		Method:       string(r.Method),
		Samples:      r.Samples,
		K:            r.K,
		RelevantK:    r.RelevantK,
		SamplesDrawn: r.SamplesDrawn,
		Rounds:       r.Rounds,
	}
	if r.Rat != nil {
		m.Rat = r.Rat.RatString()
	}
	return m
}

// Result decodes the measure.
func (m Measure) Result() (core.Result, error) {
	r := core.Result{
		Value:        m.Value,
		Exact:        m.Exact,
		Method:       core.Method(m.Method),
		Samples:      m.Samples,
		K:            m.K,
		RelevantK:    m.RelevantK,
		SamplesDrawn: m.SamplesDrawn,
		Rounds:       m.Rounds,
	}
	if m.Rat != "" {
		rat, ok := new(big.Rat).SetString(m.Rat)
		if !ok {
			return core.Result{}, fmt.Errorf("wire: bad rational %q", m.Rat)
		}
		r.Rat = rat
	}
	return r, nil
}

// InsertRequest is the body of POST /v1/insert: a batch of tuples for one
// relation. The batch is atomic — the server validates every tuple before
// appending the first one, so either the whole batch commits (as one
// database version step) or nothing changes.
type InsertRequest struct {
	Relation string    `json:"relation"`
	Tuples   [][]Value `json:"tuples"`
}

// InsertResponse reports a committed insert batch.
type InsertResponse struct {
	// Inserted is the number of tuples committed by this request.
	Inserted int `json:"inserted"`
	// Tuples is the relation's row count after the commit.
	Tuples int `json:"tuples"`
	// Version is the database version after the commit; queries admitted
	// afterwards observe at least this version.
	Version int64 `json:"version"`
}

// MeasureRequest is the body of POST /v1/sql/measure.
type MeasureRequest struct {
	SQL string `json:"sql"`
	// Eps/Delta are the additive error and failure probability; zero
	// values take the server defaults. The server enforces floors so one
	// request cannot demand unbounded sampling work.
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	// Stream requests incremental delivery (NDJSON events, or SSE when
	// the request prefers text/event-stream) instead of one JSON body.
	Stream bool `json:"stream,omitempty"`
	// IncludePhi adds each candidate's constraint, rendered as text, to
	// the response.
	IncludePhi bool `json:"includePhi,omitempty"`
}

// MeasuredCandidate is one measured candidate answer on the wire.
type MeasuredCandidate struct {
	Tuple   []Value `json:"tuple"`
	Phi     string  `json:"phi,omitempty"`
	Measure Measure `json:"measure"`
}

// MeasureResponse is the non-streaming response of POST /v1/sql/measure
// (and the payload part of an experiment run).
type MeasureResponse struct {
	Candidates  []MeasuredCandidate `json:"candidates"`
	Count       int                 `json:"count"`
	Derivations int                 `json:"derivations"`
	NullIDs     []int               `json:"nullIds,omitempty"`
	// SamplesDrawn and Rounds report the adaptive top-k race's total
	// sampling spend and round count for this query (core.SQLMeasured);
	// omitted when the query did not route through the race.
	SamplesDrawn int `json:"samplesDrawn,omitempty"`
	Rounds       int `json:"rounds,omitempty"`
}

// Stream event kinds.
const (
	EventCandidate = "candidate"
	EventDone      = "done"
	EventError     = "error"
)

// Event is one element of a streaming response. Candidates arrive in
// candidate order with consecutive Idx from 0; the stream ends with
// exactly one "done" (carrying the run summary) or one "error" event.
type Event struct {
	Event string `json:"event"`
	// EventCandidate fields.
	Idx       int                `json:"idx"`
	Candidate *MeasuredCandidate `json:"candidate,omitempty"`
	// EventDone fields. SamplesDrawn/Rounds summarize the adaptive race
	// as in MeasureResponse.
	Count        int   `json:"count"`
	Derivations  int   `json:"derivations"`
	NullIDs      []int `json:"nullIds,omitempty"`
	SamplesDrawn int   `json:"samplesDrawn,omitempty"`
	Rounds       int   `json:"rounds,omitempty"`
	// EventError fields.
	Error string `json:"error,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is a stable machine-readable cause: "bad-request", "busy",
	// "shutting-down", "internal".
	Code string `json:"code,omitempty"`
}

// Error codes.
const (
	CodeBadRequest   = "bad-request"
	CodeBusy         = "busy"
	CodeShuttingDown = "shutting-down"
	CodeInternal     = "internal"
	CodeReadOnly     = "read-only"
	// CodeDegraded marks writes rejected because the durability layer
	// tripped (WAL append or fsync failure): the server keeps serving
	// reads but refuses to acknowledge writes it could not make durable.
	// Unlike "busy" this does not clear on its own — an operator must
	// restart the server — so clients should not retry it.
	CodeDegraded = "degraded"
	// CodeNotPrimary marks writes sent to a read replica. The write was
	// never attempted; clients must send it to the primary. Retrying here
	// is pointless — replicas do not promote themselves.
	CodeNotPrimary = "not-primary"
	// CodeLogTruncated marks a replication log read whose records were
	// folded into a checkpoint and truncated: the replica must
	// re-bootstrap from GET /v1/replication/checkpoint, which covers
	// everything that was dropped.
	CodeLogTruncated = "log-truncated"
)

// ColumnInfo / RelationInfo / InfoResponse describe the served database
// (GET /v1/info).
type ColumnInfo struct {
	Name string `json:"name"`
	Type string `json:"type"` // "base" | "num"
}

type RelationInfo struct {
	Name    string       `json:"name"`
	Columns []ColumnInfo `json:"columns"`
}

type InfoResponse struct {
	Relations []RelationInfo `json:"relations"`
	Tuples    int            `json:"tuples"`
	BaseNulls int            `json:"baseNulls"`
	NumNulls  int            `json:"numNulls"`
	// ReadOnly reports that the server rejects writes — either configured
	// that way, or degraded after a durability failure.
	ReadOnly bool `json:"readOnly,omitempty"`
	// Degraded carries the durability-failure reason when the server
	// tripped to read-only (see CodeDegraded); empty otherwise.
	Degraded string `json:"degraded,omitempty"`
	// Sampling aggregates the server's measurement workload since start;
	// nil before the first measured query.
	Sampling *SamplingStats `json:"sampling,omitempty"`
	// Replication reports the server's place in a replication topology;
	// nil on a standalone in-memory server.
	Replication *ReplicationInfo `json:"replication,omitempty"`
	// Sharding reports the hash-sharded topology (arithdbd -shards=N);
	// nil on an unsharded server.
	Sharding *ShardingInfo `json:"sharding,omitempty"`
}

// ShardingInfo is the hash-sharding block of InfoResponse: the shard
// count and the per-shard row counts the hash split actually achieved.
type ShardingInfo struct {
	NumShards  int   `json:"numShards"`
	ShardSizes []int `json:"shardSizes"`
}

// ReplicationInfo is the WAL-position block of InfoResponse and
// HealthResponse: where this server stands in the replication stream.
type ReplicationInfo struct {
	// Role is "primary" (serves the replication log) or "replica"
	// (replays it).
	Role string `json:"role"`
	// WalSeq is the primary's durable sequence number: the last batch
	// that was WAL-appended and fsync'd.
	WalSeq uint64 `json:"walSeq,omitempty"`
	// CheckpointSeq is the sequence the primary's newest durable
	// checkpoint covers (replicas bootstrapping now start here).
	CheckpointSeq uint64 `json:"checkpointSeq,omitempty"`
	// LastAppliedSeq is the replica's replay frontier: every batch up to
	// and including it is applied and locally durable.
	LastAppliedSeq uint64 `json:"lastAppliedSeq,omitempty"`
	// PrimarySeq is the primary's durable seq as last observed by the
	// replica (0 before the first contact).
	PrimarySeq uint64 `json:"primarySeq,omitempty"`
	// ReplicaLag = max(0, PrimarySeq - LastAppliedSeq): how many committed
	// batches the replica has not yet applied, by last observation. Reads
	// served here are at most this stale, in batches.
	ReplicaLag uint64 `json:"replicaLag"`
}

// HealthResponse is the body of GET /healthz. Status is "ok",
// "degraded", or "draining"; the WAL-position fields mirror
// ReplicationInfo so load balancers and failover clients can route on
// staleness without a second request.
type HealthResponse struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
	Role   string `json:"role,omitempty"`
	WalSeq uint64 `json:"walSeq,omitempty"`
	// LastAppliedSeq / ReplicaLag are set on replicas (see ReplicationInfo).
	LastAppliedSeq uint64  `json:"lastAppliedSeq,omitempty"`
	ReplicaLag     *uint64 `json:"replicaLag,omitempty"`
}

// ReplCheckpointHeader is the first NDJSON line of
// GET /v1/replication/checkpoint: the covered sequence number and how
// many file lines follow. The stream ends with a ReplFile line whose
// Done is true; a reader that never sees it received a torn stream and
// must re-fetch.
type ReplCheckpointHeader struct {
	Seq   uint64 `json:"seq"`
	Files int    `json:"files"`
}

// ReplFile is one checkpoint file line (Data is base64 under
// encoding/json), or the stream terminator when Done is set. CRC is
// wal.Checksum(header.Seq, Data): the content bound to the checkpoint it
// belongs to.
type ReplFile struct {
	Name string `json:"name,omitempty"`
	Data []byte `json:"data,omitempty"`
	CRC  uint32 `json:"crc,omitempty"`
	Done bool   `json:"done,omitempty"`
}

// ReplRecord is one NDJSON line of GET /v1/replication/log: either a
// shipped WAL record (Seq/Payload/CRC, with CRC = wal.Checksum(Seq,
// Payload), the exact on-disk framing checksum) or a heartbeat
// (Heartbeat true, no payload). Every line carries PrimarySeq, the
// primary's durable frontier at write time, so replicas track lag even
// while idle.
type ReplRecord struct {
	Heartbeat  bool   `json:"hb,omitempty"`
	Seq        uint64 `json:"seq,omitempty"`
	Payload    []byte `json:"payload,omitempty"`
	CRC        uint32 `json:"crc,omitempty"`
	PrimarySeq uint64 `json:"primarySeq"`
}

// SamplingStats is the server-lifetime sampling telemetry of InfoResponse:
// how many measured queries ran, how many routed through the adaptive
// top-k race, and the cumulative sampling spend the race reported.
type SamplingStats struct {
	// Runs counts completed measure requests (buffered and streaming).
	Runs int64 `json:"runs"`
	// AdaptiveRuns counts the subset that routed through the adaptive race
	// (LIMIT-k queries without the escape hatch).
	AdaptiveRuns int64 `json:"adaptiveRuns"`
	// SamplesDrawn and Rounds accumulate the race's reported spend.
	SamplesDrawn int64 `json:"samplesDrawn"`
	Rounds       int64 `json:"rounds"`
}

// Experiment is one of the paper's decision-support workloads
// (GET /v1/experiments).
type Experiment struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	SQL  string `json:"sql"`
}

// ExperimentsResponse lists the available experiments.
type ExperimentsResponse struct {
	Experiments []Experiment `json:"experiments"`
}

// ExperimentRunRequest is the body of POST /v1/experiments/run.
type ExperimentRunRequest struct {
	ID    string  `json:"id"`
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
}

// ExperimentRunResponse is a measured experiment with its wall time.
type ExperimentRunResponse struct {
	MeasureResponse
	Seconds float64 `json:"seconds"`
}
