// Package server is the multi-user HTTP/JSON front of the arithdb
// pipeline: one shared versioned Database, one engine (the Session unit)
// per request pinned to a copy-on-write snapshot of the database, and a
// wire protocol around MeasureSQL plus a write endpoint.
//
// Endpoints:
//
//	GET  /healthz              liveness (503 while draining)
//	GET  /v1/info              schema and null inventory of the served DB
//	POST /v1/sql/measure       fused measure pipeline; set "stream": true
//	                           for incremental top-k delivery (NDJSON, or
//	                           SSE under Accept: text/event-stream)
//	POST /v1/insert            atomic tuple-batch insert into one relation
//	                           (rejected with 403 when Config.ReadOnly)
//	GET  /v1/experiments       the paper's Figure 1 workloads
//	POST /v1/experiments/run   run one workload, with wall time
//
// Writes are first-class: every measuring request pins db.Snapshot() —
// an immutable copy-on-write view behind one atomic load — for its whole
// lifetime, while inserts land on the writer through incremental index
// and inventory maintenance (internal/db), so mixed insert/query traffic
// never drops an index and never blocks a reader mid-query. Writes are
// serialized by the server and each batch is atomic: validated in full
// before the first append, committed as one version step.
//
// Responses are lossless (see package wire): a client reconstructs the
// exact tuples and measures a direct Session call over the same snapshot
// would return, bit for bit, regardless of how many other clients are
// hammering the server — per-candidate seeding makes measurement
// deterministic, and the shared state (equality indexes, inventories,
// compiled-kernel cache) is concurrency-safe and value-neutral. The
// compiled-kernel cache is keyed by formula identity, not database
// version, so it survives snapshot swaps: candidate constraints an
// insert did not change stay compiled across versions.
//
// Admission control: the measuring endpoints pass through a counting
// semaphore (MaxInflight) with a bounded queue wait (QueueTimeout);
// saturation degrades into structured 429s, shutdown into 503s, and
// per-request engines get a bounded measurement-pool budget
// (Engine.PoolWorkers) so no single query monopolizes the machine.
// Request bodies, SQL length, and the eps/delta sampling floors are
// likewise bounded so malformed or adversarial requests fail fast with
// structured errors.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/shard"
	"repro/internal/sqlast"
	"repro/internal/sqlfront"
	"repro/internal/value"
	"repro/internal/wire"
)

// Config configures a Server. DB is required; everything else has
// production-safe defaults.
type Config struct {
	// DB is the shared database: the writer the insert endpoint commits
	// to, and the source of the per-request snapshots every read pins.
	DB *db.Database
	// Source, when set, supplies the database to snapshot instead of DB:
	// replica mode uses it so a mid-run re-bootstrap (the primary
	// checkpointed past the replica's cursor) can swap in the freshly
	// adopted store without restarting the server. Requests still pin one
	// snapshot each; only admission-time reads observe the swap.
	Source func() *db.Database
	// Sharded, when set, serves a hash-sharded store instead of DB/
	// Source: inserts scatter rows across the shards and measure
	// queries run through the deterministic scatter-gather coordinator
	// (results are bit-identical to an unsharded server holding the
	// same rows — see internal/shard). Mutually exclusive with DB,
	// Source, Durable, Replication and Replica: the in-process sharded
	// store is in-memory, and durability/replication compose per shard
	// at the fleet level (one arithdbd per shard) instead.
	Sharded *shard.Store
	// Replication, when set, enables the primary-side replication
	// endpoints (GET /v1/replication/checkpoint and /log) over the
	// durability layer. *wal.Store implements it.
	Replication Replication
	// Replica, when set, marks this server a read replica: inserts are
	// rejected with code "not-primary" and /v1/info + /healthz surface
	// the catchup position (lastAppliedSeq, replicaLag).
	Replica ReplicaStatus
	// ReplHeartbeat is the idle heartbeat period of the replication log
	// tail (lag visibility + liveness). Default 5s.
	ReplHeartbeat time.Duration
	// ReadOnly disables POST /v1/insert (403 with code "read-only").
	ReadOnly bool
	// Durable, when set, is the durability layer (internal/wal) inserts
	// commit through instead of writing DB directly: the batch is WAL-
	// appended and fsync'd before it is applied to DB (which must be the
	// store's own database, store.DB()). When the layer reports itself
	// degraded — a WAL append or fsync failed — the server turns
	// read-only: inserts get structured 503s with code "degraded" while
	// reads keep flowing off the in-memory snapshots.
	Durable Durability
	// MaxInsertTuples bounds one insert batch. Default 4096.
	MaxInsertTuples int
	// Engine is the per-request engine configuration. A fixed Seed makes
	// every response deterministic. PoolWorkers is the per-request
	// measurement worker budget; 0 divides GOMAXPROCS by MaxInflight.
	Engine core.Options
	// MaxInflight bounds concurrently measuring requests; further
	// requests queue. 0 uses max(2, GOMAXPROCS).
	MaxInflight int
	// QueueTimeout bounds how long an admitted-but-queued request waits
	// for a slot before a 429. 0 uses 2s.
	QueueTimeout time.Duration
	// DefaultEps / DefaultDelta fill requests that omit eps/delta.
	// Defaults: 0.01 / 0.05.
	DefaultEps, DefaultDelta float64
	// MinEps / MinDelta are request floors (sampling cost grows as ε⁻²,
	// so an unbounded request could demand unbounded work).
	// Defaults: 0.005 / 1e-6.
	MinEps, MinDelta float64
	// MaxBodyBytes / MaxSQLLen bound request size. Defaults: 1 MiB / 64 KiB.
	MaxBodyBytes int64
	MaxSQLLen    int
	// MaxRelations bounds the FROM clause: the join space grows
	// exponentially in it, so an unbounded query could demand unbounded
	// work from a short request. Default 16.
	MaxRelations int
	// KernelCacheSize sizes the cross-request compiled-kernel cache.
	// 0 uses the core default (1024).
	KernelCacheSize int
	// StreamWriteTimeout bounds how long one stream event may take to
	// reach the client before the stream is aborted (a stalled reader
	// would otherwise pin its admission slot forever). Default 30s.
	StreamWriteTimeout time.Duration
}

// Durability is what the server needs from a durable write path. It is
// satisfied by *wal.Store; the interface keeps the server free of a wal
// dependency so purely in-memory deployments pay nothing.
type Durability interface {
	// InsertBatch durably commits one atomic batch: validated in full,
	// WAL-appended and fsync'd, then applied in memory.
	InsertBatch(rel string, tuples []value.Tuple) error
	// Degraded reports whether the durability layer has tripped to
	// read-only, and why.
	Degraded() (reason string, degraded bool)
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = max(2, runtime.GOMAXPROCS(0))
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.DefaultEps <= 0 {
		c.DefaultEps = 0.01
	}
	if c.DefaultDelta <= 0 {
		c.DefaultDelta = 0.05
	}
	if c.MinEps <= 0 {
		c.MinEps = 0.005
	}
	if c.MinDelta <= 0 {
		c.MinDelta = 1e-6
	}
	// The floors win over the defaults: an operator raising MinEps above
	// DefaultEps must not end up with a server whose own defaults 400.
	if c.DefaultEps < c.MinEps {
		c.DefaultEps = c.MinEps
	}
	if c.DefaultDelta < c.MinDelta {
		c.DefaultDelta = c.MinDelta
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSQLLen <= 0 {
		c.MaxSQLLen = 1 << 16
	}
	if c.MaxRelations <= 0 {
		c.MaxRelations = 16
	}
	if c.MaxInsertTuples <= 0 {
		c.MaxInsertTuples = 4096
	}
	if c.StreamWriteTimeout <= 0 {
		c.StreamWriteTimeout = 30 * time.Second
	}
	if c.ReplHeartbeat <= 0 {
		c.ReplHeartbeat = 5 * time.Second
	}
	if c.Engine.PoolWorkers <= 0 {
		c.Engine.PoolWorkers = max(1, runtime.GOMAXPROCS(0)/c.MaxInflight)
	}
	return c
}

// Server is an http.Handler serving the arithdb wire protocol.
type Server struct {
	cfg     Config
	kernels *core.Kernels
	gate    *gate
	mux     *http.ServeMux

	// writeMu serializes inserts: the database requires one writer at a
	// time (readers are unaffected — they hold snapshots).
	writeMu sync.Mutex

	// Sampling telemetry, aggregated over the server lifetime and
	// reported by GET /v1/info (wire.SamplingStats). runs counts
	// completed measure requests; adaptiveRuns the subset whose query
	// reported adaptive-race spend; samplesDrawn/rounds accumulate it.
	runs         atomic.Int64
	adaptiveRuns atomic.Int64
	samplesDrawn atomic.Int64
	rounds       atomic.Int64

	shutdownOnce sync.Once
	shutdownErr  error
	// stopCh is closed when Shutdown begins, so long-lived replication
	// tails (which outlive any single commit) terminate and let the HTTP
	// server drain.
	stopCh chan struct{}

	// testHookAdmitted, when set, runs while a measure request holds its
	// admission slot, before any work — tests use it to hold the pool
	// saturated deterministically.
	testHookAdmitted func()
}

// New returns a server over the shared database.
func New(cfg Config) (*Server, error) {
	if cfg.Sharded != nil {
		if cfg.DB != nil || cfg.Source != nil {
			return nil, errors.New("server: Config.Sharded is exclusive with DB/Source")
		}
		if cfg.Durable != nil || cfg.Replication != nil || cfg.Replica != nil {
			return nil, errors.New("server: Config.Sharded does not compose with Durable/Replication/Replica; run one durable arithdbd per shard instead")
		}
	} else if cfg.DB == nil && cfg.Source == nil {
		return nil, errors.New("server: Config.DB (or Config.Source) is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		kernels: core.NewKernels(cfg.KernelCacheSize),
		gate:    newGate(cfg.MaxInflight),
		mux:     http.NewServeMux(),
		stopCh:  make(chan struct{}),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/info", s.handleInfo)
	s.mux.HandleFunc("POST /v1/sql/measure", s.handleMeasure)
	s.mux.HandleFunc("POST /v1/insert", s.handleInsert)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /v1/experiments/run", s.handleExperimentRun)
	if cfg.Replication != nil {
		s.mux.HandleFunc("GET /v1/replication/checkpoint", s.handleReplCheckpoint)
		s.mux.HandleFunc("GET /v1/replication/log", s.handleReplLog)
	}
	return s, nil
}

// snapshot pins the database view one request runs against. In sharded
// mode it is the gathered (merged, cached-per-version) snapshot — the
// measure paths scatter instead and never call it.
func (s *Server) snapshot() *db.Database {
	if s.cfg.Sharded != nil {
		g, err := s.cfg.Sharded.Gather()
		if err != nil {
			// Unreachable short of a store invariant failure (gather
			// re-inserts already-validated rows); serve the schema shape.
			return db.New(s.cfg.Sharded.Schema())
		}
		return g
	}
	if s.cfg.Source != nil {
		return s.cfg.Source().Snapshot()
	}
	return s.cfg.DB.Snapshot()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown stops admitting new measure requests and inserts (they get
// 503s) and waits until the in-flight ones drain or ctx expires: the
// gate reclaims every measuring slot, and acquiring the write lock
// flushes out any insert that passed its drain check before the gate
// closed. The HTTP listener itself is the caller's to close
// (http.Server.Shutdown).
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		close(s.stopCh)
		s.shutdownErr = s.gate.shutdown(ctx)
		s.writeMu.Lock()
		//lint:ignore SA2001 acquiring the lock is the synchronization:
		// it waits out the last in-flight insert.
		s.writeMu.Unlock()
	})
	return s.shutdownErr
}

// engine builds the per-request engine: fresh (engines are
// single-goroutine) but sharing the server-wide compiled-kernel cache.
func (s *Server) engine() *core.Engine {
	eng := core.New(s.cfg.Engine)
	eng.UseKernels(s.kernels)
	return eng
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, wire.ErrorResponse{Error: msg, Code: code})
}

// admissionError maps gate errors onto 429/503.
func (s *Server) admissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, wire.CodeBusy, err.Error())
	case errors.Is(err, ErrShuttingDown):
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeShuttingDown, err.Error())
	default: // client context expired while queued
		s.writeError(w, 499, wire.CodeBadRequest, err.Error())
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.gate.closed.Load() {
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeShuttingDown, "draining")
		return
	}
	h := wire.HealthResponse{Status: "ok"}
	// A degraded server is still alive — reads keep working — so healthz
	// stays 200, but the status flips so operators and load balancers can
	// route writes elsewhere.
	if reason, degraded := s.degraded(); degraded {
		h.Status, h.Reason = "degraded", reason
	}
	// WAL position: lets a balancer (or the failover client) see at a
	// glance how far this node's durable/applied frontier has advanced.
	switch {
	case s.cfg.Replica != nil:
		h.Role = "replica"
		h.LastAppliedSeq = s.cfg.Replica.LastAppliedSeq()
		lag := replicaLag(s.cfg.Replica)
		h.ReplicaLag = &lag
	case s.cfg.Replication != nil:
		h.Role = "primary"
		h.WalSeq = s.cfg.Replication.Seq()
	}
	writeJSON(w, http.StatusOK, h)
}

// degraded reports the durability layer's read-only trip, if any.
func (s *Server) degraded() (string, bool) {
	if s.cfg.Durable == nil {
		return "", false
	}
	return s.cfg.Durable.Degraded()
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	d := s.snapshot()
	info := wire.InfoResponse{
		Tuples:    d.Size(),
		BaseNulls: len(d.BaseNulls()),
		NumNulls:  len(d.NumNulls()),
		ReadOnly:  s.cfg.ReadOnly,
	}
	if reason, degraded := s.degraded(); degraded {
		info.ReadOnly = true
		info.Degraded = reason
	}
	switch {
	case s.cfg.Replica != nil:
		info.ReadOnly = true
		info.Replication = &wire.ReplicationInfo{
			Role:           "replica",
			LastAppliedSeq: s.cfg.Replica.LastAppliedSeq(),
			PrimarySeq:     s.cfg.Replica.PrimarySeq(),
			ReplicaLag:     replicaLag(s.cfg.Replica),
		}
	case s.cfg.Replication != nil:
		info.Replication = &wire.ReplicationInfo{
			Role:          "primary",
			WalSeq:        s.cfg.Replication.Seq(),
			CheckpointSeq: s.cfg.Replication.CheckpointSeq(),
		}
	}
	if s.cfg.Sharded != nil {
		info.Sharding = &wire.ShardingInfo{
			NumShards:  s.cfg.Sharded.NumShards(),
			ShardSizes: s.cfg.Sharded.ShardSizes(),
		}
	}
	if runs := s.runs.Load(); runs > 0 {
		info.Sampling = &wire.SamplingStats{
			Runs:         runs,
			AdaptiveRuns: s.adaptiveRuns.Load(),
			SamplesDrawn: s.samplesDrawn.Load(),
			Rounds:       s.rounds.Load(),
		}
	}
	for _, rel := range d.Schema().Relations() {
		ri := wire.RelationInfo{Name: rel.Name}
		for _, col := range rel.Columns {
			ri.Columns = append(ri.Columns, wire.ColumnInfo{Name: col.Name, Type: col.Type.String()})
		}
		info.Relations = append(info.Relations, ri)
	}
	writeJSON(w, http.StatusOK, info)
}

// decodeBody reads a bounded JSON body, rejecting trailing garbage.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, status, wire.CodeBadRequest, "bad request body: "+err.Error())
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// sampling validates and defaults an (eps, delta) pair: range checks go
// through the shared core validator — so the server rejects exactly the
// inputs every library entry point rejects, with the same message — then
// the server floors apply on top.
func (s *Server) sampling(w http.ResponseWriter, eps, delta float64) (float64, float64, bool) {
	if eps == 0 {
		eps = s.cfg.DefaultEps
	}
	if delta == 0 {
		delta = s.cfg.DefaultDelta
	}
	switch {
	case core.ValidateEpsDelta(eps, delta) != nil:
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			core.ValidateEpsDelta(eps, delta).Error())
	case eps < s.cfg.MinEps:
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Sprintf("eps %g below the server floor %g", eps, s.cfg.MinEps))
	case delta < s.cfg.MinDelta:
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Sprintf("delta %g below the server floor %g", delta, s.cfg.MinDelta))
	default:
		return eps, delta, true
	}
	return 0, 0, false
}

// parseSQL validates and parses the request SQL.
func (s *Server) parseSQL(w http.ResponseWriter, src string) (*sqlast.Query, bool) {
	if src == "" {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, "sql is required")
		return nil, false
	}
	if len(src) > s.cfg.MaxSQLLen {
		s.writeError(w, http.StatusRequestEntityTooLarge, wire.CodeBadRequest,
			fmt.Sprintf("sql longer than the server limit of %d bytes", s.cfg.MaxSQLLen))
		return nil, false
	}
	q, err := sqlfront.Parse(src)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return nil, false
	}
	if len(q.From) > s.cfg.MaxRelations {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Sprintf("FROM lists %d relations, above the server limit of %d", len(q.From), s.cfg.MaxRelations))
		return nil, false
	}
	return q, true
}

// recordRun folds one completed measure request into the server's
// sampling telemetry. rounds > 0 identifies an adaptive-race run: a race
// that resolved purely exactly reports zero rounds and is
// indistinguishable from (and as cheap as) a fixed exact run.
func (s *Server) recordRun(samplesDrawn, rounds int) {
	s.runs.Add(1)
	if rounds > 0 {
		s.adaptiveRuns.Add(1)
		s.samplesDrawn.Add(int64(samplesDrawn))
		s.rounds.Add(int64(rounds))
	}
}

func toWireCandidate(c core.MeasuredCandidate, includePhi bool) wire.MeasuredCandidate {
	out := wire.MeasuredCandidate{
		Tuple:   wire.FromTuple(c.Tuple),
		Measure: wire.FromResult(c.Measure),
	}
	if includePhi {
		out.Phi = fmt.Sprint(c.Phi)
	}
	return out
}

// acquireSlot is the shared admission sequence of the measuring
// endpoints: claim a gate slot (writing the 429/503 on failure) and run
// the test hook. The caller must defer release when ok.
func (s *Server) acquireSlot(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if err := s.gate.acquire(r.Context(), s.cfg.QueueTimeout); err != nil {
		s.admissionError(w, err)
		return nil, false
	}
	if s.testHookAdmitted != nil {
		s.testHookAdmitted()
	}
	return s.gate.release, true
}

// measureSQL runs the fused pipeline for an admitted request, bound to
// the request context: a client that disconnects mid-measurement frees
// its slot promptly instead of computing results nobody reads. The
// request's engine is pinned to one database snapshot for its whole
// life, so concurrent inserts never shift the data under a running
// query.
func (s *Server) measureSQL(w http.ResponseWriter, r *http.Request, q *sqlast.Query, eps, delta float64) (*core.SQLMeasured, bool) {
	var res *core.SQLMeasured
	var err error
	if s.cfg.Sharded != nil {
		res, err = s.cfg.Sharded.MeasureSQL(r.Context(), s.engine(), q, eps, delta)
	} else {
		res, err = s.engine().MeasureSQLContext(r.Context(), q, s.snapshot(), eps, delta)
	}
	switch {
	case err == nil:
		s.recordRun(res.SamplesDrawn, res.Rounds)
		return res, true
	case r.Context().Err() != nil:
		// Client gone; best-effort status for the log, nobody reads it.
		s.writeError(w, 499, wire.CodeBadRequest, err.Error())
	default:
		// The database and engine are fixed; at this point only the query
		// can be at fault (unknown relation/column, ill-typed predicate).
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
	}
	return nil, false
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	var req wire.MeasureRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	q, ok := s.parseSQL(w, req.SQL)
	if !ok {
		return
	}
	eps, delta, ok := s.sampling(w, req.Eps, req.Delta)
	if !ok {
		return
	}
	release, ok := s.acquireSlot(w, r)
	if !ok {
		return
	}
	defer release()

	if req.Stream {
		s.streamMeasure(w, r, q, eps, delta, req.IncludePhi)
		return
	}
	res, ok := s.measureSQL(w, r, q, eps, delta)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, toMeasureResponse(res, req.IncludePhi))
}

func toMeasureResponse(res *core.SQLMeasured, includePhi bool) wire.MeasureResponse {
	out := wire.MeasureResponse{
		Count:        len(res.Candidates),
		Derivations:  res.Derivations,
		NullIDs:      res.NullIDs,
		SamplesDrawn: res.SamplesDrawn,
		Rounds:       res.Rounds,
		Candidates:   make([]wire.MeasuredCandidate, 0, len(res.Candidates)),
	}
	for _, c := range res.Candidates {
		out.Candidates = append(out.Candidates, toWireCandidate(c, includePhi))
	}
	return out
}

// streamMeasure delivers candidates incrementally as the fused pipeline
// finalizes them. Headers are written lazily with the first event, so
// errors that precede any output remain clean HTTP error responses; an
// error after partial output becomes a terminal "error" event.
func (s *Server) streamMeasure(w http.ResponseWriter, r *http.Request, q *sqlast.Query, eps, delta float64, includePhi bool) {
	ew := newEventWriter(w, strings.Contains(r.Header.Get("Accept"), "text/event-stream"),
		s.cfg.StreamWriteTimeout)
	defer ew.close()
	// A failed event write (client gone, or the stall deadline fired)
	// cancels the pipeline so remaining sampling is skipped and the
	// admission slot frees promptly instead of measuring into the void.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	deliver := func(idx int, c core.MeasuredCandidate) error {
		wc := toWireCandidate(c, includePhi)
		if err := ew.write(wire.Event{Event: wire.EventCandidate, Idx: idx, Candidate: &wc}); err != nil {
			cancel()
			return err
		}
		return nil
	}
	var info *core.SQLStreamInfo
	var err error
	if s.cfg.Sharded != nil {
		info, err = s.cfg.Sharded.MeasureSQLStream(ctx, s.engine(), q, eps, delta, deliver)
	} else {
		info, err = s.engine().MeasureSQLStream(ctx, q, s.snapshot(), eps, delta, deliver)
	}
	if err != nil {
		if !ew.started {
			status, code := http.StatusBadRequest, wire.CodeBadRequest
			if r.Context().Err() != nil {
				status = 499 // client gone before any output
			}
			s.writeError(w, status, code, err.Error())
			return
		}
		_ = ew.write(wire.Event{Event: wire.EventError, Error: err.Error()})
		return
	}
	s.recordRun(info.SamplesDrawn, info.Rounds)
	_ = ew.write(wire.Event{
		Event:        wire.EventDone,
		Count:        info.Count,
		Derivations:  info.Derivations,
		NullIDs:      info.NullIDs,
		SamplesDrawn: info.SamplesDrawn,
		Rounds:       info.Rounds,
	})
}

// eventWriter frames stream events as NDJSON lines or SSE messages and
// flushes each one so clients see candidates as they finalize. Every
// event renews a write deadline, so a stalled (open but unread)
// connection turns into a write error — which aborts the stream and
// frees its admission slot — instead of pinning the slot forever.
type eventWriter struct {
	w       http.ResponseWriter
	rc      *http.ResponseController
	timeout time.Duration
	sse     bool
	started bool
}

func newEventWriter(w http.ResponseWriter, sse bool, timeout time.Duration) *eventWriter {
	return &eventWriter{w: w, rc: http.NewResponseController(w), timeout: timeout, sse: sse}
}

func (ew *eventWriter) write(ev wire.Event) error {
	if ew.timeout > 0 {
		// Best effort: recorders and exotic writers may not support
		// deadlines; the stream still works, just without stall cutoff.
		_ = ew.rc.SetWriteDeadline(time.Now().Add(ew.timeout))
	}
	if !ew.started {
		if ew.sse {
			ew.w.Header().Set("Content-Type", "text/event-stream")
			ew.w.Header().Set("Cache-Control", "no-store")
		} else {
			ew.w.Header().Set("Content-Type", "application/x-ndjson")
		}
		ew.w.WriteHeader(http.StatusOK)
		ew.started = true
	}
	blob, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if ew.sse {
		if _, err := fmt.Fprintf(ew.w, "event: %s\ndata: %s\n\n", ev.Event, blob); err != nil {
			return err
		}
	} else {
		if _, err := ew.w.Write(append(blob, '\n')); err != nil {
			return err
		}
	}
	_ = ew.rc.Flush()
	return nil
}

// close clears the write deadline so it cannot leak into the next
// response on a keep-alive connection (net/http only resets it itself
// when Server.WriteTimeout is set).
func (ew *eventWriter) close() {
	if ew.started && ew.timeout > 0 {
		_ = ew.rc.SetWriteDeadline(time.Time{})
	}
}

// handleInsert commits one atomic tuple batch into a relation. Writes
// bypass the measuring gate (they are cheap and never sample) but are
// serialized among themselves, and the drain check runs under the write
// lock — which Shutdown acquires after the gate drains — so once
// Shutdown returns no insert is in flight and none can start: the
// database is quiescent.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Replica != nil {
		// Writes pin to the primary: a replica never accepts them, and the
		// structured code tells failover clients not to retry here.
		s.writeError(w, http.StatusForbidden, wire.CodeNotPrimary,
			"server is a read replica of "+s.cfg.Replica.Primary()+"; send writes to the primary")
		return
	}
	if s.cfg.ReadOnly {
		s.writeError(w, http.StatusForbidden, wire.CodeReadOnly, "server is read-only")
		return
	}
	if reason, degraded := s.degraded(); degraded {
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeDegraded,
			"server is degraded (read-only): "+reason)
		return
	}
	var req wire.InsertRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Relation == "" {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, "relation is required")
		return
	}
	if len(req.Tuples) == 0 {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, "tuples are required")
		return
	}
	if len(req.Tuples) > s.cfg.MaxInsertTuples {
		s.writeError(w, http.StatusRequestEntityTooLarge, wire.CodeBadRequest,
			fmt.Sprintf("batch of %d tuples exceeds the server limit of %d", len(req.Tuples), s.cfg.MaxInsertTuples))
		return
	}
	tuples := make([]value.Tuple, len(req.Tuples))
	for i, wt := range req.Tuples {
		t, err := wire.ToTuple(wt)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
				fmt.Sprintf("tuple %d: %v", i, err))
			return
		}
		tuples[i] = t
	}
	s.writeMu.Lock()
	if s.gate.closed.Load() {
		s.writeMu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeShuttingDown, "shutting down")
		return
	}
	var err error
	var n int
	var version int64
	switch {
	case s.cfg.Sharded != nil:
		// The sharded path scatters the batch across the hash shards as
		// one atomic store commit; the routing log keeps query results
		// bit-identical to a single store.
		err = s.cfg.Sharded.InsertBatch(req.Relation, tuples)
		n = s.cfg.Sharded.Len(req.Relation)
		version = s.cfg.Sharded.Version()
	case s.cfg.Durable != nil:
		// The durable path: WAL append + fsync before the in-memory apply
		// (the store writes into s.cfg.DB). A durability failure trips the
		// store to read-only; the batch was never acknowledged.
		err = s.cfg.Durable.InsertBatch(req.Relation, tuples)
		n = s.cfg.DB.Len(req.Relation)
		version = s.cfg.DB.Version()
	default:
		err = s.cfg.DB.InsertBatch(req.Relation, tuples)
		n = s.cfg.DB.Len(req.Relation)
		version = s.cfg.DB.Version()
	}
	s.writeMu.Unlock()
	if err != nil {
		// Either validation failed (nothing was applied) or the WAL did:
		// degraded turns into a structured 503 so clients can tell "this
		// server can no longer write" from "this batch is malformed".
		if reason, degraded := s.degraded(); degraded {
			s.writeError(w, http.StatusServiceUnavailable, wire.CodeDegraded,
				"server is degraded (read-only): "+reason)
			return
		}
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, wire.InsertResponse{
		Inserted: len(req.Tuples),
		Tuples:   n,
		Version:  version,
	})
}

// Experiments are the paper's Figure 1 decision-support workloads, run
// against the served database (they expect the sales schema).
var experiments = []wire.Experiment{
	{ID: "1a", Name: "Competitive Advantage", SQL: datagen.CompetitiveAdvantage},
	{ID: "1b", Name: "Never Knowingly Undersold", SQL: datagen.NeverKnowinglyUndersold},
	{ID: "1c", Name: "Unfair Discount", SQL: datagen.UnfairDiscount},
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wire.ExperimentsResponse{Experiments: experiments})
}

func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	var req wire.ExperimentRunRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	var src string
	for _, e := range experiments {
		if e.ID == req.ID {
			src = e.SQL
			break
		}
	}
	if src == "" {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Sprintf("unknown experiment %q (want 1a, 1b or 1c)", req.ID))
		return
	}
	q, ok := s.parseSQL(w, src)
	if !ok {
		return
	}
	eps, delta, ok := s.sampling(w, req.Eps, req.Delta)
	if !ok {
		return
	}
	release, ok := s.acquireSlot(w, r)
	if !ok {
		return
	}
	defer release()
	start := time.Now()
	res, ok := s.measureSQL(w, r, q, eps, delta)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, wire.ExperimentRunResponse{
		MeasureResponse: toMeasureResponse(res, false),
		Seconds:         time.Since(start).Seconds(),
	})
}
