package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix is the escape-hatch marker. The directive grammar is
//
//	//lint:allow <analyzer> <reason...>
//
// The reason is mandatory: the suite exists to make determinism
// violations expensive to wave through, so every suppression must say
// why the flagged code is safe. A directive on a code line covers that
// line; a directive on a line of its own also covers the next line.
const allowPrefix = "//lint:allow"

type directive struct {
	analyzer string
	lines    [2]int // lines this directive covers (second may be 0)
}

// directives scans the package's comments for //lint:allow directives.
// It returns the well-formed ones plus diagnostics for malformed
// directives (missing analyzer name, missing reason, or a name not in
// the registry).
func directives(fset *token.FileSet, files []*ast.File) ([]directive, []Diagnostic) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	var dirs []directive
	var diags []Diagnostic
	for _, f := range files {
		// Lines holding non-comment code: a directive comment that shares
		// its line with code covers only that line; a standalone comment
		// covers itself and the following line.
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, ok := n.(*ast.Comment); ok {
				return false
			}
			if _, ok := n.(*ast.CommentGroup); ok {
				return false
			}
			codeLines[fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowed — not ours
				}
				// A nested // terminates the directive, so a trailing
				// comment (e.g. a fixture's // want annotation) is not
				// swallowed into the reason.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					diags = append(diags, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  "malformed //lint:allow directive: missing analyzer name",
					})
					continue
				case !known[fields[0]]:
					diags = append(diags, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  "unknown analyzer \"" + fields[0] + "\" in //lint:allow directive",
					})
					continue
				case len(fields) == 1:
					diags = append(diags, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  "//lint:allow " + fields[0] + " is missing a reason: every suppression must explain why the flagged code is deterministic",
					})
					continue
				}
				d := directive{analyzer: fields[0], lines: [2]int{pos.Line, 0}}
				if !codeLines[pos.Line] {
					d.lines[1] = pos.Line + 1
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, diags
}

// filterAllowed drops diagnostics covered by a matching directive.
func filterAllowed(diags []Diagnostic, dirs []directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		allowed := false
		for _, dir := range dirs {
			if dir.analyzer != d.Analyzer {
				continue
			}
			if dir.lines[0] == d.Pos.Line || (dir.lines[1] != 0 && dir.lines[1] == d.Pos.Line) {
				allowed = true
				break
			}
		}
		if !allowed {
			out = append(out, d)
		}
	}
	return out
}
