package core

import (
	"cmp"
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/realfmla"
)

// This file implements adaptive sequential sampling for top-k selection:
// a racing controller (the classic best-arm-identification shape) that
// runs candidates in deterministic rounds and spends samples only where
// the ranking is still in doubt. Round r draws every undecided candidate
// up to min(m, asymChunkSize·2ʳ) samples — whole chunks of the exact
// sample stream the fixed-budget path would draw (itemOptions seeding,
// per-chunk SplitMix64 derivation, see sampleAsymRange) — then recomputes
// per-candidate empirical-Bernstein confidence intervals (race.go) and
// freezes candidates whose interval is disjoint from the k-th place:
//
//   - frozen OUT (≥ k candidates provably ahead): stops drawing
//     immediately; it cannot be in the top k.
//   - frozen IN (provably ahead of ≥ n-k candidates): keeps drawing only
//     until its interval halfwidth meets the eps contract, then finishes
//     at its current estimate.
//
// Candidates the intervals never separate run to the full budget m, at
// which point their estimate is bit-identical to the fixed path's.
//
// Determinism: every quantity is a pure function of (Options.Seed,
// candidate index, formula, eps, delta, k). Per-candidate base seeds
// come from itemOptions exactly as in MeasureBatch, chunk draws are pure
// in (base, chunk index), and round decisions are computed sequentially
// from the accumulated hit counts — so results are bit-stable across
// Workers/PoolWorkers and across repeated runs, the same contract the
// fixed path documents. Ties (equal interval endpoints, e.g. many
// exactly-certain candidates) break toward the lower candidate index,
// which makes an all-certain LIMIT-k query resolve to the first k
// candidates in derivation order — the legacy semantics — with zero
// samples drawn.

// raceItem is the per-candidate state of one adaptive race.
type raceItem struct {
	idx int
	phi realfmla.Formula
	res Result

	// Sampling state (unused when exact).
	base  int64
	m     int // full fixed-path budget
	drawn int // chunks drawn so far
	t     int // samples drawn
	hits  int
	hw    float64 // current unclamped confidence halfwidth

	lo, hi float64 // confidence interval, clamped to [0,1]
	exact  bool    // point interval; no draws
	out    bool    // provably not in the top k
	in     bool    // provably in the top k
	done   bool    // value final (exact, width met, or full budget)
	rounds int
	err    error
}

// estimate is the item's current point estimate.
func (it *raceItem) estimate() float64 { return it.res.Value }

// TopKResult reports an adaptive top-k race over a candidate set.
type TopKResult struct {
	// Winners are the indices of the top-k candidates by measure
	// (ties toward the lower index), ascending — i.e. in the original
	// candidate order, not ranked.
	Winners []int
	// Results holds each winner's measure, parallel to Winners. Sampled
	// winners report Method afpras-race with SamplesDrawn/Rounds set;
	// exactly-evaluated winners keep their exact method.
	Results []Result
	// SamplesDrawn is the total number of direction samples drawn across
	// every candidate, frozen-out losers included — the number to compare
	// against len(phis)·m for the fixed-budget path.
	SamplesDrawn int
	// Rounds is the number of race rounds executed.
	Rounds int
}

// MeasureTopK races the candidate formulas against each other and
// returns the k with the largest measures, spending the sampling budget
// only where the ranking is in doubt. Each candidate is seeded exactly
// as MeasureBatch seeds it (itemOptions), each draw extends a prefix of
// the same deterministic sample stream the fixed path would consume, and
// winners' estimates satisfy the same additive-eps contract at overall
// failure probability delta — but frozen-out candidates stop after a few
// rounds, so skewed candidate sets resolve with a small fraction of the
// len(phis)·m fixed budget. k ≤ 0 or k ≥ len(phis) measures everything
// adaptively (every candidate races only until its width contract).
func (e *Engine) MeasureTopK(phis []realfmla.Formula, k int, eps, delta float64) (*TopKResult, error) {
	return e.MeasureTopKContext(context.Background(), phis, k, eps, delta)
}

// MeasureTopKContext is MeasureTopK with cancellation: the race checks
// ctx between rounds and returns ctx.Err() when it fires.
func (e *Engine) MeasureTopKContext(ctx context.Context, phis []realfmla.Formula, k int, eps, delta float64) (*TopKResult, error) {
	if err := checkEpsDelta(eps, delta); err != nil {
		return nil, err
	}
	out := &TopKResult{}
	oc, err := e.race(ctx, phis, k, eps, delta, func(pos, idx int, r Result) error {
		out.Winners = append(out.Winners, idx)
		out.Results = append(out.Results, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.SamplesDrawn = oc.samplesDrawn
	out.Rounds = oc.rounds
	return out, nil
}

// raceOutcome summarizes a completed race for its caller.
type raceOutcome struct {
	delivered    int
	samplesDrawn int
	rounds       int
}

// race is the adaptive controller shared by MeasureTopK and the LIMIT-k
// SQL paths. Winners are handed to deliver in candidate order with
// consecutive positions from 0 — and as early as possible: a winner is
// delivered the moment it is provably in the top k, final (width
// contract met), and every earlier candidate is resolved, so streaming
// consumers see provably-top-k answers while borderline candidates are
// still racing. A deliver error aborts the race and is returned.
func (e *Engine) race(ctx context.Context, phis []realfmla.Formula, k int, eps, delta float64, deliver func(pos, idx int, r Result) error) (raceOutcome, error) {
	var out raceOutcome
	n := len(phis)
	if n == 0 {
		return out, nil
	}
	if k <= 0 || k > n {
		k = n
	}
	m, err := e.sampleCount(eps, delta)
	if err != nil {
		return out, err
	}
	totalChunks := (m + asymChunkSize - 1) / asymChunkSize
	// Round schedule: cumulative chunk targets 1, 2, 4, …, capped at the
	// full budget. totalRounds sizes the per-statement failure budget δ'.
	totalRounds := 1
	for c := 1; c < totalChunks; c <<= 1 {
		totalRounds++
	}
	// Every interval statement over the whole race — n candidates times
	// totalRounds recomputations — must hold simultaneously for the
	// freeze decisions to be sound, so the failure budget is split by a
	// union bound. The resulting intervals are slightly wider than the
	// fixed path's single-shot Hoeffding bound, which only means
	// borderline candidates run closer to the full budget.
	logTerm := math.Log(2 * float64(n) * float64(totalRounds) / delta)

	o := e.opts
	kernels := e.poolKernels()
	items := make([]*raceItem, n)
	for i := range items {
		// hw starts at +Inf so a candidate frozen IN before its first
		// draw (e.g. every candidate at round 0 when k ≥ n) cannot pass
		// the eps width check and finalize with zero samples.
		items[i] = &raceItem{idx: i, phi: phis[i], lo: 0, hi: 1, hw: math.Inf(1)}
	}
	// Prep every candidate exactly as the fixed path would: per-item
	// seeding, shared kernels, exact methods first, base-seed draw for
	// the samplers. Item preps are independent and pure, so fan-out over
	// the pool engines cannot change any value.
	e.raceParallel(items, func(eng *Engine, it *raceItem) {
		eng.resetItem(itemOptions(o, it.idx), kernels)
		prepRaceItem(eng, it, m)
	})
	for _, it := range items {
		if it.err != nil {
			return out, it.err
		}
	}

	lo := make([]float64, n)
	hi := make([]float64, n)
	ahead := make([]int, n)
	behind := make([]int, n)
	inCount, outCount := 0, 0
	front, delivered := 0, 0
	var work []*raceItem

	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		// Freeze decisions from the current intervals. Frozen items keep
		// their (still valid) last interval, so they stay in the ranking
		// counts without drawing further.
		for i, it := range items {
			lo[i], hi[i] = it.lo, it.hi
		}
		rankCounts(lo, hi, ahead, behind)
		for _, it := range items {
			if it.out || it.in {
				continue
			}
			// The count clamps are a structural safety net: the interval
			// statements make over-freezing a δ'-probability event, and the
			// clamp guarantees ≥ k survivors / ≤ k winners even then.
			if ahead[it.idx] >= k && outCount < n-k {
				it.out = true
				outCount++
				continue
			}
			if behind[it.idx] >= n-k && inCount < k {
				it.in = true
				inCount++
			}
		}
		// Global closures: k winners found means everyone else is out;
		// n-k losers found means every survivor is in.
		if inCount == k {
			for _, it := range items {
				if !it.in && !it.out {
					it.out = true
					outCount++
				}
			}
		} else if outCount == n-k {
			for _, it := range items {
				if !it.in && !it.out {
					it.in = true
					inCount++
				}
			}
		}
		// Finalize values: full budget reached, or frozen in with the
		// interval width meeting the eps contract.
		for _, it := range items {
			if it.done || it.out || it.exact {
				continue
			}
			if it.t >= it.m || (it.in && it.hw <= eps) {
				it.done = true
			}
		}
		if err := raceFrontier(items, &front, &delivered, deliver); err != nil {
			return out, err
		}
		allSettled := true
		for _, it := range items {
			if !it.out && !it.done {
				allSettled = false
				break
			}
		}
		if allSettled {
			break
		}

		// Draw round: extend every still-racing candidate's sample prefix
		// to the round target. Hit counting is pure per (item, chunk
		// range), so the fan-out cannot change any value.
		target := totalChunks
		if round < 31 && 1<<round < totalChunks {
			target = 1 << round
		}
		work = work[:0]
		for _, it := range items {
			if it.out || it.done || it.exact || it.drawn >= target {
				continue
			}
			work = append(work, it)
		}
		e.raceParallel(work, func(eng *Engine, it *raceItem) {
			eng.resetItem(itemOptions(o, it.idx), kernels)
			ent := eng.compiledFor(it.phi)
			it.hits += eng.sampleAsymRange(ent, it.m, it.base, it.drawn, target)
			it.drawn = target
			it.t = it.m
			if target*asymChunkSize < it.m {
				it.t = target * asymChunkSize
			}
			it.rounds++
			p := float64(it.hits) / float64(it.t)
			it.hw = ebHalfwidth(it.hits, it.t, logTerm)
			it.lo = math.Max(0, p-it.hw)
			it.hi = math.Min(1, p+it.hw)
			it.res.Value = p
			it.res.Samples = it.t
			it.res.SamplesDrawn = it.t
			it.res.Rounds = it.rounds
		})
		out.rounds++
	}

	// Budget exhausted with the ranking still ambiguous for some
	// candidates (intervals overlapping within eps): resolve the
	// remaining slots by the final point estimates, ties toward the
	// lower index — exactly how the full-budget reference ranks, and the
	// undecided estimates ARE the full-budget values bit-for-bit.
	if inCount < k {
		var open []*raceItem
		for _, it := range items {
			if !it.in && !it.out {
				open = append(open, it)
			}
		}
		sort.Slice(open, func(a, b int) bool {
			// cmp.Compare, not raw float compares: it is a total order, so
			// the sort stays a strict weak ordering (and deterministic)
			// even if an estimate were ever NaN.
			va, vb := open[a].estimate(), open[b].estimate()
			if c := cmp.Compare(va, vb); c != 0 {
				return c > 0
			}
			return open[a].idx < open[b].idx
		})
		for _, it := range open {
			if inCount < k {
				it.in = true
				inCount++
			} else {
				it.out = true
				outCount++
			}
		}
		if err := raceFrontier(items, &front, &delivered, deliver); err != nil {
			return out, err
		}
	}
	out.delivered = delivered
	for _, it := range items {
		out.samplesDrawn += it.t
	}
	return out, nil
}

// raceFrontier advances the in-order delivery frontier: frozen-out
// candidates are skipped, finalized winners are delivered with
// consecutive positions, and the first still-racing candidate blocks
// (its outcome decides whether later winners shift position).
func raceFrontier(items []*raceItem, front, delivered *int, deliver func(pos, idx int, r Result) error) error {
	for *front < len(items) {
		it := items[*front]
		if it.out {
			*front++
			continue
		}
		if it.in && it.done {
			if deliver != nil {
				if err := deliver(*delivered, it.idx, it.res); err != nil {
					return err
				}
			}
			*delivered++
			*front++
			continue
		}
		return nil
	}
	return nil
}

// prepRaceItem initializes one race candidate on a per-item engine that
// resetItem has already seeded, mirroring MeasureFormula's dispatch
// exactly: trivial and exact methods resolve to point intervals with no
// sampling, everything else becomes a sampling item whose base seed is
// drawn precisely where the fixed path would draw it.
func prepRaceItem(eng *Engine, it *raceItem, m int) {
	point := func(r Result) {
		it.res = r
		it.exact = true
		it.done = true
		it.lo = math.Max(0, math.Min(1, r.Value))
		it.hi = it.lo
	}
	ent := eng.compiledFor(it.phi)
	n := len(ent.vars)
	if n == 0 {
		// With ForceSampling the fixed path still evaluates the constant
		// formula m times; the value is the same either way, so the race
		// treats it as decided (determinism across worker counts is
		// unaffected — the fixed path is only reproduced bit-for-bit in
		// its default configuration).
		point(trivialResult(realfmla.Eval(ent.reduced, nil), ent.ambient))
		return
	}
	if !eng.opts.DisableExact {
		if r, ok, err := eng.exactOrder(ent); err != nil {
			it.err = err
			return
		} else if ok {
			r.K = ent.ambient
			r.RelevantK = n
			point(r)
			return
		}
		if r, ok := eng.exactSector(ent.reduced); ok {
			r.K = ent.ambient
			r.RelevantK = n
			point(r)
			return
		}
	}
	it.m = m
	it.base = eng.drawBase()
	it.res = Result{Method: MethodAFPRASRace, K: ent.ambient, RelevantK: n}
}

// raceParallel runs f over the work items, fanned out across the
// engine's pooled per-item engines (PoolWorkers wide). Each item is
// processed by exactly one worker and f must be pure per item, so
// scheduling cannot change results; with a single worker everything
// runs inline on the calling goroutine.
func (e *Engine) raceParallel(work []*raceItem, f func(eng *Engine, it *raceItem)) {
	workers := e.opts.poolWorkers()
	if workers > len(work) {
		workers = len(work)
	}
	if workers <= 1 {
		eng := e.itemEngine(0)
		for _, it := range work {
			f(eng, it)
		}
		return
	}
	engines := make([]*Engine, workers)
	for w := range engines {
		engines[w] = e.itemEngine(w)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(eng *Engine) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(work) {
					return
				}
				f(eng, work[i])
			}
		}(engines[w])
	}
	wg.Wait()
}
