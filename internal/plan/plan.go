// Package plan lowers parsed SQL (package sqlast) into an explicit
// logical plan for the streaming executor (package exec). A plan is a
// left-deep join pipeline — scan, select, join, project, limit — with the
// planning decisions made explicit:
//
//   - selection pushdown: every WHERE conjunct is attached to the
//     earliest pipeline step at which all of its column references are
//     bound, so rows are filtered (and constraint atoms are collected) as
//     soon as possible;
//   - access-path selection: a step whose table is linked to an earlier
//     step by a decidable base-column equality becomes an index probe
//     (hash join) instead of a full scan, and a step filtered by a
//     base-column/literal equality becomes an index lookup;
//   - cost-based join reordering: left-deep orders are grown greedily
//     along base-equality edges by estimated fanout (|T| divided by the
//     join column's distinct-key count, read off the database's equality
//     indexes), and replace the FROM-clause order only when they join
//     strictly earlier than a forced cartesian product, or cost strictly
//     less even after the buffer-and-sort penalty reordered plans pay to
//     restore derivation order (the executor restores that order, so
//     results are unchanged).
//
// Base-typed (in)equalities are decided outright during execution —
// marked base nulls join only with themselves, the bijective-valuation
// regime of Prop 5.2 — while numeric conditions involving nulls become
// polynomial constraint atoms. The plan records the canonical
// (derivation-order) layout of those atoms so that the executor produces
// byte-identical constraint formulas regardless of the join order it
// runs.
package plan

import (
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/value"
)

// CellRef names one column of a bound row: the pipeline step that binds
// the row and the column index within that step's relation.
type CellRef struct {
	Step int
	Col  int
}

// NumExpr is a numeric expression with resolved column references. The
// tree mirrors the sqlast.Expr it was lowered from node for node, so the
// polynomials the executor builds are identical to those of the
// pre-planner evaluator.
type NumExpr struct {
	Kind  sqlast.ExprKind
	Cell  CellRef // ExprCol
	Const float64 // ExprConst
	L, R  *NumExpr
}

// CondKind discriminates planned conditions.
type CondKind uint8

// Planned condition kinds.
const (
	// CondBaseEq equates two base-typed columns; decidable at execution.
	CondBaseEq CondKind = iota
	// CondBaseEqConst equates a base-typed column with a literal.
	CondBaseEqConst
	// CondNumCmp compares two numeric expressions; generates a constraint
	// atom when the polynomial difference involves nulls.
	CondNumCmp
)

// Cond is one planned WHERE conjunct. Conds are stored on the Plan in
// canonical order — original join position, then WHERE-clause order —
// which is the order their atoms appear in each derivation's constraint
// conjunction.
type Cond struct {
	Kind CondKind

	// CondBaseEq: L = R. CondBaseEqConst: L = Lit.
	L, R CellRef
	Lit  value.Value

	// CondNumCmp.
	Op         sqlast.CmpOp
	LExp, RExp *NumExpr

	// Step is the earliest pipeline step at which the condition is
	// checkable under the plan's join order.
	Step int
}

// AccessKind is how a step obtains its candidate rows.
type AccessKind uint8

// Access paths.
const (
	// FullScan enumerates every tuple of the relation.
	FullScan AccessKind = iota
	// IndexEq probes the equality index of LocalCol with the value bound
	// at Outer — a hash join on a decidable base equality.
	IndexEq
	// IndexConst probes the equality index of LocalCol with the literal
	// Lit — an indexed selection.
	IndexConst
)

// Step is one stage of the left-deep pipeline: it binds one more relation
// row and checks every condition that becomes decidable.
type Step struct {
	Relation string
	Alias    string
	Rel      *schema.Relation

	Access   AccessKind
	LocalCol int     // IndexEq / IndexConst: indexed column of this step
	Outer    CellRef // IndexEq: earlier-bound cell to probe with
	Lit      value.Value

	// AccessCond is the index (into Plan.Conds) of the condition backing
	// the access path, or -1 for FullScan. Conds lists every condition
	// checked at this step, ascending in canonical order, including
	// AccessCond (the executor skips it when the index guarantees it).
	AccessCond int
	Conds      []int
}

// Plan is a lowered query.
type Plan struct {
	Schema *schema.Schema
	// From is the original FROM clause; Steps[i] scans From[Order[i]].
	From  []sqlast.TableRef
	Order []int
	// Identity reports that Order is the identity permutation, i.e. the
	// executor's emission order is already the derivation order and no
	// reorder buffering is needed.
	Identity bool

	Steps   []Step
	Project []CellRef
	Limit   int

	// Conds in canonical (derivation) order; see Cond.
	Conds []Cond

	// Numerical-null bookkeeping: NullIDs maps formula variable index to
	// null ID, Index is its inverse, K = len(NullIDs). Both are the
	// database's cached inventories (db.NumNullIndex) — shared, read-only.
	NullIDs []int
	Index   map[int]int
	K       int
}
