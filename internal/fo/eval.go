package fo

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/value"
)

// Numeric abstracts the numerical carrier of evaluation. Instantiating it
// with plain float64 evaluates queries over complete databases; instantiating
// it with univariate polynomials in the ray parameter k (compared by leading
// coefficient) evaluates the *asymptotic* truth of the query along a
// direction, which is exactly lim_k f_{φ,a}(k) of Section 8 — without ever
// materializing the translated formula φ.
type Numeric[N any] interface {
	// FromConst embeds a real constant into the carrier.
	FromConst(float64) N
	// Add returns the sum of two carrier values.
	Add(N, N) N
	// Mul returns the product of two carrier values.
	Mul(N, N) N
	// Cmp compares two carrier values, returning -1, 0 or +1.
	Cmp(N, N) int
}

// Cell is a single evaluated value: a base-sort string or a numerical-sort
// carrier value.
type Cell[N any] struct {
	IsNum bool
	Base  string
	Num   N
}

// BaseCell returns a base-sort cell.
func BaseCell[N any](s string) Cell[N] { return Cell[N]{Base: s} }

// NumCell returns a numerical-sort cell.
func NumCell[N any](x N) Cell[N] { return Cell[N]{IsNum: true, Num: x} }

// Instance is a database instance prepared for evaluation over carrier N:
// relation contents as cells, plus the active domains that quantifiers
// range over.
type Instance[N any] struct {
	dom        Numeric[N]
	rels       map[string][][]Cell[N]
	baseDomain []string
	numDomain  []N
}

// Domain returns the numeric domain operations of the instance.
func (in *Instance[N]) Domain() Numeric[N] { return in.dom }

// BaseDomain returns the active base domain (what base quantifiers range
// over).
func (in *Instance[N]) BaseDomain() []string { return in.baseDomain }

// NumDomain returns the active numerical domain.
func (in *Instance[N]) NumDomain() []N { return in.numDomain }

// AddBaseDomain extends the active base domain (e.g. with constants from
// the query or the candidate answer tuple).
func (in *Instance[N]) AddBaseDomain(ss ...string) {
	for _, s := range ss {
		found := false
		for _, t := range in.baseDomain {
			if t == s {
				found = true
				break
			}
		}
		if !found {
			in.baseDomain = append(in.baseDomain, s)
		}
	}
}

// AddNumDomain extends the active numerical domain.
func (in *Instance[N]) AddNumDomain(xs ...N) {
	for _, x := range xs {
		found := false
		for _, y := range in.numDomain {
			if in.dom.Cmp(x, y) == 0 {
				found = true
				break
			}
		}
		if !found {
			in.numDomain = append(in.numDomain, x)
		}
	}
}

// EvalError reports a sort violation or unbound variable at evaluation
// time. Typechecked queries never produce one.
type EvalError struct{ Msg string }

func (e *EvalError) Error() string { return "fo: eval: " + e.Msg }

func evalErrf(format string, args ...any) error {
	return &EvalError{Msg: fmt.Sprintf(format, args...)}
}

// Eval evaluates the query body with the query's free variables bound to
// args (which must match q.Free in length and sorts).
func Eval[N any](q *Query, inst *Instance[N], args []Cell[N]) (bool, error) {
	if len(args) != len(q.Free) {
		return false, evalErrf("query %s has %d free variables, got %d arguments",
			q.Name, len(q.Free), len(args))
	}
	env := make(map[string]Cell[N], len(args))
	for i, fv := range q.Free {
		if args[i].IsNum != (fv.Sort == SortNum) {
			return false, evalErrf("argument %d for %s has wrong sort", i+1, fv.Name)
		}
		env[fv.Name] = args[i]
	}
	return evalFormula(q.Body, inst, env)
}

// EvalFormula evaluates a bare formula under an explicit environment.
func EvalFormula[N any](f Formula, inst *Instance[N], env map[string]Cell[N]) (bool, error) {
	return evalFormula(f, inst, env)
}

func evalFormula[N any](f Formula, inst *Instance[N], env map[string]Cell[N]) (bool, error) {
	switch x := f.(type) {
	case True:
		return true, nil
	case False:
		return false, nil
	case Atom:
		return evalAtom(x, inst, env)
	case BaseEq:
		l, err := evalTerm(x.L, inst, env)
		if err != nil {
			return false, err
		}
		r, err := evalTerm(x.R, inst, env)
		if err != nil {
			return false, err
		}
		if l.IsNum || r.IsNum {
			return false, evalErrf("base equality over numerical terms")
		}
		return l.Base == r.Base, nil
	case Cmp:
		l, err := evalTerm(x.L, inst, env)
		if err != nil {
			return false, err
		}
		r, err := evalTerm(x.R, inst, env)
		if err != nil {
			return false, err
		}
		if !l.IsNum || !r.IsNum {
			return false, evalErrf("arithmetic comparison over base terms")
		}
		c := inst.dom.Cmp(l.Num, r.Num)
		switch x.Op {
		case Lt:
			return c < 0, nil
		case Le:
			return c <= 0, nil
		case EqNum:
			return c == 0, nil
		case NeNum:
			return c != 0, nil
		case Ge:
			return c >= 0, nil
		case Gt:
			return c > 0, nil
		}
		return false, evalErrf("unknown comparison operator")
	case Not:
		b, err := evalFormula(x.F, inst, env)
		return !b, err
	case And:
		l, err := evalFormula(x.L, inst, env)
		if err != nil || !l {
			return false, err
		}
		return evalFormula(x.R, inst, env)
	case Or:
		l, err := evalFormula(x.L, inst, env)
		if err != nil || l {
			return l, err
		}
		return evalFormula(x.R, inst, env)
	case Implies:
		l, err := evalFormula(x.L, inst, env)
		if err != nil {
			return false, err
		}
		if !l {
			return true, nil
		}
		return evalFormula(x.R, inst, env)
	case Exists:
		return evalQuant(x.Var, x.Sort, x.Body, inst, env, true)
	case Forall:
		return evalQuant(x.Var, x.Sort, x.Body, inst, env, false)
	default:
		return false, evalErrf("unknown formula node %T", f)
	}
}

// evalQuant implements active-domain quantification: base variables range
// over the instance's base domain, numerical variables over its numerical
// domain.
func evalQuant[N any](name string, srt Sort, body Formula, inst *Instance[N], env map[string]Cell[N], existential bool) (bool, error) {
	old, had := env[name]
	defer func() {
		if had {
			env[name] = old
		} else {
			delete(env, name)
		}
	}()
	if srt == SortBase {
		for _, s := range inst.baseDomain {
			env[name] = BaseCell[N](s)
			b, err := evalFormula(body, inst, env)
			if err != nil {
				return false, err
			}
			if b == existential {
				return existential, nil
			}
		}
	} else {
		for _, x := range inst.numDomain {
			env[name] = NumCell(x)
			b, err := evalFormula(body, inst, env)
			if err != nil {
				return false, err
			}
			if b == existential {
				return existential, nil
			}
		}
	}
	return !existential, nil
}

func evalAtom[N any](a Atom, inst *Instance[N], env map[string]Cell[N]) (bool, error) {
	args := make([]Cell[N], len(a.Args))
	for i, t := range a.Args {
		c, err := evalTerm(t, inst, env)
		if err != nil {
			return false, err
		}
		args[i] = c
	}
	tuples, ok := inst.rels[a.Rel]
	if !ok {
		return false, evalErrf("unknown relation %s", a.Rel)
	}
next:
	for _, tup := range tuples {
		if len(tup) != len(args) {
			return false, evalErrf("arity mismatch for %s", a.Rel)
		}
		for i := range tup {
			if tup[i].IsNum != args[i].IsNum {
				return false, evalErrf("sort mismatch in column %d of %s", i+1, a.Rel)
			}
			if tup[i].IsNum {
				if inst.dom.Cmp(tup[i].Num, args[i].Num) != 0 {
					continue next
				}
			} else if tup[i].Base != args[i].Base {
				continue next
			}
		}
		return true, nil
	}
	return false, nil
}

func evalTerm[N any](t Term, inst *Instance[N], env map[string]Cell[N]) (Cell[N], error) {
	switch x := t.(type) {
	case Var:
		c, ok := env[x.Name]
		if !ok {
			return Cell[N]{}, evalErrf("unbound variable %s", x.Name)
		}
		return c, nil
	case BaseConst:
		return BaseCell[N](x.Value), nil
	case NumConst:
		return NumCell(inst.dom.FromConst(x.Value)), nil
	case Add:
		return evalNumBinop(x.L, x.R, inst, env, inst.dom.Add)
	case Sub:
		return evalNumBinop(x.L, x.R, inst, env, func(a, b N) N {
			return inst.dom.Add(a, inst.dom.Mul(inst.dom.FromConst(-1), b))
		})
	case Mul:
		return evalNumBinop(x.L, x.R, inst, env, inst.dom.Mul)
	case Neg:
		c, err := evalTerm(x.X, inst, env)
		if err != nil {
			return Cell[N]{}, err
		}
		if !c.IsNum {
			return Cell[N]{}, evalErrf("unary - over base term")
		}
		return NumCell(inst.dom.Mul(inst.dom.FromConst(-1), c.Num)), nil
	default:
		return Cell[N]{}, evalErrf("unknown term node %T", t)
	}
}

func evalNumBinop[N any](l, r Term, inst *Instance[N], env map[string]Cell[N], op func(N, N) N) (Cell[N], error) {
	lc, err := evalTerm(l, inst, env)
	if err != nil {
		return Cell[N]{}, err
	}
	rc, err := evalTerm(r, inst, env)
	if err != nil {
		return Cell[N]{}, err
	}
	if !lc.IsNum || !rc.IsNum {
		return Cell[N]{}, evalErrf("arithmetic over base terms")
	}
	return NumCell(op(lc.Num, rc.Num)), nil
}

// FromComplete prepares a complete database (no nulls anywhere) for
// evaluation over float64. It returns an error if the database contains a
// null.
func FromComplete(d *db.Database) (*Instance[float64], error) {
	inst := &Instance[float64]{dom: Real{}, rels: make(map[string][][]Cell[float64])}
	for _, rel := range d.Schema().Relations() {
		rows := make([][]Cell[float64], 0, d.Len(rel.Name))
		for t := range d.All(rel.Name) {
			row := make([]Cell[float64], len(t))
			for i, v := range t {
				switch v.Kind() {
				case value.BaseConst:
					row[i] = BaseCell[float64](v.Str())
				case value.NumConst:
					row[i] = NumCell(v.Float())
				default:
					return nil, evalErrf("FromComplete on database with null %v", v)
				}
			}
			rows = append(rows, row)
		}
		inst.rels[rel.Name] = rows
	}
	inst.baseDomain = d.BaseConstants()
	for _, x := range d.NumConstants() {
		inst.numDomain = append(inst.numDomain, x)
	}
	return inst, nil
}

// CollectConstants returns all base and numerical constants mentioned in
// the query, for extending active domains.
func CollectConstants(q *Query) (bases []string, nums []float64) {
	var scanTerm func(t Term)
	scanTerm = func(t Term) {
		switch x := t.(type) {
		case BaseConst:
			bases = append(bases, x.Value)
		case NumConst:
			nums = append(nums, x.Value)
		case Add:
			scanTerm(x.L)
			scanTerm(x.R)
		case Sub:
			scanTerm(x.L)
			scanTerm(x.R)
		case Mul:
			scanTerm(x.L)
			scanTerm(x.R)
		case Neg:
			scanTerm(x.X)
		}
	}
	var scan func(f Formula)
	scan = func(f Formula) {
		switch x := f.(type) {
		case Atom:
			for _, a := range x.Args {
				scanTerm(a)
			}
		case BaseEq:
			scanTerm(x.L)
			scanTerm(x.R)
		case Cmp:
			scanTerm(x.L)
			scanTerm(x.R)
		case Not:
			scan(x.F)
		case And:
			scan(x.L)
			scan(x.R)
		case Or:
			scan(x.L)
			scan(x.R)
		case Implies:
			scan(x.L)
			scan(x.R)
		case Exists:
			scan(x.Body)
		case Forall:
			scan(x.Body)
		}
	}
	scan(q.Body)
	return bases, nums
}
