package fo

import (
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/schema"
	"repro/internal/value"
)

func evalSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("R",
			schema.Column{Name: "a", Type: schema.Base},
			schema.Column{Name: "x", Type: schema.Num}),
		schema.MustRelation("S",
			schema.Column{Name: "x", Type: schema.Num},
			schema.Column{Name: "y", Type: schema.Num}),
	)
}

func completeDB() *db.Database {
	d := db.New(evalSchema())
	d.MustInsert("R", value.Base("a"), value.Num(5))
	d.MustInsert("R", value.Base("b"), value.Num(3))
	d.MustInsert("S", value.Num(5), value.Num(2))
	d.MustInsert("S", value.Num(3), value.Num(9))
	return d
}

func evalBool(t *testing.T, src string, d *db.Database) bool {
	t.Helper()
	q := MustParseQuery(src)
	if err := Typecheck(q, d.Schema()); err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	inst, err := FromComplete(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(q, inst, nil)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return got
}

func TestEvalCompleteBoolean(t *testing.T) {
	d := completeDB()
	cases := map[string]bool{
		`q() := exists a:base, x:num . (R(a, x) and x > 4)`:         true,
		`q() := exists a:base, x:num . (R(a, x) and x > 5)`:         false,
		`q() := forall x:num, y:num . (S(x, y) -> x + y >= 7)`:      true,
		`q() := forall x:num, y:num . (S(x, y) -> x > y)`:           false,
		`q() := exists x:num, y:num . (S(x, y) and y = x * x - 16)`: false, // no S pair satisfies y = x²-16
		`q() := exists x:num, y:num . (S(x, y) and y = x * x - 23)`: true,  // S(5,2): 25-23=2
		`q() := exists a:base . (R(a, 5) and a == "a")`:             true,
		`q() := exists a:base . (R(a, 5) and a == "b")`:             false,
		`q() := exists x:num . (S(x, 9) and x = 3)`:                 true,
		`q() := true`:  true,
		`q() := false`: false,
	}
	for src, want := range cases {
		if got := evalBool(t, src, d); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalWithFreeVariables(t *testing.T) {
	d := completeDB()
	q := MustParseQuery(`q(a:base) := exists x:num . (R(a, x) and x > 4)`)
	inst, err := FromComplete(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(q, inst, []Cell[float64]{BaseCell[float64]("a")})
	if err != nil || !got {
		t.Errorf(`q("a") = %v, %v; want true`, got, err)
	}
	got, err = Eval(q, inst, []Cell[float64]{BaseCell[float64]("b")})
	if err != nil || got {
		t.Errorf(`q("b") = %v, %v; want false`, got, err)
	}
	// Wrong arity and wrong sort are reported.
	if _, err := Eval(q, inst, nil); err == nil {
		t.Error("missing argument accepted")
	}
	if _, err := Eval(q, inst, []Cell[float64]{NumCell(1.0)}); err == nil {
		t.Error("numeric argument for base variable accepted")
	}
}

func TestEvalActiveDomainSemantics(t *testing.T) {
	// Quantifiers range over the active domain only: a constant mentioned in
	// the query but absent from the database is not a witness.
	d := completeDB()
	if evalBool(t, `q() := exists x:num . x = 100`, d) {
		t.Error("∃x.x=100 true although 100 not in active domain")
	}
	inst, _ := FromComplete(d)
	inst.AddNumDomain(100)
	q := MustParseQuery(`q() := exists x:num . x = 100`)
	got, _ := Eval(q, inst, nil)
	if !got {
		t.Error("extended domain ignored")
	}
	// AddNumDomain deduplicates.
	n := len(inst.NumDomain())
	inst.AddNumDomain(100)
	if len(inst.NumDomain()) != n {
		t.Error("AddNumDomain duplicated an element")
	}
}

func TestFromCompleteRejectsNulls(t *testing.T) {
	d := completeDB()
	d.MustInsert("R", value.Base("c"), value.NullNum(0))
	if _, err := FromComplete(d); err == nil {
		t.Error("FromComplete accepted a database with nulls")
	}
}

// TestAsymMatchesLargeK is the core consistency property behind the AFPRAS:
// evaluating a query under the asymptotic domain along direction a agrees
// with ordinary evaluation on the complete database v(D) where every null
// ⊤i is replaced by K·a_i, for K large enough.
func TestAsymMatchesLargeK(t *testing.T) {
	s := evalSchema()
	queries := []string{
		`q() := exists a:base, x:num . (R(a, x) and x > 4)`,
		`q() := forall x:num, y:num . (S(x, y) -> x + y >= 0)`,
		`q() := exists x:num, y:num . (S(x, y) and x * y > x + y)`,
		`q() := exists x:num, y:num . (S(x, y) and x < y)`,
		`q() := forall x:num, y:num . (S(x, y) -> not (x = y))`,
		`q() := exists x:num . (S(x, x))`,
	}
	rng := rand.New(rand.NewSource(7))
	const bigK = 1e7
	for trial := 0; trial < 60; trial++ {
		d := db.New(s)
		// Random small incomplete database with 3 numerical nulls.
		nulls := []value.Value{value.NullNum(0), value.NullNum(1), value.NullNum(2)}
		randNumVal := func() value.Value {
			if rng.Intn(2) == 0 {
				return nulls[rng.Intn(len(nulls))]
			}
			return value.Num(float64(rng.Intn(7) - 3))
		}
		for i := 0; i < 3; i++ {
			d.MustInsert("R", value.Base(string(rune('a'+rng.Intn(3)))), randNumVal())
			d.MustInsert("S", randNumVal(), randNumVal())
		}
		dir := Direction{}
		a := make(map[int]float64)
		for _, id := range d.NumNulls() {
			v := rng.NormFloat64()
			dir[id] = v
			a[id] = v
		}
		for _, src := range queries {
			q := MustParseQuery(src)
			if err := Typecheck(q, s); err != nil {
				t.Fatal(err)
			}
			inst, err := FromDirection(d, dir, 1e-12)
			if err != nil {
				t.Fatal(err)
			}
			asym, err := Eval(q, inst, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Complete database at K·a.
			val := db.NewValuation()
			for id, ai := range a {
				val.Num[id] = bigK * ai
			}
			cd, err := val.Apply(d)
			if err != nil {
				t.Fatal(err)
			}
			cinst, err := FromComplete(cd)
			if err != nil {
				t.Fatal(err)
			}
			concrete, err := Eval(q, cinst, nil)
			if err != nil {
				t.Fatal(err)
			}
			if asym != concrete {
				t.Errorf("trial %d query %s: asym=%v concrete(K=%g)=%v\nDB:\n%s dir=%v",
					trial, src, asym, bigK, concrete, d, dir)
			}
		}
	}
}

// TestDirTemplateMatchesFromDirection: the mutable template must evaluate
// identically to a freshly built instance for every direction — it is the
// hot path of the direct AFPRAS, and in-place mutation bugs would silently
// skew measures.
func TestDirTemplateMatchesFromDirection(t *testing.T) {
	s := evalSchema()
	d := db.New(s)
	d.MustInsert("R", value.Base("a"), value.NullNum(0))
	d.MustInsert("S", value.NullNum(0), value.NullNum(1))
	d.MustInsert("S", value.NullNum(2), value.Num(4))
	d.MustInsert("R", value.NullBase(0), value.NullNum(2))

	queries := []*Query{
		MustParseQuery(`q() := exists x:num, y:num . (S(x, y) and x > y)`),
		MustParseQuery(`q() := forall x:num, y:num . (S(x, y) -> x * y < x + y)`),
		MustParseQuery(`q() := exists a:base, x:num . (R(a, x) and x > 0 and not (a == "a"))`),
	}
	tmpl, err := NewDirTemplate(d, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 100; trial++ {
		dir := Direction{}
		for _, id := range d.NumNulls() {
			dir[id] = rng.NormFloat64()
		}
		if err := tmpl.SetDirection(dir); err != nil {
			t.Fatal(err)
		}
		fresh, err := FromDirection(d, dir, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			a, err := Eval(q, tmpl.Instance(), nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Eval(q, fresh, nil)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("trial %d, %s: template=%v fresh=%v dir=%v", trial, q, a, b, dir)
			}
		}
	}
	// Missing direction entries are reported.
	if err := tmpl.SetDirection(Direction{}); err == nil {
		t.Error("incomplete direction accepted")
	}
}

func TestCollectConstants(t *testing.T) {
	q := MustParseQuery(`q() := exists a:base . (R(a, 2 + 3) and a == "seg" and R("x", -1.5))`)
	bases, nums := CollectConstants(q)
	wantB := map[string]bool{"seg": true, "x": true}
	for _, b := range bases {
		if !wantB[b] {
			t.Errorf("unexpected base constant %q", b)
		}
		delete(wantB, b)
	}
	if len(wantB) > 0 {
		t.Errorf("missing base constants: %v", wantB)
	}
	sum := 0.0
	for _, n := range nums {
		sum += n
	}
	if len(nums) != 3 || sum != 3.5 {
		t.Errorf("nums = %v", nums)
	}
}
