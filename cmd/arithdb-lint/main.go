// Command arithdb-lint is the determinism-invariant multichecker: it
// runs the repo's five custom analyzers (detrand, maporder, floateq,
// ctxpoll, errdrop — see internal/analysis) over the given package
// patterns and exits nonzero if any diagnostic survives the
// //lint:allow escape hatches.
//
// Usage:
//
//	arithdb-lint [-tests] [packages...]   (default ./...)
//
// It must run from inside the module (package resolution shells out to
// `go list`). CI runs `go run ./cmd/arithdb-lint ./...` via
// `make lint-check`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: arithdb-lint [-tests] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	loader.Tests = *tests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arithdb-lint:", err)
		os.Exit(2)
	}
	analyzers := analysis.All()
	bad := 0
	for _, pkg := range pkgs {
		// The analyzer package's own fixtures deliberately contain
		// violations; never descend into testdata (go list won't match
		// it, but belt and suspenders for explicit patterns).
		if strings.Contains(pkg.Dir, "testdata") {
			continue
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arithdb-lint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "arithdb-lint: %d violation(s)\n", bad)
		os.Exit(1)
	}
}
