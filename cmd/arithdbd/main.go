// Command arithdbd is the multi-user arithdb server: it loads (or
// generates) one incomplete database and serves the HTTP/JSON wire
// protocol of internal/server — MeasureSQL with optional streaming top-k
// delivery, atomic batch inserts (POST /v1/insert, incremental index
// maintenance; queries pin copy-on-write snapshots), the Figure 1
// experiment workloads, and schema introspection — to any number of
// concurrent clients, with admission control on the measurement pool.
//
//	arithdbd -data DIR [-addr :8080] [-max-inflight N] [-workers N]
//	         [-queue-timeout 2s] [-seed S] [-min-eps 0.005] [-read-only]
//	arithdbd -gen 20000 ...       # synthetic sales database instead of -data
//	arithdbd -data-dir DIR ...    # durable mode: WAL + checkpoints
//	arithdbd -data-dir DIR -replica-of http://primary:8080
//	                              # read replica: bootstrap + tail the primary
//	arithdbd -gen 20000 -shards 4 # hash-shard across 4 in-process stores
//
// With -shards=N the database is hash-partitioned across N in-process
// stores behind a deterministic scatter-gather coordinator
// (internal/shard): inserts scatter by a stable content hash, reads fan
// out and merge back into the global derivation order, and every
// response stays bit-identical to the unsharded server. In-process
// sharding is in-memory; for durable shards run one arithdbd -data-dir
// per shard and route writes with the client's sharded router.
//
// With -data-dir the server is durable: startup recovers the newest
// checkpoint and replays the write-ahead log, every acknowledged insert
// is fsync'd to the WAL before it is applied, a background checkpointer
// (-checkpoint-every) folds the log into fresh checkpoints off immutable
// snapshots, and a WAL failure degrades the server to read-only 503s
// instead of crashing it. -data/-gen then only seed a fresh directory.
// A durable primary also serves the replication endpoints
// (GET /v1/replication/checkpoint, GET /v1/replication/log).
//
// With -replica-of the server is a read replica: first boot bootstraps
// -data-dir from the primary's newest checkpoint, then a catchup loop
// tails the primary's WAL (CRC-verified, idempotent replay into the
// replica's own WAL + checkpoint chain), reconnecting with capped
// jittered backoff across primary crashes. Reads are served throughout;
// staleness (lastAppliedSeq, replicaLag) is surfaced in /v1/info and
// /healthz; inserts answer 403 "not-primary".
//
// Clients: `arithdb sql -connect http://host:8080 -query "SELECT ..."`,
// or any HTTP client (see README "Server mode" for the endpoints).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	arithdb "repro"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("arithdbd: ")

	var (
		addr         = flag.String("addr", ":8080", "listen address")
		data         = flag.String("data", "", "database directory (written by datagen or SaveDatabase)")
		gen          = flag.Int("gen", 0, "serve a synthetic sales database with N products instead of -data (orders = 0.8N, market = 0.2N)")
		genSeed      = flag.Int64("gen-seed", 2020, "seed of the synthetic database")
		genNullRate  = flag.Float64("gen-nullrate", 0.1, "numerical null rate of the synthetic database")
		seed         = flag.Int64("seed", 1, "engine seed: fixes every response bit-for-bit")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrently measuring requests (0 = max(2, GOMAXPROCS)); further requests queue")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "max queue wait before a 429")
		workers      = flag.Int("workers", 0, "per-request measurement worker budget (0 = GOMAXPROCS / max-inflight)")
		minEps       = flag.Float64("min-eps", 0.005, "smallest accepted eps (sampling cost grows as eps^-2)")
		compileCache = flag.Int("compile-cache", 0, "cross-request compiled-kernel cache entries (0 = default 1024)")
		readOnly     = flag.Bool("read-only", false, "disable POST /v1/insert (serve a frozen database)")
		shutdownWait = flag.Duration("shutdown-wait", 10*time.Second, "drain deadline on SIGINT/SIGTERM")
		dataDir      = flag.String("data-dir", "", "durable data directory (WAL + checkpoints); -data/-gen seed it on first boot")
		ckptEvery    = flag.Duration("checkpoint-every", time.Minute, "background checkpoint period in -data-dir mode (0 disables)")
		noSync       = flag.Bool("no-sync", false, "skip the per-insert WAL fsync (benchmarks only: trades crash durability for throughput)")
		noAdaptive   = flag.Bool("no-adaptive", false, "disable the adaptive top-k sampling race for LIMIT queries (fixed budget per candidate)")
		replicaOf    = flag.String("replica-of", "", "run as a read replica of the primary at this base URL (requires -data-dir)")
		shards       = flag.Int("shards", 0, "hash-shard the database across N in-process stores behind a scatter-gather coordinator (results stay bit-identical; incompatible with -data-dir/-replica-of)")
	)
	flag.Parse()

	if *data != "" && *gen > 0 {
		log.Fatal("-data and -gen are mutually exclusive")
	}
	if *shards < 0 {
		log.Fatal("-shards must not be negative")
	}
	if *shards > 0 && (*dataDir != "" || *replicaOf != "") {
		// In-process sharding is in-memory; durable sharding composes at
		// the fleet level (one durable arithdbd per shard, writes routed
		// by client.Sharded with the same hash).
		log.Fatal("-shards is incompatible with -data-dir/-replica-of: run one durable arithdbd per shard instead")
	}
	if *ckptEvery < 0 {
		log.Fatal("-checkpoint-every must not be negative (use 0 to disable background checkpoints)")
	}
	if *replicaOf != "" {
		// A replica's state comes from the primary, nowhere else — and a
		// replica is read-only by construction, so an explicit
		// -read-only=false is a misconfiguration, not an override.
		if *dataDir == "" {
			log.Fatal("-replica-of requires -data-dir (the replica's own durable directory)")
		}
		if *data != "" || *gen > 0 {
			log.Fatal("-replica-of bootstraps from the primary; it is incompatible with -data/-gen")
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "read-only" && !*readOnly {
				log.Fatal("-replica-of serves read-only by construction; -read-only=false is invalid")
			}
		})
	}
	// seedDB builds the initial database from -data/-gen. In durable mode
	// it only runs when the data directory holds no state yet.
	seedDB := func() (*arithdb.Database, error) {
		switch {
		case *data != "":
			return arithdb.LoadDatabase(*data)
		case *gen > 0:
			return arithdb.GenerateSales(arithdb.SalesConfig{
				Seed: *genSeed, Products: *gen, Orders: *gen * 4 / 5, Market: *gen / 5,
				Segments: *gen / 10, NullRate: *genNullRate,
			})
		}
		return nil, errors.New("one of -data or -gen is required to seed a fresh database")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		d       *arithdb.Database
		store   *wal.Store
		rep     *replica.Replicator
		repDone chan struct{}
		sharded *shard.Store
		err     error
	)
	switch {
	case *replicaOf != "":
		// Bootstrap retries until the primary answers: a replica routinely
		// boots while its primary is down, and must come up as soon as the
		// primary does.
		for {
			rep, err = replica.Open(ctx, replica.Config{
				Primary:         *replicaOf,
				Dir:             *dataDir,
				CheckpointEvery: *ckptEvery,
				NoSync:          *noSync,
				Logf:            log.Printf,
			})
			if err == nil {
				break
			}
			log.Printf("replica bootstrap: %v (retrying)", err)
			select {
			case <-ctx.Done():
				log.Fatal("interrupted before the replica bootstrapped")
			case <-time.After(2 * time.Second):
			}
		}
		d = rep.DB()
		repDone = make(chan struct{})
		go func() { rep.Run(ctx); close(repDone) }()
	case *dataDir != "":
		store, err = wal.Open(*dataDir, wal.Options{
			Seed:            seedDB,
			CheckpointEvery: *ckptEvery,
			NoSync:          *noSync,
			Logf:            log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		d = store.DB()
		log.Printf("recovered %s: %d tuples, seq %d (checkpoint covers %d)",
			*dataDir, d.Size(), store.Seq(), store.CheckpointSeq())
	default:
		if d, err = seedDB(); err != nil {
			log.Fatal(err)
		}
		if *shards > 0 {
			if sharded, err = shard.FromDatabase(d, *shards); err != nil {
				log.Fatal(err)
			}
		}
	}

	cfg := server.Config{
		ReadOnly: *readOnly,
		Engine: arithdb.EngineOptions{
			Seed:             *seed,
			PoolWorkers:      *workers,
			CompileCacheSize: *compileCache,
			NoAdaptive:       *noAdaptive,
		},
		MaxInflight:     *maxInflight,
		QueueTimeout:    *queueTimeout,
		MinEps:          *minEps,
		KernelCacheSize: *compileCache,
	}
	switch {
	case rep != nil:
		// Source (not DB): a mid-run re-bootstrap swaps the replica's store,
		// and every request must see the current one.
		cfg.Source = rep.DB
		cfg.Replica = rep
		cfg.ReadOnly = true
	case sharded != nil:
		cfg.Sharded = sharded
	default:
		cfg.DB = d
		if store != nil {
			cfg.Durable = store
			cfg.Replication = store
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	switch {
	case rep != nil:
		log.Printf("serving %d tuples on http://%s (replica of %s, seq %d)",
			d.Size(), ln.Addr(), rep.Primary(), rep.LastAppliedSeq())
	case sharded != nil:
		log.Printf("serving %d tuples on http://%s (%d shards, sizes %v)",
			sharded.Size(), ln.Addr(), sharded.NumShards(), sharded.ShardSizes())
	default:
		log.Printf("serving %d tuples on http://%s", d.Size(), ln.Addr())
	}

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	select {
	case err := <-done:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("draining (up to %s)...", *shutdownWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownWait)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if rep != nil {
		// The catchup loop exits on the signal context; wait for it so no
		// replay is mid-flight, then checkpoint and close the local store.
		<-repDone
		store = rep.Store()
	}
	if store != nil {
		// The server has drained: no insert is in flight. Fold the WAL tail
		// into a final checkpoint (best effort — recovery replays the log
		// either way), then sync and close the log.
		if err := store.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		}
		if err := store.Close(); err != nil {
			log.Printf("wal close: %v", err)
		}
	}
	fmt.Fprintln(os.Stderr, "arithdbd: bye")
}
