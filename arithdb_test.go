package arithdb_test

import (
	"fmt"
	"math"
	"math/big"
	"testing"

	arithdb "repro"
)

func pairDB() (*arithdb.Schema, *arithdb.Database) {
	s := arithdb.MustSchema(arithdb.MustRelation("R",
		arithdb.Col("a", arithdb.NumCol), arithdb.Col("b", arithdb.NumCol)))
	d := arithdb.NewDatabase(s)
	d.MustInsert("R", arithdb.NullNum(0), arithdb.NullNum(1))
	return s, d
}

// Example demonstrates the package's headline computation: the measure of
// certainty of σ_{A>B} selecting an all-null tuple is exactly 1/2.
func Example() {
	s := arithdb.MustSchema(arithdb.MustRelation("R",
		arithdb.Col("a", arithdb.NumCol), arithdb.Col("b", arithdb.NumCol)))
	d := arithdb.NewDatabase(s)
	d.MustInsert("R", arithdb.NullNum(0), arithdb.NullNum(1))

	q := arithdb.MustParseQuery(`sel() := exists a:num, b:num . (R(a, b) and a > b)`)
	res, err := arithdb.NewEngine(arithdb.EngineOptions{}).Measure(q, d, nil, 0.01, 0.05)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Rat)
	// Output: 1/2
}

func TestFacadeMeasureRoundTrip(t *testing.T) {
	s, d := pairDB()
	q := arithdb.MustParseQuery(`sel() := exists a:num, b:num . (R(a, b) and a > b)`)
	if err := arithdb.Typecheck(q, s); err != nil {
		t.Fatal(err)
	}
	res, err := arithdb.NewEngine(arithdb.EngineOptions{}).Measure(q, d, nil, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rat == nil || res.Rat.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("μ = %v, want 1/2", res.Rat)
	}
}

func TestFacadeTranslate(t *testing.T) {
	_, d := pairDB()
	q := arithdb.MustParseQuery(`sel() := exists a:num, b:num . (R(a, b) and a > b)`)
	phi, err := arithdb.Translate(q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := arithdb.NewEngine(arithdb.EngineOptions{}).MeasureFormula(phi, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0.5 {
		t.Errorf("via Translate: μ = %g", res.Value)
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	_, d := pairDB()
	dir := t.TempDir()
	if err := arithdb.SaveDatabase(d, dir); err != nil {
		t.Fatal(err)
	}
	back, err := arithdb.LoadDatabase(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != d.Size() {
		t.Errorf("size %d != %d", back.Size(), d.Size())
	}
}

func TestBackgroundFromColumnRanges(t *testing.T) {
	s := arithdb.MustSchema(
		arithdb.MustRelation("P",
			arithdb.Col("rrp", arithdb.NumCol), arithdb.Col("dis", arithdb.NumCol)))
	d := arithdb.NewDatabase(s)
	d.MustInsert("P", arithdb.NullNum(0), arithdb.NullNum(1))
	// ⊤2 occurs in both columns: gets the intersection of their ranges.
	d.MustInsert("P", arithdb.NullNum(2), arithdb.NullNum(2))

	index := map[int]int{0: 0, 1: 1, 2: 2}
	bg := arithdb.BackgroundFromColumnRanges(d, map[string]arithdb.Interval{
		"P.rrp": arithdb.AtLeast(0),
		"P.dis": arithdb.Between(0, 1),
	}, index)

	if iv := bg[0]; iv.Lo != 0 || !math.IsInf(iv.Hi, 1) {
		t.Errorf("rrp null interval = %+v", iv)
	}
	if iv := bg[1]; iv.Lo != 0 || iv.Hi != 1 {
		t.Errorf("dis null interval = %+v", iv)
	}
	if iv := bg[2]; iv.Lo != 0 || iv.Hi != 1 {
		t.Errorf("shared null interval = %+v, want intersection [0,1]", iv)
	}
	// Nulls without constrained columns stay absent.
	d2 := arithdb.NewDatabase(s)
	d2.MustInsert("P", arithdb.NullNum(0), arithdb.Num(1))
	bg2 := arithdb.BackgroundFromColumnRanges(d2, map[string]arithdb.Interval{
		"P.dis": arithdb.Between(0, 1),
	}, map[int]int{0: 0})
	if len(bg2) != 0 {
		t.Errorf("unconstrained null got interval: %v", bg2)
	}
}

// TestEndToEndSQLPipeline is the integration test of the full Section 9
// pipeline at a tiny, fully checkable scale: SQL → candidates → μ, with
// the value verified against a hand-computed constraint.
func TestEndToEndSQLPipeline(t *testing.T) {
	s := arithdb.MustSchema(
		arithdb.MustRelation("Products",
			arithdb.Col("id", arithdb.BaseCol),
			arithdb.Col("rrp", arithdb.NumCol),
			arithdb.Col("dis", arithdb.NumCol)),
		arithdb.MustRelation("Market", arithdb.Col("rrp", arithdb.NumCol)),
	)
	d := arithdb.NewDatabase(s)
	d.MustInsert("Products", arithdb.Base("p1"), arithdb.NullNum(0), arithdb.Num(0.8))
	d.MustInsert("Market", arithdb.Num(80))

	q, err := arithdb.ParseSQL(`SELECT P.id FROM Products P, Market M WHERE P.rrp * P.dis <= M.rrp`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := arithdb.EvaluateSQL(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 {
		t.Fatalf("candidates: %v", res.Candidates)
	}
	engine := arithdb.NewEngine(arithdb.EngineOptions{Seed: 5})
	m, err := engine.MeasureFormula(res.Candidates[0].Phi, 0.01, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// 0.8·z ≤ 80 holds asymptotically iff z goes to −∞: μ = 1/2 exactly.
	if !m.Exact || m.Value != 0.5 {
		t.Errorf("μ = %g (exact=%v), want exactly 0.5", m.Value, m.Exact)
	}
	// Conditioned on rrp ≥ 0 the measure collapses to 0 but the answer
	// stays possible.
	bg := arithdb.BackgroundFromColumnRanges(d,
		map[string]arithdb.Interval{"Products.rrp": arithdb.AtLeast(0)}, res.Index)
	cond, err := engine.MeasureWithBackground(res.Candidates[0].Phi, bg, 0.02, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if cond.Value != 0 {
		t.Errorf("conditioned μ = %g, want 0", cond.Value)
	}
	sat, _, err := engine.Satisfiable(res.Candidates[0].Phi)
	if err != nil || !sat {
		t.Errorf("possibility: %v, %v; want true", sat, err)
	}
}

func TestSalesGeneratorThroughFacade(t *testing.T) {
	d, err := arithdb.GenerateSales(arithdb.SalesConfig{Seed: 1, Products: 100, Orders: 80, Market: 20})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 200 {
		t.Errorf("size = %d", d.Size())
	}
	for _, sql := range []string{
		arithdb.QueryCompetitiveAdvantage,
		arithdb.QueryNeverKnowinglyUndersold,
		arithdb.QueryUnfairDiscount,
	} {
		q, err := arithdb.ParseSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := arithdb.EvaluateSQL(q, d); err != nil {
			t.Fatal(err)
		}
	}
}
