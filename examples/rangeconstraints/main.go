// Rangeconstraints demonstrates the paper's Section 10 extensions, which
// this library implements on top of the core measure:
//
//  1. range constraints on columns ("price is non-negative, a discount
//     lies in [0,1]") conditioning the measure of certainty;
//  2. explicit priors per null replacing the agnostic uniform law;
//  3. LP-based possibility/certainty checks for linear constraints,
//     separating "μ = 0 but still possible" from "impossible".
package main

import (
	"fmt"
	"log"

	arithdb "repro"
)

func main() {
	s := arithdb.MustSchema(
		arithdb.MustRelation("Products",
			arithdb.Col("id", arithdb.BaseCol),
			arithdb.Col("rrp", arithdb.NumCol),
			arithdb.Col("dis", arithdb.NumCol)),
		arithdb.MustRelation("Market",
			arithdb.Col("rrp", arithdb.NumCol)),
	)
	d := arithdb.NewDatabase(s)
	// p1: discount fixed at 0.8, price unknown (⊤0).
	d.MustInsert("Products", arithdb.Base("p1"), arithdb.NullNum(0), arithdb.Num(0.8))
	// p2: price fixed at 120, discount unknown (⊤1).
	d.MustInsert("Products", arithdb.Base("p2"), arithdb.Num(120), arithdb.NullNum(1))
	// Best market offer: 80.
	d.MustInsert("Market", arithdb.Num(80))

	// Which products undercut the market? rrp·dis ≤ 80 gives the linear
	// constraints 0.8·⊤0 ≤ 80 (p1) and 120·⊤1 ≤ 80 (p2).
	sqlQ := arithdb.MustParseSQL(`SELECT P.id FROM Products P, Market M WHERE P.rrp * P.dis <= M.rrp`)
	res, err := arithdb.EvaluateSQL(sqlQ, d)
	if err != nil {
		log.Fatal(err)
	}
	engine := arithdb.NewEngine(arithdb.EngineOptions{Seed: 8})

	// Domain knowledge: prices non-negative, discounts within [0,1].
	bg := arithdb.BackgroundFromColumnRanges(d, map[string]arithdb.Interval{
		"Products.rrp": arithdb.AtLeast(0),
		"Products.dis": arithdb.Between(0, 1),
	}, res.Index)

	for _, cand := range res.Candidates {
		fmt.Printf("== candidate %s ==\n", cand.Tuple)

		plain, err := engine.MeasureFormula(cand.Phi, 0.005, 0.01)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  agnostic μ                   = %.3f\n", plain.Value)

		cond, err := engine.MeasureWithBackground(cand.Phi, bg, 0.005, 0.01)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  with column ranges           = %.3f\n", cond.Value)

		sat, _, err := engine.Satisfiable(cand.Phi)
		if err != nil {
			log.Fatal(err)
		}
		certain, err := engine.CertainlyTrue(cand.Phi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  possible %v, certain %v\n", sat, certain)
	}

	// Priors replace the agnostic law entirely: with rrp ~ U[50,150] the
	// p1 constraint 0.8·rrp ≤ 80 (rrp ≤ 100) holds with probability 1/2.
	p1 := res.Candidates[0]
	prob, err := engine.MeasureWithDistributions(p1.Phi, map[int]arithdb.Distribution{
		res.Index[0]: arithdb.UniformDist{Lo: 50, Hi: 150},
	}, 0.005, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\np1 with prior rrp ~ U[50,150]: P = %.3f (analytic 0.5)\n", prob.Value)

	fmt.Println(`
Reading the numbers:
  p1 (0.8·rrp ≤ 80): agnostic μ = 1/2 (rrp below or above 100 with equal
      asymptotic likelihood); knowing rrp ≥ 0 pushes μ to 0 (an unbounded
      non-negative price almost surely exceeds 100 in the limit) — yet the
      answer stays *possible*; a genuine prior gives the real probability.
  p2 (120·dis ≤ 80): agnostic μ = 1/2 again, but dis ∈ [0,1] is a bounded
      range, so the conditioned measure becomes the honest 2/3
      (= P(dis ≤ 2/3 | dis uniform in [0,1])).`)
}
