package arithdb_test

import (
	"testing"

	arithdb "repro"
	"repro/internal/realfmla"
)

// TestSessionFusedPipeline wires the public facade end to end: Session
// evaluation matches EvaluateSQL, and the fused MeasureSQL returns the
// same candidates with deterministic measures under every planner
// toggle.
func TestSessionFusedPipeline(t *testing.T) {
	d, err := arithdb.GenerateSales(arithdb.SalesConfig{
		Seed: 4, Products: 80, Orders: 60, Market: 24, Segments: 8, NullRate: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := `SELECT P.seg FROM Products P, Market M
		WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 6`

	q, err := arithdb.ParseSQL(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := arithdb.EvaluateSQL(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Candidates) == 0 {
		t.Fatal("workload produced no candidates")
	}

	var ref *arithdb.SQLMeasured
	// NoAdaptive: this test compares LIMIT-k candidates against
	// EvaluateSQL's first-k distinct tuples, the fixed-budget contract.
	// The adaptive race is covered by internal/core's adaptive suite.
	for _, opts := range []arithdb.EngineOptions{
		{Seed: 5, NoAdaptive: true},
		{Seed: 5, NoAdaptive: true, DisableJoinReorder: true, DisableDBIndexes: true, DisableHashJoin: true},
		{Seed: 5, NoAdaptive: true, Workers: 2},
	} {
		sess := arithdb.NewSession(d, opts)
		ev, err := sess.SQL(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(ev.Candidates) != len(want.Candidates) || ev.Derivations != want.Derivations {
			t.Fatalf("%+v: Session.SQL diverged from EvaluateSQL", opts)
		}

		got, err := sess.MeasureSQL(src, 0.05, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if got.Derivations != want.Derivations || len(got.Candidates) != len(want.Candidates) {
			t.Fatalf("%+v: MeasureSQL shape %d/%d, want %d/%d", opts,
				len(got.Candidates), got.Derivations, len(want.Candidates), want.Derivations)
		}
		for i, c := range got.Candidates {
			if !c.Tuple.Equal(want.Candidates[i].Tuple) || !realfmla.Equal(c.Phi, want.Candidates[i].Phi) {
				t.Fatalf("%+v: candidate %d diverged", opts, i)
			}
			if c.Measure.Value < 0 || c.Measure.Value > 1 {
				t.Fatalf("candidate %d: μ = %v", i, c.Measure.Value)
			}
		}
		if ref == nil {
			ref = got
			continue
		}
		// Planner toggles and worker counts must not change measures.
		for i := range ref.Candidates {
			if got.Candidates[i].Measure.Value != ref.Candidates[i].Measure.Value {
				t.Fatalf("%+v: measure %d = %v, want %v (toggles changed results)",
					opts, i, got.Candidates[i].Measure.Value, ref.Candidates[i].Measure.Value)
			}
		}
	}
}
