package core

import (
	"math/rand"
	"testing"

	"repro/internal/poly"
	"repro/internal/realfmla"
)

// detFormulas is a mix of linear and nonlinear formulas exercising every
// atom kernel of the compiled evaluator (dense linear rows, sparse
// cascades, nonlinear cascades, constants).
func detFormulas() []realfmla.Formula {
	quad := func(n, i, j int, rel realfmla.Rel) realfmla.Formula {
		p := poly.Var(n, i).Mul(poly.Var(n, j)).Sub(poly.Const(n, 1))
		return realfmla.FAtom{A: realfmla.Atom{P: p, Rel: rel}}
	}
	return []realfmla.Formula{
		linAtom(3, []float64{1, -1, 0}, 0, realfmla.LT),
		realfmla.And(
			linAtom(4, []float64{1, -1, 1, -1}, 2, realfmla.LE),
			realfmla.Or(
				linAtom(4, []float64{0, 0, 1, 0}, 0, realfmla.GT),
				quad(4, 0, 3, realfmla.LT))),
		realfmla.Or(
			quad(5, 0, 1, realfmla.GE),
			realfmla.FNot{F: linAtom(5, []float64{0, 1, 0, 0, -1}, 3, realfmla.LT)}),
	}
}

// TestAdditiveApproxDeterministicAcrossWorkers: for a fixed Options.Seed,
// AdditiveApprox returns bit-identical values across repeated runs and
// across worker counts — the contract that lets deployments tune Workers
// without changing any measured value.
func TestAdditiveApproxDeterministicAcrossWorkers(t *testing.T) {
	for i, phi := range detFormulas() {
		var ref Result
		for run := 0; run < 2; run++ {
			for _, workers := range []int{1, 4} {
				e := New(Options{Seed: 42, DisableExact: true, Workers: workers})
				res, err := e.AdditiveApprox(phi, 0.05, 0.25)
				if err != nil {
					t.Fatalf("formula %d workers %d: %v", i, workers, err)
				}
				if run == 0 && workers == 1 {
					ref = res
					continue
				}
				if res.Value != ref.Value {
					t.Errorf("formula %d run %d workers %d: value %v differs from reference %v",
						i, run, workers, res.Value, ref.Value)
				}
			}
		}
	}
}

// TestMeasureBatchDeterministicAcrossWorkers: MeasureBatch results are
// bit-identical across repeated runs and across Options.Workers settings.
func TestMeasureBatchDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	phis := detFormulas()
	for i := 0; i < 10; i++ {
		phis = append(phis, randOrderFormula(rng, 2+rng.Intn(3), 3))
	}
	var ref []Result
	for run := 0; run < 2; run++ {
		for _, workers := range []int{1, 4} {
			res, errs := MeasureBatch(Options{Seed: 9, DisableExact: true, Workers: workers},
				phis, 0.05, 0.25)
			for j, err := range errs {
				if err != nil {
					t.Fatalf("formula %d: %v", j, err)
				}
			}
			if ref == nil {
				ref = res
				continue
			}
			for j := range res {
				if res[j].Value != ref[j].Value {
					t.Errorf("run %d workers %d formula %d: value %v differs from reference %v",
						run, workers, j, res[j].Value, ref[j].Value)
				}
			}
		}
	}
}

// TestAdditiveApproxCacheInvariant: measuring through a warm compile cache
// and with caching disabled yields identical values — the cache is purely
// a preprocessing reuse, invisible to the sampled result.
func TestAdditiveApproxCacheInvariant(t *testing.T) {
	for i, phi := range detFormulas() {
		warm := New(Options{Seed: 3, DisableExact: true})
		if _, err := warm.AdditiveApprox(phi, 0.1, 0.25); err != nil {
			t.Fatal(err)
		}
		// Re-seed a fresh engine so the rng stream restarts, then compare a
		// cached second engine against one with the cache disabled.
		a := New(Options{Seed: 3, DisableExact: true})
		b := New(Options{Seed: 3, DisableExact: true, CompileCacheSize: -1})
		ra, err := a.AdditiveApprox(phi, 0.1, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		// Warm a's cache entry is per-engine; hit it a second time too.
		ra2, err := New(Options{Seed: 3, DisableExact: true}).AdditiveApprox(phi, 0.1, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.AdditiveApprox(phi, 0.1, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Value != rb.Value || ra.Value != ra2.Value {
			t.Errorf("formula %d: cached %v / %v vs uncached %v", i, ra.Value, ra2.Value, rb.Value)
		}
	}
}

// TestCompileCacheEviction: a working set larger than the cache keeps
// returning correct values (entries are evicted one at a time, and a
// recompiled formula behaves identically to a cached one).
func TestCompileCacheEviction(t *testing.T) {
	phis := detFormulas()
	tiny := New(Options{Seed: 5, DisableExact: true, CompileCacheSize: len(phis) - 1})
	big := New(Options{Seed: 5, DisableExact: true})
	for round := 0; round < 3; round++ {
		for i, phi := range phis {
			a, err := tiny.AdditiveApprox(phi, 0.1, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			b, err := big.AdditiveApprox(phi, 0.1, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			if a.Value != b.Value {
				t.Errorf("round %d formula %d: tiny-cache %v vs full-cache %v",
					round, i, a.Value, b.Value)
			}
		}
	}
}
