package wal

// Replication support: the primary-side tailer API the replication
// endpoints (internal/server) ship the log through, and the replica-side
// checkpoint installer (internal/replica) bootstraps from.
//
// The unit of shipping is the WAL record exactly as it exists on disk:
// sequence number plus encoded batch payload, checksummed with the same
// CRC32C the on-disk framing uses (Checksum). The primary re-verifies
// every record as it reads it off the log (parseRecord rejects bad
// checksums), sends seq/payload/crc, and the replica verifies the
// checksum again before replaying — a flipped bit anywhere between the
// primary's disk and the replica's memory is caught at one end or the
// other, never applied.
//
// A replica that falls behind a checkpoint truncation cannot be served
// from the log anymore: ReadFrom reports ErrTruncated and the replica
// re-bootstraps from the primary's newest checkpoint (CheckpointFiles →
// InstallCheckpoint), which by construction covers every truncated
// record.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrTruncated marks a ReadFrom whose requested records were folded into
// a checkpoint and truncated out of the log. The caller must bootstrap
// from the checkpoint instead — it covers everything that was dropped.
var ErrTruncated = errors.New("wal: requested records truncated into a checkpoint")

// CheckpointFile is one file of a serialized checkpoint directory, the
// unit of checkpoint shipping.
type CheckpointFile struct {
	Name string
	Data []byte
}

// ReadFrom returns the committed records with sequence numbers >= from,
// in log order. An empty slice means the caller is caught up (from ==
// Seq()+1). ErrTruncated means records at or above from existed but were
// truncated into a checkpoint; an error also reports a from beyond the
// durable frontier (a replica claiming records the primary never
// committed — divergence, not lag).
func (s *Store) ReadFrom(from uint64) ([]Record, error) {
	if from == 0 {
		from = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("wal: store is closed")
	}
	if from > s.seq+1 {
		return nil, fmt.Errorf("wal: read from %d beyond durable seq %d", from, s.seq)
	}
	if from == s.seq+1 {
		return nil, nil
	}
	data, err := s.fs.ReadFile(filepath.Join(s.dir, logName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, ErrTruncated
		}
		return nil, fmt.Errorf("wal: read log: %w", err)
	}
	var recs []Record
	off := 0
	for off < len(data) {
		seq, payload, n, ok := parseRecord(data[off:])
		if !ok {
			break // unsynced tail of an in-flight append; records before it are committed
		}
		off += n
		if seq > s.seq {
			break // appended but not yet applied/acknowledged
		}
		if seq >= from {
			recs = append(recs, Record{Seq: seq, Payload: payload})
		}
	}
	if len(recs) == 0 || recs[0].Seq != from {
		// The log no longer starts low enough: a checkpoint truncated the
		// prefix holding from.
		return nil, ErrTruncated
	}
	return recs, nil
}

// CommitWatch returns a channel closed when a batch commits after the
// call. Long-poll tailers take the channel, read the log, and block on
// the channel only when the read came back empty — taking it first makes
// the commit-then-wait race safe.
func (s *Store) CommitWatch() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commit
}

// CheckpointFiles reads the newest durable checkpoint: its covered
// sequence number and every file of its directory, in name order. The
// checkpoint lock is held for the whole read, so a concurrent checkpoint
// cannot remove the directory mid-stream.
func (s *Store) CheckpointFiles() (seq uint64, files []CheckpointFile, err error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	dir := filepath.Join(s.dir, s.ckptDir)
	names, err := s.fs.ReadDir(dir)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: checkpoint files: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := s.fs.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return 0, nil, fmt.Errorf("wal: checkpoint file %s: %w", name, err)
		}
		files = append(files, CheckpointFile{Name: name, Data: data})
	}
	return s.ckptSeq, files, nil
}

// HasCheckpoint reports whether dir holds a committed checkpoint
// manifest — i.e. whether Open can recover without a Seed. fs nil uses
// the real filesystem.
func HasCheckpoint(fs FS, dir string) (bool, error) {
	if fs == nil {
		fs = OSFS{}
	}
	_, err := fs.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// InstallCheckpoint adopts a fetched checkpoint as the baseline of dir:
// the files are written into checkpoint-<seq> with crash-safe writes,
// any local WAL is removed (the checkpoint supersedes local history —
// this is a replica adopting its primary's state), and the manifest
// rename commits the installation. A crash mid-install leaves either the
// old manifest governing (the fresh directory is swept as an orphan on
// the next Open) or the new one. fs nil uses the real filesystem.
func InstallCheckpoint(fs FS, dir string, seq uint64, files []CheckpointFile) error {
	if fs == nil {
		fs = OSFS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: install checkpoint: %w", err)
	}
	name := ckptName(seq)
	cdir := filepath.Join(dir, name)
	// A torn previous install may have left partial files; start clean.
	if err := fs.RemoveAll(cdir); err != nil {
		return fmt.Errorf("wal: install checkpoint: %w", err)
	}
	if err := fs.MkdirAll(cdir, 0o755); err != nil {
		return fmt.Errorf("wal: install checkpoint: %w", err)
	}
	for _, f := range files {
		if f.Name == "" || strings.ContainsAny(f.Name, "/\\") || f.Name == ".." {
			return fmt.Errorf("wal: install checkpoint: unsafe file name %q", f.Name)
		}
		if err := writeFileSync(fs, filepath.Join(cdir, f.Name), f.Data); err != nil {
			return fmt.Errorf("wal: install checkpoint file %s: %w", f.Name, err)
		}
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: install checkpoint: %w", err)
	}
	// Local WAL records are superseded: every one of them has seq <= the
	// installed checkpoint's (the checkpoint came from the primary this
	// store replicates), so dropping the file loses nothing replay would
	// keep.
	if err := fs.RemoveAll(filepath.Join(dir, logName)); err != nil {
		return fmt.Errorf("wal: install checkpoint: drop local log: %w", err)
	}
	manifest := fmt.Sprintf("arithdb-checkpoint v1\nseq %d\ndir %s\n", seq, name)
	if err := writeFileSync(fs, filepath.Join(dir, manifestName), []byte(manifest)); err != nil {
		return fmt.Errorf("wal: install checkpoint manifest: %w", err)
	}
	return nil
}
