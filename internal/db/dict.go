package db

import "fmt"

// dict is the per-database string dictionary: every base constant occurring
// anywhere in the database is interned once and referred to by a dense
// int32 id. The dictionary is append-only (the data model has no deletes),
// which makes it double as the Cbase(D) inventory and keeps codes stable
// for the lifetime of the database. Interning happens only on Insert;
// query literals are looked up read-only, so concurrent read-only sessions
// never mutate it.
type dict struct {
	codes map[string]int32
	strs  []string
}

// intern returns the id of s, assigning the next free id on first sight.
func (d *dict) intern(s string) int32 {
	if id, ok := d.codes[s]; ok {
		return id
	}
	if len(d.strs) >= maxID {
		panic(fmt.Sprintf("db: dictionary overflow at %d distinct base constants", len(d.strs)))
	}
	if d.codes == nil {
		d.codes = make(map[string]int32)
	}
	id := int32(len(d.strs))
	d.codes[s] = id
	d.strs = append(d.strs, s)
	return id
}

// code returns the id of s without interning, ok=false when s was never
// inserted.
func (d *dict) code(s string) (int32, bool) {
	id, ok := d.codes[s]
	return id, ok
}

// str returns the string interned under id.
func (d *dict) str(id int32) string { return d.strs[id] }

// clone returns an independent copy.
func (d *dict) clone() dict {
	c := dict{strs: append([]string(nil), d.strs...)}
	if d.codes != nil {
		c.codes = make(map[string]int32, len(d.codes))
		for s, id := range d.codes {
			c.codes[s] = id
		}
	}
	return c
}
