// Package sqlast defines the abstract syntax of the SQL dialect of the
// Section 9 experiment pipeline: SELECT–FROM–WHERE–LIMIT over joins with
// arithmetic conditions. It is a leaf package shared by the parser
// (package sqlfront), the logical planner (package plan) and the SQL→FO
// compiler, so that each layer can depend on the syntax without depending
// on the others.
package sqlast

import (
	"fmt"
	"strings"
)

// ColRef is a qualified column reference "Alias.col".
type ColRef struct {
	Table string // the FROM alias
	Col   string
}

// String renders "T.col".
func (c ColRef) String() string { return c.Table + "." + c.Col }

// TableRef is one FROM entry: a relation name with an alias.
type TableRef struct {
	Relation string
	Alias    string
}

// ExprKind discriminates numeric expression nodes.
type ExprKind uint8

// Expression node kinds.
const (
	ExprCol ExprKind = iota
	ExprConst
	ExprAdd
	ExprSub
	ExprMul
	ExprNeg
)

// Expr is a numeric expression over column references and literals.
// Division is folded into multiplication by the reciprocal at parse time
// (literal divisors only).
type Expr struct {
	Kind  ExprKind
	Col   ColRef  // ExprCol
	Const float64 // ExprConst
	L, R  *Expr   // binary nodes; Neg uses L
}

// String renders the expression.
func (e *Expr) String() string {
	switch e.Kind {
	case ExprCol:
		return e.Col.String()
	case ExprConst:
		return fmt.Sprintf("%g", e.Const)
	case ExprAdd:
		return fmt.Sprintf("(%s + %s)", e.L, e.R)
	case ExprSub:
		return fmt.Sprintf("(%s - %s)", e.L, e.R)
	case ExprMul:
		return fmt.Sprintf("(%s * %s)", e.L, e.R)
	case ExprNeg:
		return fmt.Sprintf("(-%s)", e.L)
	}
	return "?"
}

// CondKind discriminates WHERE conditions.
type CondKind uint8

// Condition kinds.
const (
	// CondBaseEq equates two base-typed columns (a join condition).
	CondBaseEq CondKind = iota
	// CondBaseEqConst equates a base-typed column with a string literal.
	CondBaseEqConst
	// CondNumCmp compares two numeric expressions.
	CondNumCmp
)

// CmpOp is a comparison operator of a numeric condition.
type CmpOp uint8

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Eq
	Ne
	Ge
	Gt
)

// String renders the SQL operator.
func (op CmpOp) String() string {
	return [...]string{"<", "<=", "=", "<>", ">=", ">"}[op]
}

// Condition is one WHERE conjunct.
type Condition struct {
	Kind CondKind

	// CondBaseEq / CondBaseEqConst
	LCol ColRef
	RCol ColRef // CondBaseEq
	Lit  string // CondBaseEqConst

	// CondNumCmp
	Op   CmpOp
	LExp *Expr
	RExp *Expr
}

// String renders the condition.
func (c Condition) String() string {
	switch c.Kind {
	case CondBaseEq:
		return fmt.Sprintf("%s = %s", c.LCol, c.RCol)
	case CondBaseEqConst:
		return fmt.Sprintf("%s = '%s'", c.LCol, c.Lit)
	case CondNumCmp:
		return fmt.Sprintf("%s %s %s", c.LExp, c.Op, c.RExp)
	}
	return "?"
}

// Query is a parsed SELECT statement: projection, joined tables, a
// conjunction of conditions, and an optional LIMIT.
type Query struct {
	Select []ColRef
	From   []TableRef
	Where  []Condition
	Limit  int // 0 = no limit
}

// String renders the query back as SQL.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, c := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	b.WriteString(" FROM ")
	for i, t := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Relation + " " + t.Alias)
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(c.String())
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}
