// Package shard hash-partitions relations across N stores and serves
// queries through a deterministic scatter-gather coordinator.
//
// Rows route to shards by a stable content hash at insert time (Hash):
// equal tuples always land on the same shard, so per-shard duplicate
// aggregation sees exactly the duplicates the single-store path would.
// The coordinator keeps a per-relation routing log — the shard of every
// row in global insert order — which lets it reassemble the exact
// single-store state: Gather materializes the merged database with
// every relation's rows in their original order, and the scatter-gather
// query path (see coordinator.go) merges per-shard derivation streams
// back into the global derivation order with a frontier walk. Results
// are therefore bit-identical to an unsharded database holding the same
// rows, for every shard count.
//
// The store itself is an in-memory coordinator over in-process shard
// databases (the `arithdbd -shards=N` topology). Durable sharding
// composes at the fleet level instead: run one arithdbd per shard (its
// own WAL and -replica-of chain) and route writes with client.Sharded,
// which uses the same Hash.
package shard

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/db"
	"repro/internal/schema"
	"repro/internal/value"
)

// fnv-1a constants, matching hash/fnv (inlined so the hash is
// explicitly pinned: routing must stay stable across processes and
// releases, because a fleet's data placement depends on it).
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash is the stable routing hash of a tuple: FNV-1a over a canonical
// encoding of the tuple's content (kind tag + payload per value). It
// depends only on the tuple's values — never on dictionary codes, row
// positions, or process state — so a row hashes alike on every node.
// Tuples that compare equal (value.Tuple.Key) hash equal: every NaN
// payload collapses to one pattern, while the sign of zero is kept,
// mirroring the candidate grouping keys of the executor.
func Hash(t value.Tuple) uint64 {
	h := uint64(offset64)
	for _, v := range t {
		h = (h ^ uint64(v.Kind())) * prime64
		switch v.Kind() {
		case value.BaseConst:
			s := v.Str()
			h = (h ^ uint64(len(s))) * prime64
			for i := 0; i < len(s); i++ {
				h = (h ^ uint64(s[i])) * prime64
			}
		case value.NumConst:
			h = (h ^ canonNumBits(v.Float())) * prime64
		case value.BaseNull, value.NumNull:
			h = (h ^ uint64(v.NullID())) * prime64
		}
	}
	return h
}

// canonNumBits canonicalizes a float payload for hashing: all NaNs
// collapse to one bit pattern (they group as one candidate), -0 and +0
// stay distinct (they are distinct candidates).
func canonNumBits(v float64) uint64 {
	if math.IsNaN(v) {
		return 0x7ff8000000000001
	}
	return math.Float64bits(v)
}

// ShardOf returns the shard owning a tuple under an n-way split.
func ShardOf(t value.Tuple, n int) int {
	if n <= 1 {
		return 0
	}
	return int(Hash(t) % uint64(n))
}

// Store is an n-way hash-sharded database: writes scatter rows to
// per-shard columnar stores, reads go through the deterministic
// scatter-gather coordinator. A Store serializes its own writes; reads
// (Gather, the coordinator, stats) are safe concurrently with writes —
// they capture immutable per-shard snapshots under the store lock.
type Store struct {
	mu     sync.RWMutex
	schema *schema.Schema
	shards []*db.Database

	// order is the routing log: per relation, the shard of every row in
	// global insert order. It is what lets the gather side reassemble
	// the exact single-store row order (and with it, bit-identical
	// candidate enumeration) from the per-shard subsequences.
	order map[string][]uint8

	version int64

	// gathered caches the merged snapshot (see Gather); gatheredAt is
	// the store version it was built at.
	gathered   *db.Database
	gatheredAt int64
}

// maxShards bounds the fan-out; the routing log stores shard ids as
// bytes.
const maxShards = 256

// New returns an empty store sharding the schema's relations n ways.
func New(s *schema.Schema, n int) (*Store, error) {
	if n < 1 || n > maxShards {
		return nil, fmt.Errorf("shard: shard count %d out of range [1,%d]", n, maxShards)
	}
	st := &Store{schema: s, shards: make([]*db.Database, n), order: make(map[string][]uint8)}
	for i := range st.shards {
		st.shards[i] = db.New(s)
	}
	return st, nil
}

// FromDatabase returns a store holding the database's rows, scattered
// across n shards in their original relation order — so queries against
// the store are bit-identical to queries against d itself.
func FromDatabase(d *db.Database, n int) (*Store, error) {
	st, err := New(d.Schema(), n)
	if err != nil {
		return nil, err
	}
	for _, r := range d.Schema().Relations() {
		ts := d.Tuples(r.Name)
		if len(ts) == 0 {
			continue
		}
		if err := st.InsertBatch(r.Name, ts); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// Schema returns the store's schema.
func (st *Store) Schema() *schema.Schema { return st.schema }

// NumShards returns the shard count.
func (st *Store) NumShards() int { return len(st.shards) }

// Version reports the number of committed batches. Two reads returning
// the same version bracket an unchanged store.
func (st *Store) Version() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.version
}

// Size returns the total number of rows across all shards.
func (st *Store) Size() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	n := 0
	for _, d := range st.shards {
		n += d.Size()
	}
	return n
}

// Len returns the number of rows in the named relation across all
// shards (the routing log holds one entry per row).
func (st *Store) Len(rel string) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.order[rel])
}

// ShardSizes returns the per-shard row counts — the balance a hash
// split actually achieved.
func (st *Store) ShardSizes() []int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]int, len(st.shards))
	for i, d := range st.shards {
		out[i] = d.Size()
	}
	return out
}

// Insert adds one tuple to the named relation on its hash shard.
func (st *Store) Insert(rel string, t value.Tuple) error {
	return st.InsertBatch(rel, []value.Tuple{t})
}

// InsertBatch scatters a batch across the shards as one atomic store
// commit: every tuple is validated before the first is appended
// anywhere (validation is schema-only, so checking against one shard
// decides for all), then each shard's sub-batch commits in arrival
// order and the routing log records the interleaving.
func (st *Store) InsertBatch(rel string, tuples []value.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.shards[0].CheckBatch(rel, tuples); err != nil {
		return err
	}
	n := len(st.shards)
	sub := make([][]value.Tuple, n)
	route := make([]uint8, len(tuples))
	for i, t := range tuples {
		s := ShardOf(t, n)
		sub[s] = append(sub[s], t)
		route[i] = uint8(s)
	}
	for s, ts := range sub {
		if len(ts) == 0 {
			continue
		}
		if err := st.shards[s].InsertBatch(rel, ts); err != nil {
			// Validation already passed, so this is a shard-store
			// invariant failure, not a bad batch; surface it loudly.
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	st.order[rel] = append(st.order[rel], route...)
	st.version++
	return nil
}

// view is a consistent read-side cut of the store: immutable per-shard
// snapshots plus the routing log headers, captured together under the
// store lock.
type view struct {
	shards  []*db.Database
	order   map[string][]uint8
	version int64
}

// snapshotView captures a consistent view for readers. The routing-log
// slices are append-only, so sharing their headers is safe: a
// concurrent writer either appends in place beyond the captured length
// or reallocates, neither of which a holder of the old header observes.
func (st *Store) snapshotView() view {
	st.mu.RLock()
	defer st.mu.RUnlock()
	v := view{
		shards:  make([]*db.Database, len(st.shards)),
		order:   make(map[string][]uint8, len(st.order)),
		version: st.version,
	}
	for i, d := range st.shards {
		v.shards[i] = d.Snapshot()
	}
	for rel, o := range st.order {
		v.order[rel] = o
	}
	return v
}

// Gather materializes the merged database: every relation's rows in
// their original global insert order, exactly as an unsharded database
// receiving the same inserts would hold them. The result is an
// immutable snapshot, cached per store version, and is the reference
// the scatter-gather results are bit-identical to; the coordinator also
// runs multi-relation (join) plans over it directly.
func (st *Store) Gather() (*db.Database, error) {
	st.mu.RLock()
	if st.gathered != nil && st.gatheredAt == st.version {
		g := st.gathered
		st.mu.RUnlock()
		return g, nil
	}
	st.mu.RUnlock()

	v := st.snapshotView()
	g := db.New(st.schema)
	for _, r := range st.schema.Relations() {
		o := v.order[r.Name]
		if len(o) == 0 {
			continue
		}
		perShard := make([][]value.Tuple, len(v.shards))
		for s, d := range v.shards {
			perShard[s] = d.Tuples(r.Name)
		}
		next := make([]int, len(v.shards))
		merged := make([]value.Tuple, len(o))
		for i, s := range o {
			merged[i] = perShard[s][next[s]]
			next[s]++
		}
		if err := g.InsertBatch(r.Name, merged); err != nil {
			return nil, fmt.Errorf("shard: gather %s: %w", r.Name, err)
		}
	}
	snap := g.Snapshot()

	st.mu.Lock()
	// Cache only if no write landed while we were merging.
	if v.version == st.version {
		st.gathered, st.gatheredAt = snap, v.version
	}
	st.mu.Unlock()
	return snap, nil
}
