package sqlfront

// Parity suite for the planner/executor refactor: the streaming pipeline
// (plan.Build + exec.Collect, under every toggle combination) must
// reproduce the pre-refactor one-shot evaluator (reference_test.go)
// byte for byte — candidates in derivation order, Phi DNFs with
// disjuncts and atoms in derivation order, null indexing, and derivation
// counts — on randomized queries over generated sales databases.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/realfmla"
	"repro/internal/schema"
	"repro/internal/value"
)

// compareResults fails the test unless got is byte-identical to want.
func compareResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Derivations != want.Derivations {
		t.Fatalf("%s: derivations = %d, want %d", label, got.Derivations, want.Derivations)
	}
	if len(got.NullIDs) != len(want.NullIDs) {
		t.Fatalf("%s: nullIDs = %v, want %v", label, got.NullIDs, want.NullIDs)
	}
	for i := range want.NullIDs {
		if got.NullIDs[i] != want.NullIDs[i] {
			t.Fatalf("%s: nullIDs = %v, want %v", label, got.NullIDs, want.NullIDs)
		}
	}
	if len(got.Index) != len(want.Index) {
		t.Fatalf("%s: index = %v, want %v", label, got.Index, want.Index)
	}
	for k, v := range want.Index {
		if got.Index[k] != v {
			t.Fatalf("%s: index = %v, want %v", label, got.Index, want.Index)
		}
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("%s: %d candidates, want %d", label, len(got.Candidates), len(want.Candidates))
	}
	for i := range want.Candidates {
		if !got.Candidates[i].Tuple.Equal(want.Candidates[i].Tuple) {
			t.Fatalf("%s: candidate %d tuple = %v, want %v (order-sensitive)",
				label, i, got.Candidates[i].Tuple, want.Candidates[i].Tuple)
		}
		if !realfmla.Equal(got.Candidates[i].Phi, want.Candidates[i].Phi) {
			t.Fatalf("%s: candidate %d (%v) Phi =\n  %s\nwant\n  %s",
				label, i, got.Candidates[i].Tuple, got.Candidates[i].Phi, want.Candidates[i].Phi)
		}
	}
}

// execCombos runs the query through the planner/executor under every
// toggle combination and checks each against want.
func execCombos(t *testing.T, q *Query, d *db.Database, want *Result) {
	t.Helper()
	for _, reorder := range []bool{false, true} {
		p, err := plan.Build(q, d, plan.Options{Reorder: reorder})
		if err != nil {
			t.Fatalf("plan.Build(reorder=%v): %v", reorder, err)
		}
		for _, noIdx := range []bool{false, true} {
			for _, noHash := range []bool{false, true} {
				label := fmt.Sprintf("reorder=%v noIdx=%v noHash=%v [%s]", reorder, noIdx, noHash, q)
				got, err := exec.Collect(p, d, exec.Options{NoDBIndexes: noIdx, NoHashJoin: noHash})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				compareResults(t, label, got, want)
			}
		}
	}
}

// checkParity compares Evaluate and all executor combos with the
// reference evaluator, including error agreement.
func checkParity(t *testing.T, q *Query, d *db.Database) {
	t.Helper()
	want, refErr := referenceEvaluate(q, d)
	got, newErr := Evaluate(q, d)
	if (refErr == nil) != (newErr == nil) {
		t.Fatalf("error mismatch on %s: reference=%v new=%v", q, refErr, newErr)
	}
	if refErr != nil {
		return
	}
	compareResults(t, "Evaluate ["+q.String()+"]", got, want)
	execCombos(t, q, d, want)
}

func genSales(t testing.TB, seed int64) *db.Database {
	t.Helper()
	d, err := datagen.Generate(datagen.Config{
		Seed: seed, Products: 40, Orders: 30, Market: 12, Segments: 5,
		NullRate: 0.3, MarketNullRate: 0.6, BaseNullRate: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// queryGen builds random (mostly valid) queries over the sales schema.
type queryGen struct {
	rng  *rand.Rand
	rels []struct {
		name string
		cols []schema.Column
	}
}

func newQueryGen(rng *rand.Rand) *queryGen {
	g := &queryGen{rng: rng}
	for _, r := range datagen.Schema().Relations() {
		g.rels = append(g.rels, struct {
			name string
			cols []schema.Column
		}{r.Name, r.Columns})
	}
	return g
}

func (g *queryGen) col(rel int, t schema.ColType) (string, bool) {
	var opts []string
	for _, c := range g.rels[rel].cols {
		if c.Type == t {
			opts = append(opts, c.Name)
		}
	}
	if len(opts) == 0 {
		return "", false
	}
	return opts[g.rng.Intn(len(opts))], true
}

func (g *queryGen) expr(aliases []string, relOf []int, depth int) *Expr {
	switch {
	case depth > 0 && g.rng.Intn(3) == 0:
		k := ExprKind([]ExprKind{ExprAdd, ExprSub, ExprMul}[g.rng.Intn(3)])
		return &Expr{Kind: k, L: g.expr(aliases, relOf, depth-1), R: g.expr(aliases, relOf, depth-1)}
	case depth > 0 && g.rng.Intn(5) == 0:
		return &Expr{Kind: ExprNeg, L: g.expr(aliases, relOf, depth-1)}
	case g.rng.Intn(3) == 0:
		return &Expr{Kind: ExprConst, Const: float64(g.rng.Intn(41) - 20)}
	default:
		a := g.rng.Intn(len(aliases))
		col, ok := g.col(relOf[a], schema.Num)
		if !ok {
			return &Expr{Kind: ExprConst, Const: float64(g.rng.Intn(41) - 20)}
		}
		return &Expr{Kind: ExprCol, Col: ColRef{Table: aliases[a], Col: col}}
	}
}

func (g *queryGen) query() *Query {
	q := &Query{}
	nt := 1 + g.rng.Intn(3)
	aliases := make([]string, nt)
	relOf := make([]int, nt)
	for i := 0; i < nt; i++ {
		relOf[i] = g.rng.Intn(len(g.rels))
		aliases[i] = fmt.Sprintf("T%d", i)
		q.From = append(q.From, TableRef{Relation: g.rels[relOf[i]].name, Alias: aliases[i]})
	}
	// Projection: 1-2 random columns of random sort.
	for n := 1 + g.rng.Intn(2); n > 0; n-- {
		a := g.rng.Intn(nt)
		cols := g.rels[relOf[a]].cols
		c := cols[g.rng.Intn(len(cols))]
		q.Select = append(q.Select, ColRef{Table: aliases[a], Col: c.Name})
	}
	// Join conditions: for each adjacent pair, usually a base equality
	// (sometimes sort-mismatched or over numeric columns, exercising the
	// normalizer and error parity).
	for i := 1; i < nt; i++ {
		if g.rng.Intn(4) == 0 {
			continue // leave a cartesian product in
		}
		lt := schema.ColType(schema.Base)
		if g.rng.Intn(5) == 0 {
			lt = schema.Num
		}
		lcol, lok := g.col(relOf[i-1], lt)
		rcol, rok := g.col(relOf[i], lt)
		if !lok || !rok {
			continue
		}
		l := ColRef{Table: aliases[i-1], Col: lcol}
		r := ColRef{Table: aliases[i], Col: rcol}
		q.Where = append(q.Where, Condition{
			Kind: CondBaseEq, LCol: l, RCol: r, Op: Eq,
			LExp: &Expr{Kind: ExprCol, Col: l}, RExp: &Expr{Kind: ExprCol, Col: r},
		})
	}
	// Constant filters.
	if g.rng.Intn(2) == 0 {
		a := g.rng.Intn(nt)
		if col, ok := g.col(relOf[a], schema.Base); ok {
			q.Where = append(q.Where, Condition{
				Kind: CondBaseEqConst,
				LCol: ColRef{Table: aliases[a], Col: col},
				Lit:  fmt.Sprintf("seg%d", g.rng.Intn(5)),
			})
		}
	}
	// Numeric conditions.
	for n := g.rng.Intn(3); n > 0; n-- {
		q.Where = append(q.Where, Condition{
			Kind: CondNumCmp,
			Op:   CmpOp(g.rng.Intn(6)),
			LExp: g.expr(aliases, relOf, 2),
			RExp: g.expr(aliases, relOf, 2),
		})
	}
	if g.rng.Intn(3) == 0 {
		q.Limit = 1 + g.rng.Intn(5)
	}
	return q
}

// TestPlannerExecutorParityRandom is the randomized parity suite of the
// refactor's acceptance criteria.
func TestPlannerExecutorParityRandom(t *testing.T) {
	for _, dbSeed := range []int64{11, 22, 33} {
		d := genSales(t, dbSeed)
		g := newQueryGen(rand.New(rand.NewSource(1000 * dbSeed)))
		for i := 0; i < 60; i++ {
			checkParity(t, g.query(), d)
		}
	}
}

// TestParityExperimentQueries pins parity on the paper's three
// decision-support queries (with and without their LIMIT).
func TestParityExperimentQueries(t *testing.T) {
	d, err := datagen.Generate(datagen.Config{
		Seed: 2020, Products: 300, Orders: 200, Market: 60, Segments: 30,
		NullRate: 0.1, MarketNullRate: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{datagen.CompetitiveAdvantage, datagen.NeverKnowinglyUndersold, datagen.UnfairDiscount} {
		q := MustParse(sql)
		checkParity(t, q, d)
		q.Limit = 0
		checkParity(t, q, d)
	}
}

// TestParityLimitOrderSensitivity pins the order-sensitive semantics of
// LIMIT over the implicit DISTINCT: the first n distinct tuples in
// derivation order are kept, and every derivation of a kept tuple — even
// one enumerated after the limit is reached — contributes to its
// constraint.
func TestParityLimitOrderSensitivity(t *testing.T) {
	s := schema.MustNew(
		schema.MustRelation("R",
			schema.Column{Name: "g", Type: schema.Base},
			schema.Column{Name: "x", Type: schema.Num}),
		schema.MustRelation("S",
			schema.Column{Name: "g", Type: schema.Base},
			schema.Column{Name: "y", Type: schema.Num}),
	)
	d := db.New(s)
	// Interleaved groups so distinct-tuple order differs from row order,
	// with nulls so late derivations add real constraints.
	d.MustInsert("R", value.Base("a"), value.NullNum(0))
	d.MustInsert("R", value.Base("b"), value.Num(1))
	d.MustInsert("R", value.Base("a"), value.Num(2))
	d.MustInsert("R", value.Base("c"), value.NullNum(1))
	d.MustInsert("R", value.Base("b"), value.NullNum(2))
	d.MustInsert("S", value.Base("a"), value.Num(3))
	d.MustInsert("S", value.Base("b"), value.NullNum(3))
	d.MustInsert("S", value.Base("a"), value.NullNum(4))

	for _, src := range []string{
		`SELECT R.g FROM R R LIMIT 1`,
		`SELECT R.g FROM R R LIMIT 2`,
		`SELECT R.g FROM R R WHERE R.x > 0 LIMIT 2`,
		`SELECT R.g FROM R R, S S WHERE R.g = S.g LIMIT 1`,
		`SELECT R.g FROM R R, S S WHERE R.g = S.g AND R.x <= S.y LIMIT 2`,
		`SELECT S.g, R.x FROM R R, S S WHERE R.g = S.g AND R.x <= S.y LIMIT 3`,
	} {
		checkParity(t, MustParse(src), d)
	}

	// Kept-tuple constraints must include post-limit derivations: R.g='a'
	// appears at rows 0 and 2; with LIMIT 1 its Phi still covers row 2.
	res, err := Evaluate(MustParse(`SELECT R.g FROM R R WHERE R.x > 0 LIMIT 1`), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 || res.Candidates[0].Tuple[0].Str() != "a" {
		t.Fatalf("candidates = %v", res.Candidates)
	}
	// Phi = (z0 > 0) ∨ true — the second derivation (x=2) is constraint-free,
	// so the disjunction collapses to true.
	if _, ok := res.Candidates[0].Phi.(realfmla.FTrue); !ok {
		t.Fatalf("Phi = %s, want true (post-limit derivation must count)", res.Candidates[0].Phi)
	}
}

// TestParitySignedZeroCandidates pins the tuple-grouping contract on the
// edge the fused columnar aggregation could get wrong: -0 and +0 are
// distinct projected candidates (value.Tuple.Key keeps the sign of
// zero), while NaN payloads collapse into one.
func TestParitySignedZeroCandidates(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R",
		schema.Column{Name: "x", Type: schema.Num}))
	d := db.New(s)
	d.MustInsert("R", value.Num(0))
	d.MustInsert("R", value.Num(math.Copysign(0, -1)))
	d.MustInsert("R", value.Num(0))
	checkParity(t, MustParse(`SELECT R.x FROM R R`), d)
	res, err := Evaluate(MustParse(`SELECT R.x FROM R R`), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("%d candidates, want 2 (+0 and -0 are distinct)", len(res.Candidates))
	}
}

// TestReorderedJoinRestoresDerivationOrder forces a plan whose FROM order
// starts with a cartesian product (so the planner reorders) and checks
// byte-identical output.
func TestReorderedJoinRestoresDerivationOrder(t *testing.T) {
	d := genSales(t, 7)
	// FROM order T0 (Orders), T1 (Products), T2 (Market): T1 joins T2 by
	// seg, T0 is unrelated — the naive order does |Orders|×|Products|
	// work before the equality join; the planner pulls the join forward.
	q := MustParse(`SELECT T1.seg FROM Orders T0, Products T1, Market T2
		WHERE T1.seg = T2.seg AND T1.rrp * T1.dis <= T2.rrp * T2.dis LIMIT 10`)
	p, err := plan.Build(q, d, plan.Options{Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Identity {
		t.Fatalf("planner kept the cartesian-first order %v", p.Order)
	}
	checkParity(t, q, d)
}
