package fo

import (
	"fmt"
)

// ParseQuery parses a query declaration of the form
//
//	q(s:base, total:num) := exists i:base, p:num .
//	    (Products(i, s, p, total) and p * 0.9 <= total)
//
// The head lists the free variables with their sorts; a head of the form
// q() declares a Boolean query. The body grammar:
//
//	formula  := or ( "->" formula )?            implication, right-assoc
//	or       := and ( "or" and )*
//	and      := unary ( "and" unary )*
//	unary    := "not" unary
//	          | ("exists"|"forall") decls "." unary
//	          | primary
//	primary  := "true" | "false"
//	          | Rel "(" terms ")"               relation atom
//	          | term cmp term                   cmp ∈ <, <=, =, !=, >=, >, ==
//	          | "(" formula ")"
//	term     := mul (("+"|"-") mul)* ; mul := unaryT (("*"|"/") unaryT)*
//	unaryT   := "-" unaryT | number | "quoted base constant" | var | "(" term ")"
//
// "==" compares base-sorted terms; the arithmetic comparators compare
// numerical terms. Division is permitted by nonzero numeric literals only
// (it is a definable shortcut in the paper's language). "#" starts a
// comment to end of line.
func ParseQuery(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input %q", p.peek().text)
	}
	return q, nil
}

// ParseFormula parses a bare formula (no head). Free variables must be
// declared by the caller when the formula is wrapped into a Query.
func ParseFormula(input string) (Formula, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input %q", p.peek().text)
	}
	return f, nil
}

// MustParseQuery is ParseQuery that panics on error, for tests and
// statically known queries in examples.
func MustParseQuery(input string) *Query {
	q, err := ParseQuery(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token   { return p.toks[p.i] }
func (p *parser) next() token   { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool   { return p.peek().kind == tokEOF }
func (p *parser) save() int     { return p.i }
func (p *parser) restore(m int) { p.i = m }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("fo: parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptSym(s string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q, found %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokIdent && t.text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.i++
	return t.text, nil
}

// query := ident "(" decls? ")" ":=" formula
func (p *parser) query() (*Query, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var free []FreeVar
	if !p.acceptSym(")") {
		for {
			v, srt, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			free = append(free, FreeVar{Name: v, Sort: srt})
			if p.acceptSym(")") {
				break
			}
			if err := p.expectSym(","); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectSym(":="); err != nil {
		return nil, err
	}
	body, err := p.formula()
	if err != nil {
		return nil, err
	}
	return &Query{Name: name, Free: free, Body: body}, nil
}

// keywords that cannot name variables.
var reservedWords = map[string]bool{
	"and": true, "or": true, "not": true,
	"exists": true, "forall": true, "true": true, "false": true,
}

// varDecl := ident ":" ("base"|"num")
func (p *parser) varDecl() (string, Sort, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", 0, err
	}
	if reservedWords[name] {
		return "", 0, p.errf("keyword %q cannot name a variable", name)
	}
	if err := p.expectSym(":"); err != nil {
		return "", 0, err
	}
	srt, err := p.expectIdent()
	if err != nil {
		return "", 0, err
	}
	switch srt {
	case "base":
		return name, SortBase, nil
	case "num":
		return name, SortNum, nil
	default:
		return "", 0, p.errf("expected sort base or num, found %q", srt)
	}
}

func (p *parser) formula() (Formula, error) {
	l, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.acceptSym("->") {
		r, err := p.formula()
		if err != nil {
			return nil, err
		}
		return Implies{l, r}, nil
	}
	return l, nil
}

func (p *parser) orExpr() (Formula, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Or{l, r}
	}
	return l, nil
}

func (p *parser) andExpr() (Formula, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = And{l, r}
	}
	return l, nil
}

func (p *parser) unary() (Formula, error) {
	switch {
	case p.acceptKeyword("not"):
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not{f}, nil
	case p.acceptKeyword("exists"):
		return p.quantified(true)
	case p.acceptKeyword("forall"):
		return p.quantified(false)
	default:
		return p.primary()
	}
}

// quantified parses "decl (, decl)* . formula" after the quantifier
// keyword. The quantifier scope extends as far right as possible, the
// standard convention; multiple binders are sugar for nested single
// quantifiers.
func (p *parser) quantified(existential bool) (Formula, error) {
	var decls []FreeVar
	for {
		v, srt, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		decls = append(decls, FreeVar{Name: v, Sort: srt})
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym("."); err != nil {
		return nil, err
	}
	body, err := p.formula()
	if err != nil {
		return nil, err
	}
	for i := len(decls) - 1; i >= 0; i-- {
		if existential {
			body = Exists{Var: decls[i].Name, Sort: decls[i].Sort, Body: body}
		} else {
			body = Forall{Var: decls[i].Name, Sort: decls[i].Sort, Body: body}
		}
	}
	return body, nil
}

func (p *parser) primary() (Formula, error) {
	if p.acceptKeyword("true") {
		return True{}, nil
	}
	if p.acceptKeyword("false") {
		return False{}, nil
	}
	// Relation atom: ident "(" ... — but an identifier can also start a
	// comparison term, and "(" can open either a parenthesized formula or a
	// parenthesized term. Try a comparison first, then fall back to a
	// parenthesized formula.
	if t := p.peek(); t.kind == tokIdent && p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
		return p.relAtom()
	}
	mark := p.save()
	if f, err := p.comparison(); err == nil {
		return f, nil
	}
	p.restore(mark)
	if p.acceptSym("(") {
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	return nil, p.errf("expected formula, found %q", p.peek().text)
}

func (p *parser) relAtom() (Formula, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var args []Term
	if !p.acceptSym(")") {
		for {
			t, err := p.term()
			if err != nil {
				return nil, err
			}
			args = append(args, t)
			if p.acceptSym(")") {
				break
			}
			if err := p.expectSym(","); err != nil {
				return nil, err
			}
		}
	}
	return Atom{Rel: name, Args: args}, nil
}

func (p *parser) comparison() (Formula, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokSymbol {
		return nil, p.errf("expected comparison operator, found %q", t.text)
	}
	var op CmpOp
	switch t.text {
	case "<":
		op = Lt
	case "<=":
		op = Le
	case "=":
		op = EqNum
	case "!=":
		op = NeNum
	case ">=":
		op = Ge
	case ">":
		op = Gt
	case "==":
		p.i++
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		return BaseEq{l, r}, nil
	default:
		return nil, p.errf("expected comparison operator, found %q", t.text)
	}
	p.i++
	r, err := p.term()
	if err != nil {
		return nil, err
	}
	return Cmp{Op: op, L: l, R: r}, nil
}

func (p *parser) term() (Term, error) {
	l, err := p.mulTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSym("+"):
			r, err := p.mulTerm()
			if err != nil {
				return nil, err
			}
			l = Add{l, r}
		case p.acceptSym("-"):
			r, err := p.mulTerm()
			if err != nil {
				return nil, err
			}
			l = Sub{l, r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulTerm() (Term, error) {
	l, err := p.unaryTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSym("*"):
			r, err := p.unaryTerm()
			if err != nil {
				return nil, err
			}
			l = Mul{l, r}
		case p.acceptSym("/"):
			// Division is a shortcut: only by a nonzero numeric literal,
			// possibly negated.
			r, err := p.unaryTerm()
			if err != nil {
				return nil, err
			}
			c, ok := constValue(r)
			if !ok {
				return nil, p.errf("division is only supported by numeric literals, found %s", r)
			}
			if c == 0 {
				return nil, p.errf("division by zero literal")
			}
			l = Mul{l, NumConst{1 / c}}
		default:
			return l, nil
		}
	}
}

func constValue(t Term) (float64, bool) {
	switch x := t.(type) {
	case NumConst:
		return x.Value, true
	case Neg:
		c, ok := constValue(x.X)
		return -c, ok
	}
	return 0, false
}

func (p *parser) unaryTerm() (Term, error) {
	t := p.peek()
	switch {
	case t.kind == tokSymbol && t.text == "-":
		p.i++
		x, err := p.unaryTerm()
		if err != nil {
			return nil, err
		}
		// Fold negative numeric literals so that constants carry their sign.
		if c, ok := x.(NumConst); ok {
			return NumConst{-c.Value}, nil
		}
		return Neg{x}, nil
	case t.kind == tokNumber:
		p.i++
		return NumConst{t.num}, nil
	case t.kind == tokString:
		p.i++
		return BaseConst{t.text}, nil
	case t.kind == tokIdent:
		// Keywords cannot be used as variables.
		switch t.text {
		case "and", "or", "not", "exists", "forall", "true", "false":
			return nil, p.errf("keyword %q cannot be a term", t.text)
		}
		p.i++
		return Var{t.text}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.i++
		x, err := p.term()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, p.errf("expected term, found %q", t.text)
	}
}
