package core

import (
	"sync"

	"repro/internal/realfmla"
)

// itemOptions derives the per-item engine options of a concurrent
// measurement pool (MeasureBatch, Engine.MeasureSQL): a deterministic
// per-index seed, and no nested sampling fan-out unless explicitly
// requested — the pool is already GOMAXPROCS wide, and values are
// Workers-independent, so this only affects scheduling. Both pools MUST
// share this function; it is the determinism contract tying MeasureSQL
// to MeasureBatch.
func itemOptions(o Options, idx int) Options {
	o.Seed += int64(idx) * 1_000_003
	if o.Workers == 0 {
		o.Workers = 1
	}
	return o
}

// MeasureBatch computes measures for many formulas concurrently — the
// shape of the experiment pipeline, where every candidate tuple of a SQL
// result needs its own confidence level. Engines are not safe for
// concurrent use, so each formula gets its own engine, seeded
// deterministically from the parent options and the formula's index:
// results are identical to a sequential run regardless of scheduling.
// A nil error slice entry means the corresponding result is valid.
func MeasureBatch(opts Options, phis []realfmla.Formula, eps, delta float64) ([]Result, []error) {
	n := len(phis)
	results := make([]Result, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs
	}
	o := opts.withDefaults()
	workers := o.poolWorkers()
	if workers > n {
		workers = n
	}
	// One shared compiled-kernel cache per batch: duplicate formulas
	// compile once, and sharing cannot change values (see kernelCache).
	var kernels *kernelCache
	if o.CompileCacheSize >= 0 {
		kernels = newKernelCache(o.CompileCacheSize)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				eng := New(itemOptions(o, i))
				eng.shared = kernels
				results[i], errs[i] = eng.MeasureFormula(phis[i], eps, delta)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return results, errs
}
