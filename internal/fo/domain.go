package fo

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/poly"
	"repro/internal/value"
)

// Real is the numeric domain of ordinary real arithmetic (float64), used
// when evaluating queries over complete databases.
type Real struct{}

// FromConst returns x itself.
func (Real) FromConst(x float64) float64 { return x }

// Add returns a + b.
func (Real) Add(a, b float64) float64 { return a + b }

// Mul returns a · b.
func (Real) Mul(a, b float64) float64 { return a * b }

// Cmp compares two reals.
func (Real) Cmp(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Asym is the numeric domain of "asymptotic reals": values are univariate
// polynomials in the ray parameter k, ordered by the sign of the leading
// coefficient of their difference. A numerical null ⊤i interpreted along
// direction a is the value k·a_i, i.e. the polynomial poly.Uni{0, a_i};
// a constant c is poly.Uni{c}. Comparisons under this domain decide the
// *eventual* truth of arithmetic atoms along the ray (Lemma 8.4).
type Asym struct {
	// Tol treats leading coefficients with |c| ≤ Tol as zero, guarding
	// against floating-point cancellation in sampled directions.
	Tol float64
}

// FromConst returns the constant polynomial x.
func (Asym) FromConst(x float64) poly.Uni {
	if x == 0 {
		return poly.Uni{}
	}
	return poly.Uni{x}
}

// Add returns a + b.
func (Asym) Add(a, b poly.Uni) poly.Uni { return a.Add(b) }

// Mul returns a · b.
func (Asym) Mul(a, b poly.Uni) poly.Uni { return a.Mul(b) }

// Cmp compares by the asymptotic sign of a - b.
func (d Asym) Cmp(a, b poly.Uni) int { return a.Sub(b).AsymptoticSign(d.Tol) }

// RayValue returns the asymptotic value k·ai of a null with direction
// coefficient ai.
func RayValue(ai float64) poly.Uni {
	if ai == 0 {
		return poly.Uni{}
	}
	return poly.Uni{0, ai}
}

// Direction assigns a direction coefficient a_i to every numerical null ID
// of a database; it is one sampled point of the unit ball in the AFPRAS.
type Direction map[int]float64

// FromDirection prepares an incomplete database for asymptotic evaluation
// along the given direction. Base nulls are interpreted by a bijective
// valuation (Prop 5.2): each ⊥i becomes a reserved fresh constant distinct
// from every base constant of the database. Numerical nulls ⊤i become the
// asymptotic values k·a_i. The active numerical domain is
// Cnum(D) ∪ Nnum(D), per the translation of Prop 5.3.
func FromDirection(d *db.Database, dir Direction, tol float64) (*Instance[poly.Uni], error) {
	dom := Asym{Tol: tol}
	inst := &Instance[poly.Uni]{dom: dom, rels: make(map[string][][]Cell[poly.Uni])}
	for _, id := range d.NumNulls() {
		if _, ok := dir[id]; !ok {
			return nil, evalErrf("direction undefined on numerical null ⊤%d", id)
		}
	}
	for _, rel := range d.Schema().Relations() {
		rows := make([][]Cell[poly.Uni], 0, d.Len(rel.Name))
		for t := range d.All(rel.Name) {
			row := make([]Cell[poly.Uni], len(t))
			for i, v := range t {
				c, err := cellForValue(v, dir)
				if err != nil {
					return nil, err
				}
				row[i] = c
			}
			rows = append(rows, row)
		}
		inst.rels[rel.Name] = rows
	}
	inst.baseDomain = d.BaseConstants()
	for _, id := range d.BaseNulls() {
		inst.baseDomain = append(inst.baseDomain, FreshBaseName(id))
	}
	for _, x := range d.NumConstants() {
		inst.numDomain = append(inst.numDomain, dom.FromConst(x))
	}
	for _, id := range d.NumNulls() {
		inst.numDomain = append(inst.numDomain, RayValue(dir[id]))
	}
	return inst, nil
}

// FreshBaseName is the reserved base constant interpreting base null ⊥id
// under the built-in bijective valuation. The NUL prefix keeps it disjoint
// from any realistic user constant.
func FreshBaseName(id int) string { return fmt.Sprintf("\x00⊥%d", id) }

// cellForValue converts a database value into an asymptotic cell.
func cellForValue(v value.Value, dir Direction) (Cell[poly.Uni], error) {
	switch v.Kind() {
	case value.BaseConst:
		return BaseCell[poly.Uni](v.Str()), nil
	case value.BaseNull:
		return BaseCell[poly.Uni](FreshBaseName(v.NullID())), nil
	case value.NumConst:
		return NumCell(Asym{}.FromConst(v.Float())), nil
	case value.NumNull:
		a, ok := dir[v.NullID()]
		if !ok {
			return Cell[poly.Uni]{}, evalErrf("direction undefined on ⊤%d", v.NullID())
		}
		return NumCell(RayValue(a)), nil
	}
	return Cell[poly.Uni]{}, evalErrf("unknown value kind")
}

// DirTemplate is a reusable asymptotic instance for repeated direction
// sampling: it is built once from the database and mutated in place by
// SetDirection, avoiding a full instance rebuild per Monte-Carlo sample.
// This is the workhorse of the "direct" AFPRAS path.
type DirTemplate struct {
	inst      *Instance[poly.Uni]
	nullCells map[int][]*Cell[poly.Uni]
	nullIDs   []int
	domainIdx []domainSlot
}

// NewDirTemplate prepares the template. All numerical nulls start at
// direction 0; call SetDirection before evaluating.
func NewDirTemplate(d *db.Database, tol float64) (*DirTemplate, error) {
	dom := Asym{Tol: tol}
	t := &DirTemplate{
		inst:      &Instance[poly.Uni]{dom: dom, rels: make(map[string][][]Cell[poly.Uni])},
		nullCells: make(map[int][]*Cell[poly.Uni]),
		nullIDs:   d.NumNulls(),
	}
	zero := Direction{}
	for _, id := range t.nullIDs {
		zero[id] = 0
	}
	for _, rel := range d.Schema().Relations() {
		rows := make([][]Cell[poly.Uni], 0, d.Len(rel.Name))
		for tup := range d.All(rel.Name) {
			row := make([]Cell[poly.Uni], len(tup))
			for i, v := range tup {
				c, err := cellForValue(v, zero)
				if err != nil {
					return nil, err
				}
				row[i] = c
				if v.Kind() == value.NumNull {
					t.nullCells[v.NullID()] = append(t.nullCells[v.NullID()], &row[i])
				}
			}
			rows = append(rows, row)
		}
		t.inst.rels[rel.Name] = rows
	}
	t.inst.baseDomain = d.BaseConstants()
	for _, id := range d.BaseNulls() {
		t.inst.baseDomain = append(t.inst.baseDomain, FreshBaseName(id))
	}
	for _, x := range d.NumConstants() {
		t.inst.numDomain = append(t.inst.numDomain, dom.FromConst(x))
	}
	for _, id := range t.nullIDs {
		t.inst.numDomain = append(t.inst.numDomain, RayValue(0))
		t.domainIdx = append(t.domainIdx, domainSlot{id: id, idx: len(t.inst.numDomain) - 1})
	}
	return t, nil
}

// domainSlot records which numDomain entry belongs to which null.
type domainSlot struct {
	id  int
	idx int
}

// SetDirection updates every occurrence of each numerical null to the
// asymptotic value k·dir[id].
func (t *DirTemplate) SetDirection(dir Direction) error {
	for _, id := range t.nullIDs {
		a, ok := dir[id]
		if !ok {
			return evalErrf("direction undefined on ⊤%d", id)
		}
		rv := RayValue(a)
		for _, c := range t.nullCells[id] {
			c.Num = rv
		}
	}
	for _, s := range t.domainIdx {
		t.inst.numDomain[s.idx] = RayValue(dir[s.id])
	}
	return nil
}

// Instance returns the underlying instance for evaluation. The instance is
// mutated by SetDirection; do not retain results across calls.
func (t *DirTemplate) Instance() *Instance[poly.Uni] { return t.inst }

// NullIDs returns the numerical null IDs of the template's database.
func (t *DirTemplate) NullIDs() []int { return t.nullIDs }

// CellForAnswerValue converts a component of a candidate answer tuple into
// an asymptotic cell (same conventions as FromDirection).
func CellForAnswerValue(v value.Value, dir Direction) (Cell[poly.Uni], error) {
	return cellForValue(v, dir)
}

// CellForCompleteValue converts a constant value into a float64 cell,
// erroring on nulls.
func CellForCompleteValue(v value.Value) (Cell[float64], error) {
	switch v.Kind() {
	case value.BaseConst:
		return BaseCell[float64](v.Str()), nil
	case value.NumConst:
		return NumCell(v.Float()), nil
	}
	return Cell[float64]{}, evalErrf("CellForCompleteValue on null %v", v)
}
