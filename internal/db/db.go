// Package db implements incomplete databases over the two-sorted data model:
// finite relations whose entries are base/numerical constants or marked
// nulls, together with valuations (interpretations of nulls by constants)
// and the active-domain bookkeeping the algorithms of the paper need.
package db

import (
	"fmt"
	"iter"
	"sort"
	"sync"

	"repro/internal/schema"
	"repro/internal/value"
)

// Database is an incomplete database instance: for each relation of the
// schema, a finite set (stored as a slice) of tuples over constants and
// marked nulls.
type Database struct {
	schema *schema.Schema
	tables map[string][]value.Tuple

	nextBaseNull int
	nextNumNull  int

	// Lazily built per-(relation, column) equality indexes, invalidated on
	// Insert; see index.go. mu guards only the index map so that concurrent
	// read-only query sessions can share one database.
	mu      sync.Mutex
	indexes map[indexKey]EqIndex
}

// New returns an empty database over the given schema.
func New(s *schema.Schema) *Database {
	return &Database{schema: s, tables: make(map[string][]value.Tuple)}
}

// Schema returns the database schema.
func (d *Database) Schema() *schema.Schema { return d.schema }

// Insert adds a tuple to the named relation after validating it against the
// schema. Nulls mentioned in the tuple are registered so that FreshBaseNull
// and FreshNumNull never collide with them.
func (d *Database) Insert(rel string, t value.Tuple) error {
	r := d.schema.Relation(rel)
	if r == nil {
		return fmt.Errorf("db: unknown relation %s", rel)
	}
	if err := r.CheckTuple(t); err != nil {
		return err
	}
	for _, v := range t {
		switch v.Kind() {
		case value.BaseNull:
			if v.NullID() >= d.nextBaseNull {
				d.nextBaseNull = v.NullID() + 1
			}
		case value.NumNull:
			if v.NullID() >= d.nextNumNull {
				d.nextNumNull = v.NullID() + 1
			}
		}
	}
	d.tables[rel] = append(d.tables[rel], t.Clone())
	d.invalidateIndexes(rel)
	return nil
}

// MustInsert is Insert that panics on error, for tests and examples.
func (d *Database) MustInsert(rel string, vals ...value.Value) {
	if err := d.Insert(rel, value.Tuple(vals)); err != nil {
		panic(err)
	}
}

// FreshBaseNull allocates a base null unused anywhere in the database.
func (d *Database) FreshBaseNull() value.Value {
	v := value.NullBase(d.nextBaseNull)
	d.nextBaseNull++
	return v
}

// FreshNumNull allocates a numerical null unused anywhere in the database.
func (d *Database) FreshNumNull() value.Value {
	v := value.NullNum(d.nextNumNull)
	d.nextNumNull++
	return v
}

// Tuples returns a defensive deep copy of the tuples of the named
// relation: the caller owns the result and may modify it freely without
// corrupting the database. Read-only consumers that want to avoid the
// copy should use All, Len and Row instead.
func (d *Database) Tuples(rel string) []value.Tuple {
	ts := d.tables[rel]
	if ts == nil {
		return nil
	}
	out := make([]value.Tuple, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

// All returns an iterator over the tuples of the named relation in
// insertion order. The yielded tuples are owned by the database and must
// not be modified; this is the zero-copy path for read-only scans.
func (d *Database) All(rel string) iter.Seq[value.Tuple] {
	return func(yield func(value.Tuple) bool) {
		for _, t := range d.tables[rel] {
			if !yield(t) {
				return
			}
		}
	}
}

// Len returns the number of tuples in the named relation.
func (d *Database) Len(rel string) int { return len(d.tables[rel]) }

// Rows returns the live tuple slice of the named relation for read-only
// random access (the batch companion of Row, used by the executor's join
// loops). Neither the slice nor the tuples may be modified; mutating
// callers must use Tuples, which copies.
func (d *Database) Rows(rel string) []value.Tuple { return d.tables[rel] }

// Row returns the i-th tuple (in insertion order) of the named relation.
// The tuple is owned by the database and must not be modified; it is the
// random-access companion of All for index probes.
func (d *Database) Row(rel string, i int) value.Tuple { return d.tables[rel][i] }

// Size returns the total number of tuples across all relations.
func (d *Database) Size() int {
	n := 0
	for _, ts := range d.tables {
		n += len(ts)
	}
	return n
}

// BaseNulls returns the identifiers of all base nulls occurring in the
// database, sorted ascending. This is the set Nbase(D) of the paper.
func (d *Database) BaseNulls() []int { return d.nullIDs(value.BaseNull) }

// NumNulls returns the identifiers of all numerical nulls occurring in the
// database, sorted ascending. This is the set Nnum(D) of the paper.
func (d *Database) NumNulls() []int { return d.nullIDs(value.NumNull) }

func (d *Database) nullIDs(kind value.Kind) []int {
	set := make(map[int]bool)
	for _, ts := range d.tables {
		for _, t := range ts {
			for _, v := range t {
				if v.Kind() == kind {
					set[v.NullID()] = true
				}
			}
		}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// BaseConstants returns the set Cbase(D): all base-type constants occurring
// in the database, sorted.
func (d *Database) BaseConstants() []string {
	set := make(map[string]bool)
	for _, ts := range d.tables {
		for _, t := range ts {
			for _, v := range t {
				if v.Kind() == value.BaseConst {
					set[v.Str()] = true
				}
			}
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// NumConstants returns the set Cnum(D): all numerical constants occurring
// in the database, sorted ascending.
func (d *Database) NumConstants() []float64 {
	set := make(map[float64]bool)
	for _, ts := range d.tables {
		for _, t := range ts {
			for _, v := range t {
				if v.Kind() == value.NumConst {
					set[v.Float()] = true
				}
			}
		}
	}
	out := make([]float64, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Float64s(out)
	return out
}

// NumNullOccurrences returns, for each numerical null ID, the
// "Relation.column" positions where it occurs. Range constraints declared
// per column (the Section 10 extension) are attached to nulls through
// this map.
func (d *Database) NumNullOccurrences() map[int][]string {
	out := make(map[int][]string)
	seen := make(map[[2]interface{}]bool)
	for _, rel := range d.schema.Relations() {
		for _, t := range d.tables[rel.Name] {
			for i, v := range t {
				if v.Kind() != value.NumNull {
					continue
				}
				key := [2]interface{}{v.NullID(), rel.Name + "." + rel.Columns[i].Name}
				if seen[key] {
					continue
				}
				seen[key] = true
				out[v.NullID()] = append(out[v.NullID()], rel.Name+"."+rel.Columns[i].Name)
			}
		}
	}
	return out
}

// IsComplete reports whether the database contains no nulls.
func (d *Database) IsComplete() bool {
	return len(d.BaseNulls()) == 0 && len(d.NumNulls()) == 0
}

// Clone returns a deep copy of the database.
func (d *Database) Clone() *Database {
	c := New(d.schema)
	c.nextBaseNull = d.nextBaseNull
	c.nextNumNull = d.nextNumNull
	for rel, ts := range d.tables {
		cp := make([]value.Tuple, len(ts))
		for i, t := range ts {
			cp[i] = t.Clone()
		}
		c.tables[rel] = cp
	}
	return c
}

// String renders every relation with its tuples, sorted by relation name.
func (d *Database) String() string {
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += n + ":\n"
		for _, t := range d.tables[n] {
			s += "  " + t.String() + "\n"
		}
	}
	return s
}
