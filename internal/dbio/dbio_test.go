package dbio

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/db"
	"repro/internal/schema"
	"repro/internal/value"
)

func roundtripSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("R",
			schema.Column{Name: "a", Type: schema.Base},
			schema.Column{Name: "x", Type: schema.Num}),
		schema.MustRelation("Empty",
			schema.Column{Name: "y", Type: schema.Num}),
	)
}

func TestRoundTrip(t *testing.T) {
	d := db.New(roundtripSchema())
	d.MustInsert("R", value.Base("plain"), value.Num(3.5))
	d.MustInsert("R", value.NullBase(2), value.NullNum(7))
	d.MustInsert("R", value.Base("_B2"), value.Num(-1e9))      // collides with null syntax
	d.MustInsert("R", value.Base("_underscore"), value.Num(0)) // leading underscore
	d.MustInsert("R", value.Base("has,comma \"q\""), value.Num(2.25))

	dir := t.TempDir()
	if err := Save(d, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != d.Size() {
		t.Fatalf("size %d != %d", back.Size(), d.Size())
	}
	orig, got := d.Tuples("R"), back.Tuples("R")
	for i := range orig {
		if !orig[i].Equal(got[i]) {
			t.Errorf("row %d: %v != %v", i, got[i], orig[i])
		}
	}
	if len(back.Tuples("Empty")) != 0 {
		t.Error("empty relation gained tuples")
	}
	if got := back.Schema().String(); got != d.Schema().String() {
		t.Errorf("schema mismatch:\n%s\nvs\n%s", got, d.Schema())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("missing manifest accepted")
	}

	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("schema.txt", "R a:base x:num\n")
	if _, err := Load(dir); err == nil {
		t.Error("missing relation CSV accepted")
	}
	write("R.csv", "a,x\nc,notanumber\n")
	if _, err := Load(dir); err == nil {
		t.Error("malformed number accepted")
	}
	write("R.csv", "a,x\nc\n")
	if _, err := Load(dir); err == nil {
		t.Error("short row accepted")
	}
	write("R.csv", "")
	if _, err := Load(dir); err == nil {
		t.Error("headerless CSV accepted")
	}

	write("schema.txt", "R a:float\n")
	write("R.csv", "a\n")
	if _, err := Load(dir); err == nil {
		t.Error("unknown column type accepted")
	}
	write("schema.txt", "justaname\n")
	if _, err := Load(dir); err == nil {
		t.Error("column-free schema line accepted")
	}
}

func TestNullEncodingInNumColumn(t *testing.T) {
	d := db.New(roundtripSchema())
	d.MustInsert("Empty", value.NullNum(0))
	d.MustInsert("Empty", value.Num(12))
	dir := t.TempDir()
	if err := Save(d, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	rows := back.Tuples("Empty")
	if rows[0][0] != value.NullNum(0) || rows[1][0] != value.Num(12) {
		t.Errorf("rows = %v", rows)
	}
}

// TestRoundTripRandomColumnar: randomized columnar databases (duplicate
// strings, escape-prefixed constants, shared null ids) survive a
// Save/Load round trip tuple for tuple.
func TestRoundTripRandomColumnar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		d := db.New(roundtripSchema())
		strs := []string{"a", "_x", "__y", "seg0", "with space", "_B9", "q\"uote"}
		n := 1 + rng.Intn(25)
		for i := 0; i < n; i++ {
			var a value.Value
			if rng.Intn(4) == 0 {
				a = value.NullBase(rng.Intn(5))
			} else {
				a = value.Base(strs[rng.Intn(len(strs))])
			}
			var x value.Value
			if rng.Intn(4) == 0 {
				x = value.NullNum(rng.Intn(5))
			} else {
				x = value.Num(float64(rng.Intn(100)) / 4)
			}
			d.MustInsert("R", a, x)
		}
		dir := t.TempDir()
		if err := Save(d, dir); err != nil {
			t.Fatal(err)
		}
		back, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		want, got := d.Tuples("R"), back.Tuples("R")
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d rows back, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("trial %d row %d: %v != %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSaveAtomicOverExisting: Save over a directory holding a previous
// version must never leave a torn file — every target is either the old
// content or the new, and no *.tmp debris survives a successful save.
func TestSaveAtomicOverExisting(t *testing.T) {
	dir := t.TempDir()
	d1 := db.New(roundtripSchema())
	d1.MustInsert("R", value.Base("old"), value.Num(1))
	if err := Save(d1, dir); err != nil {
		t.Fatal(err)
	}
	d2 := db.New(roundtripSchema())
	for i := 0; i < 50; i++ {
		d2.MustInsert("R", value.Base("new"), value.Num(float64(i)))
	}
	if err := Save(d2, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("temp debris %s survived a successful save", e.Name())
		}
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Len("R"); got != 50 {
		t.Fatalf("reloaded %d rows, want the new 50", got)
	}
}

// TestSaveFailureKeepsOldVersion: when writing the new version fails
// mid-way (target directory entry replaced by an unwritable path), the
// previously saved files still load.
func TestSaveFailureKeepsOldVersion(t *testing.T) {
	dir := t.TempDir()
	d1 := db.New(roundtripSchema())
	d1.MustInsert("R", value.Base("old"), value.Num(1))
	if err := Save(d1, dir); err != nil {
		t.Fatal(err)
	}
	// Make the temp path of R.csv un-creatable: a directory squats on it.
	if err := os.Mkdir(filepath.Join(dir, "R.csv.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	d2 := db.New(roundtripSchema())
	d2.MustInsert("R", value.Base("new"), value.Num(2))
	if err := Save(d2, dir); err == nil {
		t.Fatal("save succeeded despite the blocked temp path")
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatalf("old version no longer loads: %v", err)
	}
	tup := back.Tuples("R")
	if len(tup) != 1 || tup[0][0].Str() != "old" {
		t.Fatalf("old version corrupted: %v", tup)
	}
}
