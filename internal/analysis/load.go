package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks module packages using only the standard
// library: package discovery goes through `go list -json`, module-local
// dependencies are type-checked recursively from source, and standard
// library imports are delegated to go/importer's "source" compiler
// (which works offline against GOROOT). One Loader shares a FileSet and
// a type-checked package cache across every package it loads, so the
// stdlib closure is only checked once per process.
type Loader struct {
	Fset *token.FileSet
	// Tests, when true, includes the package's in-package _test.go files
	// (external _test packages are not loaded).
	Tests bool
	// Lookup, when set, maps an import path to a directory holding the
	// package's sources, taking priority over go-list resolution. The
	// analysistest harness uses it to point fixture import paths (e.g.
	// "repro/internal/wal") at testdata/src stand-ins.
	Lookup func(path string) (dir string, ok bool)

	src    types.ImporterFrom
	listed map[string]*listPkg // module packages by import path
	cache  map[string]*Package
	active map[string]bool // import-cycle guard
}

type listPkg struct {
	ImportPath  string
	Dir         string
	GoFiles     []string
	TestGoFiles []string
}

// NewLoader returns a Loader. The process working directory must be
// inside the module (go/build's module-aware import resolution shells
// out to the go command and decides module mode from the working
// directory).
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		src:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		listed: make(map[string]*listPkg),
		cache:  make(map[string]*Package),
		active: make(map[string]bool),
	}
}

// Load resolves the go-list patterns (e.g. "./...") and returns the
// matched packages, parsed and type-checked, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	matched, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(matched))
	for _, ip := range matched {
		p, err := l.loadPath(ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadFixture loads one package by import path through the Lookup hook
// alone — the analysistest entry point, which must not let go-list
// resolution see fixture paths.
func (l *Loader) LoadFixture(path string) (*Package, error) {
	return l.loadPath(path)
}

// list runs `go list -json` over the patterns, caching every package it
// reports and returning the matched import paths.
func (l *Loader) list(patterns []string) ([]string, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,TestGoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var matched []string
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		lp := p
		l.listed[p.ImportPath] = &lp
		matched = append(matched, p.ImportPath)
	}
	return matched, nil
}

// loadPath type-checks one module package (by import path already known
// to the loader, loading its module-local deps first).
func (l *Loader) loadPath(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.Lookup != nil {
		if dir, ok := l.Lookup(path); ok {
			return l.loadDir(path, dir)
		}
	}
	lp, ok := l.listed[path]
	if !ok {
		// Not seen yet (a dependency outside the original patterns):
		// resolve it now.
		if _, err := l.list([]string{path}); err != nil {
			return nil, err
		}
		lp, ok = l.listed[path]
		if !ok {
			return nil, fmt.Errorf("go list did not report %s", path)
		}
	}
	if l.active[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	names := lp.GoFiles
	if l.Tests {
		names = append(append([]string{}, names...), lp.TestGoFiles...)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.check(path, lp.Dir, files)
}

// loadDir parses and type-checks every .go file in dir as the package
// at path (the Lookup resolution path: fixture directories).
func (l *Loader) loadDir(path, dir string) (*Package, error) {
	if l.active[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.active[path] = true
	defer delete(l.active, path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.check(path, dir, files)
}

// check type-checks the given parsed files as the package at path and
// caches the result.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importerFunc(func(ip, srcDir string) (*types.Package, error) {
		return l.importDep(ip, srcDir)
	})}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, TypesInfo: info}
	l.cache[path] = p
	return p, nil
}

// importDep resolves one import: module-local packages recurse through
// the loader (so analysis sees the same AST-backed types everywhere);
// everything else — the standard library — goes to the source importer.
func (l *Loader) importDep(path, srcDir string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p.Types, nil
	}
	if l.Lookup != nil {
		if _, ok := l.Lookup(path); ok {
			p, err := l.loadPath(path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	if l.isModuleLocal(path) {
		p, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.src.ImportFrom(path, srcDir, 0)
}

// isModuleLocal reports whether path belongs to this module. Module
// packages were either pre-listed by Load's patterns or share the
// module path prefix of one that was.
func (l *Loader) isModuleLocal(path string) bool {
	if _, ok := l.listed[path]; ok {
		return true
	}
	for ip := range l.listed {
		if root := moduleRoot(ip); root != "" && (path == root || hasPathPrefix(path, root)) {
			return true
		}
	}
	return false
}

// moduleRoot guesses the module path from an import path: the first
// path element ("repro/internal/db" → "repro"). Good enough for a
// single-module tree with no external module deps.
func moduleRoot(ip string) string {
	for i := 0; i < len(ip); i++ {
		if ip[i] == '/' {
			return ip[:i]
		}
	}
	return ip
}

func hasPathPrefix(path, prefix string) bool {
	return len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/'
}

// importerFunc adapts a function to both importer interfaces.
type importerFunc func(path, srcDir string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) {
	return f(path, "")
}

func (f importerFunc) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	return f(path, srcDir)
}
