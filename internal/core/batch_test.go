package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/realfmla"
)

func TestMeasureBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var phis []realfmla.Formula
	for i := 0; i < 20; i++ {
		phis = append(phis, randOrderFormula(rng, 2+rng.Intn(2), 3))
	}
	opts := Options{Seed: 9}
	results, errs := MeasureBatch(opts, phis, 0.05, 0.1)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("formula %d: %v", i, err)
		}
		// Sequential reference with the same per-index derived seed.
		iopts := opts
		iopts.Seed = opts.Seed + int64(i)*1_000_003
		ref, err := New(iopts.withDefaults()).MeasureFormula(phis[i], 0.05, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Value != ref.Value || results[i].Method != ref.Method {
			t.Errorf("formula %d: batch %.4f/%s vs sequential %.4f/%s",
				i, results[i].Value, results[i].Method, ref.Value, ref.Method)
		}
	}
}

func TestMeasureBatchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var phis []realfmla.Formula
	for i := 0; i < 12; i++ {
		phis = append(phis, randOrderFormula(rng, 3, 3))
	}
	a, _ := MeasureBatch(Options{Seed: 1, DisableExact: true}, phis, 0.05, 0.25)
	b, _ := MeasureBatch(Options{Seed: 1, DisableExact: true}, phis, 0.05, 0.25)
	for i := range a {
		if a[i].Value != b[i].Value {
			t.Errorf("formula %d: %.4f vs %.4f across runs", i, a[i].Value, b[i].Value)
		}
	}
}

func TestMeasureBatchEmptyAndErrors(t *testing.T) {
	res, errs := MeasureBatch(Options{}, nil, 0.1, 0.1)
	if len(res) != 0 || len(errs) != 0 {
		t.Error("empty batch misbehaves")
	}
	// Invalid eps propagates per item.
	_, errs = MeasureBatch(Options{DisableExact: true},
		[]realfmla.Formula{linAtom(1, []float64{1}, 0, realfmla.LT)}, 0, 0.1)
	if errs[0] == nil {
		t.Error("eps = 0 accepted in batch")
	}
}

func TestMeasureBatchAccuracy(t *testing.T) {
	// Batch values stay close to the true measure.
	phis := []realfmla.Formula{
		linAtom(2, []float64{1, -1}, 0, realfmla.LT), // 1/2
		linAtom(1, []float64{-1}, 0, realfmla.LT),    // 1/2
		linAtom(2, []float64{1, 0}, 0, realfmla.EQ),  // 0
	}
	results, errs := MeasureBatch(Options{Seed: 2, DisableExact: true}, phis, 0.02, 0.01)
	want := []float64{0.5, 0.5, 0}
	for i := range phis {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if math.Abs(results[i].Value-want[i]) > 0.04 {
			t.Errorf("formula %d: %.4f, want %.2f", i, results[i].Value, want[i])
		}
	}
}
