package arithdb_test

// Replication chaos harness — the acceptance check of the log-shipping
// PR (`make replica-check`). A durable primary and a catchup replica run
// through a hostile network (internal/faultnet: injected latency,
// dropped connections, streams cut at random byte offsets tearing NDJSON
// frames mid-line) while the primary is crashed abruptly and restarted
// at random batch boundaries. Throughout, a failover client reads
// against [primary, replica]. The run asserts the three replication
// guarantees:
//
//  1. Convergence: once the dust settles, the replica is bit-identical
//     to the primary's durable prefix — same evaluation fingerprint, and
//     MeasureSQL confidences agree to the last Float64 bit (per-candidate
//     seeding makes measurement a pure function of database state).
//  2. Availability: not one read failed, including every read issued
//     while the primary was down.
//  3. Idempotence: no batch was double-applied across any number of
//     reconnects and replayed stream overlaps — sequence frontiers and
//     row counts match exactly.

import (
	"context"
	"math"
	"math/rand"
	"net"
	"net/http"
	"testing"
	"time"

	arithdb "repro"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// chaosPrimary is the primary under test: durable store + HTTP server
// behind a fault-injecting listener, restartable on a stable address.
type chaosPrimary struct {
	t      *testing.T
	dir    string
	addr   string
	faults *faultnet.Faults

	store *wal.Store
	hs    *http.Server
}

func (p *chaosPrimary) start() {
	p.t.Helper()
	addr := p.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	for i := 0; ; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if i > 100 {
			p.t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	p.addr = ln.Addr().String()
	store, err := wal.Open(p.dir, wal.Options{Seed: func() (*arithdb.Database, error) {
		return salesFixture(p.t), nil
	}})
	if err != nil {
		p.t.Fatal(err)
	}
	p.store = store
	srv, err := server.New(server.Config{
		DB:            store.DB(),
		Durable:       store,
		Replication:   store,
		Engine:        core.Options{Seed: 7},
		ReplHeartbeat: 25 * time.Millisecond,
	})
	if err != nil {
		p.t.Fatal(err)
	}
	p.hs = &http.Server{Handler: srv}
	go p.hs.Serve(faultnet.Listen(ln, p.faults))
}

// kill crashes the primary abruptly: every connection severed mid-write,
// no drain, no final checkpoint. Recovery is WAL replay, nothing else.
func (p *chaosPrimary) kill() {
	if p.hs != nil {
		p.hs.Close()
		p.hs = nil
	}
	if p.store != nil {
		p.store.Close()
		p.store = nil
	}
}

func TestReplicaChaosConvergenceAndFailover(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	query, err := arithdb.ParseSQL(arithdb.QueryCompetitiveAdvantage)
	if err != nil {
		t.Fatal(err)
	}

	// The hostile network: one sampler for the primary's listener (cuts
	// sever server→client streams — replication log and client reads — at
	// random byte offsets), one for the replica's fetch transport
	// (truncated response bodies, refused connections, latency).
	serverFaults := faultnet.New(101)
	clientFaults := faultnet.New(202)

	p := &chaosPrimary{t: t, dir: t.TempDir(), faults: serverFaults}
	p.start()
	defer p.kill()
	primaryURL := "http://" + p.addr

	// The replica bootstraps over a calm network (the daemon retries this
	// phase in a loop; the harness exercises the steady-state chaos), then
	// everything after runs under injection.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := replica.Open(ctx, replica.Config{
		Primary:    primaryURL,
		Dir:        t.TempDir(),
		HTTP:       &http.Client{Transport: faultnet.Transport(nil, clientFaults)},
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 100 * time.Millisecond,
		JitterSeed: 31, // reproducible backoff schedule for the run
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	repDone := make(chan struct{})
	go func() { rep.Run(ctx); close(repDone) }()

	// The replica's own read-serving server (calm network: the chaos under
	// test is between primary and replica, and primary and client).
	repSrv, err := server.New(server.Config{
		Source:  rep.DB,
		Replica: rep,
		Engine:  core.Options{Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	repLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	repHS := &http.Server{Handler: repSrv}
	go repHS.Serve(repLn)
	defer repHS.Close()

	// The failover client: primary first, replica as read fallback.
	fc := client.NewFailover([]string{primaryURL, "http://" + repLn.Addr().String()}).
		WithRetry(client.RetryPolicy{MaxAttempts: 8, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond}).
		WithAttemptTimeout(3 * time.Second)
	readCtx := context.Background()
	reads, readFailures := 0, 0
	read := func(during string) {
		t.Helper()
		reads++
		if _, err := fc.Info(readCtx); err != nil {
			readFailures++
			t.Errorf("read #%d (%s): %v", reads, during, err)
		}
	}

	// Now inject: latency + jitter, dropped connections, and stream cuts
	// at random byte offsets — small enough to land inside NDJSON frames.
	serverFaults.SetLatency(time.Millisecond, 2*time.Millisecond)
	serverFaults.SetDropProb(0.2)
	serverFaults.SetCut(0.35, 40, 800)
	clientFaults.SetLatency(time.Millisecond, 2*time.Millisecond)
	clientFaults.SetDropProb(0.2)
	clientFaults.SetCut(0.35, 40, 800)

	// ref mirrors every batch the primary acknowledged (inserts happen at
	// batch boundaries on a live store, so acknowledged == durable).
	ref := salesFixture(t)
	insert := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			batch := make([]arithdb.Tuple, 1+rng.Intn(3))
			for j := range batch {
				batch[j] = randMarketTuple(rng, ref)
			}
			if err := p.store.InsertBatch("Market", batch); err != nil {
				t.Fatal(err)
			}
			if err := ref.InsertBatch("Market", batch); err != nil {
				t.Fatal(err)
			}
		}
	}

	const rounds = 6
	for round := 0; round < rounds; round++ {
		insert(3 + rng.Intn(4))
		read("primary up")

		// Crash the primary at a random batch boundary and read through the
		// outage: the failover client must not drop a single read.
		p.kill()
		for i := 0; i < 3; i++ {
			read("primary down")
		}
		p.start()
		insert(1 + rng.Intn(3))
		read("after restart")

		// Some rounds checkpoint, truncating the shipped log out from under
		// the replica's cursor — forcing the 410 → re-bootstrap path while
		// the network still misbehaves.
		if round%2 == 1 {
			if err := p.store.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			insert(1)
		}
	}

	// Calm the network and let the replica drain the backlog.
	serverFaults.SetDisabled(true)
	clientFaults.SetDisabled(true)
	deadline := time.Now().Add(30 * time.Second)
	for rep.LastAppliedSeq() != p.store.Seq() {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at seq %d, primary at %d", rep.LastAppliedSeq(), p.store.Seq())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// (3) Idempotence: exact frontier match and exact row counts — a
	// double-applied batch would leave surplus rows behind.
	if got, want := rep.DB().Len("Market"), p.store.DB().Len("Market"); got != want {
		t.Fatalf("replica Market has %d rows, primary %d — a batch was lost or double-applied", got, want)
	}
	if got, want := p.store.DB().Len("Market"), ref.Len("Market"); got != want {
		t.Fatalf("primary Market has %d rows, reference %d — an acknowledged batch was lost", got, want)
	}

	// (1) Convergence, bit-identically: evaluation fingerprints and
	// measured confidences.
	eng := arithdb.NewEngine(arithdb.EngineOptions{Seed: 7})
	if got, want := evalFingerprint(t, eng, query, rep.DB()), evalFingerprint(t, eng, query, p.store.DB()); got != want {
		t.Fatalf("replica evaluation diverged from primary:\n--- replica\n%s--- primary\n%s", got, want)
	}
	if got, want := evalFingerprint(t, eng, query, p.store.DB()), evalFingerprint(t, eng, query, ref); got != want {
		t.Fatalf("primary evaluation diverged from reference:\n--- primary\n%s--- reference\n%s", got, want)
	}
	gotM, err := arithdb.NewSession(rep.DB(), arithdb.EngineOptions{Seed: 7}).MeasureSQLQuery(query, 0.1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	wantM, err := arithdb.NewSession(p.store.DB(), arithdb.EngineOptions{Seed: 7}).MeasureSQLQuery(query, 0.1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotM.Candidates) != len(wantM.Candidates) {
		t.Fatalf("measured candidates: %d vs %d", len(gotM.Candidates), len(wantM.Candidates))
	}
	for i := range gotM.Candidates {
		g, w := gotM.Candidates[i], wantM.Candidates[i]
		if !g.Tuple.Equal(w.Tuple) ||
			math.Float64bits(g.Measure.Value) != math.Float64bits(w.Measure.Value) {
			t.Fatalf("candidate %d: (%v, μ=%v) vs (%v, μ=%v) — measurement bits diverged",
				i, g.Tuple, g.Measure.Value, w.Tuple, w.Measure.Value)
		}
	}

	// (2) Availability: every read during the run succeeded (t.Errorf
	// above already failed the test per miss; this is the headline count).
	if readFailures != 0 {
		t.Fatalf("%d of %d reads failed during the chaos run", readFailures, reads)
	}

	cancel()
	<-repDone

	// Injection actually happened — a harness whose faults never fired
	// proves nothing. (Per-side counts vary with connection reuse and
	// scheduling, so the assertion is over both injectors combined.)
	_, sDrops, sCuts := serverFaults.Stats()
	_, cDrops, cCuts := clientFaults.Stats()
	if sDrops+sCuts+cDrops+cCuts == 0 {
		t.Fatal("no injector ever fired — the run exercised a calm network")
	}
	t.Logf("chaos: %d reads (all served), %d server drops, %d server cuts, %d client drops, %d client cuts",
		reads, sDrops, sCuts, cDrops, cCuts)
}
