// Command arithdbd is the multi-user arithdb server: it loads (or
// generates) one incomplete database and serves the HTTP/JSON wire
// protocol of internal/server — MeasureSQL with optional streaming top-k
// delivery, atomic batch inserts (POST /v1/insert, incremental index
// maintenance; queries pin copy-on-write snapshots), the Figure 1
// experiment workloads, and schema introspection — to any number of
// concurrent clients, with admission control on the measurement pool.
//
//	arithdbd -data DIR [-addr :8080] [-max-inflight N] [-workers N]
//	         [-queue-timeout 2s] [-seed S] [-min-eps 0.005] [-read-only]
//	arithdbd -gen 20000 ...       # synthetic sales database instead of -data
//	arithdbd -data-dir DIR ...    # durable mode: WAL + checkpoints
//
// With -data-dir the server is durable: startup recovers the newest
// checkpoint and replays the write-ahead log, every acknowledged insert
// is fsync'd to the WAL before it is applied, a background checkpointer
// (-checkpoint-every) folds the log into fresh checkpoints off immutable
// snapshots, and a WAL failure degrades the server to read-only 503s
// instead of crashing it. -data/-gen then only seed a fresh directory.
//
// Clients: `arithdb sql -connect http://host:8080 -query "SELECT ..."`,
// or any HTTP client (see README "Server mode" for the endpoints).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	arithdb "repro"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("arithdbd: ")

	var (
		addr         = flag.String("addr", ":8080", "listen address")
		data         = flag.String("data", "", "database directory (written by datagen or SaveDatabase)")
		gen          = flag.Int("gen", 0, "serve a synthetic sales database with N products instead of -data (orders = 0.8N, market = 0.2N)")
		genSeed      = flag.Int64("gen-seed", 2020, "seed of the synthetic database")
		genNullRate  = flag.Float64("gen-nullrate", 0.1, "numerical null rate of the synthetic database")
		seed         = flag.Int64("seed", 1, "engine seed: fixes every response bit-for-bit")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrently measuring requests (0 = max(2, GOMAXPROCS)); further requests queue")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "max queue wait before a 429")
		workers      = flag.Int("workers", 0, "per-request measurement worker budget (0 = GOMAXPROCS / max-inflight)")
		minEps       = flag.Float64("min-eps", 0.005, "smallest accepted eps (sampling cost grows as eps^-2)")
		compileCache = flag.Int("compile-cache", 0, "cross-request compiled-kernel cache entries (0 = default 1024)")
		readOnly     = flag.Bool("read-only", false, "disable POST /v1/insert (serve a frozen database)")
		shutdownWait = flag.Duration("shutdown-wait", 10*time.Second, "drain deadline on SIGINT/SIGTERM")
		dataDir      = flag.String("data-dir", "", "durable data directory (WAL + checkpoints); -data/-gen seed it on first boot")
		ckptEvery    = flag.Duration("checkpoint-every", time.Minute, "background checkpoint period in -data-dir mode (0 disables)")
		noSync       = flag.Bool("no-sync", false, "skip the per-insert WAL fsync (benchmarks only: trades crash durability for throughput)")
		noAdaptive   = flag.Bool("no-adaptive", false, "disable the adaptive top-k sampling race for LIMIT queries (fixed budget per candidate)")
	)
	flag.Parse()

	if *data != "" && *gen > 0 {
		log.Fatal("-data and -gen are mutually exclusive")
	}
	// seedDB builds the initial database from -data/-gen. In durable mode
	// it only runs when the data directory holds no state yet.
	seedDB := func() (*arithdb.Database, error) {
		switch {
		case *data != "":
			return arithdb.LoadDatabase(*data)
		case *gen > 0:
			return arithdb.GenerateSales(arithdb.SalesConfig{
				Seed: *genSeed, Products: *gen, Orders: *gen * 4 / 5, Market: *gen / 5,
				Segments: *gen / 10, NullRate: *genNullRate,
			})
		}
		return nil, errors.New("one of -data or -gen is required to seed a fresh database")
	}

	var (
		d     *arithdb.Database
		store *wal.Store
		err   error
	)
	if *dataDir != "" {
		store, err = wal.Open(*dataDir, wal.Options{
			Seed:            seedDB,
			CheckpointEvery: *ckptEvery,
			NoSync:          *noSync,
			Logf:            log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		d = store.DB()
		log.Printf("recovered %s: %d tuples, seq %d (checkpoint covers %d)",
			*dataDir, d.Size(), store.Seq(), store.CheckpointSeq())
	} else if d, err = seedDB(); err != nil {
		log.Fatal(err)
	}

	var durable server.Durability
	if store != nil {
		durable = store
	}
	srv, err := server.New(server.Config{
		DB:       d,
		ReadOnly: *readOnly,
		Durable:  durable,
		Engine: arithdb.EngineOptions{
			Seed:             *seed,
			PoolWorkers:      *workers,
			CompileCacheSize: *compileCache,
			NoAdaptive:       *noAdaptive,
		},
		MaxInflight:     *maxInflight,
		QueueTimeout:    *queueTimeout,
		MinEps:          *minEps,
		KernelCacheSize: *compileCache,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	log.Printf("serving %d tuples on http://%s", d.Size(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	select {
	case err := <-done:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("draining (up to %s)...", *shutdownWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownWait)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if store != nil {
		// The server has drained: no insert is in flight. Fold the WAL tail
		// into a final checkpoint (best effort — recovery replays the log
		// either way), then sync and close the log.
		if err := store.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		}
		if err := store.Close(); err != nil {
			log.Printf("wal close: %v", err)
		}
	}
	fmt.Fprintln(os.Stderr, "arithdbd: bye")
}
