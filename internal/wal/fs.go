// Package wal is the durability subsystem: a write-ahead log of committed
// insert batches, crash recovery (checkpoint load + log replay), and the
// fault-injection machinery that proves both.
//
// Every committed batch becomes one length-prefixed, CRC32C-checksummed,
// sequence-tagged record, fsync'd before the in-memory store publishes the
// new version. Recovery tolerates torn tails — the log is truncated at the
// first bad CRC or short record, never past a good one — so a crash at any
// byte offset loses nothing that was acknowledged. A background
// checkpointer serializes immutable snapshots (internal/dbio, crash-safe
// writes) and truncates the WAL prefix the checkpoint covers; on failure
// of a WAL append or fsync the Store degrades to read-only instead of
// crashing or silently dropping writes.
//
// All file operations go through the FS interface so tests can inject
// faults (fail the Nth write or sync, short-write, crash after k bytes)
// and drive the recovery fuzz at every record boundary.
package wal

import (
	"io"
	"os"
	"path/filepath"
)

// File is the slice of *os.File the log needs: sequential reads during
// recovery, appends during operation, and durability barriers.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync). A record is
	// acknowledged — and must survive any crash — only after Sync returns.
	Sync() error
}

// FS abstracts the filesystem operations of the durability subsystem, so
// tests can substitute an injectable implementation (FaultFS). OSFS is
// the production implementation.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	// Truncate cuts the named file to size — recovery's torn-tail cut.
	Truncate(name string, size int64) error
	Rename(oldpath, newpath string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists the entry names of a directory.
	ReadDir(name string) ([]string, error)
	// SyncDir fsyncs a directory, making renames and creates within it
	// durable.
	SyncDir(name string) error
}

// OSFS is the production FS backed by the os package.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OSFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OSFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (OSFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OSFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) ReadDir(name string) ([]string, error) {
	ents, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

func (OSFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFileSync writes name atomically through fs: the bytes land in a
// temp file in the same directory, are fsync'd, and the temp file is
// renamed over name, followed by a directory fsync. A crash at any point
// leaves either the old file or the new one, never a torn mix.
func writeFileSync(fs FS, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, name); err != nil {
		return err
	}
	return fs.SyncDir(filepath.Dir(name))
}
