package fo

import (
	"testing"

	"repro/internal/schema"
)

func tcSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("R",
			schema.Column{Name: "a", Type: schema.Base},
			schema.Column{Name: "x", Type: schema.Num}),
		schema.MustRelation("S",
			schema.Column{Name: "x", Type: schema.Num}),
	)
}

func TestTypecheckAccepts(t *testing.T) {
	good := []string{
		`q() := exists a:base, x:num . (R(a, x) and x > 0)`,
		`q(a:base) := exists x:num . R(a, x)`,
		`q() := forall x:num . (S(x) -> x * x >= 0)`,
		`q() := exists a:base, b:base . (a == b and R(a, 1))`,
		`q() := exists a:base . R(a, 2 + 3 * 4)`,
	}
	for _, src := range good {
		if err := Typecheck(MustParseQuery(src), tcSchema()); err != nil {
			t.Errorf("%s: %v", src, err)
		}
	}
}

func TestTypecheckRejects(t *testing.T) {
	bad := map[string]string{
		`q() := T(1)`:                               "unknown relation",
		`q() := S(1, 2)`:                            "arity",
		`q() := exists a:base . S(a)`:               "sort of column",
		`q() := exists a:base . R(a, a)`:            "base var in num column",
		`q() := exists x:num . R(x, x)`:             "num var in base column",
		`q() := exists x:num . x == x`:              "base equality on num",
		`q() := exists a:base . a < a`:              "comparison on base",
		`q() := exists a:base . a + a > 0`:          "arithmetic on base",
		`q() := S(y)`:                               "unbound variable",
		`q() := exists x:num . exists x:num . S(x)`: "shadowing",
		`q(x:num, x:num) := S(x)`:                   "duplicate free variable",
		`q() := exists a:base . (-a) > 0`:           "negation of base",
	}
	for src, why := range bad {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if err := Typecheck(q, tcSchema()); err == nil {
			t.Errorf("accepted %s (%s)", src, why)
		}
	}
}

func TestTypecheckFreeVarSorts(t *testing.T) {
	// Free variables carry their declared sorts into the body.
	q := MustParseQuery(`q(x:num) := S(x)`)
	if err := Typecheck(q, tcSchema()); err != nil {
		t.Errorf("free num var rejected: %v", err)
	}
	q2 := MustParseQuery(`q(x:base) := S(x)`)
	if err := Typecheck(q2, tcSchema()); err == nil {
		t.Error("free base var in num column accepted")
	}
}
