// Package lp implements a dense two-phase primal simplex solver for linear
// programs. The FPRAS of Section 7 needs it to find strictly interior
// points of the convex bodies (homogenized cones intersected with the unit
// ball) that arise from conjunctive queries with linear constraints: the
// interior point seeds the hit-and-run sampler and its inradius calibrates
// the multiphase volume estimator.
//
// The solver handles max c·x subject to A·x ≤ b with either non-negative
// or free variables, using Bland's rule to guarantee termination.
package lp

import (
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status uint8

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective is unbounded above.
	Unbounded
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Problem is the LP  max C·x  subject to  A·x ≤ B.
type Problem struct {
	C []float64   // objective, length n
	A [][]float64 // m × n constraint matrix
	B []float64   // length m right-hand sides
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	X      []float64 // optimal point (valid when Status == Optimal)
	Value  float64   // objective value at X
}

const eps = 1e-9

// Solve maximizes C·x subject to A·x ≤ B and x ≥ 0.
func Solve(p Problem) (Solution, error) {
	if err := validate(p); err != nil {
		return Solution{}, err
	}
	return solveNonneg(p)
}

// SolveFree maximizes C·x subject to A·x ≤ B with x unrestricted in sign.
// Each free variable is split as x = x⁺ - x⁻ with x⁺, x⁻ ≥ 0.
func SolveFree(p Problem) (Solution, error) {
	if err := validate(p); err != nil {
		return Solution{}, err
	}
	n := len(p.C)
	m := len(p.B)
	q := Problem{
		C: make([]float64, 2*n),
		A: make([][]float64, m),
		B: append([]float64(nil), p.B...),
	}
	for j := 0; j < n; j++ {
		q.C[2*j] = p.C[j]
		q.C[2*j+1] = -p.C[j]
	}
	for i := 0; i < m; i++ {
		row := make([]float64, 2*n)
		for j := 0; j < n; j++ {
			row[2*j] = p.A[i][j]
			row[2*j+1] = -p.A[i][j]
		}
		q.A[i] = row
	}
	sol, err := solveNonneg(q)
	if err != nil || sol.Status != Optimal {
		return sol, err
	}
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = sol.X[2*j] - sol.X[2*j+1]
	}
	return Solution{Status: Optimal, X: x, Value: sol.Value}, nil
}

func validate(p Problem) error {
	n := len(p.C)
	if len(p.A) != len(p.B) {
		return fmt.Errorf("lp: %d constraint rows but %d right-hand sides", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	for _, c := range p.C {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("lp: non-finite objective coefficient")
		}
	}
	return nil
}

// tableau holds the dense simplex tableau: rows 0..m-1 are constraints,
// row m is the objective row (reduced costs, maximization). Column layout:
// 0..ncols-1 variables, last column RHS.
type tableau struct {
	t     [][]float64
	basis []int // basic variable of each constraint row
	m     int
	ncols int
}

// pivot performs a pivot on (row, col).
func (tb *tableau) pivot(row, col int) {
	piv := tb.t[row][col]
	inv := 1 / piv
	for j := 0; j <= tb.ncols; j++ {
		tb.t[row][j] *= inv
	}
	tb.t[row][col] = 1 // avoid drift
	for i := 0; i <= tb.m; i++ {
		if i == row {
			continue
		}
		f := tb.t[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= tb.ncols; j++ {
			tb.t[i][j] -= f * tb.t[row][j]
		}
		tb.t[i][col] = 0
	}
	tb.basis[row] = col
}

// run performs simplex iterations with Bland's rule on the current
// objective row, restricted to columns < colLimit. It returns false if the
// problem is unbounded.
func (tb *tableau) run(colLimit int) bool {
	for iter := 0; ; iter++ {
		// Entering variable: smallest index with positive reduced cost.
		col := -1
		for j := 0; j < colLimit; j++ {
			if tb.t[tb.m][j] > eps {
				col = j
				break
			}
		}
		if col < 0 {
			return true // optimal
		}
		// Leaving row: minimum ratio, ties by smallest basic index (Bland).
		row := -1
		best := math.Inf(1)
		for i := 0; i < tb.m; i++ {
			a := tb.t[i][col]
			if a <= eps {
				continue
			}
			ratio := tb.t[i][tb.ncols] / a
			if ratio < best-eps || (ratio < best+eps && (row < 0 || tb.basis[i] < tb.basis[row])) {
				best = ratio
				row = i
			}
		}
		if row < 0 {
			return false // unbounded
		}
		tb.pivot(row, col)
	}
}

// solveNonneg solves max c·x, Ax ≤ b, x ≥ 0 by the two-phase method.
func solveNonneg(p Problem) (Solution, error) {
	n := len(p.C)
	m := len(p.B)

	// Column layout: [0,n) original, [n, n+m) slacks, [n+m, n+m+art) artificials.
	nart := 0
	for _, b := range p.B {
		if b < 0 {
			nart++
		}
	}
	ncols := n + m + nart
	tb := &tableau{
		t:     make([][]float64, m+1),
		basis: make([]int, m),
		m:     m,
		ncols: ncols,
	}
	for i := range tb.t {
		tb.t[i] = make([]float64, ncols+1)
	}
	ai := 0
	for i := 0; i < m; i++ {
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			tb.t[i][j] = sign * p.A[i][j]
		}
		tb.t[i][n+i] = sign // slack
		tb.t[i][ncols] = sign * p.B[i]
		if sign < 0 {
			tb.t[i][n+m+ai] = 1 // artificial
			tb.basis[i] = n + m + ai
			ai++
		} else {
			tb.basis[i] = n + i
		}
	}

	if nart > 0 {
		// Phase 1: maximize -(sum of artificials); objective row is the sum
		// of the rows whose basic variable is artificial.
		obj := tb.t[m]
		for j := range obj {
			obj[j] = 0
		}
		for i := 0; i < m; i++ {
			if tb.basis[i] >= n+m {
				for j := 0; j <= ncols; j++ {
					obj[j] += tb.t[i][j]
				}
			}
		}
		// Reduced costs exclude the artificial columns themselves.
		for j := n + m; j < ncols; j++ {
			obj[j] = 0
		}
		if !tb.run(n + m) {
			return Solution{}, fmt.Errorf("lp: phase 1 unbounded (internal error)")
		}
		if tb.t[m][ncols] > eps {
			return Solution{Status: Infeasible}, nil
		}
		// Drive remaining artificial basics out of the basis.
		for i := 0; i < m; i++ {
			if tb.basis[i] < n+m {
				continue
			}
			pivoted := false
			for j := 0; j < n+m; j++ {
				if math.Abs(tb.t[i][j]) > eps {
					tb.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: harmless, leave the artificial basic at 0.
				_ = pivoted
			}
		}
	}

	// Phase 2: original objective. Rebuild the reduced-cost row:
	// z_j = c_j - Σ_i c_{basis(i)} · t[i][j].
	obj := tb.t[m]
	for j := range obj {
		obj[j] = 0
	}
	cost := func(j int) float64 {
		if j < n {
			return p.C[j]
		}
		return 0
	}
	for j := 0; j < ncols; j++ {
		obj[j] = cost(j)
	}
	obj[ncols] = 0
	for i := 0; i < m; i++ {
		cb := cost(tb.basis[i])
		if cb == 0 {
			continue
		}
		for j := 0; j <= ncols; j++ {
			obj[j] -= cb * tb.t[i][j]
		}
	}
	// Basic columns must have zero reduced cost.
	for i := 0; i < m; i++ {
		obj[tb.basis[i]] = 0
	}
	if !tb.run(n + m) {
		return Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if tb.basis[i] < n {
			x[tb.basis[i]] = tb.t[i][ncols]
		}
	}
	val := 0.0
	for j := 0; j < n; j++ {
		val += p.C[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Value: val}, nil
}
