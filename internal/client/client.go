// Package client is the Go client of the arithdb server wire protocol
// (internal/server). It is what `arithdb sql -connect` and the end-to-end
// tests speak; responses are lossless, so a client-side result is
// bit-identical to the Session call the server ran.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/value"
	"repro/internal/wire"
)

// Client talks to an ordered list of arithdbd endpoints. With one
// endpoint it behaves as before; with several (see NewFailover) reads
// fail over down the list while writes stay pinned to the first — the
// primary — because replicas reject them and a write must never be
// silently re-routed to a server that may disagree about its fate.
type Client struct {
	endpoints []string
	mu        sync.Mutex // guards cur
	cur       int        // sticky index of the endpoint serving reads
	hc        *http.Client
	retry     RetryPolicy   // zero: no retries (see WithRetry)
	attemptTO time.Duration // per-attempt deadline (see WithAttemptTimeout)
}

// New returns a client for the server at base (e.g. "http://localhost:8080").
func New(base string) *Client {
	return NewFailover([]string{base})
}

// NewFailover returns a client over an ordered endpoint list: the first
// is the primary (all writes go there, and reads prefer it); later
// entries are read fallbacks, typically replicas. Reads that fail with a
// transport error or an unavailable/degraded 503 advance to the next
// endpoint and stick there, so a fleet behind a dead primary keeps
// serving reads without per-request rediscovery.
func NewFailover(endpoints []string) *Client {
	eps := make([]string, 0, len(endpoints))
	for _, e := range endpoints {
		if e = strings.TrimRight(strings.TrimSpace(e), "/"); e != "" {
			eps = append(eps, e)
		}
	}
	if len(eps) == 0 {
		eps = []string{""}
	}
	return &Client{endpoints: eps, hc: &http.Client{}}
}

// NewWith returns a client using the given http.Client (tests inject the
// in-process listener's client).
func NewWith(base string, hc *http.Client) *Client {
	return NewFailoverWith([]string{base}, hc)
}

// NewFailoverWith is NewFailover with an injected http.Client.
func NewFailoverWith(endpoints []string, hc *http.Client) *Client {
	c := NewFailover(endpoints)
	if hc != nil {
		c.hc = hc
	}
	return c
}

// WithAttemptTimeout bounds each individual attempt (layered under
// WithRetry): a hung endpoint costs at most d before the retry loop
// moves on — and, for reads, fails over. Zero means no per-attempt
// deadline beyond the caller's context.
func (c *Client) WithAttemptTimeout(d time.Duration) *Client {
	c.attemptTO = d
	return c
}

// Endpoints returns the configured endpoint list, primary first.
func (c *Client) Endpoints() []string { return append([]string(nil), c.endpoints...) }

// Current returns the endpoint currently serving reads.
func (c *Client) Current() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.endpoints[c.cur]
}

// pickBase selects the endpoint for one attempt: writes always hit the
// primary; reads hit the sticky current endpoint.
func (c *Client) pickBase(idempotent bool) string {
	if !idempotent {
		return c.endpoints[0]
	}
	return c.Current()
}

// noteFailure records a read attempt's failure against the endpoint that
// served it, advancing the sticky index when the failure is the kind
// failover can help with: a transport error (endpoint unreachable or
// hung past the attempt deadline) or any 503 — including degraded, which
// is sticky on that server until an operator intervenes, so waiting it
// out is pointless but a replica can still serve the read.
func (c *Client) noteFailure(base string, err error) {
	if len(c.endpoints) < 2 {
		return
	}
	var se *ServerError
	if errors.As(err, &se) && se.Status != http.StatusServiceUnavailable {
		return // the endpoint is up and answering; failover cannot help
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Advance only if nobody else already moved off the failed endpoint.
	if c.endpoints[c.cur] == base {
		c.cur = (c.cur + 1) % len(c.endpoints)
	}
}

// ServerError is a structured non-2xx response.
type ServerError struct {
	Status int
	Code   string
	Msg    string
	// RetryAfter is the server's Retry-After hint, when present.
	RetryAfter time.Duration
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d, %s)", e.Msg, e.Status, e.Code)
}

// IsBusy reports whether the server shed this request under admission
// control (queue timeout or shutdown drain) — the retryable overload
// responses.
func IsBusy(err error) bool {
	var se *ServerError
	if !errors.As(err, &se) {
		return false
	}
	return se.Status == http.StatusTooManyRequests || se.Status == http.StatusServiceUnavailable
}

// roundTrip runs one request under the retry policy. idempotent marks
// requests safe to re-run when a transport error hides the first
// attempt's fate; structured pre-commit rejections (429, non-degraded
// 503) are retried regardless — see retry.go.
func (c *Client) roundTrip(ctx context.Context, method, path string, idempotent bool, in, out any) error {
	return c.withRetries(ctx, idempotent, func() error {
		base := c.pickBase(idempotent)
		err := c.do(ctx, base, method, path, in, out)
		if err != nil && idempotent {
			c.noteFailure(base, err)
		}
		return err
	})
}

func (c *Client) do(ctx context.Context, base, method, path string, in, out any) error {
	if c.attemptTO > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.attemptTO)
		defer cancel()
	}
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	se := &ServerError{Status: resp.StatusCode, Code: wire.CodeInternal}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		se.RetryAfter = parseRetryAfter(ra)
	}
	var er wire.ErrorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er); err == nil && er.Error != "" {
		se.Msg = er.Error
		if er.Code != "" {
			se.Code = er.Code
		}
	} else {
		se.Msg = resp.Status
	}
	return se
}

// parseRetryAfter reads a Retry-After header in either of its two RFC
// 9110 forms: delta-seconds, or an HTTP-date (proxies and load balancers
// commonly rewrite one into the other). A date is converted to the
// remaining wait, clamped at zero so a date already in the past means
// "retry now" rather than a negative backoff. Unparseable values yield
// zero — no hint.
func parseRetryAfter(ra string) time.Duration {
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(ra); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.roundTrip(ctx, http.MethodGet, "/healthz", true, nil, nil)
}

// Info fetches the served database's schema and null inventory.
func (c *Client) Info(ctx context.Context) (*wire.InfoResponse, error) {
	var out wire.InfoResponse
	if err := c.roundTrip(ctx, http.MethodGet, "/v1/info", true, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Insert commits a batch of tuples into one relation on the server. The
// batch is atomic: the server validates every tuple before appending the
// first, so either all commit (as one database version step) or none do.
// Queries admitted after a successful Insert observe the new tuples; a
// query already running keeps its pinned snapshot.
func (c *Client) Insert(ctx context.Context, relation string, tuples []value.Tuple) (*wire.InsertResponse, error) {
	req := wire.InsertRequest{Relation: relation, Tuples: make([][]wire.Value, len(tuples))}
	for i, t := range tuples {
		req.Tuples[i] = wire.FromTuple(t)
	}
	var out wire.InsertResponse
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/insert", false, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MeasureSQL runs the fused measure pipeline on the server and returns
// the buffered result. Zero eps/delta take the server defaults.
func (c *Client) MeasureSQL(ctx context.Context, sql string, eps, delta float64) (*wire.MeasureResponse, error) {
	var out wire.MeasureResponse
	req := wire.MeasureRequest{SQL: sql, Eps: eps, Delta: delta}
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/sql/measure", true, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ErrStreamInterrupted marks a measure stream that delivered some
// candidate events and then died without recovering: the caller holds a
// usable prefix of the result, not all of it. MeasureSQLStream wraps the
// underlying cause with this sentinel (errors.Is matches it) only after
// exhausting its reconnect attempts.
var ErrStreamInterrupted = errors.New("client: measure stream interrupted")

// MeasureSQLStream runs the fused pipeline with incremental delivery:
// yield receives each candidate event in candidate order as the server
// finalizes it. The terminal "done" event is returned; a terminal
// "error" event (or a yield error) aborts with that error.
//
// Under a retry policy the stream is resumable: a mid-stream transport
// failure (connection cut, torn NDJSON frame, server restart) reconnects
// — failing over across endpoints like any read — re-issues the query,
// and skips candidate events at or below the last index already
// delivered, so yield sees each candidate at most once. Candidate
// measurements are deterministic per database version (per-candidate
// seeding), so a resume against an unchanged database continues the
// identical result; if writes landed in between, later candidates
// reflect the newer snapshot, exactly as if the caller had re-issued the
// query itself. With retries exhausted (or disabled), a started stream's
// failure surfaces wrapped in ErrStreamInterrupted.
func (c *Client) MeasureSQLStream(ctx context.Context, sql string, eps, delta float64, yield func(ev wire.Event) error) (*wire.Event, error) {
	blob, err := json.Marshal(wire.MeasureRequest{SQL: sql, Eps: eps, Delta: delta, Stream: true})
	if err != nil {
		return nil, err
	}
	attempts := 1
	if c.retry.enabled() {
		attempts = c.retry.MaxAttempts
	}
	lastIdx := -1 // highest candidate index already delivered to yield
	started := false
	for try := 1; ; try++ {
		done, terminal, err := c.streamOnce(ctx, blob, &lastIdx, &started, yield)
		if err == nil {
			return done, nil
		}
		if terminal {
			return nil, err
		}
		if try >= attempts || !c.retryable(ctx, err, true) {
			if started {
				return nil, fmt.Errorf("%w after candidate %d: %w", ErrStreamInterrupted, lastIdx, err)
			}
			return nil, err
		}
		t := time.NewTimer(c.retry.backoff(try, retryAfter(err)))
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, err
		case <-t.C:
		}
	}
}

// streamOnce runs one connection lifetime of the measure stream,
// delivering only candidates past *lastIdx. terminal marks errors a
// reconnect cannot fix (yield failed, the server computed an error, a
// protocol violation); everything else — connect failures, cuts, torn
// frames, a stream that ends without "done" — is resumable.
func (c *Client) streamOnce(ctx context.Context, blob []byte, lastIdx *int, started *bool, yield func(ev wire.Event) error) (done *wire.Event, terminal bool, err error) {
	base := c.pickBase(true)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sql/measure", bytes.NewReader(blob))
	if err != nil {
		return nil, true, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := c.hc.Do(req)
	if err != nil {
		c.noteFailure(base, err)
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := decodeError(resp)
		c.noteFailure(base, err)
		return nil, false, err
	}
	*started = true
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev wire.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			// A line that does not parse is a torn frame — the connection died
			// mid-write. Resume, not fail.
			c.noteFailure(base, err)
			return nil, false, fmt.Errorf("client: torn stream event: %w", err)
		}
		switch ev.Event {
		case wire.EventCandidate:
			if ev.Candidate == nil {
				return nil, true, fmt.Errorf("client: candidate event %d without a candidate payload", ev.Idx)
			}
			if ev.Idx <= *lastIdx {
				continue // already delivered before the reconnect
			}
			if err := yield(ev); err != nil {
				return nil, true, err
			}
			*lastIdx = ev.Idx
		case wire.EventDone:
			return &ev, false, nil
		case wire.EventError:
			return nil, true, &ServerError{Status: http.StatusOK, Code: wire.CodeInternal, Msg: ev.Error}
		default:
			return nil, true, fmt.Errorf("client: unknown stream event %q", ev.Event)
		}
	}
	if err := sc.Err(); err != nil {
		c.noteFailure(base, err)
		return nil, false, err
	}
	c.noteFailure(base, io.ErrUnexpectedEOF)
	return nil, false, fmt.Errorf("client: stream ended without a done event: %w", io.ErrUnexpectedEOF)
}

// Experiments lists the server's Figure 1 workloads.
func (c *Client) Experiments(ctx context.Context) (*wire.ExperimentsResponse, error) {
	var out wire.ExperimentsResponse
	if err := c.roundTrip(ctx, http.MethodGet, "/v1/experiments", true, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RunExperiment runs one Figure 1 workload on the server.
func (c *Client) RunExperiment(ctx context.Context, id string, eps, delta float64) (*wire.ExperimentRunResponse, error) {
	var out wire.ExperimentRunResponse
	req := wire.ExperimentRunRequest{ID: id, Eps: eps, Delta: delta}
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/experiments/run", true, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
