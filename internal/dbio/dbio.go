// Package dbio persists incomplete databases as a directory of CSV files
// (one per relation) plus a schema manifest, with an ASCII encoding for
// marked nulls: _B<i> for base nulls ⊥i and _N<i> for numerical nulls ⊤i.
// This is how the command-line tools exchange the synthetic datasets of
// the experiments.
package dbio

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/db"
	"repro/internal/schema"
	"repro/internal/value"
)

const schemaFile = "schema.txt"

// Save writes the database into dir (created if missing): schema.txt plus
// <Relation>.csv per relation with a header row of column names.
//
// Save is crash-safe: every file is written to a temp file in the same
// directory, fsync'd, and atomically renamed into place, and the
// directory itself is fsync'd once at the end. A crash mid-save leaves
// each file either in its previous state or fully written — never torn —
// which is what lets the WAL checkpointer (internal/wal) treat a saved
// directory as a recovery point.
func Save(d *db.Database, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dbio: %w", err)
	}
	var manifest strings.Builder
	for _, rel := range d.Schema().Relations() {
		manifest.WriteString(rel.Name)
		for _, c := range rel.Columns {
			fmt.Fprintf(&manifest, " %s:%s", c.Name, c.Type)
		}
		manifest.WriteByte('\n')
		if err := saveRelation(d, rel, dir); err != nil {
			return err
		}
	}
	if err := writeFileAtomic(filepath.Join(dir, schemaFile), func(f *os.File) error {
		_, err := f.WriteString(manifest.String())
		return err
	}); err != nil {
		return fmt.Errorf("dbio: %w", err)
	}
	return syncDir(dir)
}

// writeFileAtomic writes name via a same-directory temp file that is
// fsync'd and renamed over the target, so the target is never observed
// torn. The caller fsyncs the directory (once, after all its renames) to
// make the new entries durable.
func writeFileAtomic(name string, write func(*os.File) error) error {
	tmp := name + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, name); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// syncDir fsyncs a directory, making the renames within it durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("dbio: %w", err)
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("dbio: %w", err)
	}
	return nil
}

func saveRelation(d *db.Database, rel *schema.Relation, dir string) error {
	if err := writeFileAtomic(filepath.Join(dir, rel.Name+".csv"), func(f *os.File) error {
		return writeRelationCSV(d, rel, f)
	}); err != nil {
		return fmt.Errorf("dbio: %w", err)
	}
	return nil
}

func writeRelationCSV(d *db.Database, rel *schema.Relation, f *os.File) error {
	w := csv.NewWriter(f)
	header := make([]string, len(rel.Columns))
	for i, c := range rel.Columns {
		header[i] = c.Name
	}
	if err := w.Write(header); err != nil {
		return err
	}
	// Encode straight off the columnar arrays — no tuple materialization.
	cols := make([]db.ColView, len(rel.Columns))
	for j := range cols {
		cols[j] = d.Col(rel.Name, j)
	}
	row := make([]string, len(rel.Columns))
	for i := 0; i < d.Len(rel.Name); i++ {
		for j, cv := range cols {
			switch cv.Kinds[i] {
			case value.BaseConst:
				row[j] = escapeBase(d.DictString(cv.Codes[i] >> 1))
			case value.BaseNull:
				row[j] = "_B" + strconv.Itoa(int(cv.Codes[i]>>1))
			case value.NumNull:
				row[j] = "_N" + strconv.Itoa(int(cv.Codes[i]))
			default:
				row[j] = strconv.FormatFloat(cv.Nums[i], 'g', -1, 64)
			}
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// Load reads a database previously written by Save.
func Load(dir string) (*db.Database, error) {
	manifest, err := os.ReadFile(filepath.Join(dir, schemaFile))
	if err != nil {
		return nil, fmt.Errorf("dbio: %w", err)
	}
	var rels []*schema.Relation
	for ln, line := range strings.Split(strings.TrimSpace(string(manifest)), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dbio: schema line %d malformed: %q", ln+1, line)
		}
		cols := make([]schema.Column, 0, len(fields)-1)
		for _, f := range fields[1:] {
			name, typ, ok := strings.Cut(f, ":")
			if !ok {
				return nil, fmt.Errorf("dbio: schema line %d: bad column %q", ln+1, f)
			}
			var ct schema.ColType
			switch typ {
			case "base":
				ct = schema.Base
			case "num":
				ct = schema.Num
			default:
				return nil, fmt.Errorf("dbio: schema line %d: unknown type %q", ln+1, typ)
			}
			cols = append(cols, schema.Column{Name: name, Type: ct})
		}
		rel, err := schema.NewRelation(fields[0], cols...)
		if err != nil {
			return nil, fmt.Errorf("dbio: %w", err)
		}
		rels = append(rels, rel)
	}
	s, err := schema.New(rels...)
	if err != nil {
		return nil, fmt.Errorf("dbio: %w", err)
	}
	d := db.New(s)
	for _, rel := range rels {
		if err := loadRelation(d, rel, dir); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func loadRelation(d *db.Database, rel *schema.Relation, dir string) error {
	f, err := os.Open(filepath.Join(dir, rel.Name+".csv"))
	if err != nil {
		return fmt.Errorf("dbio: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	records, err := r.ReadAll()
	if err != nil {
		return fmt.Errorf("dbio: %s: %w", rel.Name, err)
	}
	if len(records) == 0 {
		return fmt.Errorf("dbio: %s.csv missing header", rel.Name)
	}
	for i, rec := range records[1:] {
		if len(rec) != rel.Arity() {
			return fmt.Errorf("dbio: %s.csv row %d has %d fields, want %d", rel.Name, i+2, len(rec), rel.Arity())
		}
		tup := make(value.Tuple, len(rec))
		for j, s := range rec {
			v, err := decode(s, rel.Columns[j].Type)
			if err != nil {
				return fmt.Errorf("dbio: %s.csv row %d col %s: %w", rel.Name, i+2, rel.Columns[j].Name, err)
			}
			tup[j] = v
		}
		if err := d.Insert(rel.Name, tup); err != nil {
			return fmt.Errorf("dbio: %w", err)
		}
	}
	return nil
}

// nullID extracts i from "_B<i>" / "_N<i>"; ok is false when the text is
// not exactly of that shape.
func nullID(s, prefix string) (int, bool) {
	rest, found := strings.CutPrefix(s, prefix)
	if !found || rest == "" {
		return 0, false
	}
	id, err := strconv.Atoi(rest)
	if err != nil || id < 0 {
		return 0, false
	}
	return id, true
}

// escapeBase renders a base constant. Constants beginning with an
// underscore are escaped with one extra underscore so that the null
// syntax stays unambiguous.
func escapeBase(s string) string {
	if strings.HasPrefix(s, "_") {
		return "_" + s
	}
	return s
}

func decode(s string, t schema.ColType) (value.Value, error) {
	if t == schema.Num {
		if id, ok := nullID(s, "_N"); ok {
			return value.NullNum(id), nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("bad number %q", s)
		}
		return value.Num(f), nil
	}
	if id, ok := nullID(s, "_B"); ok {
		return value.NullBase(id), nil
	}
	if strings.HasPrefix(s, "__") {
		return value.Base(s[1:]), nil
	}
	if strings.HasPrefix(s, "_") {
		// An escaped literal always has a doubled underscore; a single one
		// can only be produced by hand-edited files. Accept it verbatim.
		return value.Base(s), nil
	}
	return value.Base(s), nil
}
