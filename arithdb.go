// Package arithdb is a library for answering queries with arithmetic over
// incomplete databases, reproducing Console, Hofer & Libkin, "Queries with
// Arithmetic on Incomplete Databases" (PODS 2020).
//
// Databases are two-sorted — columns hold either uninterpreted base values
// or real numbers — and either kind of column may contain marked nulls.
// Queries come from FO(+,·,<) (first-order logic with arithmetic) or from
// a small SQL dialect. Instead of the classical all-or-nothing certain
// answers, every candidate answer tuple gets a measure of certainty
// μ ∈ [0,1]: the asymptotic fraction of interpretations of the numerical
// nulls under which the tuple is an answer.
//
// Quick start:
//
//	s := arithdb.MustSchema(arithdb.MustRelation("R",
//	    arithdb.Col("x", arithdb.Num), arithdb.Col("y", arithdb.Num)))
//	d := arithdb.NewDatabase(s)
//	d.MustInsert("R", arithdb.NullNum(0), arithdb.NullNum(1))
//
//	q := arithdb.MustParseQuery(`q() := exists x:num, y:num . (R(x, y) and x > y)`)
//	res, _ := arithdb.NewEngine(arithdb.EngineOptions{}).Measure(q, d, nil, 0.01, 0.05)
//	fmt.Println(res.Value) // 0.5, exactly
//
// The engine picks exact algorithms (rational cell enumeration for order
// constraints, closed-form sectors in low dimension) when they apply and
// falls back to the paper's randomized approximation schemes otherwise.
// For SQL workloads, Session.MeasureSQL runs the fused pipeline of the
// paper's experiments — queries are lowered to a logical plan
// (internal/plan), executed by a streaming hash-join executor
// (internal/exec) over the database's persistent equality indexes, and
// candidates are measured concurrently as their constraints finalize.
// EvaluateSQL remains the evaluate-only entry point, producing candidate
// tuples with compact per-tuple constraints that feed MeasureFormula.
package arithdb

import (
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/dbio"
	"repro/internal/fo"
	"repro/internal/realfmla"
	"repro/internal/schema"
	"repro/internal/sqlfront"
	"repro/internal/translate"
	"repro/internal/value"
)

// Value is a database entry: a base or numerical constant, or a marked
// null of either sort.
type Value = value.Value

// Tuple is a row of values.
type Tuple = value.Tuple

// Value constructors.
var (
	// Base returns a base-sort constant.
	Base = value.Base
	// Num returns a numerical constant.
	Num = value.Num
	// NullBase returns the marked base null ⊥i.
	NullBase = value.NullBase
	// NullNum returns the marked numerical null ⊤i.
	NullNum = value.NullNum
)

// ColType is the sort of a column.
type ColType = schema.ColType

// Column sorts.
const (
	// BaseCol marks a base-typed column.
	BaseCol = schema.Base
	// NumCol marks a numerical column.
	NumCol = schema.Num
)

// Column describes one relation column.
type Column = schema.Column

// Col is shorthand for building a Column.
func Col(name string, t ColType) Column { return Column{Name: name, Type: t} }

// Relation is a relation schema.
type Relation = schema.Relation

// Schema is a database schema.
type Schema = schema.Schema

// Schema construction.
var (
	// NewRelation builds a relation schema, validating column names.
	NewRelation = schema.NewRelation
	// MustRelation is NewRelation panicking on error.
	MustRelation = schema.MustRelation
	// NewSchema builds a schema from relations.
	NewSchema = schema.New
	// MustSchema is NewSchema panicking on error.
	MustSchema = schema.MustNew
)

// Database is an incomplete database instance.
type Database = db.Database

// NewDatabase returns an empty database over the schema.
func NewDatabase(s *Schema) *Database { return db.New(s) }

// SaveDatabase writes the database as a directory of CSV files.
func SaveDatabase(d *Database, dir string) error { return dbio.Save(d, dir) }

// LoadDatabase reads a database written by SaveDatabase.
func LoadDatabase(dir string) (*Database, error) { return dbio.Load(dir) }

// Query is a parsed FO(+,·,<) query.
type Query = fo.Query

// FO query parsing and checking.
var (
	// ParseQuery parses the textual query syntax (see fo.ParseQuery).
	ParseQuery = fo.ParseQuery
	// MustParseQuery is ParseQuery panicking on error.
	MustParseQuery = fo.MustParseQuery
	// Typecheck validates a query against a schema.
	Typecheck = fo.Typecheck
)

// Constraint is a quantifier-free formula over the reals: the translated
// form of a query/database/answer triple, and the per-candidate
// constraints of SQL evaluation.
type Constraint = realfmla.Formula

// Translate builds the constraint φ with μ(q, D, args) = ν(φ)
// (Proposition 5.3 / Theorem 5.4).
func Translate(q *Query, d *Database, args []Value) (Constraint, error) {
	res, err := translate.Query(q, d, args)
	if err != nil {
		return nil, err
	}
	return res.Phi, nil
}

// SQLQuery is a parsed SELECT statement.
type SQLQuery = sqlfront.Query

// SQLCandidate is one candidate answer of conditional SQL evaluation: the
// tuple plus the constraint under which it is an answer.
type SQLCandidate = sqlfront.Candidate

// SQLResult is the output of EvaluateSQL.
type SQLResult = sqlfront.Result

// SQL front-end.
var (
	// ParseSQL parses a SELECT ... FROM ... WHERE ... LIMIT statement.
	ParseSQL = sqlfront.Parse
	// MustParseSQL is ParseSQL panicking on error.
	MustParseSQL = sqlfront.MustParse
	// EvaluateSQL runs a SQL query under conditional semantics, returning
	// candidate tuples with their constraints.
	EvaluateSQL = sqlfront.Evaluate
	// EvaluateSQL3VL runs a SQL query under SQL's three-valued logic —
	// the baseline that silently drops answers depending on nulls.
	EvaluateSQL3VL = sqlfront.Evaluate3VL
	// MissingFromSQL lists the candidates SQL's three-valued logic loses
	// relative to conditional evaluation.
	MissingFromSQL = sqlfront.Missing
	// CompileSQLToFO compiles a SELECT statement into the equivalent
	// FO(+,·,<) query (LIMIT excluded).
	CompileSQLToFO = sqlfront.ToFO
)

// Engine computes measures of certainty.
type Engine = core.Engine

// EngineOptions configures an Engine. Performance knobs of note:
// Workers fans the additive-approximation (AFPRAS) sample loop of a
// single constraint out over goroutines (default GOMAXPROCS; results
// are bit-identical for a fixed Seed regardless of the setting; the
// background/distribution samplers stay sequential), and
// CompileCacheSize sizes the engine's compiled-formula cache, which
// lets ε-sweeps over the same candidate constraints compile each
// formula once instead of once per call.
type EngineOptions = core.Options

// Result is a computed or approximated measure.
type Result = core.Result

// NewEngine returns an engine with the given options.
func NewEngine(opts EngineOptions) *Engine { return core.New(opts) }

// MeasureBatch computes measures for many constraints concurrently with
// deterministic per-item seeding (one engine per item, worker pool sized
// to GOMAXPROCS).
var MeasureBatch = core.MeasureBatch

// Method names reported in Result.Method.
const (
	MethodTrivial      = core.MethodTrivial
	MethodExactCells   = core.MethodExactCells
	MethodExactSector  = core.MethodExactSector
	MethodAFPRAS       = core.MethodAFPRAS
	MethodAFPRASDirect = core.MethodAFPRASDirect
	MethodFPRAS        = core.MethodFPRAS
	MethodAFPRASRace   = core.MethodAFPRASRace
)

// TopKResult reports an adaptive top-k race (Engine.MeasureTopK): the
// indices and measures of the k most certain candidates, plus the total
// sampling spend. LIMIT-k MeasureSQL routes through the same race by
// default; EngineOptions.NoAdaptive restores the fixed-budget semantics.
type TopKResult = core.TopKResult

// Interval is a range constraint on a numerical null (the paper's Section
// 10 extension): Lo ≤ z ≤ Hi with ±Inf for open ends.
type Interval = core.Interval

// Background maps formula variables to range constraints for
// Engine.MeasureWithBackground.
type Background = core.Background

// Interval constructors.
var (
	// Unbounded is (−∞, ∞).
	Unbounded = core.Unbounded
	// AtLeast is [lo, ∞) — e.g. a price known non-negative.
	AtLeast = core.AtLeast
	// AtMost is (−∞, hi].
	AtMost = core.AtMost
	// Between is [lo, hi] — e.g. a discount known to lie in [0,1].
	Between = core.Between
)

// Distribution is an explicit prior on a numerical null for
// Engine.MeasureWithDistributions (Section 10's distribution extension).
type Distribution = core.Distribution

// Built-in distributions.
type (
	// UniformDist is uniform on [Lo, Hi].
	UniformDist = core.UniformDist
	// NormalDist is Gaussian with Mean and Stddev.
	NormalDist = core.NormalDist
	// ExponentialDist is exponential with Rate, shifted to start at Lo.
	ExponentialDist = core.ExponentialDist
)

// BackgroundFromColumnRanges builds a Background for the nulls of a
// database from per-column range declarations keyed "Relation.column"
// (e.g. {"Products.dis": Between(0, 1), "Products.rrp": AtLeast(0)}).
// A null occurring in several constrained columns gets the intersection
// of their ranges. index maps null IDs to formula variable indices (use
// SQLResult.Index or translate's Result.Index).
func BackgroundFromColumnRanges(d *Database, ranges map[string]Interval, index map[int]int) Background {
	bg := make(Background)
	for id, cols := range d.NumNullOccurrences() {
		vi, ok := index[id]
		if !ok {
			continue
		}
		iv := Unbounded()
		constrained := false
		for _, col := range cols {
			r, ok := ranges[col]
			if !ok {
				continue
			}
			constrained = true
			if r.Lo > iv.Lo {
				iv.Lo = r.Lo
			}
			if r.Hi < iv.Hi {
				iv.Hi = r.Hi
			}
		}
		if constrained {
			bg[vi] = iv
		}
	}
	return bg
}

// SalesConfig configures the synthetic sales-database generator used by
// the paper's experiments (Section 9).
type SalesConfig = datagen.Config

// GenerateSales produces the synthetic sales database.
var GenerateSales = datagen.Generate

// SalesSchema returns the experiment schema
// (Products / Orders / Market).
var SalesSchema = datagen.Schema

// The three decision-support queries of the paper's experimental
// evaluation (Figure 1).
const (
	QueryCompetitiveAdvantage    = datagen.CompetitiveAdvantage
	QueryNeverKnowinglyUndersold = datagen.NeverKnowinglyUndersold
	QueryUnfairDiscount          = datagen.UnfairDiscount
)
