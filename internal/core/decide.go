package core

import (
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/realfmla"
)

// Satisfiable decides whether a linear constraint formula has a real
// solution, and produces a witness: each DNF disjunct is a system of
// linear (in)equalities checked by the simplex solver, with strict
// inequalities handled through a slack-maximization objective. This gives
// the classical *possibility* notion next to the measure: a candidate
// answer with μ = 0 may still be possible (its satisfying set is bounded
// or lower-dimensional, e.g. z = 5), and Satisfiable tells these apart
// from genuinely impossible answers.
//
// It returns an error for nonlinear formulas or when the DNF exceeds the
// engine's limit.
func (e *Engine) Satisfiable(phi realfmla.Formula) (sat bool, witness []float64, err error) {
	reduced, vars := realfmla.Reduce(phi)
	n := len(vars)
	if n == 0 {
		return realfmla.Eval(reduced, nil), []float64{}, nil
	}
	if !realfmla.IsLinear(reduced) {
		return false, nil, fmt.Errorf("core: Satisfiable requires linear constraints")
	}
	dnf, err := realfmla.ToDNF(reduced, e.opts.DNFLimit)
	if err != nil {
		return false, nil, err
	}
	for _, conj := range dnf {
		w, ok, err := e.satisfiableConj(conj, n)
		if err != nil {
			return false, nil, err
		}
		if ok {
			// Lift the reduced witness back to the ambient variable space.
			full := make([]float64, realfmla.NumVars(phi))
			for j, orig := range vars {
				full[orig] = w[j]
			}
			return true, full, nil
		}
	}
	return false, nil, nil
}

// witnessBox bounds witness coordinates: Satisfiable searches within
// |z_j| ≤ witnessBox, which is ample for constraints arising from query
// constants but keeps every LP bounded.
const witnessBox = 1e6

// satisfiableConj decides one conjunction of linear atoms.
//
// Strategy: encode non-NE atoms as a polyhedron P with a shared slack
// variable t on the strict atoms; P has a point satisfying the strict
// atoms strictly iff the slack optimum t* is positive (or P is plainly
// feasible when there are no strict atoms). For the ≠ atoms, note that a
// convex set contained in a finite union of hyperplanes lies entirely in
// one of them; so the conjunction is satisfiable iff the (slack-interior)
// polyhedron is nonempty and not contained in any single excluded
// hyperplane — decided per hyperplane by maximizing/minimizing its linear
// form over P. A witness avoiding all hyperplanes is then found as a
// random convex combination of the per-hyperplane violating points.
func (e *Engine) satisfiableConj(conj realfmla.Conj, n int) ([]float64, bool, error) {
	var a [][]float64
	var b []float64
	type hyperplane struct {
		atom realfmla.Atom
		c    []float64
		c0   float64
	}
	var nes []hyperplane
	hasStrict := false

	addRow := func(c []float64, rhs float64, strict bool) {
		row := make([]float64, n+1)
		copy(row, c)
		if strict {
			row[n] = 1
			hasStrict = true
		}
		a = append(a, row)
		b = append(b, rhs)
	}
	neg := func(c []float64) []float64 {
		out := make([]float64, len(c))
		for i, v := range c {
			out[i] = -v
		}
		return out
	}
	for _, atom := range conj {
		c, c0, ok := atom.P.LinearForm()
		if !ok {
			return nil, false, fmt.Errorf("core: nonlinear atom %s", atom)
		}
		switch atom.Rel {
		case realfmla.LT:
			addRow(c, -c0, true)
		case realfmla.LE:
			addRow(c, -c0, false)
		case realfmla.GT:
			addRow(neg(c), c0, true)
		case realfmla.GE:
			addRow(neg(c), c0, false)
		case realfmla.EQ:
			addRow(c, -c0, false)
			addRow(neg(c), c0, false)
		case realfmla.NE:
			nes = append(nes, hyperplane{atom: atom, c: c, c0: c0})
		}
	}
	// Bound the search: |z_j| ≤ witnessBox, 0 ≤ t ≤ 1 (t ≥ 0 is implicit in
	// how the slack is used; cap it so maximizing t stays bounded).
	for j := 0; j < n; j++ {
		row := make([]float64, n+1)
		row[j] = 1
		a = append(a, row)
		b = append(b, witnessBox)
		row2 := make([]float64, n+1)
		row2[j] = -1
		a = append(a, row2)
		b = append(b, witnessBox)
	}
	tRow := make([]float64, n+1)
	tRow[n] = 1
	a = append(a, tRow)
	b = append(b, 1)

	// Phase 1: feasibility with maximal strictness slack.
	obj := make([]float64, n+1)
	obj[n] = 1
	sol, err := lp.SolveFree(lp.Problem{C: obj, A: a, B: b})
	if err != nil {
		return nil, false, err
	}
	if sol.Status != lp.Optimal {
		return nil, false, nil
	}
	if hasStrict && sol.Value <= 1e-9 {
		return nil, false, nil // strict system has empty interior
	}
	w0 := append([]float64(nil), sol.X[:n]...)
	if len(nes) == 0 {
		if !conj.Eval(w0) {
			return nil, false, fmt.Errorf("core: LP witness fails verification (numerical)")
		}
		return w0, true, nil
	}

	// Keep subsequent optima inside the strict interior: t ≥ t*/2.
	if hasStrict {
		row := make([]float64, n+1)
		row[n] = -1
		a = append(a, row)
		b = append(b, -sol.Value/2)
	}

	// Phase 2: for each excluded hyperplane find a feasible point off it.
	points := [][]float64{w0}
	for _, h := range nes {
		found := false
		for _, dirSign := range []float64{1, -1} {
			o := make([]float64, n+1)
			for j := range h.c {
				o[j] = dirSign * h.c[j]
			}
			s, err := lp.SolveFree(lp.Problem{C: o, A: a, B: b})
			if err != nil {
				return nil, false, err
			}
			if s.Status != lp.Optimal {
				continue
			}
			p := s.X[:n]
			if math.Abs(h.atom.P.Eval(p)) > 1e-7 {
				points = append(points, append([]float64(nil), p...))
				found = true
				break
			}
		}
		if !found {
			// P (within the strict interior) is contained in the excluded
			// hyperplane: unsatisfiable.
			return nil, false, nil
		}
	}

	// Phase 3: a random convex combination of the collected points avoids
	// every hyperplane almost surely.
	for attempt := 0; attempt < 64; attempt++ {
		weights := make([]float64, len(points))
		sum := 0.0
		for i := range weights {
			weights[i] = e.rand().Float64() + 1e-3
			sum += weights[i]
		}
		w := make([]float64, n)
		for i, p := range points {
			f := weights[i] / sum
			for j := range w {
				w[j] += f * p[j]
			}
		}
		if conj.Eval(w) {
			return w, true, nil
		}
	}
	return nil, false, fmt.Errorf("core: could not separate witness from ≠ constraints")
}

// CertainlyTrue decides whether a linear constraint formula holds for
// every interpretation of the nulls — the classical certain-answer notion
// (here decidable because the constraints are linear): φ is certainly true
// iff ¬φ is unsatisfiable.
func (e *Engine) CertainlyTrue(phi realfmla.Formula) (bool, error) {
	sat, _, err := e.Satisfiable(realfmla.NNF(realfmla.FNot{F: phi}))
	if err != nil {
		return false, err
	}
	return !sat, nil
}
