package server

// Sharded-mode server tests: a -shards=N server must be
// indistinguishable on the wire from an unsharded one — bit-identical
// measures, streaming included — while /v1/info additionally reports the
// topology, and writes scatter through the store.

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/sqlfront"
	"repro/internal/value"
	"repro/internal/wire"
)

func newShardedStore(t testing.TB, n int) *shard.Store {
	t.Helper()
	st, err := shard.FromDatabase(testDB(), n)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestShardedServerMeasureParity: every e2e workload through a 3-shard
// server equals the direct single-store pipeline, buffered and streamed.
func TestShardedServerMeasureParity(t *testing.T) {
	opts := core.Options{Seed: 7}
	_, c, _ := newTestServer(t, Config{Engine: opts, Sharded: newShardedStore(t, 3)})
	ctx := context.Background()
	for _, src := range testWorkloads {
		want := directMeasure(t, opts, src, 0.05, 0.25)
		got, err := c.MeasureSQL(ctx, src, 0.05, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		label := "sharded " + src[:min(24, len(src))]
		assertParity(t, label, got, want)

		var streamed []wire.MeasuredCandidate
		done, err := c.MeasureSQLStream(ctx, src, 0.05, 0.25, func(ev wire.Event) error {
			streamed = append(streamed, *ev.Candidate)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if done.Count != len(want.Candidates) || len(streamed) != len(want.Candidates) {
			t.Fatalf("%s: streamed %d (done %d), want %d", label, len(streamed), done.Count, len(want.Candidates))
		}
		for i, wc := range streamed {
			assertCandidateParity(t, label+" (stream)", i, wc, want.Candidates[i])
		}
	}
}

// TestShardedServerInsertAndInfo: writes scatter through the store,
// /v1/info reports the topology, and post-write measures still match an
// unsharded reference that received the same rows.
func TestShardedServerInsertAndInfo(t *testing.T) {
	opts := core.Options{Seed: 7}
	st := newShardedStore(t, 4)
	_, c, _ := newTestServer(t, Config{Engine: opts, Sharded: st})
	ctx := context.Background()

	ref := testDB().Clone()
	batch := []value.Tuple{
		{value.Base("seg1"), value.Num(10), value.Num(0.5)},
		{value.Base("seg2"), value.NullNum(9000), value.Num(0.25)},
		{value.Base("seg1"), value.Num(10), value.Num(0.5)}, // duplicate
	}
	resp, err := c.Insert(ctx, "Market", batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.InsertBatch("Market", batch); err != nil {
		t.Fatal(err)
	}
	if resp.Inserted != len(batch) || resp.Tuples != ref.Len("Market") {
		t.Fatalf("insert ack %+v, want %d into %d", resp, len(batch), ref.Len("Market"))
	}

	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Sharding == nil || info.Sharding.NumShards != 4 {
		t.Fatalf("info.Sharding = %+v, want 4 shards", info.Sharding)
	}
	total := 0
	for _, sz := range info.Sharding.ShardSizes {
		total += sz
	}
	if total != ref.Size() || info.Tuples != ref.Size() {
		t.Fatalf("shard sizes %v (sum %d) and tuples %d, want %d rows",
			info.Sharding.ShardSizes, total, info.Tuples, ref.Size())
	}

	// Post-write reads: the scattered rows measure bit-identically to the
	// unsharded reference holding the same rows in the same order.
	src := `SELECT M.seg FROM Market M WHERE M.rrp * M.dis > 2 LIMIT 5`
	want, err := core.New(opts).MeasureSQL(sqlfront.MustParse(src), ref, 0.1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.MeasureSQL(ctx, src, 0.1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, "post-insert", got, want)
	for i, wc := range got.Candidates {
		m, err := wc.Measure.Result()
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(m.Value) != math.Float64bits(want.Candidates[i].Measure.Value) {
			t.Fatalf("candidate %d bits diverged after insert", i)
		}
	}
}

// TestShardedConfigValidation: the sharded store is exclusive with every
// other data source — it shards in-process and composes with durability
// only at the fleet level.
func TestShardedConfigValidation(t *testing.T) {
	st := newShardedStore(t, 2)
	if _, err := New(Config{Sharded: st, DB: testDB()}); err == nil {
		t.Fatal("Sharded+DB accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Sharded: st}); err != nil {
		t.Fatalf("sharded-only config rejected: %v", err)
	}
}
