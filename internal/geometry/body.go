// Package geometry implements the computational-geometry substrate for the
// FPRAS of Section 7: convex bodies given as intersections of halfspaces
// and balls (the homogenized cones of a CQ(+,<) query intersected with the
// unit ball), membership and chord oracles, LP-seeded interior points,
// hit-and-run sampling, a Dyer–Frieze–Kannan multiphase volume estimator,
// and a Karp–Luby estimator for the volume of a union of bodies (the role
// played by the Bringmann–Friedrich algorithm in the paper).
package geometry

import (
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/mc"
)

// Halfspace is the constraint C·x ≤ B.
type Halfspace struct {
	C []float64
	B float64
}

// Contains reports whether x satisfies the halfspace up to tol.
func (h Halfspace) Contains(x []float64, tol float64) bool {
	return mc.Dot(h.C, x) <= h.B+tol
}

// BallConstraint is the constraint ‖x - Center‖ ≤ R.
type BallConstraint struct {
	Center []float64
	R      float64
}

// Contains reports whether x satisfies the ball constraint up to tol.
func (b BallConstraint) Contains(x []float64, tol float64) bool {
	s := 0.0
	for i := range x {
		d := x[i] - b.Center[i]
		s += d * d
	}
	return math.Sqrt(s) <= b.R+tol
}

// Body is a convex body: an intersection of halfspaces and balls in ℝⁿ.
type Body struct {
	N     int
	Half  []Halfspace
	Balls []BallConstraint
}

// NewConeInBall builds the body {x : C_i·x ≤ 0 for all i} ∩ B(0, 1) — the
// shape produced by homogenizing one disjunct of a CQ(+,<) formula
// (Section 7).
func NewConeInBall(n int, normals [][]float64) *Body {
	b := &Body{N: n}
	for _, c := range normals {
		b.Half = append(b.Half, Halfspace{C: append([]float64(nil), c...), B: 0})
	}
	b.Balls = append(b.Balls, BallConstraint{Center: make([]float64, n), R: 1})
	return b
}

// WithBall returns a copy of the body with an extra ball constraint.
func (b *Body) WithBall(center []float64, r float64) *Body {
	nb := &Body{N: b.N, Half: b.Half}
	nb.Balls = append(append([]BallConstraint(nil), b.Balls...),
		BallConstraint{Center: append([]float64(nil), center...), R: r})
	return nb
}

// Contains reports membership of x up to tol.
func (b *Body) Contains(x []float64, tol float64) bool {
	for _, h := range b.Half {
		if !h.Contains(x, tol) {
			return false
		}
	}
	for _, bl := range b.Balls {
		if !bl.Contains(x, tol) {
			return false
		}
	}
	return true
}

// Chord intersects the line {x + λ·d : λ ∈ ℝ} with the body and returns
// the feasible interval [lo, hi]. If the line misses the body the returned
// interval is empty (lo > hi).
func (b *Body) Chord(x, d []float64) (lo, hi float64) {
	lo, hi = math.Inf(-1), math.Inf(1)
	for _, h := range b.Half {
		cd := mc.Dot(h.C, d)
		cx := mc.Dot(h.C, x)
		switch {
		case math.Abs(cd) < 1e-15:
			if cx > h.B {
				return 1, 0 // line parallel and outside
			}
		case cd > 0:
			hi = math.Min(hi, (h.B-cx)/cd)
		default:
			lo = math.Max(lo, (h.B-cx)/cd)
		}
	}
	for _, bl := range b.Balls {
		// ‖x + λd - c‖² ≤ R²: quadratic aλ² + 2bλ + c0 ≤ 0.
		var a, bb, c0 float64
		for i := range x {
			dx := x[i] - bl.Center[i]
			a += d[i] * d[i]
			bb += dx * d[i]
			c0 += dx * dx
		}
		c0 -= bl.R * bl.R
		if a < 1e-30 {
			if c0 > 0 {
				return 1, 0
			}
			continue
		}
		disc := bb*bb - a*c0
		if disc < 0 {
			return 1, 0 // line misses the ball
		}
		s := math.Sqrt(disc)
		lo = math.Max(lo, (-bb-s)/a)
		hi = math.Min(hi, (-bb+s)/a)
	}
	return lo, hi
}

// InteriorPoint finds a point strictly inside the body together with a
// radius rho such that B(x, rho) ⊆ body, by solving the Chebyshev-center
// LP over the halfspaces and a box inscribed in each ball constraint
// (|x_j - c_j| ≤ R/√n implies membership in the ball). It returns
// ok = false when the body has empty interior under that inner
// approximation.
func (b *Body) InteriorPoint() (x []float64, rho float64, ok bool, err error) {
	n := b.N
	// Variables: x_1..x_n, t. Maximize t.
	var A [][]float64
	var rhs []float64
	for _, h := range b.Half {
		norm := mc.Norm(h.C)
		row := make([]float64, n+1)
		copy(row, h.C)
		row[n] = norm
		A = append(A, row)
		rhs = append(rhs, h.B)
	}
	for _, bl := range b.Balls {
		side := bl.R / math.Sqrt(float64(n))
		for j := 0; j < n; j++ {
			row := make([]float64, n+1)
			row[j] = 1
			row[n] = 1
			A = append(A, row)
			rhs = append(rhs, bl.Center[j]+side)

			row2 := make([]float64, n+1)
			row2[j] = -1
			row2[n] = 1
			A = append(A, row2)
			rhs = append(rhs, -bl.Center[j]+side)
		}
	}
	// Keep t bounded so the LP is never unbounded.
	tb := make([]float64, n+1)
	tb[n] = 1
	A = append(A, tb)
	rhs = append(rhs, 1e6)

	c := make([]float64, n+1)
	c[n] = 1
	sol, err := lp.SolveFree(lp.Problem{C: c, A: A, B: rhs})
	if err != nil {
		return nil, 0, false, err
	}
	if sol.Status != lp.Optimal || sol.Value <= 1e-9 {
		return nil, 0, false, nil
	}
	return sol.X[:n], sol.Value, true, nil
}

// BallVolume returns the volume of the n-dimensional ball of radius r:
// π^{n/2}·rⁿ / Γ(n/2 + 1).
func BallVolume(n int, r float64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("geometry: BallVolume of dimension %d", n))
	}
	if n == 0 {
		return 1 // Vol(ℝ⁰) = 1, the convention of the paper's Section 4.
	}
	lg := float64(n)/2*math.Log(math.Pi) + float64(n)*math.Log(r)
	g, _ := math.Lgamma(float64(n)/2 + 1)
	return math.Exp(lg - g)
}
