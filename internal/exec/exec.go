// Package exec is the streaming executor of the SQL pipeline: it runs a
// logical plan (package plan) over a database with an iterator model and
// emits (tuple, constraint-disjunct) pairs — one per surviving join
// combination — incrementally, instead of materializing the naive join.
//
// Joins on decidable base-column equalities run as hash joins against the
// database's lazily built equality indexes (marked base nulls join only
// with themselves, per Prop 5.2); numeric/θ conditions fall back to
// nested-loop filtering and contribute polynomial constraint atoms. Each
// derivation's conjunction is laid out in the plan's canonical order, so
// the constraint formulas are byte-identical to those of the pre-planner
// evaluator regardless of the join order executed; when the planner
// reordered joins, Run restores the original derivation order before
// emitting.
package exec

import (
	"fmt"
	"sort"

	"repro/internal/db"
	"repro/internal/plan"
	"repro/internal/poly"
	"repro/internal/realfmla"
	"repro/internal/sqlast"
	"repro/internal/value"
)

// Options configures execution.
type Options struct {
	// NoDBIndexes makes the executor build transient per-query hash
	// tables instead of using (and lazily building) the database's
	// persistent equality indexes.
	NoDBIndexes bool
	// NoHashJoin disables index/hash access paths entirely: every step
	// becomes a full scan with residual condition checks — the naive
	// nested-loop baseline.
	NoHashJoin bool
}

// Deriv is one derivation: a surviving join combination. Tuple is the
// projected answer tuple, Conj the constraint atoms it is conditioned on
// (in the plan's canonical order; empty means unconditional), and Rows
// the bound row ordinals per original FROM position (the derivation's
// rank in the naive nested-loop enumeration). Rows is populated only for
// reordered (non-Identity) plans, where Run needs it to restore
// derivation order; on streaming plans the emission order already is the
// derivation order.
type Deriv struct {
	Tuple value.Tuple
	Conj  []realfmla.Formula
	Rows  []int
}

// Cursor is a pull-based iterator over the derivations of a plan, in
// executor order (the plan's join order). Use Run to consume derivations
// in the original derivation order regardless of reordering.
type Cursor struct {
	p    *plan.Plan
	d    *db.Database
	opts Options

	tables [][]value.Tuple // per-step relation contents (db-owned, read-only)
	rows   []value.Tuple   // bound row per step
	ords   []int           // bound row ordinal per step
	cand   [][]int         // candidate ordinals per step (nil → positional scan)
	n      []int           // candidate count per step
	pos    []int           // next candidate index per step
	probe  []bool          // step currently served by its access path
	tidx   []db.EqIndex    // per-step index handle (persistent or transient)
	atoms  []realfmla.Formula
	zeros  []float64

	depth   int
	started bool
	done    bool
}

// NewCursor opens a cursor over the plan.
func NewCursor(p *plan.Plan, d *db.Database, opts Options) *Cursor {
	ns := len(p.Steps)
	c := &Cursor{
		p: p, d: d, opts: opts,
		tables: make([][]value.Tuple, ns),
		rows:   make([]value.Tuple, ns),
		ords:   make([]int, ns),
		cand:   make([][]int, ns),
		n:      make([]int, ns),
		pos:    make([]int, ns),
		probe:  make([]bool, ns),
		tidx:   make([]db.EqIndex, ns),
		atoms:  make([]realfmla.Formula, len(p.Conds)),
		zeros:  make([]float64, p.K),
	}
	for s := range p.Steps {
		c.tables[s] = d.Rows(p.Steps[s].Relation)
	}
	return c
}

// Next returns the next derivation, or nil when the cursor is exhausted.
// The returned Deriv is freshly allocated and owned by the caller.
func (c *Cursor) Next() (*Deriv, error) {
	if c.done {
		return nil, nil
	}
	s := c.depth
	if !c.started {
		c.started = true
		s = 0
		c.enter(0)
	}
	last := len(c.p.Steps) - 1
	for s >= 0 {
		if c.pos[s] >= c.n[s] {
			s--
			continue
		}
		i := c.pos[s]
		c.pos[s]++
		ord := i
		if c.cand[s] != nil {
			ord = c.cand[s][i]
		}
		c.ords[s] = ord
		c.rows[s] = c.tables[s][ord]
		ok, err := c.applyConds(s)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if s == last {
			c.depth = s
			return c.emit(), nil
		}
		s++
		c.enter(s)
	}
	c.done = true
	return nil, nil
}

// enter prepares step s's candidate rows for the current outer binding:
// an index probe when the plan chose one (and hashing is enabled), a full
// scan otherwise.
func (c *Cursor) enter(s int) {
	st := &c.p.Steps[s]
	c.pos[s] = 0
	c.probe[s] = false
	if !c.opts.NoHashJoin && st.Access != plan.FullScan {
		var key value.Value
		if st.Access == plan.IndexEq {
			key = c.rows[st.Outer.Step][st.Outer.Col]
		} else {
			key = st.Lit
		}
		c.cand[s] = c.index(s)[key]
		c.n[s] = len(c.cand[s])
		c.probe[s] = true
		return
	}
	c.cand[s] = nil
	c.n[s] = len(c.tables[s])
}

// index returns the equality index serving step s's access path, caching
// the handle on the cursor (and building a transient one in NoDBIndexes
// mode).
func (c *Cursor) index(s int) db.EqIndex {
	if c.tidx[s] != nil {
		return c.tidx[s]
	}
	st := &c.p.Steps[s]
	if !c.opts.NoDBIndexes {
		c.tidx[s] = c.d.Index(st.Relation, st.LocalCol)
		return c.tidx[s]
	}
	ix := make(db.EqIndex)
	for i, t := range c.tables[s] {
		ix[t[st.LocalCol]] = append(ix[t[st.LocalCol]], i)
	}
	c.tidx[s] = ix
	return ix
}

// relOf maps sqlast comparison operators to sign relations, matching the
// pre-planner evaluator's table.
var relOf = [...]realfmla.Rel{realfmla.LT, realfmla.LE, realfmla.EQ, realfmla.NE, realfmla.GE, realfmla.GT}

// applyConds evaluates every condition placed at step s for the current
// binding: base conditions decide immediately, numeric conditions either
// decide (constant polynomial) or record a constraint atom. The access
// condition is skipped when the index probe already guarantees it.
func (c *Cursor) applyConds(s int) (bool, error) {
	st := &c.p.Steps[s]
	for _, ci := range st.Conds {
		if c.probe[s] && ci == st.AccessCond {
			continue
		}
		cond := &c.p.Conds[ci]
		switch cond.Kind {
		case plan.CondBaseEq:
			if c.rows[cond.L.Step][cond.L.Col] != c.rows[cond.R.Step][cond.R.Col] {
				return false, nil
			}
		case plan.CondBaseEqConst:
			if c.rows[cond.L.Step][cond.L.Col] != cond.Lit {
				return false, nil
			}
		case plan.CondNumCmp:
			c.atoms[ci] = nil
			lp, err := c.exprPoly(cond.LExp)
			if err != nil {
				return false, err
			}
			rp, err := c.exprPoly(cond.RExp)
			if err != nil {
				return false, err
			}
			diff := lp.Sub(rp)
			atom := realfmla.Atom{P: diff, Rel: relOf[cond.Op]}
			if _, isConst := diff.IsConst(); isConst {
				if !atom.Eval(c.zeros) {
					return false, nil
				}
				continue
			}
			c.atoms[ci] = realfmla.FAtom{A: atom}
		}
	}
	return true, nil
}

func (c *Cursor) exprPoly(e *plan.NumExpr) (poly.Poly, error) {
	switch e.Kind {
	case sqlast.ExprConst:
		return poly.Const(c.p.K, e.Const), nil
	case sqlast.ExprCol:
		v := c.rows[e.Cell.Step][e.Cell.Col]
		switch v.Kind() {
		case value.NumConst:
			return poly.Const(c.p.K, v.Float()), nil
		case value.NumNull:
			return poly.Var(c.p.K, c.p.Index[v.NullID()]), nil
		default:
			return poly.Poly{}, fmt.Errorf("exec: base value %s in arithmetic", v)
		}
	case sqlast.ExprNeg:
		p, err := c.exprPoly(e.L)
		if err != nil {
			return poly.Poly{}, err
		}
		return p.Neg(), nil
	case sqlast.ExprAdd, sqlast.ExprSub, sqlast.ExprMul:
		l, err := c.exprPoly(e.L)
		if err != nil {
			return poly.Poly{}, err
		}
		r, err := c.exprPoly(e.R)
		if err != nil {
			return poly.Poly{}, err
		}
		switch e.Kind {
		case sqlast.ExprAdd:
			return l.Add(r), nil
		case sqlast.ExprSub:
			return l.Sub(r), nil
		default:
			return l.Mul(r), nil
		}
	}
	return poly.Poly{}, fmt.Errorf("exec: unknown expression kind")
}

// emit snapshots the current full binding as a derivation.
func (c *Cursor) emit() *Deriv {
	p := c.p
	tup := make(value.Tuple, len(p.Project))
	for i, cell := range p.Project {
		tup[i] = c.rows[cell.Step][cell.Col]
	}
	var conj []realfmla.Formula
	for ci := range p.Conds {
		if a := c.atoms[ci]; a != nil {
			conj = append(conj, a)
		}
	}
	var rows []int
	if !p.Identity { // only Run's reorder sort reads Rows
		rows = make([]int, len(p.Steps))
		for s, o := range p.Order {
			rows[o] = c.ords[s]
		}
	}
	return &Deriv{Tuple: tup, Conj: conj, Rows: rows}
}

// Run streams every derivation of the plan to emit in the original
// derivation order — the FROM-clause nested-loop enumeration order. When
// the plan's join order is the FROM order this is fully streaming; when
// the planner reordered joins, the (already filtered) derivations are
// buffered and sorted back into derivation order first, so reordering
// never changes observable results.
func Run(p *plan.Plan, d *db.Database, opts Options, emit func(*Deriv) error) error {
	cur := NewCursor(p, d, opts)
	if p.Identity {
		for {
			dv, err := cur.Next()
			if err != nil {
				return err
			}
			if dv == nil {
				return nil
			}
			if err := emit(dv); err != nil {
				return err
			}
		}
	}
	var buf []*Deriv
	for {
		dv, err := cur.Next()
		if err != nil {
			return err
		}
		if dv == nil {
			break
		}
		buf = append(buf, dv)
	}
	sort.Slice(buf, func(i, j int) bool {
		a, b := buf[i].Rows, buf[j].Rows
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	for _, dv := range buf {
		if err := emit(dv); err != nil {
			return err
		}
	}
	return nil
}
