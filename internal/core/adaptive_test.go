package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/datagen"
	"repro/internal/realfmla"
	"repro/internal/sqlfront"
)

// sectorFormula builds a 2-variable linear formula whose measure is
// exactly theta/(2π) for theta ∈ (0, π): the directions with polar angle
// in [0, theta], cut out by y ≥ 0 and the rotated half-plane
// −x·sin θ + y·cos θ ≤ 0. With DisableExact these formulas hit the
// sampling path with a dialed-in true measure — the knob every adaptive
// test here needs.
func sectorFormula(theta float64) realfmla.Formula {
	return realfmla.And(
		linAtom(2, []float64{0, 1}, 0, realfmla.GE),
		linAtom(2, []float64{-math.Sin(theta), math.Cos(theta)}, 0, realfmla.LE),
	)
}

// sectorForMeasure is sectorFormula parameterized by the target measure
// mu ∈ (0, 1/2).
func sectorForMeasure(mu float64) realfmla.Formula {
	return sectorFormula(mu * 2 * math.Pi)
}

// refTopK ranks full-budget MeasureBatch estimates by (value desc, index
// asc) — the race's documented tie-breaking — and returns the index set
// of the first k: the fixed-budget reference the adaptive race must
// reproduce.
func refTopK(opts Options, phis []realfmla.Formula, k int, eps, delta float64, t *testing.T) map[int]bool {
	t.Helper()
	res, errs := MeasureBatch(opts, phis, eps, delta)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reference formula %d: %v", i, err)
		}
	}
	order := make([]int, len(phis))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := res[order[a]].Value, res[order[b]].Value
		if va != vb {
			return va > vb
		}
		return order[a] < order[b]
	})
	want := make(map[int]bool, k)
	for _, idx := range order[:k] {
		want[idx] = true
	}
	return want
}

// skewedMeasures is the racing-friendly workload: many near-impossible
// candidates and a few near-certain ones, the shape where freezing pays.
func skewedMeasures(n, winners int) []float64 {
	mus := make([]float64, n)
	for i := range mus {
		// Small deterministic spread keeps the formulas distinct.
		mus[i] = 0.04 + 0.001*float64(i%7)
	}
	for i := 0; i < winners; i++ {
		mus[(i*n/winners+3)%n] = 0.43 - 0.01*float64(i)
	}
	return mus
}

// TestMeasureTopKDeterministic: the adaptive race is bit-stable across
// Workers and PoolWorkers settings and across repeated runs — winners,
// values, per-candidate spend and total spend all identical, the same
// contract the fixed path documents.
func TestMeasureTopKDeterministic(t *testing.T) {
	mus := skewedMeasures(12, 3)
	phis := make([]realfmla.Formula, len(mus))
	for i, mu := range mus {
		phis[i] = sectorForMeasure(mu)
	}
	var ref *TopKResult
	for run := 0; run < 2; run++ {
		for _, w := range []struct{ workers, pool int }{{1, 1}, {2, 4}, {4, 2}, {0, 0}} {
			e := New(Options{Seed: 71, DisableExact: true, Workers: w.workers, PoolWorkers: w.pool})
			res, err := e.MeasureTopK(phis, 3, 0.03, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if len(res.Winners) != len(ref.Winners) ||
				res.SamplesDrawn != ref.SamplesDrawn || res.Rounds != ref.Rounds {
				t.Fatalf("run %d workers %+v: shape %v/%d/%d, want %v/%d/%d",
					run, w, res.Winners, res.SamplesDrawn, res.Rounds,
					ref.Winners, ref.SamplesDrawn, ref.Rounds)
			}
			for i := range res.Winners {
				if res.Winners[i] != ref.Winners[i] ||
					res.Results[i].Value != ref.Results[i].Value ||
					res.Results[i].SamplesDrawn != ref.Results[i].SamplesDrawn {
					t.Fatalf("run %d workers %+v winner %d: %d/%v/%d, want %d/%v/%d",
						run, w, i, res.Winners[i], res.Results[i].Value, res.Results[i].SamplesDrawn,
						ref.Winners[i], ref.Results[i].Value, ref.Results[i].SamplesDrawn)
				}
			}
		}
	}
}

// TestMeasureTopKMatchesReference: fuzz over skewed and spread candidate
// sets — the adaptive winners are exactly the full-budget reference's
// top-k set whenever the measures around the cut are separated (the
// candidate generators keep a ≥ 3·eps gap, so both rankings resolve the
// same way).
func TestMeasureTopKMatchesReference(t *testing.T) {
	const eps, delta = 0.05, 0.25
	rng := rand.New(rand.NewSource(2020))
	for trial := 0; trial < 12; trial++ {
		var mus []float64
		n := 6 + rng.Intn(8)
		k := 1 + rng.Intn(3)
		if trial%2 == 0 {
			mus = skewedMeasures(n, k)
		} else {
			// Spread: measures on a grid with gaps ≥ 3·eps, shuffled.
			mus = make([]float64, n)
			for i := range mus {
				mus[i] = 0.03 + 0.031*float64(i)
			}
			rng.Shuffle(n, func(i, j int) { mus[i], mus[j] = mus[j], mus[i] })
		}
		phis := make([]realfmla.Formula, n)
		for i, mu := range mus {
			phis[i] = sectorForMeasure(mu)
		}
		opts := Options{Seed: int64(100 + trial), DisableExact: true}
		want := refTopK(opts, phis, k, eps, delta, t)

		res, err := New(opts).MeasureTopK(phis, k, eps, delta)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Winners) != k {
			t.Fatalf("trial %d: %d winners, want %d", trial, len(res.Winners), k)
		}
		for _, idx := range res.Winners {
			if !want[idx] {
				t.Errorf("trial %d (n=%d k=%d): winner %d (μ≈%.3f) not in reference top-k %v",
					trial, n, k, idx, mus[idx], want)
			}
		}
		// Winners arrive in ascending candidate order.
		for i := 1; i < len(res.Winners); i++ {
			if res.Winners[i] <= res.Winners[i-1] {
				t.Fatalf("trial %d: winners %v not in candidate order", trial, res.Winners)
			}
		}
	}
}

// TestMeasureTopKSavesSamples: the acceptance bar of the adaptive race —
// on a skewed candidate set the race draws at least 3× fewer samples
// than the fixed budget n·m, while returning the same top-k set.
func TestMeasureTopKSavesSamples(t *testing.T) {
	const eps, delta = 0.02, 0.25
	mus := skewedMeasures(24, 4)
	phis := make([]realfmla.Formula, len(mus))
	for i, mu := range mus {
		phis[i] = sectorForMeasure(mu)
	}
	opts := Options{Seed: 17, DisableExact: true}
	e := New(opts)
	m, err := e.sampleCount(eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	fixed := len(phis) * m

	res, err := e.MeasureTopK(phis, 4, eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesDrawn <= 0 || res.Rounds <= 0 {
		t.Fatalf("race reported no spend: %d samples, %d rounds", res.SamplesDrawn, res.Rounds)
	}
	if res.SamplesDrawn*3 > fixed {
		t.Errorf("adaptive spend %d not ≥3× below the fixed budget %d (ratio %.2f)",
			res.SamplesDrawn, fixed, float64(fixed)/float64(res.SamplesDrawn))
	}
	want := refTopK(opts, phis, 4, eps, delta, t)
	for _, idx := range res.Winners {
		if !want[idx] {
			t.Errorf("winner %d not in the full-budget top-k %v", idx, want)
		}
	}
}

// TestMeasureTopKFullBudgetParity: a candidate the race cannot freeze
// runs to the full budget, where its estimate is bit-identical to the
// fixed path's — the prefix-of-the-same-stream property.
func TestMeasureTopKFullBudgetParity(t *testing.T) {
	const eps, delta = 0.05, 0.25
	// Two near-ties around the cut: the race must run them to m.
	mus := []float64{0.25, 0.252, 0.05, 0.06}
	phis := make([]realfmla.Formula, len(mus))
	for i, mu := range mus {
		phis[i] = sectorForMeasure(mu)
	}
	opts := Options{Seed: 23, DisableExact: true}
	fixed, errs := MeasureBatch(opts, phis, eps, delta)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := New(opts).MeasureTopK(phis, 1, eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Winners) != 1 {
		t.Fatalf("winners %v", res.Winners)
	}
	idx := res.Winners[0]
	got := res.Results[0]
	if got.Samples == fixed[idx].Samples && got.Value != fixed[idx].Value {
		t.Errorf("winner %d at full budget: race value %v, fixed value %v",
			idx, got.Value, fixed[idx].Value)
	}
	if got.Method != MethodAFPRASRace {
		t.Errorf("winner method %s", got.Method)
	}
}

// TestMeasureTopKAllExact: a race whose candidates all resolve exactly
// needs zero samples and zero rounds, and equal (certain) candidates
// resolve to the first k in candidate order — the legacy LIMIT tie
// semantics.
func TestMeasureTopKAllExact(t *testing.T) {
	phis := make([]realfmla.Formula, 6)
	for i := range phis {
		phis[i] = linAtom(2, []float64{0, 0}, 1, realfmla.GT) // constant true: μ = 1
	}
	res, err := New(Options{Seed: 5}).MeasureTopK(phis, 3, 0.05, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesDrawn != 0 || res.Rounds != 0 {
		t.Errorf("exact race drew %d samples in %d rounds", res.SamplesDrawn, res.Rounds)
	}
	want := []int{0, 1, 2}
	if len(res.Winners) != 3 {
		t.Fatalf("winners %v", res.Winners)
	}
	for i, idx := range res.Winners {
		if idx != want[i] {
			t.Fatalf("winners %v, want %v (first-k tie order)", res.Winners, want)
		}
		if !res.Results[i].Exact || res.Results[i].Value != 1 {
			t.Errorf("winner %d: %+v, want exact μ=1", idx, res.Results[i])
		}
	}
}

// TestMeasureTopKEdgeCases: empty candidate set, k ≥ n, and parameter
// validation through the shared validator.
func TestMeasureTopKEdgeCases(t *testing.T) {
	e := New(Options{Seed: 2, DisableExact: true})
	res, err := e.MeasureTopK(nil, 3, 0.05, 0.25)
	if err != nil || len(res.Winners) != 0 {
		t.Fatalf("empty race: %v %v", res, err)
	}
	phis := []realfmla.Formula{sectorForMeasure(0.1), sectorForMeasure(0.3)}
	res, err = e.MeasureTopK(phis, 10, 0.05, 0.25)
	if err != nil || len(res.Winners) != 2 {
		t.Fatalf("k>n race: %v %v", res, err)
	}
	// k ≥ n freezes every candidate IN at round 0; each must still draw
	// until its interval meets the eps contract, not finalize at zero.
	want := []float64{0.1, 0.3}
	for i, idx := range res.Winners {
		r := res.Results[i]
		if math.Abs(r.Value-want[idx]) > 0.05 {
			t.Errorf("winner %d: value %v, want %v ± 0.05", idx, r.Value, want[idx])
		}
		if r.SamplesDrawn == 0 {
			t.Errorf("winner %d: zero samples drawn", idx)
		}
	}
	if res.SamplesDrawn == 0 {
		t.Error("k>n race drew zero samples in total")
	}
	if _, err := e.MeasureTopK(phis, 1, 0, 0.25); err == nil {
		t.Error("accepted eps=0")
	}
	if _, err := e.MeasureTopK(phis, 1, 0.05, 1); err == nil {
		t.Error("accepted delta=1")
	}
	if _, err := e.MeasureTopK(phis, 1, math.NaN(), 0.25); err == nil {
		t.Error("accepted eps=NaN")
	}
}

// TestMeasureSQLAdaptiveTopK: the LIMIT-k SQL path routes through the
// race by default and returns the k most certain answers of the FULL
// candidate set — matched against enumerating without LIMIT and ranking
// full-budget measures — with the spend counters populated, bit-stable
// across pool widths, and byte-identical to the legacy path under
// NoAdaptive.
func TestMeasureSQLAdaptiveTopK(t *testing.T) {
	d, err := datagen.Generate(datagen.Config{
		Seed: 12, Products: 90, Orders: 60, Market: 24, Segments: 8,
		NullRate: 0.35, MarketNullRate: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	full := sqlfront.MustParse(`SELECT P.seg FROM Products P, Market M
		WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis`)
	limited := sqlfront.MustParse(`SELECT P.seg FROM Products P, Market M
		WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 5`)
	const eps, delta = 0.05, 0.25

	opts := Options{Seed: 31, DisableExact: true}
	ev, err := New(opts).EvaluateSQL(full, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Candidates) <= k {
		t.Fatalf("workload too small: %d candidates", len(ev.Candidates))
	}
	phis := make([]realfmla.Formula, len(ev.Candidates))
	for i, c := range ev.Candidates {
		phis[i] = c.Phi
	}
	want := refTopK(opts, phis, k, eps, delta, t)

	var ref *SQLMeasured
	for _, pool := range []int{1, 4} {
		o := opts
		o.PoolWorkers = pool
		got, err := New(o).MeasureSQL(limited, d, eps, delta)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Candidates) != k {
			t.Fatalf("pool %d: %d candidates, want %d", pool, len(got.Candidates), k)
		}
		if got.SamplesDrawn <= 0 || got.Rounds <= 0 {
			t.Fatalf("pool %d: spend counters %d/%d", pool, got.SamplesDrawn, got.Rounds)
		}
		if got.Derivations != ev.Derivations {
			t.Fatalf("pool %d: derivations %d, want %d", pool, got.Derivations, ev.Derivations)
		}
		seen := 0
		for _, mc := range got.Candidates {
			for idx := range want {
				if realfmla.Equal(mc.Phi, phis[idx]) && mc.Tuple.Equal(ev.Candidates[idx].Tuple) {
					seen++
					break
				}
			}
		}
		if seen != k {
			t.Fatalf("pool %d: only %d of %d delivered candidates are in the reference top-k", pool, seen, k)
		}
		if ref == nil {
			ref = got
			continue
		}
		if got.SamplesDrawn != ref.SamplesDrawn || got.Rounds != ref.Rounds {
			t.Fatalf("pool widths disagree on spend: %d/%d vs %d/%d",
				got.SamplesDrawn, got.Rounds, ref.SamplesDrawn, ref.Rounds)
		}
		for i := range got.Candidates {
			if got.Candidates[i].Measure.Value != ref.Candidates[i].Measure.Value {
				t.Fatalf("pool widths disagree at winner %d", i)
			}
		}
	}

	// The escape hatch restores the legacy semantics: first-k distinct
	// tuples, full budget, zero race counters.
	o := opts
	o.NoAdaptive = true
	legacy, err := New(o).MeasureSQL(limited, d, eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.SamplesDrawn != 0 || legacy.Rounds != 0 {
		t.Fatalf("NoAdaptive run reported race spend %d/%d", legacy.SamplesDrawn, legacy.Rounds)
	}
	if len(legacy.Candidates) != k {
		t.Fatalf("NoAdaptive candidates %d", len(legacy.Candidates))
	}
	for i, mc := range legacy.Candidates {
		if !mc.Tuple.Equal(ev.Candidates[i].Tuple) {
			t.Fatalf("NoAdaptive candidate %d is not the first-k tuple", i)
		}
	}
}

// TestMeasureSQLStreamAdaptiveParity: the streaming and buffered
// adaptive paths deliver identical winners, measures and spend.
func TestMeasureSQLStreamAdaptiveParity(t *testing.T) {
	d, err := datagen.Generate(datagen.Config{
		Seed: 3, Products: 60, Orders: 40, Market: 20, Segments: 6, NullRate: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := sqlfront.MustParse(`SELECT P.seg FROM Products P, Market M
		WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 4`)
	opts := Options{Seed: 7, DisableExact: true}
	buf, err := New(opts).MeasureSQL(q, d, 0.05, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []MeasuredCandidate
	info, err := New(opts).MeasureSQLStream(t.Context(), q, d, 0.05, 0.25,
		func(idx int, c MeasuredCandidate) error {
			if idx != len(streamed) {
				t.Fatalf("stream idx %d, want %d", idx, len(streamed))
			}
			streamed = append(streamed, c)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(buf.Candidates) || info.Count != len(buf.Candidates) {
		t.Fatalf("stream delivered %d, buffered %d", len(streamed), len(buf.Candidates))
	}
	if info.SamplesDrawn != buf.SamplesDrawn || info.Rounds != buf.Rounds {
		t.Fatalf("spend %d/%d vs %d/%d", info.SamplesDrawn, info.Rounds, buf.SamplesDrawn, buf.Rounds)
	}
	for i := range streamed {
		if !streamed[i].Tuple.Equal(buf.Candidates[i].Tuple) ||
			streamed[i].Measure.Value != buf.Candidates[i].Measure.Value ||
			streamed[i].Measure.SamplesDrawn != buf.Candidates[i].Measure.SamplesDrawn {
			t.Fatalf("winner %d diverged between stream and buffer", i)
		}
	}
}

// TestRankCounts pins the pairwise semantics of the sorted-endpoint
// counting against the naive O(n²) definition, including tie handling.
func TestRankCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	grid := []float64{0, 0.2, 0.25, 0.5, 0.8, 1}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		lo := make([]float64, n)
		hi := make([]float64, n)
		for i := range lo {
			a, b := grid[rng.Intn(len(grid))], grid[rng.Intn(len(grid))]
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		ahead := make([]int, n)
		behind := make([]int, n)
		rankCounts(lo, hi, ahead, behind)
		for i := 0; i < n; i++ {
			wantAhead, wantBehind := 0, 0
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if aheadOf(lo[j], hi[i], j, i) {
					wantAhead++
				}
				if aheadOf(lo[i], hi[j], i, j) {
					wantBehind++
				}
			}
			if ahead[i] != wantAhead || behind[i] != wantBehind {
				t.Fatalf("trial %d item %d: ahead %d want %d, behind %d want %d (lo=%v hi=%v)",
					trial, i, ahead[i], wantAhead, behind[i], wantBehind, lo, hi)
			}
		}
	}
}
