package client

// Sharded is the fleet-level face of hash sharding: where `arithdbd
// -shards=N` shards in-process, a Sharded client routes writes across N
// independent arithdbd deployments — each its own durable server (WAL,
// checkpoints) with its own -replica-of chain and its own failover
// Client — using the exact routing hash of internal/shard, so a row
// lands on the same shard whether the split lives in one process or
// across a fleet.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/shard"
	"repro/internal/value"
	"repro/internal/wire"
)

// Sharded routes writes across an ordered list of shard groups. Group i
// serves hash shard i; the order is part of the fleet's data placement
// and must never change once data is routed (adding, removing, or
// reordering groups re-homes rows).
type Sharded struct {
	groups []*Client
}

// NewSharded builds a sharded router over per-shard clients, typically
// failover clients (NewFailover) whose first endpoint is that shard's
// durable primary.
func NewSharded(groups []*Client) (*Sharded, error) {
	if len(groups) == 0 {
		return nil, errors.New("client: NewSharded needs at least one shard group")
	}
	for i, g := range groups {
		if g == nil {
			return nil, fmt.Errorf("client: shard group %d is nil", i)
		}
	}
	return &Sharded{groups: append([]*Client(nil), groups...)}, nil
}

// NumShards returns the fleet's shard count.
func (s *Sharded) NumShards() int { return len(s.groups) }

// Group returns the client of one shard, for per-shard operations
// (targeted reads, retrying one shard's sub-batch).
func (s *Sharded) Group(i int) *Client { return s.groups[i] }

// Split partitions a batch by the routing hash, preserving the batch's
// order inside every sub-batch: Split(tuples)[i] is exactly what
// shard i's server receives from Insert.
func (s *Sharded) Split(tuples []value.Tuple) [][]value.Tuple {
	sub := make([][]value.Tuple, len(s.groups))
	for _, t := range tuples {
		i := shard.ShardOf(t, len(s.groups))
		sub[i] = append(sub[i], t)
	}
	return sub
}

// ShardInsert is one shard's outcome of a scattered Insert.
type ShardInsert struct {
	// Shard is the group index; Tuples is its sub-batch size.
	Shard  int
	Tuples int
	// Resp is the shard's acknowledgment (nil when Err is set).
	Resp *wire.InsertResponse
	// Err is the shard's failure, nil on success.
	Err error
}

// Insert scatters one batch across the shard groups by the routing
// hash. Each shard's sub-batch commits atomically on that shard, but
// the scatter is NOT fleet-atomic: when some shards fail, the others
// have still committed — the returned outcomes say exactly which, so a
// caller can retry precisely the failed sub-batches (Group + Split give
// it the pieces). The error joins every per-shard failure.
func (s *Sharded) Insert(ctx context.Context, relation string, tuples []value.Tuple) ([]ShardInsert, error) {
	sub := s.Split(tuples)
	out := make([]ShardInsert, len(s.groups))
	var errs []error
	for i, ts := range sub {
		out[i] = ShardInsert{Shard: i, Tuples: len(ts)}
		if len(ts) == 0 {
			continue
		}
		resp, err := s.groups[i].Insert(ctx, relation, ts)
		if err != nil {
			out[i].Err = err
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
			continue
		}
		out[i].Resp = resp
	}
	return out, errors.Join(errs...)
}

// Health checks every shard group; the error joins the failures, so nil
// means the whole fleet answered.
func (s *Sharded) Health(ctx context.Context) error {
	var errs []error
	for i, g := range s.groups {
		if err := g.Health(ctx); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Info fans out to every shard group and returns the per-shard
// responses in shard order.
func (s *Sharded) Info(ctx context.Context) ([]*wire.InfoResponse, error) {
	out := make([]*wire.InfoResponse, len(s.groups))
	for i, g := range s.groups {
		info, err := g.Info(ctx)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		out[i] = info
	}
	return out, nil
}
