package sqlfront

// This file preserves the pre-planner one-shot evaluator verbatim as a
// test-only reference implementation. The parity suite (parity_test.go)
// checks that the planner/executor pipeline reproduces its output —
// candidates, Phi DNFs in derivation order, null indexing and derivation
// counts — byte for byte, on hand-written and randomized queries.

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/poly"
	"repro/internal/realfmla"
	"repro/internal/schema"
	"repro/internal/value"
)

// referenceEvaluate is the original sqlfront.Evaluate: a fully
// materializing nested-loop join with a single transient hash probe.
func referenceEvaluate(q *Query, d *db.Database) (*Result, error) {
	b, err := refBind(q, d)
	if err != nil {
		return nil, err
	}
	res := &Result{NullIDs: b.nullIDs, Index: b.index}

	type agg struct {
		tuple     value.Tuple
		disjuncts []realfmla.Formula
		order     int
	}
	byKey := make(map[string]*agg)
	var orderCount int

	rows := make(map[string]value.Tuple, len(q.From))
	var conj []realfmla.Formula

	var join func(pos int) error
	emit := func() error {
		res.Derivations++
		tup := make(value.Tuple, len(q.Select))
		for i, c := range q.Select {
			v, err := b.cellValue(rows, c)
			if err != nil {
				return err
			}
			tup[i] = v
		}
		key := tup.Key()
		a, ok := byKey[key]
		if !ok {
			a = &agg{tuple: tup, order: orderCount}
			orderCount++
			byKey[key] = a
		}
		a.disjuncts = append(a.disjuncts, realfmla.And(append([]realfmla.Formula(nil), conj...)...))
		return nil
	}
	join = func(pos int) error {
		if pos == len(q.From) {
			return emit()
		}
		tr := q.From[pos]
		candidates := b.candidateRows(rows, pos)
		savedConj := len(conj)
		for _, row := range candidates {
			rows[tr.Alias] = row
			ok, err := b.applyConditions(rows, pos, &conj)
			if err != nil {
				return err
			}
			if ok {
				if err := join(pos + 1); err != nil {
					return err
				}
			}
			conj = conj[:savedConj]
		}
		delete(rows, tr.Alias)
		return nil
	}
	if err := join(0); err != nil {
		return nil, err
	}

	// Collect candidates in derivation order, applying LIMIT.
	ordered := make([]*agg, 0, len(byKey))
	for _, a := range byKey {
		ordered = append(ordered, a)
	}
	// Insertion order sort (orderCount is dense).
	byOrder := make([]*agg, orderCount)
	for _, a := range ordered {
		byOrder[a.order] = a
	}
	limit := q.Limit
	for _, a := range byOrder {
		if a == nil {
			continue
		}
		if limit > 0 && len(res.Candidates) >= limit {
			break
		}
		res.Candidates = append(res.Candidates, Candidate{
			Tuple: a.tuple,
			Phi:   realfmla.Or(a.disjuncts...),
		})
	}
	return res, nil
}

// refBinder holds the resolved query: alias → relation schema, null
// variable indexing, per-position condition lists and join indexes.
type refBinder struct {
	d        *db.Database
	q        *Query
	rels     map[string]*schema.Relation
	position map[string]int
	nullIDs  []int
	index    map[int]int
	k        int

	// conds[i] lists the conditions whose referenced aliases are all bound
	// once position i has been joined.
	conds [][]Condition
	// probe[i], when non-nil, is the hash-join plan for position i.
	probe []*refProbePlan
	// rows memoizes per-relation tuple materialization (the columnar
	// database materializes on every Rows call).
	rows map[string][]value.Tuple
}

func (b *refBinder) tableRows(rel string) []value.Tuple {
	if b.rows == nil {
		b.rows = make(map[string][]value.Tuple)
	}
	ts, ok := b.rows[rel]
	if !ok {
		ts = b.d.Rows(rel)
		b.rows[rel] = ts
	}
	return ts
}

type refProbePlan struct {
	// local column of the table at this position, and the earlier-bound
	// column it must equal.
	localCol string
	outer    ColRef
	idx      map[value.Value][]value.Tuple
}

func refBind(q *Query, d *db.Database) (*refBinder, error) {
	b := &refBinder{
		d:        d,
		q:        q,
		rels:     make(map[string]*schema.Relation),
		position: make(map[string]int),
		index:    make(map[int]int),
	}
	if len(q.From) == 0 {
		return nil, fmt.Errorf("sqlfront: query needs at least one table")
	}
	for i, t := range q.From {
		rel := d.Schema().Relation(t.Relation)
		if rel == nil {
			return nil, fmt.Errorf("sqlfront: unknown relation %s", t.Relation)
		}
		if _, dup := b.rels[t.Alias]; dup {
			return nil, fmt.Errorf("sqlfront: duplicate alias %s", t.Alias)
		}
		b.rels[t.Alias] = rel
		b.position[t.Alias] = i
	}
	b.nullIDs = d.NumNulls()
	b.k = len(b.nullIDs)
	for i, id := range b.nullIDs {
		b.index[id] = i
	}
	for _, c := range q.Select {
		if _, err := b.colType(c); err != nil {
			return nil, err
		}
	}

	// Normalize and place conditions.
	b.conds = make([][]Condition, len(q.From))
	b.probe = make([]*refProbePlan, len(q.From))
	for _, c := range q.Where {
		nc, err := b.normalize(c)
		if err != nil {
			return nil, err
		}
		pos, err := b.earliestPosition(nc)
		if err != nil {
			return nil, err
		}
		// Hash-join opportunity: a base equality whose later side is
		// exactly the table joined at pos and whose other side is earlier.
		if nc.Kind == CondBaseEq && b.probe[pos] == nil && pos > 0 {
			l, r := nc.LCol, nc.RCol
			if b.position[l.Table] < pos {
				l, r = r, l
			}
			if b.position[l.Table] == pos && b.position[r.Table] < pos {
				b.probe[pos] = &refProbePlan{localCol: l.Col, outer: r}
			}
		}
		b.conds[pos] = append(b.conds[pos], nc)
	}
	return b, nil
}

// normalize resolves the base-vs-numeric ambiguity of "col = col"
// conditions against the schema and validates column references and sorts.
func (b *refBinder) normalize(c Condition) (Condition, error) {
	switch c.Kind {
	case CondBaseEq:
		lt, err := b.colType(c.LCol)
		if err != nil {
			return c, err
		}
		rt, err := b.colType(c.RCol)
		if err != nil {
			return c, err
		}
		if lt != rt {
			return c, fmt.Errorf("sqlfront: equality between %s (%s) and %s (%s)", c.LCol, lt, c.RCol, rt)
		}
		if lt == schema.Num {
			return Condition{Kind: CondNumCmp, Op: Eq, LExp: c.LExp, RExp: c.RExp}, nil
		}
		return c, nil
	case CondBaseEqConst:
		t, err := b.colType(c.LCol)
		if err != nil {
			return c, err
		}
		if t != schema.Base {
			return c, fmt.Errorf("sqlfront: string literal compared with numeric column %s", c.LCol)
		}
		return c, nil
	case CondNumCmp:
		for _, e := range []*Expr{c.LExp, c.RExp} {
			if err := b.checkNumExpr(e); err != nil {
				return c, err
			}
		}
		return c, nil
	}
	return c, fmt.Errorf("sqlfront: unknown condition kind")
}

func (b *refBinder) checkNumExpr(e *Expr) error {
	switch e.Kind {
	case ExprCol:
		t, err := b.colType(e.Col)
		if err != nil {
			return err
		}
		if t != schema.Num {
			return fmt.Errorf("sqlfront: base column %s used in arithmetic", e.Col)
		}
		return nil
	case ExprConst:
		return nil
	case ExprNeg:
		return b.checkNumExpr(e.L)
	default:
		if err := b.checkNumExpr(e.L); err != nil {
			return err
		}
		return b.checkNumExpr(e.R)
	}
}

func (b *refBinder) colType(c ColRef) (schema.ColType, error) {
	rel, ok := b.rels[c.Table]
	if !ok {
		return 0, fmt.Errorf("sqlfront: unknown alias %s", c.Table)
	}
	i := rel.ColumnIndex(c.Col)
	if i < 0 {
		return 0, fmt.Errorf("sqlfront: relation %s has no column %s", rel.Name, c.Col)
	}
	return rel.Columns[i].Type, nil
}

// earliestPosition is the join position after which every alias referenced
// by the condition is bound.
func (b *refBinder) earliestPosition(c Condition) (int, error) {
	pos := 0
	visit := func(alias string) error {
		p, ok := b.position[alias]
		if !ok {
			return fmt.Errorf("sqlfront: unknown alias %s", alias)
		}
		if p > pos {
			pos = p
		}
		return nil
	}
	switch c.Kind {
	case CondBaseEq:
		if err := visit(c.LCol.Table); err != nil {
			return 0, err
		}
		if err := visit(c.RCol.Table); err != nil {
			return 0, err
		}
	case CondBaseEqConst:
		if err := visit(c.LCol.Table); err != nil {
			return 0, err
		}
	case CondNumCmp:
		var walk func(e *Expr) error
		walk = func(e *Expr) error {
			switch e.Kind {
			case ExprCol:
				return visit(e.Col.Table)
			case ExprConst:
				return nil
			case ExprNeg:
				return walk(e.L)
			default:
				if err := walk(e.L); err != nil {
					return err
				}
				return walk(e.R)
			}
		}
		if err := walk(c.LExp); err != nil {
			return 0, err
		}
		if err := walk(c.RExp); err != nil {
			return 0, err
		}
	}
	return pos, nil
}

// candidateRows returns the rows to try at a join position: a hash probe
// when a base-equality join condition links this table to an earlier one,
// otherwise a full scan.
func (b *refBinder) candidateRows(rows map[string]value.Tuple, pos int) []value.Tuple {
	tr := b.q.From[pos]
	if p := b.probe[pos]; p != nil {
		if p.idx == nil {
			p.idx = make(map[value.Value][]value.Tuple)
			rel := b.rels[tr.Alias]
			ci := rel.ColumnIndex(p.localCol)
			for _, row := range b.tableRows(tr.Relation) {
				p.idx[row[ci]] = append(p.idx[row[ci]], row)
			}
		}
		outerRow := rows[p.outer.Table]
		ci := b.rels[p.outer.Table].ColumnIndex(p.outer.Col)
		return p.idx[outerRow[ci]]
	}
	return b.tableRows(tr.Relation)
}

// applyConditions evaluates every condition that becomes checkable at this
// position: base conditions decide immediately, numeric conditions either
// decide (constant) or append a constraint atom to conj. It reports
// whether the current assignment survives.
func (b *refBinder) applyConditions(rows map[string]value.Tuple, pos int, conj *[]realfmla.Formula) (bool, error) {
	for _, c := range b.conds[pos] {
		switch c.Kind {
		case CondBaseEq:
			l, err := b.cellValue(rows, c.LCol)
			if err != nil {
				return false, err
			}
			r, err := b.cellValue(rows, c.RCol)
			if err != nil {
				return false, err
			}
			if l != r {
				return false, nil
			}
		case CondBaseEqConst:
			l, err := b.cellValue(rows, c.LCol)
			if err != nil {
				return false, err
			}
			if l.Kind() != value.BaseConst || l.Str() != c.Lit {
				return false, nil
			}
		case CondNumCmp:
			lp, err := b.exprPoly(rows, c.LExp)
			if err != nil {
				return false, err
			}
			rp, err := b.exprPoly(rows, c.RExp)
			if err != nil {
				return false, err
			}
			diff := lp.Sub(rp)
			rel := [...]realfmla.Rel{realfmla.LT, realfmla.LE, realfmla.EQ, realfmla.NE, realfmla.GE, realfmla.GT}[c.Op]
			atom := realfmla.Atom{P: diff, Rel: rel}
			if _, isConst := diff.IsConst(); isConst {
				if !atom.Eval(make([]float64, b.k)) {
					return false, nil
				}
				continue
			}
			*conj = append(*conj, realfmla.FAtom{A: atom})
		}
	}
	return true, nil
}

func (b *refBinder) cellValue(rows map[string]value.Tuple, c ColRef) (value.Value, error) {
	rel, ok := b.rels[c.Table]
	if !ok {
		return value.Value{}, fmt.Errorf("sqlfront: unknown alias %s", c.Table)
	}
	row, ok := rows[c.Table]
	if !ok {
		return value.Value{}, fmt.Errorf("sqlfront: alias %s not bound yet", c.Table)
	}
	return row[rel.ColumnIndex(c.Col)], nil
}

func (b *refBinder) exprPoly(rows map[string]value.Tuple, e *Expr) (poly.Poly, error) {
	switch e.Kind {
	case ExprConst:
		return poly.Const(b.k, e.Const), nil
	case ExprCol:
		v, err := b.cellValue(rows, e.Col)
		if err != nil {
			return poly.Poly{}, err
		}
		switch v.Kind() {
		case value.NumConst:
			return poly.Const(b.k, v.Float()), nil
		case value.NumNull:
			return poly.Var(b.k, b.index[v.NullID()]), nil
		default:
			return poly.Poly{}, fmt.Errorf("sqlfront: base value %s in arithmetic", v)
		}
	case ExprNeg:
		p, err := b.exprPoly(rows, e.L)
		if err != nil {
			return poly.Poly{}, err
		}
		return p.Neg(), nil
	case ExprAdd, ExprSub, ExprMul:
		l, err := b.exprPoly(rows, e.L)
		if err != nil {
			return poly.Poly{}, err
		}
		r, err := b.exprPoly(rows, e.R)
		if err != nil {
			return poly.Poly{}, err
		}
		switch e.Kind {
		case ExprAdd:
			return l.Add(r), nil
		case ExprSub:
			return l.Sub(r), nil
		default:
			return l.Mul(r), nil
		}
	}
	return poly.Poly{}, fmt.Errorf("sqlfront: unknown expression kind")
}
