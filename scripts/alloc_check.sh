#!/usr/bin/env bash
# Allocation-regression guard: runs the end-to-end SQL pipeline benchmark
# with -benchmem and fails when any benchmark listed in
# scripts/alloc_budget.txt exceeds its checked-in allocs/op budget. The
# budgets carry headroom over the measured steady state (see the current
# BENCH_*.json), so the guard trips on real regressions — a boxed-tuple
# path sneaking back into the columnar executor — not on noise.
#
# Usage: scripts/alloc_check.sh [benchtime]   (default 2x)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-2x}"
budget_file="scripts/alloc_budget.txt"

raw="$(go test -run '^$' -bench 'BenchmarkSQLPipeline$|BenchmarkMixedInsertQuery|BenchmarkInsertDurable' -benchmem -benchtime "$benchtime" .
       go test -run '^$' -bench 'BenchmarkShardedScatterGather' -benchmem -benchtime "$benchtime" ./internal/shard)"
printf '%s\n' "$raw"

fail=0
while read -r name budget; do
    case "$name" in ''|\#*) continue ;; esac
    got="$(printf '%s\n' "$raw" | awk -v n="$name" '
        $1 ~ "^"n"(-[0-9]+)?$" {
            for (i = 4; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
        }')"
    if [ -z "$got" ]; then
        echo "alloc-check: $name not found in benchmark output" >&2
        fail=1
        continue
    fi
    if [ "$got" -gt "$budget" ]; then
        echo "alloc-check: $name allocated $got/op, budget $budget" >&2
        fail=1
    else
        echo "alloc-check: $name $got/op within budget $budget"
    fi
done < "$budget_file"

exit "$fail"
