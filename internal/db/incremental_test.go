package db

// Tests of incremental index/inventory maintenance and copy-on-write
// snapshots: a database grown by incremental inserts (with caches kept
// hot the whole time) must be bit-identical, in every observable, to one
// rebuilt from scratch; failed inserts must leave no trace; snapshot
// readers must keep seeing their version while a writer commits.

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/value"
)

// stateFingerprint captures every observable of a database: row counts,
// materialized tuples, inventories (slices and inverse map), dictionary
// order, and every equality index probed at every distinct value.
type stateFingerprint struct {
	lens      map[string]int
	tuples    map[string][]string
	baseNulls []int
	numNulls  []int
	nnIndex   map[int]int
	baseConst []string
	numConst  []float64
	indexes   map[string]map[string][]int
	nextBase  int
	nextNum   int
}

func fingerprint(d *Database) stateFingerprint {
	fp := stateFingerprint{
		lens:      map[string]int{},
		tuples:    map[string][]string{},
		baseNulls: append([]int(nil), d.BaseNulls()...),
		numNulls:  append([]int(nil), d.NumNulls()...),
		nnIndex:   map[int]int{},
		baseConst: append([]string(nil), d.BaseConstants()...),
		numConst:  append([]float64(nil), d.NumConstants()...),
		indexes:   map[string]map[string][]int{},
		nextBase:  d.nextBaseNull,
		nextNum:   d.nextNumNull,
	}
	_, idx := d.NumNullIndex()
	for id, i := range idx {
		fp.nnIndex[id] = i
	}
	for _, rel := range d.schema.Relations() {
		fp.lens[rel.Name] = d.Len(rel.Name)
		for _, tup := range d.Tuples(rel.Name) {
			fp.tuples[rel.Name] = append(fp.tuples[rel.Name], tup.String())
		}
		for col := range rel.Columns {
			key := fmt.Sprintf("%s.%d", rel.Name, col)
			probes := map[string][]int{}
			ix := d.Index(rel.Name, col)
			seen := map[string]bool{}
			for _, tup := range d.Tuples(rel.Name) {
				v := tup[col]
				if seen[v.String()] {
					continue
				}
				seen[v.String()] = true
				probes[v.String()] = ords(ix.Lookup(d, v))
			}
			fp.indexes[key] = probes
		}
	}
	return fp
}

func mustEqualState(t *testing.T, label string, got, want stateFingerprint) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: state diverged:\ngot  %+v\nwant %+v", label, got, want)
	}
}

// TestInsertAtomicOnFailure: a tuple failing validation partway must not
// leave partially appended columns, spuriously touched caches, or
// consumed null identifiers — the database stays bit-identical.
func TestInsertAtomicOnFailure(t *testing.T) {
	d := New(randSchema())
	d.MustInsert("R", value.Base("a"), value.Num(1), value.NullBase(3))
	d.MustInsert("R", value.NullBase(1), value.NullNum(2), value.Base("b"))
	d.MustInsert("S", value.Num(7), value.Base("a"))
	before := fingerprint(d) // also warms every cache
	version := d.Version()

	bad := []struct {
		rel string
		tup value.Tuple
	}{
		{"T", value.Tuple{value.Num(1)}},                                           // unknown relation
		{"R", value.Tuple{value.Base("x"), value.Num(1)}},                          // arity
		{"R", value.Tuple{value.Num(1), value.Num(1), value.Base("y")}},            // sort mismatch col 0
		{"R", value.Tuple{value.Base("x"), value.Base("y"), value.Base("z")}},      // sort mismatch col 1
		{"R", value.Tuple{value.Base("x"), value.Num(1), value.NullBase(1 << 30)}}, // null id range
		{"S", value.Tuple{value.NullNum(1 << 30), value.Base("q")}},                // null id range, first col
	}
	for _, b := range bad {
		if err := d.Insert(b.rel, b.tup); err == nil {
			t.Fatalf("Insert(%s, %v) unexpectedly succeeded", b.rel, b.tup)
		}
		mustEqualState(t, fmt.Sprintf("after failed insert %v", b.tup), fingerprint(d), before)
		if d.Version() != version {
			t.Fatalf("failed insert advanced version %d -> %d", version, d.Version())
		}
	}

	// InsertBatch with a bad tuple anywhere applies nothing.
	batch := []value.Tuple{
		{value.Base("ok"), value.Num(2), value.Base("ok2")},
		{value.Base("ok3"), value.Base("bad"), value.Base("ok4")},
	}
	if err := d.InsertBatch("R", batch); err == nil {
		t.Fatal("InsertBatch with invalid tuple succeeded")
	}
	mustEqualState(t, "after failed batch", fingerprint(d), before)

	// The database still accepts valid work afterwards.
	if err := d.Insert("R", value.Tuple{value.Base("x"), value.Num(3), value.Base("y")}); err != nil {
		t.Fatalf("valid insert after failures: %v", err)
	}
	if d.Version() != version+1 {
		t.Fatalf("version = %d, want %d", d.Version(), version+1)
	}
}

// TestIncrementalParityFuzz: after N random inserts with every cache kept
// hot (indexes probed, inventories read, snapshots taken between
// inserts), all observables are bit-identical to a from-scratch rebuild
// of the same tuples.
func TestIncrementalParityFuzz(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randSchema()
		d := New(s)
		rels := s.Relations()
		var snaps []*Database

		n := 30 + rng.Intn(50)
		for i := 0; i < n; i++ {
			rel := rels[rng.Intn(len(rels))]
			tup := make(value.Tuple, len(rel.Columns))
			for j, c := range rel.Columns {
				tup[j] = randValue(rng, c.Type)
			}
			if err := d.Insert(rel.Name, tup); err != nil {
				t.Fatal(err)
			}
			// Interleave accesses so maintenance runs against hot caches:
			// indexes exist, inventories are built, snapshots share state.
			switch rng.Intn(5) {
			case 0:
				d.Index(rel.Name, rng.Intn(len(rel.Columns)))
			case 1:
				d.NumNullIndex()
				d.NumConstants()
			case 2:
				snaps = append(snaps, d.Snapshot())
			}
		}

		rebuilt := d.Clone() // deep copy with cold caches: from-scratch builds
		mustEqualState(t, fmt.Sprintf("seed %d", seed), fingerprint(d), fingerprint(rebuilt))

		// Snapshots taken along the way still verify against a rebuild of
		// their own prefix of the data.
		for si, snap := range snaps {
			mustEqualState(t, fmt.Sprintf("seed %d snapshot %d", seed, si),
				fingerprint(snap), fingerprint(snap.Clone()))
		}
	}
}

// TestSnapshotVersioning: unchanged databases hand out the same snapshot;
// commits produce new ones; snapshots are immutable views.
func TestSnapshotVersioning(t *testing.T) {
	d := New(randSchema())
	d.MustInsert("R", value.Base("a"), value.Num(1), value.Base("b"))
	s1 := d.Snapshot()
	if s2 := d.Snapshot(); s2 != s1 {
		t.Fatal("Snapshot of unchanged database returned a new view")
	}
	if s1.Snapshot() != s1 {
		t.Fatal("Snapshot of a snapshot is not itself")
	}
	if !s1.ReadOnly() || d.ReadOnly() {
		t.Fatal("ReadOnly flags wrong")
	}
	if err := s1.Insert("R", value.Tuple{value.Base("x"), value.Num(2), value.Base("y")}); err == nil {
		t.Fatal("insert into a snapshot succeeded")
	}
	d.MustInsert("R", value.Base("c"), value.NullNum(0), value.Base("d"))
	s2 := d.Snapshot()
	if s2 == s1 {
		t.Fatal("Snapshot after a commit returned the stale view")
	}
	if s1.Len("R") != 1 || s2.Len("R") != 2 || d.Len("R") != 2 {
		t.Fatalf("lengths: s1=%d s2=%d d=%d", s1.Len("R"), s2.Len("R"), d.Len("R"))
	}
	if s1.Version() == s2.Version() {
		t.Fatal("snapshot versions equal across a commit")
	}
	// The old snapshot still verifies in full against its own rebuild.
	mustEqualState(t, "old snapshot", fingerprint(s1), fingerprint(s1.Clone()))
}

// TestSnapshotReadersUnderWrites runs concurrent readers pinned to
// snapshots while a writer keeps committing — the RCU regime of the
// server. Run with -race: readers must never observe a mutation, and
// every pinned view must stay bit-stable.
func TestSnapshotReadersUnderWrites(t *testing.T) {
	s := randSchema()
	d := New(s)
	rng := rand.New(rand.NewSource(42))
	insert := func() {
		rel := s.Relations()[rng.Intn(2)]
		tup := make(value.Tuple, len(rel.Columns))
		for j, c := range rel.Columns {
			tup[j] = randValue(rng, c.Type)
		}
		if err := d.Insert(rel.Name, tup); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 50; i++ {
		insert()
	}
	// Warm the caches so the writer exercises the COW paths.
	fingerprint(d)

	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := d.Snapshot()
				n := snap.Len("R")
				fp := fingerprint(snap)
				// Re-read everything: a pinned snapshot must not move.
				if snap.Len("R") != n {
					t.Errorf("reader %d: snapshot length moved %d -> %d", r, n, snap.Len("R"))
					return
				}
				fp2 := fingerprint(snap)
				if !reflect.DeepEqual(fp, fp2) {
					t.Errorf("reader %d: snapshot state moved", r)
					return
				}
			}
		}(r)
	}
	for i := 0; i < 60; i++ {
		insert()
		if i%5 == 0 {
			d.Snapshot() // publish mid-write versions for readers to pin
		}
	}
	close(stop)
	wg.Wait()

	mustEqualState(t, "writer after concurrent readers", fingerprint(d), fingerprint(d.Clone()))
}

// TestInsertIntoIndexedEmptyRelation: caching an index on a relation
// that has no rows yet (any query touching it does this) must not break
// later inserts — the cached index's group maps are extended in place
// like any other.
func TestInsertIntoIndexedEmptyRelation(t *testing.T) {
	d := New(randSchema())
	for col := 0; col < 2; col++ {
		d.Index("S", col) // cache indexes while S is empty
	}
	d.MustInsert("S", value.Num(4), value.Base("a"))
	d.MustInsert("S", value.NullNum(2), value.Base("a"))
	if got := ords(d.Index("S", 1).Lookup(d, value.Base("a"))); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("Lookup(a) = %v, want [0 1]", got)
	}
	if got := ords(d.Index("S", 0).Lookup(d, value.Num(4))); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Lookup(4) = %v, want [0]", got)
	}
	if got := ords(d.Index("S", 0).Lookup(d, value.NullNum(2))); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Lookup(⊤2) = %v, want [1]", got)
	}
	mustEqualState(t, "indexed-empty-relation inserts", fingerprint(d), fingerprint(d.Clone()))
}

// TestSnapshotIndexAdoption: the server regime only ever queries
// snapshots, so indexes built lazily on a snapshot must flow back to
// the writer (and stay incrementally maintained for later snapshots) —
// otherwise every insert would force a full rebuild on the next
// snapshot.
func TestSnapshotIndexAdoption(t *testing.T) {
	d := New(randSchema())
	d.MustInsert("S", value.Num(1), value.Base("a"))
	d.MustInsert("S", value.Num(2), value.Base("b"))

	s1 := d.Snapshot()
	s1.Index("S", 1) // built on the snapshot, adopted by the writer
	d.mu.Lock()
	adopted := d.indexes[indexKey{"S", 1}] != nil && d.sharedIx[indexKey{"S", 1}]
	d.mu.Unlock()
	if !adopted {
		t.Fatal("snapshot-built index was not adopted by the writer")
	}

	// The writer extends the adopted index in place (COW off the shared
	// copy); the next snapshot sees the extended groups without a rebuild,
	// and the old snapshot keeps its version.
	d.MustInsert("S", value.Num(3), value.Base("a"))
	s2 := d.Snapshot()
	if got := ords(s2.Index("S", 1).Lookup(s2, value.Base("a"))); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("s2 Lookup(a) = %v, want [0 2]", got)
	}
	if got := ords(s1.Index("S", 1).Lookup(s1, value.Base("a"))); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("s1 Lookup(a) = %v, want [0]", got)
	}

	// Adoption must refuse stale indexes: one built on an old snapshot
	// after the writer moved on stays snapshot-local.
	s1.Index("S", 0)
	d.mu.Lock()
	stale := d.indexes[indexKey{"S", 0}]
	d.mu.Unlock()
	if stale != nil {
		t.Fatal("stale snapshot index adopted by a writer that moved on")
	}
}

// TestFreshNullsRejectedOnSnapshots: the allocation counters of a
// snapshot are frozen, so handing out "fresh" IDs from one could collide
// with the live writer's.
func TestFreshNullsRejectedOnSnapshots(t *testing.T) {
	d := New(randSchema())
	d.MustInsert("S", value.Num(1), value.Base("a"))
	s := d.Snapshot()
	for _, f := range []func() value.Value{s.FreshBaseNull, s.FreshNumNull} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("fresh-null allocation on a snapshot did not panic")
				}
			}()
			f()
		}()
	}
}

// TestIncrementalNaNParity: NaN numerical constants (insertable over the
// wire) must land in the inventories exactly where a from-scratch sort
// puts them — sort.Float64s and cmp.Less order NaNs first, and the
// incremental sorted merge must agree bit for bit.
func TestIncrementalNaNParity(t *testing.T) {
	d := New(randSchema())
	d.MustInsert("S", value.Num(1), value.Base("a"))
	d.MustInsert("S", value.Num(2), value.Base("b"))
	if got := d.NumConstants(); len(got) != 2 { // warm the inventories
		t.Fatalf("NumConstants = %v", got)
	}
	d.MustInsert("S", value.Num(math.NaN()), value.Base("c"))
	d.MustInsert("S", value.Num(0.5), value.Base("d"))
	got := d.NumConstants()
	want := d.Clone().NumConstants()
	if len(got) != len(want) {
		t.Fatalf("NumConstants: %v vs rebuild %v", got, want)
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("NumConstants diverged at %d: %v vs rebuild %v", i, got, want)
		}
	}
	if !math.IsNaN(got[0]) {
		t.Fatalf("NaN not sorted first: %v", got)
	}
}

// TestIncrementalDistinctStats: planner statistics (EqIndex.Distinct)
// track inserts without a rebuild.
func TestIncrementalDistinctStats(t *testing.T) {
	d := New(randSchema())
	d.MustInsert("S", value.Num(1), value.Base("a"))
	ix := d.Index("S", 1)
	if got := ix.Distinct(); got != 1 {
		t.Fatalf("Distinct = %d, want 1", got)
	}
	d.MustInsert("S", value.Num(2), value.Base("b"))
	d.MustInsert("S", value.Num(3), value.Base("a"))
	if got := d.Index("S", 1).Distinct(); got != 2 {
		t.Fatalf("Distinct after inserts = %d, want 2", got)
	}
	if got := ords(d.Index("S", 1).Lookup(d, value.Base("a"))); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Lookup(a) = %v, want [0 2]", got)
	}
}
