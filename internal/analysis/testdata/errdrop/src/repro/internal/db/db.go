// Package db is a fixture stand-in for the real repro/internal/db
// insert paths.
package db

type Database struct{}

func (d *Database) Insert(rel string, t int) error         { return nil }
func (d *Database) InsertBatch(rel string, ts []int) error { return nil }
func (d *Database) Size() int                              { return 0 }
func (d *Database) DropCaches()                            {}
