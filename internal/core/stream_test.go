package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/realfmla"
	"repro/internal/sqlfront"
)

// TestMeasureSQLStreamMatchesSlice: the stream delivers exactly the slice
// API's candidates — same order, same tuples, bit-identical measures —
// with strictly consecutive indices, for every pool width.
func TestMeasureSQLStreamMatchesSlice(t *testing.T) {
	d, err := datagen.Generate(datagen.Config{
		Seed: 5, Products: 120, Orders: 90, Market: 30, Segments: 10,
		NullRate: 0.3, MarketNullRate: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := sqlfront.MustParse(`SELECT P.seg FROM Products P, Market M
		WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 8`)

	want, err := New(Options{Seed: 9}).MeasureSQL(q, d, 0.05, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Candidates) == 0 {
		t.Fatal("workload produced no candidates")
	}

	for _, pool := range []int{0, 1, 2} {
		var got []MeasuredCandidate
		next := 0
		info, err := New(Options{Seed: 9, PoolWorkers: pool}).MeasureSQLStream(context.Background(), q, d, 0.05, 0.25,
			func(idx int, c MeasuredCandidate) error {
				if idx != next {
					t.Fatalf("pool=%d: yield idx %d, want %d", pool, idx, next)
				}
				next++
				got = append(got, c)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if info.Count != len(want.Candidates) || info.Derivations != want.Derivations {
			t.Fatalf("pool=%d: info %d/%d, want %d/%d", pool,
				info.Count, info.Derivations, len(want.Candidates), want.Derivations)
		}
		if len(info.NullIDs) != len(want.NullIDs) {
			t.Fatalf("pool=%d: NullIDs len %d, want %d", pool, len(info.NullIDs), len(want.NullIDs))
		}
		if len(got) != len(want.Candidates) {
			t.Fatalf("pool=%d: streamed %d candidates, want %d", pool, len(got), len(want.Candidates))
		}
		for i, c := range got {
			w := want.Candidates[i]
			if !c.Tuple.Equal(w.Tuple) || !realfmla.Equal(c.Phi, w.Phi) {
				t.Fatalf("pool=%d: candidate %d diverged", pool, i)
			}
			if c.Measure.Value != w.Measure.Value || c.Measure.Method != w.Measure.Method ||
				c.Measure.Samples != w.Measure.Samples {
				t.Fatalf("pool=%d: candidate %d measure %+v, want %+v", pool, i, c.Measure, w.Measure)
			}
		}
	}
}

// TestMeasureSQLStreamYieldError: a yield error aborts delivery and is
// returned after the pipeline drains.
func TestMeasureSQLStreamYieldError(t *testing.T) {
	d, err := datagen.Generate(datagen.Config{
		Seed: 8, Products: 60, Orders: 40, Market: 20, Segments: 6, NullRate: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := sqlfront.MustParse(`SELECT P.seg FROM Products P, Market M WHERE P.seg = M.seg`)
	sentinel := errors.New("client went away")
	calls := 0
	var mu sync.Mutex
	_, err = New(Options{Seed: 3}).MeasureSQLStream(context.Background(), q, d, 0.05, 0.25,
		func(idx int, c MeasuredCandidate) error {
			mu.Lock()
			calls++
			mu.Unlock()
			if idx >= 1 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls < 2 {
		t.Fatalf("yield called %d times, want ≥ 2", calls)
	}
	full, err := New(Options{Seed: 3}).MeasureSQL(q, d, 0.05, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if calls > len(full.Candidates) {
		t.Fatalf("yield called %d times after error, beyond the %d candidates", calls, len(full.Candidates))
	}
}

// TestMeasureSQLStreamCancel: cancelling the context mid-stream skips
// remaining measurements and surfaces ctx.Err().
func TestMeasureSQLStreamCancel(t *testing.T) {
	d, err := datagen.Generate(datagen.Config{
		Seed: 8, Products: 60, Orders: 40, Market: 20, Segments: 6, NullRate: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := sqlfront.MustParse(`SELECT P.seg FROM Products P, Market M WHERE P.seg = M.seg`)

	// Cancelled up front: no candidate is ever delivered.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = New(Options{Seed: 3}).MeasureSQLStream(cancelled, q, d, 0.05, 0.25,
		func(int, MeasuredCandidate) error {
			t.Error("yield called under a cancelled context")
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Cancelled from yield: delivery stops and the context error wins the
	// race against further measurement work.
	ctx, cancelMid := context.WithCancel(context.Background())
	defer cancelMid()
	_, err = New(Options{Seed: 3}).MeasureSQLStream(ctx, q, d, 0.05, 0.25,
		func(idx int, c MeasuredCandidate) error {
			cancelMid()
			return nil
		})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
}

// TestMeasureSQLStreamBadParams: validation mirrors MeasureSQL.
func TestMeasureSQLStreamBadParams(t *testing.T) {
	d, err := datagen.Generate(datagen.Config{Seed: 1, Products: 5, Orders: 5, Market: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := sqlfront.MustParse(`SELECT P.id FROM Products P`)
	nop := func(int, MeasuredCandidate) error { return nil }
	if _, err := New(Options{}).MeasureSQLStream(context.Background(), q, d, 0, 0.5, nop); err == nil {
		t.Error("accepted eps=0")
	}
	bad := sqlfront.MustParse(`SELECT P.id FROM Products P`)
	bad.From[0].Relation = "Nope"
	if _, err := New(Options{}).MeasureSQLStream(context.Background(), bad, d, 0.1, 0.1, nop); err == nil {
		t.Error("accepted unknown relation")
	}
}

// TestSharedKernelsAcrossEngines: independent engines given one Kernels
// produce bit-identical results to engines without sharing (compilation
// is pure), and the cache is safe under concurrent request engines.
func TestSharedKernelsAcrossEngines(t *testing.T) {
	d, err := datagen.Generate(datagen.Config{
		Seed: 8, Products: 60, Orders: 40, Market: 20, Segments: 6, NullRate: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := sqlfront.MustParse(`SELECT P.id FROM Products P WHERE P.rrp * P.dis > 50 LIMIT 5`)
	want, err := New(Options{Seed: 3}).MeasureSQL(q, d, 0.05, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	kc := NewKernels(0)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := New(Options{Seed: 3})
			eng.UseKernels(kc)
			got, err := eng.MeasureSQL(q, d, 0.05, 0.25)
			if err != nil {
				errCh <- err
				return
			}
			for i := range got.Candidates {
				if got.Candidates[i].Measure.Value != want.Candidates[i].Measure.Value {
					errCh <- errors.New("shared kernels changed a measure")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
