package server

// Tests of the write path: POST /v1/insert with atomic batches, snapshot
// pinning for in-flight queries, and parity between a mutated server and
// a direct Session over the same data.

import (
	"context"
	"net/http"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/sqlfront"
	"repro/internal/value"
	"repro/internal/wire"
)

const insertTestQuery = `SELECT P.seg FROM Products P, Market M
	WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 6`

func TestInsertEndToEnd(t *testing.T) {
	d := testDB().Clone()
	_, c, _ := newTestServer(t, Config{DB: d, Engine: core.Options{Seed: 7}})
	ctx := context.Background()

	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	before, err := c.MeasureSQL(ctx, insertTestQuery, 0.05, 0.25)
	if err != nil {
		t.Fatal(err)
	}

	// Insert market rows that dominate every product so the join grows.
	res, err := c.Insert(ctx, "Market", []value.Tuple{
		{value.Base("seg0"), value.Num(10000), value.Num(1)},
		{value.Base("seg1"), value.Num(10000), value.Num(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 2 {
		t.Fatalf("inserted = %d, want 2", res.Inserted)
	}
	if res.Version == 0 {
		t.Fatal("version did not advance")
	}

	info2, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Tuples != info.Tuples+2 {
		t.Fatalf("tuples = %d, want %d", info2.Tuples, info.Tuples+2)
	}

	after, err := c.MeasureSQL(ctx, insertTestQuery, 0.05, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if after.Derivations <= before.Derivations {
		t.Fatalf("derivations %d -> %d: insert not visible to queries",
			before.Derivations, after.Derivations)
	}

	// Parity: the mutated server must agree bit-for-bit with a direct
	// session over the same (incrementally maintained) database.
	q, err := sqlfront.Parse(insertTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.Options{Seed: 7, PoolWorkers: 1})
	want, err := eng.MeasureSQL(q, d.Snapshot(), 0.05, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, "after insert", after, want)
}

func TestInsertRejectsInvalidBatchAtomically(t *testing.T) {
	d := testDB().Clone()
	_, c, _ := newTestServer(t, Config{DB: d})
	ctx := context.Background()
	n := d.Len("Market")
	version := d.Version()

	cases := []struct {
		rel    string
		tuples []value.Tuple
	}{
		{"Nope", []value.Tuple{{value.Num(1)}}},
		{"Market", []value.Tuple{{value.Base("m")}}}, // arity
		{"Market", []value.Tuple{
			{value.Base("seg0"), value.Num(1), value.Num(1)},
			{value.Num(3), value.Num(1), value.Num(1)}, // sort mismatch in tuple 2
		}},
	}
	for _, tc := range cases {
		_, err := c.Insert(ctx, tc.rel, tc.tuples)
		se := &client.ServerError{}
		if err == nil || !asServerError(err, &se) || se.Status != http.StatusBadRequest {
			t.Fatalf("Insert(%s, %v): err = %v, want 400", tc.rel, tc.tuples, err)
		}
	}
	if d.Len("Market") != n || d.Version() != version {
		t.Fatalf("failed inserts changed the database: len %d->%d version %d->%d",
			n, d.Len("Market"), version, d.Version())
	}
}

func TestInsertReadOnly(t *testing.T) {
	_, c, _ := newTestServer(t, Config{DB: testDB().Clone(), ReadOnly: true})
	_, err := c.Insert(context.Background(), "Market", []value.Tuple{
		{value.Base("m"), value.Base("s"), value.Num(1), value.Num(1)},
	})
	se := &client.ServerError{}
	if err == nil || !asServerError(err, &se) || se.Status != http.StatusForbidden || se.Code != wire.CodeReadOnly {
		t.Fatalf("read-only insert: err = %v, want 403 %s", err, wire.CodeReadOnly)
	}
}

// TestInsertConcurrentWithQueries hammers the server with measuring
// clients while a writer streams insert batches — the mixed workload the
// snapshot layer exists for. Every response must be internally
// consistent (derivations monotone over versions is not guaranteed per
// response-order, but responses must never fail), and the final state
// must match the writer's count. Run with -race.
func TestInsertConcurrentWithQueries(t *testing.T) {
	d := testDB().Clone()
	_, c, _ := newTestServer(t, Config{DB: d, Engine: core.Options{Seed: 7}, MaxInflight: 4})
	ctx := context.Background()

	const (
		readers = 3
		queries = 6
		batches = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers*queries+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				if _, err := c.MeasureSQL(ctx, insertTestQuery, 0.1, 0.25); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < batches; i++ {
			_, err := c.Insert(ctx, "Orders", []value.Tuple{
				{value.Base("o-new"), value.Base("p0"), value.NullNum(100000 + i), value.Num(0.5)},
			})
			if err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := d.Size(); info.Tuples != want {
		t.Fatalf("final tuples = %d, want %d", info.Tuples, want)
	}
}
