package core

import (
	"sync"

	"repro/internal/realfmla"
)

// kernelCache is a concurrency-safe cache of immutable compiled formula
// kernels, keyed by structural fingerprint. It is the cross-engine
// companion of the per-engine compile cache: the measurement pools
// (Engine.MeasureSQL, MeasureBatch) create one engine per candidate for
// deterministic seeding, and without sharing every one of those engines
// would re-reduce and re-compile its formula from scratch on every call.
// The cache lives on the pool owner, so repeated MeasureSQL calls and
// ε-sweeps skip recompilation entirely.
//
// Sharing kernels cannot change results: compilation is a deterministic
// pure function of the formula, kernels are immutable, and all sampling
// state stays in per-engine compiledEntry scratch.
//
// Keys are formula fingerprints — pure formula identity, independent of
// any database version — so a server-wide cache survives snapshot
// swaps: after an insert, candidate constraints the new tuples did not
// change hash to the same kernels and skip recompilation, and
// constraints that did change simply miss and compile once.
type kernelCache struct {
	mu  sync.Mutex
	cap int
	m   map[realfmla.FormulaID]*kernel
}

func newKernelCache(cap int) *kernelCache {
	return &kernelCache{cap: cap, m: make(map[realfmla.FormulaID]*kernel)}
}

// get returns the kernel of phi, compiling it on first sight. The compile
// itself runs outside the lock; on a race the first kernel stored wins
// (they are value-identical). Hits are confirmed syntactically, so a
// fingerprint collision costs a recompile instead of a wrong measure.
func (kc *kernelCache) get(key realfmla.FormulaID, phi realfmla.Formula) *kernel {
	kc.mu.Lock()
	if k, ok := kc.m[key]; ok && realfmla.Equal(phi, k.source) {
		kc.mu.Unlock()
		return k
	}
	kc.mu.Unlock()
	k := newKernel(phi)
	kc.mu.Lock()
	defer kc.mu.Unlock()
	if prev, ok := kc.m[key]; ok && realfmla.Equal(phi, prev.source) {
		return prev
	}
	if len(kc.m) >= kc.cap {
		for id := range kc.m { // full: evict one arbitrary entry
			delete(kc.m, id)
			break
		}
	}
	kc.m[key] = k
	return k
}
