#!/usr/bin/env bash
# Runs the Figure 1 benchmark family plus the end-to-end SQL pipeline
# benchmarks and records the results as BENCH_<date>.json in the
# repository root, so the performance trajectory across PRs stays
# machine-readable. The default regexp covers, among others:
#   - BenchmarkFigure1aWorkersScaled: the worker benchmark sized to show
#     multi-core sampling scaling (m = 40000 samples per candidate; the
#     smaller BenchmarkFigure1aWorkers run is kept as the overhead bound);
#   - BenchmarkSQLPipeline: naive/indexed/fused end-to-end pipelines over
#     the columnar executor (allocs/op guarded by scripts/alloc_check.sh);
#   - BenchmarkSQLPipelineSweep: repeated-MeasureSQL ε-sweep showing the
#     shared compiled-kernel cache of the fused measurement pool;
#   - BenchmarkMixedInsertQuery: the write path — one insert + one
#     indexed query per op under incremental index maintenance, with the
#     snapshot (copy-on-write) and drop-and-rebuild regimes alongside;
#   - BenchmarkInsertDurable: the durable write path (internal/wal) —
#     one committed batch per op through validate/encode/append/fsync/
#     apply, with the nosync and in-memory baselines alongside, so the
#     price of durability stays visible;
#   - BenchmarkServerThroughput: end-to-end HTTP requests/second through
#     the multi-user server (internal/server), all clients sharing one
#     database under admission control;
#   - BenchmarkAdaptiveTopK: the adaptive top-k sampling race vs the
#     fixed per-candidate budget on skewed and uniform candidate fields,
#     reporting samples/op (guarded by scripts/sample_check.sh);
#   - BenchmarkReplicaCatchup: a cold replica bootstrapping from the
#     primary's checkpoint and replaying a 50-batch backlog over HTTP
#     log shipping (internal/replica), so catchup latency stays visible;
#   - BenchmarkShardedScatterGather: the hash-sharded scatter-gather
#     coordinator (internal/shard) vs the single-store pipeline on the
#     same query, so the per-shard fan-out/merge overhead stays visible
#     (allocs/op guarded by scripts/alloc_check.sh).
#
# Usage: scripts/bench.sh [bench-regexp] [benchtime]
#   scripts/bench.sh                 # the default family below, -benchtime 1s
#   scripts/bench.sh Figure1a 5x     # quicker, single series
set -euo pipefail
cd "$(dirname "$0")/.."

bench="${1:-Figure1|SQLPipeline|MixedInsertQuery|InsertDurable|ServerThroughput|AdaptiveTopK|ReplicaCatchup|ShardedScatterGather}"
benchtime="${2:-1s}"
out="BENCH_$(date +%Y-%m-%d).json"

raw="$(go test -run '^$' -bench "$bench" -benchmem -benchtime "$benchtime" . ./internal/server ./internal/replica ./internal/shard)"
printf '%s\n' "$raw"

{
  printf '{\n'
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
  printf '  "bench": "%s",\n' "$bench"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "results": [\n'
  printf '%s\n' "$raw" | awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      bytes = ""; allocs = ""
      for (i = 4; i <= NF; i++) {
        if ($i == "B/op") bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
      }
      if (printed) printf ",\n"
      printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3
      if (bytes != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bytes, allocs
      printf "}"
      printed = 1
    }
    END { printf "\n" }'
  printf '  ]\n'
  printf '}\n'
} > "$out"

echo "wrote $out"
