package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for … range` over a map whose body feeds an
// order-sensitive sink — appends to a slice, sends on a channel, or
// writes through an encoder/printer — because Go map iteration order is
// deliberately randomized, so anything built in iteration order differs
// run to run. It applies in the deterministic packages and in the wire
// and info builders (internal/server, internal/wire), where a map-range
// feeding a JSON payload makes /v1/info responses flap.
//
// The keys-collect-then-sort idiom is recognized: a map-range whose only
// sink is an append is not flagged when a sort call (package sort or
// slices.Sort*) follows the loop later in the same function — collect,
// sort, then iterate the slice is exactly the fix this analyzer steers
// toward. Sends and encoder writes inside the loop body are always
// flagged; no post-hoc sort can repair an order already observed.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration feeding order-sensitive sinks without a sort",
	Run:  runMapOrder,
}

// mapOrderPkgs is the deterministic set plus the wire/info builders.
var mapOrderPkgs = append([]string{"internal/server", "internal/wire"}, deterministicPkgs...)

// encoderWriters are method/function names that externalize values in
// call order.
var encoderWriters = map[string]bool{
	"Encode":      true,
	"EncodeToken": true,
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Fprintf":     true,
	"Fprint":      true,
	"Fprintln":    true,
	"Printf":      true,
	"Print":       true,
	"Println":     true,
}

func runMapOrder(pass *Pass) error {
	if !pathHasAny(pass.Pkg.Path(), mapOrderPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		// Track the innermost enclosing function so the sorted-after
		// check can scan the statements that follow the loop.
		var fnStack []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				fnStack = append(fnStack, n)
				ast.Inspect(fnBody(n), walk)
				fnStack = fnStack[:len(fnStack)-1]
				return false
			case *ast.RangeStmt:
				pass.checkMapRange(n, enclosing(fnStack))
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

func fnBody(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body == nil {
			return n.Type
		}
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return n
}

func enclosing(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

func (p *Pass) checkMapRange(rs *ast.RangeStmt, fn ast.Node) {
	t := p.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var appends, hardSinks []ast.Node // hard: sends + encoder writes
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			hardSinks = append(hardSinks, n)
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					if _, isBuiltin := p.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
						appends = append(appends, n)
					}
				}
			case *ast.SelectorExpr:
				if encoderWriters[fun.Sel.Name] {
					hardSinks = append(hardSinks, n)
				}
			}
		}
		return true
	})
	for _, s := range hardSinks {
		p.Reportf(s.Pos(), "order-sensitive write inside a map range: map iteration order is randomized; iterate a sorted slice of keys (or the routing log) instead")
	}
	if len(appends) > 0 && !p.sortFollows(rs, fn) {
		p.Reportf(appends[0].Pos(), "append inside a map range with no sort after the loop: the slice order is randomized; sort it (sort.* / slices.Sort*) or iterate sorted keys")
	}
}

// sortFollows reports whether a sort call (package sort, or a
// slices.Sort* function) appears after the range loop in the same
// enclosing function — the collect-then-sort idiom.
func (p *Pass) sortFollows(rs *ast.RangeStmt, fn ast.Node) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody(fn), func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.TypesInfo.Uses[x].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort":
			found = true
		case "slices":
			if len(sel.Sel.Name) >= 4 && sel.Sel.Name[:4] == "Sort" {
				found = true
			}
		}
		return !found
	})
	return found
}
