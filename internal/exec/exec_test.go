package exec_test

import (
	"testing"

	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/realfmla"
	"repro/internal/schema"
	"repro/internal/sqlfront"
	"repro/internal/value"
)

func testDB(t *testing.T) *db.Database {
	t.Helper()
	s := schema.MustNew(
		schema.MustRelation("R",
			schema.Column{Name: "g", Type: schema.Base},
			schema.Column{Name: "x", Type: schema.Num}),
		schema.MustRelation("S",
			schema.Column{Name: "g", Type: schema.Base},
			schema.Column{Name: "y", Type: schema.Num}),
	)
	d := db.New(s)
	d.MustInsert("R", value.Base("a"), value.NullNum(0))
	d.MustInsert("R", value.Base("b"), value.Num(1))
	d.MustInsert("R", value.Base("a"), value.Num(2))
	d.MustInsert("S", value.Base("a"), value.Num(3))
	d.MustInsert("S", value.Base("b"), value.NullNum(1))
	return d
}

func mustPlan(t *testing.T, d *db.Database, src string, opts plan.Options) *plan.Plan {
	t.Helper()
	p, err := plan.Build(sqlfront.MustParse(src), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCursorStreamsDerivations: the pull iterator yields each surviving
// join combination exactly once, with canonical-order constraint atoms.
func TestCursorStreamsDerivations(t *testing.T) {
	d := testDB(t)
	p := mustPlan(t, d, `SELECT R.g FROM R R, S S WHERE R.g = S.g AND R.x <= S.y`, plan.Options{})
	cur := exec.NewCursor(p, d, exec.Options{})
	var derivs []*exec.Deriv
	for {
		dv, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if dv == nil {
			break
		}
		derivs = append(derivs, dv)
	}
	// Survivors: (r0,s0) with z0<=3, (r1,s1) with 1<=z1, (r2,s0) decided
	// true (2<=3, no atom).
	if len(derivs) != 3 {
		t.Fatalf("%d derivations: %v", len(derivs), derivs)
	}
	if len(derivs[0].Conj) != 1 || len(derivs[1].Conj) != 1 || len(derivs[2].Conj) != 0 {
		t.Errorf("constraint shapes wrong: %v", derivs)
	}
	// On a streaming (Identity) plan the ordinal vector is not needed —
	// emission order is derivation order — and stays nil.
	if derivs[2].Rows != nil {
		t.Errorf("identity plan populated Rows: %v", derivs[2].Rows)
	}
}

// TestRunRestoresOrderAfterReorder: a reordered plan still emits in the
// original FROM-clause derivation order.
func TestRunRestoresOrderAfterReorder(t *testing.T) {
	s := schema.MustNew(
		schema.MustRelation("A", schema.Column{Name: "k", Type: schema.Base}),
		schema.MustRelation("B", schema.Column{Name: "k", Type: schema.Base}),
		schema.MustRelation("C", schema.Column{Name: "k", Type: schema.Base}),
	)
	d := db.New(s)
	for _, v := range []string{"x", "y"} {
		d.MustInsert("A", value.Base(v))
		d.MustInsert("B", value.Base(v))
		d.MustInsert("C", value.Base(v))
	}
	// FROM order has the A×C cartesian first; B joins both.
	p := mustPlan(t, d, `SELECT A.k FROM A A, C C, B B WHERE B.k = A.k AND B.k = C.k`, plan.Options{Reorder: true})
	if p.Identity {
		t.Fatal("expected a reordered plan")
	}
	var got [][]int
	if err := exec.Run(p, d, exec.Options{}, func(dv *exec.Deriv) error {
		got = append(got, dv.Rows)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 0, 0}, {1, 1, 1}}
	if len(got) != len(want) {
		t.Fatalf("derivations = %v, want %v", got, want)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("derivations = %v, want %v (derivation order not restored)", got, want)
			}
		}
	}
}

// TestAggregatorLimitAndSaturation: beyond-limit tuples hold no
// constraint state, and an unconditional derivation finalizes a
// candidate early through the hook.
func TestAggregatorLimitAndSaturation(t *testing.T) {
	var early []int
	ag := exec.NewAggregator(1, func(idx int, c exec.Candidate) {
		early = append(early, idx)
		if _, ok := c.Phi.(realfmla.FTrue); !ok {
			t.Errorf("saturated Phi = %s", c.Phi)
		}
	})
	atom := realfmla.FAtom{}
	tupA := value.Tuple{value.Base("a")}
	tupB := value.Tuple{value.Base("b")}
	ag.Add(&exec.Deriv{Tuple: tupA, Conj: []realfmla.Formula{atom}})
	ag.Add(&exec.Deriv{Tuple: tupB, Conj: nil}) // beyond limit: ignored
	ag.Add(&exec.Deriv{Tuple: tupA, Conj: nil}) // saturates candidate 0
	ag.Add(&exec.Deriv{Tuple: tupA, Conj: []realfmla.Formula{atom}})
	cands := ag.Finish()
	if len(cands) != 1 || !cands[0].Tuple.Equal(tupA) {
		t.Fatalf("candidates = %v", cands)
	}
	if _, ok := cands[0].Phi.(realfmla.FTrue); !ok {
		t.Errorf("Phi = %s, want true", cands[0].Phi)
	}
	if len(early) != 1 || early[0] != 0 || !ag.Saturated(0) {
		t.Errorf("early dispatch = %v", early)
	}
}

// TestCollectOptionCombos: every executor configuration computes the same
// result on a probe-and-filter query.
func TestCollectOptionCombos(t *testing.T) {
	d := testDB(t)
	p := mustPlan(t, d, `SELECT R.g FROM R R, S S WHERE R.g = S.g AND R.x <= S.y LIMIT 2`, plan.Options{})
	base, err := exec.Collect(p, d, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Derivations != 3 || len(base.Candidates) != 2 {
		t.Fatalf("base = %d derivs, %d candidates", base.Derivations, len(base.Candidates))
	}
	for _, opts := range []exec.Options{
		{NoDBIndexes: true},
		{NoHashJoin: true},
		{NoDBIndexes: true, NoHashJoin: true},
	} {
		got, err := exec.Collect(p, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Derivations != base.Derivations || len(got.Candidates) != len(base.Candidates) {
			t.Fatalf("%+v: %d derivs %d cands", opts, got.Derivations, len(got.Candidates))
		}
		for i := range base.Candidates {
			if !got.Candidates[i].Tuple.Equal(base.Candidates[i].Tuple) ||
				!realfmla.Equal(got.Candidates[i].Phi, base.Candidates[i].Phi) {
				t.Fatalf("%+v: candidate %d differs", opts, i)
			}
		}
	}
}
