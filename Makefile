GO ?= go
GOFMT ?= gofmt
# Pinned staticcheck version: CI installs exactly this; locally the
# staticcheck step is skipped when the binary is not on PATH (offline
# dev containers cannot go install it).
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: check vet build test race lint-check bench-smoke bench bench-check fuzz-smoke crash-check replica-check shard-check

# check is what CI runs: static checks, build, tests, the determinism
# lint gate, and a one-iteration benchmark smoke so the Figure 1
# pipeline stays runnable.
check: vet build test lint-check bench-smoke

# vet layers three formatting/correctness gates: gofmt (fail on any
# unformatted file), go vet, and staticcheck when available.
vet:
	@unformatted=$$($(GOFMT) -l . 2>/dev/null); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION))"; \
	fi

# lint-check runs the determinism invariant linters (cmd/arithdb-lint:
# detrand, maporder, floateq, ctxpoll, errdrop) over the whole tree and
# their analysistest fixture suites. Must be run from the repo root —
# the source importer resolves the module from the working directory.
lint-check:
	$(GO) run ./cmd/arithdb-lint ./...
	$(GO) test ./internal/analysis/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the suite under the race detector (CI runs it as its own job;
# the fused SQL pipeline and MeasureBatch are the concurrent paths).
race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run '^$$' -bench 'Figure1a' -benchtime 1x -benchmem .

# bench records the Figure 1 benchmark family as BENCH_<date>.json for
# the performance trajectory across PRs.
bench:
	scripts/bench.sh

# bench-check is the performance-regression guard (CI runs it alongside
# the race job): the SQL pipeline benchmarks must stay within the
# allocs/op budgets checked in at scripts/alloc_budget.txt, and the
# adaptive top-k race must stay within the samples/op budgets of
# scripts/sample_budget.txt (including the >= 3x skewed saving over the
# fixed per-candidate budget).
bench-check:
	scripts/alloc_check.sh
	scripts/sample_check.sh

# crash-check is the durability gauntlet (CI runs it as its own job):
# fault-injected WAL failures, crashes simulated at every record boundary
# and at torn offsets inside records, recovery parity down to the
# measure bits, and the degraded read-only server path. -count=1 defeats
# the test cache so the fault injection actually reruns.
crash-check:
	$(GO) test ./internal/wal -count=1 -run 'TestLog|TestFaultFS|TestStore'
	$(GO) test . -count=1 -run 'TestDurable'
	$(GO) test ./internal/server -count=1 -run 'TestServerDegradesOnWALFault|TestServerDurableInsertRecovers'
	$(GO) test ./internal/dbio -count=1 -run 'TestSave'

# replica-check is the replication gauntlet (CI runs it as its own job):
# checkpoint bootstrap + log catchup against a real durable primary,
# idempotent reconvergence across abrupt primary crashes, 410 →
# re-bootstrap after truncation, and the chaos harness — log shipping
# and client failover under injected latency, dropped connections, and
# streams cut mid-NDJSON-frame (internal/faultnet), asserting
# bit-identical convergence, zero failed reads through primary
# downtime, and no double-applied batch. -race because the catchup
# loop, the long-poll tail, and the failover client are all concurrent;
# -count=1 defeats the test cache so the fault injection actually reruns.
replica-check:
	$(GO) test ./internal/replica -race -count=1
	$(GO) test ./internal/faultnet -race -count=1
	$(GO) test . -race -count=1 -run 'TestReplicaChaos'

# shard-check is the sharding gauntlet (CI runs it as its own job): the
# hash-sharded store and scatter-gather coordinator under -race — unit
# placement/gather tests, the shard-count invariance suite (bit-identical
# results across N ∈ {1,2,4} and worker configurations, including the
# LIMIT-k adaptive race and the randomized parity fuzz), the sharded
# server e2e (buffered + streamed), and the fleet chaos harness: two
# shard servers behind the hash router with client-side injected latency
# and dropped connections, asserting exact per-shard placement and no
# duplicated or lost acked write. -count=1 defeats the test cache so the
# fault injection actually reruns.
shard-check:
	$(GO) test ./internal/shard -race -count=1
	$(GO) test ./internal/server -race -count=1 -run 'TestSharded'
	$(GO) test . -race -count=1 -run 'TestShardChaos'

# fuzz-smoke gives each wire-protocol fuzzer a short budget: malformed
# requests and SQL must come back as structured errors, never panics
# (CI runs this as its own job; go test -fuzz takes one target at a time).
fuzz-smoke:
	$(GO) test ./internal/server -run '^$$' -fuzz '^FuzzMeasureRequest$$' -fuzztime 10s
	$(GO) test ./internal/server -run '^$$' -fuzz '^FuzzMeasureSQLString$$' -fuzztime 10s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzValueRoundTrip$$' -fuzztime 5s
