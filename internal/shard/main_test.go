package shard_test

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine behind:
// the scatter-gather coordinator's per-shard workers must drain on
// Close even when a shard is mid-query.
func TestMain(m *testing.M) {
	leakcheck.VerifyTestMain(m)
}
