package mc

import (
	"math"
	"math/rand"
	"testing"
)

// TestSplitMix64SeedResetsStream: reseeding reproduces the stream exactly,
// and the source satisfies the rand.Source64 contracts.
func TestSplitMix64SeedResetsStream(t *testing.T) {
	src := NewSplitMix64(123)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = src.Uint64()
	}
	src.Seed(123)
	for i := range first {
		if v := src.Uint64(); v != first[i] {
			t.Fatalf("draw %d: %d after reseed, want %d", i, v, first[i])
		}
	}
	for i := 0; i < 1000; i++ {
		if v := src.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

// TestSplitMix64Uniformity is a coarse sanity check that the generator is
// not obviously broken: the mean of many uniform [0,1) draws via rand.Rand
// is near 1/2.
func TestSplitMix64Uniformity(t *testing.T) {
	rng := rand.New(NewSplitMix64(99))
	var m Mean
	for i := 0; i < 100000; i++ {
		m.Add(rng.Float64())
	}
	if math.Abs(m.Value()-0.5) > 0.01 {
		t.Errorf("mean of uniforms = %.4f, want ≈ 0.5", m.Value())
	}
}

// TestDeriveSeedIndependence: derived seeds are deterministic, differ
// across nearby stream indices and across base seeds.
func TestDeriveSeedIndependence(t *testing.T) {
	seen := make(map[int64]bool)
	for base := int64(0); base < 4; base++ {
		for stream := int64(0); stream < 256; stream++ {
			s := DeriveSeed(base, stream)
			if s != DeriveSeed(base, stream) {
				t.Fatal("DeriveSeed not deterministic")
			}
			if seen[s] {
				t.Fatalf("seed collision at base %d stream %d", base, stream)
			}
			seen[s] = true
		}
	}
}

// TestSampleSphereIntoMatchesSampleSphere: the in-place variant consumes
// the stream identically to the allocating wrapper.
func TestSampleSphereIntoMatchesSampleSphere(t *testing.T) {
	a := SampleSphere(NewRNG(7), 5)
	buf := make([]float64, 5)
	SampleSphereInto(NewRNG(7), buf)
	for i := range a {
		if a[i] != buf[i] {
			t.Fatalf("coordinate %d: %g vs %g", i, a[i], buf[i])
		}
	}
	if n := Norm(buf); math.Abs(n-1) > 1e-12 {
		t.Errorf("norm = %g, want 1", n)
	}
}
