package translate

import (
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/fo"
	"repro/internal/realfmla"
	"repro/internal/schema"
	"repro/internal/value"
)

func trSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("R",
			schema.Column{Name: "a", Type: schema.Base},
			schema.Column{Name: "x", Type: schema.Num}),
		schema.MustRelation("S",
			schema.Column{Name: "x", Type: schema.Num},
			schema.Column{Name: "y", Type: schema.Num}),
		schema.MustRelation("E",
			schema.Column{Name: "a", Type: schema.Base}),
	)
}

// TestSelectGreater is the running example of the paper's introduction
// (σ_{A>B}(R) on a single all-null tuple): the translated formula must be
// exactly the condition z0 > z1 (up to sign conventions).
func TestSelectGreater(t *testing.T) {
	d := db.New(trSchema())
	d.MustInsert("S", value.NullNum(0), value.NullNum(1))
	q := fo.MustParseQuery(`q() := exists x:num, y:num . (S(x, y) and x > y)`)

	res, err := Query(q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 2 {
		t.Fatalf("K = %d", res.K())
	}
	// φ(z) must hold exactly when z0 > z1.
	cases := []struct {
		z    []float64
		want bool
	}{
		{[]float64{2, 1}, true},
		{[]float64{1, 2}, false},
		{[]float64{1, 1}, false},
		{[]float64{-1, -2}, true},
	}
	for _, c := range cases {
		if got := realfmla.Eval(res.Phi, c.z); got != c.want {
			t.Errorf("φ(%v) = %v, want %v (φ = %s)", c.z, got, c.want, res.Phi)
		}
	}
}

// TestTranslationSoundness is the central property (Prop 5.3): for random
// valuations z of the numerical nulls, φ(z) holds iff the query is true on
// the completed database v_z(D) with the candidate answer v_z(a,s).
func TestTranslationSoundness(t *testing.T) {
	s := trSchema()
	queries := []struct {
		src  string
		args func(d *db.Database) []value.Value
	}{
		{`q() := exists a:base, x:num . (R(a, x) and x > 2)`, nil},
		{`q() := forall x:num, y:num . (S(x, y) -> x + y > 0)`, nil},
		{`q() := exists x:num, y:num . (S(x, y) and x * y = 6)`, nil},
		{`q() := exists a:base . (R(a, 1) and not E(a))`, nil},
		{`q() := forall a:base . (E(a) -> exists x:num . R(a, x))`, nil},
		{`q(v:num) := exists y:num . (S(v, y) and y < v)`,
			func(d *db.Database) []value.Value { return []value.Value{value.NullNum(0)} }},
		{`q(a:base) := exists x:num . (R(a, x) and x >= 0)`,
			func(d *db.Database) []value.Value { return []value.Value{value.NullBase(0)} }},
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		d := db.New(s)
		nulls := []value.Value{value.NullNum(0), value.NullNum(1)}
		randNum := func() value.Value {
			if rng.Intn(2) == 0 {
				return nulls[rng.Intn(len(nulls))]
			}
			return value.Num(float64(rng.Intn(7) - 3))
		}
		randBase := func() value.Value {
			if rng.Intn(4) == 0 {
				return value.NullBase(rng.Intn(2))
			}
			return value.Base(string(rune('a' + rng.Intn(3))))
		}
		for i := 0; i < 3; i++ {
			d.MustInsert("R", randBase(), randNum())
			d.MustInsert("S", randNum(), randNum())
		}
		d.MustInsert("E", randBase())
		// Answer tuples below mention ⊥0 and ⊤0; nulls in answers must occur
		// in the database (they are tuples over C(D) ∪ N(D)).
		d.MustInsert("R", value.NullBase(0), value.NullNum(0))

		// The translation fixes a bijective base valuation; soundness is
		// stated w.r.t. completions that extend it.
		_, vbase := db.ApplyBijectiveBase(d)

		for _, qc := range queries {
			q := fo.MustParseQuery(qc.src)
			var args []value.Value
			if qc.args != nil {
				args = qc.args(d)
			}
			res, err := Query(q, d, args)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				z := make([]float64, res.K())
				for j := range z {
					z[j] = float64(rng.Intn(9) - 4)
				}
				// Build the completed database under (vbase, z).
				val := db.NewValuation()
				for id, img := range vbase.Base {
					val.Base[id] = img
				}
				for id, idx := range res.Index {
					val.Num[id] = z[idx]
				}
				cd, err := val.Apply(d)
				if err != nil {
					t.Fatal(err)
				}
				inst, err := fo.FromComplete(cd)
				if err != nil {
					t.Fatal(err)
				}
				cargs := make([]fo.Cell[float64], len(args))
				for j, a := range args {
					va, err := val.Value(a)
					if err != nil {
						t.Fatal(err)
					}
					c, err := fo.CellForCompleteValue(va)
					if err != nil {
						t.Fatal(err)
					}
					cargs[j] = c
				}
				want, err := fo.Eval(q, inst, cargs)
				if err != nil {
					t.Fatal(err)
				}
				got := realfmla.Eval(res.Phi, z)
				if got != want {
					t.Fatalf("trial %d, query %s, z=%v: φ=%v eval=%v\nφ = %s\nDB:\n%s",
						trial, qc.src, z, got, want, res.Phi, d)
				}
			}
		}
	}
}

func TestTranslateErrors(t *testing.T) {
	d := db.New(trSchema())
	d.MustInsert("S", value.NullNum(0), value.Num(1))

	// Arity mismatch between free variables and args.
	q := fo.MustParseQuery(`q(v:num) := S(v, 1)`)
	if _, err := Query(q, d, nil); err == nil {
		t.Error("missing argument accepted")
	}
	// Wrong sort.
	if _, err := Query(q, d, []value.Value{value.Base("a")}); err == nil {
		t.Error("base argument for num variable accepted")
	}
	// Unknown numerical null in the answer tuple.
	if _, err := Query(q, d, []value.Value{value.NullNum(99)}); err == nil {
		t.Error("foreign numerical null accepted")
	}
	// Ill-typed query.
	bad := fo.MustParseQuery(`q() := S(1, 2, 3)`)
	if _, err := Query(bad, d, nil); err == nil {
		t.Error("ill-typed query accepted")
	}
}

func TestTranslateNoNulls(t *testing.T) {
	// On a complete database the translation is variable-free and decides
	// the query outright.
	d := db.New(trSchema())
	d.MustInsert("S", value.Num(2), value.Num(3))
	q := fo.MustParseQuery(`q() := exists x:num, y:num . (S(x, y) and x < y)`)
	res, err := Query(q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 0 {
		t.Fatalf("K = %d on complete database", res.K())
	}
	if !realfmla.Eval(res.Phi, nil) {
		t.Errorf("φ should be true: %s", res.Phi)
	}
}

// TestBaseNullSemantics checks the bijective-valuation convention: a base
// null joins only with itself, never with a named constant.
func TestBaseNullSemantics(t *testing.T) {
	d := db.New(trSchema())
	d.MustInsert("R", value.NullBase(0), value.Num(1))
	d.MustInsert("E", value.Base("a"))

	// ∃a. R(a,1) ∧ E(a): under a bijective valuation ⊥0 ≠ "a", so false.
	q := fo.MustParseQuery(`q() := exists a:base . (R(a, 1) and E(a))`)
	res, err := Query(q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if realfmla.Eval(res.Phi, nil) {
		t.Error("base null unified with a constant")
	}

	// But R(a,1) ∧ not E(a) is true, witnessed by the null's fresh image.
	q2 := fo.MustParseQuery(`q() := exists a:base . (R(a, 1) and not E(a))`)
	res2, err := Query(q2, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !realfmla.Eval(res2.Phi, nil) {
		t.Error("fresh constant for base null not usable as witness")
	}
}
