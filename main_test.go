package arithdb_test

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine behind.
// The chaos suites (replica failover, shard scatter-gather under
// faults) spin up whole clusters; this proves every node, proxy, and
// client they start is fully torn down.
func TestMain(m *testing.M) {
	leakcheck.VerifyTestMain(m)
}
