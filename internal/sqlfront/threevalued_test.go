package sqlfront

import (
	"testing"

	"repro/internal/db"
	"repro/internal/realfmla"
	"repro/internal/value"
)

func TestEvaluate3VLDropsNullDependentAnswers(t *testing.T) {
	d := buildSmallSales()
	q := MustParse(`SELECT P.id FROM Products P, Market M
		WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis`)

	full, err := Evaluate(q, d)
	if err != nil {
		t.Fatal(err)
	}
	sql, err := Evaluate3VL(q, d)
	if err != nil {
		t.Fatal(err)
	}
	// All of s1's derivations involve ⊤0/⊤1 (Market s1's dis is null), so
	// SQL returns nothing; the conditional evaluation keeps both p1 and p2
	// with constraints.
	if len(sql.Candidates) != 0 {
		t.Errorf("3VL returned %v, want nothing (all conditions touch nulls)", sql.Candidates)
	}
	if len(full.Candidates) == 0 {
		t.Fatal("conditional evaluation lost the candidates too")
	}
	missing := Missing(full, sql)
	if len(missing) != len(full.Candidates) {
		t.Errorf("Missing = %d candidates, want %d", len(missing), len(full.Candidates))
	}
}

func TestEvaluate3VLKeepsCompleteAnswers(t *testing.T) {
	d := db.New(salesSchema())
	d.MustInsert("Products", value.Base("p1"), value.Base("s1"), value.Num(10), value.Num(0.5))
	d.MustInsert("Products", value.Base("p2"), value.Base("s1"), value.NullNum(0), value.Num(0.5))
	d.MustInsert("Market", value.Base("s1"), value.Num(100), value.Num(0.9))

	q := MustParse(`SELECT P.id FROM Products P, Market M
		WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis`)
	sql, err := Evaluate3VL(q, d)
	if err != nil {
		t.Fatal(err)
	}
	// p1's condition is on complete values (5 ≤ 90): kept, with a trivial
	// constraint. p2 depends on ⊤0: dropped.
	if len(sql.Candidates) != 1 || sql.Candidates[0].Tuple[0].Str() != "p1" {
		t.Fatalf("3VL candidates = %v, want just p1", sql.Candidates)
	}
	if _, ok := sql.Candidates[0].Phi.(realfmla.FTrue); !ok {
		t.Errorf("kept candidate should carry a trivial constraint, got %s", sql.Candidates[0].Phi)
	}

	full, err := Evaluate(q, d)
	if err != nil {
		t.Fatal(err)
	}
	missing := Missing(full, sql)
	if len(missing) != 1 || missing[0].Tuple[0].Str() != "p2" {
		t.Errorf("Missing = %v, want just p2", missing)
	}
}
