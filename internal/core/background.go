package core

import (
	"fmt"
	"math"

	"repro/internal/realfmla"
)

// Interval is a range constraint on one numerical null: Lo ≤ z ≤ Hi, with
// ±Inf for open ends. It implements the first extension of the paper's
// Section 10: "most commonly we have restrictions on ranges of numerical
// attributes … we can simply add such constraints in both the numerator
// and denominator of the ratio defining the measure of certainty".
type Interval struct {
	Lo, Hi float64
}

// Unbounded is the no-information interval (−∞, +∞).
func Unbounded() Interval { return Interval{math.Inf(-1), math.Inf(1)} }

// AtLeast is [lo, +∞): e.g. a price known to be non-negative.
func AtLeast(lo float64) Interval { return Interval{lo, math.Inf(1)} }

// AtMost is (−∞, hi].
func AtMost(hi float64) Interval { return Interval{math.Inf(-1), hi} }

// Between is [lo, hi]: e.g. a discount known to be in [0,1].
func Between(lo, hi float64) Interval { return Interval{lo, hi} }

// kind of an interval for the mixed sampler.
func (iv Interval) kind() (bounded bool, signDir float64, err error) {
	loInf, hiInf := math.IsInf(iv.Lo, -1), math.IsInf(iv.Hi, 1)
	switch {
	case loInf && hiInf:
		return false, 0, nil // free direction
	case loInf:
		return false, -1, nil // ray towards −∞
	case hiInf:
		return false, 1, nil // ray towards +∞
	default:
		if iv.Lo > iv.Hi {
			return false, 0, fmt.Errorf("core: empty interval [%g, %g]", iv.Lo, iv.Hi)
		}
		return true, 0, nil
	}
}

// Background assigns range constraints to formula variables (indexed like
// the translated formula's z variables; variables absent from the map are
// unconstrained).
type Background map[int]Interval

// MeasureWithBackground computes the range-conditioned measure
//
//	μ_C = lim_{r→∞} Vol(φ ∧ C ∩ B_r) / Vol(C ∩ B_r)
//
// where C is the conjunction of the background intervals. The sampler
// draws directly from the conditional limit distribution: bounded
// variables take uniform values in their intervals (for large r the
// bounded directions stop growing, so their conditional law is the
// uniform law on the interval), half-bounded variables ray off to ±∞ with
// the sign their interval allows (finite offsets are asymptotically
// irrelevant), and unconstrained variables ray off in a uniformly random
// direction. Each sampled configuration decides φ by the mixed
// finite/asymptotic atom evaluation. Additive error eps with probability
// 1−delta, exactly like the unconditioned AFPRAS.
func (e *Engine) MeasureWithBackground(phi realfmla.Formula, bg Background, eps, delta float64) (Result, error) {
	m, err := e.sampleCount(eps, delta)
	if err != nil {
		return Result{}, err
	}
	ent := e.compiledFor(phi)
	vars := ent.vars
	n := len(vars)
	if n == 0 {
		return trivialResult(realfmla.Eval(ent.reduced, nil), ent.ambient), nil
	}
	// Re-index the background to the reduced variable space and classify.
	bounded := make([]bool, n)
	ray := make([]bool, n)
	lo := make([]float64, n)
	hi := make([]float64, n)
	sign := make([]float64, n)
	for j, orig := range vars {
		iv, ok := bg[orig]
		if !ok {
			iv = Unbounded()
		}
		b, s, err := iv.kind()
		if err != nil {
			return Result{}, err
		}
		bounded[j] = b
		ray[j] = !b
		lo[j], hi[j] = iv.Lo, iv.Hi
		sign[j] = s
	}

	ev := ent.sampler().ev
	vals := make([]float64, n)
	hits := 0
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			switch {
			case bounded[j]:
				vals[j] = lo[j] + e.rand().Float64()*(hi[j]-lo[j])
			case sign[j] != 0:
				vals[j] = sign[j] * math.Abs(e.rand().NormFloat64())
			default:
				vals[j] = e.rand().NormFloat64()
			}
		}
		if ev.MixedAsymEval(vals, ray, e.opts.Tol) {
			hits++
		}
	}
	return Result{
		Value:     float64(hits) / float64(m),
		Method:    MethodAFPRAS,
		Samples:   m,
		K:         ent.ambient,
		RelevantK: n,
	}, nil
}

// Distribution is a prior on one numerical null — the second Section 10
// extension: "adding probability distributions associated with particular
// columns, which can simply replace uniform distributions over the
// n-dimensional ball".
type Distribution interface {
	// Sample draws one value using the given uniform/normal primitives.
	Sample(uniform func() float64, normal func() float64) float64
}

// UniformDist is the uniform distribution on [Lo, Hi].
type UniformDist struct{ Lo, Hi float64 }

// Sample draws from the uniform law.
func (d UniformDist) Sample(uniform func() float64, _ func() float64) float64 {
	return d.Lo + uniform()*(d.Hi-d.Lo)
}

// NormalDist is the Gaussian with the given mean and standard deviation.
type NormalDist struct{ Mean, Stddev float64 }

// Sample draws from the Gaussian law.
func (d NormalDist) Sample(_ func() float64, normal func() float64) float64 {
	return d.Mean + d.Stddev*normal()
}

// ExponentialDist is the exponential distribution with the given rate,
// shifted by Lo (support [Lo, ∞)).
type ExponentialDist struct {
	Rate float64
	Lo   float64
}

// Sample draws by inversion.
func (d ExponentialDist) Sample(uniform func() float64, _ func() float64) float64 {
	u := uniform()
	for u == 0 {
		u = uniform()
	}
	return d.Lo - math.Log(u)/d.Rate
}

// MeasureWithDistributions computes the probability that the candidate is
// an answer when every relevant null has an explicit prior: the nulls are
// sampled from their distributions and φ is evaluated at the concrete
// point — no asymptotics are involved, since the priors fix the scale.
// Every variable occurring in φ must have a distribution. Additive error
// eps with probability 1−delta.
func (e *Engine) MeasureWithDistributions(phi realfmla.Formula, dists map[int]Distribution, eps, delta float64) (Result, error) {
	m, err := e.sampleCount(eps, delta)
	if err != nil {
		return Result{}, err
	}
	ent := e.compiledFor(phi)
	vars := ent.vars
	n := len(vars)
	if n == 0 {
		return trivialResult(realfmla.Eval(ent.reduced, nil), ent.ambient), nil
	}
	ds := make([]Distribution, n)
	for j, orig := range vars {
		d, ok := dists[orig]
		if !ok {
			return Result{}, fmt.Errorf("core: no distribution for null variable z%d", orig)
		}
		ds[j] = d
	}
	ev := ent.sampler().ev
	uniform := e.rand().Float64
	normal := e.rand().NormFloat64
	vals := make([]float64, n)
	hits := 0
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			vals[j] = ds[j].Sample(uniform, normal)
		}
		if ev.Eval(vals) {
			hits++
		}
	}
	return Result{
		Value:     float64(hits) / float64(m),
		Method:    MethodAFPRAS,
		Samples:   m,
		K:         ent.ambient,
		RelevantK: n,
	}, nil
}
