package db

import (
	"fmt"

	"repro/internal/value"
)

// Valuation interprets the nulls of a database by constants: base nulls by
// base constants (v_base) and numerical nulls by reals (v_num). This is the
// pair v = (v_base, v_num) of Section 4 of the paper.
type Valuation struct {
	// Base maps base-null IDs to base-type constants.
	Base map[int]string
	// Num maps numerical-null IDs to real numbers.
	Num map[int]float64
}

// NewValuation returns an empty valuation.
func NewValuation() *Valuation {
	return &Valuation{Base: make(map[int]string), Num: make(map[int]float64)}
}

// Value applies the valuation to a single value: nulls are replaced by
// their images, constants are returned unchanged. It returns an error if a
// null has no image.
func (v *Valuation) Value(x value.Value) (value.Value, error) {
	switch x.Kind() {
	case value.BaseNull:
		s, ok := v.Base[x.NullID()]
		if !ok {
			return value.Value{}, fmt.Errorf("db: valuation undefined on ⊥%d", x.NullID())
		}
		return value.Base(s), nil
	case value.NumNull:
		f, ok := v.Num[x.NullID()]
		if !ok {
			return value.Value{}, fmt.Errorf("db: valuation undefined on ⊤%d", x.NullID())
		}
		return value.Num(f), nil
	default:
		return x, nil
	}
}

// Tuple applies the valuation to every component of a tuple.
func (v *Valuation) Tuple(t value.Tuple) (value.Tuple, error) {
	out := make(value.Tuple, len(t))
	for i, x := range t {
		y, err := v.Value(x)
		if err != nil {
			return nil, err
		}
		out[i] = y
	}
	return out, nil
}

// Apply produces the complete database v(D): every null replaced by its
// image under the valuation. It returns an error if any null of D has no
// image.
func (v *Valuation) Apply(d *Database) (*Database, error) {
	out := New(d.schema)
	for rel, tb := range d.tables {
		for i := 0; i < tb.n; i++ {
			vt, err := v.Tuple(d.rowTuple(tb, i))
			if err != nil {
				return nil, err
			}
			if err := out.Insert(rel, vt); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// BijectiveBaseValuation returns a valuation of the base nulls of d that is
// injective and whose range is disjoint from Cbase(D), as required by
// Proposition 5.2 of the paper ("bijective valuation"): asymptotically
// almost all base valuations behave like such a valuation, so the measure
// only depends on the image database under any one of them. Numerical nulls
// are left uninterpreted.
func BijectiveBaseValuation(d *Database) *Valuation {
	existing := make(map[string]bool)
	for _, c := range d.BaseConstants() {
		existing[c] = true
	}
	v := NewValuation()
	i := 0
	for _, id := range d.BaseNulls() {
		for {
			cand := fmt.Sprintf("·fresh%d", i)
			i++
			if !existing[cand] {
				existing[cand] = true
				v.Base[id] = cand
				break
			}
		}
	}
	return v
}

// ApplyBijectiveBase replaces every base null of d with a fresh base
// constant (per BijectiveBaseValuation) and returns the resulting database,
// which has numerical nulls only, together with the valuation used.
func ApplyBijectiveBase(d *Database) (*Database, *Valuation) {
	v := BijectiveBaseValuation(d)
	out := New(d.schema)
	for rel, tb := range d.tables {
		for i := 0; i < tb.n; i++ {
			nt := d.rowTuple(tb, i)
			for j, x := range nt {
				if x.Kind() == value.BaseNull {
					nt[j] = value.Base(v.Base[x.NullID()])
				}
			}
			if err := out.Insert(rel, nt); err != nil {
				panic(err) // same schema, nulls only replaced: cannot fail
			}
		}
	}
	out.nextNumNull = d.nextNumNull
	return out, v
}
