package mc

import (
	"math"
	"testing"
)

func TestSampleSphereNorm(t *testing.T) {
	rng := NewRNG(1)
	for n := 1; n <= 6; n++ {
		for i := 0; i < 50; i++ {
			x := SampleSphere(rng, n)
			if len(x) != n {
				t.Fatalf("dim %d: got %d coords", n, len(x))
			}
			if math.Abs(Norm(x)-1) > 1e-12 {
				t.Fatalf("norm %g != 1", Norm(x))
			}
		}
	}
	if SampleSphere(rng, 0) != nil {
		t.Error("dimension 0 should give nil")
	}
}

func TestSampleSphereIsotropy(t *testing.T) {
	// Mean of many sphere samples should be near the origin, and each
	// coordinate should take both signs with frequency ≈1/2.
	rng := NewRNG(2)
	const N = 20000
	n := 3
	mean := make([]float64, n)
	pos := make([]int, n)
	for i := 0; i < N; i++ {
		x := SampleSphere(rng, n)
		for j := range x {
			mean[j] += x[j] / N
			if x[j] > 0 {
				pos[j]++
			}
		}
	}
	for j := 0; j < n; j++ {
		if math.Abs(mean[j]) > 0.02 {
			t.Errorf("coordinate %d mean %g not near 0", j, mean[j])
		}
		if f := float64(pos[j]) / N; math.Abs(f-0.5) > 0.02 {
			t.Errorf("coordinate %d positive frequency %g", j, f)
		}
	}
}

func TestSampleBallRadiusDistribution(t *testing.T) {
	// P(‖x‖ ≤ r) = rⁿ for the uniform ball distribution.
	rng := NewRNG(3)
	const N = 20000
	n := 2
	within := 0
	for i := 0; i < N; i++ {
		x := SampleBall(rng, n)
		r := Norm(x)
		if r > 1+1e-12 {
			t.Fatalf("ball sample with norm %g", r)
		}
		if r <= 0.5 {
			within++
		}
	}
	want := math.Pow(0.5, float64(n))
	if got := float64(within) / N; math.Abs(got-want) > 0.015 {
		t.Errorf("P(‖x‖≤0.5) = %g, want %g", got, want)
	}
}

func TestHoeffdingSamples(t *testing.T) {
	m, err := HoeffdingSamples(0.1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(math.Log(8) / 0.02))
	if m != want {
		t.Errorf("HoeffdingSamples = %d, want %d", m, want)
	}
	// Monotone: smaller eps and delta need more samples.
	m2, _ := HoeffdingSamples(0.05, 0.25)
	m3, _ := HoeffdingSamples(0.1, 0.01)
	if m2 <= m || m3 <= m {
		t.Errorf("monotonicity violated: %d %d %d", m, m2, m3)
	}
	for _, bad := range [][2]float64{{0, 0.1}, {1.5, 0.1}, {0.1, 0}, {0.1, 1}} {
		if _, err := HoeffdingSamples(bad[0], bad[1]); err == nil {
			t.Errorf("accepted eps=%g delta=%g", bad[0], bad[1])
		}
	}
}

func TestPaperSamples(t *testing.T) {
	m, err := PaperSamples(0.1)
	if err != nil || m != 100 {
		t.Errorf("PaperSamples(0.1) = %d, %v; want 100", m, err)
	}
	if _, err := PaperSamples(0); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestMeanAccumulator(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.N() != 0 {
		t.Error("zero value broken")
	}
	for i := 1; i <= 100; i++ {
		m.Add(float64(i))
	}
	if m.N() != 100 || math.Abs(m.Value()-50.5) > 1e-12 {
		t.Errorf("mean = %g over %d", m.Value(), m.N())
	}
}

func TestMedianOfMeans(t *testing.T) {
	i := 0
	vals := []float64{10, 1, 2, 3, 100} // outliers at both ends
	got := MedianOfMeans(5, func() float64 { v := vals[i]; i++; return v })
	if got != 3 {
		t.Errorf("median = %g, want 3", got)
	}
	// Even count takes midpoint; k ≤ 0 coerces to one call.
	i = 0
	if got := MedianOfMeans(2, func() float64 { v := vals[i]; i++; return v }); got != 5.5 {
		t.Errorf("median of two = %g, want 5.5", got)
	}
	calls := 0
	MedianOfMeans(0, func() float64 { calls++; return 0 })
	if calls != 1 {
		t.Errorf("k=0 made %d calls", calls)
	}
}

func TestRepetitionsForConfidence(t *testing.T) {
	if RepetitionsForConfidence(0.5) != 1 {
		t.Error("weak confidence should need one run")
	}
	k := RepetitionsForConfidence(0.01)
	if k%2 == 0 || k < int(8*math.Log(100)) {
		t.Errorf("k = %d", k)
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot wrong")
	}
	if Norm([]float64{3, 4}) != 5 {
		t.Error("Norm wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Dot length mismatch should panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}
