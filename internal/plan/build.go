package plan

import (
	"fmt"
	"sort"

	"repro/internal/db"
	"repro/internal/sqlast"
	"repro/internal/value"
)

// Options configures planning.
type Options struct {
	// Reorder permits join reordering along base-equality edges. The
	// executor restores the original derivation order when the planner
	// deviates from the FROM-clause order, so results are unchanged;
	// reordering only changes how much work the join does.
	Reorder bool
}

// Build lowers a query into a Plan over the given database, validating
// aliases, column references and condition sorts exactly as the
// pre-planner evaluator did.
func Build(q *sqlast.Query, d *db.Database, opts Options) (*Plan, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("plan: query needs at least one table")
	}
	r, err := NewResolver(q, d.Schema())
	if err != nil {
		return nil, err
	}
	b := &builder{q: q, d: d, Resolver: r}
	for _, c := range q.Select {
		if _, err := b.ColType(c); err != nil {
			return nil, err
		}
	}

	// Normalize conditions and compute their canonical order: original
	// join position (the earliest FROM position binding every referenced
	// alias), then WHERE-clause order. This is the order the pre-planner
	// evaluator appended constraint atoms in, and the executor reproduces
	// it per derivation whatever join order runs.
	type normCond struct {
		c       sqlast.Condition
		origPos int
	}
	norm := make([]normCond, 0, len(q.Where))
	for _, c := range q.Where {
		nc, err := b.Normalize(c)
		if err != nil {
			return nil, err
		}
		pos, err := b.earliestPosition(nc, b.origPos)
		if err != nil {
			return nil, err
		}
		norm = append(norm, normCond{c: nc, origPos: pos})
	}
	sort.SliceStable(norm, func(i, j int) bool { return norm[i].origPos < norm[j].origPos })

	// Base-equality adjacency between FROM positions, for join ordering.
	edges := make([][]bool, len(q.From))
	for i := range edges {
		edges[i] = make([]bool, len(q.From))
	}
	for _, nc := range norm {
		if nc.c.Kind != sqlast.CondBaseEq {
			continue
		}
		l, r := b.origPos[nc.c.LCol.Table], b.origPos[nc.c.RCol.Table]
		if l != r {
			edges[l][r], edges[r][l] = true, true
		}
	}

	order := identityOrder(len(q.From))
	if opts.Reorder && len(q.From) > 1 {
		if g := b.greedyOrder(edges); betterPattern(connPattern(g, edges), connPattern(order, edges)) {
			order = g
		}
	}

	p := &Plan{
		Schema:  d.Schema(),
		From:    q.From,
		Order:   order,
		Limit:   q.Limit,
		NullIDs: d.NumNulls(),
		Index:   make(map[int]int),
	}
	p.K = len(p.NullIDs)
	for i, id := range p.NullIDs {
		p.Index[id] = i
	}
	p.Identity = true
	stepOf := make(map[string]int, len(q.From)) // alias → step
	for s, o := range order {
		if s != o {
			p.Identity = false
		}
		t := q.From[o]
		stepOf[t.Alias] = s
		p.Steps = append(p.Steps, Step{
			Relation:   t.Relation,
			Alias:      t.Alias,
			Rel:        b.rels[t.Alias],
			Access:     FullScan,
			AccessCond: -1,
		})
	}

	// Resolve conditions against the chosen order and push each down to
	// the earliest step at which it is checkable.
	for ci, nc := range norm {
		pc, err := b.lowerCond(nc.c, stepOf)
		if err != nil {
			return nil, err
		}
		p.Conds = append(p.Conds, pc)
		p.Steps[pc.Step].Conds = append(p.Steps[pc.Step].Conds, ci)
	}

	// Access-path selection: prefer an index probe on a base equality
	// linking the step to an earlier one, then an index lookup on a
	// base-constant filter, then a full scan.
	for s := range p.Steps {
		st := &p.Steps[s]
		for _, ci := range st.Conds {
			c := &p.Conds[ci]
			if c.Kind != CondBaseEq {
				continue
			}
			local, outer := c.L, c.R
			if local.Step != s {
				local, outer = outer, local
			}
			if local.Step == s && outer.Step < s {
				st.Access = IndexEq
				st.LocalCol = local.Col
				st.Outer = outer
				st.AccessCond = ci
				break
			}
		}
		if st.Access != FullScan {
			continue
		}
		for _, ci := range st.Conds {
			c := &p.Conds[ci]
			if c.Kind == CondBaseEqConst && c.L.Step == s {
				st.Access = IndexConst
				st.LocalCol = c.L.Col
				st.Lit = c.Lit
				st.AccessCond = ci
				break
			}
		}
	}

	// Projection.
	p.Project = make([]CellRef, len(q.Select))
	for i, c := range q.Select {
		cell, err := b.cellRef(c, stepOf)
		if err != nil {
			return nil, err
		}
		p.Project[i] = cell
	}
	return p, nil
}

type builder struct {
	q *sqlast.Query
	d *db.Database
	*Resolver
}

func (b *builder) cellRef(c sqlast.ColRef, stepOf map[string]int) (CellRef, error) {
	rel, ok := b.rels[c.Table]
	if !ok {
		return CellRef{}, fmt.Errorf("plan: unknown alias %s", c.Table)
	}
	i := rel.ColumnIndex(c.Col)
	if i < 0 {
		return CellRef{}, fmt.Errorf("plan: relation %s has no column %s", rel.Name, c.Col)
	}
	return CellRef{Step: stepOf[c.Table], Col: i}, nil
}

// earliestPosition is the position (under the given alias→position map)
// after which every alias referenced by the condition is bound.
func (b *builder) earliestPosition(c sqlast.Condition, posOf map[string]int) (int, error) {
	pos := 0
	visit := func(alias string) error {
		p, ok := posOf[alias]
		if !ok {
			return fmt.Errorf("plan: unknown alias %s", alias)
		}
		if p > pos {
			pos = p
		}
		return nil
	}
	switch c.Kind {
	case sqlast.CondBaseEq:
		if err := visit(c.LCol.Table); err != nil {
			return 0, err
		}
		if err := visit(c.RCol.Table); err != nil {
			return 0, err
		}
	case sqlast.CondBaseEqConst:
		if err := visit(c.LCol.Table); err != nil {
			return 0, err
		}
	case sqlast.CondNumCmp:
		var walk func(e *sqlast.Expr) error
		walk = func(e *sqlast.Expr) error {
			switch e.Kind {
			case sqlast.ExprCol:
				return visit(e.Col.Table)
			case sqlast.ExprConst:
				return nil
			case sqlast.ExprNeg:
				return walk(e.L)
			default:
				if err := walk(e.L); err != nil {
					return err
				}
				return walk(e.R)
			}
		}
		if err := walk(c.LExp); err != nil {
			return 0, err
		}
		if err := walk(c.RExp); err != nil {
			return 0, err
		}
	}
	return pos, nil
}

// lowerCond resolves a normalized condition's column references into cell
// references under the chosen join order and computes its pipeline step.
func (b *builder) lowerCond(c sqlast.Condition, stepOf map[string]int) (Cond, error) {
	step := 0
	bind := func(cr sqlast.ColRef) (CellRef, error) {
		cell, err := b.cellRef(cr, stepOf)
		if err != nil {
			return cell, err
		}
		if cell.Step > step {
			step = cell.Step
		}
		return cell, nil
	}
	switch c.Kind {
	case sqlast.CondBaseEq:
		l, err := bind(c.LCol)
		if err != nil {
			return Cond{}, err
		}
		r, err := bind(c.RCol)
		if err != nil {
			return Cond{}, err
		}
		return Cond{Kind: CondBaseEq, L: l, R: r, Step: step}, nil
	case sqlast.CondBaseEqConst:
		l, err := bind(c.LCol)
		if err != nil {
			return Cond{}, err
		}
		return Cond{Kind: CondBaseEqConst, L: l, Lit: value.Base(c.Lit), Step: step}, nil
	case sqlast.CondNumCmp:
		var lower func(e *sqlast.Expr) (*NumExpr, error)
		lower = func(e *sqlast.Expr) (*NumExpr, error) {
			switch e.Kind {
			case sqlast.ExprCol:
				cell, err := bind(e.Col)
				if err != nil {
					return nil, err
				}
				return &NumExpr{Kind: sqlast.ExprCol, Cell: cell}, nil
			case sqlast.ExprConst:
				return &NumExpr{Kind: sqlast.ExprConst, Const: e.Const}, nil
			case sqlast.ExprNeg:
				l, err := lower(e.L)
				if err != nil {
					return nil, err
				}
				return &NumExpr{Kind: sqlast.ExprNeg, L: l}, nil
			default:
				l, err := lower(e.L)
				if err != nil {
					return nil, err
				}
				r, err := lower(e.R)
				if err != nil {
					return nil, err
				}
				return &NumExpr{Kind: e.Kind, L: l, R: r}, nil
			}
		}
		le, err := lower(c.LExp)
		if err != nil {
			return Cond{}, err
		}
		re, err := lower(c.RExp)
		if err != nil {
			return Cond{}, err
		}
		return Cond{Kind: CondNumCmp, Op: c.Op, LExp: le, RExp: re, Step: step}, nil
	}
	return Cond{}, fmt.Errorf("plan: unknown condition kind")
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// connPattern reports, for each step after the first, whether the table
// joined there is linked by a base equality to an earlier step — i.e.
// whether the step is a hash-joinable join rather than a cartesian
// product.
func connPattern(order []int, edges [][]bool) []bool {
	pat := make([]bool, 0, len(order)-1)
	for i := 1; i < len(order); i++ {
		conn := false
		for j := 0; j < i && !conn; j++ {
			conn = edges[order[i]][order[j]]
		}
		pat = append(pat, conn)
	}
	return pat
}

// betterPattern reports whether pattern a joins strictly earlier than b:
// at the first step where they differ, a is equality-connected and b is
// not. Ties keep the FROM-clause order (and its streaming guarantee).
func betterPattern(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i]
		}
	}
	return false
}

// greedyOrder builds a join order that pulls equality-connected tables as
// early as possible: start from the smaller endpoint of an equality edge
// (or the smallest table when there are no edges), then repeatedly take
// the smallest table connected to the bound set, falling back to the
// smallest remaining table when none is. Deterministic: ties break by
// original FROM position.
func (b *builder) greedyOrder(edges [][]bool) []int {
	n := len(b.q.From)
	size := make([]int, n)
	hasEdge := make([]bool, n)
	for i, t := range b.q.From {
		size[i] = b.d.Len(t.Relation)
		for j := 0; j < n; j++ {
			hasEdge[i] = hasEdge[i] || edges[i][j]
		}
	}
	used := make([]bool, n)
	pick := func(allowed func(i int) bool) int {
		best := -1
		for i := 0; i < n; i++ {
			if used[i] || !allowed(i) {
				continue
			}
			if best < 0 || size[i] < size[best] {
				best = i
			}
		}
		return best
	}
	start := pick(func(i int) bool { return hasEdge[i] })
	if start < 0 {
		start = pick(func(i int) bool { return true })
	}
	order := []int{start}
	used[start] = true
	for len(order) < n {
		next := pick(func(i int) bool {
			for _, j := range order {
				if edges[i][j] {
					return true
				}
			}
			return false
		})
		if next < 0 {
			next = pick(func(i int) bool { return true })
		}
		order = append(order, next)
		used[next] = true
	}
	return order
}
