package sqlfront

import (
	"repro/internal/db"
	"repro/internal/realfmla"
)

// Evaluate3VL runs the query under SQL's three-valued logic, the baseline
// the paper's framework improves on: a comparison involving a null
// evaluates to UNKNOWN and WHERE keeps only rows whose condition is TRUE.
// Answers that depend on missing values are silently dropped — exactly
// the lost information that the measure of certainty restores (a tuple
// absent here may still have confidence 0.99).
//
// Base-typed conditions follow the marked-null model (a null equals
// itself), so the contrast with Evaluate isolates the treatment of
// *numerical* incompleteness.
func Evaluate3VL(q *Query, d *db.Database) (*Result, error) {
	full, err := Evaluate(q, d)
	if err != nil {
		return nil, err
	}
	// A derivation survives 3VL iff its constraint is vacuously true —
	// i.e. the candidate's formula has a derivation with no null-dependent
	// atoms. Candidates whose every derivation carries constraints are
	// dropped, as SQL would drop them.
	out := &Result{NullIDs: full.NullIDs, Index: full.Index, Derivations: full.Derivations}
	for _, c := range full.Candidates {
		if hasTrueDisjunct(c.Phi) {
			out.Candidates = append(out.Candidates, Candidate{
				Tuple: c.Tuple,
				Phi:   realfmla.FTrue{},
			})
		}
	}
	return out, nil
}

// hasTrueDisjunct reports whether the (DNF-shaped) constraint contains a
// constraint-free derivation. Evaluate builds candidate formulas with the
// smart Or/And constructors, so a constraint-free derivation collapses the
// whole disjunction to FTrue.
func hasTrueDisjunct(f realfmla.Formula) bool {
	_, ok := f.(realfmla.FTrue)
	return ok
}

// Missing compares the conditional result with the 3VL result and returns
// the candidates SQL loses: tuples whose every derivation depends on
// nulls. These are precisely the answers for which the paper's confidence
// levels provide new information.
func Missing(full, threeVL *Result) []Candidate {
	present := make(map[string]bool, len(threeVL.Candidates))
	for _, c := range threeVL.Candidates {
		present[c.Tuple.Key()] = true
	}
	var out []Candidate
	for _, c := range full.Candidates {
		if !present[c.Tuple.Key()] {
			out = append(out, c)
		}
	}
	return out
}
