package wal

// Store couples the in-memory versioned database with the write-ahead
// log: the durable commit path, crash recovery, the background
// checkpointer, and the fail-safe degraded mode.
//
// Commit protocol (InsertBatch): validate the batch against the schema,
// frame it as one WAL record, append and fsync, then apply it to the
// in-memory store. The fsync happens strictly before the new version is
// published, so an acknowledged batch survives any crash; a batch that
// dies before the fsync returns was never acknowledged and may or may not
// replay, which is exactly the contract of a write-ahead log.
//
// Recovery (Open): load the newest checkpoint (an internal/dbio directory
// plus a CHECKPOINT manifest naming it and the sequence number it
// covers), then replay the WAL records with higher sequence numbers in
// order. The log scan truncates a torn tail at the first bad record;
// sequence numbers make replay idempotent across the crash window between
// a manifest commit and the WAL prefix truncation.
//
// Checkpoints are free reads: the checkpointer serializes an immutable
// db.Snapshot() — the writer is never stalled — into a fresh
// checkpoint-<seq> directory with crash-safe file writes, commits the
// manifest atomically, truncates the WAL prefix the checkpoint covers,
// and removes the previous checkpoint. A crash anywhere in that sequence
// recovers: either the old manifest still governs (orphan directories are
// swept on the next Open) or the new one does (stale WAL records are
// skipped by sequence number).
//
// Degraded mode: when a WAL append or fsync fails, the store trips into
// read-only — every later InsertBatch fails with ErrDegraded and the
// reason is surfaced through Degraded() — instead of crashing or letting
// unlogged writes into memory. Reads keep working; the machine drops to a
// safe restricted mode rather than dying.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/dbio"
	"repro/internal/value"
)

const (
	manifestName   = "CHECKPOINT"
	checkpointPref = "checkpoint-"
)

// ErrDegraded marks writes rejected because the store tripped into
// read-only mode after a WAL failure. errors.Is(err, ErrDegraded) holds
// for every such rejection.
var ErrDegraded = errors.New("wal: store is degraded (read-only)")

// Options configures a Store.
type Options struct {
	// FS is the filesystem; nil uses the real one. Tests inject FaultFS.
	FS FS
	// Seed builds the initial database when the directory holds no state
	// yet (first boot). Opening an empty directory without a Seed fails.
	Seed func() (*db.Database, error)
	// CheckpointEvery starts a background checkpointer with that period.
	// Zero disables it; Checkpoint can still be called manually.
	CheckpointEvery time.Duration
	// NoSync skips the per-batch fsync (the append still happens). This
	// trades crash durability of the last batches for throughput and
	// exists for benchmarks; production keeps it false.
	NoSync bool
	// Logf, when set, receives operational log lines (checkpoint errors,
	// degradation). nil discards them.
	Logf func(format string, args ...any)
}

// Store is a durably-logged database: the write path of a data directory.
type Store struct {
	fs   FS
	dir  string
	opts Options
	db   *db.Database

	// mu serializes the commit path and WAL file swaps: one InsertBatch
	// at a time, and never concurrently with a prefix truncation.
	mu     sync.Mutex
	log    *Log
	seq    uint64 // sequence number of the last committed batch
	closed bool
	encBuf []byte
	// commit is closed and replaced on every committed batch; long-poll
	// tailers (the replication endpoints) block on it instead of spinning.
	commit chan struct{}

	// degraded, once set, holds the reason the store went read-only.
	degraded atomic.Pointer[string]

	// ckptMu serializes checkpoints (background and manual).
	ckptMu   sync.Mutex
	ckptSeq  uint64
	ckptDir  string
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Open opens (or initializes) the data directory and recovers the
// database: newest checkpoint plus WAL replay. The returned store's DB()
// is the live writer the server snapshots per request.
func Open(dir string, opts Options) (*Store, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	s := &Store{fs: opts.FS, dir: dir, opts: opts, commit: make(chan struct{})}
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	seq, ckptDir, err := s.readManifest()
	if err != nil {
		return nil, err
	}
	if ckptDir == "" {
		// First boot: persist the seed as checkpoint zero before any WAL
		// record exists, so recovery always has a base to replay onto. A
		// crash before the manifest rename leaves only sweepable temp
		// state and the next Open initializes again.
		if opts.Seed == nil {
			return nil, fmt.Errorf("wal: %s holds no database and no seed was provided", dir)
		}
		seed, err := opts.Seed()
		if err != nil {
			return nil, fmt.Errorf("wal: seed: %w", err)
		}
		s.db = seed
		if err := s.writeCheckpoint(seed.Snapshot(), 0); err != nil {
			return nil, err
		}
		s.ckptDir = ckptName(0)
	} else {
		d, err := dbio.Load(filepath.Join(dir, ckptDir))
		if err != nil {
			return nil, fmt.Errorf("wal: load checkpoint %s: %w", ckptDir, err)
		}
		s.db = d
		s.seq, s.ckptSeq, s.ckptDir = seq, seq, ckptDir
	}
	s.sweepOrphans()
	log, recs, err := OpenLog(s.fs, dir)
	if err != nil {
		return nil, err
	}
	s.log = log
	for _, rec := range recs {
		if rec.Seq <= s.ckptSeq {
			continue // the checkpoint already covers it
		}
		if rec.Seq != s.seq+1 {
			return nil, fmt.Errorf("wal: sequence gap: record %d after %d", rec.Seq, s.seq)
		}
		b, err := decodeBatch(rec.Payload)
		if err != nil {
			return nil, fmt.Errorf("wal: record %d: %w", rec.Seq, err)
		}
		if err := s.db.InsertBatch(b.Relation, b.Tuples); err != nil {
			return nil, fmt.Errorf("wal: replay record %d: %w", rec.Seq, err)
		}
		s.seq = rec.Seq
	}
	if opts.CheckpointEvery > 0 {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.checkpointLoop()
	}
	return s, nil
}

// DB returns the live writer database recovered by Open. Readers snapshot
// it; all writes must go through Store.InsertBatch so they hit the log.
func (s *Store) DB() *db.Database { return s.db }

// Seq returns the sequence number of the last committed batch.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// CheckpointSeq returns the sequence number the newest durable checkpoint
// covers.
func (s *Store) CheckpointSeq() uint64 {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.ckptSeq
}

// Degraded reports whether the store tripped into read-only mode, and
// why.
func (s *Store) Degraded() (reason string, degraded bool) {
	if r := s.degraded.Load(); r != nil {
		return *r, true
	}
	return "", false
}

// trip records the first degradation reason; later writes keep failing
// with it.
func (s *Store) trip(reason string) {
	if s.degraded.CompareAndSwap(nil, &reason) && s.opts.Logf != nil {
		s.opts.Logf("wal: degrading to read-only: %s", reason)
	}
}

// InsertBatch durably commits one atomic batch: validate, log, fsync,
// apply. On a log or fsync failure nothing is applied in memory, the
// store degrades to read-only, and the error is returned; the batch was
// never acknowledged and recovery applies it only if its record made it
// to disk whole.
func (s *Store) InsertBatch(rel string, tuples []value.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wal: store is closed")
	}
	if r := s.degraded.Load(); r != nil {
		return fmt.Errorf("%w: %s", ErrDegraded, *r)
	}
	if err := s.db.CheckBatch(rel, tuples); err != nil {
		return err // invalid batch: rejected before it reaches the log
	}
	s.encBuf = encodeBatch(s.encBuf[:0], rel, tuples)
	seq := s.seq + 1
	if err := s.log.Append(seq, s.encBuf); err != nil {
		s.trip(err.Error())
		return err
	}
	if !s.opts.NoSync {
		if err := s.log.Sync(); err != nil {
			s.trip(err.Error())
			return err
		}
	}
	if err := s.db.InsertBatch(rel, tuples); err != nil {
		// CheckBatch passed, so this cannot be a validation failure; the
		// in-memory store now disagrees with the log. Fail safe.
		s.trip(fmt.Sprintf("apply after logged commit: %v", err))
		return err
	}
	s.seq = seq
	// Wake every tailer blocked on CommitWatch: there is a new record.
	close(s.commit)
	s.commit = make(chan struct{})
	return nil
}

// Checkpoint serializes the current snapshot into a fresh checkpoint
// directory, commits the manifest, truncates the covered WAL prefix and
// removes the previous checkpoint. The writer is only paused for the WAL
// file swap, never for the serialization. No-op when nothing was
// committed since the last checkpoint or the store is degraded.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if _, bad := s.Degraded(); bad {
		return fmt.Errorf("%w: refusing to checkpoint", ErrDegraded)
	}
	s.mu.Lock()
	snap := s.db.Snapshot()
	seq := s.seq
	startOff := s.log.Size()
	s.mu.Unlock()
	if seq == s.ckptSeq {
		return nil
	}
	if err := s.writeCheckpoint(snap, seq); err != nil {
		return err
	}
	old := s.ckptDir
	s.ckptSeq, s.ckptDir = seq, ckptName(seq)
	// Every record before startOff has seq <= seq and is covered; records
	// appended since land after it and survive the swap.
	s.mu.Lock()
	err := s.log.TruncatePrefix(startOff)
	if err != nil {
		// The append handle may be gone; without it the next commit
		// cannot reach the disk. Fail safe rather than guess.
		s.trip(fmt.Sprintf("wal truncation after checkpoint: %v", err))
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if old != "" && old != s.ckptDir {
		if rmErr := s.fs.RemoveAll(filepath.Join(s.dir, old)); rmErr != nil && s.opts.Logf != nil {
			s.opts.Logf("wal: removing old checkpoint %s: %v", old, rmErr)
		}
	}
	return nil
}

// ckptName is the directory name of the checkpoint covering seq.
func ckptName(seq uint64) string { return fmt.Sprintf("%s%016d", checkpointPref, seq) }

// writeCheckpoint persists snap as checkpoint-<seq> and commits the
// manifest pointing at it. Crash-safe: the directory is written first
// (dbio.Save writes every file atomically), the data-directory entry is
// fsync'd, and the manifest rename is the commit point.
func (s *Store) writeCheckpoint(snap *db.Database, seq uint64) error {
	name := ckptName(seq)
	if err := dbio.Save(snap, filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	manifest := fmt.Sprintf("arithdb-checkpoint v1\nseq %d\ndir %s\n", seq, name)
	if err := writeFileSync(s.fs, filepath.Join(s.dir, manifestName), []byte(manifest)); err != nil {
		return fmt.Errorf("wal: checkpoint manifest: %w", err)
	}
	return nil
}

// readManifest parses the CHECKPOINT manifest; a missing file means a
// fresh directory.
func (s *Store) readManifest() (seq uint64, dir string, err error) {
	data, err := s.fs.ReadFile(filepath.Join(s.dir, manifestName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, "", nil
		}
		return 0, "", fmt.Errorf("wal: read manifest: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 || lines[0] != "arithdb-checkpoint v1" {
		return 0, "", fmt.Errorf("wal: malformed manifest %q", string(data))
	}
	if _, err := fmt.Sscanf(lines[1], "seq %d", &seq); err != nil {
		return 0, "", fmt.Errorf("wal: malformed manifest seq %q", lines[1])
	}
	dir = strings.TrimPrefix(lines[2], "dir ")
	if dir == lines[2] || dir == "" || strings.ContainsAny(dir, "/\\") {
		return 0, "", fmt.Errorf("wal: malformed manifest dir %q", lines[2])
	}
	return seq, dir, nil
}

// sweepOrphans removes checkpoint directories and temp files a crash left
// behind: everything checkpoint-shaped that the manifest does not name.
func (s *Store) sweepOrphans() {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		orphanCkpt := strings.HasPrefix(name, checkpointPref) && name != s.ckptDir
		tmp := strings.HasSuffix(name, ".tmp")
		if orphanCkpt || tmp {
			if err := s.fs.RemoveAll(filepath.Join(s.dir, name)); err != nil && s.opts.Logf != nil {
				s.opts.Logf("wal: sweeping %s: %v", name, err)
			}
		}
	}
}

func (s *Store) checkpointLoop() {
	defer close(s.done)
	t := time.NewTicker(s.opts.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if err := s.Checkpoint(); err != nil && s.opts.Logf != nil {
				s.opts.Logf("wal: background checkpoint: %v", err)
			}
		}
	}
}

// Close stops the background checkpointer, flushes and syncs the log, and
// closes it. Safe to call once after the server has drained; later writes
// fail.
func (s *Store) Close() error {
	if s.stop != nil {
		s.stopOnce.Do(func() { close(s.stop) })
		<-s.done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	// Wake blocked tailers — and leave the channel closed, so tailers
	// arriving later wake immediately and observe the closed store instead
	// of waiting on a commit that will never come.
	close(s.commit)
	if s.log == nil {
		return nil
	}
	// Sync before closing: under NoSync this is what makes the tail of
	// the log durable on a graceful shutdown.
	err := s.log.Sync()
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	s.log = nil
	if _, bad := s.Degraded(); bad {
		return nil // the log was already failing; nothing new to report
	}
	return err
}
