package replica

// End-to-end replica tests against a real durable primary: checkpoint
// bootstrap + log catchup, idempotent reconvergence across an abrupt
// primary crash/restart (no batch double-applied), and mid-run
// re-bootstrap after the primary checkpoints past the replica's cursor.
// BenchmarkReplicaCatchup measures a cold replica catching up a fixed
// backlog.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/server"
	"repro/internal/value"
	"repro/internal/wal"
)

// testPrimary is a durable primary whose process lifecycle the tests
// control: kill() is abrupt (no final checkpoint, connections severed),
// start() recovers from the same directory on the same address.
type testPrimary struct {
	t    testing.TB
	dir  string
	addr string
	ln   net.Listener

	store *wal.Store
	hs    *http.Server
}

func seedFixture() (*db.Database, error) {
	return datagen.Generate(datagen.Config{
		Seed: 4, Products: 40, Orders: 30, Market: 12, Segments: 6,
		NullRate: 0.3, MarketNullRate: 0.6,
	})
}

func newTestPrimary(t testing.TB) *testPrimary {
	p := &testPrimary{t: t, dir: t.TempDir()}
	p.start()
	t.Cleanup(func() { p.kill() })
	return p
}

func (p *testPrimary) start() {
	p.t.Helper()
	addr := p.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		p.t.Fatal(err)
	}
	p.ln = ln
	p.addr = ln.Addr().String()
	store, err := wal.Open(p.dir, wal.Options{Seed: seedFixture})
	if err != nil {
		p.t.Fatal(err)
	}
	p.store = store
	srv, err := server.New(server.Config{
		DB:            store.DB(),
		Durable:       store,
		Replication:   store,
		Engine:        core.Options{Seed: 1},
		ReplHeartbeat: 25 * time.Millisecond,
	})
	if err != nil {
		p.t.Fatal(err)
	}
	p.hs = &http.Server{Handler: srv}
	go p.hs.Serve(ln)
}

// kill crashes the primary: every connection severed, no final
// checkpoint — recovery must come from the WAL alone.
func (p *testPrimary) kill() {
	if p.hs != nil {
		p.hs.Close()
		p.hs = nil
	}
	if p.store != nil {
		p.store.Close()
		p.store = nil
	}
}

func (p *testPrimary) url() string { return "http://" + p.addr }

func (p *testPrimary) insert(n int, tag int) {
	p.t.Helper()
	for i := 0; i < n; i++ {
		batch := []value.Tuple{{value.Base("segR"), value.Num(float64(tag*1000 + i)), value.Num(0.3)}}
		if err := p.store.InsertBatch("Market", batch); err != nil {
			p.t.Fatal(err)
		}
	}
}

func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// dump renders every db observable the replication path must preserve.
func dump(d *db.Database) map[string][]string {
	out := map[string][]string{}
	for _, rel := range d.Schema().Relations() {
		var rows []string
		for _, tu := range d.Tuples(rel.Name) {
			rows = append(rows, tu.String())
		}
		out[rel.Name] = rows
	}
	out["__nulls"] = []string{fmt.Sprint(d.BaseNulls()), fmt.Sprint(d.NumNulls())}
	return out
}

func assertConverged(t testing.TB, rep *Replicator, p *testPrimary) {
	t.Helper()
	waitFor(t, "replica catchup", func() bool { return rep.LastAppliedSeq() == p.store.Seq() })
	if got, want := dump(rep.DB()), dump(p.store.DB()); !reflect.DeepEqual(got, want) {
		t.Fatalf("replica diverged:\n got %v\nwant %v", got, want)
	}
}

func fastCfg(p *testPrimary, dir string) Config {
	return Config{
		Primary:    p.url(),
		Dir:        dir,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
	}
}

// The jitter rng used to seed from the clock unconditionally, making a
// chaos run's backoff schedule unreproducible; Config.JitterSeed pins it.
func TestJitterSeedReproducible(t *testing.T) {
	a, b := newJitterRNG(42), newJitterRNG(42)
	for i := 0; i < 64; i++ {
		if av, bv := a.Int63(), b.Int63(); av != bv {
			t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, av, bv)
		}
	}
	c, d := newJitterRNG(0), newJitterRNG(1)
	same := true
	for i := 0; i < 8; i++ {
		if c.Int63() != d.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("zero seed reproduced the fixed schedule; it must fall back to the clock")
	}
}

func TestReplicaBootstrapAndCatchup(t *testing.T) {
	p := newTestPrimary(t)
	p.insert(5, 1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := Open(ctx, fastCfg(p, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	done := make(chan struct{})
	go func() { rep.Run(ctx); close(done) }()

	assertConverged(t, rep, p)
	if rep.Primary() != p.url() {
		t.Fatalf("Primary() = %q, want %q", rep.Primary(), p.url())
	}
	// Heartbeats keep the observed primary frontier current.
	waitFor(t, "primarySeq heartbeat", func() bool { return rep.PrimarySeq() == p.store.Seq() })

	// Live tail: new commits flow without reconnects.
	p.insert(3, 2)
	assertConverged(t, rep, p)

	cancel()
	<-done
}

// TestReplicaSurvivesPrimaryCrash kills the primary abruptly mid-tail,
// restarts it on the same address, keeps writing, and requires the
// replica to reconverge with every batch applied exactly once — the
// seq-cursor idempotence under reconnect.
func TestReplicaSurvivesPrimaryCrash(t *testing.T) {
	p := newTestPrimary(t)
	p.insert(4, 1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := Open(ctx, fastCfg(p, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	done := make(chan struct{})
	go func() { rep.Run(ctx); close(done) }()
	assertConverged(t, rep, p)

	for round := 0; round < 3; round++ {
		p.kill()
		// Give the replica a moment to notice and start its backoff loop.
		time.Sleep(10 * time.Millisecond)
		p.start()
		p.insert(3, 10+round)
		assertConverged(t, rep, p)
		// Exactly-once: the replica's Market row count matches the primary's
		// (a double-applied batch would show as surplus rows), and the seq
		// frontier matches the batch count.
		if got, want := rep.DB().Len("Market"), p.store.DB().Len("Market"); got != want {
			t.Fatalf("round %d: replica Market has %d rows, want %d", round, got, want)
		}
		if rep.LastAppliedSeq() != p.store.Seq() {
			t.Fatalf("round %d: seq %d vs %d", round, rep.LastAppliedSeq(), p.store.Seq())
		}
	}
	cancel()
	<-done
}

// TestReplicaRebootstrapsAfterTruncation parks the replica, lets the
// primary checkpoint past its cursor, and requires the restarted catchup
// loop to adopt the newer checkpoint (410 → re-bootstrap → converge).
func TestReplicaRebootstrapsAfterTruncation(t *testing.T) {
	p := newTestPrimary(t)
	p.insert(3, 1)

	ctx1, cancel1 := context.WithCancel(context.Background())
	rep, err := Open(ctx1, fastCfg(p, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	done1 := make(chan struct{})
	go func() { rep.Run(ctx1); close(done1) }()
	assertConverged(t, rep, p)
	cancel1()
	<-done1

	// While the replica is away: more writes, then a checkpoint that
	// truncates the entire log prefix — including the replica's cursor.
	p.insert(4, 2)
	if err := p.store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	p.insert(2, 3)

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	done2 := make(chan struct{})
	go func() { rep.Run(ctx2); close(done2) }()
	assertConverged(t, rep, p)
	if rep.LastAppliedSeq() != 9 {
		t.Fatalf("replica at seq %d, want 9", rep.LastAppliedSeq())
	}
	cancel2()
	<-done2
}

// BenchmarkReplicaCatchup measures a cold replica bootstrapping and
// replaying a 50-batch backlog from a local primary.
func BenchmarkReplicaCatchup(b *testing.B) {
	p := newTestPrimary(b)
	p.insert(50, 1)
	want := p.store.Seq()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		rep, err := Open(ctx, fastCfg(p, b.TempDir()))
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{})
		go func() { rep.Run(ctx); close(done) }()
		for rep.LastAppliedSeq() != want {
			time.Sleep(200 * time.Microsecond)
		}
		cancel()
		<-done
		rep.Close()
	}
}
