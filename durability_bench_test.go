package arithdb_test

// BenchmarkInsertDurable prices durability on the write path: each op is
// one committed batch through the WAL store — validate, encode, append,
// fsync, apply — against the in-memory InsertBatch baseline. The nosync
// variant isolates the fsync cost from the logging cost. The alloc
// budget (scripts/alloc_budget.txt) guards the logging overhead: the
// encode path reuses one buffer, so a committed batch should stay within
// a few dozen allocations over the in-memory baseline no matter how the
// storage stack evolves.

import (
	"fmt"
	"math/rand"
	"testing"

	arithdb "repro"
	"repro/internal/wal"
)

func benchBatches(n int) [][]arithdb.Tuple {
	rng := rand.New(rand.NewSource(9))
	batches := make([][]arithdb.Tuple, n)
	for i := range batches {
		batch := make([]arithdb.Tuple, 4)
		for j := range batch {
			batch[j] = arithdb.Tuple{
				arithdb.Base(fmt.Sprintf("seg%d", rng.Intn(6))),
				arithdb.Num(float64(rng.Intn(200)) / 2),
				arithdb.Num(float64(rng.Intn(10)) / 10),
			}
		}
		batches[i] = batch
	}
	return batches
}

func BenchmarkInsertDurable(b *testing.B) {
	seed := func() (*arithdb.Database, error) {
		return arithdb.GenerateSales(arithdb.SalesConfig{
			Seed: 11, Products: 60, Orders: 45, Market: 20, Segments: 6,
			NullRate: 0.3, MarketNullRate: 0.6,
		})
	}
	runStore := func(b *testing.B, noSync bool) {
		s, err := wal.Open(b.TempDir(), wal.Options{Seed: seed, NoSync: noSync})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		batches := benchBatches(b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.InsertBatch("Market", batches[i]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("wal", func(b *testing.B) { runStore(b, false) })
	b.Run("wal-nosync", func(b *testing.B) { runStore(b, true) })
	b.Run("memory", func(b *testing.B) {
		d, err := seed()
		if err != nil {
			b.Fatal(err)
		}
		batches := benchBatches(b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.InsertBatch("Market", batches[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
