package arithdb_test

// Full-stack durability tests: a wal.Store over the sales fixture is
// grown by random batches, the process is "crashed" by truncating the
// write-ahead log at record boundaries and at torn offsets inside
// records, and the recovered database must answer queries byte-for-byte
// like a reference database that applied exactly the durable prefix —
// including measured confidences, bit for bit. This is the acceptance
// check of ISSUE 6: no fsync-acknowledged batch is ever lost, and a torn
// tail never resurrects a partial one.

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	arithdb "repro"
	"repro/internal/wal"
)

const walFile = "wal.log"

// TestDurableRecoveryQueryParity crashes the store at every acknowledged
// record boundary plus random torn offsets and checks query parity after
// recovery.
func TestDurableRecoveryQueryParity(t *testing.T) {
	dir := t.TempDir()
	s, err := wal.Open(dir, wal.Options{Seed: func() (*arithdb.Database, error) {
		return salesFixture(t), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	query, err := arithdb.ParseSQL(arithdb.QueryCompetitiveAdvantage)
	if err != nil {
		t.Fatal(err)
	}
	eng := arithdb.NewEngine(arithdb.EngineOptions{Seed: 7})

	// Grow by durable batches, recording the WAL boundary after each
	// acknowledged commit (the file is fsync'd per batch, so its size IS
	// the durable frontier) and the reference evaluation fingerprint of
	// every prefix.
	rng := rand.New(rand.NewSource(21))
	ref := salesFixture(t)
	refFP := []string{evalFingerprint(t, eng, query, ref)}
	const n = 12
	bounds := []int64{0}
	var batches [][]arithdb.Tuple
	for i := 0; i < n; i++ {
		batch := make([]arithdb.Tuple, 1+rng.Intn(3))
		for j := range batch {
			batch[j] = randMarketTuple(rng, ref)
		}
		if err := s.InsertBatch("Market", batch); err != nil {
			t.Fatal(err)
		}
		if err := ref.InsertBatch("Market", batch); err != nil {
			t.Fatal(err)
		}
		batches = append(batches, batch)
		st, err := os.Stat(filepath.Join(dir, walFile))
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, st.Size())
		refFP = append(refFP, evalFingerprint(t, eng, query, ref))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walData, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}

	// referenceAt rebuilds the database holding exactly k durable batches.
	referenceAt := func(k int) *arithdb.Database {
		d := salesFixture(t)
		for _, b := range batches[:k] {
			if err := d.InsertBatch("Market", b); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}

	cuts := map[int64]bool{}
	for _, b := range bounds {
		cuts[b] = true
	}
	for i := 0; i < 8; i++ {
		cuts[rng.Int63n(int64(len(walData))+1)] = true
	}
	for cut := range cuts {
		durable := 0
		for _, b := range bounds[1:] {
			if b <= cut {
				durable++
			}
		}
		crashDir := t.TempDir()
		if err := os.CopyFS(crashDir, os.DirFS(dir)); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, walFile), walData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := wal.Open(crashDir, wal.Options{})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		if got := rs.Seq(); got != uint64(durable) {
			t.Fatalf("cut %d: recovered %d batches, want %d durable", cut, got, durable)
		}
		if got := evalFingerprint(t, eng, query, rs.DB()); got != refFP[durable] {
			t.Fatalf("cut %d (%d durable): recovered evaluation diverged:\n--- recovered\n%s--- reference\n%s",
				cut, durable, got, refFP[durable])
		}
		// The recovered store accepts new durable writes.
		if err := rs.InsertBatch("Market", []arithdb.Tuple{randMarketTuple(rng, rs.DB())}); err != nil {
			t.Fatalf("cut %d: insert after recovery: %v", cut, err)
		}
		rs.Close()
	}

	// Measured confidences on a full recovery: bit-identical to the
	// reference, including the sampling bits (per-candidate seeding makes
	// measurement a pure function of the database state).
	fullDir := t.TempDir()
	if err := os.CopyFS(fullDir, os.DirFS(dir)); err != nil {
		t.Fatal(err)
	}
	rs, err := wal.Open(fullDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	got, err := arithdb.NewSession(rs.DB(), arithdb.EngineOptions{Seed: 7}).MeasureSQLQuery(query, 0.1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	want, err := arithdb.NewSession(referenceAt(n), arithdb.EngineOptions{Seed: 7}).MeasureSQLQuery(query, 0.1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("candidates %d vs %d", len(got.Candidates), len(want.Candidates))
	}
	for i := range got.Candidates {
		g, w := got.Candidates[i], want.Candidates[i]
		if !g.Tuple.Equal(w.Tuple) ||
			math.Float64bits(g.Measure.Value) != math.Float64bits(w.Measure.Value) {
			t.Fatalf("candidate %d: (%v, %v) vs (%v, %v)", i, g.Tuple, g.Measure.Value, w.Tuple, w.Measure.Value)
		}
	}
}

// TestDurableCheckpointRecoveryParity checkpoints mid-stream, keeps
// writing, and verifies recovery (checkpoint + WAL tail) reproduces the
// reference evaluation — the CSV round-trip of the checkpoint must be
// query-lossless.
func TestDurableCheckpointRecoveryParity(t *testing.T) {
	dir := t.TempDir()
	s, err := wal.Open(dir, wal.Options{Seed: func() (*arithdb.Database, error) {
		return salesFixture(t), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	query, err := arithdb.ParseSQL(arithdb.QueryCompetitiveAdvantage)
	if err != nil {
		t.Fatal(err)
	}
	eng := arithdb.NewEngine(arithdb.EngineOptions{Seed: 7})
	rng := rand.New(rand.NewSource(8))
	ref := salesFixture(t)
	for i := 0; i < 18; i++ {
		batch := []arithdb.Tuple{randMarketTuple(rng, ref)}
		if err := s.InsertBatch("Market", batch); err != nil {
			t.Fatal(err)
		}
		if err := ref.InsertBatch("Market", batch); err != nil {
			t.Fatal(err)
		}
		if i == 9 {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if rs.CheckpointSeq() != 10 || rs.Seq() != 18 {
		t.Fatalf("recovered seq %d / checkpoint %d, want 18 / 10", rs.Seq(), rs.CheckpointSeq())
	}
	if got, want := evalFingerprint(t, eng, query, rs.DB()), evalFingerprint(t, eng, query, ref); got != want {
		t.Fatalf("checkpoint+tail recovery diverged:\n--- recovered\n%s--- reference\n%s", got, want)
	}
}
