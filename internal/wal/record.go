package wal

// Record framing and the insert-batch payload codec.
//
// One log record is
//
//	uint32  length of what follows (little endian): 12 + len(payload)
//	uint32  CRC32C over seq ‖ payload
//	uint64  sequence number of the batch (strictly increasing)
//	bytes   payload
//
// The length prefix bounds the read, the checksum rejects torn or
// corrupted bytes, and the sequence number lets replay skip records a
// checkpoint already covers (after a crash between manifest commit and
// log truncation the old records are still on disk).
//
// The payload is a self-delimiting binary encoding of one insert batch:
//
//	relation name   uvarint length + bytes
//	tuple count     uvarint
//	arity           uvarint
//	values          per value: one kind byte, then
//	                  BaseConst  uvarint length + bytes
//	                  BaseNull   uvarint null ID
//	                  NumConst   8-byte little-endian IEEE-754 bits
//	                  NumNull    uvarint null ID
//
// Floats round-trip by bit pattern, so NaN payloads, -0 and infinities
// replay bit-identically — the recovery fuzz checks measures, which hash
// these bits.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/value"
)

// recHeaderSize is the fixed record prefix: length + crc + seq.
const recHeaderSize = 4 + 4 + 8

// maxRecordSize bounds one record so a corrupted length prefix cannot
// demand an absurd allocation during recovery.
const maxRecordSize = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC32C the log frames records with: computed over
// seq ‖ payload, exactly as appendRecord stores and parseRecord checks
// it. Replication re-verifies shipped records (and checkpoint files,
// bound to their covering seq) with the same function on both ends.
func Checksum(seq uint64, payload []byte) uint32 {
	var seqBuf [8]byte
	binary.LittleEndian.PutUint64(seqBuf[:], seq)
	crc := crc32.Checksum(seqBuf[:], castagnoli)
	return crc32.Update(crc, castagnoli, payload)
}

// DecodeBatch parses a WAL record payload into the insert batch it logs.
// Replicas decode shipped payloads with it before replaying; errors mean
// real corruption, since the checksum already vouched for the bytes.
func DecodeBatch(payload []byte) (Batch, error) { return decodeBatch(payload) }

// appendRecord frames seq+payload onto buf and returns the extended
// slice.
func appendRecord(buf []byte, seq uint64, payload []byte) []byte {
	n := len(buf)
	buf = append(buf, make([]byte, recHeaderSize)...)
	buf = append(buf, payload...)
	body := buf[n+8:] // seq ‖ payload, the checksummed region
	binary.LittleEndian.PutUint64(body[:8], seq)
	binary.LittleEndian.PutUint32(buf[n:], uint32(8+len(payload)))
	binary.LittleEndian.PutUint32(buf[n+4:], crc32.Checksum(body, castagnoli))
	return buf
}

// parseRecord decodes the record starting at data. ok is false when the
// bytes are torn or corrupted (short header, short body, length out of
// range, or checksum mismatch) — recovery truncates there. next is the
// offset just past the record when ok.
func parseRecord(data []byte) (seq uint64, payload []byte, next int, ok bool) {
	if len(data) < recHeaderSize {
		return 0, nil, 0, false
	}
	length := binary.LittleEndian.Uint32(data)
	if length < 8 || length > maxRecordSize {
		return 0, nil, 0, false
	}
	end := 8 + int(length)
	if len(data) < end {
		return 0, nil, 0, false
	}
	body := data[8:end]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[4:]) {
		return 0, nil, 0, false
	}
	return binary.LittleEndian.Uint64(body[:8]), body[8:], end, true
}

// Batch is one decoded insert batch: the unit of commit, of logging and
// of replay.
type Batch struct {
	Relation string
	Tuples   []value.Tuple
}

// value kind tags of the payload encoding. Independent of value.Kind's
// numeric values so the on-disk format survives refactors.
const (
	tagBaseConst = 0
	tagBaseNull  = 1
	tagNumConst  = 2
	tagNumNull   = 3
)

// encodeBatch appends the payload encoding of a batch onto buf.
func encodeBatch(buf []byte, rel string, tuples []value.Tuple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(rel)))
	buf = append(buf, rel...)
	buf = binary.AppendUvarint(buf, uint64(len(tuples)))
	arity := 0
	if len(tuples) > 0 {
		arity = len(tuples[0])
	}
	buf = binary.AppendUvarint(buf, uint64(arity))
	for _, t := range tuples {
		for _, v := range t {
			switch v.Kind() {
			case value.BaseConst:
				s := v.Str()
				buf = append(buf, tagBaseConst)
				buf = binary.AppendUvarint(buf, uint64(len(s)))
				buf = append(buf, s...)
			case value.BaseNull:
				buf = append(buf, tagBaseNull)
				buf = binary.AppendUvarint(buf, uint64(v.NullID()))
			case value.NumConst:
				buf = append(buf, tagNumConst)
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
			case value.NumNull:
				buf = append(buf, tagNumNull)
				buf = binary.AppendUvarint(buf, uint64(v.NullID()))
			}
		}
	}
	return buf
}

// decodeBatch parses a payload produced by encodeBatch. Errors mean real
// corruption — the checksum already vouched for the bytes — so replay
// fails loudly instead of truncating.
func decodeBatch(payload []byte) (Batch, error) {
	var b Batch
	rel, payload, err := decodeString(payload)
	if err != nil {
		return b, fmt.Errorf("wal: batch relation: %w", err)
	}
	b.Relation = rel
	count, payload, err := decodeUvarint(payload)
	if err != nil {
		return b, fmt.Errorf("wal: batch tuple count: %w", err)
	}
	arity, payload, err := decodeUvarint(payload)
	if err != nil {
		return b, fmt.Errorf("wal: batch arity: %w", err)
	}
	if count > uint64(len(payload)) || arity > uint64(len(payload))+1 {
		// Each tuple costs at least one byte per value; reject absurd
		// counts before allocating.
		return b, fmt.Errorf("wal: batch claims %d tuples of arity %d in %d bytes", count, arity, len(payload))
	}
	b.Tuples = make([]value.Tuple, count)
	for i := range b.Tuples {
		t := make(value.Tuple, arity)
		for j := range t {
			if len(payload) == 0 {
				return b, fmt.Errorf("wal: batch truncated at tuple %d", i)
			}
			tag := payload[0]
			payload = payload[1:]
			switch tag {
			case tagBaseConst:
				var s string
				if s, payload, err = decodeString(payload); err != nil {
					return b, fmt.Errorf("wal: tuple %d: %w", i, err)
				}
				t[j] = value.Base(s)
			case tagBaseNull:
				var id uint64
				if id, payload, err = decodeUvarint(payload); err != nil {
					return b, fmt.Errorf("wal: tuple %d: %w", i, err)
				}
				t[j] = value.NullBase(int(id))
			case tagNumConst:
				if len(payload) < 8 {
					return b, fmt.Errorf("wal: tuple %d: short float", i)
				}
				t[j] = value.Num(math.Float64frombits(binary.LittleEndian.Uint64(payload)))
				payload = payload[8:]
			case tagNumNull:
				var id uint64
				if id, payload, err = decodeUvarint(payload); err != nil {
					return b, fmt.Errorf("wal: tuple %d: %w", i, err)
				}
				t[j] = value.NullNum(int(id))
			default:
				return b, fmt.Errorf("wal: tuple %d: unknown value tag %d", i, tag)
			}
		}
		b.Tuples[i] = t
	}
	if len(payload) != 0 {
		return b, fmt.Errorf("wal: %d bytes trailing the batch", len(payload))
	}
	return b, nil
}

func decodeUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad uvarint")
	}
	return v, data[n:], nil
}

func decodeString(data []byte) (string, []byte, error) {
	n, data, err := decodeUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(data)) {
		return "", nil, fmt.Errorf("string length %d exceeds %d remaining bytes", n, len(data))
	}
	return string(data[:n]), data[n:], nil
}
