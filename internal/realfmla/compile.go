package realfmla

import (
	"fmt"
	"strings"
)

// Compiled is a formula preprocessed for repeated evaluation: syntactically
// identical atoms are deduplicated and evaluated once per point or
// direction, and the Boolean structure is evaluated over the cached truth
// values. Translated formulas share massive numbers of repeated atoms
// (quantifier expansion reuses the same comparisons), so this is the
// difference between the AFPRAS being practical or not.
type Compiled struct {
	atoms []Atom
	root  cnode
	// scratch truth buffer reused across evaluations.
	truth []bool
	// scratch "computed" flags for lazy atom evaluation.
	done []bool
}

type cnodeKind uint8

const (
	cTrue cnodeKind = iota
	cFalse
	cAtom
	cNot
	cAnd
	cOr
)

type cnode struct {
	kind cnodeKind
	atom int
	kids []cnode
}

// Compile preprocesses a formula.
func Compile(f Formula) *Compiled {
	c := &Compiled{}
	index := make(map[string]int)
	c.root = c.build(f, index)
	c.truth = make([]bool, len(c.atoms))
	c.done = make([]bool, len(c.atoms))
	return c
}

func atomKey(a Atom) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", a.Rel)
	b.WriteString(a.P.Key())
	return b.String()
}

func (c *Compiled) build(f Formula, index map[string]int) cnode {
	switch g := f.(type) {
	case FTrue:
		return cnode{kind: cTrue}
	case FFalse:
		return cnode{kind: cFalse}
	case FAtom:
		key := atomKey(g.A)
		i, ok := index[key]
		if !ok {
			i = len(c.atoms)
			c.atoms = append(c.atoms, g.A)
			index[key] = i
		}
		return cnode{kind: cAtom, atom: i}
	case FNot:
		return cnode{kind: cNot, kids: []cnode{c.build(g.F, index)}}
	case FAnd:
		kids := make([]cnode, len(g.Fs))
		for i, h := range g.Fs {
			kids[i] = c.build(h, index)
		}
		return cnode{kind: cAnd, kids: kids}
	case FOr:
		kids := make([]cnode, len(g.Fs))
		for i, h := range g.Fs {
			kids[i] = c.build(h, index)
		}
		return cnode{kind: cOr, kids: kids}
	}
	panic(fmt.Sprintf("realfmla: unknown node %T", f))
}

// NumAtoms returns the number of distinct atoms after deduplication.
func (c *Compiled) NumAtoms() int { return len(c.atoms) }

// Atoms returns the deduplicated atoms.
func (c *Compiled) Atoms() []Atom { return c.atoms }

// AsymEval reports the asymptotic truth of the formula along dir,
// evaluating each distinct atom lazily at most once.
func (c *Compiled) AsymEval(dir []float64, tol float64) bool {
	for i := range c.done {
		c.done[i] = false
	}
	return c.eval(c.root, func(i int) bool {
		if !c.done[i] {
			c.truth[i] = c.atoms[i].AsymEval(dir, tol)
			c.done[i] = true
		}
		return c.truth[i]
	})
}

// Eval reports the truth of the formula at the point x, evaluating each
// distinct atom lazily at most once.
func (c *Compiled) Eval(x []float64) bool {
	for i := range c.done {
		c.done[i] = false
	}
	return c.eval(c.root, func(i int) bool {
		if !c.done[i] {
			c.truth[i] = c.atoms[i].Eval(x)
			c.done[i] = true
		}
		return c.truth[i]
	})
}

// EvalWith evaluates the formula with a caller-supplied atom decision
// procedure (still cached per distinct atom): used by the mixed
// finite/asymptotic evaluation of range-constrained measures.
func (c *Compiled) EvalWith(decide func(Atom) bool) bool {
	for i := range c.done {
		c.done[i] = false
	}
	return c.eval(c.root, func(i int) bool {
		if !c.done[i] {
			c.truth[i] = decide(c.atoms[i])
			c.done[i] = true
		}
		return c.truth[i]
	})
}

func (c *Compiled) eval(n cnode, atom func(int) bool) bool {
	switch n.kind {
	case cTrue:
		return true
	case cFalse:
		return false
	case cAtom:
		return atom(n.atom)
	case cNot:
		return !c.eval(n.kids[0], atom)
	case cAnd:
		for _, k := range n.kids {
			if !c.eval(k, atom) {
				return false
			}
		}
		return true
	case cOr:
		for _, k := range n.kids {
			if c.eval(k, atom) {
				return true
			}
		}
		return false
	}
	panic("realfmla: bad compiled node")
}
