package client

// Failover tests: reads advance stickily across the endpoint list on
// transport errors and unavailable/degraded 503s, writes stay pinned to
// the primary and are never silently re-routed or retried over a
// transport error, per-attempt deadlines turn a hung endpoint into a
// fast failover, and the measure stream resumes mid-query — delivering
// each candidate exactly once — or surfaces ErrStreamInterrupted when it
// cannot.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/value"
	"repro/internal/wire"
)

// counting wraps a handler with a request counter.
type counting struct {
	calls atomic.Int32
	h     http.HandlerFunc
}

func (c *counting) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.calls.Add(1)
	c.h(w, r)
}

func errJSON(status int, code string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(wire.ErrorResponse{Error: "nope", Code: code})
	}
}

func TestReadFailsOverOn503AndSticks(t *testing.T) {
	a := &counting{h: errJSON(http.StatusServiceUnavailable, wire.CodeShuttingDown)}
	b := &counting{h: okJSON(wire.InfoResponse{Tuples: 5})}
	hsA, hsB := httptest.NewServer(a), httptest.NewServer(b)
	defer hsA.Close()
	defer hsB.Close()

	c := NewFailover([]string{hsA.URL, hsB.URL}).WithRetry(fastRetry)
	info, err := c.Info(context.Background())
	if err != nil || info.Tuples != 5 {
		t.Fatalf("info = %+v, %v; want Tuples 5 via failover", info, err)
	}
	if a.calls.Load() != 1 || b.calls.Load() != 1 {
		t.Fatalf("A saw %d, B saw %d; want one attempt each", a.calls.Load(), b.calls.Load())
	}
	if c.Current() != hsB.URL {
		t.Fatalf("current endpoint %q, want the fallback %q", c.Current(), hsB.URL)
	}
	// Sticky: the next read goes straight to B.
	if _, err := c.Info(context.Background()); err != nil {
		t.Fatal(err)
	}
	if a.calls.Load() != 1 || b.calls.Load() != 2 {
		t.Fatalf("after sticky read: A %d, B %d; want 1 and 2", a.calls.Load(), b.calls.Load())
	}
}

func TestReadFailsOverOnDegraded(t *testing.T) {
	a := &counting{h: errJSON(http.StatusServiceUnavailable, wire.CodeDegraded)}
	b := &counting{h: okJSON(wire.InfoResponse{Tuples: 7})}
	hsA, hsB := httptest.NewServer(a), httptest.NewServer(b)
	defer hsA.Close()
	defer hsB.Close()

	// A single-endpoint client must NOT retry a sticky degraded 503 —
	// that guarantee predates failover and stays.
	c1 := New(hsA.URL).WithRetry(fastRetry)
	if _, err := c1.Info(context.Background()); err == nil {
		t.Fatal("degraded read succeeded without a fallback")
	}
	if a.calls.Load() != 1 {
		t.Fatalf("single-endpoint client made %d attempts on degraded, want 1", a.calls.Load())
	}

	// With a fallback the read fails over instead.
	a.calls.Store(0)
	c2 := NewFailover([]string{hsA.URL, hsB.URL}).WithRetry(fastRetry)
	info, err := c2.Info(context.Background())
	if err != nil || info.Tuples != 7 {
		t.Fatalf("info over degraded primary = %+v, %v", info, err)
	}
	if a.calls.Load() != 1 || b.calls.Load() != 1 {
		t.Fatalf("A %d, B %d; want one attempt each", a.calls.Load(), b.calls.Load())
	}
}

func TestWritesPinToPrimaryAndNeverFailOver(t *testing.T) {
	b := &counting{h: okJSON(wire.InsertResponse{Inserted: 1})}
	hsB := httptest.NewServer(b)
	defer hsB.Close()

	// Dead primary: its port is closed, so the insert sees a transport
	// error. It must surface immediately — no retry (the attempt's fate is
	// unknown) and, above all, no re-route to the replica.
	hsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := hsA.URL
	hsA.Close()

	c := NewFailover([]string{deadURL, hsB.URL}).WithRetry(fastRetry)
	if _, err := c.Insert(context.Background(), "R", []value.Tuple{{value.Num(1)}}); err == nil {
		t.Fatal("insert against a dead primary succeeded")
	}
	if b.calls.Load() != 0 {
		t.Fatalf("replica saw %d write attempts, want 0", b.calls.Load())
	}

	// Reads over the same client DO fail over.
	bRead := &counting{h: okJSON(wire.InfoResponse{Tuples: 3})}
	hsBR := httptest.NewServer(bRead)
	defer hsBR.Close()
	c2 := NewFailover([]string{deadURL, hsBR.URL}).WithRetry(fastRetry)
	info, err := c2.Info(context.Background())
	if err != nil || info.Tuples != 3 {
		t.Fatalf("read over dead primary = %+v, %v", info, err)
	}
	// And after failing over for reads, writes still target the primary.
	if _, err := c2.Insert(context.Background(), "R", []value.Tuple{{value.Num(1)}}); err == nil {
		t.Fatal("insert silently followed the read failover")
	}
	if bRead.calls.Load() != 1 {
		t.Fatalf("fallback saw %d calls, want only the 1 read", bRead.calls.Load())
	}
}

func TestAttemptTimeoutFailsOverHungEndpoint(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	a := &counting{h: func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}}
	b := &counting{h: okJSON(wire.InfoResponse{Tuples: 9})}
	hsA, hsB := httptest.NewServer(a), httptest.NewServer(b)
	defer hsA.Close()
	defer hsB.Close()

	c := NewFailover([]string{hsA.URL, hsB.URL}).WithRetry(fastRetry).WithAttemptTimeout(50 * time.Millisecond)
	start := time.Now()
	info, err := c.Info(context.Background())
	if err != nil || info.Tuples != 9 {
		t.Fatalf("info over hung primary = %+v, %v", info, err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("failover off a hung endpoint took %v", elapsed)
	}
	if b.calls.Load() != 1 {
		t.Fatalf("fallback saw %d calls, want 1", b.calls.Load())
	}
}

// streamHandler scripts the measure stream per request number.
type streamHandler struct {
	calls atomic.Int32
	serve func(n int32, w http.ResponseWriter)
}

func (s *streamHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.serve(s.calls.Add(1), w)
}

func writeEvent(w http.ResponseWriter, ev wire.Event) {
	blob, _ := json.Marshal(ev)
	_, _ = w.Write(append(blob, '\n'))
	w.(http.Flusher).Flush()
}

func candidateEvent(idx int) wire.Event {
	return wire.Event{Event: wire.EventCandidate, Idx: idx, Candidate: &wire.MeasuredCandidate{}}
}

func TestStreamResumesAndDeliversExactlyOnce(t *testing.T) {
	h := &streamHandler{serve: func(n int32, w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if n == 1 {
			// First connection: two candidates, then the stream dies without
			// its done event (server crash shape).
			writeEvent(w, candidateEvent(0))
			writeEvent(w, candidateEvent(1))
			return
		}
		// Resume: the full stream from the top — the client must skip the
		// replayed candidates 0 and 1.
		for i := 0; i < 4; i++ {
			writeEvent(w, candidateEvent(i))
		}
		writeEvent(w, wire.Event{Event: wire.EventDone, Count: 4})
	}}
	hs := httptest.NewServer(h)
	defer hs.Close()

	var got []int
	c := NewWith(hs.URL, hs.Client()).WithRetry(fastRetry)
	done, err := c.MeasureSQLStream(context.Background(), "SELECT 1", 0.1, 0.1, func(ev wire.Event) error {
		got = append(got, ev.Idx)
		return nil
	})
	if err != nil {
		t.Fatalf("stream with resume: %v", err)
	}
	if done.Count != 4 {
		t.Fatalf("done %+v, want count 4", done)
	}
	if fmt.Sprint(got) != "[0 1 2 3]" {
		t.Fatalf("yield saw %v, want each candidate exactly once in order", got)
	}
	if h.calls.Load() != 2 {
		t.Fatalf("server saw %d connections, want 2", h.calls.Load())
	}
}

func TestStreamInterruptedSurfacesSentinel(t *testing.T) {
	h := &streamHandler{serve: func(n int32, w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		writeEvent(w, candidateEvent(0))
		// Always dies before done.
	}}
	hs := httptest.NewServer(h)
	defer hs.Close()

	var got []int
	c := NewWith(hs.URL, hs.Client()).WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
	_, err := c.MeasureSQLStream(context.Background(), "SELECT 1", 0.1, 0.1, func(ev wire.Event) error {
		got = append(got, ev.Idx)
		return nil
	})
	if !errors.Is(err, ErrStreamInterrupted) {
		t.Fatalf("exhausted stream returned %v, want ErrStreamInterrupted", err)
	}
	if fmt.Sprint(got) != "[0]" {
		t.Fatalf("yield saw %v, want the delivered prefix [0]", got)
	}
	if h.calls.Load() != 2 {
		t.Fatalf("server saw %d connections, want both attempts", h.calls.Load())
	}

	// Without retries a started stream fails on the first cut, same
	// sentinel.
	h.calls.Store(0)
	c2 := NewWith(hs.URL, hs.Client())
	if _, err := c2.MeasureSQLStream(context.Background(), "SELECT 1", 0.1, 0.1, func(wire.Event) error { return nil }); !errors.Is(err, ErrStreamInterrupted) {
		t.Fatalf("no-retry stream returned %v, want ErrStreamInterrupted", err)
	}
}

func TestStreamTerminalErrorsDoNotResume(t *testing.T) {
	// A server-computed error event is terminal: resuming would re-run a
	// query the server already rejected.
	h := &streamHandler{serve: func(n int32, w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		writeEvent(w, wire.Event{Event: wire.EventError, Error: "bad query"})
	}}
	hs := httptest.NewServer(h)
	defer hs.Close()
	c := NewWith(hs.URL, hs.Client()).WithRetry(fastRetry)
	_, err := c.MeasureSQLStream(context.Background(), "SELECT 1", 0.1, 0.1, func(wire.Event) error { return nil })
	var se *ServerError
	if !errors.As(err, &se) || se.Msg != "bad query" {
		t.Fatalf("error event surfaced as %v", err)
	}
	if h.calls.Load() != 1 {
		t.Fatalf("server saw %d connections after a terminal error, want 1", h.calls.Load())
	}

	// A yield error is the caller's own abort — also terminal.
	h2 := &streamHandler{serve: func(n int32, w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		writeEvent(w, candidateEvent(0))
		writeEvent(w, wire.Event{Event: wire.EventDone})
	}}
	hs2 := httptest.NewServer(h2)
	defer hs2.Close()
	c2 := NewWith(hs2.URL, hs2.Client()).WithRetry(fastRetry)
	boom := errors.New("stop")
	if _, err := c2.MeasureSQLStream(context.Background(), "SELECT 1", 0.1, 0.1, func(wire.Event) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("yield abort surfaced as %v", err)
	}
	if h2.calls.Load() != 1 {
		t.Fatalf("server saw %d connections after a yield abort, want 1", h2.calls.Load())
	}
}
