package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/wire"
)

// TestServerStreamingOrder: the incrementally delivered top-k stream is
// exactly the final slice result — consecutive indices from 0 (so no
// reordering and no duplicates), every prefix of the stream a prefix of
// the buffered response, LIMIT respected, and a terminal done event
// whose summary matches.
func TestServerStreamingOrder(t *testing.T) {
	opts := core.Options{Seed: 7}
	_, c, _ := newTestServer(t, Config{Engine: opts})
	ctx := context.Background()

	for _, src := range testWorkloads {
		full, err := c.MeasureSQL(ctx, src, 0.05, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		done, err := c.MeasureSQLStream(ctx, src, 0.05, 0.25, func(ev wire.Event) error {
			if ev.Idx != next {
				t.Fatalf("stream idx %d, want %d (reordered or duplicated)", ev.Idx, next)
			}
			if next >= full.Count {
				t.Fatalf("stream delivered %d candidates, beyond the final %d (LIMIT violated)", next+1, full.Count)
			}
			// The prefix property: candidate i of the stream IS candidate
			// i of the buffered result, bit for bit.
			want, err := full.Candidates[ev.Idx].Measure.Result()
			if err != nil {
				t.Fatal(err)
			}
			wantTuple, err := wire.ToTuple(full.Candidates[ev.Idx].Tuple)
			if err != nil {
				t.Fatal(err)
			}
			assertCandidateParity(t, "stream", ev.Idx, *ev.Candidate,
				core.MeasuredCandidate{Tuple: wantTuple, Measure: want})
			next++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if next != full.Count {
			t.Fatalf("stream delivered %d candidates, want %d", next, full.Count)
		}
		if done.Count != full.Count || done.Derivations != full.Derivations {
			t.Fatalf("done event %d/%d, want %d/%d", done.Count, done.Derivations, full.Count, full.Derivations)
		}
		if len(done.NullIDs) != len(full.NullIDs) {
			t.Fatalf("done nullIds len %d, want %d", len(done.NullIDs), len(full.NullIDs))
		}
	}
}

// TestServerStreamingSSE: the same stream under Accept: text/event-stream
// uses SSE framing with matching event names and payloads.
func TestServerStreamingSSE(t *testing.T) {
	_, _, hts := newTestServer(t, Config{Engine: core.Options{Seed: 7}})
	src := testWorkloads[3] // LIMIT 6 workload

	body, err := json.Marshal(wire.MeasureRequest{SQL: src, Eps: 0.05, Delta: 0.25, Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, hts.URL+"/v1/sql/measure", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := hts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var events, datas, candidates int
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			events++
			switch name := strings.TrimPrefix(line, "event: "); name {
			case wire.EventCandidate:
				candidates++
			case wire.EventDone:
				sawDone = true
			case wire.EventError:
				t.Fatalf("error event in SSE stream")
			}
		case strings.HasPrefix(line, "data: "):
			datas++
		case line == "":
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events == 0 || events != datas || !sawDone || candidates == 0 || candidates > 6 {
		t.Fatalf("SSE shape: %d events, %d datas, %d candidates, done=%v", events, datas, candidates, sawDone)
	}
}
