package exec

import (
	"math"

	"repro/internal/db"
	"repro/internal/plan"
	"repro/internal/realfmla"
	"repro/internal/value"
)

// Candidate is one answer tuple of the conditional evaluation together
// with its constraint: the tuple is an answer under a valuation of the
// numerical nulls z exactly when Phi(z) holds. Phi is a DNF — one
// disjunct per derivation (join combination) producing the tuple, in
// derivation order. Candidates whose Phi is constantly true are ordinary
// (almost-certain) answers.
type Candidate struct {
	Tuple value.Tuple
	Phi   realfmla.Formula
}

// Result is the aggregated output of a conditional evaluation.
type Result struct {
	Candidates []Candidate
	// NullIDs maps formula variable index to numerical null ID (the same
	// convention as package translate).
	NullIDs []int
	// Index is the inverse of NullIDs.
	Index map[int]int
	// Derivations counts join combinations that survived the base
	// conditions (the size of the naive join result).
	Derivations int
}

// Aggregator folds a stream of materialized derivations into distinct
// candidate tuples: per distinct projected tuple (in first-derivation
// order) the disjunction of its derivations' constraint conjunctions.
// With a positive limit, only the first `limit` distinct tuples keep
// their constraint disjuncts — later tuples are tracked (they can never
// enter the limit window) but cost no memory beyond their key. This is
// the Deriv-based path used when a reordered plan must buffer and sort
// derivations; streaming plans go through the fused aggregation of
// Aggregate, which never materializes non-kept tuples at all.
type Aggregator struct {
	limit int
	byKey map[string]*agg
	kept  []*agg
	// onSaturated, when set, fires as soon as a kept candidate's
	// constraint collapses to true (a derivation with no constraint
	// atoms): its Phi can no longer change, so a fused pipeline may start
	// measuring it while enumeration continues.
	onSaturated func(idx int, c Candidate)
}

type agg struct {
	idx       int
	tuple     value.Tuple
	disjuncts []realfmla.Formula
	keep      bool
	saturated bool
}

// NewAggregator returns an aggregator for the given LIMIT (0 = none).
// onSaturated may be nil.
func NewAggregator(limit int, onSaturated func(idx int, c Candidate)) *Aggregator {
	return &Aggregator{limit: limit, byKey: make(map[string]*agg), onSaturated: onSaturated}
}

// Add folds one derivation in.
func (a *Aggregator) Add(d *Deriv) {
	key := d.Tuple.Key()
	g, ok := a.byKey[key]
	if !ok {
		g = &agg{tuple: d.Tuple, keep: a.limit <= 0 || len(a.kept) < a.limit}
		a.byKey[key] = g
		if g.keep {
			g.idx = len(a.kept)
			a.kept = append(a.kept, g)
		}
	}
	if !g.keep || g.saturated {
		return
	}
	if len(d.Conj) == 0 {
		// An unconditional derivation: Or(..., true, ...) collapses, so
		// the candidate's Phi is final and the disjunct list can go.
		g.saturated = true
		g.disjuncts = nil
		if a.onSaturated != nil {
			a.onSaturated(g.idx, Candidate{Tuple: g.tuple, Phi: realfmla.FTrue{}})
		}
		return
	}
	g.disjuncts = append(g.disjuncts, realfmla.And(d.Conj...))
}

// Finish returns the candidates in first-derivation order with the LIMIT
// applied (nil when there are none), including any already reported
// through onSaturated.
func (a *Aggregator) Finish() []Candidate {
	if len(a.kept) == 0 {
		return nil
	}
	out := make([]Candidate, len(a.kept))
	for i, g := range a.kept {
		phi := realfmla.Formula(realfmla.FTrue{})
		if !g.saturated {
			phi = realfmla.Or(g.disjuncts...)
		}
		out[i] = Candidate{Tuple: g.tuple, Phi: phi}
	}
	return out
}

// Saturated reports whether candidate idx was finalized early.
func (a *Aggregator) Saturated(idx int) bool { return a.kept[idx].saturated }

// aggNode is one distinct projected tuple of the fused aggregation,
// keyed by the encoded columnar cells (kind + payload per position) so
// grouping never builds string keys or boxed tuples. Hash collisions
// chain through next.
type aggNode struct {
	next      *aggNode
	kinds     []value.Kind
	cells     []uint64
	idx       int
	keep      bool
	saturated bool
	tuple     value.Tuple
	disjuncts []realfmla.Formula
}

// fusedAgg is the kept-aware aggregation fused into the cursor loop: the
// projected tuple of each surviving binding is hashed straight off the
// columnar arrays, and only derivations of kept, unsaturated candidates
// materialize their tuples and constraint atoms.
type fusedAgg struct {
	limit       int
	byHash      map[uint64]*aggNode
	kept        []*aggNode
	onSaturated func(idx int, c Candidate)

	kindsBuf []value.Kind
	cellsBuf []uint64
}

func newFusedAgg(limit int, onSaturated func(int, Candidate)) *fusedAgg {
	return &fusedAgg{limit: limit, byHash: make(map[uint64]*aggNode), onSaturated: onSaturated}
}

// encode computes the projected tuple's hash and encoded cells from the
// cursor's current binding, into the reusable buffers.
func (f *fusedAgg) encode(c *Cursor) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	kinds := f.kindsBuf[:0]
	cells := f.cellsBuf[:0]
	h := uint64(offset64)
	for _, pc := range c.proj {
		ord := c.ords[pc.step]
		k := pc.col.Kinds[ord]
		var payload uint64
		if k == value.NumConst {
			payload = canonNumBits(pc.col.Nums[ord])
		} else {
			payload = uint64(uint32(pc.col.Codes[ord]))
		}
		kinds = append(kinds, k)
		cells = append(cells, payload)
		h = (h ^ uint64(k)) * prime64
		h = (h ^ payload) * prime64
	}
	f.kindsBuf, f.cellsBuf = kinds, cells
	return h
}

// canonNumBits is the grouping key of a numerical constant: raw bits,
// except that every NaN payload collapses to one pattern. This mirrors
// value.Tuple.Key exactly — FormatFloat 'b' renders all NaNs alike but
// keeps the sign of zero, so -0 and +0 stay distinct candidates. (It
// deliberately differs from the equality-index canonicalization in
// package db, which identifies -0 with +0 the way `==` on boxed values
// always has.)
func canonNumBits(v float64) uint64 {
	if math.IsNaN(v) {
		return 0x7ff8000000000001
	}
	return math.Float64bits(v)
}

// add folds the cursor's current binding in.
func (f *fusedAgg) add(c *Cursor) {
	h := f.encode(c)
	var g *aggNode
	for n := f.byHash[h]; n != nil; n = n.next {
		if keyEqual(n, f.kindsBuf, f.cellsBuf) {
			g = n
			break
		}
	}
	if g == nil {
		g = &aggNode{
			kinds: append([]value.Kind(nil), f.kindsBuf...),
			cells: append([]uint64(nil), f.cellsBuf...),
			keep:  f.limit <= 0 || len(f.kept) < f.limit,
			next:  f.byHash[h],
		}
		f.byHash[h] = g
		if g.keep {
			g.idx = len(f.kept)
			g.tuple = c.tuple()
			f.kept = append(f.kept, g)
		}
	}
	if !g.keep || g.saturated {
		return
	}
	conj := c.conj()
	if conj == nil {
		g.saturated = true
		g.disjuncts = nil
		if f.onSaturated != nil {
			f.onSaturated(g.idx, Candidate{Tuple: g.tuple, Phi: realfmla.FTrue{}})
		}
		return
	}
	g.disjuncts = append(g.disjuncts, conj)
}

func keyEqual(n *aggNode, kinds []value.Kind, cells []uint64) bool {
	if len(n.cells) != len(cells) {
		return false
	}
	for i := range cells {
		if n.kinds[i] != kinds[i] || n.cells[i] != cells[i] {
			return false
		}
	}
	return true
}

func (f *fusedAgg) finish() ([]Candidate, []bool) {
	if len(f.kept) == 0 {
		return nil, nil
	}
	out := make([]Candidate, len(f.kept))
	sat := make([]bool, len(f.kept))
	for i, g := range f.kept {
		phi := realfmla.Formula(realfmla.FTrue{})
		if !g.saturated {
			phi = realfmla.Or(g.disjuncts...)
		}
		out[i] = Candidate{Tuple: g.tuple, Phi: phi}
		sat[i] = g.saturated
	}
	return out, sat
}

// interruptEvery trades poll cost against abort latency: checking a
// context every ~4k derivations is invisible in the profile but bounds
// how long a cancelled query keeps enumerating. Every derivation loop
// (Aggregate's two paths and Run's reorder buffer) polls on this cadence
// — the ctxpoll analyzer enforces that new ones do too.
const interruptEvery = 4096

// Aggregate runs the plan and folds its derivation stream into the
// distinct candidate tuples with their constraints, in first-derivation
// order with the plan's LIMIT applied. The returned bool slice marks
// candidates whose constraint saturated to true mid-enumeration (and
// were already reported through onSaturated, when set).
//
// On streaming (Identity) plans the fold is fused into the cursor:
// grouping hashes the projected cells straight off the columnar arrays,
// and tuples and constraint atoms are materialized only for kept
// candidates — beyond-limit derivations are counted and nothing else.
// Reordered plans buffer materialized derivations to restore derivation
// order first (see Run), then aggregate; results are identical.
func Aggregate(p *plan.Plan, d *db.Database, opts Options, onSaturated func(int, Candidate)) (*Result, []bool, error) {
	res := &Result{NullIDs: p.NullIDs, Index: p.Index}
	if !p.Identity {
		ag := NewAggregator(p.Limit, onSaturated)
		if err := Run(p, d, opts, func(dv *Deriv) error {
			res.Derivations++
			if opts.Interrupt != nil && res.Derivations%interruptEvery == 0 {
				if err := opts.Interrupt(); err != nil {
					return err
				}
			}
			ag.Add(dv)
			return nil
		}); err != nil {
			return nil, nil, err
		}
		res.Candidates = ag.Finish()
		sat := make([]bool, len(res.Candidates))
		for i := range sat {
			sat[i] = ag.Saturated(i)
		}
		return res, sat, nil
	}
	cur := NewCursor(p, d, opts)
	f := newFusedAgg(p.Limit, onSaturated)
	for cur.advance() {
		res.Derivations++
		if opts.Interrupt != nil && res.Derivations%interruptEvery == 0 {
			if err := opts.Interrupt(); err != nil {
				return nil, nil, err
			}
		}
		f.add(cur)
	}
	if cur.err != nil {
		return nil, nil, cur.err
	}
	var sat []bool
	res.Candidates, sat = f.finish()
	return res, sat, nil
}

// Collect runs the plan and aggregates its derivation stream into the
// distinct candidate tuples with their constraints — the convenience over
// Aggregate for callers that want the whole Result.
func Collect(p *plan.Plan, d *db.Database, opts Options) (*Result, error) {
	res, _, err := Aggregate(p, d, opts, nil)
	return res, err
}
