package sqlfront

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/fo"
	"repro/internal/realfmla"
	"repro/internal/schema"
	"repro/internal/translate"
	"repro/internal/value"
)

func salesSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("Products",
			schema.Column{Name: "id", Type: schema.Base},
			schema.Column{Name: "seg", Type: schema.Base},
			schema.Column{Name: "rrp", Type: schema.Num},
			schema.Column{Name: "dis", Type: schema.Num}),
		schema.MustRelation("Market",
			schema.Column{Name: "seg", Type: schema.Base},
			schema.Column{Name: "rrp", Type: schema.Num},
			schema.Column{Name: "dis", Type: schema.Num}),
	)
}

func TestParseExperimentQueries(t *testing.T) {
	srcs := []string{
		`SELECT P.seg FROM Products P, Market M WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25`,
		`SELECT P.id FROM Products P WHERE P.rrp / 2 > 10`,
		`SELECT P.id FROM Products P WHERE P.seg = 'seg1'`,
		`select p.id from Products p where p.rrp <> 3 limit 1`,
	}
	for _, src := range srcs {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		// Round-trip through String.
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", q.String(), err)
		}
		if q.String() != q2.String() {
			t.Errorf("not a fixpoint: %s vs %s", q, q2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT FROM Products P`,
		`SELECT P.id Products P`,
		`SELECT P.id FROM Products`,
		`SELECT P.id FROM Products P WHERE`,
		`SELECT P.id FROM Products P LIMIT 0`,
		`SELECT P.id FROM Products P LIMIT -3`,
		`SELECT P.id FROM Products P WHERE P.rrp / P.dis > 1`, // div by column
		`SELECT P.id FROM Products P WHERE P.rrp / 0 > 1`,
		`SELECT P.id FROM Products P WHERE 'x' = P.id`,
		`SELECT P.id FROM Products P extra`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestBindingErrors(t *testing.T) {
	d := db.New(salesSchema())
	bad := map[string]string{
		`SELECT P.id FROM Nope P`:                                       "unknown relation",
		`SELECT P.id FROM Products P, Products P`:                       "duplicate alias",
		`SELECT X.id FROM Products P`:                                   "unknown alias in select",
		`SELECT P.nope FROM Products P`:                                 "unknown column",
		`SELECT P.id FROM Products P WHERE P.id = P.rrp`:                "mixed-sort equality",
		`SELECT P.id FROM Products P WHERE P.seg = 'x' AND P.rrp = 'y'`: "string vs numeric column",
		`SELECT P.id FROM Products P WHERE P.id * 2 > 1`:                "base column in arithmetic",
	}
	for src, why := range bad {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Evaluate(q, d); err == nil {
			t.Errorf("accepted %s (%s)", src, why)
		}
	}
}

func buildSmallSales() *db.Database {
	d := db.New(salesSchema())
	d.MustInsert("Products", value.Base("p1"), value.Base("s1"), value.Num(10), value.Num(0.8))
	d.MustInsert("Products", value.Base("p2"), value.Base("s1"), value.NullNum(0), value.Num(0.7))
	d.MustInsert("Products", value.Base("p3"), value.Base("s2"), value.Num(20), value.Num(0.9))
	d.MustInsert("Market", value.Base("s1"), value.Num(12), value.NullNum(1))
	d.MustInsert("Market", value.Base("s2"), value.Num(5), value.Num(0.5))
	return d
}

func TestEvaluateConditional(t *testing.T) {
	d := buildSmallSales()
	q := MustParse(`SELECT P.seg FROM Products P, Market M
		WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis`)
	res, err := Evaluate(q, d)
	if err != nil {
		t.Fatal(err)
	}
	// Candidates: s1 (two derivations, both with constraints over ⊤0/⊤1)
	// and s2 (constraint-free, constant false: 20·0.9=18 > 5·0.5=2.5 → no).
	if len(res.Candidates) != 1 {
		t.Fatalf("candidates = %d, want 1 (s2's only derivation is false): %v",
			len(res.Candidates), res.Candidates)
	}
	c := res.Candidates[0]
	if c.Tuple[0].Str() != "s1" {
		t.Errorf("candidate = %v", c.Tuple)
	}
	// φ must be a disjunction of the two derivations:
	//   p1: 10·0.8 ≤ 12·z1  and  p2: z0·0.7 ≤ 12·z1.
	check := func(z0, z1 float64, want bool) {
		if got := realfmla.Eval(c.Phi, []float64{z0, z1}); got != want {
			t.Errorf("φ(%g, %g) = %v, want %v (φ = %s)", z0, z1, got, want, c.Phi)
		}
	}
	check(0, 1, true)      // p1 branch: 8 ≤ 12 ✓
	check(0, 0.5, true)    // p1: 8 ≤ 6 ✗, p2: 0 ≤ 6 ✓
	check(100, 0.5, false) // p1 ✗; p2: 70 ≤ 6 ✗
}

func TestEvaluateLimitAndDerivations(t *testing.T) {
	d := buildSmallSales()
	q := MustParse(`SELECT P.id FROM Products P LIMIT 2`)
	res, err := Evaluate(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("LIMIT ignored: %d candidates", len(res.Candidates))
	}
	if res.Candidates[0].Tuple[0].Str() != "p1" || res.Candidates[1].Tuple[0].Str() != "p2" {
		t.Errorf("derivation order not preserved: %v", res.Candidates)
	}
	if res.Derivations != 3 {
		t.Errorf("derivations = %d, want 3", res.Derivations)
	}
}

func TestEvaluateBaseNullJoinSemantics(t *testing.T) {
	// A base null joins with itself but not with a constant.
	s := schema.MustNew(
		schema.MustRelation("A", schema.Column{Name: "k", Type: schema.Base}),
		schema.MustRelation("B", schema.Column{Name: "k", Type: schema.Base}),
	)
	d := db.New(s)
	d.MustInsert("A", value.NullBase(0))
	d.MustInsert("A", value.Base("c"))
	d.MustInsert("B", value.NullBase(0))
	d.MustInsert("B", value.NullBase(1))

	q := MustParse(`SELECT A.k FROM A A, B B WHERE A.k = B.k`)
	res, err := Evaluate(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 || res.Candidates[0].Tuple[0] != value.NullBase(0) {
		t.Errorf("candidates = %v, want just ⊥0", res.Candidates)
	}
	// String-literal comparison with a null is false.
	q2 := MustParse(`SELECT B.k FROM B B WHERE B.k = 'c'`)
	res2, err := Evaluate(q2, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Candidates) != 0 {
		t.Errorf("null matched a string literal: %v", res2.Candidates)
	}
}

func TestNumericEqualityJoinBecomesConstraint(t *testing.T) {
	s := schema.MustNew(
		schema.MustRelation("A", schema.Column{Name: "x", Type: schema.Num}),
		schema.MustRelation("B", schema.Column{Name: "x", Type: schema.Num}),
	)
	d := db.New(s)
	d.MustInsert("A", value.NullNum(0))
	d.MustInsert("B", value.Num(5))
	q := MustParse(`SELECT A.x FROM A A, B B WHERE A.x = B.x`)
	res, err := Evaluate(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 {
		t.Fatalf("candidates = %v", res.Candidates)
	}
	phi := res.Candidates[0].Phi
	if !realfmla.Eval(phi, []float64{5}) || realfmla.Eval(phi, []float64{4}) {
		t.Errorf("constraint wrong: %s", phi)
	}
}

// TestAgainstFOTranslation cross-validates the conditional evaluation
// against the general Prop 5.3 translation of the equivalent FO query:
// per candidate tuple, the two formulas must agree on random valuations.
func TestAgainstFOTranslation(t *testing.T) {
	d := buildSmallSales()
	sqlQ := MustParse(`SELECT P.seg FROM Products P, Market M
		WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis`)
	res, err := Evaluate(sqlQ, d)
	if err != nil {
		t.Fatal(err)
	}
	foQ := fo.MustParseQuery(`
	q(s:base) := exists i:base, r:num, dd:num, mr:num, md:num .
	    (Products(i, s, r, dd) and Market(s, mr, md) and r * dd <= mr * md)`)

	rng := rand.New(rand.NewSource(31))
	for _, cand := range res.Candidates {
		tr, err := translate.Query(foQ, d, []value.Value{cand.Tuple[0]})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			z := make([]float64, len(res.NullIDs))
			for j := range z {
				z[j] = rng.NormFloat64() * 20
			}
			a := realfmla.Eval(cand.Phi, z)
			b := realfmla.Eval(tr.Phi, z)
			if a != b {
				t.Fatalf("tuple %v, z=%v: conditional=%v translation=%v\nφ_sql = %s\nφ_fo = %s",
					cand.Tuple, z, a, b, cand.Phi, tr.Phi)
			}
		}
		// Their measures agree too.
		e := core.New(core.Options{Seed: 77})
		m1, err := e.MeasureFormula(cand.Phi, 0.02, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := e.MeasureFormula(tr.Phi, 0.02, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m1.Value-m2.Value) > 0.05 {
			t.Errorf("tuple %v: μ_sql=%.4f μ_fo=%.4f", cand.Tuple, m1.Value, m2.Value)
		}
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	// The probe plan must not change results: compare against a query where
	// the join condition is written in reverse order (still probed) and
	// where no base join exists (full scan).
	d := buildSmallSales()
	q1 := MustParse(`SELECT P.seg FROM Products P, Market M WHERE P.seg = M.seg AND P.rrp <= M.rrp`)
	q2 := MustParse(`SELECT P.seg FROM Products P, Market M WHERE M.seg = P.seg AND P.rrp <= M.rrp`)
	r1, err := Evaluate(q1, d)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(q2, d)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Derivations != r2.Derivations || len(r1.Candidates) != len(r2.Candidates) {
		t.Errorf("join order sensitivity: %d/%d vs %d/%d",
			r1.Derivations, len(r1.Candidates), r2.Derivations, len(r2.Candidates))
	}
}

func TestQueryStringContainsLimit(t *testing.T) {
	q := MustParse(`SELECT P.id FROM Products P LIMIT 7`)
	if !strings.Contains(q.String(), "LIMIT 7") {
		t.Errorf("String lost LIMIT: %s", q)
	}
}
