// Package certain implements the classical baselines the paper builds on:
//
//   - naive evaluation of queries over incomplete databases (nulls treated
//     as fresh distinct constants), which by the zero-one law of [27]
//     (Libkin, PODS'18) computes exactly the almost-certain answers for
//     generic queries — the K = 0 degenerate case of the paper's measure;
//   - a bounded-search demonstration of Prop 4.1's undecidability source:
//     certain answers of CQ(+,·,<) over ℤ embed Hilbert's 10th problem,
//     because a polynomial has an integer root iff the query
//     ∃x̄ R(x̄) ∧ p² > 0 is not certainly true.
package certain

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/fo"
	"repro/internal/poly"
	"repro/internal/schema"
	"repro/internal/value"
)

// usesInterpretedOps reports whether the query uses arithmetic or order —
// operations that break genericity, outside the scope of naive evaluation.
func usesInterpretedOps(f fo.Formula) bool {
	a := fo.Arithmetic(f)
	if a.UsesOrder || a.UsesAdd || a.UsesMul {
		return true
	}
	return false
}

// NaiveEval evaluates a generic (arithmetic- and order-free) Boolean-or-
// open query over an incomplete database by treating every null as a fresh
// constant distinct from all others, and returns whether the given answer
// tuple is produced. By [27], for generic queries this decides
// "almost-certainly an answer" (measure 1), the notion the paper's μ
// generalizes. It returns an error if the query uses interpreted
// operations (+, ·, <), for which genericity fails.
func NaiveEval(q *fo.Query, d *db.Database, args []value.Value) (bool, error) {
	if err := fo.Typecheck(q, d.Schema()); err != nil {
		return false, err
	}
	if usesInterpretedOps(q.Body) {
		return false, fmt.Errorf("certain: naive evaluation requires a generic query (no arithmetic or order)")
	}
	// Bijective base valuation; numerical nulls likewise get fresh distinct
	// values (genericity makes the particular choice irrelevant, as long as
	// the values are distinct from everything else).
	complete, vbase := freshCompletion(d)
	inst, err := fo.FromComplete(complete)
	if err != nil {
		return false, err
	}
	cargs := make([]fo.Cell[float64], len(args))
	for i, a := range args {
		v, err := freshValue(a, vbase)
		if err != nil {
			return false, err
		}
		c, err := fo.CellForCompleteValue(v)
		if err != nil {
			return false, err
		}
		cargs[i] = c
	}
	return fo.Eval(q, inst, cargs)
}

// freshCompletion replaces base nulls by reserved fresh constants and
// numerical nulls by fresh distinct values chosen away from the database's
// constants.
func freshCompletion(d *db.Database) (*db.Database, *db.Valuation) {
	v := db.NewValuation()
	for _, id := range d.BaseNulls() {
		v.Base[id] = fo.FreshBaseName(id)
	}
	// Fresh numerical values: strictly above every constant, pairwise
	// distinct.
	max := 0.0
	for _, c := range d.NumConstants() {
		if c > max {
			max = c
		}
	}
	for i, id := range d.NumNulls() {
		v.Num[id] = max + 1 + float64(i)
	}
	out, err := v.Apply(d)
	if err != nil {
		// Unreachable: the valuation covers every null by construction.
		panic(err)
	}
	return out, v
}

func freshValue(a value.Value, v *db.Valuation) (value.Value, error) {
	switch a.Kind() {
	case value.BaseNull, value.NumNull:
		return v.Value(a)
	default:
		return a, nil
	}
}

// AlmostCertain reports whether args is an almost-certain answer
// (μ = 1) for a generic query: by [27] this holds iff naive evaluation
// returns it.
func AlmostCertain(q *fo.Query, d *db.Database, args []value.Value) (bool, error) {
	return NaiveEval(q, d, args)
}

// HasIntegerRoot searches for an integer root of the multivariate
// polynomial p with all |x_i| ≤ bound, by exhaustive search. This is the
// bounded version of the undecidable question underlying Prop 4.1: the
// certain-answer problem for CQ(+,·,<) over ℤ is undecidable because
// "p has no integer root" is equivalent to a certain answer of
// ∃x̄ R(x̄) ∧ p² > 0 over a single-tuple database of nulls. No bounded
// search can decide the general problem — that is the point — but the
// search makes the reduction executable on small instances.
func HasIntegerRoot(p poly.Poly, bound int) (root []float64, found bool) {
	if bound < 0 {
		return nil, false
	}
	x := make([]float64, p.N)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == p.N {
			return p.Eval(x) == 0
		}
		for v := -bound; v <= bound; v++ {
			x[i] = float64(v)
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	if rec(0) {
		return x, true
	}
	return nil, false
}

// DiophantineQuery builds the Prop 4.1 query and database for a polynomial
// p ∈ ℤ[x₁..x_k]: R(num^k) holds the single all-null tuple and the query
// is ∃x̄ . R(x̄) ∧ p(x̄)·p(x̄) > 0. The query is a certain answer over
// integer-valued interpretations iff p has no integer root.
func DiophantineQuery(p poly.Poly) (*fo.Query, *db.Database, error) {
	if p.N == 0 {
		return nil, nil, fmt.Errorf("certain: polynomial must have at least one variable")
	}
	cols := make([]string, p.N)
	relCols := make([]schema.Column, p.N)
	tup := make(value.Tuple, p.N)
	for i := range cols {
		cols[i] = fmt.Sprintf("x%d", i)
		relCols[i] = schema.Column{Name: cols[i], Type: schema.Num}
		tup[i] = value.NullNum(i)
	}
	d := db.New(schema.MustNew(schema.MustRelation("R", relCols...)))
	if err := d.Insert("R", tup); err != nil {
		return nil, nil, err
	}
	// Build the term p(x̄) as an fo.Term.
	var body fo.Term = fo.NumConst{Value: 0}
	first := true
	for _, t := range p.Terms {
		var mono fo.Term = fo.NumConst{Value: t.Coef}
		for _, vp := range t.Vars {
			for j := 0; j < vp.Pow; j++ {
				mono = fo.Mul{L: mono, R: fo.Var{Name: cols[vp.Var]}}
			}
		}
		if first {
			body = mono
			first = false
		} else {
			body = fo.Add{L: body, R: mono}
		}
	}
	atomArgs := make([]fo.Term, p.N)
	for i := range atomArgs {
		atomArgs[i] = fo.Var{Name: cols[i]}
	}
	var f fo.Formula = fo.And{
		L: fo.Atom{Rel: "R", Args: atomArgs},
		R: fo.Cmp{Op: fo.Gt, L: fo.Mul{L: body, R: body}, R: fo.NumConst{Value: 0}},
	}
	for i := p.N - 1; i >= 0; i-- {
		f = fo.Exists{Var: cols[i], Sort: fo.SortNum, Body: f}
	}
	return &fo.Query{Name: "q", Body: f}, d, nil
}
