// Package leakcheck verifies that a test run leaves no goroutines
// behind. It is an offline, standard-library reimplementation of the
// go.uber.org/goleak API surface this repo uses (the build environment
// has no network, so the real module cannot be fetched); swap the
// import if goleak ever becomes vendorable — VerifyTestMain, Find, and
// the Ignore* options match.
//
// The fault-injection harnesses (faultnet, the replica and shard chaos
// tests) and the server's streaming/admission paths all spawn
// goroutines whose cleanup is part of the contract under test: a leaked
// catchup loop or stream worker is a bug the chaos suites would
// otherwise only catch as a flake. Wiring VerifyTestMain into those
// packages' TestMain makes the leak a hard failure.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// Option configures Find/VerifyTestMain.
type Option func(*config)

type config struct {
	ignoreTop []string
	ignoreAny []string
	retries   int
}

// IgnoreTopFunction ignores goroutines whose top stack frame is the
// given fully qualified function name.
func IgnoreTopFunction(name string) Option {
	return func(c *config) { c.ignoreTop = append(c.ignoreTop, name) }
}

// IgnoreAnyFunction ignores goroutines with the given fully qualified
// function name anywhere in their stack.
func IgnoreAnyFunction(name string) Option {
	return func(c *config) { c.ignoreAny = append(c.ignoreAny, name) }
}

// defaultIgnoreTop are runtime/stdlib background goroutines that are
// never leaks.
var defaultIgnoreTop = []string{
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.gcBgMarkWorker",
	"runtime.timerproc",
	"runtime.ReadTrace",
	"os/signal.signal_recv",
	"os/signal.loop",
}

// VerifyTestMain runs the tests and then fails the process if any
// non-test goroutine is still alive. Use from TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
func VerifyTestMain(m interface{ Run() int }, opts ...Option) {
	code := m.Run()
	if code == 0 {
		if err := Find(opts...); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// Find returns an error describing all leaked goroutines, retrying with
// backoff (and forcing GC, so runtime.AddCleanup-driven shutdowns — the
// engine sample pools — get their chance to run) until the stacks drain
// or the retry budget is spent.
func Find(opts ...Option) error {
	c := &config{retries: 20}
	for _, o := range opts {
		o(c)
	}
	var leaked []goroutineStack
	delay := time.Millisecond
	for i := 0; i < c.retries; i++ {
		// Unreachable engines stop their sample-pool helpers from a GC
		// cleanup; two cycles let the cleanup run and the helpers exit.
		runtime.GC()
		leaked = filter(stacks(), c)
		if len(leaked) == 0 {
			return nil
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d leaked goroutine(s):", len(leaked))
	for _, g := range leaked {
		fmt.Fprintf(&b, "\n\ngoroutine %s [%s]:\n%s", g.id, g.state, strings.Join(g.frames, "\n"))
	}
	return fmt.Errorf("%s", b.String())
}

// goroutineStack is one parsed goroutine from runtime.Stack output.
type goroutineStack struct {
	id     string
	state  string
	funcs  []string // fully qualified function names, top first
	frames []string // raw lines for reporting
}

// stacks captures and parses all goroutine stacks except the caller's.
func stacks() []goroutineStack {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutineStack
	for _, block := range strings.Split(string(buf), "\n\n") {
		lines := strings.Split(strings.TrimRight(block, "\n"), "\n")
		if len(lines) == 0 || !strings.HasPrefix(lines[0], "goroutine ") {
			continue
		}
		header := strings.TrimPrefix(lines[0], "goroutine ")
		var g goroutineStack
		if i := strings.IndexByte(header, ' '); i >= 0 {
			g.id = header[:i]
			g.state = strings.Trim(header[i+1:], "[]:")
		}
		g.frames = lines[1:]
		for _, l := range g.frames {
			if strings.HasPrefix(l, "\t") || l == "" {
				continue
			}
			// "pkg/path.Func(args)" or "created by pkg/path.Func in goroutine N"
			name := l
			if rest, ok := strings.CutPrefix(name, "created by "); ok {
				name = rest
				if i := strings.Index(name, " in goroutine"); i >= 0 {
					name = name[:i]
				}
			} else if i := strings.IndexByte(name, '('); i >= 0 {
				name = name[:i]
			}
			g.funcs = append(g.funcs, name)
		}
		out = append(out, g)
	}
	return out
}

// filter drops the current goroutine, test-framework goroutines, known
// runtime background work, and anything the options ignore.
func filter(gs []goroutineStack, c *config) []goroutineStack {
	cur := currentID()
	var leaked []goroutineStack
	for _, g := range gs {
		if g.id == cur || len(g.funcs) == 0 {
			continue
		}
		if isIgnored(g, c) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

func isIgnored(g goroutineStack, c *config) bool {
	for _, fn := range g.funcs {
		// The test framework's own goroutines: testing.Main, tRunner,
		// (*M).Run, fuzz workers, plus anything parked inside them.
		if strings.HasPrefix(fn, "testing.") {
			return true
		}
		for _, ig := range c.ignoreAny {
			if fn == ig {
				return true
			}
		}
	}
	top := g.funcs[0]
	for _, ig := range defaultIgnoreTop {
		if top == ig {
			return true
		}
	}
	for _, ig := range c.ignoreTop {
		if top == ig {
			return true
		}
	}
	return false
}

// currentID extracts the calling goroutine's id from its own stack.
func currentID() string {
	buf := make([]byte, 64)
	n := runtime.Stack(buf, false)
	s := strings.TrimPrefix(string(buf[:n]), "goroutine ")
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i]
	}
	return ""
}
