// Package datagen generates the synthetic sales database of the paper's
// experimental evaluation (Section 9). The paper used the DataFiller tool
// to populate a Postgres schema with ~200K tuples containing SQL NULLs and
// then replaced each NULL with a distinct marked null; this package plays
// that role: a seeded, schema-driven generator with per-column null rates
// that emits marked nulls directly.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/db"
	"repro/internal/schema"
	"repro/internal/value"
)

// Config controls the generated database. The zero value of a count keeps
// its default; null rates are probabilities in [0,1].
type Config struct {
	Seed int64

	Products int // default 1000
	Orders   int // default 800
	Market   int // default 200 (one row per competing segment offer)
	Segments int // default max(8, Market/4)

	// NullRate is the probability that a numerical attribute is a fresh
	// marked null (the paper's incompleteness regime, highest in the
	// web-extracted Market relation unless overridden).
	NullRate float64 // default 0.05
	// MarketNullRate overrides NullRate for the Market relation.
	MarketNullRate float64 // default 2×NullRate (capped at 1)
	// BaseNullRate is the probability that Orders.pr (the ordered product
	// reference) is a base null.
	BaseNullRate float64 // default NullRate/2
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Products <= 0 {
		c.Products = 1000
	}
	if c.Orders <= 0 {
		c.Orders = 800
	}
	if c.Market <= 0 {
		c.Market = 200
	}
	if c.Segments <= 0 {
		c.Segments = c.Market / 4
		if c.Segments < 8 {
			c.Segments = 8
		}
	}
	if c.NullRate == 0 {
		c.NullRate = 0.05
	}
	if c.MarketNullRate == 0 {
		c.MarketNullRate = 2 * c.NullRate
		if c.MarketNullRate > 1 {
			c.MarketNullRate = 1
		}
	}
	if c.BaseNullRate == 0 {
		c.BaseNullRate = c.NullRate / 2
	}
	return c
}

// Schema returns the sales schema of Section 9:
//
//	Products(id:base, seg:base, rrp:num, dis:num)
//	Orders(id:base, pr:base, q:num, dis:num)
//	Market(seg:base, rrp:num, dis:num)
func Schema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("Products",
			schema.Column{Name: "id", Type: schema.Base},
			schema.Column{Name: "seg", Type: schema.Base},
			schema.Column{Name: "rrp", Type: schema.Num},
			schema.Column{Name: "dis", Type: schema.Num}),
		schema.MustRelation("Orders",
			schema.Column{Name: "id", Type: schema.Base},
			schema.Column{Name: "pr", Type: schema.Base},
			schema.Column{Name: "q", Type: schema.Num},
			schema.Column{Name: "dis", Type: schema.Num}),
		schema.MustRelation("Market",
			schema.Column{Name: "seg", Type: schema.Base},
			schema.Column{Name: "rrp", Type: schema.Num},
			schema.Column{Name: "dis", Type: schema.Num}),
	)
}

// Generate produces a deterministic synthetic database for the given
// configuration.
func Generate(cfg Config) (*db.Database, error) {
	c := cfg.withDefaults()
	if c.NullRate < 0 || c.NullRate > 1 || c.MarketNullRate < 0 || c.MarketNullRate > 1 ||
		c.BaseNullRate < 0 || c.BaseNullRate > 1 {
		return nil, fmt.Errorf("datagen: null rates must be in [0,1]")
	}
	rng := rand.New(rand.NewSource(c.Seed))
	d := db.New(Schema())

	seg := func(i int) string { return fmt.Sprintf("seg%d", i) }
	prodID := func(i int) string { return fmt.Sprintf("p%d", i) }

	numOrNull := func(rate float64, gen func() float64) value.Value {
		if rng.Float64() < rate {
			return d.FreshNumNull()
		}
		return value.Num(gen())
	}
	price := func() float64 { return 1 + 199*rng.Float64() }      // rrp in [1, 200)
	discount := func() float64 { return 0.5 + 0.5*rng.Float64() } // dis in [0.5, 1): fraction of rrp kept
	quantity := func() float64 { return float64(1 + rng.Intn(50)) }

	for i := 0; i < c.Products; i++ {
		if err := d.Insert("Products", value.Tuple{
			value.Base(prodID(i)),
			value.Base(seg(rng.Intn(c.Segments))),
			numOrNull(c.NullRate, price),
			numOrNull(c.NullRate, discount),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < c.Orders; i++ {
		pr := value.Value(value.Base(prodID(rng.Intn(c.Products))))
		if rng.Float64() < c.BaseNullRate {
			pr = d.FreshBaseNull()
		}
		if err := d.Insert("Orders", value.Tuple{
			value.Base(fmt.Sprintf("o%d", i)),
			pr,
			numOrNull(c.NullRate, quantity),
			numOrNull(c.NullRate, func() float64 { return 0.5 + 2*rng.Float64() }), // order extra discount
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < c.Market; i++ {
		if err := d.Insert("Market", value.Tuple{
			value.Base(seg(i % c.Segments)),
			numOrNull(c.MarketNullRate, price),
			numOrNull(c.MarketNullRate, discount),
		}); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Experiment queries of Section 9. The paper's printed SQL contains two
// artifacts that cannot typecheck (M.id used in arithmetic although Market
// has no id column, and a missing operator in "P.rrp * P.dis O.q"); the
// versions below restore the intended reading described in the prose, and
// divisions by the possibly-null O.q are rewritten multiplicatively with a
// positivity guard (see DESIGN.md and EXPERIMENTS.md).
const (
	// CompetitiveAdvantage: market segments where the company's discounted
	// price beats the best competing offer.
	CompetitiveAdvantage = `
		SELECT P.seg FROM Products P, Market M
		WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis
		LIMIT 25`

	// NeverKnowinglyUndersold: products that will sell (after the
	// per-order discount dis/q) for less than half of the best market
	// price.
	NeverKnowinglyUndersold = `
		SELECT P.id FROM Products P, Orders O, Market M
		WHERE P.seg = M.seg AND P.id = O.pr AND O.q > 0
		  AND P.rrp * P.dis * O.dis <= 0.5 * M.rrp * M.dis * O.q
		LIMIT 25`

	// UnfairDiscount: orders whose effective extra discount (dis/q)
	// exceeds the intended campaign discount by at least 60%.
	UnfairDiscount = `
		SELECT O.id FROM Products P, Orders O
		WHERE P.id = O.pr AND O.q > 0
		  AND O.dis >= 1.6 * P.dis * O.q
		LIMIT 25`
)
