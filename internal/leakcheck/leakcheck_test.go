package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestFindClean(t *testing.T) {
	if err := Find(); err != nil {
		t.Fatalf("clean process reported a leak: %v", err)
	}
}

func TestFindDetectsLeak(t *testing.T) {
	stop := make(chan struct{})
	done := make(chan struct{})
	go leakyWorker(stop, done)
	// Give the goroutine a beat to park so its stack is attributable.
	time.Sleep(10 * time.Millisecond)

	c := &config{retries: 1}
	leaked := filter(stacks(), c)
	found := false
	for _, g := range leaked {
		for _, fn := range g.funcs {
			if strings.Contains(fn, "leakyWorker") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("leaked worker not reported; got %d goroutine(s)", len(leaked))
	}

	close(stop)
	<-done
	if err := Find(); err != nil {
		t.Fatalf("leak reported after worker exit: %v", err)
	}
}

func TestIgnoreOptions(t *testing.T) {
	stop := make(chan struct{})
	done := make(chan struct{})
	go leakyWorker(stop, done)
	defer func() { close(stop); <-done }()
	time.Sleep(10 * time.Millisecond)

	const name = "repro/internal/leakcheck.leakyWorker"
	if err := Find(IgnoreTopFunction(name)); err != nil {
		t.Errorf("IgnoreTopFunction(%q) still reported: %v", name, err)
	}
	if err := Find(IgnoreAnyFunction(name)); err != nil {
		t.Errorf("IgnoreAnyFunction(%q) still reported: %v", name, err)
	}
}

// leakyWorker parks until released; its frame names the test's quarry.
func leakyWorker(stop, done chan struct{}) {
	<-stop
	close(done)
}
