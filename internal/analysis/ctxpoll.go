package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPoll enforces the every-4k-derivations cancellation rule (PR 4) in
// internal/exec and internal/core: a streaming loop over derivations or
// candidates must poll exec.Options.Interrupt / ctx.Done, or a cancelled
// request keeps enumerating an unbounded join long after its client has
// gone.
//
// A loop is considered a derivation/candidate stream if it pulls from a
// cursor (calls a method named Next or advance in its condition or
// body) or counts derivations (writes a Derivations field). Such a loop
// must contain one of:
//
//   - a reference to an Interrupt option or a ctx.Done()/ctx.Err() call
//     (a direct poll);
//   - a select statement (channel-driven loops are cancelled by closing
//     the channel);
//   - a call through a func-typed variable, parameter, or field (the
//     emit-callback shape: delegating each element to a caller-supplied
//     callback transfers the polling obligation to the caller, which the
//     Aggregate emit path discharges).
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "streaming derivation/candidate loops must poll Interrupt/ctx.Done",
	Run:  runCtxPoll,
}

var ctxPollPkgs = []string{"internal/exec", "internal/core"}

func runCtxPoll(pass *Pass) error {
	if !pathHasAny(pass.Pkg.Path(), ctxPollPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var cond ast.Expr
			switch n := n.(type) {
			case *ast.ForStmt:
				body, cond = n.Body, n.Cond
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			if !pass.isStreamLoop(cond, body) {
				return true
			}
			if !pass.hasPollPoint(body) {
				pass.Reportf(n.Pos(), "derivation/candidate loop never polls Options.Interrupt or ctx.Done: cancelled requests keep enumerating; poll every ~4k iterations (see exec.Aggregate)")
			}
			return true
		})
	}
	return nil
}

// isStreamLoop reports whether the loop iterates a derivation or
// candidate stream: a cursor pull (.Next() / .advance()) in the
// condition or body, or a write to a Derivations counter.
func (p *Pass) isStreamLoop(cond ast.Expr, body *ast.BlockStmt) bool {
	stream := false
	check := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested func is its caller's loop, not this one
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if name := sel.Sel.Name; name == "Next" || name == "advance" || name == "Advance" {
					stream = true
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := n.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "Derivations" {
				stream = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Derivations" {
					stream = true
				}
			}
		}
		return !stream
	}
	if cond != nil {
		ast.Inspect(cond, check)
	}
	ast.Inspect(body, check)
	return stream
}

// hasPollPoint reports whether the loop body contains a cancellation
// poll or delegates elements to a caller-supplied callback.
func (p *Pass) hasPollPoint(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "interrupt") {
				found = true
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" || fun.Sel.Name == "Err" {
					if p.isContext(fun.X) {
						found = true
					}
				}
				// Calling a func-typed field (oy.yield, j.emit) delegates.
				if selTypeIsFunc(p, fun) {
					found = true
				}
			case *ast.Ident:
				// Calling a func-typed variable or parameter (emit, yield)
				// delegates the polling obligation to its provider.
				if obj, ok := p.TypesInfo.Uses[fun].(*types.Var); ok {
					if _, isSig := obj.Type().Underlying().(*types.Signature); isSig {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// isContext reports whether e has type context.Context.
func (p *Pass) isContext(e ast.Expr) bool {
	t := p.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// selTypeIsFunc reports whether sel selects a func-typed (non-method)
// field or variable.
func selTypeIsFunc(p *Pass, sel *ast.SelectorExpr) bool {
	s, ok := p.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	_, isSig := s.Type().Underlying().(*types.Signature)
	return isSig
}
