package wal

// Tailer-API tests: ReadFrom over the committed log (framing, CRC,
// truncation detection), the level-triggered CommitWatch, and the
// checkpoint export/install round trip a replica bootstraps through.

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestReadFromServesCommittedRecords(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Seed: seedFn})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(1))
	var rels []string
	var batches [][]string
	for i := 0; i < 5; i++ {
		rel, tuples := randBatch(rng, s.DB().Schema())
		if err := s.InsertBatch(rel, tuples); err != nil {
			t.Fatal(err)
		}
		var strs []string
		for _, tu := range tuples {
			strs = append(strs, tu.String())
		}
		rels, batches = append(rels, rel), append(batches, strs)
	}

	recs, err := s.ReadFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("ReadFrom(1) returned %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, rec.Seq, i+1)
		}
		// The exported Checksum must match the on-disk framing bit for bit:
		// both replication ends re-verify shipped records with it.
		if Checksum(rec.Seq, rec.Payload) == 0 && len(rec.Payload) > 0 {
			t.Fatalf("record %d: zero checksum over a non-empty payload", i)
		}
		b, err := DecodeBatch(rec.Payload)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if b.Relation != rels[i] {
			t.Fatalf("record %d decodes relation %q, want %q", i, b.Relation, rels[i])
		}
		var strs []string
		for _, tu := range b.Tuples {
			strs = append(strs, tu.String())
		}
		if !reflect.DeepEqual(strs, batches[i]) {
			t.Fatalf("record %d decodes %v, want %v", i, strs, batches[i])
		}
	}

	// A mid-log cursor gets the suffix; the frontier cursor gets nothing;
	// zero aliases one (bootstrap shorthand).
	if recs, err = s.ReadFrom(4); err != nil || len(recs) != 2 || recs[0].Seq != 4 {
		t.Fatalf("ReadFrom(4) = %d records, err %v; want [4 5]", len(recs), err)
	}
	if recs, err = s.ReadFrom(6); err != nil || len(recs) != 0 {
		t.Fatalf("ReadFrom(6) = %d records, err %v; want caught-up empty", len(recs), err)
	}
	if recs, err = s.ReadFrom(0); err != nil || len(recs) != 5 {
		t.Fatalf("ReadFrom(0) = %d records, err %v; want all 5", len(recs), err)
	}
	// Beyond the frontier is a protocol error, not an empty poll.
	if _, err = s.ReadFrom(7); err == nil {
		t.Fatal("ReadFrom past the durable frontier succeeded")
	}
}

func TestReadFromReportsTruncation(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Seed: seedFn})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(2))
	insert := func(n int) {
		for i := 0; i < n; i++ {
			rel, tuples := randBatch(rng, s.DB().Schema())
			if err := s.InsertBatch(rel, tuples); err != nil {
				t.Fatal(err)
			}
		}
	}
	insert(3)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	insert(2)

	// Records 1..3 are folded into the checkpoint: a cursor inside them is
	// told to re-bootstrap, a cursor past them reads the surviving tail.
	if _, err := s.ReadFrom(2); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadFrom(2) after checkpoint = %v, want ErrTruncated", err)
	}
	recs, err := s.ReadFrom(4)
	if err != nil || len(recs) != 2 || recs[0].Seq != 4 || recs[1].Seq != 5 {
		t.Fatalf("ReadFrom(4) = %v records, err %v; want [4 5]", len(recs), err)
	}
}

func TestCommitWatchWakesOnCommitAndClose(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Seed: seedFn})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))

	watch := s.CommitWatch()
	select {
	case <-watch:
		t.Fatal("commit watch fired before any commit")
	default:
	}
	rel, tuples := randBatch(rng, s.DB().Schema())
	if err := s.InsertBatch(rel, tuples); err != nil {
		t.Fatal(err)
	}
	select {
	case <-watch:
	case <-time.After(2 * time.Second):
		t.Fatal("commit watch did not fire on commit")
	}

	// After Close every watch — including ones taken later — is already
	// closed, so a tailer wakes immediately and observes the closed store
	// instead of blocking forever.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.CommitWatch():
	case <-time.After(2 * time.Second):
		t.Fatal("commit watch taken after Close blocked")
	}
	if _, err := s.ReadFrom(1); err == nil {
		t.Fatal("ReadFrom on a closed store succeeded")
	}
}

func TestCheckpointInstallRoundTrip(t *testing.T) {
	srcDir := t.TempDir()
	s, err := Open(srcDir, Options{Seed: seedFn})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 7; i++ {
		rel, tuples := randBatch(rng, s.DB().Schema())
		if err := s.InsertBatch(rel, tuples); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	seq, files, err := s.CheckpointFiles()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 || len(files) == 0 {
		t.Fatalf("CheckpointFiles = seq %d, %d files; want seq 7 and files", seq, len(files))
	}

	dstDir := t.TempDir()
	if has, err := HasCheckpoint(nil, dstDir); err != nil || has {
		t.Fatalf("fresh dir HasCheckpoint = %v, %v; want false", has, err)
	}
	if err := InstallCheckpoint(nil, dstDir, seq, files); err != nil {
		t.Fatal(err)
	}
	if has, err := HasCheckpoint(nil, dstDir); err != nil || !has {
		t.Fatalf("installed dir HasCheckpoint = %v, %v; want true", has, err)
	}

	// The installed directory recovers exactly the source's durable state:
	// same frontier, same full database fingerprint.
	r, err := Open(dstDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Seq() != 7 || r.CheckpointSeq() != 7 {
		t.Fatalf("recovered seq %d / checkpoint %d, want 7 / 7", r.Seq(), r.CheckpointSeq())
	}
	if got, want := fp(r.DB()), fp(s.DB()); !reflect.DeepEqual(got, want) {
		t.Fatalf("installed checkpoint diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestInstallCheckpointRejectsUnsafeNames(t *testing.T) {
	for _, name := range []string{"../escape", "a/b", `a\b`, ""} {
		err := InstallCheckpoint(nil, t.TempDir(), 1, []CheckpointFile{{Name: name, Data: []byte("x")}})
		if err == nil {
			t.Fatalf("InstallCheckpoint accepted unsafe file name %q", name)
		}
	}
}
