package wal

// Log is the append side of the write-ahead log: one file of framed
// records (record.go), opened with a torn-tail scan and truncation, then
// appended to and fsync'd record by record.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// logName is the WAL file inside a data directory.
const logName = "wal.log"

// Record is one valid log record surfaced by recovery.
type Record struct {
	Seq     uint64
	Payload []byte
}

// Log appends framed records to the WAL file. It is not goroutine-safe;
// the Store serializes access.
type Log struct {
	fs   FS
	dir  string
	path string
	f    File
	size int64 // valid bytes on disk (post torn-tail truncation)
	buf  []byte
}

// OpenLog opens (creating if missing) the WAL of a data directory and
// recovers its valid records: the file is scanned record by record and
// cut at the first torn or corrupted one — acknowledged records are never
// dropped, unacknowledged tails never survive. The valid records are
// returned in log order for replay.
func OpenLog(fs FS, dir string) (*Log, []Record, error) {
	l := &Log{fs: fs, dir: dir, path: filepath.Join(dir, logName)}
	data, err := fs.ReadFile(l.path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("wal: read log: %w", err)
	}
	var recs []Record
	off := 0
	for off < len(data) {
		seq, payload, n, ok := parseRecord(data[off:])
		if !ok {
			break
		}
		recs = append(recs, Record{Seq: seq, Payload: payload})
		off += n
	}
	if off < len(data) {
		// Torn tail: truncate to the last good record so the next append
		// lands on a clean boundary.
		if err := fs.Truncate(l.path, int64(off)); err != nil {
			return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := fs.SyncDir(dir); err != nil {
			return nil, nil, fmt.Errorf("wal: sync dir after truncation: %w", err)
		}
	}
	l.size = int64(off)
	if err := l.openAppend(); err != nil {
		return nil, nil, err
	}
	return l, recs, nil
}

func (l *Log) openAppend() error {
	f, err := l.fs.OpenFile(l.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open log for append: %w", err)
	}
	l.f = f
	return nil
}

// Append frames one record and writes it. The record is not durable —
// and must not be acknowledged — until Sync returns.
func (l *Log) Append(seq uint64, payload []byte) error {
	l.buf = appendRecord(l.buf[:0], seq, payload)
	n, err := l.f.Write(l.buf)
	l.size += int64(n)
	if err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if n < len(l.buf) {
		return fmt.Errorf("wal: append: short write (%d of %d bytes)", n, len(l.buf))
	}
	return nil
}

// Sync makes every appended record durable.
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Size returns the valid byte length of the log. Records wholly below a
// recorded Size were appended before the point it was taken.
func (l *Log) Size() int64 { return l.size }

// TruncatePrefix drops the first keepFrom bytes of the log — the prefix a
// committed checkpoint covers — by writing the tail to a fresh file and
// atomically renaming it over the log. Crash-safe: until the rename the
// old log is intact, after it the new one is, and replay's sequence
// filter tolerates either. The caller must guarantee no append runs
// concurrently.
func (l *Log) TruncatePrefix(keepFrom int64) error {
	if keepFrom <= 0 {
		return nil
	}
	if keepFrom > l.size {
		return fmt.Errorf("wal: truncate prefix %d beyond size %d", keepFrom, l.size)
	}
	data, err := l.fs.ReadFile(l.path)
	if err != nil {
		return fmt.Errorf("wal: truncate prefix: %w", err)
	}
	if int64(len(data)) < keepFrom {
		return fmt.Errorf("wal: log shrank under truncation: %d < %d", len(data), keepFrom)
	}
	tail := data[keepFrom:l.size]
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: truncate prefix: close: %w", err)
	}
	l.f = nil
	if err := writeFileSync(l.fs, l.path, tail); err != nil {
		return fmt.Errorf("wal: truncate prefix: %w", err)
	}
	l.size = int64(len(tail))
	return l.openAppend()
}

// Close syncs and closes the log file.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
