package geometry

import (
	"math"
	"testing"

	"repro/internal/mc"
)

func TestBallVolume(t *testing.T) {
	cases := []struct {
		n    int
		r    float64
		want float64
	}{
		{0, 1, 1},
		{1, 1, 2},
		{2, 1, math.Pi},
		{3, 1, 4 * math.Pi / 3},
		{2, 2, 4 * math.Pi},
		{4, 1, math.Pi * math.Pi / 2},
	}
	for _, c := range cases {
		if got := BallVolume(c.n, c.r); math.Abs(got-c.want) > 1e-9*c.want {
			t.Errorf("BallVolume(%d, %g) = %g, want %g", c.n, c.r, got, c.want)
		}
	}
}

// box builds the axis box Π[lo_i, hi_i] as a halfspace body with a huge
// enclosing ball (so Volume's outer-radius logic works).
func box(lo, hi []float64) *Body {
	n := len(lo)
	b := &Body{N: n}
	for i := 0; i < n; i++ {
		c := make([]float64, n)
		c[i] = 1
		b.Half = append(b.Half, Halfspace{C: c, B: hi[i]})
		c2 := make([]float64, n)
		c2[i] = -1
		b.Half = append(b.Half, Halfspace{C: c2, B: -lo[i]})
	}
	center := make([]float64, n)
	r := 0.0
	for i := range lo {
		center[i] = (lo[i] + hi[i]) / 2
		r += (hi[i] - lo[i]) * (hi[i] - lo[i]) / 4
	}
	b.Balls = append(b.Balls, BallConstraint{Center: center, R: math.Sqrt(r) * 1.01})
	return b
}

func TestContainsAndChord(t *testing.T) {
	b := box([]float64{0, 0}, []float64{1, 2})
	if !b.Contains([]float64{0.5, 1}, 0) {
		t.Error("center not contained")
	}
	if b.Contains([]float64{1.5, 1}, 0) {
		t.Error("outside point contained")
	}
	lo, hi := b.Chord([]float64{0.5, 1}, []float64{1, 0})
	if math.Abs(lo+0.5) > 1e-9 || math.Abs(hi-0.5) > 1e-9 {
		t.Errorf("chord = [%g, %g], want [-0.5, 0.5]", lo, hi)
	}
	// Line missing the body.
	lo, hi = b.Chord([]float64{5, 5}, []float64{0, 1})
	if lo <= hi {
		t.Errorf("missing line produced chord [%g, %g]", lo, hi)
	}
}

// TestChordEndpointsProperty: for random interior points and directions,
// the chord endpoints lie (numerically) on the body's boundary region and
// points slightly beyond them are outside.
func TestChordEndpointsProperty(t *testing.T) {
	rng := mc.NewRNG(77)
	b := box([]float64{-1, 0, 2}, []float64{1, 3, 5})
	x0 := []float64{0, 1.5, 3.5}
	for trial := 0; trial < 300; trial++ {
		d := mc.SampleSphere(rng, 3)
		lo, hi := b.Chord(x0, d)
		if lo > hi {
			t.Fatalf("trial %d: interior point produced empty chord", trial)
		}
		at := func(lam float64) []float64 {
			p := make([]float64, 3)
			for i := range p {
				p[i] = x0[i] + lam*d[i]
			}
			return p
		}
		if !b.Contains(at(lo+1e-9), 1e-6) || !b.Contains(at(hi-1e-9), 1e-6) {
			t.Fatalf("trial %d: chord endpoints not inside", trial)
		}
		if b.Contains(at(lo-1e-3), 0) && b.Contains(at(hi+1e-3), 0) {
			t.Fatalf("trial %d: both extended endpoints still inside", trial)
		}
		// Midpoint is inside (convexity).
		if !b.Contains(at((lo+hi)/2), 1e-9) {
			t.Fatalf("trial %d: chord midpoint outside", trial)
		}
	}
}

func TestInteriorPoint(t *testing.T) {
	b := box([]float64{0, 0}, []float64{1, 1})
	x, rho, ok, err := b.InteriorPoint()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !b.Contains(x, 0) {
		t.Errorf("interior point %v outside body", x)
	}
	if rho < 0.2 {
		t.Errorf("inscribed radius %g too small for the unit square", rho)
	}
	// Empty body: x ≤ 0 and x ≥ 1.
	empty := &Body{N: 1, Half: []Halfspace{{C: []float64{1}, B: 0}, {C: []float64{-1}, B: -1}}}
	if _, _, ok, _ := empty.InteriorPoint(); ok {
		t.Error("empty body has interior point")
	}
	// Lower-dimensional body: x = 0 slab.
	flat := &Body{N: 2, Half: []Halfspace{{C: []float64{1, 0}, B: 0}, {C: []float64{-1, 0}, B: 0}}}
	flat.Balls = append(flat.Balls, BallConstraint{Center: []float64{0, 0}, R: 1})
	if _, _, ok, _ := flat.InteriorPoint(); ok {
		t.Error("measure-zero body has interior point")
	}
}

func TestSamplerStaysInsideAndCoversBody(t *testing.T) {
	rng := mc.NewRNG(42)
	b := box([]float64{0, 0}, []float64{1, 1})
	x0, _, ok, _ := b.InteriorPoint()
	if !ok {
		t.Fatal("no interior point")
	}
	s, err := NewSampler(b, x0, rng, 20)
	if err != nil {
		t.Fatal(err)
	}
	var mean [2]float64
	const N = 2000
	quad := [2][2]int{}
	for i := 0; i < N; i++ {
		x := s.Next()
		if !b.Contains(x, 1e-9) {
			t.Fatalf("sample %v escaped the body", x)
		}
		mean[0] += x[0] / N
		mean[1] += x[1] / N
		qi, qj := 0, 0
		if x[0] > 0.5 {
			qi = 1
		}
		if x[1] > 0.5 {
			qj = 1
		}
		quad[qi][qj]++
	}
	if math.Abs(mean[0]-0.5) > 0.05 || math.Abs(mean[1]-0.5) > 0.05 {
		t.Errorf("sample mean %v far from box center", mean)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if f := float64(quad[i][j]) / N; f < 0.15 || f > 0.35 {
				t.Errorf("quadrant (%d,%d) frequency %.3f, want ≈0.25", i, j, f)
			}
		}
	}
}

func TestSamplerRejectsOutsideStart(t *testing.T) {
	b := box([]float64{0, 0}, []float64{1, 1})
	if _, err := NewSampler(b, []float64{5, 5}, mc.NewRNG(1), 10); err == nil {
		t.Error("outside start accepted")
	}
}

func TestVolumeOfBoxes(t *testing.T) {
	rng := mc.NewRNG(7)
	cases := []struct {
		lo, hi []float64
		want   float64
	}{
		{[]float64{0, 0}, []float64{1, 1}, 1},
		{[]float64{0, 0}, []float64{2, 3}, 6},
		{[]float64{-1, -1, -1}, []float64{1, 1, 1}, 8},
	}
	for _, c := range cases {
		v, err := Volume(box(c.lo, c.hi), rng, VolumeOptions{SamplesPerPhase: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-c.want) > 0.18*c.want {
			t.Errorf("Volume(box %v-%v) = %g, want %g ±18%%", c.lo, c.hi, v, c.want)
		}
	}
}

func TestVolumeOfSimplex(t *testing.T) {
	// {x ≥ 0, Σx ≤ 1} in 3D has volume 1/6.
	n := 3
	b := &Body{N: n}
	for i := 0; i < n; i++ {
		c := make([]float64, n)
		c[i] = -1
		b.Half = append(b.Half, Halfspace{C: c, B: 0})
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b.Half = append(b.Half, Halfspace{C: ones, B: 1})
	b.Balls = append(b.Balls, BallConstraint{Center: make([]float64, n), R: 1.01})

	v, err := Volume(b, mc.NewRNG(3), VolumeOptions{SamplesPerPhase: 4000})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 6
	if math.Abs(v-want) > 0.2*want {
		t.Errorf("simplex volume = %g, want %g ±20%%", v, want)
	}
}

func TestVolumeOfConeSector(t *testing.T) {
	// Quarter-disk {x ≤ 0, y ≤ 0} ∩ B(0,1): area π/4.
	b := NewConeInBall(2, [][]float64{{1, 0}, {0, 1}})
	v, err := Volume(b, mc.NewRNG(9), VolumeOptions{SamplesPerPhase: 4000})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pi / 4
	if math.Abs(v-want) > 0.15*want {
		t.Errorf("quarter-disk volume = %g, want %g", v, want)
	}
}

func TestVolumeEmptyCone(t *testing.T) {
	// {x ≤ 0, -x ≤ -1}: empty.
	b := NewConeInBall(1, [][]float64{{1}, {-1}})
	b.Half[1].B = -1
	v, err := Volume(b, mc.NewRNG(1), VolumeOptions{})
	if err != nil || v != 0 {
		t.Errorf("empty body volume = %g, err %v", v, err)
	}
}

func TestUnionVolumeOverlappingBoxes(t *testing.T) {
	// [0,1]² ∪ [0.5,1.5]×[0,1]: area 1.5, with 0.5 overlap.
	b1 := box([]float64{0, 0}, []float64{1, 1})
	b2 := box([]float64{0.5, 0}, []float64{1.5, 1})
	v, err := UnionVolume([]*Body{b1, b2}, mc.NewRNG(11), UnionVolumeOptions{
		Samples: 8000, Volume: VolumeOptions{SamplesPerPhase: 4000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.5) > 0.25 {
		t.Errorf("union volume = %g, want 1.5", v)
	}
}

func TestUnionVolumeDisjointAndEmpty(t *testing.T) {
	b1 := box([]float64{0, 0}, []float64{1, 1})
	b2 := box([]float64{3, 3}, []float64{4, 4})
	empty := NewConeInBall(2, [][]float64{{1, 0}, {-1, 0}})
	empty.Half[1].B = -1 // x ≤ 0 ∧ x ≥ 1
	v, err := UnionVolume([]*Body{b1, b2, empty}, mc.NewRNG(13), UnionVolumeOptions{
		Samples: 6000, Volume: VolumeOptions{SamplesPerPhase: 3000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 0.3 {
		t.Errorf("disjoint union volume = %g, want 2", v)
	}
	if u, _ := UnionVolume(nil, mc.NewRNG(1), UnionVolumeOptions{}); u != 0 {
		t.Errorf("empty union = %g", u)
	}
}
