package core

import (
	"sync"

	"repro/internal/realfmla"
)

// itemOptions derives the per-item engine options of a concurrent
// measurement pool (MeasureBatch, Engine.MeasureSQL): a deterministic
// per-index seed, and no nested sampling fan-out unless explicitly
// requested — the pool is already GOMAXPROCS wide, and values are
// Workers-independent, so this only affects scheduling. Both pools MUST
// share this function; it is the determinism contract tying MeasureSQL
// to MeasureBatch.
func itemOptions(o Options, idx int) Options {
	o.Seed += int64(idx) * 1_000_003
	if o.Workers == 0 {
		o.Workers = 1
	}
	return o
}

// resetItem reconfigures a pooled per-item engine for one measurement.
// The engine behaves bit-identically to New(o) with the same shared
// kernel cache: the RNG source reseeds in place exactly as a fresh
// source seeds, the compiled-entry cache holds only immutable kernels
// plus sampling scratch that reseeds per chunk, and no other state
// survives a measurement. Pooling the engines merely avoids rebuilding
// the ~5 KB RNG state (and the engine allocation) per candidate.
func (e *Engine) resetItem(o Options, kernels *kernelCache) {
	e.opts = o.withDefaults()
	e.reseedPending = true
	e.memoServed = 0
	e.shared = kernels
}

// itemEngine returns the w-th reusable pool engine of this engine's
// measurement pools, creating it on first use. Each pool worker owns one
// engine for the duration of a call; calls on the parent engine are
// sequential, so reuse across calls is single-owner too.
func (e *Engine) itemEngine(w int) *Engine {
	for len(e.itemEngines) <= w {
		eng := New(e.opts)
		eng.seedMemo = make(map[int64]int64)
		e.itemEngines = append(e.itemEngines, eng)
	}
	return e.itemEngines[w]
}

// MeasureBatch computes measures for many formulas concurrently — the
// shape of the experiment pipeline, where every candidate tuple of a SQL
// result needs its own confidence level. Engines are not safe for
// concurrent use, so each formula is measured under its own per-index
// seeding (itemOptions) on a worker-owned engine: results are identical
// to a sequential run regardless of scheduling. A nil error slice entry
// means the corresponding result is valid.
func MeasureBatch(opts Options, phis []realfmla.Formula, eps, delta float64) ([]Result, []error) {
	n := len(phis)
	results := make([]Result, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs
	}
	// Validate once up front with the shared validator: previously a batch
	// of exactly-decidable formulas sailed past a bad eps (only the
	// sampling path checked), so the contract differed across entry points.
	if err := ValidateEpsDelta(eps, delta); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return results, errs
	}
	o := opts.withDefaults()
	workers := o.poolWorkers()
	if workers > n {
		workers = n
	}
	// One shared compiled-kernel cache per batch: duplicate formulas
	// compile once, and sharing cannot change values (see kernelCache).
	var kernels *kernelCache
	if o.CompileCacheSize >= 0 {
		kernels = newKernelCache(o.CompileCacheSize)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := New(o)
			for i := range next {
				eng.resetItem(itemOptions(o, i), kernels)
				results[i], errs[i] = eng.MeasureFormula(phis[i], eps, delta)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return results, errs
}
