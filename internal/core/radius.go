package core

import (
	"fmt"
	"math"

	"repro/internal/mc"
	"repro/internal/realfmla"
)

// MuAtRadius estimates the finite-radius measure μ_r of Section 4 for a
// translated formula: the fraction of the ball B^k_r occupied by the
// satisfying set of φ, estimated with `samples` uniform points. As r grows
// this converges to ν(φ) = μ (the well-definedness theorem, Section 5);
// the convergence is exercised by tests and cmd/experiments.
func (e *Engine) MuAtRadius(phi realfmla.Formula, r float64, samples int) (float64, error) {
	if r <= 0 {
		return 0, fmt.Errorf("core: radius must be positive, got %g", r)
	}
	if samples <= 0 {
		return 0, fmt.Errorf("core: samples must be positive, got %d", samples)
	}
	ent := e.compiledFor(phi)
	n := len(ent.vars)
	if n == 0 {
		if realfmla.Eval(ent.reduced, nil) {
			return 1, nil
		}
		return 0, nil
	}
	// Note: reducing to the relevant variables is valid at finite radius
	// too, because the satisfying set is a cylinder and the fraction of
	// B^k_r occupied by a cylinder over a set S ⊆ B^n_r equals the fraction
	// of B^n_r occupied by S only asymptotically; at finite r the cylinder
	// fraction is a radially reweighted version. For the convergence
	// demonstrations we therefore sample in the reduced space, which has
	// the same r → ∞ limit.
	ev := ent.sampler().ev
	hits := 0
	for i := 0; i < samples; i++ {
		x := mc.SampleBall(e.rand(), n)
		for j := range x {
			x[j] *= r
		}
		if ev.Eval(x) {
			hits++
		}
	}
	return float64(hits) / float64(samples), nil
}

// MuAtRadiusLattice is the integer variant sketched in the paper's
// Section 10: instead of volumes, count the integer lattice points of
// B^n_r that satisfy φ. By the n-dimensional Gauss circle bound the count
// approximates the volume up to lower-order terms, so the lattice measure
// converges to the same ν(φ) as r grows — which tests exercise. Exact
// enumeration; feasible for few relevant variables and moderate radii
// (the loop visits ~(2r+1)ⁿ points).
func (e *Engine) MuAtRadiusLattice(phi realfmla.Formula, r int) (float64, error) {
	if r <= 0 {
		return 0, fmt.Errorf("core: radius must be positive, got %d", r)
	}
	ent := e.compiledFor(phi)
	n := len(ent.vars)
	if n == 0 {
		if realfmla.Eval(ent.reduced, nil) {
			return 1, nil
		}
		return 0, nil
	}
	if pts := math.Pow(float64(2*r+1), float64(n)); pts > 5e8 {
		return 0, fmt.Errorf("core: lattice enumeration too large (%g points)", pts)
	}
	ev := ent.sampler().ev
	x := make([]float64, n)
	r2 := float64(r) * float64(r)
	total, hits := 0, 0
	var rec func(i int, norm2 float64)
	rec = func(i int, norm2 float64) {
		if i == n {
			total++
			if ev.Eval(x) {
				hits++
			}
			return
		}
		for v := -r; v <= r; v++ {
			nv := norm2 + float64(v)*float64(v)
			if nv > r2 {
				continue
			}
			x[i] = float64(v)
			rec(i+1, nv)
		}
	}
	rec(0, 0)
	if total == 0 {
		return 0, nil
	}
	return float64(hits) / float64(total), nil
}
