// Package mc is a fixture stand-in for the real repro/internal/mc: just
// enough SplitMix64 for the detrand analyzer's allowed-source check.
package mc

// SplitMix64 mirrors the real O(1)-reseed rand.Source.
type SplitMix64 struct{ s uint64 }

func NewSplitMix64(seed int64) *SplitMix64 { return &SplitMix64{s: uint64(seed)} }

func (m *SplitMix64) Seed(seed int64) { m.s = uint64(seed) }

func (m *SplitMix64) Int63() int64 { return int64(m.next() >> 1) }

func (m *SplitMix64) Uint64() uint64 { return m.next() }

func (m *SplitMix64) next() uint64 {
	m.s += 0x9e3779b97f4a7c15
	z := m.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
