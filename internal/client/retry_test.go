package client

// Retry-policy tests: transient pushback (429, non-degraded 503) retries
// with backoff for every endpoint, transport errors retry only for
// idempotent requests — never for inserts, whose first attempt may have
// committed — and sticky degraded 503s are never retried.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/value"
	"repro/internal/wire"
)

// fastRetry keeps test backoff tiny.
var fastRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

// flaky serves failures until `failures` requests have been seen, then
// succeeds.
type flaky struct {
	calls    atomic.Int32
	failures int32
	status   int
	code     string
	ok       func(w http.ResponseWriter, r *http.Request)
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.calls.Add(1) <= f.failures {
		w.Header().Set("Retry-After", "0")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(f.status)
		_ = json.NewEncoder(w).Encode(wire.ErrorResponse{Error: "nope", Code: f.code})
		return
	}
	f.ok(w, r)
}

func okJSON(v any) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(v)
	}
}

func TestRetryOnBusyThenSuccess(t *testing.T) {
	h := &flaky{failures: 2, status: http.StatusTooManyRequests, code: wire.CodeBusy,
		ok: okJSON(wire.InsertResponse{Inserted: 1, Tuples: 10, Version: 3})}
	hs := httptest.NewServer(h)
	defer hs.Close()
	c := NewWith(hs.URL, hs.Client()).WithRetry(fastRetry)
	// 429 is a pre-commit rejection, so even the non-idempotent insert
	// retries through it.
	res, err := c.Insert(context.Background(), "R", []value.Tuple{{value.Num(1)}})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if res.Version != 3 {
		t.Fatalf("got %+v", res)
	}
	if got := h.calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestRetryExhaustionSurfacesError(t *testing.T) {
	h := &flaky{failures: 99, status: http.StatusServiceUnavailable, code: wire.CodeShuttingDown,
		ok: okJSON(struct{}{})}
	hs := httptest.NewServer(h)
	defer hs.Close()
	c := NewWith(hs.URL, hs.Client()).WithRetry(fastRetry)
	err := c.Health(context.Background())
	var se *ServerError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("got %v, want the final 503", err)
	}
	if got := h.calls.Load(); got != int32(fastRetry.MaxAttempts) {
		t.Fatalf("server saw %d attempts, want %d", got, fastRetry.MaxAttempts)
	}
}

func TestNoRetryOnDegraded(t *testing.T) {
	h := &flaky{failures: 99, status: http.StatusServiceUnavailable, code: wire.CodeDegraded,
		ok: okJSON(struct{}{})}
	hs := httptest.NewServer(h)
	defer hs.Close()
	c := NewWith(hs.URL, hs.Client()).WithRetry(fastRetry)
	_, err := c.Insert(context.Background(), "R", []value.Tuple{{value.Num(1)}})
	var se *ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeDegraded {
		t.Fatalf("got %v, want degraded", err)
	}
	if got := h.calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a sticky degraded 503, want 1", got)
	}
}

func TestNoRetryOnBadRequest(t *testing.T) {
	h := &flaky{failures: 99, status: http.StatusBadRequest, code: wire.CodeBadRequest,
		ok: okJSON(struct{}{})}
	hs := httptest.NewServer(h)
	defer hs.Close()
	c := NewWith(hs.URL, hs.Client()).WithRetry(fastRetry)
	if _, err := c.MeasureSQL(context.Background(), "SELECT", 0, 0); err == nil {
		t.Fatal("bad request succeeded")
	}
	if got := h.calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a 400, want 1", got)
	}
}

// failingTransport fails the first n round trips at the transport layer
// (connection reset shape), then delegates.
type failingTransport struct {
	calls atomic.Int32
	fail  int32
	inner http.RoundTripper
}

func (f *failingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if f.calls.Add(1) <= f.fail {
		return nil, errors.New("read tcp: connection reset by peer")
	}
	return f.inner.RoundTrip(r)
}

func TestTransportErrorRetriesIdempotentOnly(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(okJSON(wire.InfoResponse{Tuples: 7})))
	defer hs.Close()

	ft := &failingTransport{fail: 2, inner: hs.Client().Transport}
	c := NewWith(hs.URL, &http.Client{Transport: ft}).WithRetry(fastRetry)
	info, err := c.Info(context.Background())
	if err != nil {
		t.Fatalf("info through flaky transport: %v", err)
	}
	if info.Tuples != 7 || ft.calls.Load() != 3 {
		t.Fatalf("info %+v after %d attempts, want 3 attempts", info, ft.calls.Load())
	}

	// The same transport failure on an insert must surface immediately:
	// the first attempt may have committed server-side.
	ft2 := &failingTransport{fail: 99, inner: hs.Client().Transport}
	c2 := NewWith(hs.URL, &http.Client{Transport: ft2}).WithRetry(fastRetry)
	if _, err := c2.Insert(context.Background(), "R", []value.Tuple{{value.Num(1)}}); err == nil {
		t.Fatal("insert through dead transport succeeded")
	}
	if got := ft2.calls.Load(); got != 1 {
		t.Fatalf("insert made %d attempts over a transport error, want 1", got)
	}
}

func TestRetryRespectsContextCancel(t *testing.T) {
	h := &flaky{failures: 99, status: http.StatusTooManyRequests, code: wire.CodeBusy,
		ok: okJSON(struct{}{})}
	hs := httptest.NewServer(h)
	defer hs.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewWith(hs.URL, hs.Client()).WithRetry(RetryPolicy{MaxAttempts: 10, BaseDelay: time.Hour})
	start := time.Now()
	if err := c.Health(ctx); err == nil {
		t.Fatal("health with canceled context succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("canceled context did not cut the backoff short")
	}
}

// Retry-After arrives in two RFC 9110 forms; the header used to be read
// only as delta-seconds, silently dropping the HTTP-date form a proxy may
// rewrite it into.
func TestParseRetryAfterBothForms(t *testing.T) {
	if got := parseRetryAfter("7"); got != 7*time.Second {
		t.Fatalf("delta-seconds: got %v, want 7s", got)
	}
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(future); got <= 0 || got > 90*time.Second {
		t.Fatalf("http-date %q: got %v, want a positive wait of at most 90s", future, got)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(past); got != 0 {
		t.Fatalf("past http-date: got %v, want 0 (retry now, never a negative backoff)", got)
	}
	if got := parseRetryAfter("-3"); got != 0 {
		t.Fatalf("negative delta: got %v, want 0", got)
	}
	if got := parseRetryAfter("soon"); got != 0 {
		t.Fatalf("garbage: got %v, want 0", got)
	}
}

func TestDecodeErrorRetryAfterHTTPDate(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(wire.ErrorResponse{Error: "busy", Code: wire.CodeBusy})
	}))
	defer hs.Close()
	err := NewWith(hs.URL, hs.Client()).Health(context.Background())
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want a ServerError", err)
	}
	if se.RetryAfter <= 0 || se.RetryAfter > 30*time.Second {
		t.Fatalf("RetryAfter from an HTTP-date header: got %v, want a positive wait of at most 30s", se.RetryAfter)
	}
}

func TestBackoffCapsAndJitter(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	for attempt := 1; attempt <= 6; attempt++ {
		for i := 0; i < 50; i++ {
			d := p.backoff(attempt, 0)
			if d <= 0 || d > p.MaxDelay {
				t.Fatalf("attempt %d: backoff %v outside (0, %v]", attempt, d, p.MaxDelay)
			}
		}
	}
	if d := p.backoff(1, 300*time.Millisecond); d != 300*time.Millisecond {
		t.Fatalf("Retry-After hint ignored: %v", d)
	}
}
