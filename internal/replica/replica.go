// Package replica is the read-replica side of WAL shipping: it
// bootstraps a local durable store from the primary's newest checkpoint,
// then tails the primary's replication log — fetch, CRC-verify, replay —
// into its own WAL + checkpoint chain, so the replica converges
// bit-identically on the primary's durable prefix and survives its own
// crashes with ordinary wal.Open recovery.
//
// The catchup loop is level-triggered and resumable: the replica's own
// durable sequence number IS the replication cursor (every applied batch
// went through the local WAL before it was acknowledged to the loop), so
// after any interruption — network fault, replica crash, primary crash —
// the loop reconnects at lastAppliedSeq+1 and continues. Records the
// stream re-delivers after a reconnect are skipped by sequence number,
// which makes replay idempotent: no batch is ever applied twice, no
// matter how rudely the stream died.
//
// Failure posture, in the fail-operational shape of the PR-6 store:
//   - any fetch/verify/apply error tears the connection down and
//     reconnects with capped, fully-jittered exponential backoff;
//   - a CRC mismatch or torn frame is treated as a network fault (drop
//     and re-fetch), never applied;
//   - a primary that checkpointed past the cursor answers 410
//     "log-truncated"; the replica re-bootstraps from the checkpoint
//     endpoint and swaps the freshly adopted store in atomically
//     (readers keep their pinned snapshots);
//   - reads are served throughout, with staleness surfaced via
//     LastAppliedSeq/PrimarySeq (wired into /v1/info and /healthz by
//     internal/server).
package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/wal"
	"repro/internal/wire"
)

// errTruncated marks a 410 log-truncated answer from the primary: the
// cursor fell behind a checkpoint and the loop must re-bootstrap.
var errTruncated = errors.New("replica: primary truncated the log past our cursor")

// Config configures a Replicator.
type Config struct {
	// Primary is the primary's base URL (required).
	Primary string
	// Dir is the replica's own durable data directory (required). First
	// boot bootstraps it from the primary; later boots recover locally
	// and catch up from the recovered sequence number.
	Dir string
	// HTTP is the client used against the primary; nil uses a default.
	// The chaos harness injects a faultnet.Transport here.
	HTTP *http.Client
	// FS is the local filesystem seam (nil = real; tests inject FaultFS).
	FS wal.FS
	// CheckpointEvery starts the local background checkpointer, exactly
	// as on the primary. Zero disables it.
	CheckpointEvery time.Duration
	// NoSync skips the per-batch fsync of the local WAL (benchmarks).
	NoSync bool
	// BackoffMin/BackoffMax bound the reconnect backoff (defaults 100ms,
	// 5s). Sleeps are fully jittered so a replica fleet does not
	// re-stampede a recovering primary in lockstep.
	BackoffMin, BackoffMax time.Duration
	// JitterSeed seeds the backoff jitter. Zero (the default) seeds from
	// the clock, which is what production wants — distinct replicas must
	// not jitter in lockstep; tests and the chaos harness set it to make
	// a run's backoff schedule reproducible.
	JitterSeed int64
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	if c.Primary == "" {
		return c, errors.New("replica: Config.Primary is required")
	}
	if _, err := url.Parse(c.Primary); err != nil {
		return c, fmt.Errorf("replica: bad primary URL: %w", err)
	}
	c.Primary = strings.TrimRight(c.Primary, "/")
	if c.Dir == "" {
		return c, errors.New("replica: Config.Dir is required")
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 100 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = 5 * time.Second
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = c.BackoffMin
	}
	return c, nil
}

// Replicator owns the replica's durable store and the catchup loop.
// DB/LastAppliedSeq/PrimarySeq are safe from any goroutine; Run is the
// loop itself.
type Replicator struct {
	cfg        Config
	store      atomic.Pointer[wal.Store]
	primarySeq atomic.Uint64
	rng        *rand.Rand // backoff jitter; only Run's goroutine touches it
}

// Open prepares the replica: first boot fetches and installs the
// primary's newest checkpoint (retrying torn fetches is the caller's
// loop — Open makes one attempt); later boots recover the local
// checkpoint + WAL without talking to the primary at all.
func Open(ctx context.Context, cfg Config) (*Replicator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &Replicator{cfg: cfg, rng: newJitterRNG(cfg.JitterSeed)}
	has, err := wal.HasCheckpoint(cfg.FS, cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("replica: inspect %s: %w", cfg.Dir, err)
	}
	if !has {
		if err := r.bootstrap(ctx); err != nil {
			return nil, err
		}
	}
	st, err := r.openStore()
	if err != nil {
		return nil, err
	}
	r.store.Store(st)
	r.logf("replica: recovered %s at seq %d (primary %s)", cfg.Dir, st.Seq(), cfg.Primary)
	return r, nil
}

// newJitterRNG builds the backoff-jitter rng: an explicit seed pins the
// schedule (tests, chaos harness); zero falls back to the clock so a
// fleet of replicas never jitters in lockstep.
func newJitterRNG(seed int64) *rand.Rand {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return rand.New(rand.NewSource(seed))
}

func (r *Replicator) openStore() (*wal.Store, error) {
	return wal.Open(r.cfg.Dir, wal.Options{
		FS:              r.cfg.FS,
		CheckpointEvery: r.cfg.CheckpointEvery,
		NoSync:          r.cfg.NoSync,
		Logf:            r.cfg.Logf,
	})
}

func (r *Replicator) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// DB returns the current database the replica serves. It swaps only on a
// mid-run re-bootstrap; readers pin snapshots per request as usual.
func (r *Replicator) DB() *db.Database { return r.store.Load().DB() }

// Store returns the replica's current durable store (tests and the
// shutdown path use it).
func (r *Replicator) Store() *wal.Store { return r.store.Load() }

// LastAppliedSeq is the replay frontier: every batch up to it is applied
// and locally durable.
func (r *Replicator) LastAppliedSeq() uint64 { return r.store.Load().Seq() }

// PrimarySeq is the primary's durable frontier as last observed (0
// before first contact).
func (r *Replicator) PrimarySeq() uint64 { return r.primarySeq.Load() }

// Primary is the primary's base URL.
func (r *Replicator) Primary() string { return r.cfg.Primary }

// Close closes the local store. Call after Run has returned.
func (r *Replicator) Close() error { return r.store.Load().Close() }

// Run is the catchup loop: it blocks until ctx is done, reconnecting
// with capped jittered backoff on every error, re-bootstrapping on
// truncation, resetting the backoff whenever a connection makes
// progress. Call it from one goroutine.
func (r *Replicator) Run(ctx context.Context) {
	backoff := r.cfg.BackoffMin
	for ctx.Err() == nil {
		progressed, err := r.tail(ctx)
		if ctx.Err() != nil {
			return
		}
		if errors.Is(err, errTruncated) {
			r.logf("replica: %v; re-bootstrapping from checkpoint", err)
			if rbErr := r.rebootstrap(ctx); rbErr == nil {
				backoff = r.cfg.BackoffMin
				continue
			} else {
				err = rbErr
			}
		}
		if progressed {
			backoff = r.cfg.BackoffMin
		}
		r.logf("replica: stream interrupted: %v (reconnecting in <=%v)", err, backoff)
		// Full jitter: sleep uniform in (0, backoff].
		sleep := time.Duration(1 + r.rng.Int63n(int64(backoff)))
		select {
		case <-ctx.Done():
			return
		case <-time.After(sleep):
		}
		backoff = min(backoff*2, r.cfg.BackoffMax)
	}
}

// tail runs one connection lifetime of the log stream: connect at the
// cursor, verify and apply every record, track the primary's frontier
// from heartbeats. It returns whether any batch was applied and the
// error that ended the stream (io.EOF from a cleanly closed stream is an
// error too: the tail is supposed to be endless).
func (r *Replicator) tail(ctx context.Context) (progressed bool, err error) {
	st := r.store.Load()
	from := st.Seq() + 1
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/replication/log?from=%d", r.cfg.Primary, from), nil)
	if err != nil {
		return false, err
	}
	resp, err := r.cfg.HTTP.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, replError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 128<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec wire.ReplRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return progressed, fmt.Errorf("replica: bad stream line: %w", err)
		}
		if rec.PrimarySeq > r.primarySeq.Load() {
			r.primarySeq.Store(rec.PrimarySeq)
		}
		if rec.Heartbeat {
			continue
		}
		applied, err := r.apply(rec)
		if err != nil {
			return progressed, err
		}
		progressed = progressed || applied
	}
	if err := sc.Err(); err != nil {
		return progressed, err
	}
	return progressed, io.ErrUnexpectedEOF // server closed a supposedly endless tail
}

// apply verifies and replays one shipped record into the local store.
// Records at or below the local frontier are skipped — the idempotence
// that makes reconnect-with-overlap safe.
func (r *Replicator) apply(rec wire.ReplRecord) (applied bool, err error) {
	if wal.Checksum(rec.Seq, rec.Payload) != rec.CRC {
		// Torn or corrupted in flight; never apply, drop the connection and
		// re-fetch.
		return false, fmt.Errorf("replica: record %d failed CRC verification", rec.Seq)
	}
	st := r.store.Load()
	last := st.Seq()
	if rec.Seq <= last {
		return false, nil // already applied (stream overlap after reconnect)
	}
	if rec.Seq != last+1 {
		return false, fmt.Errorf("replica: sequence gap: record %d after %d", rec.Seq, last)
	}
	b, err := wal.DecodeBatch(rec.Payload)
	if err != nil {
		return false, fmt.Errorf("replica: record %d: %w", rec.Seq, err)
	}
	// The local commit path is the primary's: validate, WAL-append, fsync,
	// apply. The local store assigns exactly rec.Seq (it commits last+1),
	// so the replica's WAL chain mirrors the primary's sequence numbering.
	if err := st.InsertBatch(b.Relation, b.Tuples); err != nil {
		return false, fmt.Errorf("replica: replay record %d: %w", rec.Seq, err)
	}
	return true, nil
}

// bootstrap fetches the primary's newest checkpoint and installs it as
// the local baseline.
func (r *Replicator) bootstrap(ctx context.Context) error {
	seq, files, err := r.fetchCheckpoint(ctx)
	if err != nil {
		return err
	}
	if err := wal.InstallCheckpoint(r.cfg.FS, r.cfg.Dir, seq, files); err != nil {
		return err
	}
	r.logf("replica: bootstrapped %s from %s checkpoint at seq %d (%d files)",
		r.cfg.Dir, r.cfg.Primary, seq, len(files))
	return nil
}

// rebootstrap adopts a fresh primary checkpoint mid-run: the old store
// is closed, the checkpoint installed over it, and the reopened store
// swapped in atomically. In-flight readers keep their pinned snapshots;
// new requests see the adopted state.
func (r *Replicator) rebootstrap(ctx context.Context) error {
	seq, files, err := r.fetchCheckpoint(ctx)
	if err != nil {
		return err
	}
	if seq <= r.store.Load().Seq() {
		// The primary's checkpoint does not get us past our own frontier —
		// nothing to adopt (and adopting would discard nothing wrong). Retry
		// the tail instead.
		return fmt.Errorf("replica: primary checkpoint at %d not ahead of local seq %d", seq, r.store.Load().Seq())
	}
	old := r.store.Load()
	if err := old.Close(); err != nil {
		r.logf("replica: closing store before re-bootstrap: %v", err)
	}
	if err := wal.InstallCheckpoint(r.cfg.FS, r.cfg.Dir, seq, files); err != nil {
		return err
	}
	st, err := r.openStore()
	if err != nil {
		return err
	}
	r.store.Store(st)
	r.logf("replica: re-bootstrapped at seq %d", seq)
	return nil
}

// fetchCheckpoint streams the checkpoint endpoint, verifying the file
// count, every CRC, and the terminator — a stream that dies anywhere
// short of whole is rejected.
func (r *Replicator) fetchCheckpoint(ctx context.Context) (seq uint64, files []wal.CheckpointFile, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		r.cfg.Primary+"/v1/replication/checkpoint", nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := r.cfg.HTTP.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, nil, replError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 128<<20)
	if !sc.Scan() {
		return 0, nil, fmt.Errorf("replica: checkpoint stream ended before the header (%w)", orUnexpectedEOF(sc.Err()))
	}
	var hdr wire.ReplCheckpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return 0, nil, fmt.Errorf("replica: bad checkpoint header: %w", err)
	}
	for i := 0; i < hdr.Files; i++ {
		if !sc.Scan() {
			return 0, nil, fmt.Errorf("replica: checkpoint stream torn at file %d of %d (%w)", i, hdr.Files, orUnexpectedEOF(sc.Err()))
		}
		var f wire.ReplFile
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return 0, nil, fmt.Errorf("replica: bad checkpoint file line: %w", err)
		}
		if f.CRC != wal.Checksum(hdr.Seq, f.Data) {
			return 0, nil, fmt.Errorf("replica: checkpoint file %s failed CRC verification", f.Name)
		}
		files = append(files, wal.CheckpointFile{Name: f.Name, Data: f.Data})
	}
	if !sc.Scan() {
		return 0, nil, fmt.Errorf("replica: checkpoint stream torn before the terminator (%w)", orUnexpectedEOF(sc.Err()))
	}
	var done wire.ReplFile
	if err := json.Unmarshal(sc.Bytes(), &done); err != nil || !done.Done {
		return 0, nil, fmt.Errorf("replica: checkpoint stream missing its terminator")
	}
	return hdr.Seq, files, nil
}

func orUnexpectedEOF(err error) error {
	if err == nil {
		return io.ErrUnexpectedEOF
	}
	return err
}

// replError decodes a structured error response, mapping the
// log-truncated code onto the re-bootstrap sentinel.
func replError(resp *http.Response) error {
	var er wire.ErrorResponse
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er)
	if er.Code == wire.CodeLogTruncated {
		return fmt.Errorf("%w: %s", errTruncated, er.Error)
	}
	if er.Error != "" {
		return fmt.Errorf("replica: primary: %s (HTTP %d, %s)", er.Error, resp.StatusCode, er.Code)
	}
	return fmt.Errorf("replica: primary: HTTP %d", resp.StatusCode)
}
