package core

import (
	"math"
	"testing"

	"repro/internal/poly"
	"repro/internal/realfmla"
)

// TestBackgroundBoundedDiscount models the Section 10 motivating case:
// a discount known to lie in [0,1]. φ = (10·z < 5) with z ∈ [0,1]
// conditions to P(z < 0.5 | z uniform in [0,1]) = 1/2, whereas the
// unconditioned asymptotic measure of a bounded region is 0.
func TestBackgroundBoundedDiscount(t *testing.T) {
	e := New(Options{Seed: 11})
	phi := linAtom(1, []float64{10}, -5, realfmla.LT) // 10z - 5 < 0
	res, err := e.MeasureWithBackground(phi, Background{0: Between(0, 1)}, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-0.5) > 0.03 {
		t.Errorf("conditioned μ = %.4f, want 0.5", res.Value)
	}
	// Unconditioned: bounded satisfying region ∩ rays → the atom holds
	// exactly on the negative direction: μ = 1/2 as well (10z < 5
	// asymptotically means z < 0)... so distinguish with a two-sided
	// bounded region: 1 < z < 2 has unconditioned measure 0 but
	// conditioned-on-[0,4] measure 1/4.
	band := realfmla.And(
		linAtom(1, []float64{-1}, 1, realfmla.LT), // z > 1
		linAtom(1, []float64{1}, -2, realfmla.LT), // z < 2
	)
	plain, err := e.MeasureFormula(band, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Value != 0 {
		t.Errorf("unconditioned measure of a bounded band = %g, want 0", plain.Value)
	}
	cond, err := e.MeasureWithBackground(band, Background{0: Between(0, 4)}, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond.Value-0.25) > 0.03 {
		t.Errorf("conditioned band measure = %.4f, want 0.25", cond.Value)
	}
}

// TestBackgroundHalfBounded: a price known non-negative. φ = z0 < z1 with
// both in [0, ∞) is a symmetric comparison of two positive rays: 1/2.
// With z0 ≥ 0 and z1 ≤ 0 it is almost surely false.
func TestBackgroundHalfBounded(t *testing.T) {
	e := New(Options{Seed: 13})
	phi := linAtom(2, []float64{1, -1}, 0, realfmla.LT)
	res, err := e.MeasureWithBackground(phi,
		Background{0: AtLeast(0), 1: AtLeast(0)}, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-0.5) > 0.03 {
		t.Errorf("μ(z0<z1 | both ≥ 0) = %.4f, want 0.5", res.Value)
	}
	res2, err := e.MeasureWithBackground(phi,
		Background{0: AtLeast(0), 1: AtMost(0)}, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Value != 0 {
		t.Errorf("μ(z0<z1 | z0≥0, z1≤0) = %.4f, want 0", res2.Value)
	}
}

// TestBackgroundMixed: one bounded null against one ray. φ = z1 > z0·z0
// with z0 ∈ [1,2] and z1 free: z1 must outgrow a bounded square — true on
// the positive z1 ray: 1/2.
func TestBackgroundMixed(t *testing.T) {
	e := New(Options{Seed: 17})
	z0sq := poly.Var(2, 0).Mul(poly.Var(2, 0))
	phi := realfmla.FAtom{A: realfmla.Atom{P: z0sq.Sub(poly.Var(2, 1)), Rel: realfmla.LT}}
	res, err := e.MeasureWithBackground(phi, Background{0: Between(1, 2)}, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-0.5) > 0.03 {
		t.Errorf("μ = %.4f, want 0.5", res.Value)
	}
}

func TestBackgroundMatchesPlainWhenUnbounded(t *testing.T) {
	// No constraints ⇒ MeasureWithBackground must agree with the ordinary
	// AFPRAS.
	e1 := New(Options{Seed: 19, DisableExact: true})
	e2 := New(Options{Seed: 23})
	phi := realfmla.And(
		linAtom(2, []float64{0, -1}, 0, realfmla.LE),
		linAtom(2, []float64{-1, 0}, 8, realfmla.LE),
		linAtom(2, []float64{1, -0.7}, 0, realfmla.LE),
	)
	a, err := e1.AdditiveApprox(phi, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.MeasureWithBackground(phi, nil, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Value-b.Value) > 0.04 {
		t.Errorf("plain %.4f vs empty background %.4f", a.Value, b.Value)
	}
}

func TestBackgroundErrors(t *testing.T) {
	e := New(Options{})
	phi := linAtom(1, []float64{1}, 0, realfmla.LT)
	if _, err := e.MeasureWithBackground(phi, Background{0: Between(2, 1)}, 0.1, 0.1); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := e.MeasureWithBackground(phi, nil, 0, 0.1); err == nil {
		t.Error("eps = 0 accepted")
	}
}

// TestDistributions: with explicit priors the measure is a plain
// probability. z0 ~ N(0,1), z1 ~ U[0,1]: P(z0 < z1) = Φ-weighted ≈
// ∫₀¹ Φ(t) dt = Φ(1)·1 - ... compute by the closed form
// E[Φ(U)] = ∫₀¹Φ(t)dt = [tΦ(t)+φ(t)]₀¹ = Φ(1)+φ(1)−φ(0) ≈ 0.6091.
func TestDistributions(t *testing.T) {
	e := New(Options{Seed: 29})
	phi := linAtom(2, []float64{1, -1}, 0, realfmla.LT)
	res, err := e.MeasureWithDistributions(phi, map[int]Distribution{
		0: NormalDist{Mean: 0, Stddev: 1},
		1: UniformDist{Lo: 0, Hi: 1},
	}, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	phiN := func(x float64) float64 { return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi) }
	cdf := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
	want := cdf(1) + phiN(1) - phiN(0)
	if math.Abs(res.Value-want) > 0.03 {
		t.Errorf("P(z0 < z1) = %.4f, want %.4f", res.Value, want)
	}
	// Exponential prior: P(z > 1) with z ~ Exp(1) is 1/e.
	gt1 := linAtom(1, []float64{-1}, 1, realfmla.LT)
	res2, err := e.MeasureWithDistributions(gt1, map[int]Distribution{
		0: ExponentialDist{Rate: 1},
	}, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Value-1/math.E) > 0.03 {
		t.Errorf("P(Exp(1) > 1) = %.4f, want %.4f", res2.Value, 1/math.E)
	}
	// Missing distribution errors out.
	if _, err := e.MeasureWithDistributions(phi, map[int]Distribution{0: UniformDist{0, 1}}, 0.1, 0.1); err == nil {
		t.Error("missing distribution accepted")
	}
}

func TestSatisfiable(t *testing.T) {
	e := New(Options{Seed: 31})
	cases := []struct {
		phi  realfmla.Formula
		want bool
	}{
		// z = 5 is possible though μ = 0.
		{linAtom(1, []float64{1}, -5, realfmla.EQ), true},
		// 1 < z < 2: bounded band, possible.
		{realfmla.And(
			linAtom(1, []float64{-1}, 1, realfmla.LT),
			linAtom(1, []float64{1}, -2, realfmla.LT)), true},
		// z < 0 ∧ z > 1: impossible.
		{realfmla.And(
			linAtom(1, []float64{1}, 0, realfmla.LT),
			linAtom(1, []float64{-1}, 1, realfmla.LT)), false},
		// z ≤ 0 ∧ z ≥ 0 ∧ z ≠ 0: impossible (the ≠ bites).
		{realfmla.And(
			linAtom(1, []float64{1}, 0, realfmla.LE),
			linAtom(1, []float64{-1}, 0, realfmla.LE),
			linAtom(1, []float64{1}, 0, realfmla.NE)), false},
		// z0 + z1 = 1 ∧ z0 ≥ 0 ∧ z1 ≥ 0: a segment, possible.
		{realfmla.And(
			linAtom(2, []float64{1, 1}, -1, realfmla.EQ),
			linAtom(2, []float64{-1, 0}, 0, realfmla.LE),
			linAtom(2, []float64{0, -1}, 0, realfmla.LE)), true},
		// Disjunction with one feasible branch.
		{realfmla.Or(
			realfmla.And(
				linAtom(1, []float64{1}, 0, realfmla.LT),
				linAtom(1, []float64{-1}, 1, realfmla.LT)),
			linAtom(1, []float64{1}, -3, realfmla.EQ)), true},
	}
	for i, c := range cases {
		sat, w, err := e.Satisfiable(c.phi)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if sat != c.want {
			t.Errorf("case %d: sat = %v, want %v (φ=%s)", i, sat, c.want, c.phi)
		}
		if sat && !realfmla.Eval(c.phi, w) {
			t.Errorf("case %d: witness %v does not satisfy φ", i, w)
		}
	}
}

func TestSatisfiableNEWithinInterior(t *testing.T) {
	// z > 0 ∧ z ≠ 1: feasible, witness must avoid 1.
	e := New(Options{Seed: 37})
	phi := realfmla.And(
		linAtom(1, []float64{-1}, 0, realfmla.LT),
		linAtom(1, []float64{1}, -1, realfmla.NE))
	sat, w, err := e.Satisfiable(phi)
	if err != nil || !sat {
		t.Fatalf("sat=%v err=%v", sat, err)
	}
	if w[0] <= 0 || w[0] == 1 {
		t.Errorf("bad witness %v", w)
	}
}

func TestSatisfiableRejectsNonlinear(t *testing.T) {
	e := New(Options{})
	q := realfmla.FAtom{A: realfmla.Atom{P: poly.Var(1, 0).Mul(poly.Var(1, 0)).Sub(poly.Const(1, 1)), Rel: realfmla.LT}}
	if _, _, err := e.Satisfiable(q); err == nil {
		t.Error("nonlinear accepted")
	}
}

func TestCertainlyTrue(t *testing.T) {
	e := New(Options{Seed: 41})
	// z ≤ 0 ∨ z ≥ 0 is a tautology.
	taut := realfmla.Or(
		linAtom(1, []float64{1}, 0, realfmla.LE),
		linAtom(1, []float64{-1}, 0, realfmla.LE))
	ok, err := e.CertainlyTrue(taut)
	if err != nil || !ok {
		t.Errorf("tautology not certain: %v %v", ok, err)
	}
	// z > 0 is not certain.
	ok2, err := e.CertainlyTrue(linAtom(1, []float64{-1}, 0, realfmla.LT))
	if err != nil || ok2 {
		t.Errorf("z > 0 reported certain: %v %v", ok2, err)
	}
}

// TestLatticeMatchesContinuous: the Section 10 integer variant — the
// lattice-point measure converges to the same ν as the volume measure
// (Gauss circle regime).
func TestLatticeMatchesContinuous(t *testing.T) {
	e := New(Options{Seed: 43})
	// Halfplane z0 < z1: ν = 1/2.
	phi := linAtom(2, []float64{1, -1}, 0, realfmla.LT)
	mu, err := e.MuAtRadiusLattice(phi, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu-0.5) > 0.02 {
		t.Errorf("lattice μ = %.4f, want ≈0.5", mu)
	}
	// The intro constraint: lattice count at growing radii approaches
	// 0.0972.
	intro := realfmla.And(
		linAtom(2, []float64{0, -1}, 0, realfmla.LE),
		linAtom(2, []float64{-1, 0}, 8, realfmla.LE),
		linAtom(2, []float64{1, -0.7}, 0, realfmla.LE),
	)
	limit := (math.Pi/2 - math.Atan(10.0/7)) / (2 * math.Pi)
	prev := math.Inf(1)
	for _, r := range []int{20, 80, 320} {
		mu, err := e.MuAtRadiusLattice(intro, r)
		if err != nil {
			t.Fatal(err)
		}
		gap := math.Abs(mu - limit)
		if gap > prev+0.005 {
			t.Errorf("lattice measure diverging at r=%d: gap %.4f after %.4f", r, gap, prev)
		}
		prev = gap
	}
	if prev > 0.01 {
		t.Errorf("lattice measure at r=320 off by %.4f", prev)
	}
	// Guards.
	if _, err := e.MuAtRadiusLattice(phi, 0); err == nil {
		t.Error("r = 0 accepted")
	}
	if _, err := e.MuAtRadiusLattice(realfmla.FTrue{}, 10); err != nil {
		t.Error("trivial formula should work")
	}
}
