// Package wal is a fixture stand-in for the real repro/internal/wal:
// the durability surface whose error returns errdrop guards.
package wal

// Log mirrors the append/sync half of the WAL surface.
type Log struct{}

func (l *Log) Append(seq uint64, payload []byte) error { return nil }
func (l *Log) Sync() error                             { return nil }
func (l *Log) TruncatePrefix(keepFrom int64) error     { return nil }

// Store mirrors the checkpoint/insert half.
type Store struct{}

func (s *Store) Checkpoint() error                          { return nil }
func (s *Store) InsertBatch(rel string, tuples []int) error { return nil }
