package reductions

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func randFormula(rng *rand.Rand, nvars, nclauses int) Formula3 {
	f := Formula3{NumVars: nvars}
	for i := 0; i < nclauses; i++ {
		var c Clause
		for j := 0; j < 3; j++ {
			c[j] = Literal{Var: rng.Intn(nvars), Neg: rng.Intn(2) == 1}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

func TestValidate(t *testing.T) {
	if err := (Formula3{NumVars: 0}).Validate(); err == nil {
		t.Error("zero variables accepted")
	}
	bad := Formula3{NumVars: 2, Clauses: []Clause{{{Var: 5}, {}, {}}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range literal accepted")
	}
}

func TestBruteForceCounts(t *testing.T) {
	// ψ = (x0 ∧ x1 ∧ x2): one DNF clause.
	f := Formula3{NumVars: 3, Clauses: []Clause{
		{{Var: 0}, {Var: 1}, {Var: 2}},
	}}
	if got := f.CountDNF(); got != 1 {
		t.Errorf("CountDNF = %d, want 1", got)
	}
	// As CNF (x0 ∨ x1 ∨ x2): 7 of 8.
	if got := f.CountCNF(); got != 7 {
		t.Errorf("CountCNF = %d, want 7", got)
	}
	// Tautology clause x0 ∨ ¬x0 ∨ x1 as CNF: all 4 of 2 vars.
	g := Formula3{NumVars: 2, Clauses: []Clause{
		{{Var: 0}, {Var: 0, Neg: true}, {Var: 1}},
	}}
	if got := g.CountCNF(); got != 4 {
		t.Errorf("tautology CountCNF = %d, want 4", got)
	}
}

// TestDNFCountingGadget is Prop 6.2 made executable: μ of the fixed CQ(<)
// query over the clause database equals #ψ/2ⁿ, computed exactly by the
// order-cell algorithm.
func TestDNFCountingGadget(t *testing.T) {
	e := core.New(core.Options{})
	rng := rand.New(rand.NewSource(21))
	cases := []Formula3{
		{NumVars: 3, Clauses: []Clause{{{Var: 0}, {Var: 1}, {Var: 2}}}},
		{NumVars: 3, Clauses: []Clause{
			{{Var: 0}, {Var: 1}, {Var: 2}},
			{{Var: 0, Neg: true}, {Var: 1, Neg: true}, {Var: 2, Neg: true}},
		}},
		randFormula(rng, 4, 3),
		randFormula(rng, 4, 5),
	}
	for i, f := range cases {
		q, d, err := DNFGadget(f)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Measure(q, d, nil, 0.05, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		want := big.NewRat(int64(f.CountDNF()), 1<<uint(f.NumVars))
		if res.Rat == nil {
			t.Fatalf("case %d: non-exact method %s", i, res.Method)
		}
		if res.Rat.Cmp(want) != 0 {
			t.Errorf("case %d: μ = %v, want %v (#ψ=%d, n=%d)",
				i, res.Rat, want, f.CountDNF(), f.NumVars)
		}
	}
}

// TestCNFGadgetMatchesModelCount is the Thm 6.3 reduction: μ = #ψ/2ⁿ for
// the FO(<) query, so satisfiability ⇔ μ > 0.
func TestCNFGadgetMatchesModelCount(t *testing.T) {
	e := core.New(core.Options{})
	rng := rand.New(rand.NewSource(22))
	cases := []Formula3{
		{NumVars: 3, Clauses: []Clause{{{Var: 0}, {Var: 1}, {Var: 2}}}},
		// Unsatisfiable-ish: x0 ∧ ¬x0 forced via two clauses over 3 vars.
		{NumVars: 3, Clauses: []Clause{
			{{Var: 0}, {Var: 0}, {Var: 0}},
			{{Var: 0, Neg: true}, {Var: 0, Neg: true}, {Var: 0, Neg: true}},
		}},
		randFormula(rng, 4, 4),
	}
	for i, f := range cases {
		q, d, err := CNFGadget(f)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Measure(q, d, nil, 0.05, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		want := big.NewRat(int64(f.CountCNF()), 1<<uint(f.NumVars))
		if res.Rat == nil {
			t.Fatalf("case %d: non-exact method %s", i, res.Method)
		}
		if res.Rat.Cmp(want) != 0 {
			t.Errorf("case %d: μ = %v, want %v (#ψ=%d, n=%d)",
				i, res.Rat, want, f.CountCNF(), f.NumVars)
		}
		// Satisfiability ⇔ μ > 0.
		sat := f.CountCNF() > 0
		if (res.Value > 0) != sat {
			t.Errorf("case %d: μ>0 is %v but satisfiable is %v", i, res.Value > 0, sat)
		}
	}
}
