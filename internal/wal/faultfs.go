package wal

// FaultFS is the injectable FS of the fault-injection harness: it proxies
// an inner FS and fails chosen operations — the Nth write, the Nth sync,
// a short write, or everything past a byte budget (a simulated crash
// point mid-record). The counters are process-wide across every file the
// FS opens, matching how a real disk fails underneath whichever file
// happens to be writing.

import (
	"errors"
	"os"
	"sync"
)

// ErrInjected is the error FaultFS returns from injected failures.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps Inner with injectable write/sync failures. The zero
// counters disable each fault. Configure before use; the fault state is
// internally locked so faulted files may be driven from tests and
// background goroutines alike.
type FaultFS struct {
	Inner FS

	// FailWriteAt fails the Nth Write call (1-based) across all files.
	FailWriteAt int
	// ShortWriteAt makes the Nth Write call (1-based) write only
	// ShortWriteBytes bytes and report an error.
	ShortWriteAt    int
	ShortWriteBytes int
	// FailSyncAt fails the Nth Sync call (1-based).
	FailSyncAt int
	// CrashAfterBytes, when positive, lets writes through until that many
	// bytes have been written in total, truncates the write that crosses
	// the boundary (the bytes up to the budget still land — a torn
	// record), and fails every write and sync after it: the process is
	// "gone" at that byte offset.
	CrashAfterBytes int64

	mu      sync.Mutex
	writes  int
	syncs   int
	written int64
	crashed bool
}

// Writes reports how many Write calls the FS has seen.
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// Syncs reports how many Sync calls the FS has seen.
func (f *FaultFS) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	inner, err := f.Inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error)   { return f.Inner.ReadFile(name) }
func (f *FaultFS) Truncate(name string, size int64) error { return f.Inner.Truncate(name, size) }
func (f *FaultFS) Rename(oldpath, newpath string) error   { return f.Inner.Rename(oldpath, newpath) }
func (f *FaultFS) RemoveAll(path string) error            { return f.Inner.RemoveAll(path) }
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.Inner.MkdirAll(path, perm)
}
func (f *FaultFS) ReadDir(name string) ([]string, error) { return f.Inner.ReadDir(name) }
func (f *FaultFS) SyncDir(name string) error             { return f.Inner.SyncDir(name) }

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Read(p []byte) (int, error) { return ff.inner.Read(p) }
func (ff *faultFile) Close() error               { return ff.inner.Close() }

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	f.writes++
	n := f.writes
	short := -1
	switch {
	case f.crashed:
		f.mu.Unlock()
		return 0, ErrInjected
	case f.FailWriteAt > 0 && n == f.FailWriteAt:
		f.mu.Unlock()
		return 0, ErrInjected
	case f.ShortWriteAt > 0 && n == f.ShortWriteAt:
		short = min(f.ShortWriteBytes, len(p))
	case f.CrashAfterBytes > 0 && f.written+int64(len(p)) > f.CrashAfterBytes:
		short = int(f.CrashAfterBytes - f.written)
		f.crashed = true
	}
	if short >= 0 {
		f.written += int64(short)
		f.mu.Unlock()
		m, err := ff.inner.Write(p[:short])
		if err != nil {
			return m, err
		}
		return m, ErrInjected
	}
	f.written += int64(len(p))
	f.mu.Unlock()
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	f.syncs++
	fail := f.crashed || (f.FailSyncAt > 0 && f.syncs == f.FailSyncAt)
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return ff.inner.Sync()
}
