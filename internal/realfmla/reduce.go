package realfmla

// MapAtoms rebuilds the formula with every atom transformed by fn (which
// may also fold an atom to FTrue/FFalse).
func MapAtoms(f Formula, fn func(Atom) Formula) Formula {
	switch g := f.(type) {
	case FTrue, FFalse:
		return g
	case FAtom:
		return fn(g.A)
	case FNot:
		return FNot{MapAtoms(g.F, fn)}
	case FAnd:
		out := make([]Formula, len(g.Fs))
		for i, h := range g.Fs {
			out[i] = MapAtoms(h, fn)
		}
		return And(out...)
	case FOr:
		out := make([]Formula, len(g.Fs))
		for i, h := range g.Fs {
			out[i] = MapAtoms(h, fn)
		}
		return Or(out...)
	}
	panic("realfmla: unknown node")
}

// UsedVars reports which of the n ambient variables occur in some atom of
// f. The ambient arity is taken from the first atom; formulas without
// atoms use 0 variables.
func UsedVars(f Formula) []bool {
	n := NumVars(f)
	used := make([]bool, n)
	for _, a := range Atoms(f) {
		for i, u := range a.P.VarsUsed() {
			if u {
				used[i] = true
			}
		}
	}
	return used
}

// Reduce re-embeds the formula into the smallest variable space: variables
// not occurring in any atom are dropped. It returns the reduced formula and
// the list of original variable indices, in order (vars[j] is the original
// index of reduced variable j).
//
// This implements the partial-sampling optimization of the paper's Section
// 9: μ only depends on the nulls that actually affect the query, because
// the satisfying set is a cylinder over the irrelevant coordinates and the
// direction-fraction measure ν is invariant under cylinder extension.
func Reduce(f Formula) (Formula, []int) {
	used := UsedVars(f)
	var vars []int
	mapping := make([]int, len(used))
	for i := range mapping {
		mapping[i] = -1
	}
	for i, u := range used {
		if u {
			mapping[i] = len(vars)
			vars = append(vars, i)
		}
	}
	newN := len(vars)
	g := MapAtoms(f, func(a Atom) Formula {
		return FAtom{Atom{P: a.P.RenameVars(mapping, newN), Rel: a.Rel}}
	})
	return g, vars
}
