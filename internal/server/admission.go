package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission-control errors, mapped to HTTP 429 and 503 by the handlers.
var (
	// ErrBusy: the measurement pool stayed saturated for the whole queue
	// timeout. Clients should back off and retry.
	ErrBusy = errors.New("server: too many in-flight measurements, try again later")
	// ErrShuttingDown: the server is draining and admits no new work.
	ErrShuttingDown = errors.New("server: shutting down")
)

// gate is the admission controller: a counting semaphore over the
// expensive (measuring) endpoints, with a bounded queue wait and a drain
// mode for graceful shutdown. Overload therefore degrades into prompt,
// structured 429s instead of an unbounded goroutine/heap pileup.
type gate struct {
	slots    chan struct{} // capacity = max in-flight; a held slot = one running request
	draining chan struct{} // closed on shutdown
	closed   atomic.Bool
}

func newGate(maxInflight int) *gate {
	return &gate{
		slots:    make(chan struct{}, maxInflight),
		draining: make(chan struct{}),
	}
}

// acquire claims a slot, waiting up to timeout. It fails fast with
// ErrShuttingDown once shutdown began, with ErrBusy when the pool stays
// full, and with ctx.Err() when the client gives up first.
func (g *gate) acquire(ctx context.Context, timeout time.Duration) error {
	if g.closed.Load() {
		return ErrShuttingDown
	}
	// Fast path: a free slot costs no timer.
	select {
	case g.slots <- struct{}{}:
		return g.admitted()
	default:
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		return g.admitted()
	case <-g.draining:
		return ErrShuttingDown
	case <-timer.C:
		return ErrBusy
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admitted confirms a freshly won slot: if shutdown began while this
// acquire was racing for it (the select can pick the slot case even with
// draining closed), hand the slot back so the drain completes and the
// request is shed as documented.
func (g *gate) admitted() error {
	if g.closed.Load() {
		g.release()
		return ErrShuttingDown
	}
	return nil
}

func (g *gate) release() { <-g.slots }

// shutdown stops admitting work and waits until every held slot is
// released (or ctx expires). Safe to call once.
func (g *gate) shutdown(ctx context.Context) error {
	g.closed.Store(true)
	close(g.draining)
	for i := 0; i < cap(g.slots); i++ {
		select {
		case g.slots <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
