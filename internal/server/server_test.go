package server

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/sqlfront"
	"repro/internal/wire"
)

// testDB is the shared sales database of the server suite — one
// immutable instance, exactly the multi-user deployment shape (its lazy
// indexes and inventories are built concurrently by whichever request
// gets there first).
var testDB = sync.OnceValue(func() *db.Database {
	d, err := datagen.Generate(datagen.Config{
		Seed: 4, Products: 80, Orders: 60, Market: 24, Segments: 8,
		NullRate: 0.3, MarketNullRate: 0.6,
	})
	if err != nil {
		panic(err)
	}
	return d
})

// testWorkloads are the queries of the e2e suite: the three Figure 1
// decision-support workloads plus LIMIT/arithmetic variants.
var testWorkloads = []string{
	datagen.CompetitiveAdvantage,
	datagen.NeverKnowinglyUndersold,
	datagen.UnfairDiscount,
	`SELECT P.seg FROM Products P, Market M
		WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 6`,
	`SELECT P.id FROM Products P WHERE P.rrp * P.dis > 50 LIMIT 5`,
}

// newTestServer spins up the server on a random port in-process and
// returns it with a wire client.
func newTestServer(t testing.TB, cfg Config) (*Server, *client.Client, *httptest.Server) {
	t.Helper()
	if cfg.DB == nil && cfg.Source == nil && cfg.Sharded == nil {
		cfg.DB = testDB()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(s)
	t.Cleanup(hts.Close)
	return s, client.NewWith(hts.URL, hts.Client()), hts
}

// directMeasure is the reference: the Session pipeline run in-process
// with the same engine options the server uses per request.
func directMeasure(t testing.TB, opts core.Options, src string, eps, delta float64) *core.SQLMeasured {
	t.Helper()
	q, err := sqlfront.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New(opts).MeasureSQL(q, testDB(), eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertCandidateParity requires a wire candidate to be byte-identical
// to the direct pipeline's: same tuple, same measure bits, same method
// metadata (and the same exact rational when there is one).
func assertCandidateParity(t testing.TB, label string, i int, got wire.MeasuredCandidate, want core.MeasuredCandidate) {
	t.Helper()
	tuple, err := wire.ToTuple(got.Tuple)
	if err != nil {
		t.Fatalf("%s: candidate %d: %v", label, i, err)
	}
	if !tuple.Equal(want.Tuple) {
		t.Fatalf("%s: candidate %d: tuple %v, want %v", label, i, tuple, want.Tuple)
	}
	m, err := got.Measure.Result()
	if err != nil {
		t.Fatalf("%s: candidate %d: %v", label, i, err)
	}
	w := want.Measure
	if math.Float64bits(m.Value) != math.Float64bits(w.Value) {
		t.Fatalf("%s: candidate %d: μ = %v, want %v (bits differ)", label, i, m.Value, w.Value)
	}
	if m.Exact != w.Exact || m.Method != w.Method || m.Samples != w.Samples ||
		m.K != w.K || m.RelevantK != w.RelevantK {
		t.Fatalf("%s: candidate %d: %+v, want %+v", label, i, m, w)
	}
	if (m.Rat == nil) != (w.Rat == nil) || (m.Rat != nil && m.Rat.Cmp(w.Rat) != 0) {
		t.Fatalf("%s: candidate %d: rat %v, want %v", label, i, m.Rat, w.Rat)
	}
}

func assertParity(t testing.TB, label string, got *wire.MeasureResponse, want *core.SQLMeasured) {
	t.Helper()
	if got.Count != len(want.Candidates) || got.Derivations != want.Derivations {
		t.Fatalf("%s: shape %d/%d, want %d/%d", label,
			got.Count, got.Derivations, len(want.Candidates), want.Derivations)
	}
	if len(got.NullIDs) != len(want.NullIDs) {
		t.Fatalf("%s: nullIds len %d, want %d", label, len(got.NullIDs), len(want.NullIDs))
	}
	for i, wc := range got.Candidates {
		assertCandidateParity(t, label, i, wc, want.Candidates[i])
	}
}

// TestServerMeasureParity: the Figure 1 / SQL example workloads run
// through the HTTP client are byte-identical to direct Session.MeasureSQL.
func TestServerMeasureParity(t *testing.T) {
	opts := core.Options{Seed: 7}
	_, c, _ := newTestServer(t, Config{Engine: opts})
	ctx := context.Background()
	for _, src := range testWorkloads {
		for _, ed := range [][2]float64{{0.05, 0.25}, {0.1, 0.1}} {
			want := directMeasure(t, opts, src, ed[0], ed[1])
			got, err := c.MeasureSQL(ctx, src, ed[0], ed[1])
			if err != nil {
				t.Fatal(err)
			}
			label := src[:min(30, len(src))]
			assertParity(t, label, got, want)
		}
	}
}

// TestServerInfoAndExperiments: introspection endpoints reflect the
// served database, and an experiment run equals the same query measured
// through the plain endpoint.
func TestServerInfoAndExperiments(t *testing.T) {
	opts := core.Options{Seed: 7}
	_, c, _ := newTestServer(t, Config{Engine: opts})
	ctx := context.Background()

	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Tuples != testDB().Size() || len(info.Relations) != 3 {
		t.Fatalf("info = %+v", info)
	}

	exps, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps.Experiments) != 3 || exps.Experiments[0].ID != "1a" {
		t.Fatalf("experiments = %+v", exps)
	}

	run, err := c.RunExperiment(ctx, "1a", 0.05, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	want := directMeasure(t, opts, datagen.CompetitiveAdvantage, 0.05, 0.25)
	assertParity(t, "experiment 1a", &run.MeasureResponse, want)
	if run.Seconds < 0 {
		t.Fatalf("negative wall time %v", run.Seconds)
	}
	if _, err := c.RunExperiment(ctx, "9z", 0.05, 0.25); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestServerRequestValidation: malformed input comes back as structured
// 4xx errors, never 500s or hangs.
func TestServerRequestValidation(t *testing.T) {
	_, c, hts := newTestServer(t, Config{Engine: core.Options{Seed: 7}})
	ctx := context.Background()

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"bad json", `{"sql":`, http.StatusBadRequest},
		{"trailing garbage", `{"sql":"SELECT P.id FROM Products P"} extra`, http.StatusBadRequest},
		{"missing sql", `{"eps":0.1}`, http.StatusBadRequest},
		{"syntax error", `{"sql":"SELEKT nope"}`, http.StatusBadRequest},
		{"unknown relation", `{"sql":"SELECT X.a FROM Nope X"}`, http.StatusBadRequest},
		{"eps too small", `{"sql":"SELECT P.id FROM Products P","eps":1e-9}`, http.StatusBadRequest},
		{"eps above one", `{"sql":"SELECT P.id FROM Products P","eps":2}`, http.StatusBadRequest},
		{"delta out of range", `{"sql":"SELECT P.id FROM Products P","delta":1}`, http.StatusBadRequest},
		{"too many relations", `{"sql":"SELECT A.id FROM Products A, Products B, Products C, Products D,
			Products E, Products F, Products G, Products H, Products I, Products J, Products K,
			Products L, Products M, Products N, Products O, Products P, Products Q"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := hts.Client().Post(hts.URL+"/v1/sql/measure", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var er wire.ErrorResponse
		decErr := jsonDecode(resp, &er)
		if resp.StatusCode != tc.status || decErr != nil || er.Error == "" {
			t.Fatalf("%s: status %d (want %d), body err %v, msg %q",
				tc.name, resp.StatusCode, tc.status, decErr, er.Error)
		}
	}

	// Wrong method and unknown path.
	resp, err := hts.Client().Get(hts.URL + "/v1/sql/measure")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET measure: %d", resp.StatusCode)
	}
	resp, err = hts.Client().Get(hts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %d", resp.StatusCode)
	}

	// The go client surfaces structured errors.
	_, err = c.MeasureSQL(ctx, "SELEKT", 0.1, 0.1)
	var se *client.ServerError
	if !asServerError(err, &se) || se.Status != http.StatusBadRequest || se.Code != wire.CodeBadRequest {
		t.Fatalf("client error = %v", err)
	}

	// Health is alive.
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestConfigFloorsClampDefaults: raising a floor above the built-in
// default must raise the default with it, not leave a server whose
// eps-omitting requests all 400.
func TestConfigFloorsClampDefaults(t *testing.T) {
	_, c, _ := newTestServer(t, Config{Engine: core.Options{Seed: 7}, MinEps: 0.06, MinDelta: 0.2})
	res, err := c.MeasureSQL(context.Background(), `SELECT P.id FROM Products P LIMIT 2`, 0, 0)
	if err != nil {
		t.Fatalf("defaults below raised floors: %v", err)
	}
	if res.Count == 0 {
		t.Fatal("no candidates")
	}
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func asServerError(err error, target **client.ServerError) bool { return errors.As(err, target) }
