package fo

import (
	"fmt"

	"repro/internal/schema"
)

// TypeError reports a sort or arity violation found during typechecking.
type TypeError struct {
	Msg string
}

func (e *TypeError) Error() string { return "fo: " + e.Msg }

func typeErrf(format string, args ...any) error {
	return &TypeError{Msg: fmt.Sprintf(format, args...)}
}

// Typecheck validates a query against a schema: every variable must be
// bound exactly once (by a quantifier or the query head), relation atoms
// must match the schema's arities and column sorts, numerical operators
// must apply to numerical terms only, and base equality to base terms only.
func Typecheck(q *Query, s *schema.Schema) error {
	env := make(map[string]Sort, len(q.Free))
	for _, fv := range q.Free {
		if _, dup := env[fv.Name]; dup {
			return typeErrf("duplicate free variable %s", fv.Name)
		}
		env[fv.Name] = fv.Sort
	}
	return checkFormula(q.Body, s, env)
}

func checkFormula(f Formula, s *schema.Schema, env map[string]Sort) error {
	switch x := f.(type) {
	case True, False:
		return nil
	case Atom:
		rel := s.Relation(x.Rel)
		if rel == nil {
			return typeErrf("unknown relation %s", x.Rel)
		}
		if len(x.Args) != rel.Arity() {
			return typeErrf("relation %s expects %d arguments, got %d",
				x.Rel, rel.Arity(), len(x.Args))
		}
		for i, a := range x.Args {
			want := SortBase
			if rel.Columns[i].Type == schema.Num {
				want = SortNum
			}
			got, err := termSort(a, env)
			if err != nil {
				return err
			}
			if got != want {
				return typeErrf("argument %d of %s: column %s is %s-typed, term %s is %s",
					i+1, x.Rel, rel.Columns[i].Name, want, a, got)
			}
			if want == SortBase {
				if err := checkBaseTermShape(a); err != nil {
					return err
				}
			}
		}
		return nil
	case BaseEq:
		for _, t := range []Term{x.L, x.R} {
			srt, err := termSort(t, env)
			if err != nil {
				return err
			}
			if srt != SortBase {
				return typeErrf("base equality applied to %s-sorted term %s", srt, t)
			}
			if err := checkBaseTermShape(t); err != nil {
				return err
			}
		}
		return nil
	case Cmp:
		for _, t := range []Term{x.L, x.R} {
			srt, err := termSort(t, env)
			if err != nil {
				return err
			}
			if srt != SortNum {
				return typeErrf("comparison %s applied to %s-sorted term %s", x.Op, srt, t)
			}
		}
		return nil
	case Not:
		return checkFormula(x.F, s, env)
	case And:
		if err := checkFormula(x.L, s, env); err != nil {
			return err
		}
		return checkFormula(x.R, s, env)
	case Or:
		if err := checkFormula(x.L, s, env); err != nil {
			return err
		}
		return checkFormula(x.R, s, env)
	case Implies:
		if err := checkFormula(x.L, s, env); err != nil {
			return err
		}
		return checkFormula(x.R, s, env)
	case Exists:
		return checkQuantifier(x.Var, x.Sort, x.Body, s, env)
	case Forall:
		return checkQuantifier(x.Var, x.Sort, x.Body, s, env)
	default:
		return typeErrf("unknown formula node %T", f)
	}
}

func checkQuantifier(name string, srt Sort, body Formula, s *schema.Schema, env map[string]Sort) error {
	if _, shadow := env[name]; shadow {
		return typeErrf("variable %s shadows an enclosing binding", name)
	}
	env[name] = srt
	err := checkFormula(body, s, env)
	delete(env, name)
	return err
}

// checkBaseTermShape rejects arithmetic applied in base positions
// (the sort checker catches sorts; this catches Add over two Vars that the
// environment says are base — impossible by termSort — so the only shapes
// allowed in base positions are Var and BaseConst).
func checkBaseTermShape(t Term) error {
	switch t.(type) {
	case Var, BaseConst:
		return nil
	default:
		return typeErrf("term %s cannot appear in a base-typed position", t)
	}
}

// termSort infers the sort of a term under the environment. Arithmetic
// nodes force the numerical sort on all operands.
func termSort(t Term, env map[string]Sort) (Sort, error) {
	switch x := t.(type) {
	case Var:
		srt, ok := env[x.Name]
		if !ok {
			return 0, typeErrf("unbound variable %s", x.Name)
		}
		return srt, nil
	case BaseConst:
		return SortBase, nil
	case NumConst:
		return SortNum, nil
	case Add:
		return numBinop(x.L, x.R, "+", env)
	case Sub:
		return numBinop(x.L, x.R, "-", env)
	case Mul:
		return numBinop(x.L, x.R, "*", env)
	case Neg:
		srt, err := termSort(x.X, env)
		if err != nil {
			return 0, err
		}
		if srt != SortNum {
			return 0, typeErrf("unary - applied to base-sorted term %s", x.X)
		}
		return SortNum, nil
	default:
		return 0, typeErrf("unknown term node %T", t)
	}
}

func numBinop(l, r Term, op string, env map[string]Sort) (Sort, error) {
	for _, t := range []Term{l, r} {
		srt, err := termSort(t, env)
		if err != nil {
			return 0, err
		}
		if srt != SortNum {
			return 0, typeErrf("operator %s applied to base-sorted term %s", op, t)
		}
	}
	return SortNum, nil
}
