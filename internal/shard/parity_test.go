package shard_test

// Shard-count invariance — the PR's acceptance criterion. Every test
// here asserts the strong form of the contract: for the same rows in the
// same insert order, the sharded scatter-gather coordinator returns
// results bit-identical (Float64bits of every measure, same derivation
// and sampling counters) to the single-store pipeline, for every shard
// count and every worker configuration, LIMIT-k adaptive racing
// included.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/shard"
	"repro/internal/sqlfront"
	"repro/internal/value"
)

func salesFixture(t testing.TB) *db.Database {
	t.Helper()
	d, err := datagen.Generate(datagen.Config{
		Seed: 5, Products: 80, Orders: 60, Market: 24, Segments: 8,
		NullRate: 0.3, MarketNullRate: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// parityQueries covers the coordinator's paths: identity scans, filtered
// scans, LIMIT-k through both the adaptive race and the fixed budget,
// and a join (which routes through the gathered snapshot).
var parityQueries = []string{
	`SELECT M.seg FROM Market M`,
	`SELECT M.seg FROM Market M WHERE M.rrp * M.dis > 5`,
	`SELECT M.rrp FROM Market M WHERE M.dis >= 0.2`,
	`SELECT M.seg FROM Market M WHERE M.rrp * M.dis > 5 LIMIT 4`,
	`SELECT P.seg FROM Products P, Market M
		WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 6`,
}

func assertMeasuredEqual(t testing.TB, label string, got, want *core.SQLMeasured) {
	t.Helper()
	if got.Derivations != want.Derivations {
		t.Fatalf("%s: derivations %d, want %d", label, got.Derivations, want.Derivations)
	}
	if got.SamplesDrawn != want.SamplesDrawn || got.Rounds != want.Rounds {
		t.Fatalf("%s: race spend %d/%d, want %d/%d", label,
			got.SamplesDrawn, got.Rounds, want.SamplesDrawn, want.Rounds)
	}
	if !reflect.DeepEqual(got.NullIDs, want.NullIDs) {
		t.Fatalf("%s: null inventory %v, want %v", label, got.NullIDs, want.NullIDs)
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("%s: %d candidates, want %d", label, len(got.Candidates), len(want.Candidates))
	}
	for i := range got.Candidates {
		g, w := got.Candidates[i], want.Candidates[i]
		if !g.Tuple.Equal(w.Tuple) {
			t.Fatalf("%s: candidate %d tuple %v, want %v", label, i, g.Tuple, w.Tuple)
		}
		if math.Float64bits(g.Measure.Value) != math.Float64bits(w.Measure.Value) {
			t.Fatalf("%s: candidate %d measure bits %x (%v), want %x (%v)", label, i,
				math.Float64bits(g.Measure.Value), g.Measure.Value,
				math.Float64bits(w.Measure.Value), w.Measure.Value)
		}
		if g.Measure.Method != w.Measure.Method || g.Measure.Samples != w.Measure.Samples {
			t.Fatalf("%s: candidate %d method/samples %v/%d, want %v/%d", label, i,
				g.Measure.Method, g.Measure.Samples, w.Measure.Method, w.Measure.Samples)
		}
	}
}

// TestShardCountInvariance: the full matrix — every parity query, shard
// counts 1/2/4, and worker configurations from fully sequential to
// maximally pooled, against the single-store reference.
func TestShardCountInvariance(t *testing.T) {
	ref := salesFixture(t)
	optVariants := []core.Options{
		{Seed: 9, PoolWorkers: 1, Workers: 1},
		{Seed: 9, PoolWorkers: 3},
		{Seed: 9, Workers: 2},
	}
	ctx := context.Background()
	for qi, qs := range parityQueries {
		q := sqlfront.MustParse(qs)
		for oi, o := range optVariants {
			want, err := core.New(o).MeasureSQL(q, ref, 0.1, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			if qi < 4 && len(want.Candidates) == 0 {
				t.Fatalf("query %d produced no candidates; the fixture is too thin", qi)
			}
			for _, n := range []int{1, 2, 4} {
				st, err := shard.FromDatabase(ref, n)
				if err != nil {
					t.Fatal(err)
				}
				got, err := st.MeasureSQL(ctx, core.New(o), q, 0.1, 0.25)
				if err != nil {
					t.Fatal(err)
				}
				assertMeasuredEqual(t, fmt.Sprintf("query %d, opts %d, shards %d", qi, oi, n), got, want)
			}
		}
	}
}

// TestShardedAdaptiveRaceParity: LIMIT-k with and without the adaptive
// race. The race draws samples in confidence-bound rounds; its spend
// counters and every winner's measure must survive sharding bit-for-bit.
func TestShardedAdaptiveRaceParity(t *testing.T) {
	ref := salesFixture(t)
	q := sqlfront.MustParse(`SELECT M.seg FROM Market M WHERE M.rrp * M.dis > 5 LIMIT 3`)
	for _, noAdaptive := range []bool{false, true} {
		o := core.Options{Seed: 21, NoAdaptive: noAdaptive}
		want, err := core.New(o).MeasureSQL(q, ref, 0.08, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if !noAdaptive && want.Rounds == 0 {
			t.Fatal("the LIMIT query did not route through the race; the fixture is too thin")
		}
		for _, n := range []int{2, 4} {
			st, err := shard.FromDatabase(ref, n)
			if err != nil {
				t.Fatal(err)
			}
			got, err := st.MeasureSQL(context.Background(), core.New(o), q, 0.08, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			assertMeasuredEqual(t, fmt.Sprintf("noAdaptive=%v shards=%d", noAdaptive, n), got, want)
		}
	}
}

// TestShardedStreamParity: the streaming form delivers the same
// candidates at the same consecutive indices as the unsharded stream.
func TestShardedStreamParity(t *testing.T) {
	ref := salesFixture(t)
	q := sqlfront.MustParse(`SELECT M.seg FROM Market M WHERE M.rrp * M.dis > 5 LIMIT 4`)
	o := core.Options{Seed: 9, PoolWorkers: 2}
	want, err := core.New(o).MeasureSQL(q, ref, 0.1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	st, err := shard.FromDatabase(ref, 3)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	var got []core.MeasuredCandidate
	info, err := st.MeasureSQLStream(context.Background(), core.New(o), q, 0.1, 0.25,
		func(idx int, c core.MeasuredCandidate) error {
			if idx != next {
				t.Fatalf("yield idx %d, want %d", idx, next)
			}
			next++
			got = append(got, c)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if info.Count != len(want.Candidates) || len(got) != len(want.Candidates) {
		t.Fatalf("streamed %d candidates (info %d), want %d", len(got), info.Count, len(want.Candidates))
	}
	if info.Derivations != want.Derivations {
		t.Fatalf("derivations %d, want %d", info.Derivations, want.Derivations)
	}
	for i, c := range got {
		w := want.Candidates[i]
		if !c.Tuple.Equal(w.Tuple) ||
			math.Float64bits(c.Measure.Value) != math.Float64bits(w.Measure.Value) {
			t.Fatalf("candidate %d diverged: (%v, %v) vs (%v, %v)",
				i, c.Tuple, c.Measure.Value, w.Tuple, w.Measure.Value)
		}
	}
}

// TestShardParityFuzz: randomized insert workload — mixed batches with
// duplicates and fresh nulls land identically on a plain database and on
// stores of every shard count; after every round, measured results must
// stay bit-identical across all of them, under rotating worker configs.
func TestShardParityFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ref := salesFixture(t)
	counts := []int{1, 2, 4}
	stores := make([]*shard.Store, len(counts))
	for i, n := range counts {
		st, err := shard.FromDatabase(ref, n)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
	}
	randTuple := func() value.Tuple {
		rrp := value.Num(float64(rng.Intn(200)) / 2)
		if rng.Intn(3) == 0 {
			rrp = ref.FreshNumNull()
		}
		return value.Tuple{
			value.Base(fmt.Sprintf("seg%d", rng.Intn(6))),
			rrp,
			value.Num(float64(rng.Intn(10)) / 10),
		}
	}
	ctx := context.Background()
	const rounds = 5
	for round := 0; round < rounds; round++ {
		for b := 0; b < 2; b++ {
			batch := make([]value.Tuple, 1+rng.Intn(3))
			for j := range batch {
				batch[j] = randTuple()
				if j > 0 && rng.Intn(2) == 0 {
					batch[j] = batch[0].Clone() // in-batch duplicate
				}
			}
			if err := ref.InsertBatch("Market", batch); err != nil {
				t.Fatal(err)
			}
			for _, st := range stores {
				if err := st.InsertBatch("Market", batch); err != nil {
					t.Fatal(err)
				}
			}
		}
		qs := parityQueries[rng.Intn(len(parityQueries))]
		q := sqlfront.MustParse(qs)
		o := core.Options{Seed: int64(1 + round), PoolWorkers: round % 3, Workers: 1 + round%2}
		want, err := core.New(o).MeasureSQL(q, ref, 0.12, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		for i, st := range stores {
			got, err := st.MeasureSQL(ctx, core.New(o), q, 0.12, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			assertMeasuredEqual(t, fmt.Sprintf("round %d, shards %d, query %q", round, counts[i], qs), got, want)
		}
	}
}
