// Benchmarks regenerating the paper's evaluation (Figure 1a/1b/1c) plus
// ablations of the design choices called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Figure 1 benches time the per-ε Monte-Carlo confidence computation over
// the 25 candidate tuples of each decision-support query, mirroring
// cmd/experiments; the workload (synthetic sales database, conditional
// join) is built once per process.
package arithdb_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	arithdb "repro"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/mc"
	"repro/internal/poly"
	"repro/internal/realfmla"
	"repro/internal/translate"
)

// workload is the shared Figure 1 setup: database + per-query candidates.
type workload struct {
	db         *arithdb.Database
	candidates map[string][]arithdb.SQLCandidate
}

var (
	wlOnce sync.Once
	wl     *workload
	wlErr  error
)

func figureWorkload(b *testing.B) *workload {
	b.Helper()
	wlOnce.Do(func() {
		d, err := arithdb.GenerateSales(arithdb.SalesConfig{
			Seed:           2020,
			Products:       20000,
			Orders:         16000,
			Market:         4000,
			Segments:       2000,
			NullRate:       0.1,
			MarketNullRate: 0.5,
		})
		if err != nil {
			wlErr = err
			return
		}
		w := &workload{db: d, candidates: make(map[string][]arithdb.SQLCandidate)}
		for name, sql := range map[string]string{
			"CompetitiveAdvantage":    arithdb.QueryCompetitiveAdvantage,
			"NeverKnowinglyUndersold": arithdb.QueryNeverKnowinglyUndersold,
			"UnfairDiscount":          arithdb.QueryUnfairDiscount,
		} {
			q, err := arithdb.ParseSQL(sql)
			if err != nil {
				wlErr = err
				return
			}
			res, err := arithdb.EvaluateSQL(q, d)
			if err != nil {
				wlErr = err
				return
			}
			w.candidates[name] = res.Candidates
		}
		wl = w
	})
	if wlErr != nil {
		b.Fatal(wlErr)
	}
	return wl
}

// benchFigure times one Figure 1 series: the AFPRAS confidence computation
// for all candidate tuples of the query at the given ε, with the paper's
// m = ⌈ε⁻²⌉ sample count.
func benchFigure(b *testing.B, query string) {
	w := figureWorkload(b)
	cands := w.candidates[query]
	if len(cands) == 0 {
		b.Fatalf("no candidates for %s", query)
	}
	for _, eps := range []float64{0.1, 0.05, 0.02, 0.01} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			engine := arithdb.NewEngine(arithdb.EngineOptions{
				Seed:             7,
				PaperSampleCount: true,
				DisableExact:     true,
				ForceSampling:    true,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, c := range cands {
					if _, err := engine.MeasureFormula(c.Phi, eps, 0.25); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFigure1a regenerates Figure 1a (Competitive Advantage runtime
// vs ε).
func BenchmarkFigure1a(b *testing.B) { benchFigure(b, "CompetitiveAdvantage") }

// BenchmarkFigure1aWorkers measures intra-formula sampling parallelism on
// the Figure 1a workload: the same ε=0.02 confidence computation with the
// m samples of each candidate fanned out over 1, 2 and 4 workers. Values
// are bit-identical across the worker counts (see the determinism tests);
// only the wall clock changes.
func BenchmarkFigure1aWorkers(b *testing.B) {
	w := figureWorkload(b)
	cands := w.candidates["CompetitiveAdvantage"]
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			engine := arithdb.NewEngine(arithdb.EngineOptions{
				Seed:             7,
				PaperSampleCount: true,
				DisableExact:     true,
				ForceSampling:    true,
				Workers:          workers,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, c := range cands {
					if _, err := engine.MeasureFormula(c.Phi, 0.02, 0.25); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFigure1aWorkersScaled is the worker benchmark that is actually
// large enough to show multi-core scaling: BenchmarkFigure1aWorkers runs
// ε = 0.02 (m = 2500 samples, ten 256-sample chunks per candidate), where
// per-call scheduling overhead swamps any parallel win and workers=1/2/4
// all land on the same wall clock. Here each candidate draws m = 40000
// samples (ε = 0.005, ~157 chunks), so on a multi-core host the sample
// loop dominates and the wall clock scales with the worker count, while
// on a single-core host the three series bound the scheduling overhead
// instead (they should agree within a few percent). Values are
// bit-identical across worker counts either way (see the determinism
// tests); samples/op is reported so throughput comparisons survive
// requeued benchtime.
func BenchmarkFigure1aWorkersScaled(b *testing.B) {
	w := figureWorkload(b)
	cands := w.candidates["CompetitiveAdvantage"]
	const eps = 0.005
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			engine := arithdb.NewEngine(arithdb.EngineOptions{
				Seed:             7,
				PaperSampleCount: true,
				DisableExact:     true,
				ForceSampling:    true,
				Workers:          workers,
			})
			samples := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, c := range cands {
					r, err := engine.MeasureFormula(c.Phi, eps, 0.25)
					if err != nil {
						b.Fatal(err)
					}
					samples += r.Samples
				}
			}
			b.ReportMetric(float64(samples)/float64(b.N), "samples/op")
		})
	}
}

// BenchmarkCompileCache is the compiled-formula reuse ablation: an ε-sweep
// over the Figure 1a candidates with the engine's compile cache on
// (compile once per candidate) versus off (re-reduce and re-compile every
// call, the pre-cache behavior).
func BenchmarkCompileCache(b *testing.B) {
	w := figureWorkload(b)
	cands := w.candidates["CompetitiveAdvantage"]
	for _, cfg := range []struct {
		name string
		size int
	}{{"cached", 0}, {"uncached", -1}} {
		b.Run(cfg.name, func(b *testing.B) {
			engine := arithdb.NewEngine(arithdb.EngineOptions{
				Seed:             7,
				PaperSampleCount: true,
				DisableExact:     true,
				ForceSampling:    true,
				CompileCacheSize: cfg.size,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, eps := range []float64{0.1, 0.05, 0.02} {
					for _, c := range cands {
						if _, err := engine.MeasureFormula(c.Phi, eps, 0.25); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// BenchmarkFigure1b regenerates Figure 1b (Never Knowingly Undersold).
func BenchmarkFigure1b(b *testing.B) { benchFigure(b, "NeverKnowinglyUndersold") }

// BenchmarkFigure1c regenerates Figure 1c (Unfair Discount).
func BenchmarkFigure1c(b *testing.B) { benchFigure(b, "UnfairDiscount") }

// BenchmarkSQLPipeline is the end-to-end SQL→confidence benchmark of the
// planner/executor refactor: an indexed equality-join query (Competitive
// Advantage over the sales database) answered with per-candidate AFPRAS
// measures at ε = 0.05. Three pipelines:
//
//   - naive: the fully-materializing nested-loop join (no hash join, no
//     indexes) followed by sequential measurement — the pre-planner
//     materialize-then-measure baseline shape;
//   - indexed: the planner/executor with hash joins on persistent
//     database indexes, still measuring sequentially;
//   - fused: Engine.MeasureSQL, streaming enumeration overlapped with
//     concurrent measurement.
func BenchmarkSQLPipeline(b *testing.B) {
	w := figureWorkload(b)
	q, err := arithdb.ParseSQL(arithdb.QueryCompetitiveAdvantage)
	if err != nil {
		b.Fatal(err)
	}
	const eps, delta = 0.05, 0.25
	// NoAdaptive keeps the fused variant on the fixed-budget first-k path
	// this benchmark has always measured (the adaptive LIMIT-k race has
	// its own benchmark, BenchmarkAdaptiveTopK).
	base := arithdb.EngineOptions{Seed: 7, PaperSampleCount: true, DisableExact: true, ForceSampling: true, NoAdaptive: true}

	// Every variant hoists its engine out of the b.N loop, so compiled
	// kernels amortize across iterations: the materializing variants
	// through the engine's own compile cache, the fused pipeline through
	// the shared kernel cache its measurement pool hands to the
	// per-candidate engines (the MeasureBatch determinism contract keeps
	// one engine per candidate; the immutable kernels are shared).
	materializeThenMeasure := func(b *testing.B, engine *arithdb.Engine) {
		res, err := engine.EvaluateSQL(q, w.db)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Candidates {
			if _, err := engine.MeasureFormula(c.Phi, eps, delta); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("naive", func(b *testing.B) {
		opts := base
		opts.DisableJoinReorder = true
		opts.DisableDBIndexes = true
		opts.DisableHashJoin = true
		engine := arithdb.NewEngine(opts)
		for i := 0; i < b.N; i++ {
			materializeThenMeasure(b, engine)
		}
	})
	b.Run("indexed", func(b *testing.B) {
		engine := arithdb.NewEngine(base)
		for i := 0; i < b.N; i++ {
			materializeThenMeasure(b, engine)
		}
	})
	b.Run("fused", func(b *testing.B) {
		engine := arithdb.NewEngine(base)
		for i := 0; i < b.N; i++ {
			if _, err := engine.MeasureSQL(q, w.db, eps, delta); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSQLPipelineSweep measures the shared compiled-kernel cache of
// the fused measurement pool: an ε-sweep of repeated MeasureSQL calls on
// one session engine (kernels compiled once, on the first call) against
// the same sweep with a fresh engine per call (every call re-reduces and
// re-compiles all 25 candidate constraints).
func BenchmarkSQLPipelineSweep(b *testing.B) {
	w := figureWorkload(b)
	q, err := arithdb.ParseSQL(arithdb.QueryCompetitiveAdvantage)
	if err != nil {
		b.Fatal(err)
	}
	base := arithdb.EngineOptions{Seed: 7, PaperSampleCount: true, DisableExact: true, ForceSampling: true, NoAdaptive: true}
	sweep := func(b *testing.B, engine *arithdb.Engine) {
		for _, eps := range []float64{0.1, 0.05, 0.02} {
			if _, err := engine.MeasureSQL(q, w.db, eps, 0.25); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("shared-engine", func(b *testing.B) {
		engine := arithdb.NewEngine(base)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sweep(b, engine)
		}
	})
	b.Run("fresh-engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sweep(b, arithdb.NewEngine(base))
		}
	})
}

// mixedWorkloadDB builds the 40k-row relation of the mixed insert/query
// benchmark: R(id base, seg base, val num) with 64 segments and a null
// sprinkle, plus warmed caches (the equality index the query probes and
// the inventories the planner reads).
func mixedWorkloadDB(b *testing.B, rows int) (*arithdb.Database, *arithdb.SQLQuery) {
	b.Helper()
	s := arithdb.MustSchema(arithdb.MustRelation("R",
		arithdb.Col("id", arithdb.BaseCol),
		arithdb.Col("seg", arithdb.BaseCol),
		arithdb.Col("val", arithdb.NumCol)))
	d := arithdb.NewDatabase(s)
	for i := 0; i < rows; i++ {
		v := arithdb.Num(float64(i%1000) / 4)
		if i%10 == 0 {
			v = arithdb.NullNum(i)
		}
		d.MustInsert("R",
			arithdb.Base(fmt.Sprintf("id%d", i)),
			arithdb.Base(fmt.Sprintf("seg%d", i%64)),
			v)
	}
	q, err := arithdb.ParseSQL(`SELECT r.id FROM R r WHERE r.seg = 'seg7' AND r.val > 100 LIMIT 5`)
	if err != nil {
		b.Fatal(err)
	}
	return d, q
}

// BenchmarkMixedInsertQuery is the write-path benchmark of incremental
// index maintenance: each op is one Insert followed by one indexed query
// on a 40k-row relation — the mixed insert/query workload of a live
// console-style measurement service. Three maintenance regimes:
//
//   - incremental: the default — Insert extends the cached equality
//     index groups and inventories in place, so the query's index probe
//     finds hot caches (amortized O(1) maintenance per insert);
//   - snapshot: the server shape — the query runs on db.Snapshot(), so
//     inserts additionally pay the copy-on-write clone of whatever the
//     previous snapshot still shares;
//   - rebuild: the drop-and-rebuild baseline (pre-incremental behavior,
//     via DropCaches) — every insert invalidates wholesale and the next
//     query re-scans the relation to rebuild index and inventories,
//     O(relation) per op.
//
// The acceptance bar of the incremental-maintenance PR: incremental ≥
// 10× faster than rebuild, with byte-identical query results (see
// TestIncrementalQueryParity).
func BenchmarkMixedInsertQuery(b *testing.B) {
	const rows = 40000
	engine := arithdb.NewEngine(arithdb.EngineOptions{})
	run := func(b *testing.B, snapshot, rebuild bool) {
		d, q := mixedWorkloadDB(b, rows)
		// Warm the caches the way the measured regime reads: the snapshot
		// variant warms through a snapshot (the server shape — the writer
		// adopts the snapshot-built indexes), the others on the writer.
		warm := d
		if snapshot {
			warm = d.Snapshot()
		}
		if _, err := engine.EvaluateSQL(q, warm); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.MustInsert("R",
				arithdb.Base(fmt.Sprintf("id%d", rows+i)),
				arithdb.Base(fmt.Sprintf("seg%d", i%64)),
				arithdb.Num(float64(i%1000)/4))
			if rebuild {
				d.DropCaches()
			}
			qd := d
			if snapshot {
				qd = d.Snapshot()
			}
			if _, err := engine.EvaluateSQL(q, qd); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("incremental", func(b *testing.B) { run(b, false, false) })
	b.Run("snapshot", func(b *testing.B) { run(b, true, false) })
	b.Run("rebuild", func(b *testing.B) { run(b, false, true) })
}

// BenchmarkConditionalJoin times the candidate-generation phase (the role
// Postgres plays in the paper's pipeline).
func BenchmarkConditionalJoin(b *testing.B) {
	w := figureWorkload(b)
	q, err := arithdb.ParseSQL(arithdb.QueryCompetitiveAdvantage)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arithdb.EvaluateSQL(q, w.db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslate times the Prop 5.3 translation on the introduction's
// database and query.
func BenchmarkTranslate(b *testing.B) {
	s := arithdb.MustSchema(
		arithdb.MustRelation("P",
			arithdb.Col("id", arithdb.BaseCol), arithdb.Col("seg", arithdb.BaseCol),
			arithdb.Col("rrp", arithdb.NumCol), arithdb.Col("dis", arithdb.NumCol)),
		arithdb.MustRelation("C",
			arithdb.Col("id", arithdb.BaseCol), arithdb.Col("seg", arithdb.BaseCol),
			arithdb.Col("p", arithdb.NumCol)),
		arithdb.MustRelation("E",
			arithdb.Col("id", arithdb.BaseCol), arithdb.Col("seg", arithdb.BaseCol)),
	)
	d := arithdb.NewDatabase(s)
	d.MustInsert("C", arithdb.Base("c"), arithdb.Base("s"), arithdb.NullNum(0))
	d.MustInsert("P", arithdb.Base("id1"), arithdb.Base("s"), arithdb.Num(10), arithdb.Num(0.8))
	d.MustInsert("P", arithdb.Base("id2"), arithdb.Base("s"), arithdb.NullNum(1), arithdb.Num(0.7))
	d.MustInsert("E", arithdb.NullBase(0), arithdb.Base("s"))
	q := arithdb.MustParseQuery(`
	q(s:base) := forall i:base, r:num, dd:num, i2:base, p:num .
	    (P(i, s, r, dd) and not E(i, s) and C(i2, s, p))
	    -> (r * dd <= p and r >= 0 and dd >= 0 and p >= 0)`)
	args := []arithdb.Value{arithdb.Base("s")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arithdb.Translate(q, d, args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsymEvalSample times one Monte-Carlo sample (direction draw +
// asymptotic evaluation) on a Competitive Advantage candidate constraint —
// the inner loop of the AFPRAS.
func BenchmarkAsymEvalSample(b *testing.B) {
	w := figureWorkload(b)
	cand := w.candidates["CompetitiveAdvantage"][0]
	reduced, vars := realfmla.Reduce(cand.Phi)
	if len(vars) == 0 {
		// Fall back to a candidate that has relevant nulls.
		for _, c := range w.candidates["CompetitiveAdvantage"] {
			reduced, vars = realfmla.Reduce(c.Phi)
			if len(vars) > 0 {
				break
			}
		}
	}
	if len(vars) == 0 {
		b.Skip("no constrained candidate in this workload")
	}
	compiled := realfmla.Compile(reduced)
	ev := compiled.NewEvaluator()
	rng := mc.NewRNG(1)
	dir := make([]float64, len(vars))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.FillNormal(rng, dir)
		ev.AsymEval(dir, 1e-12)
	}
}

// BenchmarkExactOrderCells times the exact rational algorithm on a
// 6-variable order formula (2⁶·6! = 46080 cells).
func BenchmarkExactOrderCells(b *testing.B) {
	n := 6
	var conj []realfmla.Formula
	for i := 0; i+1 < n; i++ {
		p := poly.Var(n, i).Sub(poly.Var(n, i+1))
		conj = append(conj, realfmla.FAtom{A: realfmla.Atom{P: p, Rel: realfmla.LT}})
	}
	phi := realfmla.And(conj...)
	e := core.New(core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.MeasureFormula(phi, 0.1, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Exact {
			b.Fatal("expected exact result")
		}
	}
}

// BenchmarkFPRASvsAFPRAS is the Section 7 vs Section 8 ablation on the
// same 3-dimensional linear formula (an octant union): the multiplicative
// union-of-cones estimator against additive direction sampling.
func BenchmarkFPRASvsAFPRAS(b *testing.B) {
	oct := func(sign float64) realfmla.Formula {
		var conj []realfmla.Formula
		for i := 0; i < 3; i++ {
			p := poly.Var(3, i).Scale(-sign)
			conj = append(conj, realfmla.FAtom{A: realfmla.Atom{P: p, Rel: realfmla.LT}})
		}
		return realfmla.And(conj...)
	}
	phi := realfmla.Or(oct(1), oct(-1))
	b.Run("FPRAS", func(b *testing.B) {
		e := core.New(core.Options{Seed: 1})
		for i := 0; i < b.N; i++ {
			if _, err := e.FPRAS(phi, 0.1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AFPRAS", func(b *testing.B) {
		e := core.New(core.Options{Seed: 1, DisableExact: true})
		for i := 0; i < b.N; i++ {
			if _, err := e.AdditiveApprox(phi, 0.1, 0.25); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDirectVsFormulaPath is the ablation between the two AFPRAS
// implementations: sampling over the materialized translation vs direct
// asymptotic evaluation of the query.
func BenchmarkDirectVsFormulaPath(b *testing.B) {
	s := arithdb.MustSchema(arithdb.MustRelation("R",
		arithdb.Col("x", arithdb.NumCol), arithdb.Col("y", arithdb.NumCol)))
	d := arithdb.NewDatabase(s)
	for i := 0; i < 8; i++ {
		d.MustInsert("R", arithdb.NullNum(2*i), arithdb.NullNum(2*i+1))
	}
	q := arithdb.MustParseQuery(`q() := forall x:num, y:num . (R(x, y) -> x + y > 0)`)
	b.Run("formula", func(b *testing.B) {
		phi, err := translate.Query(q, d, nil)
		if err != nil {
			b.Fatal(err)
		}
		e := core.New(core.Options{Seed: 1, DisableExact: true})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.AdditiveApprox(phi.Phi, 0.05, 0.25); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		e := core.New(core.Options{Seed: 1})
		for i := 0; i < b.N; i++ {
			if _, err := e.AdditiveApproxDirect(q, d, nil, 0.05, 0.25); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHitAndRun times one hit-and-run sample from a 6-dimensional
// cone ∩ ball — the inner oracle of the Section 7 FPRAS.
func BenchmarkHitAndRun(b *testing.B) {
	n := 6
	normals := make([][]float64, n)
	for i := range normals {
		c := make([]float64, n)
		c[i] = 1
		normals[i] = c
	}
	body := geometry.NewConeInBall(n, normals)
	x0, _, ok, err := body.InteriorPoint()
	if err != nil || !ok {
		b.Fatalf("interior point: ok=%v err=%v", ok, err)
	}
	s, err := geometry.NewSampler(body, x0, mc.NewRNG(1), 4*n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

// BenchmarkMeasureBatch compares sequential and concurrent confidence
// computation over the Competitive Advantage candidate set.
func BenchmarkMeasureBatch(b *testing.B) {
	w := figureWorkload(b)
	cands := w.candidates["CompetitiveAdvantage"]
	phis := make([]arithdb.Constraint, len(cands))
	for i, c := range cands {
		phis[i] = c.Phi
	}
	opts := arithdb.EngineOptions{Seed: 7, DisableExact: true, ForceSampling: true, PaperSampleCount: true}
	b.Run("sequential", func(b *testing.B) {
		engine := arithdb.NewEngine(opts)
		for i := 0; i < b.N; i++ {
			for _, phi := range phis {
				if _, err := engine.MeasureFormula(phi, 0.02, 0.25); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, errs := arithdb.MeasureBatch(opts, phis, 0.02, 0.25)
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkBackgroundMeasure times the Section 10 range-constrained
// measure against the plain AFPRAS on the same constraint.
func BenchmarkBackgroundMeasure(b *testing.B) {
	p := poly.Var(2, 0).Sub(poly.Var(2, 1).Scale(0.7))
	phi := realfmla.FAtom{A: realfmla.Atom{P: p, Rel: realfmla.LE}}
	b.Run("plain", func(b *testing.B) {
		e := core.New(core.Options{Seed: 1, DisableExact: true})
		for i := 0; i < b.N; i++ {
			if _, err := e.AdditiveApprox(phi, 0.02, 0.25); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ranges", func(b *testing.B) {
		e := core.New(core.Options{Seed: 1})
		bg := core.Background{0: core.AtLeast(0), 1: core.Between(0, 1)}
		for i := 0; i < b.N; i++ {
			if _, err := e.MeasureWithBackground(phi, bg, 0.02, 0.25); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPartialSamplingAblation measures the Section 9 optimization:
// reducing to the relevant variables before sampling vs sampling every
// null coordinate of the database.
func BenchmarkPartialSamplingAblation(b *testing.B) {
	// A formula over 2 relevant variables embedded in a 500-variable
	// ambient space (a 500-null database where one candidate's constraint
	// touches two nulls).
	n := 500
	p := poly.Var(n, 3).Sub(poly.Var(n, 4).Scale(0.7))
	phi := realfmla.FAtom{A: realfmla.Atom{P: p, Rel: realfmla.LE}}
	b.Run("reduced", func(b *testing.B) {
		e := core.New(core.Options{Seed: 1, DisableExact: true})
		for i := 0; i < b.N; i++ {
			if _, err := e.AdditiveApprox(phi, 0.05, 0.25); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-dimension", func(b *testing.B) {
		// Simulate the unoptimized sampler: draw all 500 coordinates.
		compiled := realfmla.Compile(phi)
		rng := mc.NewRNG(1)
		m, err := mc.HoeffdingSamples(0.05, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		dir := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hits := 0
			for s := 0; s < m; s++ {
				for j := range dir {
					dir[j] = rng.NormFloat64()
				}
				if compiled.AsymEval(dir, 1e-12) {
					hits++
				}
			}
			_ = hits
		}
	})
}

// benchSector builds a 2-variable conjunction whose asymptotic measure is
// exactly theta/2π: y ≥ 0 ∧ y·cosθ − x·sinθ ≤ 0 carves the sector [0, θ]
// out of the direction sphere. Dialing theta dials the true measure, so
// the adaptive race benchmarks can pit dialed-in skewed and uniform
// candidate fields against each other on the sampling path.
func benchSector(theta float64) arithdb.Constraint {
	return realfmla.And(
		realfmla.FAtom{A: realfmla.Atom{P: poly.Var(2, 1), Rel: realfmla.GE}},
		realfmla.FAtom{A: realfmla.Atom{
			P:   poly.Var(2, 1).Scale(math.Cos(theta)).Sub(poly.Var(2, 0).Scale(math.Sin(theta))),
			Rel: realfmla.LE,
		}},
	)
}

// BenchmarkAdaptiveTopK measures the adaptive top-k sampling race against
// the fixed per-candidate budget it replaces, on two candidate fields:
// "skewed" (20 near-zero losers, 4 clear winners — the race freezes the
// losers out after the first rounds) and "uniform" (measures spread evenly,
// so the ranking stays in doubt longer and the race degrades gracefully
// toward the fixed budget). Each sub-benchmark reports samples/op — the
// total directions drawn per top-k query — which scripts/sample_check.sh
// holds against scripts/sample_budget.txt in `make bench-check`.
func BenchmarkAdaptiveTopK(b *testing.B) {
	const (
		n, k       = 24, 4
		eps, delta = 0.02, 0.25
	)
	shapes := []struct {
		name string
		mus  []float64
	}{
		{"skewed", func() []float64 {
			mus := make([]float64, n)
			for i := range mus {
				mus[i] = 0.04 + 0.001*float64(i%7)
			}
			for w := 0; w < k; w++ {
				mus[(w*n/k+3)%n] = 0.43 - 0.01*float64(w)
			}
			return mus
		}()},
		{"uniform", func() []float64 {
			mus := make([]float64, n)
			for i := range mus {
				mus[i] = 0.05 + 0.9*float64(i)/float64(n)
			}
			return mus
		}()},
	}
	for _, shape := range shapes {
		phis := make([]arithdb.Constraint, len(shape.mus))
		for i, mu := range shape.mus {
			phis[i] = benchSector(mu * 2 * math.Pi)
		}
		opts := core.Options{Seed: 17, DisableExact: true}
		b.Run(shape.name+"/adaptive", func(b *testing.B) {
			e := core.New(opts)
			var samples int64
			for i := 0; i < b.N; i++ {
				res, err := e.MeasureTopK(phis, k, eps, delta)
				if err != nil {
					b.Fatal(err)
				}
				samples += int64(res.SamplesDrawn)
			}
			b.ReportMetric(float64(samples)/float64(b.N), "samples/op")
		})
		b.Run(shape.name+"/fixed", func(b *testing.B) {
			var samples int64
			for i := 0; i < b.N; i++ {
				results, errs := core.MeasureBatch(opts, phis, eps, delta)
				for j, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
					samples += int64(results[j].Samples)
				}
			}
			b.ReportMetric(float64(samples)/float64(b.N), "samples/op")
		})
	}
}
