// Package core is the detrand positive fixture: a deterministic package
// exercising every forbidden and every allowed randomness idiom.
package core

import (
	"math/rand"
	"time"

	"repro/internal/mc"
)

// Options mirrors the real engine options.
type Options struct{ Seed int64 }

func forbidden(o Options) {
	_ = time.Now()                                      // want `time.Now in deterministic package`
	_ = rand.Int()                                      // want `global math/rand.Int draws from the process-global source`
	rand.Shuffle(3, func(i, j int) {})                  // want `global math/rand.Shuffle`
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want `time.Now in deterministic package` `rand.NewSource source is not derived from Options.Seed`
	n := nonSeed()
	_ = rand.New(rand.NewSource(n)) // want `rand.NewSource source is not derived`
	src := otherSource{}
	_ = rand.New(src) // want `rand.New source is not derived`
}

func allowed(o Options) {
	_ = rand.New(rand.NewSource(o.Seed)) // Options.Seed-derived
	_ = rand.New(rand.NewSource(42))     // constant
	_ = rand.New(mc.NewSplitMix64(0))    // the chunk-seed constructor
	chunkSeed := deriveSeed(o.Seed, 7)
	_ = rand.New(rand.NewSource(chunkSeed)) // seed-named local
	sm := mc.NewSplitMix64(o.Seed)
	_ = rand.New(sm) // *mc.SplitMix64 source
}

func escapeHatch() {
	_ = rand.Int() //lint:allow detrand fixture exercises the escape hatch
	//lint:allow detrand a standalone directive covers the next line
	_ = rand.Int()
	_ = rand.Int() //lint:allow detrand // want `//lint:allow detrand is missing a reason` `global math/rand.Int`
	_ = rand.Int() //lint:allow nosuchanalyzer because // want `unknown analyzer "nosuchanalyzer"` `global math/rand.Int`
}

func deriveSeed(base int64, chunk int64) int64 { return base ^ chunk }

func nonSeed() int64 { return 1 }

type otherSource struct{}

func (otherSource) Int63() int64   { return 0 }
func (otherSource) Seed(_ int64)   {}
func (otherSource) Uint64() uint64 { return 0 }
