// Command arithdb answers queries over incomplete databases with
// confidence levels, from the command line.
//
// Subcommands:
//
//	arithdb sql -data DIR -query "SELECT ..." [-eps 0.01] [-delta 0.05]
//	    Run a SQL query under conditional semantics and print every
//	    candidate answer tuple with its measure of certainty.
//
//	arithdb measure -data DIR -query "q(...) := ..." [args...]
//	    Compute μ(q, D, args) for an FO(+,·,<) query. Positional
//	    arguments supply values for the query's free variables:
//	    plain text for base constants, numbers for numerical constants,
//	    _B<i>/_N<i> for nulls of the database.
//
//	arithdb info -data DIR
//	    Print the schema and null inventory of a stored database.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	arithdb "repro"
	"repro/internal/client"
	"repro/internal/fo"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("arithdb: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "sql":
		runSQL(os.Args[2:])
	case "measure":
		runMeasure(os.Args[2:])
	case "insert":
		runInsert(os.Args[2:])
	case "info":
		runInfo(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  arithdb sql     -data DIR -query "SELECT ..." [-eps E] [-delta D] [-seed S]
                  [-workers N] [-compile-cache N] [-no-adaptive] [-stats]
                  [-no-join-reorder] [-no-db-indexes] [-no-hash-join]
  arithdb sql     -connect URL[,URL...] -query "SELECT ..." [-eps E] [-delta D] [-stream] [-stats]
                  (first URL is the primary; reads fail over down the list)
  arithdb measure -data DIR -query "q(x:base) := ..." [-eps E] [-delta D] [-seed S]
                  [-workers N] [-compile-cache N] [args...]
  arithdb insert  (-data DIR | -connect URL) -rel R -tuple "v1,v2,..." [-tuple ...]
  arithdb info    -data DIR`)
	os.Exit(2)
}

func commonFlags(fs *flag.FlagSet) (data, query *string, eps, delta *float64, opts *arithdb.EngineOptions) {
	data = fs.String("data", "", "database directory (written by datagen or SaveDatabase)")
	query = fs.String("query", "", "query text")
	eps = fs.Float64("eps", 0.01, "additive error of the approximation")
	delta = fs.Float64("delta", 0.05, "failure probability")
	opts = &arithdb.EngineOptions{}
	fs.Int64Var(&opts.Seed, "seed", 1, "random seed")
	fs.IntVar(&opts.Workers, "workers", 0,
		"goroutines for intra-formula sampling (0 = GOMAXPROCS; results are seed-deterministic regardless)")
	fs.IntVar(&opts.CompileCacheSize, "compile-cache", 0,
		"compiled-formula cache entries (0 = default 1024, negative disables)")
	return
}

// plannerFlags adds the SQL pipeline planner/executor toggles.
func plannerFlags(fs *flag.FlagSet, opts *arithdb.EngineOptions) {
	fs.BoolVar(&opts.DisableJoinReorder, "no-join-reorder", false,
		"keep the FROM-clause join order even when reordering joins earlier")
	fs.BoolVar(&opts.DisableDBIndexes, "no-db-indexes", false,
		"build transient per-query hash tables instead of persistent database indexes")
	fs.BoolVar(&opts.DisableHashJoin, "no-hash-join", false,
		"force nested-loop joins (the naive baseline)")
}

// rangeFlags collects repeated -range Relation.column=lo:hi declarations
// (either bound may be empty for ±∞).
type rangeFlags map[string]arithdb.Interval

func (r rangeFlags) String() string { return fmt.Sprintf("%v", map[string]arithdb.Interval(r)) }

func (r rangeFlags) Set(s string) error {
	col, spec, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want Relation.column=lo:hi, got %q", s)
	}
	loS, hiS, ok := strings.Cut(spec, ":")
	if !ok {
		return fmt.Errorf("want lo:hi bounds in %q", s)
	}
	iv := arithdb.Unbounded()
	if loS != "" {
		lo, err := strconv.ParseFloat(loS, 64)
		if err != nil {
			return fmt.Errorf("bad lower bound %q", loS)
		}
		iv.Lo = lo
	}
	if hiS != "" {
		hi, err := strconv.ParseFloat(hiS, 64)
		if err != nil {
			return fmt.Errorf("bad upper bound %q", hiS)
		}
		iv.Hi = hi
	}
	r[col] = iv
	return nil
}

func runSQL(args []string) {
	fs := flag.NewFlagSet("sql", flag.ExitOnError)
	data, query, eps, delta, opts := commonFlags(fs)
	plannerFlags(fs, opts)
	ranges := rangeFlags{}
	fs.Var(ranges, "range", "column range constraint Relation.column=lo:hi (repeatable; empty bound = ±inf)")
	connect := fs.String("connect", "", "arithdbd base URL(s), comma-separated (e.g. http://primary:8080,http://replica:8081): run the query on a server instead of -data; reads fail over down the list")
	stream := fs.Bool("stream", false, "with -connect: print candidates as the server streams them")
	fs.BoolVar(&opts.NoAdaptive, "no-adaptive", false,
		"disable the adaptive top-k sampling race for LIMIT queries (fixed budget per candidate, first-k distinct tuples)")
	stats := fs.Bool("stats", false, "print sampling telemetry (samples drawn, adaptive race rounds) after the results")
	_ = fs.Parse(args)
	if *query == "" {
		log.Fatal("sql: -query is required")
	}
	if *stream && *connect == "" {
		log.Fatal("sql: -stream requires -connect (local runs print the buffered result)")
	}
	if *connect != "" {
		// The server's own configuration governs seeding, planning and
		// measurement; reject local-only flags instead of silently
		// ignoring them.
		localOnly := map[string]bool{
			"data": true, "range": true, "seed": true, "workers": true,
			"compile-cache": true, "no-join-reorder": true,
			"no-db-indexes": true, "no-hash-join": true, "no-adaptive": true,
		}
		fs.Visit(func(f *flag.Flag) {
			if localOnly[f.Name] {
				log.Fatalf("sql: -%s is not supported over -connect (the server's configuration governs it)", f.Name)
			}
		})
		runSQLRemote(*connect, *query, *eps, *delta, *stream, *stats)
		return
	}
	if *data == "" {
		log.Fatal("sql: -data (or -connect) is required")
	}
	d, err := arithdb.LoadDatabase(*data)
	if err != nil {
		log.Fatal(err)
	}
	sess := arithdb.NewSession(d, *opts)
	printMeasure := func(tuple arithdb.Tuple, m arithdb.Result) {
		kind := "approx"
		if m.Exact {
			kind = "exact"
		}
		fmt.Printf("%-24s μ = %.4f  [%s, %s]\n", tuple, m.Value, kind, m.Method)
	}
	if len(ranges) > 0 {
		// Range-constrained measurement (Section 10) stays on the
		// evaluate-then-measure path: background sampling is sequential.
		res, err := sess.SQL(*query)
		if err != nil {
			log.Fatal(err)
		}
		bg := arithdb.BackgroundFromColumnRanges(d, ranges, res.Index)
		fmt.Printf("%d candidate tuples (%d derivations)\n", len(res.Candidates), res.Derivations)
		for _, c := range res.Candidates {
			m, err := sess.Engine().MeasureWithBackground(c.Phi, bg, *eps, *delta)
			if err != nil {
				log.Fatal(err)
			}
			printMeasure(c.Tuple, m)
		}
		return
	}
	// The fused pipeline: streaming candidate enumeration overlapped with
	// concurrent measurement.
	res, err := sess.MeasureSQL(*query, *eps, *delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d candidate tuples (%d derivations)\n", len(res.Candidates), res.Derivations)
	for _, c := range res.Candidates {
		printMeasure(c.Tuple, c.Measure)
	}
	if *stats {
		printSamplingStats(res.SamplesDrawn, res.Rounds)
	}
}

// printSamplingStats renders the -stats summary line: the adaptive
// race's total spend, or a marker that the query ran on the fixed-budget
// path (no LIMIT, -no-adaptive, or the server's configuration).
func printSamplingStats(samples, rounds int) {
	if rounds > 0 {
		unit := "rounds"
		if rounds == 1 {
			unit = "round"
		}
		fmt.Printf("sampling: %d samples drawn in %d adaptive %s\n", samples, rounds, unit)
		return
	}
	fmt.Println("sampling: fixed budget (no adaptive race)")
}

// splitEndpoints parses a comma-separated -connect list; the first entry
// is the primary (writes go only there), later entries are read
// fallbacks.
func splitEndpoints(s string) []string {
	var eps []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			eps = append(eps, e)
		}
	}
	return eps
}

// printReplicationStats renders the server's replication position behind
// -stats: the primary's durable WAL frontier, or the replica's applied
// frontier and observed lag.
func printReplicationStats(ctx context.Context, c *client.Client) {
	info, err := c.Info(ctx)
	if err != nil || info.Replication == nil {
		return
	}
	r := info.Replication
	if r.Role == "replica" {
		fmt.Printf("replication: replica at seq %d (primary seq %d, lag %d) via %s\n",
			r.LastAppliedSeq, r.PrimarySeq, r.ReplicaLag, c.Current())
		return
	}
	fmt.Printf("replication: primary at wal seq %d (checkpoint covers %d) via %s\n",
		r.WalSeq, r.CheckpointSeq, c.Current())
}

// runSQLRemote runs the query on an arithdbd server through the wire
// client. Responses are lossless, so the printed tuples and measures are
// exactly what a local session over the server's database would print.
func runSQLRemote(base, query string, eps, delta float64, stream, stats bool) {
	c := client.NewFailover(splitEndpoints(base)).WithRetry(client.DefaultRetry)
	ctx := context.Background()
	printWire := func(wc wire.MeasuredCandidate) {
		tuple, err := wire.ToTuple(wc.Tuple)
		if err != nil {
			log.Fatal(err)
		}
		kind := "approx"
		if wc.Measure.Exact {
			kind = "exact"
		}
		fmt.Printf("%-24s μ = %.4f  [%s, %s]\n", tuple, wc.Measure.Value, kind, wc.Measure.Method)
	}
	if stream {
		// Top-k candidates render as the server finalizes them; the
		// summary line arrives with the terminal done event.
		done, err := c.MeasureSQLStream(ctx, query, eps, delta, func(ev wire.Event) error {
			printWire(*ev.Candidate)
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d candidate tuples (%d derivations)\n", done.Count, done.Derivations)
		if stats {
			printSamplingStats(done.SamplesDrawn, done.Rounds)
			printReplicationStats(ctx, c)
		}
		return
	}
	res, err := c.MeasureSQL(ctx, query, eps, delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d candidate tuples (%d derivations)\n", res.Count, res.Derivations)
	for _, wc := range res.Candidates {
		printWire(wc)
	}
	if stats {
		printSamplingStats(res.SamplesDrawn, res.Rounds)
		printReplicationStats(ctx, c)
	}
}

func runMeasure(args []string) {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	data, query, eps, delta, opts := commonFlags(fs)
	_ = fs.Parse(args)
	if *data == "" || *query == "" {
		log.Fatal("measure: -data and -query are required")
	}
	d, err := arithdb.LoadDatabase(*data)
	if err != nil {
		log.Fatal(err)
	}
	q, err := arithdb.ParseQuery(*query)
	if err != nil {
		log.Fatal(err)
	}
	if err := arithdb.Typecheck(q, d.Schema()); err != nil {
		log.Fatal(err)
	}
	if len(fs.Args()) != len(q.Free) {
		log.Fatalf("query has %d free variables, got %d arguments", len(q.Free), len(fs.Args()))
	}
	// The general translation expands quantifiers over the active domain;
	// guard against inputs where that blows up and point at the join-based
	// pipeline instead.
	if cost := measureCost(q, d); cost > 5e7 {
		log.Fatalf("query too expensive for the general translation on this database "+
			"(~%.0g quantifier expansions); for SELECT-shaped queries use `arithdb sql`, "+
			"which evaluates joins conditionally", cost)
	}
	vals := make([]arithdb.Value, len(fs.Args()))
	for i, a := range fs.Args() {
		vals[i] = parseValue(a)
	}
	engine := arithdb.NewEngine(*opts)
	m, err := engine.Measure(q, d, vals, *eps, *delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("μ = %.6f", m.Value)
	if m.Rat != nil {
		fmt.Printf(" (exactly %s)", m.Rat)
	}
	fmt.Printf("  [method %s, %d numerical nulls, %d relevant]\n", m.Method, m.K, m.RelevantK)
}

// measureCost estimates the active-domain expansion size of the general
// translation: |base domain|^(base quantifiers) · |num domain|^(num
// quantifiers), times the database size for relation-atom expansion.
func measureCost(q *arithdb.Query, d *arithdb.Database) float64 {
	baseQ, numQ := fo.CountQuantifiers(q.Body)
	baseDom := float64(len(d.BaseConstants()) + len(d.BaseNulls()))
	numDom := float64(len(d.NumConstants()) + len(d.NumNulls()))
	if baseDom < 1 {
		baseDom = 1
	}
	if numDom < 1 {
		numDom = 1
	}
	return math.Pow(baseDom, float64(baseQ)) * math.Pow(numDom, float64(numQ)) * float64(d.Size()+1)
}

// parseValue interprets a CLI argument: _B<i>/_N<i> as nulls, numbers as
// numerical constants, everything else as base constants.
func parseValue(s string) arithdb.Value {
	if rest, ok := strings.CutPrefix(s, "_B"); ok {
		if id, err := strconv.Atoi(rest); err == nil {
			return arithdb.NullBase(id)
		}
	}
	if rest, ok := strings.CutPrefix(s, "_N"); ok {
		if id, err := strconv.Atoi(rest); err == nil {
			return arithdb.NullNum(id)
		}
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return arithdb.Num(f)
	}
	return arithdb.Base(s)
}

// tupleFlags collects repeated -tuple "v1,v2,..." declarations; each
// value is parsed like a measure argument (parseValue: _B<i>/_N<i> for
// nulls, numbers as numerical constants, anything else as a base
// constant — base constants containing commas need the Go API).
type tupleFlags []arithdb.Tuple

func (t *tupleFlags) String() string { return fmt.Sprintf("%v", []arithdb.Tuple(*t)) }

func (t *tupleFlags) Set(s string) error {
	parts := strings.Split(s, ",")
	tup := make(arithdb.Tuple, len(parts))
	for i, p := range parts {
		tup[i] = parseValue(strings.TrimSpace(p))
	}
	*t = append(*t, tup)
	return nil
}

// runInsert appends tuples to one relation — locally (load, insert
// through the same incremental-maintenance path the library uses, save
// back) or on a server (POST /v1/insert). Both forms are atomic: an
// invalid tuple anywhere in the batch changes nothing.
func runInsert(args []string) {
	fs := flag.NewFlagSet("insert", flag.ExitOnError)
	data := fs.String("data", "", "database directory (written by datagen or SaveDatabase)")
	connect := fs.String("connect", "", "arithdbd base URL: insert on a server instead of -data")
	rel := fs.String("rel", "", "target relation")
	var tuples tupleFlags
	fs.Var(&tuples, "tuple", `tuple "v1,v2,..." (repeatable)`)
	_ = fs.Parse(args)
	if *rel == "" || len(tuples) == 0 {
		log.Fatal("insert: -rel and at least one -tuple are required")
	}
	if (*data == "") == (*connect == "") {
		log.Fatal("insert: exactly one of -data or -connect is required")
	}
	if *connect != "" {
		// Writes pin to the first endpoint (the primary); extra endpoints in
		// the list only serve read failover.
		res, err := client.NewFailover(splitEndpoints(*connect)).WithRetry(client.DefaultRetry).Insert(context.Background(), *rel, tuples)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("inserted %d tuples into %s (%d total, version %d)\n",
			res.Inserted, *rel, res.Tuples, res.Version)
		return
	}
	d, err := arithdb.LoadDatabase(*data)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.InsertBatch(*rel, tuples); err != nil {
		log.Fatal(err)
	}
	if err := arithdb.SaveDatabase(d, *data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %d tuples into %s (%d total)\n", len(tuples), *rel, d.Len(*rel))
}

func runInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	data := fs.String("data", "", "database directory")
	_ = fs.Parse(args)
	if *data == "" {
		log.Fatal("info: -data is required")
	}
	d, err := arithdb.LoadDatabase(*data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Schema())
	fmt.Printf("tuples: %d\n", d.Size())
	fmt.Printf("base nulls: %d, numerical nulls: %d\n", len(d.BaseNulls()), len(d.NumNulls()))
}
