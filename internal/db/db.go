// Package db implements incomplete databases over the two-sorted data model:
// finite relations whose entries are base/numerical constants or marked
// nulls, together with valuations (interpretations of nulls by constants)
// and the active-domain bookkeeping the algorithms of the paper need.
//
// Storage is column-major: each relation column holds a per-row kind array
// (the column's kind bitmap) plus flat typed payload arrays — packed
// dictionary codes for base columns, raw float64 values and null IDs for
// numerical columns. Base constants are interned in a per-database string
// dictionary, so base equality (the decidable joins of Prop 5.2) is a
// single integer comparison and equality-index builds are sequential scans
// over flat arrays. value.Value remains the boundary type: Insert accepts
// tuples of values and Tuples/All/Row materialize them back on demand.
package db

import (
	"fmt"
	"iter"
	"math"
	"sort"
	"sync"

	"repro/internal/schema"
	"repro/internal/value"
)

// column is the columnar storage of one relation column.
//
//   - kinds is the per-row kind array (the kind bitmap of the column);
//   - codes holds, for base columns, the packed equality code of every row
//     (dictID<<1 for constants, nullID<<1|1 for nulls) and, for numerical
//     columns, the null ID on NumNull rows (0 elsewhere);
//   - nums holds the constant payload on NumConst rows of numerical
//     columns; it stays nil for base columns.
type column struct {
	kinds []value.Kind
	codes []int32
	nums  []float64
}

// table is the columnar storage of one relation: n rows across per-column
// typed arrays.
type table struct {
	rel  *schema.Relation
	n    int
	cols []column
}

// ColView is a read-only view of one relation column's columnar arrays,
// the zero-copy scan interface of the executor. The slices are owned by
// the database and must not be modified. Field meanings match column.
type ColView struct {
	Kinds []value.Kind
	Codes []int32
	Nums  []float64
}

// maxID bounds dictionary codes and null IDs so that the packed base code
// (id<<1 | nullbit) always fits an int32.
const maxID = 1 << 30

// Database is an incomplete database instance: for each relation of the
// schema, a finite set (stored column-major) of tuples over constants and
// marked nulls.
type Database struct {
	schema *schema.Schema
	tables map[string]*table
	dict   dict

	nextBaseNull int
	nextNumNull  int

	// mu guards the lazily built caches below (equality indexes and
	// active-domain inventories) so that concurrent read-only query
	// sessions can share one database. Insert invalidates both.
	mu      sync.Mutex
	indexes map[indexKey]*EqIndex

	invValid     bool
	baseNulls    []int
	numNulls     []int
	numNullIndex map[int]int
	numConsts    []float64

	baseConstsLen int // dict length covered by baseConsts
	baseConsts    []string
}

// New returns an empty database over the given schema.
func New(s *schema.Schema) *Database {
	return &Database{schema: s, tables: make(map[string]*table)}
}

// Schema returns the database schema.
func (d *Database) Schema() *schema.Schema { return d.schema }

func (d *Database) table(rel string) *table { return d.tables[rel] }

func (d *Database) ensureTable(rel string, r *schema.Relation) *table {
	tb := d.tables[rel]
	if tb == nil {
		tb = &table{rel: r, cols: make([]column, len(r.Columns))}
		d.tables[rel] = tb
	}
	return tb
}

// Insert adds a tuple to the named relation after validating it against the
// schema. Nulls mentioned in the tuple are registered so that FreshBaseNull
// and FreshNumNull never collide with them.
func (d *Database) Insert(rel string, t value.Tuple) error {
	r := d.schema.Relation(rel)
	if r == nil {
		return fmt.Errorf("db: unknown relation %s", rel)
	}
	if err := r.CheckTuple(t); err != nil {
		return err
	}
	for _, v := range t {
		switch v.Kind() {
		case value.BaseNull:
			if v.NullID() >= maxID {
				return fmt.Errorf("db: base null id %d out of range", v.NullID())
			}
			if v.NullID() >= d.nextBaseNull {
				d.nextBaseNull = v.NullID() + 1
			}
		case value.NumNull:
			if v.NullID() >= maxID {
				return fmt.Errorf("db: numerical null id %d out of range", v.NullID())
			}
			if v.NullID() >= d.nextNumNull {
				d.nextNumNull = v.NullID() + 1
			}
		}
	}
	tb := d.ensureTable(rel, r)
	for j, v := range t {
		c := &tb.cols[j]
		c.kinds = append(c.kinds, v.Kind())
		switch v.Kind() {
		case value.BaseConst:
			c.codes = append(c.codes, d.dict.intern(v.Str())<<1)
		case value.BaseNull:
			c.codes = append(c.codes, int32(v.NullID())<<1|1)
		case value.NumConst:
			c.codes = append(c.codes, 0)
			c.nums = append(c.nums, v.Float())
		case value.NumNull:
			c.codes = append(c.codes, int32(v.NullID()))
			c.nums = append(c.nums, 0)
		}
	}
	tb.n++
	d.invalidateCaches(rel)
	return nil
}

// MustInsert is Insert that panics on error, for tests and examples.
func (d *Database) MustInsert(rel string, vals ...value.Value) {
	if err := d.Insert(rel, value.Tuple(vals)); err != nil {
		panic(err)
	}
}

// FreshBaseNull allocates a base null unused anywhere in the database.
func (d *Database) FreshBaseNull() value.Value {
	v := value.NullBase(d.nextBaseNull)
	d.nextBaseNull++
	return v
}

// FreshNumNull allocates a numerical null unused anywhere in the database.
func (d *Database) FreshNumNull() value.Value {
	v := value.NullNum(d.nextNumNull)
	d.nextNumNull++
	return v
}

// cellValue materializes the boundary value of one cell.
func (d *Database) cellValue(tb *table, col, row int) value.Value {
	c := &tb.cols[col]
	switch c.kinds[row] {
	case value.BaseConst:
		return value.Base(d.dict.str(c.codes[row] >> 1))
	case value.BaseNull:
		return value.NullBase(int(c.codes[row] >> 1))
	case value.NumConst:
		return value.Num(c.nums[row])
	default:
		return value.NullNum(int(c.codes[row]))
	}
}

// rowTuple materializes row i of a table as a fresh tuple.
func (d *Database) rowTuple(tb *table, i int) value.Tuple {
	t := make(value.Tuple, len(tb.cols))
	for j := range tb.cols {
		t[j] = d.cellValue(tb, j, i)
	}
	return t
}

// Tuples returns the tuples of the named relation, materialized from the
// columnar storage: the caller owns the result and may modify it freely
// without corrupting the database. Read-only consumers that only iterate
// should use All, Len and Row; scans should use Col.
func (d *Database) Tuples(rel string) []value.Tuple {
	tb := d.table(rel)
	if tb == nil {
		return nil
	}
	out := make([]value.Tuple, tb.n)
	for i := range out {
		out[i] = d.rowTuple(tb, i)
	}
	return out
}

// All returns an iterator over the tuples of the named relation in
// insertion order. Each yielded tuple is freshly materialized from the
// columnar storage and owned by the caller.
func (d *Database) All(rel string) iter.Seq[value.Tuple] {
	return func(yield func(value.Tuple) bool) {
		tb := d.table(rel)
		if tb == nil {
			return
		}
		for i := 0; i < tb.n; i++ {
			if !yield(d.rowTuple(tb, i)) {
				return
			}
		}
	}
}

// Len returns the number of tuples in the named relation.
func (d *Database) Len(rel string) int {
	tb := d.table(rel)
	if tb == nil {
		return 0
	}
	return tb.n
}

// Rows returns the tuples of the named relation for read-only random
// access, materialized from the columnar storage (one fresh tuple per
// row). Hot paths should scan the columnar arrays via Col instead.
func (d *Database) Rows(rel string) []value.Tuple { return d.Tuples(rel) }

// Row returns the i-th tuple (in insertion order) of the named relation,
// materialized as a fresh tuple owned by the caller.
func (d *Database) Row(rel string, i int) value.Tuple { return d.rowTuple(d.table(rel), i) }

// Col returns the columnar view of one relation column for zero-copy
// read-only scans. The returned slices are owned by the database and must
// not be modified; an unknown relation yields empty views.
func (d *Database) Col(rel string, col int) ColView {
	tb := d.table(rel)
	if tb == nil {
		return ColView{}
	}
	c := &tb.cols[col]
	return ColView{Kinds: c.kinds, Codes: c.codes, Nums: c.nums}
}

// DictString returns the base constant interned under the given dictionary
// id (a packed base code shifted right by one).
func (d *Database) DictString(id int32) string { return d.dict.str(id) }

// LookupBaseCode returns the packed equality code of a base constant, with
// ok=false when the constant occurs nowhere in the database (so no row can
// compare equal to it).
func (d *Database) LookupBaseCode(s string) (int32, bool) {
	id, ok := d.dict.code(s)
	return id << 1, ok
}

// Size returns the total number of tuples across all relations.
func (d *Database) Size() int {
	n := 0
	for _, tb := range d.tables {
		n += tb.n
	}
	return n
}

// invalidateCaches drops the cached indexes of a relation and the
// active-domain inventories after a mutation.
func (d *Database) invalidateCaches(rel string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for k := range d.indexes {
		if k.rel == rel {
			delete(d.indexes, k)
		}
	}
	d.invValid = false
}

// buildInventories computes the cached null/constant summaries with one
// sequential scan per column. Callers hold d.mu.
func (d *Database) buildInventories() {
	if d.invValid {
		return
	}
	baseSet := make(map[int]bool)
	numSet := make(map[int]bool)
	constSet := make(map[float64]bool)
	for _, tb := range d.tables {
		for j := range tb.cols {
			c := &tb.cols[j]
			if tb.rel.Columns[j].Type == schema.Base {
				for i, k := range c.kinds {
					if k == value.BaseNull {
						baseSet[int(c.codes[i]>>1)] = true
					}
				}
				continue
			}
			for i, k := range c.kinds {
				if k == value.NumNull {
					numSet[int(c.codes[i])] = true
				} else {
					constSet[c.nums[i]] = true
				}
			}
		}
	}
	d.baseNulls = sortedInts(baseSet)
	d.numNulls = sortedInts(numSet)
	d.numNullIndex = make(map[int]int, len(d.numNulls))
	for i, id := range d.numNulls {
		d.numNullIndex[id] = i
	}
	// Fresh slice every rebuild: the previous one may still be held by a
	// NumConstants caller (the accessors hand out the cached slices).
	d.numConsts = make([]float64, 0, len(constSet))
	for x := range constSet {
		d.numConsts = append(d.numConsts, x)
	}
	sort.Float64s(d.numConsts)
	d.invValid = true
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// BaseNulls returns the identifiers of all base nulls occurring in the
// database, sorted ascending. This is the set Nbase(D) of the paper. The
// result is cached until the next mutation and must not be modified.
func (d *Database) BaseNulls() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buildInventories()
	return d.baseNulls
}

// NumNulls returns the identifiers of all numerical nulls occurring in the
// database, sorted ascending. This is the set Nnum(D) of the paper. The
// result is cached until the next mutation and must not be modified.
func (d *Database) NumNulls() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buildInventories()
	return d.numNulls
}

// NumNullIndex returns NumNulls together with its inverse (null ID →
// position), the formula-variable indexing of the SQL pipeline. Both are
// cached until the next mutation and must not be modified.
func (d *Database) NumNullIndex() ([]int, map[int]int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buildInventories()
	return d.numNulls, d.numNullIndex
}

// BaseConstants returns the set Cbase(D): all base-type constants occurring
// in the database, sorted. Because the dictionary is append-only and fed
// exclusively by Insert, this is a sorted copy of the dictionary. The
// result is cached until the dictionary next grows and must not be
// modified.
func (d *Database) BaseConstants() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.dict.strs) != d.baseConstsLen || d.baseConsts == nil {
		d.baseConsts = append([]string(nil), d.dict.strs...)
		sort.Strings(d.baseConsts)
		d.baseConstsLen = len(d.dict.strs)
	}
	return d.baseConsts
}

// NumConstants returns the set Cnum(D): all numerical constants occurring
// in the database, sorted ascending. The result is cached until the next
// mutation and must not be modified.
func (d *Database) NumConstants() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buildInventories()
	return d.numConsts
}

// NumNullOccurrences returns, for each numerical null ID, the
// "Relation.column" positions where it occurs. Range constraints declared
// per column (the Section 10 extension) are attached to nulls through
// this map.
func (d *Database) NumNullOccurrences() map[int][]string {
	out := make(map[int][]string)
	seen := make(map[[2]interface{}]bool)
	for _, rel := range d.schema.Relations() {
		tb := d.table(rel.Name)
		if tb == nil {
			continue
		}
		for i := 0; i < tb.n; i++ {
			for j := range tb.cols {
				c := &tb.cols[j]
				if c.kinds[i] != value.NumNull {
					continue
				}
				id := int(c.codes[i])
				key := [2]interface{}{id, rel.Name + "." + rel.Columns[j].Name}
				if seen[key] {
					continue
				}
				seen[key] = true
				out[id] = append(out[id], rel.Name+"."+rel.Columns[j].Name)
			}
		}
	}
	return out
}

// IsComplete reports whether the database contains no nulls.
func (d *Database) IsComplete() bool {
	return len(d.BaseNulls()) == 0 && len(d.NumNulls()) == 0
}

// Clone returns a deep copy of the database.
func (d *Database) Clone() *Database {
	c := New(d.schema)
	c.nextBaseNull = d.nextBaseNull
	c.nextNumNull = d.nextNumNull
	c.dict = d.dict.clone()
	for rel, tb := range d.tables {
		cp := &table{rel: tb.rel, n: tb.n, cols: make([]column, len(tb.cols))}
		for j := range tb.cols {
			cp.cols[j] = column{
				kinds: append([]value.Kind(nil), tb.cols[j].kinds...),
				codes: append([]int32(nil), tb.cols[j].codes...),
			}
			if tb.cols[j].nums != nil {
				cp.cols[j].nums = append([]float64(nil), tb.cols[j].nums...)
			}
		}
		c.tables[rel] = cp
	}
	return c
}

// String renders every relation with its tuples, sorted by relation name.
func (d *Database) String() string {
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += n + ":\n"
		for t := range d.All(n) {
			s += "  " + t.String() + "\n"
		}
	}
	return s
}

// canonFloatBits returns the equality-key bit pattern of a numerical
// constant: -0 is identified with +0 (they compare equal) and every NaN
// payload is collapsed to one canonical pattern.
func canonFloatBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	if f != f {
		return 0x7ff8000000000001
	}
	return math.Float64bits(f)
}
