package geometry

import (
	"fmt"
	"math/rand"

	"repro/internal/mc"
)

// Sampler draws approximately uniform points from a convex body with the
// hit-and-run Markov chain: from the current point, pick a uniformly random
// direction, intersect the line with the body, and jump to a uniform point
// of the chord. Hit-and-run mixes rapidly on convex bodies (the paper's
// FPRAS citation [9] assumes exactly this kind of per-body sampling
// oracle).
type Sampler struct {
	body   *Body
	x      []float64
	rng    *rand.Rand
	burnin int
}

// NewSampler creates a sampler starting at the interior point start.
// burnin is the number of chain steps taken before every reported sample.
func NewSampler(body *Body, start []float64, rng *rand.Rand, burnin int) (*Sampler, error) {
	if !body.Contains(start, 1e-9) {
		return nil, fmt.Errorf("geometry: sampler start point outside the body")
	}
	if burnin <= 0 {
		burnin = 8 * body.N
	}
	return &Sampler{
		body:   body,
		x:      append([]float64(nil), start...),
		rng:    rng,
		burnin: burnin,
	}, nil
}

// step performs one hit-and-run move.
func (s *Sampler) step() {
	d := mc.SampleSphere(s.rng, s.body.N)
	lo, hi := s.body.Chord(s.x, d)
	if lo > hi {
		// Numerical corner: the current point drifted onto the boundary.
		// Stay put; the next direction will almost surely find a chord.
		return
	}
	lam := lo + s.rng.Float64()*(hi-lo)
	for i := range s.x {
		s.x[i] += lam * d[i]
	}
}

// Next runs the burn-in and returns a fresh (approximately uniform) sample.
// The returned slice is a copy.
func (s *Sampler) Next() []float64 {
	for i := 0; i < s.burnin; i++ {
		s.step()
	}
	out := make([]float64, len(s.x))
	copy(out, s.x)
	return out
}
